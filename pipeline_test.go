package aprof

// Randomized property tests of the concurrent ingestion layer: on random
// valid multi-thread traces, every activation must satisfy the paper's
// invariants, and the pipelined / concurrent paths must produce profiles
// byte-identical (under WriteProfiles) to the sequential path.

import (
	"bytes"
	"context"
	"testing"

	"aprof/internal/trace"
)

// randomCases is the table of generator configurations the property tests
// sweep: small and large traces, single- and many-threaded, tight and wide
// address spaces.
var randomCases = []trace.RandomConfig{
	{Seed: 1, Ops: 50},
	{Seed: 2, Ops: 400},
	{Seed: 3, Threads: 1, Ops: 600},
	{Seed: 4, Threads: 6, Ops: 1200, Cells: 8},
	{Seed: 5, Threads: 2, Ops: 2500, Cells: 128, MaxDepth: 10},
	{Seed: 6, Threads: 4, Ops: 5000},
}

func profilesBytes(t *testing.T, ps *Profiles) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteProfiles(&buf, ps); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRandomTraceActivationInvariants asserts, for every collected
// activation of every random trace, Inequality 1 of the paper (drms >= rms)
// and the drms decomposition (first-reads + thread-induced +
// external-induced = drms).
func TestRandomTraceActivationInvariants(t *testing.T) {
	for _, rc := range randomCases {
		tr := trace.Random(rc)
		if err := tr.Validate(); err != nil {
			t.Fatalf("seed %d: invalid generated trace: %v", rc.Seed, err)
		}
		activations := 0
		cfg := DefaultConfig()
		cfg.OnActivation = func(a ActivationRecord) {
			activations++
			if a.DRMS < a.RMS {
				t.Errorf("seed %d: activation of %d violates Inequality 1: drms=%d < rms=%d",
					rc.Seed, a.Routine, a.DRMS, a.RMS)
			}
			if a.FirstReads+a.InducedThread+a.InducedExternal != a.DRMS {
				t.Errorf("seed %d: drms decomposition broken: %d+%d+%d != %d",
					rc.Seed, a.FirstReads, a.InducedThread, a.InducedExternal, a.DRMS)
			}
		}
		if _, err := ProfileTrace(tr, cfg); err != nil {
			t.Fatalf("seed %d: %v", rc.Seed, err)
		}
		if activations == 0 {
			t.Errorf("seed %d: no activations collected", rc.Seed)
		}
	}
}

// TestPipelinedStreamByteIdentical checks that the pipelined
// ProfileTraceStream produces WriteProfiles output byte-identical to
// sequential ProfileTrace on every random trace.
func TestPipelinedStreamByteIdentical(t *testing.T) {
	for _, rc := range randomCases {
		tr := trace.Random(rc)
		want, err := ProfileTrace(tr, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		var enc bytes.Buffer
		if err := trace.WriteBinary(&enc, tr); err != nil {
			t.Fatal(err)
		}
		got, err := ProfileTraceStream(bytes.NewReader(enc.Bytes()), DefaultConfig())
		if err != nil {
			t.Fatalf("seed %d: %v", rc.Seed, err)
		}
		if !bytes.Equal(profilesBytes(t, got), profilesBytes(t, want)) {
			t.Errorf("seed %d: pipelined stream output differs from sequential", rc.Seed)
		}
		// A tiny batch size stresses every pipeline boundary the same way.
		got, err = ProfileTraceStreamContext(context.Background(), bytes.NewReader(enc.Bytes()),
			DefaultConfig(), StreamOptions{BatchSize: 3, Depth: 1})
		if err != nil {
			t.Fatalf("seed %d: %v", rc.Seed, err)
		}
		if !bytes.Equal(profilesBytes(t, got), profilesBytes(t, want)) {
			t.Errorf("seed %d: small-batch pipeline output differs from sequential", rc.Seed)
		}
	}
}

// TestRunConcurrentByteIdentical checks that parallel orchestration never
// changes results: RunConcurrent over N random traces serializes to exactly
// the bytes of the sequential profile-then-fold path.
func TestRunConcurrentByteIdentical(t *testing.T) {
	var jobs []Job
	var runs []*Profiles
	for _, rc := range randomCases {
		tr := trace.Random(rc)
		jobs = append(jobs, TraceJob(tr))
		ps, err := ProfileTrace(tr, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, ps)
	}
	want := profilesBytes(t, MergeRuns(runs...))
	for _, workers := range []int{1, 2, 4, 8} {
		got, err := RunConcurrent(context.Background(), jobs, DefaultConfig(), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(profilesBytes(t, got), want) {
			t.Errorf("workers=%d: concurrent output differs from sequential fold", workers)
		}
	}
	// The parallel tree reduction alone is also byte-identical.
	if !bytes.Equal(profilesBytes(t, MergeRunsParallel(4, runs...)), want) {
		t.Error("MergeRunsParallel output differs from MergeRuns")
	}
}
