package aprof

import (
	"fmt"
	"sort"
	"strings"

	"aprof/internal/core"
)

// ReportOptions controls Report rendering.
type ReportOptions struct {
	// TopN limits the report to the N routines with the highest total cost
	// (0 = all).
	TopN int
	// Metric selects the input-size estimate of the plots column and of the
	// fitted model. Defaults to DRMS.
	Metric Metric
	// Fit adds a fitted empirical cost function per routine when the
	// routine has at least MinFitPoints distinct input sizes.
	Fit bool
	// MinFitPoints is the minimum number of distinct input sizes required
	// to attempt a fit (default 5).
	MinFitPoints int
	// Plots appends the worst-case cost plot points of every reported
	// routine.
	Plots bool
	// Contexts appends the hottest calling contexts (requires a run with
	// ContextSensitiveConfig); 0 disables the section.
	Contexts int
}

func (o ReportOptions) withDefaults() ReportOptions {
	if o.MinFitPoints == 0 {
		o.MinFitPoints = 5
	}
	return o
}

// Report renders a human-readable profile: one row per routine (merged
// across threads) with call counts, cost, input-size statistics, the
// dynamic-input split, and optionally a fitted cost model and the plot
// points.
func Report(ps *Profiles, opts ReportOptions) string {
	opts = opts.withDefaults()

	type row struct {
		name string
		p    *core.Profile
	}
	var rows []row
	for id, p := range ps.MergeThreads() {
		rows = append(rows, row{name: ps.Symbols.Name(id), p: p})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].p.TotalCost != rows[j].p.TotalCost {
			return rows[i].p.TotalCost > rows[j].p.TotalCost
		}
		return rows[i].name < rows[j].name
	})
	if opts.TopN > 0 && len(rows) > opts.TopN {
		rows = rows[:opts.TopN]
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%-28s %9s %12s %9s %9s %9s %8s %8s\n",
		"routine", "calls", "cost", "rms.pts", "drms.pts", "drms.sum", "thr.in%", "ext.in%")
	sb.WriteString(strings.Repeat("-", 100))
	sb.WriteByte('\n')
	for _, r := range rows {
		p := r.p
		thr, ext := 0.0, 0.0
		if reads := p.ReadOps(); reads > 0 {
			thr = 100 * float64(p.InducedThread) / float64(reads)
			ext = 100 * float64(p.InducedExternal) / float64(reads)
		}
		fmt.Fprintf(&sb, "%-28s %9d %12d %9d %9d %9d %8.1f %8.1f\n",
			r.name, p.Calls, p.TotalCost, len(p.RMSPoints), len(p.DRMSPoints), p.SumDRMS, thr, ext)
	}

	if opts.Fit || opts.Plots {
		for _, r := range rows {
			plot := r.p.WorstCasePlot(opts.Metric)
			if opts.Fit && len(plot) >= opts.MinFitPoints {
				if model, err := FitCost(ps, r.name, opts.Metric); err == nil {
					fmt.Fprintf(&sb, "\nfit %s [%s]: %s (exponent %.2f)\n",
						r.name, opts.Metric, model.Formula, model.Exponent)
				}
			}
			if opts.Plots && len(plot) > 0 {
				fmt.Fprintf(&sb, "\nplot %s [%s]: n -> max cost\n", r.name, opts.Metric)
				for _, pt := range plot {
					fmt.Fprintf(&sb, "  %d\t%d\t(%d calls)\n", pt.N, pt.Cost, pt.Calls)
				}
			}
		}
	}

	if opts.Contexts > 0 {
		if hot := ps.HotContexts(opts.Contexts); len(hot) > 0 {
			fmt.Fprintf(&sb, "\nhot calling contexts (top %d by inclusive cost):\n", opts.Contexts)
			for _, cp := range hot {
				fmt.Fprintf(&sb, "  %12d  %6d calls  %5d drms pts  %s\n",
					cp.Profile.TotalCost, cp.Profile.Calls, len(cp.Profile.DRMSPoints), cp.Path)
			}
		}
	}

	s := Summarize(ps)
	fmt.Fprintf(&sb, "\nroutines: %d   dynamic input volume: %.3f   induced first-reads: %d (thread %.1f%%, external %.1f%%)\n",
		s.Routines, s.DynamicInputVolume, s.InducedReads, s.ThreadInputPct, s.ExternalInputPct)
	return sb.String()
}
