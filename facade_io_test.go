package aprof

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"aprof/internal/trace"
)

// writeBinaryForTest serializes a trace (test helper around the internal
// codec).
func writeBinaryForTest(w io.Writer, tr *Trace) error { return trace.WriteBinary(w, tr) }

func buildScalingProfiles(t *testing.T) *Profiles {
	t.Helper()
	b := NewTraceBuilder()
	tb := b.Thread(1)
	tb.Call("main")
	for n := 10; n <= 200; n += 10 {
		tb.Call("scan")
		tb.SysRead(500, uint32(n))
		tb.Read(500, uint32(n))
		tb.Work(uint64(4 * n))
		tb.Ret()
	}
	tb.Ret()
	ps, err := ProfileTrace(b.Trace(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

func TestProfilesJSONRoundTripViaFacade(t *testing.T) {
	ps := buildScalingProfiles(t)
	var buf bytes.Buffer
	if err := WriteProfiles(&buf, ps); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfiles(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig := ps.Routine("scan")
	rest := got.Routine("scan")
	if rest == nil || rest.Calls != orig.Calls || rest.SumDRMS != orig.SumDRMS {
		t.Errorf("restored scan = %+v, want %+v", rest, orig)
	}
	// A fit computed from restored profiles matches the original.
	m1, err := FitCost(ps, "scan", DRMS)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := FitCost(got, "scan", DRMS)
	if err != nil {
		t.Fatal(err)
	}
	if m1.ModelName != m2.ModelName || m1.R2 != m2.R2 {
		t.Errorf("fit changed across serialization: %+v vs %+v", m1, m2)
	}
}

func TestPlotASCII(t *testing.T) {
	ps := buildScalingProfiles(t)
	chart, err := PlotASCII(ps, "scan", DRMS, PlotOptions{Width: 40, Height: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"scan: worst-case cost plot", "input size (drms)", "*"} {
		if !strings.Contains(chart, want) {
			t.Errorf("chart missing %q:\n%s", want, chart)
		}
	}
	if _, err := PlotASCII(ps, "nope", DRMS, PlotOptions{}); err == nil {
		t.Error("PlotASCII accepted unknown routine")
	}
}

func TestPlotCompareASCII(t *testing.T) {
	ps := buildScalingProfiles(t)
	chart, err := PlotCompareASCII(ps, "scan", PlotOptions{Width: 40, Height: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chart, "rms") || !strings.Contains(chart, "drms") {
		t.Errorf("compare chart missing legend entries:\n%s", chart)
	}
	if _, err := PlotCompareASCII(ps, "nope", PlotOptions{}); err == nil {
		t.Error("PlotCompareASCII accepted unknown routine")
	}
}

func TestProfileTraceStreamMatchesBatch(t *testing.T) {
	// A multithreaded trace with every event kind.
	b := NewTraceBuilder()
	t1 := b.Thread(1)
	t2 := b.Thread(2)
	t1.Call("main")
	t2.Call("peer")
	for i := 0; i < 200; i++ {
		t2.Write1(Addr(i % 16))
		t1.Read1(Addr(i % 16))
		t1.SysRead(100, 4)
		t1.Read(100, 2)
		t1.Acquire(1)
		t1.Release(1)
	}
	t1.Ret()
	t2.Ret()
	tr := b.Trace()

	batch, err := ProfileTrace(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := writeBinaryForTest(&buf, tr); err != nil {
		t.Fatal(err)
	}
	stream, err := ProfileTraceStream(&buf, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"main", "peer"} {
		a, c := batch.Routine(name), stream.Routine(name)
		if a.SumDRMS != c.SumDRMS || a.SumRMS != c.SumRMS || a.Calls != c.Calls || a.TotalCost != c.TotalCost {
			t.Errorf("%s: streaming profile differs from batch", name)
		}
	}
}

func TestMergeRunsViaFacade(t *testing.T) {
	mk := func(base uint32) *Profiles {
		b := NewTraceBuilder()
		tb := b.Thread(1)
		tb.Call("main")
		tb.Call("scan")
		tb.SysRead(100, base)
		tb.Read(100, base)
		tb.Ret()
		tb.Ret()
		ps, err := ProfileTrace(b.Trace(), DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return ps
	}
	merged := MergeRuns(mk(10), mk(50), mk(200))
	scan := merged.Routine("scan")
	if scan.Calls != 3 || len(scan.DRMSPoints) != 3 {
		t.Errorf("merged scan: calls=%d points=%d, want 3 and 3", scan.Calls, len(scan.DRMSPoints))
	}
	// A fit over the merged runs succeeds where single runs have too few
	// points.
	if _, err := FitCost(merged, "scan", DRMS); err == nil {
		// three points fit fine
	} else {
		t.Errorf("fit over merged runs failed: %v", err)
	}
}
