package aprof_test

import (
	"fmt"
	"log"

	"aprof"
)

// The producer-consumer pattern of the paper's Fig. 2: the classic rms
// metric sees a single shared cell, while the drms counts every handed-over
// item.
func Example() {
	b := aprof.NewTraceBuilder()
	producer := b.Thread(1)
	consumer := b.Thread(2)
	producer.Call("producer")
	consumer.Call("consumer")
	for i := 0; i < 1000; i++ {
		producer.Write1(0x100)
		consumer.Read1(0x100)
	}
	producer.Ret()
	consumer.Ret()

	profiles, err := aprof.ProfileTrace(b.Trace(), aprof.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	c := profiles.Routine("consumer")
	fmt.Println("rms: ", c.SumRMS)
	fmt.Println("drms:", c.SumDRMS)
	// Output:
	// rms:  1
	// drms: 1000
}

// Fitting an empirical cost function: a routine that reads n cells and
// performs linear work is recognized as O(n).
func ExampleFitCost() {
	b := aprof.NewTraceBuilder()
	t1 := b.Thread(1)
	t1.Call("main")
	for n := 100; n <= 1000; n += 100 {
		t1.Call("scan")
		t1.Read(0x2000, uint32(n))
		t1.Work(uint64(4 * n))
		t1.Ret()
	}
	t1.Ret()

	profiles, err := aprof.ProfileTrace(b.Trace(), aprof.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	model, err := aprof.FitCost(profiles, "scan", aprof.DRMS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scan is O(%s)\n", model.ModelName)
	// Output:
	// scan is O(n)
}

// Profiling a MiniLang program: the instrumented VM substitutes for dynamic
// binary instrumentation, emitting the trace the profiler consumes.
func ExampleProfileProgram() {
	const program = `
global buf[4];
fn reader(n) {
	var sum = 0;
	for (var i = 0; i < n; i = i + 1) {
		sysread(buf, 4);     // the kernel refills the buffer
		sum = sum + buf[0];  // only one cell is consumed
	}
	return sum;
}
fn main() {
	print("sum:", reader(250));
}`
	profiles, result, err := aprof.ProfileProgram(program, aprof.VMOptions{}, aprof.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(result.Output[0])
	r := profiles.Routine("reader")
	fmt.Println("rms: ", r.SumRMS)
	fmt.Println("drms:", r.SumDRMS)
	fmt.Println("external induced:", r.InducedExternal)
	// Output:
	// sum: 124750
	// rms:  1
	// drms: 250
	// external induced: 250
}

// Calling-context-sensitive profiling separates the cost plots of one
// routine per caller path.
func ExampleContextSensitiveConfig() {
	b := aprof.NewTraceBuilder()
	t1 := b.Thread(1)
	t1.Call("main")
	t1.Call("query")
	t1.Call("scan")
	t1.Read(0x100, 500)
	t1.Ret()
	t1.Ret()
	t1.Call("update")
	t1.Call("scan")
	t1.Read(0x100, 2)
	t1.Ret()
	t1.Ret()
	t1.Ret()

	profiles, err := aprof.ProfileTrace(b.Trace(), aprof.ContextSensitiveConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("scan total:", profiles.Routine("scan").SumDRMS)
	fmt.Println("via query: ", profiles.Context("main > query > scan").SumDRMS)
	fmt.Println("via update:", profiles.Context("main > update > scan").SumDRMS)
	// Output:
	// scan total: 502
	// via query:  500
	// via update: 2
}
