// Contexts: calling-context-sensitive profiling. A single helper routine
// (copy_rows) is used by two very different callers — a full-table report
// and a single-row lookup. Routine-level profiling mixes both workloads into
// one cost plot; context-sensitive profiling separates them, so each caller
// path gets its own empirical cost function.
package main

import (
	"fmt"
	"log"

	"aprof"
)

const program = `
global table[4096];

fn copy_rows(dst, first, count) {
	for (var i = 0; i < count; i = i + 1) {
		dst[i] = table[first + i];
	}
	return count;
}

fn report(dst, rows) {
	// Reports copy whole table prefixes: large inputs.
	return copy_rows(dst, 0, rows);
}

fn lookup(dst, row) {
	// Lookups copy a single row: tiny inputs.
	return copy_rows(dst, row, 1);
}

fn main() {
	for (var i = 0; i < 4096; i = i + 1) {
		table[i] = i * 3;
	}
	var dst = alloc(4096);
	var total = 0;
	for (var rows = 256; rows <= 4096; rows = rows * 2) {
		total = total + report(dst, rows);
	}
	for (var k = 0; k < 40; k = k + 1) {
		total = total + lookup(dst, k * 100);
	}
	print("rows copied:", total);
}
`

func main() {
	profiles, result, err := aprof.ProfileProgram(program, aprof.VMOptions{}, aprof.ContextSensitiveConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program output: %v\n\n", result.Output)

	// Routine-level view: one plot mixing both callers.
	all := profiles.Routine("copy_rows")
	fmt.Printf("copy_rows (all callers): %d calls, %d distinct drms points\n",
		all.Calls, len(all.DRMSPoints))

	// Context-sensitive view: each caller path separated.
	for _, path := range []string{"main > report > copy_rows", "main > lookup > copy_rows"} {
		p := profiles.Context(path)
		if p == nil {
			log.Fatalf("missing context %q", path)
		}
		fmt.Printf("  %-28s %3d calls, drms range [%d, %d]\n",
			path, p.Calls, minKey(p.DRMSPoints), maxKey(p.DRMSPoints))
	}

	fmt.Println("\nhot calling contexts:")
	for _, cp := range profiles.HotContexts(5) {
		fmt.Printf("  cost %8d  %s\n", cp.Profile.TotalCost, cp.Path)
	}
}

func minKey(points map[uint64]*aprof.CostStats) uint64 {
	first := true
	var out uint64
	for n := range points {
		if first || n < out {
			out = n
			first = false
		}
	}
	return out
}

func maxKey(points map[uint64]*aprof.CostStats) uint64 {
	var out uint64
	for n := range points {
		if n > out {
			out = n
		}
	}
	return out
}
