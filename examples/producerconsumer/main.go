// Producer-consumer: the paper's Pattern 1 (§2, Fig. 2) as a real
// multithreaded MiniLang program. The consumer reads the same memory cell
// over and over, so the classic rms metric reports an input size of 1 no
// matter how much data flowed through; the drms counts every handed-over
// item, exposing the consumer's true workload.
package main

import (
	"fmt"
	"log"

	"aprof"
)

const items = 500

var program = fmt.Sprintf(`
global cell = 0;

fn produceData(i) {
	return i * 7;
}

// Semaphore ids arrive as parameters (VM registers), so the only traced
// memory the pattern touches is the shared cell itself, as in Fig. 2.
fn producer(n, empty, full) {
	for (var i = 0; i < n; i = i + 1) {
		wait(empty);
		cell = produceData(i);
		signal(full);
	}
}

fn consumeData() {
	return cell;
}

fn consumer(n, empty, full) {
	var sum = 0;
	for (var i = 0; i < n; i = i + 1) {
		wait(full);
		sum = sum + consumeData();
		signal(empty);
	}
	print("consumed sum:", sum);
}

fn main() {
	var empty = sem(1);
	var full = sem(0);
	spawn producer(%d, empty, full);
	consumer(%d, empty, full);
}
`, items, items)

func main() {
	profiles, result, err := aprof.ProfileProgram(program, aprof.VMOptions{}, aprof.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program output: %v\n\n", result.Output)

	consumer := profiles.Routine("consumer")
	fmt.Printf("consumer after %d items:\n", items)
	fmt.Printf("  rms  (classic aprof):   %d\n", consumer.SumRMS)
	fmt.Printf("  drms (this paper):      %d\n", consumer.SumDRMS)
	fmt.Printf("  thread-induced reads:   %d\n", consumer.InducedThread)
	fmt.Println()
	fmt.Println("the rms misses the entire dynamic workload: every item arrives by")
	fmt.Println("overwriting the same shared cell, which only induced first-reads see.")

	summary := aprof.Summarize(profiles)
	fmt.Printf("\nrun-level dynamic input volume: %.3f (thread input %.1f%%)\n",
		summary.DynamicInputVolume, summary.ThreadInputPct)
}
