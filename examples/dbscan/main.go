// DBScan: the MySQL case study of §2.1 (Fig. 4). A database server scans
// tables of growing sizes through a fixed-size kernel buffer. Under the rms
// the input size of mysql_select barely grows with the table — the buffer is
// reused — so its cost plot suggests a spurious superlinear complexity.
// The drms counts every buffered row delivered by the kernel and restores
// the true linear cost function.
package main

import (
	"fmt"
	"log"

	"aprof"
	"aprof/internal/workloads"
)

func main() {
	var sizes []int
	for n := 1024; n <= 65536; n *= 2 {
		sizes = append(sizes, n)
	}
	tr := workloads.DBScan(sizes, workloads.DefaultDBScanConfig())

	profiles, err := aprof.ProfileTrace(tr, aprof.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	sel := profiles.Routine("mysql_select")
	fmt.Printf("mysql_select: %d full-table scans profiled\n\n", sel.Calls)

	fmt.Println("worst-case cost plots (input size -> cost in executed basic blocks):")
	fmt.Println("  rms plot:")
	for _, p := range sel.WorstCasePlot(aprof.RMS) {
		fmt.Printf("    %8d -> %9d\n", p.N, p.Cost)
	}
	fmt.Println("  drms plot:")
	for _, p := range sel.WorstCasePlot(aprof.DRMS) {
		fmt.Printf("    %8d -> %9d\n", p.N, p.Cost)
	}

	rmsModel, err := aprof.FitCost(profiles, "mysql_select", aprof.RMS)
	if err != nil {
		log.Fatal(err)
	}
	drmsModel, err := aprof.FitCost(profiles, "mysql_select", aprof.DRMS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("rms  view: apparent growth exponent %.2f -> misleading superlinear trend\n", rmsModel.Exponent)
	fmt.Printf("drms view: apparent growth exponent %.2f, best fit O(%s) -> the real linear scan\n",
		drmsModel.Exponent, drmsModel.ModelName)
}
