// Quickstart: profile a MiniLang program and print its empirical cost
// report. The program scans arrays of growing sizes, so the profiler
// collects one performance point per size and fits a linear cost function.
package main

import (
	"fmt"
	"log"

	"aprof"
)

const program = `
// Sum the elements of an array: cost should be linear in the array size.
fn sum(a, n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) {
		s = s + a[i];
	}
	return s;
}

fn main() {
	var total = 0;
	for (var n = 50; n <= 1000; n = n + 50) {
		var a = alloc(n);
		for (var i = 0; i < n; i = i + 1) {
			a[i] = i;
		}
		total = total + sum(a, n);
	}
	print("total:", total);
}
`

func main() {
	profiles, result, err := aprof.ProfileProgram(program, aprof.VMOptions{}, aprof.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program output: %v (executed %d basic blocks on %d thread(s))\n\n",
		result.Output, result.BasicBlocks, result.Threads)

	fmt.Println(aprof.Report(profiles, aprof.ReportOptions{Fit: true}))

	model, err := aprof.FitCost(profiles, "sum", aprof.DRMS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("empirical cost function of sum: %s\n", model.Formula)
	fmt.Printf("asymptotic class: O(%s), apparent growth exponent %.2f\n", model.ModelName, model.Exponent)
}
