// Streaming: the paper's Pattern 2 (§2, Fig. 3) as a MiniLang program. A
// reader loop refills a small buffer from the outside world via sysread
// (think read(2) on a socket) and processes one value per refill. The rms
// sees a single buffer cell; the drms counts every externally delivered
// value, and the run-level characterization attributes the routine's input
// to external sources.
package main

import (
	"fmt"
	"log"

	"aprof"
)

const program = `
global buf[2];

fn consume() {
	return buf[0];
}

fn stream_reader(n) {
	var sum = 0;
	for (var i = 0; i < n; i = i + 1) {
		sysread(buf, 2);    // the kernel fills the buffer with fresh data
		sum = sum + consume();
	}
	return sum;
}

fn main() {
	print("sum:", stream_reader(400));
}
`

func main() {
	profiles, result, err := aprof.ProfileProgram(program, aprof.VMOptions{}, aprof.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program output: %v\n\n", result.Output)

	reader := profiles.Routine("stream_reader")
	fmt.Println("stream_reader after 400 refills:")
	fmt.Printf("  rms  (classic aprof):    %d\n", reader.SumRMS)
	fmt.Printf("  drms (this paper):       %d\n", reader.SumDRMS)
	fmt.Printf("  external-induced reads:  %d\n", reader.InducedExternal)

	fmt.Println("\nper-routine dynamic workload characterization:")
	for _, m := range aprof.ComputeMetrics(profiles) {
		fmt.Printf("  %-16s thread %5.1f%%  external %5.1f%%  input volume %.3f\n",
			m.Name, m.ThreadInputPct, m.ExternalInputPct, m.InputVolume)
	}
}
