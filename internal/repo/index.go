package repo

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
)

// The index maps blob ID → (pack, offset, length, type). It is a pure
// cache: the authoritative copy of this mapping is the pack headers
// themselves, and Open can always rebuild it by scanning them. A cached
// index file (backend type "index") makes reopening a large store cheap;
// it records the exact pack set it covers, so a cache that disagrees with
// the packs actually present — a crash between a pack write and the index
// rewrite, say — is detected and discarded, never trusted.

// indexEntry locates one blob.
type indexEntry struct {
	pack   string // pack name (hex of the pack file's SHA-256)
	typ    BlobType
	offset uint32
	length uint32
}

// index is the in-memory blob location map.
type index struct {
	blobs map[ID]indexEntry
}

func newIndex() *index {
	return &index{blobs: make(map[ID]indexEntry)}
}

func (ix *index) lookup(id ID) (indexEntry, bool) {
	e, ok := ix.blobs[id]
	return e, ok
}

func (ix *index) has(id ID) bool {
	_, ok := ix.blobs[id]
	return ok
}

// addPack records every entry of a decoded pack header. Duplicate blob IDs
// (the same content stored in two packs, e.g. after an interrupted GC
// repack) keep the first-seen location — both are valid. With overwrite
// set, the new location takes precedence instead: GC uses this when
// repacking live blobs out of packs about to be deleted.
func (ix *index) addPack(name string, entries []packEntry, overwrite bool) {
	for _, e := range entries {
		if _, dup := ix.blobs[e.id]; dup && !overwrite {
			continue
		}
		ix.blobs[e.id] = indexEntry{pack: name, typ: e.typ, offset: e.offset, length: e.length}
	}
}

// dropPack forgets every blob located in the named pack.
func (ix *index) dropPack(name string) {
	for id, e := range ix.blobs {
		if e.pack == name {
			delete(ix.blobs, id)
		}
	}
}

// packNames returns the sorted set of packs the index references.
func (ix *index) packNames() []string {
	seen := make(map[string]struct{})
	for _, e := range ix.blobs {
		seen[e.pack] = struct{}{}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Index cache file format (version 1):
//
//	magic "AIX1" (4)
//	pack count (u32 LE)
//	per pack, sorted by name:
//	    name length (u8) | name | blob count (u32 LE)
//	    per blob, sorted by offset:
//	        type (1) | id (32) | offset (u32 LE) | length (u32 LE)
//	crc (u32 LE, CRC-32/IEEE over everything before it)
//	magic "1XIA" (4)
//
// The encoder emits packs sorted by name and blobs sorted by offset, and
// the decoder rejects any other order (and any duplicate), so an accepted
// index has exactly one byte encoding: EncodeIndex(DecodeIndex(b)) == b.
const (
	indexMagic      = "AIX1"
	indexEndMagic   = "1XIA"
	indexBlobSize   = 1 + 32 + 4 + 4
	indexTrailerLen = 4 + 4
)

// ErrIndexCorrupt wraps every structural index-decode failure.
var ErrIndexCorrupt = errors.New("repo: corrupt index")

func indexCorrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrIndexCorrupt, fmt.Sprintf(format, args...))
}

// IndexPack is the serialized form of one pack's entries.
type IndexPack struct {
	Name  string
	Blobs []IndexBlob
}

// IndexBlob is the serialized form of one blob location.
type IndexBlob struct {
	Type   BlobType
	ID     ID
	Offset uint32
	Length uint32
}

// EncodeIndex serializes the canonical form: packs sorted by name, blobs
// sorted by offset. The input must already be canonical (the repository's
// toIndexPacks produces it); EncodeIndex sorts defensively anyway so the
// emitted bytes are always canonical.
func EncodeIndex(packs []IndexPack) []byte {
	sorted := make([]IndexPack, len(packs))
	copy(sorted, packs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	var buf bytes.Buffer
	buf.WriteString(indexMagic)
	binary.Write(&buf, binary.LittleEndian, uint32(len(sorted)))
	var scratch [4]byte
	for i := range sorted {
		p := &sorted[i]
		blobs := make([]IndexBlob, len(p.Blobs))
		copy(blobs, p.Blobs)
		sort.Slice(blobs, func(a, b int) bool { return blobs[a].Offset < blobs[b].Offset })
		buf.WriteByte(byte(len(p.Name)))
		buf.WriteString(p.Name)
		binary.Write(&buf, binary.LittleEndian, uint32(len(blobs)))
		for _, b := range blobs {
			buf.WriteByte(byte(b.Type))
			buf.Write(b.ID[:])
			binary.LittleEndian.PutUint32(scratch[:], b.Offset)
			buf.Write(scratch[:])
			binary.LittleEndian.PutUint32(scratch[:], b.Length)
			buf.Write(scratch[:])
		}
	}
	binary.LittleEndian.PutUint32(scratch[:], crc32.ChecksumIEEE(buf.Bytes()))
	buf.Write(scratch[:])
	buf.WriteString(indexEndMagic)
	return buf.Bytes()
}

// DecodeIndex parses and validates an index cache file. It enforces the
// canonical ordering (packs strictly ascending by name, blobs strictly
// ascending by offset within a pack) and bounds every count by the bytes
// actually remaining, so hostile input cannot force a large allocation.
func DecodeIndex(data []byte) ([]IndexPack, error) {
	if len(data) < len(indexMagic)+4+indexTrailerLen {
		return nil, indexCorrupt("short file (%d bytes)", len(data))
	}
	if string(data[:4]) != indexMagic {
		return nil, indexCorrupt("bad magic")
	}
	if string(data[len(data)-4:]) != indexEndMagic {
		return nil, indexCorrupt("bad end magic")
	}
	body := data[:len(data)-indexTrailerLen]
	wantCRC := binary.LittleEndian.Uint32(data[len(data)-8 : len(data)-4])
	if crc32.ChecksumIEEE(body) != wantCRC {
		return nil, indexCorrupt("checksum mismatch")
	}
	pos := 4
	packCount := binary.LittleEndian.Uint32(body[pos : pos+4])
	pos += 4
	// Each pack costs at least 1 (name len) + 1 (name) + 4 (count) bytes.
	if int64(packCount) > int64(len(body)-pos)/6 {
		return nil, indexCorrupt("pack count %d exceeds file capacity", packCount)
	}
	packs := make([]IndexPack, 0, packCount)
	var prevName string
	for pi := uint32(0); pi < packCount; pi++ {
		if pos+1 > len(body) {
			return nil, indexCorrupt("truncated at pack %d name length", pi)
		}
		nameLen := int(body[pos])
		pos++
		if nameLen == 0 {
			return nil, indexCorrupt("pack %d: empty name", pi)
		}
		if pos+nameLen+4 > len(body) {
			return nil, indexCorrupt("truncated at pack %d name", pi)
		}
		name := string(body[pos : pos+nameLen])
		pos += nameLen
		if pi > 0 && name <= prevName {
			return nil, indexCorrupt("pack names not strictly ascending (%q after %q)", name, prevName)
		}
		prevName = name
		blobCount := binary.LittleEndian.Uint32(body[pos : pos+4])
		pos += 4
		if int64(blobCount)*indexBlobSize > int64(len(body)-pos) {
			return nil, indexCorrupt("pack %q: blob count %d exceeds file capacity", name, blobCount)
		}
		blobs := make([]IndexBlob, blobCount)
		for bi := range blobs {
			e := body[pos:]
			typ := BlobType(e[0])
			if !typ.valid() {
				return nil, indexCorrupt("pack %q blob %d: unknown type %d", name, bi, e[0])
			}
			blobs[bi].Type = typ
			copy(blobs[bi].ID[:], e[1:33])
			blobs[bi].Offset = binary.LittleEndian.Uint32(e[33:37])
			blobs[bi].Length = binary.LittleEndian.Uint32(e[37:41])
			if bi > 0 && blobs[bi].Offset <= blobs[bi-1].Offset {
				return nil, indexCorrupt("pack %q: blob offsets not strictly ascending", name)
			}
			pos += indexBlobSize
		}
		packs = append(packs, IndexPack{Name: name, Blobs: blobs})
	}
	if pos != len(body) {
		return nil, indexCorrupt("%d trailing bytes after last pack", len(body)-pos)
	}
	return packs, nil
}

// toIndexPacks converts the in-memory index to its canonical serialized
// form.
func (ix *index) toIndexPacks() []IndexPack {
	byPack := make(map[string][]IndexBlob)
	for id, e := range ix.blobs {
		byPack[e.pack] = append(byPack[e.pack], IndexBlob{Type: e.typ, ID: id, Offset: e.offset, Length: e.length})
	}
	packs := make([]IndexPack, 0, len(byPack))
	for name, blobs := range byPack {
		sort.Slice(blobs, func(i, j int) bool { return blobs[i].Offset < blobs[j].Offset })
		packs = append(packs, IndexPack{Name: name, Blobs: blobs})
	}
	sort.Slice(packs, func(i, j int) bool { return packs[i].Name < packs[j].Name })
	return packs
}

// fromIndexPacks loads a decoded cache file into a fresh in-memory index.
func fromIndexPacks(packs []IndexPack) *index {
	ix := newIndex()
	for _, p := range packs {
		entries := make([]packEntry, len(p.Blobs))
		for i, b := range p.Blobs {
			entries[i] = packEntry{typ: b.Type, id: b.ID, offset: b.Offset, length: b.Length}
		}
		ix.addPack(p.Name, entries, false)
	}
	return ix
}
