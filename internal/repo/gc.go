package repo

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"aprof/internal/repo/backend"
)

// GCStats summarizes one garbage-collection pass.
type GCStats struct {
	// Snapshots and Sessions are the root population at mark time.
	Snapshots int
	Sessions  int
	// BlobsLive / BytesLive survive; BlobsFreed / BytesFreed were
	// unreferenced and are gone when GC returns.
	BlobsLive  int
	BytesLive  int64
	BlobsFreed int
	BytesFreed int64
	// BlobsMoved were live blobs rewritten out of partially-live packs.
	BlobsMoved int
	// PacksDeleted counts packs removed (fully dead or repacked away);
	// PacksWritten counts the replacement packs.
	PacksDeleted int
	PacksWritten int
	// Elapsed is the wall time of the pass.
	Elapsed time.Duration
}

func (s GCStats) String() string {
	return fmt.Sprintf("gc: %d roots, %d sessions; freed %d blobs (%d bytes), moved %d, packs -%d/+%d, live %d blobs (%d bytes), %v",
		s.Snapshots, s.Sessions, s.BlobsFreed, s.BytesFreed, s.BlobsMoved, s.PacksDeleted, s.PacksWritten, s.BlobsLive, s.BytesLive, s.Elapsed.Round(time.Millisecond))
}

// RetentionPolicy decides which superseded session versions survive a
// garbage collection. The head of every session is always kept; the
// policy only trims history.
type RetentionPolicy struct {
	// KeepLast keeps at most this many versions per session, the head
	// included: 1 keeps heads only (the classic behavior), 3 keeps the
	// head plus its two most recent predecessors. 0 applies no count
	// limit.
	KeepLast int
	// MaxAge drops history entries whose saved-at time is older than this
	// relative to the repository clock. 0 applies no age limit. Entries
	// with no recorded timestamp are treated as infinitely old.
	MaxAge time.Duration
}

// trim returns entries with the policy applied (entries arrive newest
// first), and whether anything was dropped.
func (p RetentionPolicy) trim(entries []histEntry, now time.Time) ([]histEntry, bool) {
	kept := entries
	if p.KeepLast > 0 {
		max := p.KeepLast - 1 // the head occupies one slot
		if len(kept) > max {
			kept = kept[:max]
		}
	}
	if p.MaxAge > 0 {
		cutoff := now.Add(-p.MaxAge).Unix()
		aged := kept[:0:len(kept)]
		for _, e := range kept {
			if e.SavedAt >= cutoff {
				aged = append(aged, e)
			}
		}
		kept = aged
	}
	return kept, len(kept) != len(entries)
}

// GC removes every blob not reachable from a snapshot root, keeping only
// each session's head version — the classic keep-latest-head collection.
// Equivalent to GCWithPolicy with KeepLast 1.
func (r *Repository) GC() (GCStats, error) {
	return r.GCWithPolicy(RetentionPolicy{KeepLast: 1})
}

// GCWithPolicy first applies the retention policy — writing one trimmed
// root (new root saved before the old ones are pruned, so a crash at any
// instant still roots every retained blob) — and then removes every blob
// no longer reachable: fully dead packs are deleted, partially live packs
// are rewritten to hold only their live blobs, and the index cache is
// refreshed. The zero policy trims nothing: every recorded version stays.
//
// Crash safety: the pass is trim (root rewrite, old-roots prune), then
// mark (read-only), then save replacement packs, then delete old packs. A
// kill before the saves loses nothing; a kill between a save and the
// deletes leaves live blobs stored twice (the index keeps one, the next
// GC drops the rest); a kill mid-delete leaves some dead packs for the
// next pass. At no point is a retained blob in no saved pack.
func (r *Repository) GCWithPolicy(policy RetentionPolicy) (GCStats, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	start := time.Now()
	var stats GCStats

	if err := r.flushLocked(); err != nil {
		return stats, err
	}
	if err := r.applyRetentionLocked(policy); err != nil {
		return stats, err
	}
	live, err := r.markLiveLocked()
	if err != nil {
		return stats, fmt.Errorf("repo: gc mark: %w", err)
	}
	stats.Snapshots = len(r.snaps)
	stats.Sessions = len(r.sessions)

	// Partition every pack into keep / delete / repack.
	byPack := make(map[string][]IndexBlob)
	for _, p := range r.ix.toIndexPacks() {
		byPack[p.Name] = p.Blobs
	}
	packNames := make([]string, 0, len(byPack))
	for name := range byPack {
		packNames = append(packNames, name)
	}
	sort.Strings(packNames)

	var doomed []string   // packs to delete after repacking
	var moved []IndexBlob // live blobs to rewrite
	movedFrom := make(map[ID]string)
	for _, name := range packNames {
		blobs := byPack[name]
		liveHere := 0
		for _, b := range blobs {
			if _, ok := live[b.ID]; ok {
				liveHere++
			}
		}
		switch {
		case liveHere == len(blobs):
			continue // fully live: keep as is
		case liveHere == 0:
			doomed = append(doomed, name)
			for _, b := range blobs {
				stats.BlobsFreed++
				stats.BytesFreed += int64(b.Length)
			}
		default:
			doomed = append(doomed, name)
			for _, b := range blobs {
				if _, ok := live[b.ID]; ok {
					moved = append(moved, b)
					movedFrom[b.ID] = name
				} else {
					stats.BlobsFreed++
					stats.BytesFreed += int64(b.Length)
				}
			}
		}
	}

	// Delete damaged packs quarantined at open before anything is written:
	// they hold no indexed blobs (nothing referenced is served from them),
	// and — because packs are content-addressed — a replacement pack
	// written below could land on the SAME name a torn pack occupies
	// (identical live blobs encode to identical bytes). Removing the
	// wreckage first makes that collision a clean overwrite, not a
	// delete-after-rewrite data loss.
	for _, name := range r.damaged {
		if _, indexed := byPack[name]; indexed {
			continue // name resurrected by a completed save; not wreckage
		}
		if err := r.be.Remove(backend.Handle{Type: backend.PackType, Name: name}); err != nil && !errors.Is(err, backend.ErrNotFound) {
			return stats, err
		}
		stats.PacksDeleted++
		r.m.packsDeleted.Inc()
	}
	r.damaged = nil

	// Torn snapshot files quarantined at open get the same treatment: they
	// are not roots, so they hold nothing live, and a later snapshot of
	// identical content would reuse their name (skip those — the torn file
	// was overwritten by a completed save).
	for _, name := range r.damagedSnaps {
		if _, ok := r.snaps[name]; ok {
			continue
		}
		if err := r.be.Remove(backend.Handle{Type: backend.SnapshotType, Name: name}); err != nil && !errors.Is(err, backend.ErrNotFound) {
			return stats, err
		}
	}
	r.damagedSnaps = nil

	// Rewrite the live remnants of partially-live packs into fresh packs,
	// batching up to the normal pack target size.
	var batch []Blob
	var batchBytes int
	flushBatch := func() error {
		if len(batch) == 0 {
			return nil
		}
		// overwrite: the moved blobs' index entries still point at the
		// doomed packs; the replacement pack must take precedence before
		// the old packs go away.
		if _, err := r.savePackOverwriteLocked(batch); err != nil {
			return err
		}
		stats.PacksWritten++
		batch, batchBytes = nil, 0
		return nil
	}
	for _, b := range moved {
		data, err := r.loadBlobLocked(b.ID, b.Type)
		if err != nil {
			return stats, fmt.Errorf("repo: gc repack of %s (pack %s): %w", b.ID.Short(), movedFrom[b.ID][:8], err)
		}
		batch = append(batch, Blob{Type: b.Type, ID: b.ID, Data: append([]byte(nil), data...)})
		batchBytes += int(b.Length)
		stats.BlobsMoved++
		if batchBytes >= packTargetSize {
			if err := flushBatch(); err != nil {
				return stats, err
			}
		}
	}
	if err := flushBatch(); err != nil {
		return stats, err
	}

	// Every live blob now has a home outside the doomed packs; delete them.
	for _, name := range doomed {
		if err := r.be.Remove(backend.Handle{Type: backend.PackType, Name: name}); err != nil && !errors.Is(err, backend.ErrNotFound) {
			return stats, err
		}
		r.ix.dropPack(name)
		r.packCacheInvalidate(name)
		stats.PacksDeleted++
		r.m.packsDeleted.Inc()
	}

	if err := r.writeIndexCacheLocked(); err != nil {
		return stats, err
	}

	stats.BlobsLive = len(r.ix.blobs)
	liveBytes, _ := r.updateByteGauges(live)
	stats.BytesLive = liveBytes
	r.updateGauges()
	stats.Elapsed = time.Since(start)
	r.m.gcRuns.Inc()
	r.m.gcLatency.Observe(sinceMicros(start))
	return stats, nil
}

// applyRetentionLocked trims session history to the policy. When nothing
// is trimmed — the head-only default on a store with no history, or a
// policy everything already satisfies — it is a pure no-op: no root is
// written, no backend op happens, and GC behaves exactly as it did before
// retention existed.
func (r *Repository) applyRetentionLocked(policy RetentionPolicy) error {
	now := r.now()
	trimmed := make(map[string][]histEntry, len(r.history))
	changed := false
	for sid, entries := range r.history {
		kept, dropped := policy.trim(sortedHistory(entries), now)
		changed = changed || dropped
		if len(kept) > 0 {
			trimmed[sid] = append([]histEntry(nil), kept...)
		}
	}
	if !changed {
		return nil
	}
	newName, err := r.snapshotLocked(cloneSessions(r.sessions), cloneSavedAt(r.savedAt), trimmed)
	if err != nil {
		return fmt.Errorf("repo: retention trim: %w", err)
	}
	// The trimmed root holds the full retained set; prune the roots it
	// supersedes. A crash mid-prune leaves extra roots, which only hold
	// more blobs live — never fewer.
	for name := range r.snaps {
		if name == newName {
			continue
		}
		if err := r.be.Remove(backend.Handle{Type: backend.SnapshotType, Name: name}); err != nil && !errors.Is(err, backend.ErrNotFound) {
			return err
		}
		delete(r.snaps, name)
	}
	r.rebuildSessionView()
	return nil
}

// packCacheInvalidate drops the one-entry pack cache if it holds a
// deleted pack.
func (r *Repository) packCacheInvalidate(name string) {
	if r.packCacheName == name {
		r.packCacheName, r.packCacheData = "", nil
	}
}
