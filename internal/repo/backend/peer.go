package backend

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"aprof/internal/replica/wire"
)

// Peer is a Backend backed by another cluster node's profile repository,
// fetched over the APRR replication protocol (the node serves its local
// backend read-only on its ingest port). It is the second real Backend
// implementation behind the same narrow interface: `repo.Open` over a
// Peer reads and verifies a remote repository without any shared
// filesystem, and `repo.Sync` pulls a peer's missing blobs through it.
//
// Peer is read-only by design: anti-entropy is pull-only — every node
// mutates only its own store — which is what keeps cluster sync
// idempotent and crash-safe. Save and Remove return ErrPeerReadOnly.
//
// A Peer keeps one cached connection, serializes requests on it, and
// redials once when the connection has gone bad (peer restart,
// idle-timeout cut, mid-transfer reset); every payload arrives CRC-
// guarded, so a torn transfer is an error, never silent corruption.
type Peer struct {
	addr string
	opts PeerOptions

	mu     sync.Mutex
	conn   net.Conn
	br     *bufio.Reader
	closed bool
}

// PeerOptions tunes a Peer.
type PeerOptions struct {
	// DialTimeout / IOTimeout bound the dial and each request round-trip
	// (defaults 2s / 30s — pack transfers are bigger than checkpoint pushes).
	DialTimeout time.Duration
	IOTimeout   time.Duration
	// Dial overrides the dial function (tests inject chaos links).
	Dial func(addr string) (net.Conn, error)
}

// ErrPeerReadOnly is returned by Peer.Save and Peer.Remove: remote stores
// are never mutated — sync pulls, it does not push.
var ErrPeerReadOnly = errors.New("backend: peer backend is read-only")

// NewPeer returns a Backend reading from the aprofd node at addr. No
// connection is made until the first request.
func NewPeer(addr string, opts PeerOptions) *Peer {
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 2 * time.Second
	}
	if opts.IOTimeout <= 0 {
		opts.IOTimeout = 30 * time.Second
	}
	if opts.Dial == nil {
		timeout := opts.DialTimeout
		opts.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	return &Peer{addr: addr, opts: opts}
}

// Addr returns the peer's address.
func (p *Peer) Addr() string { return p.addr }

// Save is rejected: see ErrPeerReadOnly.
func (p *Peer) Save(h Handle, data []byte) error {
	return fmt.Errorf("%w: cannot save %s to %s", ErrPeerReadOnly, h, p.addr)
}

// Remove is rejected: see ErrPeerReadOnly.
func (p *Peer) Remove(h Handle) error {
	return fmt.Errorf("%w: cannot remove %s from %s", ErrPeerReadOnly, h, p.addr)
}

// Load fetches one object from the peer.
func (p *Peer) Load(h Handle) ([]byte, error) {
	resp, err := p.roundTrip(wire.Request{Kind: wire.KindLoad, Type: string(h.Type), Name: h.Name})
	if err != nil {
		return nil, fmt.Errorf("backend: peer %s: load %s: %w", p.addr, h, err)
	}
	switch resp.Status {
	case wire.StatusOK:
		return resp.Data, nil
	case wire.StatusNotFound:
		return nil, fmt.Errorf("%w: %s", ErrNotFound, h)
	default:
		return nil, fmt.Errorf("backend: peer %s: load %s: %s", p.addr, h, respMsg(resp))
	}
}

// List fetches the names of every object of type t from the peer.
func (p *Peer) List(t Type) ([]string, error) {
	resp, err := p.roundTrip(wire.Request{Kind: wire.KindList, Type: string(t)})
	if err != nil {
		return nil, fmt.Errorf("backend: peer %s: list %s: %w", p.addr, t, err)
	}
	if resp.Status != wire.StatusOK {
		return nil, fmt.Errorf("backend: peer %s: list %s: %s", p.addr, t, respMsg(resp))
	}
	return resp.Names, nil
}

// Close tears down the cached connection. Further requests fail.
func (p *Peer) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	if p.conn != nil {
		p.conn.Close()
		p.conn, p.br = nil, nil
	}
	return nil
}

func (p *Peer) roundTrip(req wire.Request) (wire.Response, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return wire.Response{}, errors.New("peer backend closed")
	}
	for attempt := 0; ; attempt++ {
		if p.conn == nil {
			conn, err := p.opts.Dial(p.addr)
			if err != nil {
				return wire.Response{}, err
			}
			conn.SetWriteDeadline(time.Now().Add(p.opts.IOTimeout))
			if _, err := conn.Write(wire.AppendHandshake(nil)); err != nil {
				conn.Close()
				return wire.Response{}, err
			}
			conn.SetWriteDeadline(time.Time{})
			p.conn, p.br = conn, bufio.NewReader(conn)
		}
		p.conn.SetDeadline(time.Now().Add(p.opts.IOTimeout))
		_, werr := p.conn.Write(wire.AppendRequest(nil, req))
		var resp wire.Response
		var err error
		if werr != nil {
			err = werr
		} else {
			resp, err = wire.ReadResponse(p.br)
		}
		p.conn.SetDeadline(time.Time{})
		if err == nil {
			return resp, nil
		}
		p.conn.Close()
		p.conn, p.br = nil, nil
		if attempt > 0 {
			return wire.Response{}, err
		}
	}
}

func respMsg(resp wire.Response) string {
	if resp.Status == wire.StatusErr {
		return resp.Msg
	}
	return fmt.Sprintf("unexpected status %q", resp.Status)
}
