package backend

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Local is the directory-backed Backend: one subdirectory per handle type,
// one file per object. Saves go through a same-directory temp file plus
// rename (WriteAtomic), so a killed save leaves no torn object — at worst
// an orphaned dot-temp file that List never reports and Create/open
// cleanup sweeps away.
type Local struct {
	dir string
}

// OpenLocal returns a Local rooted at dir, creating the directory layout
// if needed and sweeping any temp files a previous crash left behind.
func OpenLocal(dir string) (*Local, error) {
	for _, t := range Types {
		sub := filepath.Join(dir, string(t))
		if t == ConfigType {
			sub = dir // the config document lives at the root
		}
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, err
		}
	}
	l := &Local{dir: dir}
	l.sweepTemp()
	return l, nil
}

// Dir returns the root directory.
func (l *Local) Dir() string { return l.dir }

// sweepTemp removes leftover temp files from crashed saves. Best-effort:
// a sweep failure only leaves harmless garbage.
func (l *Local) sweepTemp() {
	for _, t := range Types {
		entries, err := os.ReadDir(l.typeDir(t))
		if err != nil {
			continue
		}
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), ".") && strings.Contains(e.Name(), ".tmp") {
				os.Remove(filepath.Join(l.typeDir(t), e.Name()))
			}
		}
	}
}

func (l *Local) typeDir(t Type) string {
	if t == ConfigType {
		return l.dir
	}
	return filepath.Join(l.dir, string(t))
}

func (l *Local) path(h Handle) (string, error) {
	if err := validName(h.Name); err != nil {
		return "", err
	}
	switch h.Type {
	case ConfigType, PackType, SnapshotType, IndexType:
	default:
		return "", fmt.Errorf("backend: unknown handle type %q", h.Type)
	}
	return filepath.Join(l.typeDir(h.Type), h.Name), nil
}

// Save implements Backend.
func (l *Local) Save(h Handle, data []byte) error {
	path, err := l.path(h)
	if err != nil {
		return err
	}
	return WriteAtomic(path, data, 0o644)
}

// Load implements Backend.
func (l *Local) Load(h Handle) ([]byte, error) {
	path, err := l.path(h)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, h)
	}
	return data, err
}

// List implements Backend.
func (l *Local) List(t Type) ([]string, error) {
	entries, err := os.ReadDir(l.typeDir(t))
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		if t == ConfigType && e.Name() != "config" {
			continue // the root dir also holds the type subdirectories
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// Remove implements Backend.
func (l *Local) Remove(h Handle) error {
	path, err := l.path(h)
	if err != nil {
		return err
	}
	err = os.Remove(path)
	if errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("%w: %s", ErrNotFound, h)
	}
	return err
}
