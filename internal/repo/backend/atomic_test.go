package backend

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// resultPayload builds a valid result-file JSON document whose truncation
// at any byte is detectable (json.Valid fails or the end marker is gone).
func resultPayload(seq, padLen int) []byte {
	return []byte(fmt.Sprintf(`{"seq":%d,"pad":%q,"complete":true}`,
		seq, strings.Repeat("x", padLen)))
}

// validResult reports whether data is a complete payload.
func validResult(data []byte) bool {
	return json.Valid(data) && bytes.HasSuffix(bytes.TrimSpace(data), []byte(`"complete":true}`))
}

// TestHelperAtomicWriteLoop is not a test: it is the child process of
// TestKilledWriteNeverLeavesTruncatedJSON, re-executed from the test
// binary. It rewrites one result file as fast as it can until killed.
func TestHelperAtomicWriteLoop(t *testing.T) {
	dir := os.Getenv("APROF_ATOMIC_WRITE_DIR")
	if dir == "" {
		t.Skip("helper process for TestKilledWriteNeverLeavesTruncatedJSON")
	}
	path := filepath.Join(dir, "session.json")
	for seq := 0; ; seq++ {
		// Vary the size so a torn write would change the length, not just
		// trailing bytes.
		if err := WriteAtomic(path, resultPayload(seq, 1024+(seq%7)*4096), 0o644); err != nil {
			t.Fatalf("WriteAtomic: %v", err)
		}
	}
}

// TestKilledWriteNeverLeavesTruncatedJSON is the regression test for the
// result-dir durability fix: a process SIGKILLed at a random instant while
// rewriting a result file must leave either a complete old document, a
// complete new document, or no file — never truncated JSON. Before the
// atomic-write fix a kill inside the data write could leave a partial
// file under the final name.
func TestKilledWriteNeverLeavesTruncatedJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills helper processes")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "session.json")
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	sawFile := false
	for round := 0; round < 12; round++ {
		cmd := exec.Command(os.Args[0], "-test.run", "TestHelperAtomicWriteLoop")
		cmd.Env = append(os.Environ(), "APROF_ATOMIC_WRITE_DIR="+dir)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Duration(1+rng.Intn(25)) * time.Millisecond)
		cmd.Process.Kill()
		cmd.Wait()

		data, err := os.ReadFile(path)
		switch {
		case os.IsNotExist(err):
			// Killed before the first rename ever landed: acceptable.
		case err != nil:
			t.Fatalf("round %d: %v", round, err)
		default:
			sawFile = true
			if !validResult(data) {
				t.Fatalf("round %d: result file is truncated or torn (%d bytes): %.80q...", round, len(data), data)
			}
		}
	}
	if !sawFile {
		t.Skip("no round survived to a first rename; nothing verified")
	}
}

// TestWriteAtomicConcurrentReaderSeesWholeFiles: readers polling the path
// while it is rewritten must only ever observe complete documents.
func TestWriteAtomicConcurrentReaderSeesWholeFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "session.json")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var failed atomic.Bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			data, err := os.ReadFile(path)
			if err != nil {
				continue // not yet written
			}
			if !validResult(data) {
				failed.Store(true)
				return
			}
		}
	}()
	for seq := 0; seq < 400; seq++ {
		if err := WriteAtomic(path, resultPayload(seq, 512+(seq%5)*2048), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if failed.Load() {
		t.Fatal("a reader observed a truncated or torn result file")
	}
}

// TestWriteAtomicFailureLeavesNoTemp: every failure path must remove the
// temp file so result directories never accumulate litter.
func TestWriteAtomicFailureLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	// Rename failure: the destination is an existing non-empty directory.
	blocked := filepath.Join(dir, "blocked.json")
	if err := os.MkdirAll(filepath.Join(blocked, "x"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := WriteAtomic(blocked, []byte("{}"), 0o644); err == nil {
		t.Fatal("WriteAtomic over a directory succeeded")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file left behind after failure: %s", e.Name())
		}
	}
}
