// Package backend defines the narrow storage interface beneath the
// content-addressed profile repository, plus its first implementation (a
// local directory). The repository never touches the filesystem directly:
// everything it persists goes through a Backend as an opaque
// (type, name) → bytes mapping, so swapping the local directory for an
// object store, a remote KV service, or a fault-injecting test wrapper
// changes nothing above this line.
package backend

import (
	"errors"
	"fmt"
)

// Type partitions the handle namespace. Each type is an independent
// name → bytes map; the repository decides what lives in each.
type Type string

// The handle types the repository uses.
const (
	// ConfigType holds the single repository config document (name "config").
	ConfigType Type = "config"
	// PackType holds immutable pack files of checksummed blobs.
	PackType Type = "packs"
	// SnapshotType holds snapshot documents — the GC roots.
	SnapshotType Type = "snapshots"
	// IndexType holds the cached index (an optimization only: the index is
	// always reconstructible from pack headers).
	IndexType Type = "index"
)

// Types lists every handle type, for tools that walk a whole backend.
var Types = []Type{ConfigType, PackType, SnapshotType, IndexType}

// Handle names one stored object.
type Handle struct {
	Type Type
	Name string
}

func (h Handle) String() string { return fmt.Sprintf("%s/%s", h.Type, h.Name) }

// ErrNotFound is returned (wrapped) by Load and Remove for absent handles.
var ErrNotFound = errors.New("backend: object not found")

// Backend is the storage contract. Implementations must make Save atomic
// and durable: after Save returns nil the object is fully readable under
// its handle, and a crash at any earlier point leaves either the previous
// object or nothing — never a torn or partial one. Objects are immutable
// in practice (the repository content-addresses every name), but Save of
// an existing name must still be a safe overwrite.
//
// Implementations must be safe for concurrent use.
type Backend interface {
	// Save atomically stores data under h.
	Save(h Handle, data []byte) error
	// Load returns the object's bytes (ErrNotFound if absent).
	Load(h Handle) ([]byte, error)
	// List returns the names of every object of type t, in lexical order.
	List(t Type) ([]string, error)
	// Remove deletes the object (ErrNotFound if absent).
	Remove(h Handle) error
}

// validName rejects handle names that could escape a directory layout or
// collide with temp files. Names the repository generates (hex digests and
// "config") always pass.
func validName(name string) error {
	if name == "" {
		return errors.New("backend: empty object name")
	}
	for _, r := range name {
		ok := r == '-' || r == '.' || r == '_' ||
			(r >= '0' && r <= '9') || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !ok {
			return fmt.Errorf("backend: invalid object name %q", name)
		}
	}
	if name[0] == '.' {
		return fmt.Errorf("backend: invalid object name %q", name)
	}
	return nil
}
