package backend

import (
	"os"
	"path/filepath"
)

// WriteAtomic writes data to path so that a crash at any instant leaves
// either the complete new file, the complete previous file, or nothing —
// never a truncated one. It writes a same-directory temp file, fsyncs it,
// renames it over path, and fsyncs the directory so the rename itself is
// durable. The temp file is removed on every failure path.
func WriteAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a completed rename survives power loss.
// Filesystems that cannot fsync a directory (rare) are tolerated: the
// rename already happened, so at worst durability regresses to the
// filesystem's own guarantee.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync()
	return nil
}
