package repo_test

// Store-to-store anti-entropy: Sync pulls whatever a peer's repository
// holds that this one lacks, merges session views deterministically, and
// is idempotent once converged. These tests run backend-to-backend (the
// network transport has its own suite under internal/replica).

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"aprof/internal/repo"
	"aprof/internal/repo/backend"
)

func openPair(t *testing.T) (*repo.Repository, backend.Backend, *repo.Repository, backend.Backend) {
	t.Helper()
	beA, err := backend.OpenLocal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ra, err := repo.OpenOrInit(beA, repo.Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	beB, err := backend.OpenLocal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := repo.OpenOrInit(beB, repo.Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ra.Close(); rb.Close() })
	return ra, beA, rb, beB
}

func TestSyncPullsEverything(t *testing.T) {
	ra, beA, rb, _ := openPair(t)

	docs := map[string][]byte{}
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("sess-%d", i)
		docs[id] = syntheticDoc(int64(100+i), 4096*(i+1))
		if err := ra.SaveProfile(id, docs[id]); err != nil {
			t.Fatal(err)
		}
	}
	if err := ra.Flush(); err != nil {
		t.Fatal(err)
	}

	stats, err := rb.Sync(beA)
	if err != nil {
		t.Fatalf("sync: %v", err)
	}
	if stats.SessionsAdopted != 4 {
		t.Fatalf("adopted %d sessions, want 4 (%s)", stats.SessionsAdopted, stats)
	}
	if stats.PacksPulled == 0 || !stats.RootWritten {
		t.Fatalf("sync pulled nothing or wrote no root: %s", stats)
	}
	for id, want := range docs {
		got, err := rb.GetSession(id)
		if err != nil {
			t.Fatalf("%s after sync: %v", id, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: synced bytes differ", id)
		}
	}
	if rep := rb.Check(); !rep.OK() {
		t.Fatalf("synced store fails check: %v", rep.Errors)
	}
}

func TestSyncIdempotentOnceConverged(t *testing.T) {
	ra, beA, rb, _ := openPair(t)
	if err := ra.SaveProfile("only", syntheticDoc(7, 8192)); err != nil {
		t.Fatal(err)
	}
	if err := ra.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := rb.Sync(beA); err != nil {
		t.Fatal(err)
	}

	again, err := rb.Sync(beA)
	if err != nil {
		t.Fatal(err)
	}
	if again.PacksPulled != 0 || again.RootWritten || again.SessionsAdopted != 0 {
		t.Fatalf("converged sync did work: %s", again)
	}
}

// Divergent heads for the same session must converge to the same winner
// no matter which side syncs from which, and the losing head must survive
// as a retained version, not vanish.
func TestSyncDivergentHeadsConverge(t *testing.T) {
	ra, beA, rb, beB := openPair(t)

	docA := syntheticDoc(1, 6000)
	docB := syntheticDoc(2, 6000)
	if err := ra.SaveProfile("shared", docA); err != nil {
		t.Fatal(err)
	}
	if err := ra.SaveProfile("a-only", syntheticDoc(3, 3000)); err != nil {
		t.Fatal(err)
	}
	if err := rb.SaveProfile("shared", docB); err != nil {
		t.Fatal(err)
	}
	if err := rb.SaveProfile("b-only", syntheticDoc(4, 3000)); err != nil {
		t.Fatal(err)
	}
	if err := ra.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := rb.Flush(); err != nil {
		t.Fatal(err)
	}

	if _, err := ra.Sync(beB); err != nil {
		t.Fatalf("A<-B: %v", err)
	}
	if _, err := rb.Sync(beA); err != nil {
		t.Fatalf("B<-A: %v", err)
	}

	gotA, err := ra.GetSession("shared")
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := rb.GetSession("shared")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotA, gotB) {
		t.Fatal("divergent heads did not converge to the same winner")
	}
	if !bytes.Equal(gotA, docA) && !bytes.Equal(gotA, docB) {
		t.Fatal("winner is neither original head")
	}
	// Both sides now hold both unique sessions.
	for _, r := range []*repo.Repository{ra, rb} {
		for _, id := range []string{"a-only", "b-only"} {
			if _, err := r.GetSession(id); err != nil {
				t.Fatalf("%s missing after bidirectional sync: %v", id, err)
			}
		}
		// The losing head is retained as a version on at least the side
		// that was superseded; on both sides the winner's version list
		// must include it once views converge.
		if vs := r.Versions("shared"); len(vs) < 2 {
			t.Fatalf("losing head was not retained: %d versions", len(vs))
		}
		if rep := r.Check(); !rep.OK() {
			t.Fatalf("store fails check after convergence: %v", rep.Errors)
		}
	}

	// Fully converged now: one more pull each way is a no-op.
	sa, err := ra.Sync(beB)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := rb.Sync(beA)
	if err != nil {
		t.Fatal(err)
	}
	if sa.RootWritten || sb.RootWritten {
		t.Fatalf("converged pair still writing roots: A=%s B=%s", sa, sb)
	}
}

// A remote session whose blobs cannot all be pulled (the remote lost or
// GC'd a pack mid-round) is skipped and retried later — never adopted
// half-servable.
func TestSyncSkipsUnresolvableSessions(t *testing.T) {
	ra, beA, rb, _ := openPair(t)

	if err := ra.SaveProfile("intact", syntheticDoc(10, 5000)); err != nil {
		t.Fatal(err)
	}
	if err := ra.Flush(); err != nil {
		t.Fatal(err)
	}
	before, err := beA.List(backend.PackType)
	if err != nil {
		t.Fatal(err)
	}
	if err := ra.SaveProfile("doomed", syntheticDoc(11, 5000)); err != nil {
		t.Fatal(err)
	}
	if err := ra.Flush(); err != nil {
		t.Fatal(err)
	}

	// Destroy exactly the packs added by the second save — "doomed" now
	// references blobs nobody can serve.
	after, err := beA.List(backend.PackType)
	if err != nil {
		t.Fatal(err)
	}
	old := map[string]bool{}
	for _, name := range before {
		old[name] = true
	}
	removed := 0
	for _, name := range after {
		if !old[name] {
			if err := beA.Remove(backend.Handle{Type: backend.PackType, Name: name}); err != nil {
				t.Fatal(err)
			}
			removed++
		}
	}
	if removed == 0 {
		t.Fatal("second save added no pack; test setup broken")
	}

	stats, err := rb.Sync(beA)
	if err != nil {
		t.Fatalf("sync: %v", err)
	}
	if stats.SessionsSkipped == 0 {
		t.Fatalf("unresolvable session was not skipped: %s", stats)
	}
	if _, err := rb.GetSession("intact"); err != nil {
		t.Fatalf("resolvable session not adopted: %v", err)
	}
	if _, err := rb.GetSession("doomed"); err == nil {
		t.Fatal("unresolvable session was adopted")
	}
	if rep := rb.Check(); !rep.OK() {
		t.Fatalf("store fails check after partial sync: %v", rep.Errors)
	}
}

// Remote retained history rides along: after sync, old versions of a
// remote session are servable locally.
func TestSyncMergesHistory(t *testing.T) {
	t0 := time.Unix(1_700_000_000, 0)
	clock := t0
	beA, err := backend.OpenLocal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ra, err := repo.OpenOrInit(beA, repo.Options{Clock: func() time.Time { return clock }})
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()

	v1 := syntheticDoc(20, 4000)
	v2 := mutateDoc(v1, 21)
	if err := ra.SaveProfile("evolving", v1); err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(time.Hour)
	if err := ra.SaveProfile("evolving", v2); err != nil {
		t.Fatal(err)
	}
	if err := ra.Flush(); err != nil {
		t.Fatal(err)
	}

	beB, err := backend.OpenLocal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := repo.OpenOrInit(beB, repo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()
	if _, err := rb.Sync(beA); err != nil {
		t.Fatal(err)
	}

	vs := rb.Versions("evolving")
	if len(vs) != 2 {
		t.Fatalf("synced store has %d versions, want 2", len(vs))
	}
	head, err := rb.GetVersion("evolving", vs[0].Manifest)
	if err != nil {
		t.Fatal(err)
	}
	prev, err := rb.GetVersion("evolving", vs[1].Manifest)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(head, v2) || !bytes.Equal(prev, v1) {
		t.Fatal("synced versions do not match the remote's history")
	}
}
