package repo

import (
	"fmt"

	"aprof/internal/repo/backend"
)

// CheckReport is the result of a full store verification.
type CheckReport struct {
	Packs     int
	Blobs     int
	Snapshots int
	Sessions  int
	// Errors are integrity violations: a referenced blob that cannot be
	// served, a pack whose contents fail verification, a corrupt root.
	Errors []string
	// Warnings are recoverable anomalies: a stale or corrupt index cache,
	// an unreferenced damaged pack. The store still serves everything.
	Warnings []string
}

// OK reports whether the store passed verification.
func (c *CheckReport) OK() bool { return len(c.Errors) == 0 }

func (c *CheckReport) errorf(format string, args ...any) {
	c.Errors = append(c.Errors, fmt.Sprintf(format, args...))
}

func (c *CheckReport) warnf(format string, args ...any) {
	c.Warnings = append(c.Warnings, fmt.Sprintf(format, args...))
}

// Check verifies the whole store from the backend up, trusting nothing
// in memory: it re-reads and fully verifies every pack (framing, header
// CRC, every blob's CRC-32 and SHA-256), re-reads every snapshot, and
// proves every referenced manifest and chunk is servable from a verified
// pack. The in-memory index is not consulted — Check is what the crash
// sweep runs against a freshly killed store.
func (r *Repository) Check() *CheckReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	report := &CheckReport{}

	// Verify every pack and build an independent blob map.
	verified := make(map[ID]BlobType)
	packNames, err := r.be.List(backend.PackType)
	if err != nil {
		report.errorf("listing packs: %v", err)
		return report
	}
	for _, name := range packNames {
		data, err := r.be.Load(backend.Handle{Type: backend.PackType, Name: name})
		if err != nil {
			report.errorf("pack %s: %v", short(name), err)
			continue
		}
		if IDOf(data).String() != name {
			// Damaged (torn, tampered) packs are quarantined, never served.
			// They become an error only if something referenced lived there,
			// which the root walk below reports as a missing blob.
			report.warnf("pack %s: file content does not match its name", short(name))
			continue
		}
		blobs, derr := DecodePack(data)
		if derr != nil {
			report.warnf("pack %s: %v", short(name), derr)
			continue
		}
		report.Packs++
		for _, b := range blobs {
			verified[b.ID] = b.Type
			report.Blobs++
		}
	}

	// Walk every root and prove its closure is servable.
	snapNames, err := r.be.List(backend.SnapshotType)
	if err != nil {
		report.errorf("listing snapshots: %v", err)
		return report
	}
	sessions := make(map[string]struct{})
	for _, name := range snapNames {
		data, err := r.be.Load(backend.Handle{Type: backend.SnapshotType, Name: name})
		if err != nil {
			report.errorf("snapshot %s: %v", short(name), err)
			continue
		}
		if IDOf(data).String() != name {
			// Torn write: never acknowledged, never honored as a root.
			report.warnf("snapshot %s: file content does not match its name", short(name))
			continue
		}
		doc, derr := decodeSnapshot(data)
		if derr != nil {
			report.errorf("snapshot %s: %v", short(name), derr)
			continue
		}
		report.Snapshots++
		checkManifest := func(sid string, mid ID) {
			typ, ok := verified[mid]
			if !ok {
				report.errorf("snapshot %s session %q: manifest %s missing", short(name), sid, mid.Short())
				return
			}
			if typ != BlobManifest {
				report.errorf("snapshot %s session %q: blob %s is a %s, not a manifest", short(name), sid, mid.Short(), typ)
				return
			}
			mdata, err := r.loadVerifiedBlob(mid)
			if err != nil {
				report.errorf("snapshot %s session %q: manifest %s: %v", short(name), sid, mid.Short(), err)
				return
			}
			size, chunks, merr := decodeManifest(mdata)
			if merr != nil {
				report.errorf("snapshot %s session %q: manifest %s: %v", short(name), sid, mid.Short(), merr)
				return
			}
			total := 0
			broken := false
			for _, cid := range chunks {
				typ, ok := verified[cid]
				if !ok || typ != BlobChunk {
					report.errorf("session %q: chunk %s missing or mistyped", sid, cid.Short())
					broken = true
					continue
				}
				cdata, err := r.loadVerifiedBlob(cid)
				if err != nil {
					report.errorf("session %q: chunk %s: %v", sid, cid.Short(), err)
					broken = true
					continue
				}
				total += len(cdata)
			}
			if !broken && total != size {
				report.errorf("session %q: chunks total %d bytes, manifest says %d", sid, total, size)
			}
		}
		for sid, mid := range doc.sessions {
			sessions[sid] = struct{}{}
			checkManifest(sid, mid)
			// Retained history versions are roots too: a retention policy
			// promised they stay servable until it trims them.
			for _, he := range doc.history[sid] {
				hid, perr := ParseID(he.Manifest)
				if perr != nil {
					report.errorf("snapshot %s history of %q: %v", short(name), sid, perr)
					continue
				}
				checkManifest(sid, hid)
			}
		}
	}
	report.Sessions = len(sessions)

	// The index cache is only a cache, but a stale one is worth a warning.
	if ixNames, err := r.be.List(backend.IndexType); err == nil {
		for _, name := range ixNames {
			data, err := r.be.Load(backend.Handle{Type: backend.IndexType, Name: name})
			if err != nil {
				report.warnf("index cache %s: %v", short(name), err)
				continue
			}
			if _, derr := DecodeIndex(data); derr != nil {
				report.warnf("index cache %s: %v (will be rebuilt from pack headers)", short(name), derr)
			}
		}
	}
	return report
}

// loadVerifiedBlob reads one blob through the normal (index + verify)
// path; Check uses it only for blobs the independent pack scan already
// proved present, so a failure here is an index/pack disagreement.
func (r *Repository) loadVerifiedBlob(id ID) ([]byte, error) {
	e, ok := r.ix.lookup(id)
	if !ok {
		// Present in a pack but absent from the in-memory index: reachable
		// after reopen, so not a loss — but serve it via a pack scan.
		return r.scanForBlob(id)
	}
	pack, err := r.loadPackLocked(e.pack)
	if err != nil {
		return nil, err
	}
	if int64(e.offset)+int64(e.length) > int64(len(pack)) {
		return nil, packCorrupt("pack %s: blob %s out of bounds", short(e.pack), id.Short())
	}
	data := pack[e.offset : e.offset+e.length]
	if IDOf(data) != id {
		return nil, packCorrupt("pack %s: blob %s failed verification", short(e.pack), id.Short())
	}
	return data, nil
}

// scanForBlob finds a blob by scanning pack headers — the slow path for
// blobs the index does not know (possible only mid-Check on a store whose
// index predates a concurrent write, or when verifying a foreign pack).
func (r *Repository) scanForBlob(id ID) ([]byte, error) {
	names, err := r.be.List(backend.PackType)
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		data, err := r.be.Load(backend.Handle{Type: backend.PackType, Name: name})
		if err != nil {
			continue
		}
		entries, derr := decodePackHeader(data)
		if derr != nil {
			continue
		}
		for _, e := range entries {
			if e.id == id {
				blob := data[e.offset : e.offset+e.length]
				if IDOf(blob) != id {
					continue
				}
				return blob, nil
			}
		}
	}
	return nil, fmt.Errorf("%w: blob %s", ErrProfileNotFound, id.Short())
}

// StatsReport summarizes the store's population and dedup effectiveness.
type StatsReport struct {
	Packs        int
	Blobs        int
	Chunks       int
	Manifests    int
	Snapshots    int
	Sessions     int
	StoredBytes  int64 // sum of indexed blob sizes
	LiveBytes    int64 // stored bytes reachable from a root
	DeadBytes    int64 // stored bytes awaiting GC
	LogicalBytes int64 // sum of all sessions' profile sizes (pre-dedup)
	DamagedPacks int
}

// DedupFactor is logical bytes per live stored byte: how many times the
// store would have grown without dedup.
func (s StatsReport) DedupFactor() float64 {
	if s.LiveBytes == 0 {
		return 1
	}
	return float64(s.LogicalBytes) / float64(s.LiveBytes)
}

// Stats computes the store's population and dedup statistics.
func (r *Repository) Stats() (StatsReport, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s StatsReport
	s.Packs = len(r.ix.packNames())
	s.Snapshots = len(r.snaps)
	s.Sessions = len(r.sessions)
	s.DamagedPacks = len(r.damaged)
	for _, e := range r.ix.blobs {
		s.Blobs++
		s.StoredBytes += int64(e.length)
		switch e.typ {
		case BlobChunk:
			s.Chunks++
		case BlobManifest:
			s.Manifests++
		}
	}
	live, err := r.markLiveLocked()
	if err != nil {
		return s, err
	}
	s.LiveBytes, s.DeadBytes = r.updateByteGauges(live)
	for sid, mid := range r.sessions {
		mdata, err := r.loadBlobLocked(mid, BlobManifest)
		if err != nil {
			return s, fmt.Errorf("session %q: %w", sid, err)
		}
		size, _, err := decodeManifest(mdata)
		if err != nil {
			return s, fmt.Errorf("session %q: %w", sid, err)
		}
		s.LogicalBytes += int64(size)
	}
	return s, nil
}

// short trims an object name for display.
func short(name string) string {
	if len(name) > 8 {
		return name[:8]
	}
	return name
}
