package repo

import (
	"errors"
	"fmt"
	"sort"

	"aprof/internal/repo/backend"
)

// SyncStats summarizes one anti-entropy pass against a peer store.
type SyncStats struct {
	// PacksPulled / BytesPulled count packs copied from the remote because
	// they held blobs this store lacked; PacksSkipped counts remote packs
	// whose blobs were all already present (the index-diff fast path).
	PacksPulled  int
	BytesPulled  int64
	PacksSkipped int
	// SnapshotsScanned counts remote roots examined.
	SnapshotsScanned int
	// SessionsAdopted are sessions this store did not have; SessionsUpdated
	// had a head superseded by the remote's (the losing head moves into
	// history, not oblivion); SessionsSkipped were unresolvable — a blob
	// they need was not pullable this round (the remote GC'd or lost it
	// mid-transfer) and will be retried next round.
	SessionsAdopted int
	SessionsUpdated int
	SessionsSkipped int
	// RootWritten reports whether the merge changed this store's view and
	// a new local root was saved.
	RootWritten bool
}

func (s SyncStats) String() string {
	return fmt.Sprintf("sync: pulled %d packs (%d bytes, %d skipped), %d roots scanned; sessions +%d adopted, %d updated, %d skipped, root written: %v",
		s.PacksPulled, s.BytesPulled, s.PacksSkipped, s.SnapshotsScanned,
		s.SessionsAdopted, s.SessionsUpdated, s.SessionsSkipped, s.RootWritten)
}

// Sync pulls everything the remote store has that this one lacks: missing
// packs first (blobs before any root that references them — the same
// crash-safe ordering every other write path uses), then the remote's
// session heads and retained history, merged into this store's view under
// a deterministic rule and made durable in one new local root.
//
// Sync is pull-only — the remote is never written — which is what makes
// cluster-wide anti-entropy idempotent and crash-safe: each node mutates
// only its own store, a sync killed at any instant leaves at worst
// unreferenced pulled packs (the next GC collects them), and re-running
// converges because content addressing makes every transfer repeatable.
// Two nodes syncing from each other reach the same session view: the
// merge rule (higher snapshot seq wins; ties break toward the
// lexically greater manifest) is symmetric.
//
// A partition or remote loss mid-pull degrades, never corrupts: sessions
// whose blobs could not all be fetched are skipped this round and retried
// the next, and every pulled object is verified against its content
// address before it is stored.
//
// The remote is typically a backend.Peer over APRR, but any Backend works
// — including a local directory, which makes disk-to-disk store merges a
// one-call operation.
func (r *Repository) Sync(remote backend.Backend) (SyncStats, error) {
	var stats SyncStats

	// Phase A (locked, brief): flush staged blobs and snapshot the local
	// have-sets. Concurrent saves during the network phases are safe: a
	// blob that arrives twice dedups at integration time.
	r.mu.Lock()
	if err := r.flushLocked(); err != nil {
		r.mu.Unlock()
		return stats, err
	}
	havePacks := make(map[string]struct{})
	for _, name := range r.ix.packNames() {
		havePacks[name] = struct{}{}
	}
	haveBlob := make(map[ID]struct{}, len(r.ix.blobs))
	for id := range r.ix.blobs {
		haveBlob[id] = struct{}{}
	}
	r.mu.Unlock()

	// Phase B (unlocked): diff pack sets and pull what is missing.
	if err := r.syncPacks(remote, havePacks, haveBlob, &stats); err != nil {
		return stats, err
	}

	// Phase C (unlocked): read the remote's roots.
	docs, err := r.syncReadRoots(remote, &stats)
	if err != nil {
		return stats, err
	}

	// Phase D (locked): merge the remote view into ours and, if anything
	// changed, write one new root holding the merged set.
	r.mu.Lock()
	defer r.mu.Unlock()
	return stats, r.syncMergeLocked(docs, &stats)
}

// syncPacks pulls every remote pack holding at least one blob this store
// lacks. When the remote publishes a fresh index cache (covering exactly
// its pack set — the same staleness rule the local open uses), the diff
// runs on the index and fully-duplicated packs are skipped without
// transferring a byte; otherwise every missing pack is pulled and its
// surplus blobs simply dedup.
func (r *Repository) syncPacks(remote backend.Backend, havePacks map[string]struct{}, haveBlob map[ID]struct{}, stats *SyncStats) error {
	remotePacks, err := remote.List(backend.PackType)
	if err != nil {
		return fmt.Errorf("repo: sync: listing remote packs: %w", err)
	}
	var missing []string
	for _, name := range remotePacks {
		if _, ok := havePacks[name]; !ok {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	if len(missing) == 0 {
		return nil
	}

	wanted := r.syncWantedPacks(remote, remotePacks, missing, haveBlob)
	for _, name := range missing {
		if !wanted[name] {
			stats.PacksSkipped++
			continue
		}
		data, err := remote.Load(backend.Handle{Type: backend.PackType, Name: name})
		if err != nil {
			// The remote GC'd it between list and load, or the link died.
			// Roots needing its blobs are skipped below; next round retries.
			r.logf("repo: sync: pack %s: %v", short(name), err)
			continue
		}
		if IDOf(data).String() != name {
			r.logf("repo: sync: pack %s arrived corrupt (content does not match name), discarded", short(name))
			continue
		}
		entries, derr := decodePackHeader(data)
		if derr != nil {
			r.logf("repo: sync: pack %s undecodable: %v", short(name), derr)
			continue
		}
		r.mu.Lock()
		// Saving is idempotent — content addressing means a concurrent local
		// write of the same name wrote the same bytes.
		if err := r.be.Save(backend.Handle{Type: backend.PackType, Name: name}, data); err != nil {
			r.mu.Unlock()
			return fmt.Errorf("repo: sync: storing pack %s: %w", short(name), err)
		}
		r.ix.addPack(name, entries, false)
		r.m.packsWritten.Inc()
		r.updateGauges()
		r.mu.Unlock()
		stats.PacksPulled++
		stats.BytesPulled += int64(len(data))
	}
	return nil
}

// syncWantedPacks decides which missing remote packs actually hold new
// blobs, via the remote's index cache when one exactly covers its pack
// set. Without a usable cache every missing pack is wanted.
func (r *Repository) syncWantedPacks(remote backend.Backend, remotePacks, missing []string, haveBlob map[ID]struct{}) map[string]bool {
	wanted := make(map[string]bool, len(missing))
	for _, name := range missing {
		wanted[name] = true
	}
	names, err := remote.List(backend.IndexType)
	if err != nil || len(names) == 0 {
		return wanted
	}
	want := make(map[string]struct{}, len(remotePacks))
	for _, n := range remotePacks {
		want[n] = struct{}{}
	}
	for _, name := range names {
		data, err := remote.Load(backend.Handle{Type: backend.IndexType, Name: name})
		if err != nil {
			continue
		}
		packs, derr := DecodeIndex(data)
		if derr != nil || len(packs) != len(want) {
			continue
		}
		covered := true
		for _, p := range packs {
			if _, ok := want[p.Name]; !ok {
				covered = false
				break
			}
		}
		if !covered {
			continue
		}
		// Exact cover: trust the diff. A pack is unwanted only when every
		// blob in it is already held locally.
		for _, p := range packs {
			if !wanted[p.Name] {
				continue
			}
			novel := false
			for _, b := range p.Blobs {
				if _, ok := haveBlob[b.ID]; !ok {
					novel = true
					break
				}
			}
			wanted[p.Name] = novel
		}
		return wanted
	}
	return wanted
}

// syncReadRoots fetches and verifies the remote's snapshot roots.
func (r *Repository) syncReadRoots(remote backend.Backend, stats *SyncStats) ([]snapDoc, error) {
	names, err := remote.List(backend.SnapshotType)
	if err != nil {
		return nil, fmt.Errorf("repo: sync: listing remote snapshots: %w", err)
	}
	var docs []snapDoc
	for _, name := range names {
		data, err := remote.Load(backend.Handle{Type: backend.SnapshotType, Name: name})
		if err != nil {
			r.logf("repo: sync: snapshot %s: %v", short(name), err)
			continue
		}
		if IDOf(data).String() != name {
			// Torn on the remote: never acknowledged there, not honored here.
			r.logf("repo: sync: skipping torn remote snapshot %s", short(name))
			continue
		}
		doc, derr := decodeSnapshot(data)
		if derr != nil {
			r.logf("repo: sync: remote snapshot %s: %v", short(name), derr)
			continue
		}
		docs = append(docs, doc)
		stats.SnapshotsScanned++
	}
	return docs, nil
}

// syncMergeLocked merges remote roots into the local view and persists
// the result as one new root when anything changed.
func (r *Repository) syncMergeLocked(docs []snapDoc, stats *SyncStats) error {
	next := cloneSessions(r.sessions)
	nextSavedAt := cloneSavedAt(r.savedAt)
	nextHistory := cloneHistory(r.history)
	localSeq := r.sessionSeqsLocked()

	// Deterministic doc order so skip accounting is stable.
	sort.Slice(docs, func(i, j int) bool { return docs[i].seq < docs[j].seq })
	for _, doc := range docs {
		for _, sid := range sortedSessionIDs(doc.sessions) {
			mid := doc.sessions[sid]
			cur, exists := next[sid]
			if exists && cur == mid {
				r.syncMergeHistoryLocked(sid, doc, nextHistory)
				continue
			}
			// Conflict rule, symmetric so both sides converge: higher root
			// seq wins; on a tie the lexically greater manifest hex does.
			if exists {
				ls, rs := localSeq[sid], doc.seq
				if rs < ls || (rs == ls && mid.String() <= cur.String()) {
					continue // ours wins; their head lands in history below
				}
			}
			if !r.syncResolvableLocked(mid) {
				stats.SessionsSkipped++
				r.logf("repo: sync: session %q not yet resolvable locally, retrying next round", sid)
				continue
			}
			if exists {
				// The superseded local head is retained as history, so a
				// divergent profile is never silently discarded by a merge.
				entries := append([]histEntry{{Manifest: cur.String(), SavedAt: nextSavedAt[sid]}}, nextHistory[sid]...)
				nextHistory[sid] = capHistory(sortedHistory(entries))
				stats.SessionsUpdated++
			} else {
				stats.SessionsAdopted++
			}
			next[sid] = mid
			if at, ok := doc.savedAt[sid]; ok {
				nextSavedAt[sid] = at
			} else {
				delete(nextSavedAt, sid)
			}
			localSeq[sid] = doc.seq
			r.syncMergeHistoryLocked(sid, doc, nextHistory)
		}
	}

	if sessionsEqual(next, r.sessions) && savedAtEqual(nextSavedAt, r.savedAt) && historyEqual(nextHistory, r.history) {
		return nil // already converged: nothing to write
	}
	newName, err := r.snapshotLocked(next, nextSavedAt, nextHistory)
	if err != nil {
		return fmt.Errorf("repo: sync: writing merged root: %w", err)
	}
	stats.RootWritten = true
	for name := range r.snaps {
		if name == newName {
			continue
		}
		if err := r.forgetRootLocked(name); err != nil {
			return err
		}
	}
	r.rebuildSessionView()
	r.updateGauges()
	return nil
}

// syncMergeHistoryLocked folds a remote root's retained history for sid
// into nextHistory, keeping only entries resolvable locally (an entry the
// packs could not supply this round is retried on a later sync).
func (r *Repository) syncMergeHistoryLocked(sid string, doc snapDoc, nextHistory map[string][]histEntry) {
	remote := doc.history[sid]
	if len(remote) == 0 {
		return
	}
	have := make(map[string]struct{})
	for _, e := range nextHistory[sid] {
		have[e.Manifest] = struct{}{}
	}
	merged := nextHistory[sid]
	added := false
	for _, e := range remote {
		if _, ok := have[e.Manifest]; ok {
			continue
		}
		hid, err := ParseID(e.Manifest)
		if err != nil || !r.syncResolvableLocked(hid) {
			continue
		}
		merged = append(merged, e)
		added = true
	}
	if added {
		nextHistory[sid] = capHistory(sortedHistory(merged))
	}
}

// capHistory bounds merged history like SaveProfile bounds recorded
// history.
func capHistory(entries []histEntry) []histEntry {
	if len(entries) > maxRecordedHistory {
		entries = entries[:maxRecordedHistory]
	}
	return entries
}

// syncResolvableLocked reports whether a manifest and all its chunks are
// servable from this store right now.
func (r *Repository) syncResolvableLocked(mid ID) bool {
	mdata, err := r.loadBlobLocked(mid, BlobManifest)
	if err != nil {
		return false
	}
	_, chunks, err := decodeManifest(mdata)
	if err != nil {
		return false
	}
	for _, cid := range chunks {
		if e, ok := r.ix.lookup(cid); !ok || e.typ != BlobChunk {
			return false
		}
	}
	return true
}

// forgetRootLocked removes one superseded root document.
func (r *Repository) forgetRootLocked(name string) error {
	if err := r.be.Remove(backend.Handle{Type: backend.SnapshotType, Name: name}); err != nil && !errors.Is(err, backend.ErrNotFound) {
		return err
	}
	delete(r.snaps, name)
	return nil
}

func sessionsEqual(a, b map[string]ID) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

func savedAtEqual(a, b map[string]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

func historyEqual(a, b map[string][]histEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if av[i] != bv[i] {
				return false
			}
		}
	}
	return true
}
