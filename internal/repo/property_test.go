package repo_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"aprof/internal/repo"
	"aprof/internal/repo/backend"
)

// TestPropertyDifferential drives random sequences of store operations —
// SaveProfile, retention (snapshot a subset + forget superseded roots),
// GC, and full close/reopen cycles — against a trivial model (a map of
// session ID to latest profile bytes). After every operation the store
// must agree with the model exactly: same session set, byte-identical
// contents, and a clean Check after every GC.
func TestPropertyDifferential(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			be, err := backend.OpenLocal(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			r, err := repo.OpenOrInit(be, Options(t))
			if err != nil {
				t.Fatal(err)
			}
			model := make(map[string][]byte)
			base := syntheticDoc(seed, 24<<10)

			agree := func(opIdx int, op string) {
				t.Helper()
				var want []string
				for sid := range model {
					want = append(want, sid)
				}
				sort.Strings(want)
				got := r.SessionIDs()
				sort.Strings(got)
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("op %d (%s): sessions diverged: store %v, model %v", opIdx, op, got, want)
				}
				for sid, doc := range model {
					stored, err := r.GetSession(sid)
					if err != nil {
						t.Fatalf("op %d (%s): session %s unreadable: %v", opIdx, op, sid, err)
					}
					if !bytes.Equal(stored, doc) {
						t.Fatalf("op %d (%s): session %s diverged from model", opIdx, op, sid)
					}
				}
				if _, err := r.GetSession("never-saved"); err == nil {
					t.Fatalf("op %d (%s): phantom session served", opIdx, op)
				}
			}

			const ops = 120
			for i := 0; i < ops; i++ {
				var op string
				switch p := rng.Intn(100); {
				case p < 55: // save: new or updated session
					sid := fmt.Sprintf("sess-%d", rng.Intn(8))
					var doc []byte
					if rng.Intn(4) == 0 {
						doc = syntheticDoc(rng.Int63(), 4<<10+rng.Intn(32<<10))
					} else {
						doc = mutateDoc(base, rng.Int63())
					}
					if err := r.SaveProfile(sid, doc); err != nil {
						t.Fatalf("op %d: save %s: %v", i, sid, err)
					}
					model[sid] = doc
					op = "save " + sid
				case p < 70: // retention: drop one random session
					if len(model) == 0 {
						continue
					}
					var sids []string
					for sid := range model {
						sids = append(sids, sid)
					}
					sort.Strings(sids)
					victim := sids[rng.Intn(len(sids))]
					next := r.Sessions()
					delete(next, victim)
					newName, err := r.Snapshot(next)
					if err != nil {
						t.Fatalf("op %d: retention snapshot: %v", i, err)
					}
					for _, s := range r.Snapshots() {
						if s.Name != newName {
							if err := r.Forget(s.Name); err != nil {
								t.Fatalf("op %d: forget %s: %v", i, s.Name, err)
							}
						}
					}
					delete(model, victim)
					op = "drop " + victim
				case p < 85: // gc
					if _, err := r.GC(); err != nil {
						t.Fatalf("op %d: gc: %v", i, err)
					}
					if rep := r.Check(); !rep.OK() {
						t.Fatalf("op %d: check after gc: %v", i, rep.Errors)
					}
					op = "gc"
				default: // close + reopen: everything must be durable
					if err := r.Close(); err != nil {
						t.Fatalf("op %d: close: %v", i, err)
					}
					r, err = repo.Open(be, Options(t))
					if err != nil {
						t.Fatalf("op %d: reopen: %v", i, err)
					}
					op = "reopen"
				}
				agree(i, op)
			}

			if rep := r.Check(); !rep.OK() {
				t.Fatalf("final check: %v", rep.Errors)
			}
		})
	}
}

// TestDedupNearIdenticalProfiles asserts the economics the repository
// exists for: N near-identical profiles of one workload must cost about
// one full copy plus per-profile deltas, not N full copies.
func TestDedupNearIdenticalProfiles(t *testing.T) {
	be, err := backend.OpenLocal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r, err := repo.OpenOrInit(be, Options(t))
	if err != nil {
		t.Fatal(err)
	}
	const (
		n    = 16
		size = 256 << 10
	)
	base := syntheticDoc(7, size)
	for i := 0; i < n; i++ {
		if err := r.SaveProfile(fmt.Sprintf("run-%02d", i), mutateDoc(base, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	s, err := r.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Sessions != n {
		t.Fatalf("sessions = %d, want %d", s.Sessions, n)
	}
	if s.LogicalBytes < int64(n*size) {
		t.Fatalf("logical bytes = %d, want >= %d", s.LogicalBytes, n*size)
	}
	// Budget: one full copy, plus per profile a delta allowance — each of
	// the 3 point edits can rewrite the chunk it lands in plus a realigned
	// neighbor (each up to chunkMax = 8 KiB), plus a fresh manifest.
	budget := int64(size) + n*(3*2*8192+16<<10)
	if s.LiveBytes > budget {
		t.Fatalf("%d near-identical %d-byte profiles live bytes = %d, want <= %d (dedup factor %.1f)",
			n, size, s.LiveBytes, budget, s.DedupFactor())
	}
	if f := s.DedupFactor(); f < 3 {
		t.Fatalf("dedup factor = %.2f, want >= 3", f)
	}
}
