package repo

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestGenerateFuzzCorpus regenerates the committed seed corpora under
// testdata/fuzz from the in-code seed builders, in the native Go fuzzing
// corpus format. Run with REPO_GEN_CORPUS=1 after changing a format or a
// seed builder; a normal test run only verifies the files parse.
func TestGenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("REPO_GEN_CORPUS") == "" {
		t.Skip("set REPO_GEN_CORPUS=1 to regenerate testdata/fuzz")
	}
	write := func(target string, seeds [][]byte) {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, s := range seeds {
			body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(s)) + ")\n"
			path := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	write("FuzzPackDecode", fuzzSeedPacks())
	write("FuzzIndexDecode", fuzzSeedIndexes())
}
