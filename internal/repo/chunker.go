package repo

// Content-defined chunking: profile documents are split at boundaries the
// *content* chooses (a rolling-hash condition), not at fixed offsets, so
// inserting or deleting a few bytes near the front of a profile shifts at
// most the chunks covering the edit — everything after the next boundary
// re-aligns and deduplicates against the previous version. This is the
// property that turns "a fleet writes near-identical profiles forever"
// into bounded storage.

const (
	// chunkMin is the smallest chunk the splitter emits (except a final
	// remainder). Boundaries inside the first chunkMin bytes are ignored so
	// pathological content cannot shatter the stream into tiny blobs.
	chunkMin = 512
	// chunkMax force-splits runs where the boundary condition never fires.
	chunkMax = 8192
	// chunkMask selects the boundary condition: a boundary fires where the
	// rolling hash has these 11 bits zero, giving ~2 KiB average chunks.
	chunkMask = (1 << 11) - 1
	// chunkWindow is the rolling-hash window width in bytes.
	chunkWindow = 64
)

// buzTable is the fixed byte → 64-bit mixing table for the buzhash. It is
// generated deterministically (splitmix64 over the byte value) so chunk
// boundaries — and therefore blob IDs — are stable across runs, platforms,
// and repository instances: dedup works fleet-wide, not per-process.
var buzTable = func() [256]uint64 {
	var t [256]uint64
	for i := range t {
		// splitmix64 step with the byte value as the state seed.
		z := uint64(i)*0x9e3779b97f4a7c15 + 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		t[i] = z ^ (z >> 31)
	}
	return t
}()

// rotl rotates x left by k (k < 64).
func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// chunkData splits data into content-defined chunks. The concatenation of
// the returned slices is exactly data; each slice aliases data (callers
// hash/copy, never mutate). Empty input yields no chunks.
func chunkData(data []byte) [][]byte {
	var chunks [][]byte
	for len(data) > 0 {
		n := nextBoundary(data)
		chunks = append(chunks, data[:n])
		data = data[n:]
	}
	return chunks
}

// nextBoundary returns the length of the first chunk of data.
func nextBoundary(data []byte) int {
	if len(data) <= chunkMin {
		return len(data)
	}
	end := len(data)
	if end > chunkMax {
		end = chunkMax
	}
	// Prime the window over the bytes before the first candidate boundary.
	var h uint64
	start := chunkMin - chunkWindow
	for i := start; i < chunkMin; i++ {
		h = rotl(h, 1) ^ buzTable[data[i]]
	}
	for i := chunkMin; i < end; i++ {
		if h&chunkMask == 0 {
			return i
		}
		h = rotl(h, 1) ^ buzTable[data[i]] ^ rotl(buzTable[data[i-chunkWindow]], chunkWindow%64)
	}
	return end
}
