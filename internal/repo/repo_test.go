package repo

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aprof/internal/obs"
	"aprof/internal/repo/backend"
)

// openTestRepo initializes and opens a fresh store in a test temp dir.
func openTestRepo(t *testing.T) (*Repository, *backend.Local) {
	t.Helper()
	be, err := backend.OpenLocal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := Init(be); err != nil {
		t.Fatal(err)
	}
	r, err := Open(be, Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	return r, be
}

// syntheticProfile builds a deterministic pseudo-JSON document of roughly
// the requested size — stands in for a profio profile document.
func syntheticProfile(seed int64, size int) []byte {
	rng := rand.New(rand.NewSource(seed))
	var sb strings.Builder
	sb.WriteString(`{"schema":1,"routines":[`)
	for i := 0; sb.Len() < size; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"name":"routine_%d","calls":%d,"cost":%d,"points":[`, i, rng.Intn(1e6), rng.Intn(1e9))
		for j := 0; j < 8; j++ {
			if j > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, `[%d,%d]`, rng.Intn(1e4), rng.Intn(1e7))
		}
		sb.WriteString(`]}`)
	}
	sb.WriteString(`]}`)
	return []byte(sb.String())
}

// mutateProfile flips a small region of a profile copy — the
// "near-identical profile of the same routine" the dedup story is about.
func mutateProfile(base []byte, seed int64) []byte {
	out := append([]byte(nil), base...)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 3; i++ {
		pos := rng.Intn(len(out))
		out[pos] = byte('0' + rng.Intn(10))
	}
	return out
}

func TestPutGetRoundTrip(t *testing.T) {
	r, _ := openTestRepo(t)
	for _, size := range []int{0, 1, 100, chunkMin, chunkMax + 1, 64 << 10} {
		data := syntheticProfile(int64(size), size)
		id, err := r.Put(data)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		got, err := r.Get(id)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("size %d: round-trip mismatch (%d bytes in, %d out)", size, len(data), len(got))
		}
	}
}

func TestIdenticalPutsShareOneManifest(t *testing.T) {
	r, _ := openTestRepo(t)
	data := syntheticProfile(1, 32<<10)
	id1, err := r.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := r.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatalf("identical content produced different manifests %s vs %s", id1.Short(), id2.Short())
	}
}

func TestSaveProfilePersistsAcrossReopen(t *testing.T) {
	r, be := openTestRepo(t)
	want := map[string][]byte{}
	for i := 0; i < 5; i++ {
		sid := fmt.Sprintf("session-%d", i)
		data := syntheticProfile(int64(i), 16<<10)
		if err := r.SaveProfile(sid, data); err != nil {
			t.Fatal(err)
		}
		want[sid] = data
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	r2, err := Open(be, Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.SessionIDs(); len(got) != len(want) {
		t.Fatalf("reopened store has %d sessions, want %d", len(got), len(want))
	}
	for sid, data := range want {
		got, err := r2.GetSession(sid)
		if err != nil {
			t.Fatalf("session %s: %v", sid, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("session %s: content mismatch after reopen", sid)
		}
	}
	// SaveProfile prunes superseded roots: one snapshot should remain.
	if snaps := r2.Snapshots(); len(snaps) != 1 {
		t.Fatalf("expected 1 snapshot after %d saves, got %d", len(want), len(snaps))
	}
}

func TestStaleIndexCacheIsRebuilt(t *testing.T) {
	r, be := openTestRepo(t)
	if err := r.SaveProfile("a", syntheticProfile(1, 8<<10)); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil { // writes the index cache
		t.Fatal(err)
	}
	// Write more WITHOUT refreshing the cache: the cache is now stale.
	if err := r.SaveProfile("b", syntheticProfile(2, 8<<10)); err != nil {
		t.Fatal(err)
	}

	r2, err := Open(be, Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	for _, sid := range []string{"a", "b"} {
		if _, err := r2.GetSession(sid); err != nil {
			t.Fatalf("session %s unreadable after reopen with stale cache: %v", sid, err)
		}
	}

	// A corrupt cache must be ignored the same way.
	names, err := be.List(backend.IndexType)
	if err != nil || len(names) == 0 {
		t.Fatalf("expected an index cache file: %v", err)
	}
	for _, n := range names {
		if err := be.Save(backend.Handle{Type: backend.IndexType, Name: n}, []byte("garbage")); err != nil {
			t.Fatal(err)
		}
	}
	r3, err := Open(be, Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r3.GetSession("b"); err != nil {
		t.Fatalf("session unreadable with corrupt index cache: %v", err)
	}
}

func TestGCRemovesUnreferencedAndKeepsLive(t *testing.T) {
	r, be := openTestRepo(t)
	keep := syntheticProfile(1, 24<<10)
	drop := append(syntheticProfile(2, 24<<10), []byte(`,"tail":"unique-to-drop"`)...)
	if err := r.SaveProfile("keep", keep); err != nil {
		t.Fatal(err)
	}
	if err := r.SaveProfile("drop", drop); err != nil {
		t.Fatal(err)
	}
	dropID := r.Sessions()["drop"]

	// Forget "drop" by snapshotting only the surviving session.
	sessions := r.Sessions()
	delete(sessions, "drop")
	if _, err := r.Snapshot(sessions); err != nil {
		t.Fatal(err)
	}
	for _, s := range r.Snapshots() {
		if _, ok := s.Sessions["drop"]; ok {
			if err := r.Forget(s.Name); err != nil {
				t.Fatal(err)
			}
		}
	}

	stats, err := r.GC()
	if err != nil {
		t.Fatal(err)
	}
	if stats.BlobsFreed == 0 {
		t.Fatalf("gc freed nothing: %v", stats)
	}
	if got, err := r.GetSession("keep"); err != nil || !bytes.Equal(got, keep) {
		t.Fatalf("live session damaged by gc: %v", err)
	}
	if _, err := r.Get(dropID); err == nil {
		t.Fatalf("forgotten profile still readable after gc")
	}
	if rep := r.Check(); !rep.OK() {
		t.Fatalf("check failed after gc: %v", rep.Errors)
	}

	// And the same holds after a cold reopen.
	r2, err := Open(be, Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := r2.GetSession("keep"); err != nil || !bytes.Equal(got, keep) {
		t.Fatalf("live session damaged after gc+reopen: %v", err)
	}
}

func TestDamagedPackQuarantinedNotServed(t *testing.T) {
	r, be := openTestRepo(t)
	if err := r.SaveProfile("a", syntheticProfile(1, 16<<10)); err != nil {
		t.Fatal(err)
	}
	// Corrupt one pack on disk, then force a header rescan by removing the
	// index cache.
	packs, err := be.List(backend.PackType)
	if err != nil || len(packs) == 0 {
		t.Fatalf("expected packs: %v", err)
	}
	data, err := be.Load(backend.Handle{Type: backend.PackType, Name: packs[0]})
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff // break the end magic
	path := filepath.Join(be.Dir(), string(backend.PackType), packs[0])
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r2, err := Open(be, Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.DamagedPacks(); len(got) != 1 {
		t.Fatalf("damaged pack not quarantined: %v", got)
	}
	if _, err := r2.GetSession("a"); err == nil {
		t.Fatalf("session served from a damaged pack")
	}
	if rep := r2.Check(); rep.OK() {
		t.Fatalf("check passed with a referenced blob in a damaged pack")
	}
	_ = r
}

func TestObsCountersMove(t *testing.T) {
	be, err := backend.OpenLocal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := Init(be); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	r, err := Open(be, Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	data := syntheticProfile(7, 32<<10)
	if err := r.SaveProfile("a", data); err != nil {
		t.Fatal(err)
	}
	if err := r.SaveProfile("b", mutateProfile(data, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.GC(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	find := func(name string) uint64 {
		for _, s := range snap.Scopes {
			if s.Name != ObsScopeRepo {
				continue
			}
			for _, c := range s.Counters {
				if c.Name == name {
					return c.Value
				}
			}
		}
		t.Fatalf("counter %s not in snapshot", name)
		return 0
	}
	if find("blobs_written") == 0 {
		t.Error("blobs_written did not move")
	}
	if find("blobs_deduped") == 0 {
		t.Error("blobs_deduped did not move for a near-identical save")
	}
	if find("gc_runs") != 1 {
		t.Error("gc_runs != 1")
	}
}

func TestChunkerSplitsAndRejoins(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		data := syntheticProfile(seed, 100<<10)
		chunks := chunkData(data)
		var total int
		var rejoined []byte
		for _, c := range chunks {
			if len(c) == 0 {
				t.Fatal("empty chunk")
			}
			if len(c) > chunkMax {
				t.Fatalf("chunk of %d bytes exceeds max %d", len(c), chunkMax)
			}
			total += len(c)
			rejoined = append(rejoined, c...)
		}
		if !bytes.Equal(rejoined, data) {
			t.Fatalf("seed %d: chunks do not rejoin to input", seed)
		}
		if len(chunks) < 2 {
			t.Fatalf("seed %d: %d bytes produced only %d chunks", seed, len(data), len(chunks))
		}
		_ = total
	}
}

// TestChunkerRealigns is the core dedup property: a small edit near the
// front must not re-chunk the whole document.
func TestChunkerRealigns(t *testing.T) {
	base := syntheticProfile(3, 100<<10)
	edited := append([]byte(`{"prefix":"inserted"}`), base...)
	baseIDs := make(map[ID]struct{})
	for _, c := range chunkData(base) {
		baseIDs[IDOf(c)] = struct{}{}
	}
	shared := 0
	chunks := chunkData(edited)
	for _, c := range chunks {
		if _, ok := baseIDs[IDOf(c)]; ok {
			shared++
		}
	}
	if shared < len(chunks)*3/4 {
		t.Fatalf("only %d/%d chunks shared after a front insertion", shared, len(chunks))
	}
}
