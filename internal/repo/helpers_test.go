package repo_test

import (
	"fmt"
	"math/rand"
	"strings"
)

// syntheticDoc builds a deterministic pseudo-JSON profile document of
// roughly the requested size, for the black-box suites (crash sweep,
// property/differential test).
func syntheticDoc(seed int64, size int) []byte {
	rng := rand.New(rand.NewSource(seed))
	var sb strings.Builder
	sb.WriteString(`{"schema":1,"routines":[`)
	for i := 0; sb.Len() < size; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"name":"routine_%d","calls":%d,"cost":%d,"points":[`, i, rng.Intn(1e6), rng.Intn(1e9))
		for j := 0; j < 8; j++ {
			if j > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, `[%d,%d]`, rng.Intn(1e4), rng.Intn(1e7))
		}
		sb.WriteString(`]}`)
	}
	sb.WriteString(`]}`)
	return []byte(sb.String())
}

// mutateDoc returns a copy of base with a few point edits — the
// near-identical next profile of the same routine/workload.
func mutateDoc(base []byte, seed int64) []byte {
	out := append([]byte(nil), base...)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 3; i++ {
		pos := rng.Intn(len(out))
		out[pos] = byte('0' + rng.Intn(10))
	}
	return out
}
