package repo_test

// Version retention: GC's keep-last-N and max-age policies, driven
// through an injected clock. The head is immune to every policy; history
// beyond it is what retention trims.

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"aprof/internal/repo"
	"aprof/internal/repo/backend"
)

// clockRepo opens a repository whose clock the test advances by hand.
func clockRepo(t *testing.T) (*repo.Repository, *time.Time) {
	t.Helper()
	be, err := backend.OpenLocal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1_700_000_000, 0)
	r, err := repo.OpenOrInit(be, repo.Options{
		Logf:  t.Logf,
		Clock: func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r, &now
}

// saveVersions writes n successive versions of one session, one hour
// apart, returning them oldest-first.
func saveVersions(t *testing.T, r *repo.Repository, now *time.Time, id string, n int) [][]byte {
	t.Helper()
	var docs [][]byte
	for i := 0; i < n; i++ {
		doc := syntheticDoc(int64(500+i), 3000)
		docs = append(docs, doc)
		if err := r.SaveProfile(id, doc); err != nil {
			t.Fatal(err)
		}
		*now = now.Add(time.Hour)
	}
	return docs
}

func TestRetentionKeepLast(t *testing.T) {
	r, now := clockRepo(t)
	docs := saveVersions(t, r, now, "sess", 5)

	if got := len(r.Versions("sess")); got != 5 {
		t.Fatalf("before gc: %d versions, want 5", got)
	}
	stats, err := r.GCWithPolicy(repo.RetentionPolicy{KeepLast: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("gc: %s", stats)

	vs := r.Versions("sess")
	if len(vs) != 3 {
		t.Fatalf("after keep-last 3: %d versions", len(vs))
	}
	// Newest three survive (head = docs[4], then docs[3], docs[2]).
	for i, want := range [][]byte{docs[4], docs[3], docs[2]} {
		got, err := r.GetVersion("sess", vs[i].Manifest)
		if err != nil {
			t.Fatalf("version %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("version %d bytes differ", i)
		}
	}
	if rep := r.Check(); !rep.OK() {
		t.Fatalf("check after retention gc: %v", rep.Errors)
	}
}

func TestRetentionMaxAge(t *testing.T) {
	r, now := clockRepo(t)
	saveVersions(t, r, now, "sess", 4) // saved at t0, t0+1h, t0+2h, t0+3h; now = t0+4h

	// 150 minutes back from t0+4h keeps t0+2h (age 2h? no — age 1h after
	// the final advance puts now at t0+4h, so t0+2h is 2h old) … compute
	// plainly: ages are 4h, 3h, 2h, 1h. A 150m limit keeps the two newest
	// history-eligible versions; the head never ages out.
	if _, err := r.GCWithPolicy(repo.RetentionPolicy{KeepLast: 0, MaxAge: 150 * time.Minute}); err != nil {
		t.Fatal(err)
	}
	vs := r.Versions("sess")
	if len(vs) != 2 {
		t.Fatalf("after max-age: %d versions, want 2 (head + one)", len(vs))
	}
	if !vs[0].Head {
		t.Fatal("first listed version is not the head")
	}

	// The head is immune even when it is older than the limit.
	*now = now.Add(48 * time.Hour)
	if _, err := r.GCWithPolicy(repo.RetentionPolicy{KeepLast: 0, MaxAge: time.Hour}); err != nil {
		t.Fatal(err)
	}
	vs = r.Versions("sess")
	if len(vs) != 1 || !vs[0].Head {
		t.Fatalf("head not preserved by max-age: %d versions", len(vs))
	}
	if _, err := r.GetSession("sess"); err != nil {
		t.Fatalf("head unservable after max-age gc: %v", err)
	}
}

// Plain GC() is the classic head-only collector: all history dropped,
// heads untouched — existing callers see exactly the old behavior.
func TestGCDefaultKeepsHeadsOnly(t *testing.T) {
	r, now := clockRepo(t)
	docs := saveVersions(t, r, now, "a", 3)
	docB := syntheticDoc(900, 2000)
	if err := r.SaveProfile("b", docB); err != nil {
		t.Fatal(err)
	}

	if _, err := r.GC(); err != nil {
		t.Fatal(err)
	}
	if vs := r.Versions("a"); len(vs) != 1 || !vs[0].Head {
		t.Fatalf("GC() kept history: %d versions", len(vs))
	}
	got, err := r.GetSession("a")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, docs[len(docs)-1]) {
		t.Fatal("head bytes changed across GC()")
	}
	if got, err := r.GetSession("b"); err != nil || !bytes.Equal(got, docB) {
		t.Fatalf("unrelated session damaged by GC(): %v", err)
	}
	if rep := r.Check(); !rep.OK() {
		t.Fatalf("check after GC(): %v", rep.Errors)
	}
}

// KeepLast 0 with no age limit keeps everything — the "archive" policy.
func TestRetentionUnlimitedKeepsAll(t *testing.T) {
	r, now := clockRepo(t)
	docs := saveVersions(t, r, now, "sess", 4)
	if _, err := r.GCWithPolicy(repo.RetentionPolicy{}); err != nil {
		t.Fatal(err)
	}
	vs := r.Versions("sess")
	if len(vs) != 4 {
		t.Fatalf("unlimited policy trimmed: %d versions, want 4", len(vs))
	}
	for i := range vs {
		want := docs[len(docs)-1-i]
		got, err := r.GetVersion("sess", vs[i].Manifest)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("version %d unservable or wrong after no-op gc: %v", i, err)
		}
	}
}

// Retention survives reopen: trimmed history stays trimmed, kept versions
// stay servable from a cold start.
func TestRetentionPersistsAcrossReopen(t *testing.T) {
	be, err := backend.OpenLocal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { return now }
	r, err := repo.OpenOrInit(be, repo.Options{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	var docs [][]byte
	for i := 0; i < 4; i++ {
		doc := syntheticDoc(int64(700+i), 2500)
		docs = append(docs, doc)
		if err := r.SaveProfile("sess", doc); err != nil {
			t.Fatal(err)
		}
		now = now.Add(time.Hour)
	}
	if _, err := r.GCWithPolicy(repo.RetentionPolicy{KeepLast: 2}); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	r2, err := repo.Open(be, repo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	vs := r2.Versions("sess")
	if len(vs) != 2 {
		t.Fatalf("reopened store has %d versions, want 2", len(vs))
	}
	for i, want := range [][]byte{docs[3], docs[2]} {
		got, err := r2.GetVersion("sess", vs[i].Manifest)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("reopened version %d: %v", i, err)
		}
	}
	if rep := r2.Check(); !rep.OK() {
		t.Fatalf("reopened check: %v", rep.Errors)
	}
}

// aprofstore gc's flag parsing maps onto these policies; keep the mapping
// honest for the documented examples.
func TestRetentionPolicyExamples(t *testing.T) {
	for _, tc := range []struct {
		keep int
		n    int
		want int
	}{
		{1, 5, 1}, // classic gc
		{3, 5, 3},
		{3, 2, 2}, // fewer versions than the limit
		{0, 5, 5}, // unlimited
	} {
		t.Run(fmt.Sprintf("keep=%d_n=%d", tc.keep, tc.n), func(t *testing.T) {
			r, now := clockRepo(t)
			saveVersions(t, r, now, "s", tc.n)
			if _, err := r.GCWithPolicy(repo.RetentionPolicy{KeepLast: tc.keep}); err != nil {
				t.Fatal(err)
			}
			if got := len(r.Versions("s")); got != tc.want {
				t.Fatalf("keep-last %d over %d versions left %d, want %d", tc.keep, tc.n, got, tc.want)
			}
		})
	}
}
