package repo_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"aprof/internal/faultio"
	"aprof/internal/repo"
	"aprof/internal/repo/backend"
)

// The crash-consistency sweep, in the style of the APCK kill-at-every-
// batch tests: run a fixed store workload — saves, a retention change, a
// GC, more saves — and kill the backend at every mutating operation
// index, in every crash mode (before the op, after the op, and a torn
// Save that becomes visible half-written). After each kill the store is
// reopened on the intact backend and must satisfy:
//
//  1. `check` passes: no snapshot references a blob that cannot be
//     served from a verified pack (no referenced blob is ever lost);
//  2. every session whose SaveProfile was ACKNOWLEDGED before the kill
//     is readable, byte-identical;
//  3. no torn pack is ever served (reads verify, check warns at most);
//  4. a subsequent GC runs clean and changes none of the above.

// crashScenario drives the workload against r until the backend dies.
// It returns the sessions acknowledged (SaveProfile returned nil) with
// their exact contents.
func crashScenario(t *testing.T, r *repo.Repository) (acked map[string][]byte, crashed bool) {
	t.Helper()
	acked = make(map[string][]byte)
	step := func(err error) bool {
		if err == nil {
			return false
		}
		if errors.Is(err, faultio.ErrBackendCrashed) {
			return true
		}
		t.Fatalf("non-crash error from store op: %v", err)
		return true
	}

	base := syntheticDoc(100, 20<<10)
	for i := 0; i < 4; i++ {
		sid := fmt.Sprintf("s%d", i)
		data := mutateDoc(base, int64(i))
		if step(r.SaveProfile(sid, data)) {
			return acked, true
		}
		acked[sid] = data
	}
	// Retention: drop s1 from the head set, forget the roots holding it.
	sessions := r.Sessions()
	delete(sessions, "s1")
	if _, err := r.Snapshot(sessions); step(err) {
		return acked, true
	}
	delete(acked, "s1")
	for _, s := range r.Snapshots() {
		if _, ok := s.Sessions["s1"]; ok {
			if step(r.Forget(s.Name)) {
				return acked, true
			}
		}
	}
	if _, err := r.GC(); step(err) {
		return acked, true
	}
	for i := 4; i < 6; i++ {
		sid := fmt.Sprintf("s%d", i)
		data := mutateDoc(base, int64(i))
		if step(r.SaveProfile(sid, data)) {
			return acked, true
		}
		acked[sid] = data
	}
	if step(r.Close()) {
		return acked, true
	}
	return acked, false
}

// verifySurvival reopens the store after a kill and asserts the crash
// invariants.
func verifySurvival(t *testing.T, be backend.Backend, acked map[string][]byte, label string) {
	t.Helper()
	r, err := repo.Open(be, Options(t))
	if err != nil {
		t.Fatalf("%s: reopen failed: %v", label, err)
	}
	rep := r.Check()
	if !rep.OK() {
		t.Fatalf("%s: check failed after kill: %v", label, rep.Errors)
	}
	for sid, want := range acked {
		got, err := r.GetSession(sid)
		if err != nil {
			t.Fatalf("%s: acknowledged session %s lost: %v", label, sid, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: acknowledged session %s corrupted", label, sid)
		}
	}
	// GC over the crashed remains must stay safe and leave a clean store.
	if _, err := r.GC(); err != nil {
		t.Fatalf("%s: gc after kill: %v", label, err)
	}
	if rep := r.Check(); !rep.OK() {
		t.Fatalf("%s: check failed after post-kill gc: %v", label, rep.Errors)
	}
	for sid, want := range acked {
		got, err := r.GetSession(sid)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("%s: acknowledged session %s lost by post-kill gc: %v", label, sid, err)
		}
	}
}

// Options builds quiet repository options for subtests.
func Options(t *testing.T) repo.Options {
	return repo.Options{Logf: t.Logf}
}

func TestCrashSweepKillAtEveryStep(t *testing.T) {
	// Learn the sweep range: run the scenario once with no kill.
	probe, err := backend.OpenLocal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Init(probe); err != nil {
		t.Fatal(err)
	}
	counter := faultio.NewCrashBackend(probe, 0, faultio.CrashBefore)
	rp, err := repo.Open(counter, Options(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, crashed := crashScenario(t, rp); crashed {
		t.Fatal("probe run crashed with kills disabled")
	}
	totalOps := counter.Ops()
	if totalOps < 10 {
		t.Fatalf("scenario too small to sweep: %d mutating ops", totalOps)
	}

	for _, mode := range faultio.CrashModes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			for killAt := 1; killAt <= totalOps; killAt++ {
				inner, err := backend.OpenLocal(t.TempDir())
				if err != nil {
					t.Fatal(err)
				}
				if err := repo.Init(inner); err != nil {
					t.Fatal(err)
				}
				cb := faultio.NewCrashBackend(inner, killAt, mode)
				r, err := repo.Open(cb, Options(t))
				if err != nil {
					t.Fatalf("killAt=%d: open: %v", killAt, err)
				}
				acked, crashed := crashScenario(t, r)
				if !crashed {
					t.Fatalf("killAt=%d: scenario finished without crashing", killAt)
				}
				label := fmt.Sprintf("mode=%s killAt=%d", mode, killAt)
				// The process died; reopen against the intact storage.
				verifySurvival(t, inner, acked, label)
			}
		})
	}
}

// TestCrashDuringGCOnly concentrates the sweep on the GC pass, whose
// repack + delete sequence is the most delicate ordering in the store:
// the workload completes durably first, so EVERY session must survive a
// kill anywhere inside GC.
func TestCrashDuringGCOnly(t *testing.T) {
	build := func(t *testing.T) (*backend.Local, map[string][]byte, int) {
		t.Helper()
		inner, err := backend.OpenLocal(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		if err := repo.Init(inner); err != nil {
			t.Fatal(err)
		}
		r, err := repo.Open(inner, Options(t))
		if err != nil {
			t.Fatal(err)
		}
		acked := make(map[string][]byte)
		base := syntheticDoc(200, 20<<10)
		for i := 0; i < 5; i++ {
			sid := fmt.Sprintf("g%d", i)
			data := mutateDoc(base, int64(i))
			if err := r.SaveProfile(sid, data); err != nil {
				t.Fatal(err)
			}
			acked[sid] = data
		}
		// Make garbage: drop two sessions so GC has dead blobs and
		// partially-live packs to chew on.
		sessions := r.Sessions()
		delete(sessions, "g1")
		delete(sessions, "g3")
		if _, err := r.Snapshot(sessions); err != nil {
			t.Fatal(err)
		}
		for _, s := range r.Snapshots() {
			if len(s.Sessions) != len(sessions) {
				if err := r.Forget(s.Name); err != nil {
					t.Fatal(err)
				}
			}
		}
		delete(acked, "g1")
		delete(acked, "g3")
		// Count GC's mutating ops with a probe run on a byte-identical
		// clone; cheaper to just run GC on a counting wrapper below.
		return inner, acked, 0
	}

	// Probe: how many mutating ops does this GC issue?
	inner, _, _ := build(t)
	cb := faultio.NewCrashBackend(inner, 0, faultio.CrashBefore)
	r, err := repo.Open(cb, Options(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.GC(); err != nil {
		t.Fatal(err)
	}
	gcOps := cb.Ops()
	if gcOps < 3 {
		t.Fatalf("gc issued only %d mutating ops; nothing to sweep", gcOps)
	}

	for _, mode := range faultio.CrashModes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			for killAt := 1; killAt <= gcOps; killAt++ {
				inner, acked, _ := build(t)
				cb := faultio.NewCrashBackend(inner, killAt, mode)
				r, err := repo.Open(cb, Options(t))
				if err != nil {
					t.Fatalf("killAt=%d: open: %v", killAt, err)
				}
				if _, err := r.GC(); !errors.Is(err, faultio.ErrBackendCrashed) {
					t.Fatalf("killAt=%d: gc did not crash (err=%v)", killAt, err)
				}
				verifySurvival(t, inner, acked, fmt.Sprintf("gc mode=%s killAt=%d", mode, killAt))
			}
		})
	}
}
