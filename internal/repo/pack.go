package repo

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
)

// Pack file format (version 1). A pack is an immutable container of
// checksummed blobs; the repository content-addresses the whole file
// (pack name = hex SHA-256 of its bytes), so packs are never modified in
// place — GC rewrites and deletes them whole.
//
//	offset 0:  magic "APK1" (4 bytes)
//	           blob data, concatenated in header order
//	header:    per blob: type (1) | length (u32 LE) | id (32, SHA-256 of
//	           the blob data) | crc (u32 LE, CRC-32/IEEE of the blob data)
//	footer:    blob count (u32 LE) | header CRC (u32 LE, over the header
//	           bytes) | magic "1KPA" (4 bytes)
//
// The header lives at the END so a pack can be written in one forward
// pass, and a reader can recover every blob's location from the trailing
// fixed-size footer without touching the data region. Offsets are not
// stored — they are derived cumulatively — and the decoder insists the
// derived layout covers the data region exactly, so there is exactly one
// byte encoding of any accepted pack: DecodePack(b).Encode() == b.
const (
	packMagic      = "APK1"
	packEndMagic   = "1KPA"
	packEntrySize  = 1 + 4 + 32 + 4 // type + length + id + crc
	packFooterSize = 4 + 4 + 4      // count + header crc + end magic
	// packTargetSize is the flush threshold for the in-memory pack under
	// construction: once the pending data region exceeds it, the repository
	// seals and saves the pack.
	packTargetSize = 4 << 20
	// maxBlobSize bounds one blob (and therefore one decoder allocation).
	maxBlobSize = 256 << 20
)

// BlobType tags what a blob holds.
type BlobType uint8

const (
	// BlobChunk is a content-defined chunk of a profile document.
	BlobChunk BlobType = 1
	// BlobManifest is a manifest document: the chunk list that
	// reassembles one profile (see manifest.go).
	BlobManifest BlobType = 2
)

func (t BlobType) valid() bool { return t == BlobChunk || t == BlobManifest }

func (t BlobType) String() string {
	switch t {
	case BlobChunk:
		return "chunk"
	case BlobManifest:
		return "manifest"
	default:
		return fmt.Sprintf("blobtype(%d)", uint8(t))
	}
}

// ID is a blob's content address: the SHA-256 of its bytes.
type ID [32]byte

// IDOf hashes data.
func IDOf(data []byte) ID { return sha256.Sum256(data) }

// String renders the full lowercase-hex form.
func (id ID) String() string { return hex.EncodeToString(id[:]) }

// Short renders the conventional 8-hex-digit prefix for display.
func (id ID) Short() string { return hex.EncodeToString(id[:4]) }

// ParseID parses the 64-hex-digit form.
func ParseID(s string) (ID, error) {
	var id ID
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(id) {
		return id, fmt.Errorf("repo: invalid blob id %q", s)
	}
	copy(id[:], b)
	return id, nil
}

// Blob is one decoded pack entry.
type Blob struct {
	Type BlobType
	ID   ID
	Data []byte
}

// ErrPackCorrupt wraps every structural pack-decode failure, so callers
// can distinguish "damaged pack" from backend I/O errors.
var ErrPackCorrupt = errors.New("repo: corrupt pack")

func packCorrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrPackCorrupt, fmt.Sprintf(format, args...))
}

// EncodePack serializes blobs into the pack byte format. Blob order is
// preserved; the caller is responsible for IDs matching the data (the
// repository always computes them with IDOf).
func EncodePack(blobs []Blob) []byte {
	dataLen := 0
	for i := range blobs {
		dataLen += len(blobs[i].Data)
	}
	buf := bytes.NewBuffer(make([]byte, 0, 4+dataLen+len(blobs)*packEntrySize+packFooterSize))
	buf.WriteString(packMagic)
	for i := range blobs {
		buf.Write(blobs[i].Data)
	}
	header := make([]byte, 0, len(blobs)*packEntrySize)
	var scratch [4]byte
	for i := range blobs {
		b := &blobs[i]
		header = append(header, byte(b.Type))
		binary.LittleEndian.PutUint32(scratch[:], uint32(len(b.Data)))
		header = append(header, scratch[:]...)
		header = append(header, b.ID[:]...)
		binary.LittleEndian.PutUint32(scratch[:], crc32.ChecksumIEEE(b.Data))
		header = append(header, scratch[:]...)
	}
	buf.Write(header)
	binary.Write(buf, binary.LittleEndian, uint32(len(blobs)))
	binary.Write(buf, binary.LittleEndian, crc32.ChecksumIEEE(header))
	buf.WriteString(packEndMagic)
	return buf.Bytes()
}

// packEntry is one blob's location inside a pack, as recovered from the
// header (the index stores these).
type packEntry struct {
	typ     BlobType
	id      ID
	offset  uint32
	length  uint32
	crcWant uint32
}

// decodePackHeader validates the pack's framing and checksummed header and
// returns every blob's derived location, without reading blob data. The
// returned entries are in file order with strictly cumulative offsets.
func decodePackHeader(data []byte) ([]packEntry, error) {
	if len(data) < len(packMagic)+packFooterSize {
		return nil, packCorrupt("short file (%d bytes)", len(data))
	}
	if string(data[:4]) != packMagic {
		return nil, packCorrupt("bad magic")
	}
	foot := data[len(data)-packFooterSize:]
	if string(foot[8:]) != packEndMagic {
		return nil, packCorrupt("bad end magic")
	}
	count := binary.LittleEndian.Uint32(foot[0:4])
	headerCRC := binary.LittleEndian.Uint32(foot[4:8])
	// Bound count by what could possibly fit before allocating anything.
	maxCount := (len(data) - len(packMagic) - packFooterSize) / packEntrySize
	if int64(count) > int64(maxCount) {
		return nil, packCorrupt("blob count %d exceeds file capacity %d", count, maxCount)
	}
	headerStart := len(data) - packFooterSize - int(count)*packEntrySize
	header := data[headerStart : len(data)-packFooterSize]
	if crc32.ChecksumIEEE(header) != headerCRC {
		return nil, packCorrupt("header checksum mismatch")
	}
	entries := make([]packEntry, count)
	offset := uint32(len(packMagic))
	for i := range entries {
		e := header[i*packEntrySize:]
		typ := BlobType(e[0])
		if !typ.valid() {
			return nil, packCorrupt("blob %d: unknown type %d", i, e[0])
		}
		length := binary.LittleEndian.Uint32(e[1:5])
		if length > maxBlobSize {
			return nil, packCorrupt("blob %d: length %d exceeds limit", i, length)
		}
		if int64(offset)+int64(length) > int64(headerStart) {
			return nil, packCorrupt("blob %d: data overruns header", i)
		}
		entries[i] = packEntry{typ: typ, offset: offset, length: length}
		copy(entries[i].id[:], e[5:37])
		entries[i].crcWant = binary.LittleEndian.Uint32(e[37:41])
		offset += length
	}
	// The derived layout must cover the data region exactly: any slack
	// would be bytes no entry accounts for (a torn or tampered pack), and
	// would also break the encode round-trip guarantee.
	if int(offset) != headerStart {
		return nil, packCorrupt("data region is %d bytes, entries cover %d",
			headerStart-len(packMagic), offset-uint32(len(packMagic)))
	}
	return entries, nil
}

// DecodePack fully decodes and verifies a pack: framing, header checksum,
// and every blob's CRC-32 and SHA-256. Every accepted pack re-encodes
// byte-identically: EncodePack(DecodePack(b)) == b.
func DecodePack(data []byte) ([]Blob, error) {
	entries, err := decodePackHeader(data)
	if err != nil {
		return nil, err
	}
	blobs := make([]Blob, len(entries))
	for i, e := range entries {
		blob := data[e.offset : e.offset+e.length]
		if crc32.ChecksumIEEE(blob) != e.crcWant {
			return nil, packCorrupt("blob %d (%s): crc mismatch", i, e.id.Short())
		}
		if IDOf(blob) != e.id {
			return nil, packCorrupt("blob %d: content hash does not match id %s", i, e.id.Short())
		}
		blobs[i] = Blob{Type: e.typ, ID: e.id, Data: blob}
	}
	return blobs, nil
}
