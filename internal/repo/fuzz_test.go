package repo

import (
	"bytes"
	"testing"
)

// fuzzSeedPacks builds a few valid packs plus structured corruptions of
// them — the committed corpus under testdata/fuzz adds more.
func fuzzSeedPacks() [][]byte {
	var seeds [][]byte
	small := []byte("hello, profile store")
	blobs := []Blob{
		{Type: BlobChunk, ID: IDOf(small), Data: small},
		{Type: BlobManifest, ID: IDOf([]byte(`{"size":0,"chunks":[]}`)), Data: []byte(`{"size":0,"chunks":[]}`)},
	}
	valid := EncodePack(blobs)
	seeds = append(seeds, valid)
	seeds = append(seeds, EncodePack(nil))
	// Truncations at interesting boundaries.
	seeds = append(seeds, valid[:len(valid)/2], valid[:4], valid[:len(valid)-1])
	// One flipped byte in the data region and one in the footer.
	for _, pos := range []int{5, len(valid) - 3} {
		mut := append([]byte(nil), valid...)
		mut[pos] ^= 0x40
		seeds = append(seeds, mut)
	}
	return seeds
}

// FuzzPackDecode feeds arbitrary bytes to the pack reader. The contract:
// never panic, never allocate beyond the input's own size class, and
// every ACCEPTED pack must round-trip byte-identically through the
// encoder — the format has exactly one encoding per value.
func FuzzPackDecode(f *testing.F) {
	for _, s := range fuzzSeedPacks() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		blobs, err := DecodePack(data)
		if err != nil {
			return
		}
		reencoded := EncodePack(blobs)
		if !bytes.Equal(reencoded, data) {
			t.Fatalf("accepted pack does not round-trip: %d bytes in, %d bytes out", len(data), len(reencoded))
		}
		// The header-only fast path must agree with the full decode.
		entries, herr := decodePackHeader(data)
		if herr != nil {
			t.Fatalf("DecodePack accepted what decodePackHeader rejects: %v", herr)
		}
		if len(entries) != len(blobs) {
			t.Fatalf("header sees %d blobs, full decode %d", len(entries), len(blobs))
		}
	})
}

// fuzzSeedIndexes mirrors fuzzSeedPacks for the index cache format.
func fuzzSeedIndexes() [][]byte {
	var seeds [][]byte
	packs := []IndexPack{
		{Name: "0b1", Blobs: []IndexBlob{
			{Type: BlobChunk, ID: IDOf([]byte("a")), Offset: 4, Length: 10},
			{Type: BlobManifest, ID: IDOf([]byte("b")), Offset: 14, Length: 20},
		}},
		{Name: "ff2", Blobs: []IndexBlob{
			{Type: BlobChunk, ID: IDOf([]byte("c")), Offset: 4, Length: 1},
		}},
	}
	valid := EncodeIndex(packs)
	seeds = append(seeds, valid, EncodeIndex(nil))
	seeds = append(seeds, valid[:len(valid)/2], valid[:4])
	for _, pos := range []int{6, len(valid) - 6} {
		mut := append([]byte(nil), valid...)
		mut[pos] ^= 0x08
		seeds = append(seeds, mut)
	}
	return seeds
}

// FuzzIndexDecode is the index-cache analogue of FuzzPackDecode: no
// panic, bounded allocation, and accepted decodes re-encode to the exact
// input bytes.
func FuzzIndexDecode(f *testing.F) {
	for _, s := range fuzzSeedIndexes() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		packs, err := DecodeIndex(data)
		if err != nil {
			return
		}
		reencoded := EncodeIndex(packs)
		if !bytes.Equal(reencoded, data) {
			t.Fatalf("accepted index does not round-trip: %d bytes in, %d bytes out", len(data), len(reencoded))
		}
		// A decoded cache must load into the in-memory index without
		// issue and serialize back to the same canonical entry set.
		ix := fromIndexPacks(packs)
		blobCount := 0
		for _, p := range packs {
			blobCount += len(p.Blobs)
		}
		if len(ix.blobs) > blobCount {
			t.Fatalf("in-memory index grew blobs: %d > %d", len(ix.blobs), blobCount)
		}
	})
}
