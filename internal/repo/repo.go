// Package repo implements a content-addressed, deduplicated, checksummed
// repository for profile documents — the durability layer beneath aprofd.
//
// Profiles are split into content-defined chunks (chunker.go); chunks and
// the manifests that reassemble them are stored as SHA-256-addressed blobs
// inside immutable, CRC-checksummed pack files (pack.go); an in-memory
// index locates every blob and is rebuilt from pack headers whenever its
// cached form is missing or stale (index.go); and snapshot documents are
// the GC roots that make a result set durable (manifest.go). Storage goes
// exclusively through the narrow backend.Backend interface, so the local
// directory layout, an object store, or a fault-injecting test double are
// interchangeable.
//
// Write ordering is the crash-safety story: blobs are packed and saved
// before any snapshot referencing them exists, new snapshots are saved
// before the ones they supersede are pruned, and GC saves repacked blobs
// before deleting the packs they came from. Every object write is atomic
// (backend contract), so a kill at any instant leaves a repository where
// every snapshot-referenced blob is present — at worst with some
// unreferenced garbage that the next GC collects.
package repo

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"aprof/internal/obs"
	"aprof/internal/repo/backend"
)

// ObsScopeRepo is the repository's metric scope: dedup hit rates, pack
// population, live/dead byte gauges, and GC latency.
const ObsScopeRepo = "repo"

// ErrNotRepository reports an Open of a location with no config document.
var ErrNotRepository = errors.New("repo: not a repository (missing config; run init)")

// ErrProfileNotFound reports a lookup of an unknown manifest or session.
var ErrProfileNotFound = errors.New("repo: profile not found")

// repoVersion is the config document version this code reads and writes.
const repoVersion = 1

// config is the repository's root document. The chunking parameters are
// recorded so a future chunker change cannot silently break dedup against
// an existing store: Open refuses a config it does not understand.
type config struct {
	Version  int `json:"version"`
	ChunkMin int `json:"chunk_min"`
	ChunkMax int `json:"chunk_max"`
	MaskBits int `json:"chunk_mask_bits"`
}

func currentConfig() config {
	return config{Version: repoVersion, ChunkMin: chunkMin, ChunkMax: chunkMax, MaskBits: 11}
}

type repoMetrics struct {
	blobsWritten *obs.Counter
	blobsDeduped *obs.Counter
	bytesWritten *obs.Counter
	bytesDeduped *obs.Counter
	packsWritten *obs.Counter
	packsDeleted *obs.Counter
	snapsWritten *obs.Counter
	gcRuns       *obs.Counter
	gcLatency    *obs.Histogram
	packCount    *obs.Gauge
	blobCount    *obs.Gauge
	liveBytes    *obs.Gauge
	deadBytes    *obs.Gauge
	sessions     *obs.Gauge
}

func newRepoMetrics(reg *obs.Registry) repoMetrics {
	s := reg.Scope(ObsScopeRepo)
	return repoMetrics{
		blobsWritten: s.Counter("blobs_written"),
		blobsDeduped: s.Counter("blobs_deduped"),
		bytesWritten: s.Counter("bytes_written"),
		bytesDeduped: s.Counter("bytes_deduped"),
		packsWritten: s.Counter("packs_written"),
		packsDeleted: s.Counter("packs_deleted"),
		snapsWritten: s.Counter("snapshots_written"),
		gcRuns:       s.Counter("gc_runs"),
		gcLatency:    s.Histogram("gc_us"),
		packCount:    s.Gauge("pack_count"),
		blobCount:    s.Gauge("blob_count"),
		liveBytes:    s.Gauge("live_bytes"),
		deadBytes:    s.Gauge("dead_bytes"),
		sessions:     s.Gauge("sessions"),
	}
}

// Options configures Open.
type Options struct {
	// Obs receives repository metrics under scope "repo" (nil disables).
	Obs *obs.Registry
	// Logf logs recoverable anomalies, e.g. a damaged pack skipped on open
	// (nil discards).
	Logf func(format string, args ...any)
	// Clock supplies the timestamps recorded on saved profiles (nil uses
	// time.Now). Tests inject a fake clock to exercise max-age retention.
	Clock func() time.Time
}

// snapState is one loaded snapshot root.
type snapState struct {
	seq      uint64
	sessions map[string]ID
	savedAt  map[string]int64
	history  map[string][]histEntry
}

// Repository is an open profile store. All methods are safe for
// concurrent use.
type Repository struct {
	be   backend.Backend
	opts Options
	m    repoMetrics

	mu sync.Mutex
	ix *index
	// pending is the pack under construction: blobs staged but not yet
	// saved. Readable through Get, persisted by flush.
	pending      []Blob
	pendingIDs   map[ID]struct{}
	pendingBytes int
	// snaps holds every snapshot root by name; sessions is the merged
	// head view (highest seq wins per session), with the winning root's
	// timestamp and retained history carried alongside.
	snaps    map[string]snapState
	sessions map[string]ID
	savedAt  map[string]int64
	history  map[string][]histEntry
	maxSeq   uint64
	// damagedSnaps lists snapshot files whose content does not hash to
	// their name — torn writes made visible by a non-atomic backend. They
	// are never honored as roots and are deleted by the next GC.
	damagedSnaps []string
	// damaged lists packs that failed to decode on open. Their blobs are
	// not served; Check reports whether anything referenced lived there.
	damaged []string
	// packCache holds the bytes of the most recently loaded pack, so
	// assembling a profile does not re-read the pack per chunk.
	packCacheName string
	packCacheData []byte
}

// Init creates a new repository behind be. It refuses a location that
// already holds one.
func Init(be backend.Backend) error {
	h := backend.Handle{Type: backend.ConfigType, Name: "config"}
	if _, err := be.Load(h); err == nil {
		return errors.New("repo: already initialized")
	} else if !errors.Is(err, backend.ErrNotFound) {
		return err
	}
	data, err := json.Marshal(currentConfig())
	if err != nil {
		return err
	}
	return be.Save(h, data)
}

// Open loads the repository behind be: config, snapshots, and the blob
// index (from the cached index file when it exactly matches the pack set,
// from a full pack-header scan otherwise).
func Open(be backend.Backend, opts Options) (*Repository, error) {
	raw, err := be.Load(backend.Handle{Type: backend.ConfigType, Name: "config"})
	if errors.Is(err, backend.ErrNotFound) {
		return nil, ErrNotRepository
	}
	if err != nil {
		return nil, err
	}
	var cfg config
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return nil, fmt.Errorf("repo: corrupt config: %w", err)
	}
	if cfg != currentConfig() {
		return nil, fmt.Errorf("repo: unsupported config %+v (want %+v)", cfg, currentConfig())
	}

	r := &Repository{
		be:         be,
		opts:       opts,
		m:          newRepoMetrics(opts.Obs),
		pendingIDs: make(map[ID]struct{}),
		snaps:      make(map[string]snapState),
		sessions:   make(map[string]ID),
	}
	if err := r.loadIndex(); err != nil {
		return nil, err
	}
	if err := r.loadSnapshots(); err != nil {
		return nil, err
	}
	r.updateGauges()
	return r, nil
}

// OpenOrInit opens the repository, initializing an empty location first.
func OpenOrInit(be backend.Backend, opts Options) (*Repository, error) {
	r, err := Open(be, opts)
	if errors.Is(err, ErrNotRepository) {
		if err := Init(be); err != nil {
			return nil, err
		}
		return Open(be, opts)
	}
	return r, err
}

func (r *Repository) logf(format string, args ...any) {
	if r.opts.Logf != nil {
		r.opts.Logf(format, args...)
	}
}

// loadIndex populates r.ix, preferring a cached index file that covers
// exactly the pack set present; anything else falls back to scanning
// every pack header.
func (r *Repository) loadIndex() error {
	packNames, err := r.be.List(backend.PackType)
	if err != nil {
		return err
	}
	if ix, ok := r.loadIndexCache(packNames); ok {
		r.ix = ix
		return nil
	}
	r.ix = newIndex()
	for _, name := range packNames {
		data, err := r.be.Load(backend.Handle{Type: backend.PackType, Name: name})
		if err != nil {
			return err
		}
		entries, derr := decodePackHeader(data)
		if derr != nil {
			// A damaged pack cannot be served; quarantine it rather than
			// failing the whole store open. Check reports whether any
			// referenced blob lived there.
			r.damaged = append(r.damaged, name)
			r.logf("repo: skipping damaged pack %s: %v", name, derr)
			continue
		}
		r.ix.addPack(name, entries, false)
	}
	return nil
}

// loadIndexCache tries each cached index file (normally at most one) and
// returns the first whose covered pack set equals packNames exactly.
func (r *Repository) loadIndexCache(packNames []string) (*index, bool) {
	names, err := r.be.List(backend.IndexType)
	if err != nil || len(names) == 0 {
		return nil, false
	}
	want := make(map[string]struct{}, len(packNames))
	for _, n := range packNames {
		want[n] = struct{}{}
	}
	for _, name := range names {
		data, err := r.be.Load(backend.Handle{Type: backend.IndexType, Name: name})
		if err != nil {
			continue
		}
		packs, derr := DecodeIndex(data)
		if derr != nil {
			r.logf("repo: ignoring corrupt index cache %s: %v", name, derr)
			continue
		}
		if len(packs) != len(want) {
			continue
		}
		stale := false
		for _, p := range packs {
			if _, ok := want[p.Name]; !ok {
				stale = true
				break
			}
		}
		if stale {
			continue
		}
		return fromIndexPacks(packs), true
	}
	return nil, false
}

// loadSnapshots reads every snapshot root and builds the merged session
// view. Snapshots are content-addressed, so a torn write is detectable:
// the file's hash no longer matches its name. Such wreckage is quarantined
// (it was never acknowledged — the save that produced it failed). A
// snapshot whose content DOES match its name but fails to decode is real
// corruption and fails the open: guessing at roots risks GC deleting live
// data.
func (r *Repository) loadSnapshots() error {
	names, err := r.be.List(backend.SnapshotType)
	if err != nil {
		return err
	}
	for _, name := range names {
		data, err := r.be.Load(backend.Handle{Type: backend.SnapshotType, Name: name})
		if err != nil {
			return err
		}
		if IDOf(data).String() != name {
			r.damagedSnaps = append(r.damagedSnaps, name)
			r.logf("repo: skipping torn snapshot %s", name)
			continue
		}
		doc, derr := decodeSnapshot(data)
		if derr != nil {
			return fmt.Errorf("repo: snapshot %s: %w", name, derr)
		}
		r.snaps[name] = snapState{seq: doc.seq, sessions: doc.sessions, savedAt: doc.savedAt, history: doc.history}
		if doc.seq > r.maxSeq {
			r.maxSeq = doc.seq
		}
	}
	r.rebuildSessionView()
	return nil
}

// rebuildSessionView recomputes the merged head view from all roots. The
// winning root (highest seq) for a session also supplies its timestamp
// and retained history.
func (r *Repository) rebuildSessionView() {
	r.sessions = make(map[string]ID)
	r.savedAt = make(map[string]int64)
	r.history = make(map[string][]histEntry)
	winner := make(map[string]uint64)
	for _, s := range r.snaps {
		for sid, mid := range s.sessions {
			if seq, ok := winner[sid]; !ok || s.seq > seq {
				winner[sid] = s.seq
				r.sessions[sid] = mid
				delete(r.savedAt, sid)
				delete(r.history, sid)
				if at, ok := s.savedAt[sid]; ok {
					r.savedAt[sid] = at
				}
				if h := s.history[sid]; len(h) > 0 {
					r.history[sid] = append([]histEntry(nil), h...)
				}
			}
		}
	}
}

// sessionSeqs returns, per session, the seq of the root that supplies its
// head — the tiebreaker anti-entropy sync merges against.
func (r *Repository) sessionSeqsLocked() map[string]uint64 {
	winner := make(map[string]uint64)
	for _, s := range r.snaps {
		for sid := range s.sessions {
			if seq, ok := winner[sid]; !ok || s.seq > seq {
				winner[sid] = s.seq
			}
		}
	}
	return winner
}

// Put stores a profile document, returning its manifest ID. Chunks (and
// the manifest) already present in the store or staged in the pending
// pack are deduplicated, not re-stored. The data is readable through Get
// immediately, but only durable once a flush happens (Snapshot,
// SaveProfile, Flush, and Close all flush).
func (r *Repository) Put(data []byte) (ID, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.putLocked(data)
}

func (r *Repository) putLocked(data []byte) (ID, error) {
	chunks := chunkData(data)
	ids := make([]ID, len(chunks))
	for i, c := range chunks {
		ids[i] = IDOf(c)
		r.stageLocked(BlobChunk, ids[i], c)
	}
	mdata := encodeManifest(len(data), ids)
	mid := IDOf(mdata)
	r.stageLocked(BlobManifest, mid, mdata)
	if err := r.maybeFlushLocked(); err != nil {
		return ID{}, err
	}
	return mid, nil
}

// stageLocked adds one blob to the pending pack unless it is already
// stored or staged (the dedup hit path).
func (r *Repository) stageLocked(t BlobType, id ID, data []byte) {
	if _, ok := r.pendingIDs[id]; ok {
		r.m.blobsDeduped.Inc()
		r.m.bytesDeduped.Add(uint64(len(data)))
		return
	}
	if r.ix.has(id) {
		r.m.blobsDeduped.Inc()
		r.m.bytesDeduped.Add(uint64(len(data)))
		return
	}
	owned := append([]byte(nil), data...)
	r.pending = append(r.pending, Blob{Type: t, ID: id, Data: owned})
	r.pendingIDs[id] = struct{}{}
	r.pendingBytes += len(owned)
	r.m.blobsWritten.Inc()
	r.m.bytesWritten.Add(uint64(len(owned)))
}

// maybeFlushLocked seals the pending pack once it crosses the target size.
func (r *Repository) maybeFlushLocked() error {
	if r.pendingBytes < packTargetSize {
		return nil
	}
	return r.flushLocked()
}

// Flush persists the pending pack (a no-op when nothing is staged).
func (r *Repository) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.flushLocked()
}

func (r *Repository) flushLocked() error {
	if len(r.pending) == 0 {
		return nil
	}
	if _, err := r.savePackLocked(r.pending); err != nil {
		return err
	}
	r.pending = nil
	r.pendingIDs = make(map[ID]struct{})
	r.pendingBytes = 0
	r.updateGauges()
	return nil
}

// savePackLocked encodes blobs into a pack, saves it under its content
// hash, and indexes its entries (first-seen location wins).
func (r *Repository) savePackLocked(blobs []Blob) (string, error) {
	return r.savePack(blobs, false)
}

// savePackOverwriteLocked is savePackLocked with the new pack's locations
// taking precedence over existing index entries — the GC repack path.
func (r *Repository) savePackOverwriteLocked(blobs []Blob) (string, error) {
	return r.savePack(blobs, true)
}

func (r *Repository) savePack(blobs []Blob, overwrite bool) (string, error) {
	data := EncodePack(blobs)
	name := IDOf(data).String()
	if err := r.be.Save(backend.Handle{Type: backend.PackType, Name: name}, data); err != nil {
		return "", err
	}
	entries, err := decodePackHeader(data)
	if err != nil { // cannot happen: we just encoded it
		return "", err
	}
	r.ix.addPack(name, entries, overwrite)
	r.m.packsWritten.Inc()
	return name, nil
}

// Get reassembles a stored profile by manifest ID.
func (r *Repository) Get(id ID) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.getLocked(id)
}

func (r *Repository) getLocked(id ID) ([]byte, error) {
	mdata, err := r.loadBlobLocked(id, BlobManifest)
	if err != nil {
		return nil, err
	}
	size, chunks, err := decodeManifest(mdata)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, size)
	for _, cid := range chunks {
		cdata, err := r.loadBlobLocked(cid, BlobChunk)
		if err != nil {
			return nil, err
		}
		out = append(out, cdata...)
	}
	if len(out) != size {
		return nil, fmt.Errorf("repo: manifest %s: chunks total %d bytes, manifest says %d", id.Short(), len(out), size)
	}
	return out, nil
}

// loadBlobLocked fetches one blob by ID, from the pending pack or from a
// saved pack. Every pack read is verified: the blob's bytes must hash
// back to its ID, so a torn or tampered pack is never served.
func (r *Repository) loadBlobLocked(id ID, want BlobType) ([]byte, error) {
	if _, ok := r.pendingIDs[id]; ok {
		for i := range r.pending {
			if r.pending[i].ID == id {
				if r.pending[i].Type != want {
					return nil, fmt.Errorf("repo: blob %s is a %s, want %s", id.Short(), r.pending[i].Type, want)
				}
				return r.pending[i].Data, nil
			}
		}
	}
	e, ok := r.ix.lookup(id)
	if !ok {
		return nil, fmt.Errorf("%w: blob %s", ErrProfileNotFound, id.Short())
	}
	if e.typ != want {
		return nil, fmt.Errorf("repo: blob %s is a %s, want %s", id.Short(), e.typ, want)
	}
	pack, err := r.loadPackLocked(e.pack)
	if err != nil {
		return nil, err
	}
	if int64(e.offset)+int64(e.length) > int64(len(pack)) {
		return nil, packCorrupt("pack %s: blob %s out of bounds", e.pack[:8], id.Short())
	}
	data := pack[e.offset : e.offset+e.length]
	if IDOf(data) != id {
		return nil, packCorrupt("pack %s: blob %s failed verification", e.pack[:8], id.Short())
	}
	return data, nil
}

// loadPackLocked reads a pack's bytes, with a one-entry cache for the
// chunk-after-chunk access pattern of profile assembly.
func (r *Repository) loadPackLocked(name string) ([]byte, error) {
	if r.packCacheName == name {
		return r.packCacheData, nil
	}
	data, err := r.be.Load(backend.Handle{Type: backend.PackType, Name: name})
	if err != nil {
		return nil, err
	}
	r.packCacheName, r.packCacheData = name, data
	return data, nil
}

// SnapshotInfo describes one root.
type SnapshotInfo struct {
	Name     string
	Seq      uint64
	Sessions map[string]ID
}

// Snapshot makes the given session → manifest set a durable root: it
// flushes pending blobs, verifies every referenced manifest is stored,
// and saves a new snapshot document. It returns the snapshot's name.
func (r *Repository) Snapshot(sessions map[string]ID) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapshotLocked(sessions, nil, nil)
}

func (r *Repository) snapshotLocked(sessions map[string]ID, savedAt map[string]int64, history map[string][]histEntry) (string, error) {
	if err := r.flushLocked(); err != nil {
		return "", err
	}
	for sid, mid := range sessions {
		if e, ok := r.ix.lookup(mid); !ok || e.typ != BlobManifest {
			return "", fmt.Errorf("repo: snapshot references unknown manifest %s (session %q)", mid.Short(), sid)
		}
	}
	for sid, entries := range history {
		for _, he := range entries {
			mid, err := ParseID(he.Manifest)
			if err != nil {
				return "", fmt.Errorf("repo: snapshot history of %q: %w", sid, err)
			}
			if e, ok := r.ix.lookup(mid); !ok || e.typ != BlobManifest {
				return "", fmt.Errorf("repo: snapshot history of %q references unknown manifest %s", sid, mid.Short())
			}
		}
	}
	seq := r.maxSeq + 1
	data := encodeSnapshot(seq, sessions, savedAt, history)
	name := IDOf(data).String()
	if err := r.be.Save(backend.Handle{Type: backend.SnapshotType, Name: name}, data); err != nil {
		return "", err
	}
	r.maxSeq = seq
	r.snaps[name] = snapState{
		seq:      seq,
		sessions: cloneSessions(sessions),
		savedAt:  cloneSavedAt(savedAt),
		history:  cloneHistory(history),
	}
	r.rebuildSessionView()
	r.m.snapsWritten.Inc()
	r.updateGauges()
	return name, nil
}

// Forget removes a snapshot root. The blobs it referenced stay stored
// until a GC finds them unreferenced.
func (r *Repository) Forget(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.snaps[name]; !ok {
		return fmt.Errorf("%w: snapshot %s", ErrProfileNotFound, name)
	}
	if err := r.be.Remove(backend.Handle{Type: backend.SnapshotType, Name: name}); err != nil && !errors.Is(err, backend.ErrNotFound) {
		return err
	}
	delete(r.snaps, name)
	r.rebuildSessionView()
	r.updateGauges()
	return nil
}

// SaveProfile stores a session's profile document and makes it durable in
// one step: put, snapshot the updated head result set, and prune the
// snapshots the new one supersedes. When SaveProfile returns nil the
// profile survives any crash.
//
// A re-save that replaces a session's head pushes the superseded version
// onto the session's history (bounded at maxRecordedHistory), where a
// retention policy — GCWithPolicy's keep-last-N and max-age knobs —
// decides how long it stays reachable. The default GC keeps heads only,
// exactly the pre-history behavior.
func (r *Repository) SaveProfile(sessionID string, profile []byte) error {
	if sessionID == "" {
		return errors.New("repo: empty session id")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	mid, err := r.putLocked(profile)
	if err != nil {
		return err
	}
	if cur, ok := r.sessions[sessionID]; ok && cur == mid && len(r.snaps) == 1 {
		return nil // identical re-save of the head state: nothing to do
	}
	next := cloneSessions(r.sessions)
	nextSavedAt := cloneSavedAt(r.savedAt)
	nextHistory := cloneHistory(r.history)
	if old, ok := next[sessionID]; ok && old != mid {
		entries := append([]histEntry{{Manifest: old.String(), SavedAt: r.savedAt[sessionID]}}, nextHistory[sessionID]...)
		entries = sortedHistory(entries)
		if len(entries) > maxRecordedHistory {
			entries = entries[:maxRecordedHistory]
		}
		nextHistory[sessionID] = entries
	}
	next[sessionID] = mid
	nextSavedAt[sessionID] = r.now().Unix()
	newName, err := r.snapshotLocked(next, nextSavedAt, nextHistory)
	if err != nil {
		return err
	}
	// The new snapshot holds the full head set, so every other root is
	// redundant. Prune them; a crash mid-prune leaves extra roots, which
	// only hold more blobs live — never fewer.
	for name := range r.snaps {
		if name == newName {
			continue
		}
		if err := r.be.Remove(backend.Handle{Type: backend.SnapshotType, Name: name}); err != nil && !errors.Is(err, backend.ErrNotFound) {
			return err
		}
		delete(r.snaps, name)
	}
	r.rebuildSessionView()
	r.updateGauges()
	return nil
}

// Sessions returns the merged head view: session ID → manifest ID.
func (r *Repository) Sessions() map[string]ID {
	r.mu.Lock()
	defer r.mu.Unlock()
	return cloneSessions(r.sessions)
}

// SessionIDs returns the stored session IDs in lexical order.
func (r *Repository) SessionIDs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return sortedSessionIDs(r.sessions)
}

// GetSession reassembles a session's profile document.
func (r *Repository) GetSession(sessionID string) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	mid, ok := r.sessions[sessionID]
	if !ok {
		return nil, fmt.Errorf("%w: session %q", ErrProfileNotFound, sessionID)
	}
	return r.getLocked(mid)
}

// Snapshots lists every root, sorted by (seq, name).
func (r *Repository) Snapshots() []SnapshotInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SnapshotInfo, 0, len(r.snaps))
	for name, s := range r.snaps {
		out = append(out, SnapshotInfo{Name: name, Seq: s.seq, Sessions: cloneSessions(s.sessions)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seq != out[j].Seq {
			return out[i].Seq < out[j].Seq
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// DamagedPacks lists packs that failed to decode when the store was
// opened (their blobs are quarantined, never served).
func (r *Repository) DamagedPacks() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.damaged...)
}

// Close flushes pending blobs and writes the index cache. The repository
// stays usable (Close is idempotent); callers that only read may skip it.
func (r *Repository) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.flushLocked(); err != nil {
		return err
	}
	return r.writeIndexCacheLocked()
}

// writeIndexCacheLocked saves the current index under its content hash
// and removes older cache files. Pure optimization: failures only cost
// the next open a pack-header scan.
func (r *Repository) writeIndexCacheLocked() error {
	data := EncodeIndex(r.ix.toIndexPacks())
	name := IDOf(data).String()
	if err := r.be.Save(backend.Handle{Type: backend.IndexType, Name: name}, data); err != nil {
		return err
	}
	if names, err := r.be.List(backend.IndexType); err == nil {
		for _, n := range names {
			if n == name {
				continue
			}
			if err := r.be.Remove(backend.Handle{Type: backend.IndexType, Name: n}); err != nil && !errors.Is(err, backend.ErrNotFound) {
				// A stale cache file costs the next open nothing (staleness
				// detection skips it), but a failing Remove means the backend
				// is sick — surface that rather than hiding it.
				return err
			}
		}
	}
	return nil
}

// markLive walks every root — heads and retained history alike — and
// returns the set of live blob IDs with reference counts. It fails —
// rather than guessing — when a referenced manifest or chunk cannot be
// loaded.
func (r *Repository) markLiveLocked() (map[ID]int, error) {
	live := make(map[ID]int)
	mark := func(root, sid string, mid ID) error {
		live[mid]++
		if live[mid] > 1 {
			return nil // manifest already walked
		}
		mdata, err := r.loadBlobLocked(mid, BlobManifest)
		if err != nil {
			return fmt.Errorf("repo: snapshot %s session %q: %w", root[:8], sid, err)
		}
		_, chunks, err := decodeManifest(mdata)
		if err != nil {
			return fmt.Errorf("repo: snapshot %s session %q: %w", root[:8], sid, err)
		}
		for _, cid := range chunks {
			live[cid]++
		}
		return nil
	}
	for name, s := range r.snaps {
		for sid, mid := range s.sessions {
			if err := mark(name, sid, mid); err != nil {
				return nil, err
			}
			for _, he := range s.history[sid] {
				hid, err := ParseID(he.Manifest)
				if err != nil {
					return nil, fmt.Errorf("repo: snapshot %s history of %q: %w", name[:8], sid, err)
				}
				if err := mark(name, sid, hid); err != nil {
					return nil, err
				}
			}
		}
	}
	return live, nil
}

// updateGauges refreshes the cheap population gauges. The live/dead byte
// gauges need a full mark pass, so only GC and Stats refresh those.
func (r *Repository) updateGauges() {
	r.m.packCount.Set(int64(len(r.ix.packNames())))
	r.m.blobCount.Set(int64(len(r.ix.blobs)))
	r.m.sessions.Set(int64(len(r.sessions)))
}

// updateByteGauges splits stored bytes into live and dead given a
// completed mark pass.
func (r *Repository) updateByteGauges(live map[ID]int) (liveBytes, deadBytes int64) {
	for id, e := range r.ix.blobs {
		if _, ok := live[id]; ok {
			liveBytes += int64(e.length)
		} else {
			deadBytes += int64(e.length)
		}
	}
	r.m.liveBytes.Set(liveBytes)
	r.m.deadBytes.Set(deadBytes)
	return liveBytes, deadBytes
}

// maxRecordedHistory bounds the superseded versions SaveProfile records
// per session between GCs, so a hot session cannot grow a root without
// bound. Retention policies trim below this; GC's default keeps heads
// only.
const maxRecordedHistory = 64

func (r *Repository) now() time.Time {
	if r.opts.Clock != nil {
		return r.opts.Clock()
	}
	return time.Now()
}

// Version describes one stored version of a session.
type Version struct {
	Manifest ID
	// SavedAt is when this version became the head (zero when unknown —
	// saved before timestamps existed).
	SavedAt time.Time
	// Head marks the current version.
	Head bool
}

// Versions lists a session's stored versions, head first, then retained
// history newest-first. Empty when the session is unknown.
func (r *Repository) Versions(sessionID string) []Version {
	r.mu.Lock()
	defer r.mu.Unlock()
	mid, ok := r.sessions[sessionID]
	if !ok {
		return nil
	}
	out := []Version{{Manifest: mid, SavedAt: unixTime(r.savedAt[sessionID]), Head: true}}
	for _, he := range r.history[sessionID] {
		hid, err := ParseID(he.Manifest)
		if err != nil {
			continue // unreachable: verified at decode/snapshot time
		}
		out = append(out, Version{Manifest: hid, SavedAt: unixTime(he.SavedAt)})
	}
	return out
}

// GetVersion reassembles one retained version of a session — the head or
// any history entry listed by Versions.
func (r *Repository) GetVersion(sessionID string, manifest ID) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	mid, ok := r.sessions[sessionID]
	if !ok {
		return nil, fmt.Errorf("%w: session %q", ErrProfileNotFound, sessionID)
	}
	if manifest != mid {
		found := false
		for _, he := range r.history[sessionID] {
			if he.Manifest == manifest.String() {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("%w: session %q has no version %s", ErrProfileNotFound, sessionID, manifest.Short())
		}
	}
	return r.getLocked(manifest)
}

func unixTime(sec int64) time.Time {
	if sec == 0 {
		return time.Time{}
	}
	return time.Unix(sec, 0)
}

func cloneSessions(m map[string]ID) map[string]ID {
	out := make(map[string]ID, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func cloneSavedAt(m map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func cloneHistory(m map[string][]histEntry) map[string][]histEntry {
	out := make(map[string][]histEntry, len(m))
	for k, v := range m {
		if len(v) == 0 {
			continue
		}
		out[k] = sortedHistory(v)
	}
	return out
}

// nowMicros measures a duration in microseconds for the GC histogram.
func sinceMicros(start time.Time) uint64 {
	us := time.Since(start).Microseconds()
	if us < 0 {
		return 0
	}
	return uint64(us)
}
