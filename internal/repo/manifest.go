package repo

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// A manifest is the blob that reassembles one stored profile: the ordered
// chunk list plus the total size. It is serialized as canonical JSON
// (fixed field order, no whitespace variance) so identical profiles always
// produce the identical manifest blob — and therefore the identical
// manifest ID, which is what the repository hands out as the profile's
// address.
type manifest struct {
	Size   int      `json:"size"`
	Chunks []string `json:"chunks"`
}

// encodeManifest serializes the chunk list for a profile of the given
// total size.
func encodeManifest(size int, chunks []ID) []byte {
	m := manifest{Size: size, Chunks: make([]string, len(chunks))}
	for i, id := range chunks {
		m.Chunks[i] = id.String()
	}
	data, err := json.Marshal(m)
	if err != nil { // a struct of ints and strings cannot fail to marshal
		panic(err)
	}
	return data
}

// decodeManifest parses a manifest blob.
func decodeManifest(data []byte) (size int, chunks []ID, err error) {
	var m manifest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return 0, nil, fmt.Errorf("repo: corrupt manifest: %w", err)
	}
	if m.Size < 0 {
		return 0, nil, fmt.Errorf("repo: corrupt manifest: negative size")
	}
	chunks = make([]ID, len(m.Chunks))
	for i, s := range m.Chunks {
		chunks[i], err = ParseID(s)
		if err != nil {
			return 0, nil, fmt.Errorf("repo: corrupt manifest: %w", err)
		}
	}
	return m.Size, chunks, nil
}

// A snapshot is a GC root: one immutable record of a complete result set,
// mapping session IDs to manifest IDs. Saving a profile writes a new
// snapshot containing the updated set and then prunes the snapshots it
// supersedes; because the new snapshot is saved first, every blob stays
// referenced by at least one root at every instant — the invariant the
// crash sweep tests.
type snapshot struct {
	// Seq orders snapshots: when two snapshots disagree about a session
	// (possible only transiently, between a save and its prune), the higher
	// sequence number wins.
	Seq uint64 `json:"seq"`
	// Sessions maps session ID → manifest ID (hex).
	Sessions map[string]string `json:"sessions"`
}

// encodeSnapshot serializes a snapshot; json.Marshal sorts map keys, so
// the encoding is canonical and the snapshot's name (the hex SHA-256 of
// these bytes) is deterministic.
func encodeSnapshot(seq uint64, sessions map[string]ID) []byte {
	s := snapshot{Seq: seq, Sessions: make(map[string]string, len(sessions))}
	for id, m := range sessions {
		s.Sessions[id] = m.String()
	}
	data, err := json.Marshal(s)
	if err != nil {
		panic(err)
	}
	return data
}

// decodeSnapshot parses a snapshot document.
func decodeSnapshot(data []byte) (seq uint64, sessions map[string]ID, err error) {
	var s snapshot
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return 0, nil, fmt.Errorf("repo: corrupt snapshot: %w", err)
	}
	sessions = make(map[string]ID, len(s.Sessions))
	for sid, mhex := range s.Sessions {
		if strings.TrimSpace(sid) == "" {
			return 0, nil, fmt.Errorf("repo: corrupt snapshot: empty session id")
		}
		id, perr := ParseID(mhex)
		if perr != nil {
			return 0, nil, fmt.Errorf("repo: corrupt snapshot: session %q: %w", sid, perr)
		}
		sessions[sid] = id
	}
	return s.Seq, sessions, nil
}

// sortedSessionIDs returns a session map's keys in lexical order.
func sortedSessionIDs(sessions map[string]ID) []string {
	ids := make([]string, 0, len(sessions))
	for id := range sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
