package repo

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// A manifest is the blob that reassembles one stored profile: the ordered
// chunk list plus the total size. It is serialized as canonical JSON
// (fixed field order, no whitespace variance) so identical profiles always
// produce the identical manifest blob — and therefore the identical
// manifest ID, which is what the repository hands out as the profile's
// address.
type manifest struct {
	Size   int      `json:"size"`
	Chunks []string `json:"chunks"`
}

// encodeManifest serializes the chunk list for a profile of the given
// total size.
func encodeManifest(size int, chunks []ID) []byte {
	m := manifest{Size: size, Chunks: make([]string, len(chunks))}
	for i, id := range chunks {
		m.Chunks[i] = id.String()
	}
	data, err := json.Marshal(m)
	if err != nil { // a struct of ints and strings cannot fail to marshal
		panic(err)
	}
	return data
}

// decodeManifest parses a manifest blob.
func decodeManifest(data []byte) (size int, chunks []ID, err error) {
	var m manifest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return 0, nil, fmt.Errorf("repo: corrupt manifest: %w", err)
	}
	if m.Size < 0 {
		return 0, nil, fmt.Errorf("repo: corrupt manifest: negative size")
	}
	chunks = make([]ID, len(m.Chunks))
	for i, s := range m.Chunks {
		chunks[i], err = ParseID(s)
		if err != nil {
			return 0, nil, fmt.Errorf("repo: corrupt manifest: %w", err)
		}
	}
	return m.Size, chunks, nil
}

// A snapshot is a GC root: one immutable record of a complete result set,
// mapping session IDs to manifest IDs. Saving a profile writes a new
// snapshot containing the updated set and then prunes the snapshots it
// supersedes; because the new snapshot is saved first, every blob stays
// referenced by at least one root at every instant — the invariant the
// crash sweep tests.
//
// Beyond the head set, a snapshot optionally retains per-session history:
// the manifests a session's head superseded, newest first, each with the
// time it was the head. History entries are GC roots too — that is what
// retention policies richer than keep-latest-head trim against.
type snapshot struct {
	// Seq orders snapshots: when two snapshots disagree about a session
	// (possible only transiently, between a save and its prune), the higher
	// sequence number wins.
	Seq uint64 `json:"seq"`
	// Sessions maps session ID → manifest ID (hex).
	Sessions map[string]string `json:"sessions"`
	// SavedAt maps session ID → the Unix time its head manifest was saved
	// (absent for sessions saved before timestamps existed).
	SavedAt map[string]int64 `json:"saved_at,omitempty"`
	// History maps session ID → superseded versions, newest first.
	History map[string][]histEntry `json:"history,omitempty"`
}

// histEntry is one retained superseded version of a session.
type histEntry struct {
	Manifest string `json:"manifest"`
	SavedAt  int64  `json:"saved_at"`
}

// snapDoc is a fully decoded snapshot with parsed manifest IDs.
type snapDoc struct {
	seq      uint64
	sessions map[string]ID
	savedAt  map[string]int64
	history  map[string][]histEntry
}

// encodeSnapshot serializes a snapshot; json.Marshal sorts map keys and
// struct fields keep declaration order, so the encoding is canonical and
// the snapshot's name (the hex SHA-256 of these bytes) is deterministic.
// Empty savedAt/history maps are omitted entirely, so stores that never
// use retention produce byte-identical snapshots to the pre-history
// format.
func encodeSnapshot(seq uint64, sessions map[string]ID, savedAt map[string]int64, history map[string][]histEntry) []byte {
	s := snapshot{Seq: seq, Sessions: make(map[string]string, len(sessions))}
	for id, m := range sessions {
		s.Sessions[id] = m.String()
	}
	if len(savedAt) > 0 {
		s.SavedAt = savedAt
	}
	for sid, entries := range history {
		if len(entries) == 0 {
			continue
		}
		if s.History == nil {
			s.History = make(map[string][]histEntry)
		}
		s.History[sid] = sortedHistory(entries)
	}
	data, err := json.Marshal(s)
	if err != nil {
		panic(err)
	}
	return data
}

// sortedHistory returns entries in canonical order — newest first, ties
// broken by manifest hex — with duplicate manifests dropped (first wins).
func sortedHistory(entries []histEntry) []histEntry {
	out := append([]histEntry(nil), entries...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].SavedAt != out[j].SavedAt {
			return out[i].SavedAt > out[j].SavedAt
		}
		return out[i].Manifest < out[j].Manifest
	})
	seen := make(map[string]struct{}, len(out))
	dedup := out[:0]
	for _, e := range out {
		if _, ok := seen[e.Manifest]; ok {
			continue
		}
		seen[e.Manifest] = struct{}{}
		dedup = append(dedup, e)
	}
	return dedup
}

// decodeSnapshot parses a snapshot document.
func decodeSnapshot(data []byte) (snapDoc, error) {
	var none snapDoc
	var s snapshot
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return none, fmt.Errorf("repo: corrupt snapshot: %w", err)
	}
	doc := snapDoc{
		seq:      s.Seq,
		sessions: make(map[string]ID, len(s.Sessions)),
		savedAt:  s.SavedAt,
	}
	for sid, mhex := range s.Sessions {
		if strings.TrimSpace(sid) == "" {
			return none, fmt.Errorf("repo: corrupt snapshot: empty session id")
		}
		id, perr := ParseID(mhex)
		if perr != nil {
			return none, fmt.Errorf("repo: corrupt snapshot: session %q: %w", sid, perr)
		}
		doc.sessions[sid] = id
	}
	for sid, entries := range s.History {
		if _, ok := doc.sessions[sid]; !ok {
			return none, fmt.Errorf("repo: corrupt snapshot: history for unknown session %q", sid)
		}
		for _, e := range entries {
			if _, perr := ParseID(e.Manifest); perr != nil {
				return none, fmt.Errorf("repo: corrupt snapshot: history of %q: %w", sid, perr)
			}
		}
		if doc.history == nil {
			doc.history = make(map[string][]histEntry)
		}
		doc.history[sid] = entries
	}
	return doc, nil
}

// sortedSessionIDs returns a session map's keys in lexical order.
func sortedSessionIDs(sessions map[string]ID) []string {
	ids := make([]string, 0, len(sessions))
	for id := range sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
