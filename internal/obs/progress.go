package obs

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"
)

// DefaultProgressInterval is the default cadence of StartProgress.
const DefaultProgressInterval = 2 * time.Second

// StartProgress emits one line() per interval to w — the periodic stderr
// progress line of aprof -progress. The returned stop function halts the
// ticker, emits one final line (so short runs still report), and joins the
// goroutine before returning; it is idempotent. Cancelling ctx also stops
// the ticker (without the final line, since the run was abandoned); stop
// still joins and may be called afterwards.
func StartProgress(ctx context.Context, w io.Writer, interval time.Duration, line func() string) (stop func()) {
	if interval <= 0 {
		interval = DefaultProgressInterval
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				fmt.Fprintln(w, line())
			case <-ctx.Done():
				return
			case <-done:
				// Final line on a clean stop only: if the run was abandoned
				// via ctx, stop() must not resurrect output.
				if ctx.Err() == nil {
					fmt.Fprintln(w, line())
				}
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-finished
	}
}
