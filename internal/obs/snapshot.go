package obs

import (
	"encoding/json"
	"io"
	"os"
)

// snapshotSchema is bumped on breaking changes to the snapshot JSON layout.
// The run-summary files aprof writes next to profiles carry this number so
// downstream tooling can detect incompatible documents.
const snapshotSchema = 1

// Snapshot is a point-in-time copy of every metric in a registry, ordered
// deterministically (scopes and metrics sorted by name) so that two
// registries holding the same values marshal to identical bytes.
type Snapshot struct {
	Schema int             `json:"schema"`
	Scopes []ScopeSnapshot `json:"scopes"`
}

// ScopeSnapshot holds one scope's metrics.
type ScopeSnapshot struct {
	Name       string           `json:"name"`
	Counters   []CounterValue   `json:"counters,omitempty"`
	Gauges     []GaugeValue     `json:"gauges,omitempty"`
	Histograms []HistogramValue `json:"histograms,omitempty"`
}

// CounterValue is one counter reading.
type CounterValue struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeValue is one gauge reading.
type GaugeValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramValue is one histogram reading. Only materially non-empty
// buckets are serialized; Le is the inclusive upper bound of a bucket's
// power-of-two value range.
type HistogramValue struct {
	Name    string   `json:"name"`
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one non-empty histogram bucket.
type Bucket struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// Snapshot copies the current value of every metric. Safe to call
// concurrently with updates; individual metric reads are atomic (the
// snapshot as a whole is not a consistent cut, which is fine for monitoring
// monotonic counters). A nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{Schema: snapshotSchema}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	scopes := make([]*Scope, 0, len(r.scopes))
	for _, name := range sortedKeys(r.scopes) {
		scopes = append(scopes, r.scopes[name])
	}
	r.mu.Unlock()

	for _, s := range scopes {
		snap.Scopes = append(snap.Scopes, s.snapshot())
	}
	return snap
}

func (s *Scope) snapshot() ScopeSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := ScopeSnapshot{Name: s.name}
	for _, name := range sortedKeys(s.counters) {
		out.Counters = append(out.Counters, CounterValue{Name: name, Value: s.counters[name].Load()})
	}
	for _, name := range sortedKeys(s.gauges) {
		out.Gauges = append(out.Gauges, GaugeValue{Name: name, Value: s.gauges[name].Load()})
	}
	for _, name := range sortedKeys(s.histograms) {
		h := s.histograms[name]
		hv := HistogramValue{Name: name, Count: h.count.Load(), Sum: h.sum.Load()}
		for i := 0; i < histBuckets; i++ {
			if n := h.buckets[i].Load(); n > 0 {
				hv.Buckets = append(hv.Buckets, Bucket{Le: bucketUpper(i), Count: n})
			}
		}
		out.Histograms = append(out.Histograms, hv)
	}
	return out
}

// Scope returns the named scope's snapshot, or nil.
func (s Snapshot) Scope(name string) *ScopeSnapshot {
	for i := range s.Scopes {
		if s.Scopes[i].Name == name {
			return &s.Scopes[i]
		}
	}
	return nil
}

// Counter returns the named counter's value (0 if absent or nil receiver).
func (s *ScopeSnapshot) Counter(name string) uint64 {
	if s == nil {
		return 0
	}
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Gauge returns the named gauge's value (0 if absent or nil receiver).
func (s *ScopeSnapshot) Gauge(name string) int64 {
	if s == nil {
		return 0
	}
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// Histogram returns the named histogram reading, or nil.
func (s *ScopeSnapshot) Histogram(name string) *HistogramValue {
	if s == nil {
		return nil
	}
	for i := range s.Histograms {
		if s.Histograms[i].Name == name {
			return &s.Histograms[i]
		}
	}
	return nil
}

// CounterSum sums every counter in the scope whose name starts with prefix
// (e.g. "events_" for the total event throughput of the core scope).
func (s *ScopeSnapshot) CounterSum(prefix string) uint64 {
	if s == nil {
		return 0
	}
	var total uint64
	for _, c := range s.Counters {
		if len(c.Name) >= len(prefix) && c.Name[:len(prefix)] == prefix {
			total += c.Value
		}
	}
	return total
}

// RunSummary is the run-level observability document aprof writes next to
// every profile: the final metrics snapshot plus the run's wall time.
type RunSummary struct {
	Schema int `json:"schema"`
	// WallMS is the end-to-end wall time of the run in milliseconds.
	WallMS int64 `json:"wall_ms"`
	// Metrics is the final snapshot of the run's registry.
	Metrics Snapshot `json:"metrics"`
}

// NewRunSummary builds the run summary for a finished run.
func NewRunSummary(r *Registry, wallMS int64) RunSummary {
	return RunSummary{Schema: snapshotSchema, WallMS: wallMS, Metrics: r.Snapshot()}
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteJSON writes the run summary as indented JSON.
func (s RunSummary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteFile writes the run summary as indented JSON to path.
func (s RunSummary) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
