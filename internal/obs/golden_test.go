package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// goldenRegistry builds a registry exercising every metric type with fixed
// values, mirroring the scopes the instrumented pipeline populates. The
// snapshot of this registry is fully deterministic, so its JSON form is the
// schema contract the run-summary files are written against.
func goldenRegistry() *Registry {
	reg := NewRegistry()
	core := reg.Scope("core")
	core.Counter("events_call").Add(128)
	core.Counter("events_read").Add(4096)
	core.Counter("events_return").Add(128)
	core.Counter("drops_return_without_call").Add(2)
	core.Gauge("stack_depth_hwm").SetMax(17)
	core.Gauge("tuple_points").Set(342)
	ck := core.Histogram("checkpoint_write_us")
	ck.Observe(0)
	ck.Observe(1)
	ck.Observe(900)
	ck.Observe(1024)

	shadow := reg.Scope("shadow")
	shadow.Counter("leaf_chunks").Add(12)
	shadow.Counter("hint_hits").Add(9000)
	shadow.Counter("hint_lookups").Add(10000)

	profio := reg.Scope("profio")
	profio.Counter("batches").Add(7)
	profio.Histogram("batch_profile_us").Observe(250)
	return reg
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s changed.\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// TestSnapshotGolden pins the snapshot JSON schema byte for byte: scope and
// metric ordering, field names, bucket encoding. A diff here is a schema
// change and must be deliberate (bump snapshotSchema for breaking changes).
// Regenerate with
//
//	go test ./internal/obs -run TestSnapshotGolden -update
func TestSnapshotGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "snapshot.golden", buf.Bytes())
}

// TestRunSummaryGolden pins the run-summary document aprof writes next to
// every -json profile. Regenerate with
//
//	go test ./internal/obs -run TestRunSummaryGolden -update
func TestRunSummaryGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := NewRunSummary(goldenRegistry(), 1234).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "runsummary.golden", buf.Bytes())
}

// TestSnapshotDeterministic double-checks the golden premise: two
// identically-populated registries must marshal to identical bytes even
// though their maps were populated in different orders.
func TestSnapshotDeterministic(t *testing.T) {
	a := goldenRegistry()
	b := NewRegistry()
	// Populate b in reverse scope/metric order.
	b.Scope("profio").Histogram("batch_profile_us").Observe(250)
	b.Scope("profio").Counter("batches").Add(7)
	sh := b.Scope("shadow")
	sh.Counter("hint_lookups").Add(10000)
	sh.Counter("hint_hits").Add(9000)
	sh.Counter("leaf_chunks").Add(12)
	core := b.Scope("core")
	ck := core.Histogram("checkpoint_write_us")
	ck.Observe(1024)
	ck.Observe(900)
	ck.Observe(1)
	ck.Observe(0)
	core.Gauge("tuple_points").Set(342)
	core.Gauge("stack_depth_hwm").SetMax(17)
	core.Counter("drops_return_without_call").Add(2)
	core.Counter("events_return").Add(128)
	core.Counter("events_read").Add(4096)
	core.Counter("events_call").Add(128)

	var ba, bb bytes.Buffer
	if err := a.Snapshot().WriteJSON(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.Snapshot().WriteJSON(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Errorf("snapshot depends on population order.\n--- a ---\n%s--- b ---\n%s", ba.String(), bb.String())
	}
}
