package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// The registry currently served through expvar. expvar.Publish is
// process-global and panics on duplicate names, so the expvar variable is
// registered once and indirects through this pointer; a later ServeDebug
// call (tests start several servers) simply swaps the registry behind it.
var (
	expvarReg  atomic.Pointer[Registry]
	expvarOnce sync.Once
)

func publishExpvar(r *Registry) {
	expvarReg.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("aprof_obs", expvar.Func(func() any {
			return expvarReg.Load().Snapshot()
		}))
	})
}

// DebugServer is the live self-profiling endpoint behind aprof -debug-addr:
// the registry's snapshot at /debug/obs, the process expvar page (including
// aprof_obs) at /debug/vars, and net/http/pprof CPU/heap self-profiling
// under /debug/pprof/.
type DebugServer struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// ServeDebug starts the debug HTTP server on addr (e.g. "localhost:0") and
// returns once it is listening. The caller must Close it; Close joins the
// serve goroutine, so the server cannot leak past the run that started it.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	return ServeDebugMux(addr, reg, nil)
}

// ServeDebugMux is ServeDebug with a hook to mount extra handlers on the
// same mux before it starts serving — aprofd uses it to expose completed
// profiles next to the standard debug endpoints.
func ServeDebugMux(addr string, reg *Registry, register func(mux *http.ServeMux)) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	publishExpvar(reg)
	mux := http.NewServeMux()
	if register != nil {
		register(mux)
	}
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.Snapshot().WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	d := &DebugServer{
		ln:   ln,
		srv:  &http.Server{Handler: mux},
		done: make(chan struct{}),
	}
	go func() {
		defer close(d.done)
		d.srv.Serve(ln) // returns http.ErrServerClosed on Close
	}()
	return d, nil
}

// Addr returns the server's bound address ("127.0.0.1:41234"), useful with
// ":0" listen addresses.
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close shuts the server down, closing the listener and any active
// connections, and joins the serve goroutine.
func (d *DebugServer) Close() error {
	err := d.srv.Close()
	<-d.done
	return err
}
