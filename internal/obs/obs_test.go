package obs

import (
	"math"
	"sync"
	"testing"
)

// TestNilSafety exercises every accessor and mutator through a nil registry:
// the disabled state must be a chain of no-ops, never a panic. This is the
// contract that lets the hot paths instrument unconditionally.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	s := reg.Scope("core")
	if s != nil {
		t.Fatal("nil registry returned a live scope")
	}
	c := s.Counter("x")
	g := s.Gauge("y")
	h := s.Histogram("z")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil scope returned live handles")
	}
	c.Add(3)
	c.Inc()
	g.Set(7)
	g.Add(-2)
	g.SetMax(100)
	h.Observe(42)
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles accumulated state")
	}
	snap := reg.Snapshot()
	if len(snap.Scopes) != 0 || snap.Schema != snapshotSchema {
		t.Fatalf("nil registry snapshot: %+v", snap)
	}
}

func TestCounterGauge(t *testing.T) {
	reg := NewRegistry()
	s := reg.Scope("core")
	c := s.Counter("events")
	c.Add(5)
	c.Inc()
	if got := c.Load(); got != 6 {
		t.Fatalf("counter = %d, want 6", got)
	}
	if s.Counter("events") != c {
		t.Fatal("Counter did not return the same handle on re-lookup")
	}

	g := s.Gauge("depth")
	g.Set(4)
	g.SetMax(2)
	if got := g.Load(); got != 4 {
		t.Fatalf("SetMax lowered the gauge: %d", got)
	}
	g.SetMax(9)
	if got := g.Load(); got != 9 {
		t.Fatalf("SetMax did not raise the gauge: %d", got)
	}
	g.Add(-3)
	if got := g.Load(); got != 6 {
		t.Fatalf("gauge = %d, want 6", got)
	}
}

// TestHistogramBuckets checks the log2 bucketing invariant: a value v lands
// in the bucket whose range [2^(i-1), 2^i) contains it.
func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Scope("s").Histogram("lat")
	values := []uint64{0, 1, 2, 3, 4, 127, 128, 1 << 20, math.MaxUint64}
	var sum uint64
	for _, v := range values {
		h.Observe(v)
		sum += v
	}
	if h.Count() != uint64(len(values)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(values))
	}
	if h.Sum() != sum {
		t.Fatalf("sum = %d, want %d", h.Sum(), sum)
	}
	hv := reg.Snapshot().Scope("s").Histogram("lat")
	if hv == nil {
		t.Fatal("histogram missing from snapshot")
	}
	// Every value must be covered by a bucket whose Le bound is >= v, and
	// bucket counts must add up to the observation count.
	var bucketTotal uint64
	for _, b := range hv.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != uint64(len(values)) {
		t.Fatalf("bucket counts sum to %d, want %d", bucketTotal, len(values))
	}
	for _, v := range values {
		covered := false
		for _, b := range hv.Buckets {
			if v <= b.Le {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("value %d not covered by any bucket", v)
		}
	}
	// 0 and MaxUint64 must land in the extreme buckets.
	if hv.Buckets[0].Le != 0 {
		t.Errorf("first bucket Le = %d, want 0", hv.Buckets[0].Le)
	}
	if last := hv.Buckets[len(hv.Buckets)-1]; last.Le != math.MaxUint64 {
		t.Errorf("last bucket Le = %d, want MaxUint64", last.Le)
	}
}

// TestSnapshotHelpers covers the lookup helpers the progress line and the
// tests themselves rely on.
func TestSnapshotHelpers(t *testing.T) {
	reg := NewRegistry()
	core := reg.Scope("core")
	core.Counter("events_call").Add(3)
	core.Counter("events_read").Add(4)
	core.Counter("other").Add(100)
	core.Gauge("depth").Set(-2)

	snap := reg.Snapshot()
	cs := snap.Scope("core")
	if cs == nil {
		t.Fatal("core scope missing")
	}
	if got := cs.Counter("events_call"); got != 3 {
		t.Errorf("Counter lookup = %d, want 3", got)
	}
	if got := cs.Counter("missing"); got != 0 {
		t.Errorf("missing counter = %d, want 0", got)
	}
	if got := cs.CounterSum("events_"); got != 7 {
		t.Errorf("CounterSum(events_) = %d, want 7", got)
	}
	if got := cs.Gauge("depth"); got != -2 {
		t.Errorf("Gauge lookup = %d, want -2", got)
	}
	if snap.Scope("nope") != nil {
		t.Error("phantom scope found")
	}
	var nilScope *ScopeSnapshot
	if nilScope.Counter("x") != 0 || nilScope.Gauge("x") != 0 || nilScope.Histogram("x") != nil || nilScope.CounterSum("x") != 0 {
		t.Error("nil ScopeSnapshot helpers not zero-valued")
	}
}

// TestConcurrentUpdates hammers one registry from many goroutines; run
// under -race this is the direct data-race audit of the metric kernel.
func TestConcurrentUpdates(t *testing.T) {
	reg := NewRegistry()
	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := reg.Scope("core") // same scope from every goroutine
			c := s.Counter("events")
			g := s.Gauge("hwm")
			h := s.Histogram("lat")
			for i := 0; i < iters; i++ {
				c.Inc()
				g.SetMax(int64(w*iters + i))
				h.Observe(uint64(i))
				if i%500 == 0 {
					reg.Snapshot() // concurrent readers are legal
				}
			}
		}()
	}
	wg.Wait()
	snap := reg.Snapshot()
	cs := snap.Scope("core")
	if got := cs.Counter("events"); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	if got := cs.Gauge("hwm"); got != (workers-1)*iters+iters-1 {
		t.Errorf("hwm = %d, want %d", got, (workers-1)*iters+iters-1)
	}
	if got := cs.Histogram("lat").Count; got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
}

// BenchmarkCounterAdd measures the per-event cost of one enabled counter
// update — the unit the overhead budget of DESIGN.md is accounted in.
func BenchmarkCounterAdd(b *testing.B) {
	reg := NewRegistry()
	c := reg.Scope("core").Counter("events")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkCounterAddDisabled measures the disabled (nil-handle) path: a
// single predictable branch.
func BenchmarkCounterAddDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkHistogramObserve measures one enabled histogram observation.
func BenchmarkHistogramObserve(b *testing.B) {
	reg := NewRegistry()
	h := reg.Scope("core").Histogram("lat")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}
