package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// waitNoLeak polls until the goroutine count falls back to the baseline,
// matching the PR 2 leak-test style: no settling time should be needed when
// shutdown joins properly, but a short grace period keeps the test robust
// against unrelated runtime goroutines winding down.
func waitNoLeak(t *testing.T, before int) {
	t.Helper()
	for i := 0; ; i++ {
		if after := runtime.NumGoroutine(); after <= before {
			return
		} else if i >= 100 {
			t.Fatalf("goroutines leaked: %d before, %d after", before, after)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestProgressNoGoroutineLeak audits every exit path of the progress
// ticker: explicit stop, context cancellation, cancel-then-stop, and
// double-stop. The ticker goroutine must always be joined.
func TestProgressNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	// Explicit stop: emits a final line and joins.
	var mu sync.Mutex
	var buf bytes.Buffer
	lockedWrite := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	stop := StartProgress(context.Background(), lockedWrite, time.Hour, func() string { return "line" })
	stop()
	stop() // idempotent
	mu.Lock()
	got := buf.String()
	mu.Unlock()
	if got != "line\n" {
		t.Errorf("explicit stop output = %q, want one final line", got)
	}

	// Context cancellation: exits without a final line; stop still joins.
	ctx, cancel := context.WithCancel(context.Background())
	var buf2 bytes.Buffer
	stop2 := StartProgress(ctx, &buf2, time.Hour, func() string { return "x" })
	cancel()
	stop2()
	if buf2.Len() != 0 {
		t.Errorf("cancelled ticker wrote %q", buf2.String())
	}

	// Short interval: ticks happen, then stop joins cleanly mid-stream.
	var mu3 sync.Mutex
	var lines int
	stop3 := StartProgress(context.Background(), io.Discard, time.Millisecond, func() string {
		mu3.Lock()
		lines++
		mu3.Unlock()
		return "tick"
	})
	time.Sleep(10 * time.Millisecond)
	stop3()
	mu3.Lock()
	n := lines
	mu3.Unlock()
	if n == 0 {
		t.Error("ticker never fired")
	}

	waitNoLeak(t, before)
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestDebugServerEndpoints starts the -debug-addr server, fetches the obs
// snapshot and the expvar page, and verifies clean shutdown leaves no
// goroutines behind (server loop and per-connection handlers both joined or
// wound down).
func TestDebugServerEndpoints(t *testing.T) {
	before := runtime.NumGoroutine()

	reg := NewRegistry()
	reg.Scope("core").Counter("events_call").Add(42)
	d, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}

	get := func(path string) []byte {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", d.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	// /debug/obs serves the registry snapshot.
	var snap Snapshot
	if err := json.Unmarshal(get("/debug/obs"), &snap); err != nil {
		t.Fatalf("decoding /debug/obs: %v", err)
	}
	if got := snap.Scope("core").Counter("events_call"); got != 42 {
		t.Errorf("/debug/obs events_call = %d, want 42", got)
	}

	// /debug/vars carries the published aprof_obs expvar.
	if vars := string(get("/debug/vars")); !strings.Contains(vars, "aprof_obs") {
		t.Error("/debug/vars does not publish aprof_obs")
	}

	// /debug/pprof/ index responds (the CPU/heap self-profiling surface).
	if idx := string(get("/debug/pprof/")); !strings.Contains(idx, "profile") {
		t.Error("/debug/pprof/ index missing profile links")
	}

	// The keep-alive client connection would hold a server-side goroutine
	// past Close; drop it before auditing.
	http.DefaultClient.CloseIdleConnections()
	if err := d.Close(); err != nil && err != http.ErrServerClosed {
		t.Errorf("Close: %v", err)
	}
	waitNoLeak(t, before)
}

// TestDebugServerImmediateClose covers the degenerate lifecycle: start and
// close with no traffic. The serve goroutine must still be joined.
func TestDebugServerImmediateClose(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		d, err := ServeDebug("127.0.0.1:0", NewRegistry())
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Close(); err != nil && err != http.ErrServerClosed {
			t.Errorf("Close: %v", err)
		}
	}
	waitNoLeak(t, before)
}
