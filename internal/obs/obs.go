// Package obs is the profiler's observability layer: a dependency-free,
// atomics-based metrics subsystem the hot paths of the pipeline report into.
//
// The paper's contribution is measurement with O(1) per-event handling, so
// the measurement infrastructure itself must be observable without changing
// what it measures. Three properties follow:
//
//   - Nil is off. Every metric handle (*Counter, *Gauge, *Histogram) and the
//     Registry/Scope accessors are nil-receiver safe: with a nil Registry the
//     whole instrumentation chain resolves to nil handles whose methods are
//     single-branch no-ops, so uninstrumented runs pay one predictable branch
//     per site and allocate nothing.
//   - Zero allocation on the per-event path. Handles are resolved once at
//     setup (Scope/Counter do lock a mutex — never in steady state); updates
//     are single atomic operations on pre-allocated cells.
//   - Metrics never feed back. Nothing in this package is read by the
//     profiling algorithm; enabling a registry cannot change profile output
//     (the metamorphic differential tests in internal/profio prove byte
//     identity).
//
// All operations are safe for concurrent use: a single Registry may be
// shared by every profiler of a RunConcurrent pool.
package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Load returns the current value (0 on a nil receiver).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 metric.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta. No-op on a nil receiver.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// SetMax raises the gauge to v if v is larger — a concurrent high-water
// mark. No-op on a nil receiver.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the current value (0 on a nil receiver).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed log-scale bucket count: bucket i holds values
// whose binary length is i, i.e. bucket 0 is exactly 0 and bucket i>0 covers
// [2^(i-1), 2^i). 65 buckets cover the full uint64 range with no
// configuration and no allocation on Observe.
const histBuckets = 65

// Histogram aggregates a distribution into fixed powers-of-two buckets.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on a nil receiver).
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// bucketUpper returns the inclusive upper bound of bucket i.
func bucketUpper(i int) uint64 {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// Scope is a named group of metrics within a Registry (one per instrumented
// subsystem: "core", "shadow", "profio", "experiments").
type Scope struct {
	name string

	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a no-op handle) on a nil receiver. Resolve handles at setup time, not on
// the hot path: this takes the scope mutex.
func (s *Scope) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.counters[name]
	if c == nil {
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on a
// nil receiver.
func (s *Scope) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.gauges[name]
	if g == nil {
		g = &Gauge{}
		s.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. Returns
// nil on a nil receiver.
func (s *Scope) Histogram(name string) *Histogram {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.histograms[name]
	if h == nil {
		h = &Histogram{}
		s.histograms[name] = h
	}
	return h
}

// Registry is a process-wide collection of metric scopes. The zero value is
// not usable; call NewRegistry. A nil *Registry is the disabled state: every
// accessor chained off it returns nil handles whose operations are no-ops.
type Registry struct {
	mu     sync.Mutex
	scopes map[string]*Scope
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{scopes: make(map[string]*Scope)}
}

// Scope returns the named scope, creating it on first use. Returns nil on a
// nil receiver, which propagates the disabled state through Scope's own
// accessors.
func (r *Registry) Scope(name string) *Scope {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.scopes[name]
	if s == nil {
		s = &Scope{
			name:       name,
			counters:   make(map[string]*Counter),
			gauges:     make(map[string]*Gauge),
			histograms: make(map[string]*Histogram),
		}
		r.scopes[name] = s
	}
	return s
}

// sortedKeys returns the keys of m in lexical order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
