// Package faultio provides fault-injecting and fault-absorbing io.Reader
// wrappers for testing the trace-ingestion stack: a FaultReader that
// deterministically corrupts a byte stream (bit flips, truncation, short
// reads, injected transient errors, latency), and a RetryReader that
// absorbs transient source errors with bounded retry and backoff — the
// resilience pattern production ingest systems wrap around unreliable
// backends. Both are deterministic given their configuration, so every
// failing fault seed is replayable.
package faultio

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"time"
)

// Config deterministically describes the faults a FaultReader injects.
// The zero value injects nothing.
type Config struct {
	// Seed seeds the fault schedule; equal configs inject identical faults.
	Seed int64
	// BitFlipRate is the per-byte probability of flipping one random bit
	// (0 disables). Flips are decided byte-by-byte from the seeded stream,
	// so the same offsets are hit on every run.
	BitFlipRate float64
	// MaxBitFlips caps the number of flipped bytes (0 = unlimited).
	MaxBitFlips int
	// TruncateAt, when > 0, ends the stream with io.EOF after this many
	// bytes, simulating a torn write.
	TruncateAt int64
	// ErrAt, when > 0, makes the read covering this byte offset return Err
	// once; subsequent reads continue normally (a transient fault). The
	// bytes of the failed read are not lost — they are delivered by the
	// retry.
	ErrAt int64
	// Err is the error returned at ErrAt (default io.ErrUnexpectedEOF).
	Err error
	// ShortReads, when set, delivers at most ShortReadMax bytes (default 1)
	// per Read call, stressing buffering assumptions.
	ShortReads   bool
	ShortReadMax int
	// Latency, when > 0, sleeps this long before every Read — for timeout
	// and cancellation tests, not correctness sweeps.
	Latency time.Duration
}

// FaultReader wraps an io.Reader and injects the configured faults.
type FaultReader struct {
	r        io.Reader
	cfg      Config
	rng      *rand.Rand
	off      int64
	flips    int
	errFired bool
}

// NewFaultReader wraps r with the fault schedule described by cfg.
func NewFaultReader(r io.Reader, cfg Config) *FaultReader {
	if cfg.Err == nil {
		cfg.Err = io.ErrUnexpectedEOF
	}
	if cfg.ShortReadMax <= 0 {
		cfg.ShortReadMax = 1
	}
	return &FaultReader{r: r, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Flips reports how many bytes were bit-flipped so far.
func (f *FaultReader) Flips() int { return f.flips }

func (f *FaultReader) Read(p []byte) (int, error) {
	if f.cfg.Latency > 0 {
		time.Sleep(f.cfg.Latency)
	}
	if f.cfg.TruncateAt > 0 {
		if f.off >= f.cfg.TruncateAt {
			return 0, io.EOF
		}
		if max := f.cfg.TruncateAt - f.off; int64(len(p)) > max {
			p = p[:max]
		}
	}
	if f.cfg.ShortReads && len(p) > f.cfg.ShortReadMax {
		p = p[:f.cfg.ShortReadMax]
	}
	if f.cfg.ErrAt > 0 && !f.errFired && f.off <= f.cfg.ErrAt && f.cfg.ErrAt < f.off+int64(len(p)) {
		f.errFired = true
		return 0, f.cfg.Err
	}
	n, err := f.r.Read(p)
	if f.cfg.BitFlipRate > 0 {
		for i := 0; i < n; i++ {
			if f.cfg.MaxBitFlips > 0 && f.flips >= f.cfg.MaxBitFlips {
				break
			}
			if f.rng.Float64() < f.cfg.BitFlipRate {
				p[i] ^= 1 << uint(f.rng.Intn(8))
				f.flips++
			}
		}
	}
	f.off += int64(n)
	return n, err
}

// RetryOptions tunes a RetryReader. The zero value retries 3 times with no
// backoff and treats every non-EOF error as transient.
type RetryOptions struct {
	// MaxRetries is the number of consecutive failed attempts tolerated per
	// Read before the error is surfaced (default 3).
	MaxRetries int
	// Backoff is the base delay of the capped exponential schedule: attempt
	// k waits Backoff*2^(k-1), capped at MaxBackoff. Zero disables waiting.
	Backoff time.Duration
	// MaxBackoff caps the exponential delay (default 32*Backoff).
	MaxBackoff time.Duration
	// Jitter spreads each delay by ±Jitter (a fraction in [0,1]) of its
	// nominal value, drawn from a stream seeded by Seed — deterministic, so
	// a failing schedule replays exactly. Zero disables jitter.
	Jitter float64
	// Seed seeds the jitter stream; equal seeds produce equal schedules.
	Seed int64
	// Ctx, when non-nil, cancels retrying: a pending backoff wait is
	// interrupted and Read returns ctx.Err() instead of starting another
	// attempt. Without it a RetryReader over a dead source blocks for the
	// whole schedule.
	Ctx context.Context
	// Sleep replaces the backoff wait in tests (nil uses a real,
	// context-interruptible wait).
	Sleep func(time.Duration)
	// Retryable reports whether an error is transient. nil treats every
	// error except io.EOF as transient.
	Retryable func(error) bool
}

// RetryReader wraps an io.Reader whose Read may fail transiently, retrying
// with capped exponential backoff and deterministic jitter. io.EOF is never
// retried.
type RetryReader struct {
	r       io.Reader
	opts    RetryOptions
	rng     *rand.Rand
	retries int // total retries performed, for observability
}

// NewRetryReader wraps r with retry/backoff per opts.
func NewRetryReader(r io.Reader, opts RetryOptions) *RetryReader {
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = 3
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 32 * opts.Backoff
	}
	if opts.Retryable == nil {
		opts.Retryable = func(err error) bool { return !errors.Is(err, io.EOF) }
	}
	return &RetryReader{r: r, opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}
}

// Retries reports how many failed attempts were absorbed so far.
func (r *RetryReader) Retries() int { return r.retries }

// delay returns the jittered, capped exponential delay before retry
// attempt k (1-based).
func (r *RetryReader) delay(attempt int) time.Duration {
	if r.opts.Backoff <= 0 {
		return 0
	}
	d := r.opts.Backoff
	for i := 1; i < attempt && d < r.opts.MaxBackoff; i++ {
		d *= 2
	}
	if d > r.opts.MaxBackoff {
		d = r.opts.MaxBackoff
	}
	if r.opts.Jitter > 0 {
		// Uniform in [-Jitter, +Jitter), from the seeded stream.
		frac := (r.rng.Float64()*2 - 1) * r.opts.Jitter
		d += time.Duration(float64(d) * frac)
		if d < 0 {
			d = 0
		}
	}
	return d
}

// wait sleeps for d, interruptibly when a context is configured.
func (r *RetryReader) wait(d time.Duration) error {
	if r.opts.Sleep != nil {
		r.opts.Sleep(d)
		return nil
	}
	if r.opts.Ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-r.opts.Ctx.Done():
		return r.opts.Ctx.Err()
	}
}

func (r *RetryReader) Read(p []byte) (int, error) {
	var lastErr error
	for attempt := 0; attempt <= r.opts.MaxRetries; attempt++ {
		if attempt > 0 {
			r.retries++
			if d := r.delay(attempt); d > 0 {
				if err := r.wait(d); err != nil {
					return 0, err
				}
			}
		}
		if r.opts.Ctx != nil {
			if err := r.opts.Ctx.Err(); err != nil {
				return 0, err
			}
		}
		n, err := r.r.Read(p)
		if n > 0 || err == nil || errors.Is(err, io.EOF) {
			return n, err
		}
		if !r.opts.Retryable(err) {
			return n, err
		}
		lastErr = err
	}
	return 0, fmt.Errorf("faultio: %d attempts failed: %w", r.opts.MaxRetries+1, lastErr)
}
