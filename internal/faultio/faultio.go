// Package faultio provides fault-injecting and fault-absorbing io.Reader
// wrappers for testing the trace-ingestion stack: a FaultReader that
// deterministically corrupts a byte stream (bit flips, truncation, short
// reads, injected transient errors, latency), and a RetryReader that
// absorbs transient source errors with bounded retry and backoff — the
// resilience pattern production ingest systems wrap around unreliable
// backends. Both are deterministic given their configuration, so every
// failing fault seed is replayable.
package faultio

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"time"
)

// Config deterministically describes the faults a FaultReader injects.
// The zero value injects nothing.
type Config struct {
	// Seed seeds the fault schedule; equal configs inject identical faults.
	Seed int64
	// BitFlipRate is the per-byte probability of flipping one random bit
	// (0 disables). Flips are decided byte-by-byte from the seeded stream,
	// so the same offsets are hit on every run.
	BitFlipRate float64
	// MaxBitFlips caps the number of flipped bytes (0 = unlimited).
	MaxBitFlips int
	// TruncateAt, when > 0, ends the stream with io.EOF after this many
	// bytes, simulating a torn write.
	TruncateAt int64
	// ErrAt, when > 0, makes the read covering this byte offset return Err
	// once; subsequent reads continue normally (a transient fault). The
	// bytes of the failed read are not lost — they are delivered by the
	// retry.
	ErrAt int64
	// Err is the error returned at ErrAt (default io.ErrUnexpectedEOF).
	Err error
	// ShortReads, when set, delivers at most ShortReadMax bytes (default 1)
	// per Read call, stressing buffering assumptions.
	ShortReads   bool
	ShortReadMax int
	// Latency, when > 0, sleeps this long before every Read — for timeout
	// and cancellation tests, not correctness sweeps.
	Latency time.Duration
}

// FaultReader wraps an io.Reader and injects the configured faults.
type FaultReader struct {
	r        io.Reader
	cfg      Config
	rng      *rand.Rand
	off      int64
	flips    int
	errFired bool
}

// NewFaultReader wraps r with the fault schedule described by cfg.
func NewFaultReader(r io.Reader, cfg Config) *FaultReader {
	if cfg.Err == nil {
		cfg.Err = io.ErrUnexpectedEOF
	}
	if cfg.ShortReadMax <= 0 {
		cfg.ShortReadMax = 1
	}
	return &FaultReader{r: r, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Flips reports how many bytes were bit-flipped so far.
func (f *FaultReader) Flips() int { return f.flips }

func (f *FaultReader) Read(p []byte) (int, error) {
	if f.cfg.Latency > 0 {
		time.Sleep(f.cfg.Latency)
	}
	if f.cfg.TruncateAt > 0 {
		if f.off >= f.cfg.TruncateAt {
			return 0, io.EOF
		}
		if max := f.cfg.TruncateAt - f.off; int64(len(p)) > max {
			p = p[:max]
		}
	}
	if f.cfg.ShortReads && len(p) > f.cfg.ShortReadMax {
		p = p[:f.cfg.ShortReadMax]
	}
	if f.cfg.ErrAt > 0 && !f.errFired && f.off <= f.cfg.ErrAt && f.cfg.ErrAt < f.off+int64(len(p)) {
		f.errFired = true
		return 0, f.cfg.Err
	}
	n, err := f.r.Read(p)
	if f.cfg.BitFlipRate > 0 {
		for i := 0; i < n; i++ {
			if f.cfg.MaxBitFlips > 0 && f.flips >= f.cfg.MaxBitFlips {
				break
			}
			if f.rng.Float64() < f.cfg.BitFlipRate {
				p[i] ^= 1 << uint(f.rng.Intn(8))
				f.flips++
			}
		}
	}
	f.off += int64(n)
	return n, err
}

// RetryOptions tunes a RetryReader. The zero value retries 3 times with no
// backoff and treats every non-EOF error as transient.
type RetryOptions struct {
	// MaxRetries is the number of consecutive failed attempts tolerated per
	// Read before the error is surfaced (default 3).
	MaxRetries int
	// Backoff is the base delay between attempts; attempt k waits k*Backoff
	// (linear, bounded — this is a test harness, not a network stack).
	Backoff time.Duration
	// Sleep replaces time.Sleep in tests (nil uses time.Sleep).
	Sleep func(time.Duration)
	// Retryable reports whether an error is transient. nil treats every
	// error except io.EOF as transient.
	Retryable func(error) bool
}

// RetryReader wraps an io.Reader whose Read may fail transiently, retrying
// with bounded linear backoff. io.EOF is never retried.
type RetryReader struct {
	r       io.Reader
	opts    RetryOptions
	retries int // total retries performed, for observability
}

// NewRetryReader wraps r with retry/backoff per opts.
func NewRetryReader(r io.Reader, opts RetryOptions) *RetryReader {
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = 3
	}
	if opts.Sleep == nil {
		opts.Sleep = time.Sleep
	}
	if opts.Retryable == nil {
		opts.Retryable = func(err error) bool { return !errors.Is(err, io.EOF) }
	}
	return &RetryReader{r: r, opts: opts}
}

// Retries reports how many failed attempts were absorbed so far.
func (r *RetryReader) Retries() int { return r.retries }

func (r *RetryReader) Read(p []byte) (int, error) {
	var lastErr error
	for attempt := 0; attempt <= r.opts.MaxRetries; attempt++ {
		if attempt > 0 {
			r.retries++
			if r.opts.Backoff > 0 {
				r.opts.Sleep(time.Duration(attempt) * r.opts.Backoff)
			}
		}
		n, err := r.r.Read(p)
		if n > 0 || err == nil || errors.Is(err, io.EOF) {
			return n, err
		}
		if !r.opts.Retryable(err) {
			return n, err
		}
		lastErr = err
	}
	return 0, fmt.Errorf("faultio: %d attempts failed: %w", r.opts.MaxRetries+1, lastErr)
}
