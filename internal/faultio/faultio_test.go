package faultio

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

func payload(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i * 7)
	}
	return out
}

// TestFaultReaderClean checks the zero config is a transparent wrapper.
func TestFaultReaderClean(t *testing.T) {
	src := payload(10000)
	got, err := io.ReadAll(NewFaultReader(bytes.NewReader(src), Config{}))
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("clean pass-through altered the stream (err %v)", err)
	}
}

// TestFaultReaderDeterministic checks equal configs produce identical
// corrupted streams — the property that makes fault seeds replayable.
func TestFaultReaderDeterministic(t *testing.T) {
	src := payload(10000)
	cfg := Config{Seed: 42, BitFlipRate: 0.01}
	a, _ := io.ReadAll(NewFaultReader(bytes.NewReader(src), cfg))
	b, _ := io.ReadAll(NewFaultReader(bytes.NewReader(src), cfg))
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different corruption")
	}
	if bytes.Equal(a, src) {
		t.Fatal("no corruption injected at 1% flip rate over 10k bytes")
	}
}

// TestFaultReaderMaxBitFlips checks the flip cap.
func TestFaultReaderMaxBitFlips(t *testing.T) {
	src := payload(10000)
	f := NewFaultReader(bytes.NewReader(src), Config{Seed: 7, BitFlipRate: 0.5, MaxBitFlips: 3})
	got, _ := io.ReadAll(f)
	if f.Flips() != 3 {
		t.Errorf("Flips = %d, want 3", f.Flips())
	}
	diff := 0
	for i := range src {
		if got[i] != src[i] {
			diff++
		}
	}
	if diff != 3 {
		t.Errorf("%d bytes differ, want 3", diff)
	}
}

// TestFaultReaderTruncate checks the torn-write simulation.
func TestFaultReaderTruncate(t *testing.T) {
	src := payload(1000)
	got, err := io.ReadAll(NewFaultReader(bytes.NewReader(src), Config{TruncateAt: 137}))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src[:137]) {
		t.Fatalf("got %d bytes, want exactly the 137-byte prefix", len(got))
	}
}

// TestFaultReaderShortReads checks that short reads deliver the full stream
// in tiny pieces without corruption.
func TestFaultReaderShortReads(t *testing.T) {
	src := payload(300)
	f := NewFaultReader(bytes.NewReader(src), Config{ShortReads: true, ShortReadMax: 3})
	buf := make([]byte, 64)
	var got []byte
	for {
		n, err := f.Read(buf)
		if n > 3 {
			t.Fatalf("read returned %d bytes, cap is 3", n)
		}
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, src) {
		t.Fatal("short reads altered the stream")
	}
}

// TestFaultReaderTransientErr checks the one-shot injected error: it fires
// once at the configured offset and the stream is complete afterwards.
func TestFaultReaderTransientErr(t *testing.T) {
	src := payload(500)
	sentinel := errors.New("flaky disk")
	f := NewFaultReader(bytes.NewReader(src), Config{ErrAt: 100, Err: sentinel})
	var got []byte
	buf := make([]byte, 64)
	sawErr := false
	for {
		n, err := f.Read(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			if !errors.Is(err, sentinel) {
				t.Fatal(err)
			}
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("injected error never fired")
	}
	if !bytes.Equal(got, src) {
		t.Fatal("transient error lost bytes")
	}
}

// TestRetryReaderAbsorbsTransient checks a RetryReader over a FaultReader
// with an injected transient error: the consumer sees a clean stream.
func TestRetryReaderAbsorbsTransient(t *testing.T) {
	src := payload(500)
	fr := NewFaultReader(bytes.NewReader(src), Config{ErrAt: 200})
	var slept []time.Duration
	rr := NewRetryReader(fr, RetryOptions{
		MaxRetries: 2,
		Backoff:    time.Millisecond,
		Sleep:      func(d time.Duration) { slept = append(slept, d) },
	})
	got, err := io.ReadAll(rr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("retried stream differs from source")
	}
	if rr.Retries() != 1 {
		t.Errorf("Retries = %d, want 1", rr.Retries())
	}
	if len(slept) != 1 || slept[0] != time.Millisecond {
		t.Errorf("backoff schedule = %v, want [1ms]", slept)
	}
}

// TestRetryReaderGivesUp checks a permanently failing source surfaces the
// error after MaxRetries+1 attempts.
func TestRetryReaderGivesUp(t *testing.T) {
	sentinel := errors.New("dead disk")
	attempts := 0
	rr := NewRetryReader(readerFunc(func([]byte) (int, error) {
		attempts++
		return 0, sentinel
	}), RetryOptions{MaxRetries: 3})
	_, err := rr.Read(make([]byte, 8))
	if !errors.Is(err, sentinel) {
		t.Fatalf("error %v does not wrap the source error", err)
	}
	if attempts != 4 {
		t.Errorf("attempts = %d, want 4", attempts)
	}
}

// TestRetryReaderRespectsRetryable checks non-retryable errors surface
// immediately.
func TestRetryReaderRespectsRetryable(t *testing.T) {
	fatal := errors.New("corrupt")
	attempts := 0
	rr := NewRetryReader(readerFunc(func([]byte) (int, error) {
		attempts++
		return 0, fatal
	}), RetryOptions{Retryable: func(err error) bool { return !errors.Is(err, fatal) }})
	if _, err := rr.Read(make([]byte, 8)); !errors.Is(err, fatal) {
		t.Fatal(err)
	}
	if attempts != 1 {
		t.Errorf("attempts = %d, want 1 (no retries of a fatal error)", attempts)
	}
}

type readerFunc func([]byte) (int, error)

func (f readerFunc) Read(p []byte) (int, error) { return f(p) }
