package faultio

// Network chaos. WrapConn turns any net.Conn into a deterministic
// misbehaving link — fragmented writes, injected latency, slow-loris reads,
// and a mid-stream connection reset — for exercising the aprofd daemon and
// its reconnecting client without a real flaky network. ChaosWriter is the
// plain io.Writer analogue for non-socket plumbing. Both are deterministic
// given their configuration, so every failing chaos seed is replayable.

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjectedReset is the error surfaced by a ChaosConn once its byte
// budget is exhausted — the stand-in for a TCP RST mid-frame.
var ErrInjectedReset = errors.New("faultio: injected connection reset")

// ConnConfig deterministically describes the chaos a wrapped conn injects.
// The zero value injects nothing.
type ConnConfig struct {
	// Seed seeds the chaos schedule; equal configs misbehave identically.
	Seed int64
	// MaxWriteChunk, when > 0, fragments every Write into chunks of
	// seeded-random size in [1, MaxWriteChunk] written separately to the
	// underlying conn — the peer sees maximally inconvenient packet
	// boundaries, never a frame delivered whole.
	MaxWriteChunk int
	// MaxReadChunk, when > 0, delivers at most this many bytes per Read —
	// the receiving half of a slow-loris peer.
	MaxReadChunk int
	// WriteLatency/ReadLatency, when > 0, sleep a seeded-random duration in
	// [0, latency) before each underlying operation.
	WriteLatency time.Duration
	ReadLatency  time.Duration
	// ResetAfterBytes, when > 0, hard-resets the connection once this many
	// total bytes (reads + writes) have crossed it: the current operation
	// returns ErrInjectedReset after any partial transfer, the underlying
	// conn is closed, and every later operation fails the same way. The
	// budget is deliberately oblivious to frame boundaries, so the reset
	// lands mid-frame almost always.
	ResetAfterBytes int64
	// BlackholeWritesAfter, when > 0, turns the link half-open once this
	// many write bytes have been delivered: later Writes report full
	// success while silently discarding everything, and Reads keep flowing
	// from the peer. This is the TCP failure a reset cannot model — the
	// path forward is gone but nothing errors — so the only escape is a
	// deadline (the daemon's idle timeout) firing on the starved side. The
	// cutover lands mid-frame for the same reason the reset does.
	BlackholeWritesAfter int64
}

// ChaosConn wraps a net.Conn with the chaos described by its config. Safe
// for one concurrent reader plus one concurrent writer, like net.Conn
// itself.
type ChaosConn struct {
	net.Conn
	cfg ConnConfig

	mu          sync.Mutex
	rng         *rand.Rand
	budget      int64 // remaining bytes before reset; <0 = unlimited
	reset       bool
	writeBudget int64 // remaining write bytes before blackhole; <0 = never
	blackholed  bool
}

// WrapConn wraps conn with the chaos described by cfg.
func WrapConn(conn net.Conn, cfg ConnConfig) *ChaosConn {
	budget := cfg.ResetAfterBytes
	if budget <= 0 {
		budget = -1
	}
	writeBudget := cfg.BlackholeWritesAfter
	if writeBudget <= 0 {
		writeBudget = -1
	}
	return &ChaosConn{
		Conn:        conn,
		cfg:         cfg,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		budget:      budget,
		writeBudget: writeBudget,
	}
}

// WrapDial lifts WrapConn to a dial function: every connection the
// returned dialer produces is chaos-wrapped, with the seed advanced per
// connection so redials misbehave differently (deterministically) instead
// of replaying the identical failure. This is the injection point for the
// replication layer's Dial hooks — torn checkpoint pushes and
// partitioned store syncs without a real flaky network.
func WrapDial(dial func(addr string) (net.Conn, error), cfg ConnConfig) func(addr string) (net.Conn, error) {
	var mu sync.Mutex
	var dials int64
	return func(addr string) (net.Conn, error) {
		conn, err := dial(addr)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		n := dials
		dials++
		mu.Unlock()
		c := cfg
		c.Seed = cfg.Seed + n*7919 // distinct deterministic schedule per dial
		return WrapConn(conn, c), nil
	}
}

// reserve claims up to want bytes from the reset budget, returning how many
// may be transferred. A zero return with ok=false means the connection is
// (now) reset. The claim is provisional: the caller refunds whatever the
// underlying operation did not actually transfer, so the budget counts
// bytes on the wire, not bytes requested.
func (c *ChaosConn) reserve(want int) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.reset {
		return 0, false
	}
	if c.budget < 0 {
		return want, true
	}
	if c.budget == 0 {
		c.reset = true
		c.Conn.Close()
		return 0, false
	}
	if int64(want) > c.budget {
		want = int(c.budget)
	}
	c.budget -= int64(want)
	return want, true
}

// refund returns the unused part of a reservation to the budget.
func (c *ChaosConn) refund(n int) {
	if n <= 0 {
		return
	}
	c.mu.Lock()
	if c.budget >= 0 {
		c.budget += int64(n)
	}
	c.mu.Unlock()
}

// jitter returns a seeded-random duration in [0, max) and chunk size in
// [1, maxChunk]; both draws come from the shared locked stream.
func (c *ChaosConn) draw(max time.Duration, maxChunk, n int) (time.Duration, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var d time.Duration
	if max > 0 {
		d = time.Duration(c.rng.Int63n(int64(max)))
	}
	if maxChunk > 0 && n > maxChunk {
		n = 1 + c.rng.Intn(maxChunk)
	}
	return d, n
}

func (c *ChaosConn) Read(p []byte) (int, error) {
	d, n := c.draw(c.cfg.ReadLatency, c.cfg.MaxReadChunk, len(p))
	if d > 0 {
		time.Sleep(d)
	}
	n, ok := c.reserve(n)
	if !ok {
		return 0, ErrInjectedReset
	}
	m, err := c.Conn.Read(p[:n])
	c.refund(n - m)
	return m, err
}

func (c *ChaosConn) Write(p []byte) (int, error) {
	written := 0
	for written < len(p) {
		d, n := c.draw(c.cfg.WriteLatency, c.cfg.MaxWriteChunk, len(p)-written)
		if d > 0 {
			time.Sleep(d)
		}
		// Half-open: once the write budget is spent, the remainder of this
		// Write — and every later one — vanishes while claiming success.
		n = c.wireAllowance(n)
		if n == 0 {
			return len(p), nil
		}
		n, ok := c.reserve(n)
		if !ok {
			return written, ErrInjectedReset
		}
		m, err := c.Conn.Write(p[written : written+n])
		c.refund(n - m)
		c.consumeWriteBudget(m)
		written += m
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// wireAllowance clamps a prospective write chunk to the bytes still
// permitted on the wire before the half-open cutover; 0 means the link is
// already black-holing.
func (c *ChaosConn) wireAllowance(want int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.blackholed {
		return 0
	}
	if c.writeBudget >= 0 && int64(want) > c.writeBudget {
		want = int(c.writeBudget)
	}
	return want
}

// consumeWriteBudget charges delivered bytes against the half-open budget
// and flips the link once it is exhausted.
func (c *ChaosConn) consumeWriteBudget(m int) {
	if m <= 0 {
		return
	}
	c.mu.Lock()
	if c.writeBudget >= 0 {
		c.writeBudget -= int64(m)
		if c.writeBudget <= 0 {
			c.blackholed = true
		}
	}
	c.mu.Unlock()
}

// Blackholed reports whether the half-open cutover has fired.
func (c *ChaosConn) Blackholed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.blackholed
}

// CloseWrite half-closes the write side when the underlying conn supports
// it (TCP does), so chaos-wrapped clients can still signal end-of-stream.
// A black-holed link swallows the FIN like any other write: the peer must
// discover the stall by deadline, not be handed a tidy end-of-stream.
func (c *ChaosConn) CloseWrite() error {
	if c.Blackholed() {
		return nil
	}
	if cw, ok := c.Conn.(interface{ CloseWrite() error }); ok {
		return cw.CloseWrite()
	}
	return nil
}

// WasReset reports whether the injected reset has fired.
func (c *ChaosConn) WasReset() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reset
}

// WriterConfig deterministically describes the chaos a ChaosWriter injects.
// The zero value injects nothing.
type WriterConfig struct {
	// Seed seeds the chaos schedule.
	Seed int64
	// MaxChunk, when > 0, fragments every Write into seeded-random chunks
	// in [1, MaxChunk] written separately downstream.
	MaxChunk int
	// Latency, when > 0, sleeps a seeded-random duration in [0, Latency)
	// before each downstream write.
	Latency time.Duration
	// FailAt, when > 0, fails with Err once this many total bytes have been
	// written, after any partial transfer — a torn write.
	FailAt int64
	// Err is the error returned at FailAt (default ErrInjectedReset).
	Err error
}

// ChaosWriter wraps an io.Writer with deterministic write fragmentation,
// latency, and a torn-write failure point. It honors the io.Writer
// contract: a short count is always paired with a non-nil error.
type ChaosWriter struct {
	w       io.Writer
	cfg     WriterConfig
	rng     *rand.Rand
	written int64
	failed  bool
}

// NewChaosWriter wraps w with the chaos described by cfg.
func NewChaosWriter(w io.Writer, cfg WriterConfig) *ChaosWriter {
	if cfg.Err == nil {
		cfg.Err = ErrInjectedReset
	}
	return &ChaosWriter{w: w, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Written reports the total bytes delivered downstream so far.
func (c *ChaosWriter) Written() int64 { return c.written }

func (c *ChaosWriter) Write(p []byte) (int, error) {
	if c.failed {
		return 0, c.cfg.Err
	}
	written := 0
	for written < len(p) {
		n := len(p) - written
		if c.cfg.MaxChunk > 0 && n > c.cfg.MaxChunk {
			n = 1 + c.rng.Intn(c.cfg.MaxChunk)
		}
		if c.cfg.FailAt > 0 {
			remaining := c.cfg.FailAt - c.written
			if remaining <= 0 {
				c.failed = true
				return written, c.cfg.Err
			}
			if int64(n) > remaining {
				n = int(remaining)
			}
		}
		if c.cfg.Latency > 0 {
			time.Sleep(time.Duration(c.rng.Int63n(int64(c.cfg.Latency))))
		}
		m, err := c.w.Write(p[written : written+n])
		written += m
		c.written += int64(m)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}
