package faultio

import (
	"errors"
	"fmt"
	"sync"

	"aprof/internal/repo/backend"
)

// ErrBackendCrashed is what every operation on a crashed CrashBackend
// returns — the in-process stand-in for SIGKILL between the store and its
// storage.
var ErrBackendCrashed = errors.New("faultio: backend crashed")

// CrashMode selects where in the fatal operation the crash lands.
type CrashMode int

const (
	// CrashBefore kills the backend before the operation applies: the
	// caller sees an error and the storage is untouched — a process killed
	// before its write system call.
	CrashBefore CrashMode = iota
	// CrashAfter applies the operation, then kills the backend: the
	// storage changed but the caller never learns it — a process killed
	// between the write and its acknowledgement.
	CrashAfter
	// CrashTorn applies a Save with only a prefix of the data, then kills
	// the backend: a torn write that still became visible. This is
	// *stronger* than what a correct temp-file + rename backend can
	// produce; surviving it proves the store's checksums reject torn
	// objects no matter how they appear. For operations other than Save,
	// CrashTorn behaves like CrashBefore.
	CrashTorn
)

func (m CrashMode) String() string {
	switch m {
	case CrashBefore:
		return "before"
	case CrashAfter:
		return "after"
	case CrashTorn:
		return "torn"
	default:
		return fmt.Sprintf("crashmode(%d)", int(m))
	}
}

// CrashModes lists every mode, for sweep loops.
var CrashModes = []CrashMode{CrashBefore, CrashAfter, CrashTorn}

// CrashBackend wraps a backend.Backend and kills it at the Nth mutating
// operation (Save or Remove). Reads are never faulted — a killed process
// does not corrupt what it only read — and are refused once the backend
// is dead, like everything else. Deterministic: the same KillAt and mode
// over the same operation sequence crashes at the same place, so every
// failing sweep index is replayable.
type CrashBackend struct {
	inner backend.Backend
	mode  CrashMode
	// killAt is 1-based: the killAt'th mutating op crashes. 0 disables.
	killAt int

	mu   sync.Mutex
	ops  int
	dead bool
}

// NewCrashBackend wraps inner so its killAt'th mutating operation (1-based;
// 0 = never) crashes with the given mode.
func NewCrashBackend(inner backend.Backend, killAt int, mode CrashMode) *CrashBackend {
	return &CrashBackend{inner: inner, killAt: killAt, mode: mode}
}

// Ops reports how many mutating operations have been attempted — run a
// scenario once with killAt 0 to learn the sweep range.
func (c *CrashBackend) Ops() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ops
}

// Dead reports whether the crash already happened.
func (c *CrashBackend) Dead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead
}

// Revive clears the dead flag and disables further crashes, modeling the
// process restart that follows the kill. The operation count keeps
// accumulating.
func (c *CrashBackend) Revive() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dead = false
	c.killAt = 0
}

// step decides one mutating operation's fate. It returns (crashNow, torn):
// crashNow means return ErrBackendCrashed; torn additionally means apply a
// truncated Save first.
func (c *CrashBackend) step() (crashNow, applyFirst, torn bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return false, false, false, ErrBackendCrashed
	}
	c.ops++
	if c.killAt > 0 && c.ops == c.killAt {
		c.dead = true
		switch c.mode {
		case CrashAfter:
			return true, true, false, nil
		case CrashTorn:
			return true, false, true, nil
		default:
			return true, false, false, nil
		}
	}
	return false, false, false, nil
}

// Save implements backend.Backend.
func (c *CrashBackend) Save(h backend.Handle, data []byte) error {
	crashNow, applyFirst, torn, err := c.step()
	if err != nil {
		return err
	}
	if !crashNow {
		return c.inner.Save(h, data)
	}
	if torn && len(data) > 0 {
		c.inner.Save(h, data[:len(data)/2])
	} else if applyFirst {
		if err := c.inner.Save(h, data); err != nil {
			return err
		}
	}
	return ErrBackendCrashed
}

// Remove implements backend.Backend.
func (c *CrashBackend) Remove(h backend.Handle) error {
	crashNow, applyFirst, _, err := c.step()
	if err != nil {
		return err
	}
	if !crashNow {
		return c.inner.Remove(h)
	}
	if applyFirst {
		if err := c.inner.Remove(h); err != nil {
			return err
		}
	}
	return ErrBackendCrashed
}

// Load implements backend.Backend; reads fail only once the backend died.
func (c *CrashBackend) Load(h backend.Handle) ([]byte, error) {
	if c.Dead() {
		return nil, ErrBackendCrashed
	}
	return c.inner.Load(h)
}

// List implements backend.Backend; reads fail only once the backend died.
func (c *CrashBackend) List(t backend.Type) ([]string, error) {
	if c.Dead() {
		return nil, ErrBackendCrashed
	}
	return c.inner.List(t)
}
