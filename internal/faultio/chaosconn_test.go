package faultio

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// chunkRecorder records the size of every write that reaches it.
type chunkRecorder struct {
	mu     sync.Mutex
	chunks []int
	buf    bytes.Buffer
}

func (c *chunkRecorder) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.chunks = append(c.chunks, len(p))
	return c.buf.Write(p)
}

// TestChaosConnFragmentsWritesIntact: fragmentation changes packet
// boundaries, never bytes. The peer must reassemble the exact payload.
func TestChaosConnFragmentsWritesIntact(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	cc := WrapConn(a, ConnConfig{Seed: 1, MaxWriteChunk: 7})

	payload := payload(1000)
	var got []byte
	done := make(chan error, 1)
	go func() {
		var err error
		got, err = io.ReadAll(b)
		done <- err
	}()
	if n, err := cc.Write(payload); err != nil || n != len(payload) {
		t.Fatalf("Write = %d, %v", n, err)
	}
	cc.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("fragmented stream differs from payload")
	}
}

// TestChaosConnResetBudget: the reset must fire after exactly
// ResetAfterBytes bytes, surface ErrInjectedReset with the partial count,
// and poison every later operation.
func TestChaosConnResetBudget(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	cc := WrapConn(a, ConnConfig{Seed: 2, ResetAfterBytes: 100})

	go io.Copy(io.Discard, b)
	n, err := cc.Write(payload(300))
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("err = %v, want injected reset", err)
	}
	if n != 100 {
		t.Fatalf("delivered %d bytes before reset, want exactly 100", n)
	}
	if !cc.WasReset() {
		t.Fatal("WasReset = false after reset")
	}
	if _, err := cc.Read(make([]byte, 1)); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("post-reset Read err = %v", err)
	}
	if _, err := cc.Write([]byte{1}); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("post-reset Write err = %v", err)
	}
}

// TestChaosConnReadChunking: MaxReadChunk must cap every delivery — the
// slow-loris receiving pattern.
func TestChaosConnReadChunking(t *testing.T) {
	a, b := net.Pipe()
	cc := WrapConn(a, ConnConfig{Seed: 3, MaxReadChunk: 3})

	go func() {
		b.Write(payload(64))
		b.Close()
	}()
	var got []byte
	buf := make([]byte, 64)
	for {
		n, err := cc.Read(buf)
		if n > 3 {
			t.Errorf("Read delivered %d bytes, cap is 3", n)
		}
		got = append(got, buf[:n]...)
		if err != nil {
			break
		}
	}
	if !bytes.Equal(got, payload(64)) {
		t.Fatal("chunked reads lost bytes")
	}
}

// TestChaosConnHalfOpenSweep: after BlackholeWritesAfter bytes the link
// goes half-open — writes claim success while delivering nothing, reads
// keep flowing, and the half-close FIN is swallowed too. Swept across
// fragmentation seeds so the cutover lands on varying chunk boundaries.
func TestChaosConnHalfOpenSweep(t *testing.T) {
	const cutover = 100
	for seed := int64(0); seed < 8; seed++ {
		a, b := net.Pipe()
		cc := WrapConn(a, ConnConfig{
			Seed:                 seed,
			MaxWriteChunk:        7,
			BlackholeWritesAfter: cutover,
		})

		delivered := make(chan []byte, 1)
		go func() {
			buf := make([]byte, cutover)
			n, _ := io.ReadFull(b, buf)
			delivered <- buf[:n]
		}()

		// The writer must see total success even though only the first
		// cutover bytes ever reach the peer.
		if n, err := cc.Write(payload(300)); err != nil || n != 300 {
			t.Fatalf("seed %d: Write = (%d, %v), want (300, nil)", seed, n, err)
		}
		if !cc.Blackholed() {
			t.Fatalf("seed %d: Blackholed = false after %d bytes", seed, 300)
		}
		if got := <-delivered; !bytes.Equal(got, payload(300)[:cutover]) {
			t.Fatalf("seed %d: peer got %d bytes, want the exact %d-byte prefix", seed, len(got), cutover)
		}
		if n, err := cc.Write([]byte{1, 2, 3}); err != nil || n != 3 {
			t.Fatalf("seed %d: post-cutover Write = (%d, %v), want silent success", seed, n, err)
		}
		if err := cc.CloseWrite(); err != nil {
			t.Fatalf("seed %d: CloseWrite on half-open link: %v", seed, err)
		}

		// Reads still flow: half-open is one-directional by definition.
		go b.Write([]byte("pong"))
		buf := make([]byte, 4)
		if _, err := io.ReadFull(cc, buf); err != nil || string(buf) != "pong" {
			t.Fatalf("seed %d: read after cutover = %q, %v", seed, buf, err)
		}

		cc.Close()
		b.Close()
	}
}

// TestChaosConnHalfOpenStarvesIdlePeer: the end-to-end shape the mode
// exists for — the starved reader never errors, never sees EOF, and only a
// deadline gets it out.
func TestChaosConnHalfOpenStarvesIdlePeer(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	cc := WrapConn(a, ConnConfig{Seed: 5, BlackholeWritesAfter: 10})
	drained := make(chan struct{})
	go func() { // drain the pre-cutover bytes (pipe writes block until read)
		io.ReadFull(b, make([]byte, 10))
		close(drained)
	}()
	if _, err := cc.Write(payload(50)); err != nil {
		t.Fatal(err)
	}
	<-drained
	b.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	n, err := b.Read(make([]byte, 1))
	var nerr net.Error
	if n != 0 || !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("starved peer read = (%d, %v), want a deadline timeout", n, err)
	}
}

// TestChaosWriterDeterministicSchedule: equal seeds fragment identically;
// the torn-write failure point lands at exactly FailAt.
func TestChaosWriterDeterministicSchedule(t *testing.T) {
	schedule := func(seed int64) []int {
		rec := &chunkRecorder{}
		cw := NewChaosWriter(rec, WriterConfig{Seed: seed, MaxChunk: 10})
		if _, err := cw.Write(payload(500)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rec.buf.Bytes(), payload(500)) {
			t.Fatal("fragmented write corrupted payload")
		}
		return rec.chunks
	}
	a1, a2, b1 := schedule(7), schedule(7), schedule(8)
	if len(a1) < 2 {
		t.Fatalf("no fragmentation happened: %v", a1)
	}
	if !equalInts(a1, a2) {
		t.Errorf("same seed, different schedules: %v vs %v", a1, a2)
	}
	if equalInts(a1, b1) {
		t.Errorf("different seeds, same schedule: %v", a1)
	}

	rec := &chunkRecorder{}
	cw := NewChaosWriter(rec, WriterConfig{Seed: 7, MaxChunk: 10, FailAt: 123})
	n, err := cw.Write(payload(500))
	if !errors.Is(err, ErrInjectedReset) || n != 123 {
		t.Fatalf("torn write = (%d, %v), want (123, injected reset)", n, err)
	}
	if _, err := cw.Write([]byte{1}); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("post-failure write err = %v", err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRetryReaderExponentialCap: the schedule must double from Backoff and
// saturate at MaxBackoff.
func TestRetryReaderExponentialCap(t *testing.T) {
	var slept []time.Duration
	rr := NewRetryReader(readerFunc(func([]byte) (int, error) {
		return 0, errors.New("down")
	}), RetryOptions{
		MaxRetries: 6,
		Backoff:    time.Millisecond,
		MaxBackoff: 4 * time.Millisecond,
		Sleep:      func(d time.Duration) { slept = append(slept, d) },
	})
	if _, err := rr.Read(make([]byte, 1)); err == nil {
		t.Fatal("permanently failing source succeeded")
	}
	want := []time.Duration{1, 2, 4, 4, 4, 4}
	for i := range want {
		want[i] *= time.Millisecond
	}
	if len(slept) != len(want) {
		t.Fatalf("schedule %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("schedule %v, want %v", slept, want)
		}
	}
}

// TestRetryReaderJitterDeterminism: equal seeds produce equal jittered
// schedules; jitter stays within ±Jitter of nominal.
func TestRetryReaderJitterDeterminism(t *testing.T) {
	schedule := func(seed int64) []time.Duration {
		var slept []time.Duration
		rr := NewRetryReader(readerFunc(func([]byte) (int, error) {
			return 0, errors.New("down")
		}), RetryOptions{
			MaxRetries: 5,
			Backoff:    time.Millisecond,
			MaxBackoff: 8 * time.Millisecond,
			Jitter:     0.5,
			Seed:       seed,
			Sleep:      func(d time.Duration) { slept = append(slept, d) },
		})
		rr.Read(make([]byte, 1))
		return slept
	}
	a1, a2 := schedule(11), schedule(11)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("same seed, different schedules: %v vs %v", a1, a2)
		}
	}
	nominal := []time.Duration{1, 2, 4, 8, 8}
	for i, d := range a1 {
		lo := time.Duration(float64(nominal[i]) * float64(time.Millisecond) * 0.5)
		hi := time.Duration(float64(nominal[i]) * float64(time.Millisecond) * 1.5)
		if d < lo || d > hi {
			t.Errorf("attempt %d slept %v, outside [%v, %v]", i+1, d, lo, hi)
		}
	}
}

// TestRetryReaderContextCancellation: a cancelled context must interrupt
// the backoff wait promptly instead of serving out a long schedule.
func TestRetryReaderContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	rr := NewRetryReader(readerFunc(func([]byte) (int, error) {
		return 0, errors.New("down")
	}), RetryOptions{
		MaxRetries: 3,
		Backoff:    time.Hour, // would block ~an hour without cancellation
		Ctx:        ctx,
	})
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := rr.Read(make([]byte, 1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}

	// Already-cancelled context: no further source attempts at all.
	attempts := 0
	rr2 := NewRetryReader(readerFunc(func([]byte) (int, error) {
		attempts++
		return 0, errors.New("down")
	}), RetryOptions{Ctx: ctx})
	if _, err := rr2.Read(make([]byte, 1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if attempts != 0 {
		t.Errorf("cancelled reader still attempted %d reads", attempts)
	}
}
