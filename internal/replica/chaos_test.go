package replica_test

// The replicated-cluster chaos suite — the no-shared-disk counterpart of
// the internal/cluster suite. Every node here has strictly PRIVATE state:
// its own checkpoint dir, its own replica store, its own profile
// repository. Durability comes only from the APRR replication ring and
// store anti-entropy. The invariants proved:
//
//   - Kill the serving node at every batch index AND wipe its disk: the
//     session fails over, resumes from the replicated checkpoint, and the
//     final profile is byte-identical to the offline pipeline.
//   - Replication links that fragment and reset mid-frame delay but never
//     corrupt: torn pushes are CRC-rejected, redials recover, output stays
//     byte-identical.
//   - Store sync interrupted by a partition leaves both repositories
//     intact; the re-sync converges and a converged re-re-sync is a no-op.
//   - None of the replication paths — push to a dead peer, recovery
//     against dead peers, handler churn, partitioned sync — leak
//     goroutines or file descriptors.

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aprof/internal/core"
	"aprof/internal/faultio"
	"aprof/internal/obs"
	"aprof/internal/profio"
	"aprof/internal/replica"
	"aprof/internal/repo"
	"aprof/internal/repo/backend"
	"aprof/internal/server"
	"aprof/internal/server/client"
	"aprof/internal/trace"
)

func testTrace(t *testing.T, seed int64, ops int) []byte {
	t.Helper()
	tr := trace.Random(trace.RandomConfig{Seed: seed, Ops: ops, Threads: 3})
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func offlineProfile(t *testing.T, enc []byte) []byte {
	t.Helper()
	ps, err := profio.ProfileStream(context.Background(), bytes.NewReader(enc), core.DefaultConfig(), profio.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := profio.Write(&buf, ps); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func opener(enc []byte) func() (io.ReadCloser, error) {
	return func() (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(enc)), nil
	}
}

// rnode is one fully-private cluster member: no directory is shared with
// any other node.
type rnode struct {
	addr string
	root string
	srv  *server.Server
	node *replica.Node
	rep  *repo.Repository
	obs  *obs.Registry
}

type rcluster struct {
	nodes []*rnode
	addrs []string
}

// startReplicaCluster stands up n replicated aprofd nodes, each over its
// own temp root (checkpoint/, replica/, store/), serving APRD and APRR on
// one port. tweak may adjust either option set before construction.
func startReplicaCluster(t *testing.T, n int, tweak func(i int, so *server.Options, ro *replica.Options)) *rcluster {
	t.Helper()
	c := &rcluster{}
	lns := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		c.addrs = append(c.addrs, ln.Addr().String())
	}
	for i := 0; i < n; i++ {
		root := t.TempDir()
		be, err := backend.OpenLocal(filepath.Join(root, "store"))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := repo.OpenOrInit(be, repo.Options{Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		ro := replica.Options{
			Self:    c.addrs[i],
			Peers:   append([]string(nil), c.addrs...),
			Dir:     filepath.Join(root, "replica"),
			Backend: be,
			Obs:     reg,
			Logf:    t.Logf,
		}
		so := server.Options{
			CheckpointDir:   filepath.Join(root, "checkpoint"),
			Store:           rep,
			Config:          core.DefaultConfig(),
			BatchSize:       16,
			CheckpointEvery: 4,
			Obs:             reg,
			Logf:            t.Logf,
		}
		if err := os.MkdirAll(so.CheckpointDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if tweak != nil {
			tweak(i, &so, &ro)
		}
		node, err := replica.NewNode(ro)
		if err != nil {
			t.Fatal(err)
		}
		so.Replica = node
		srv := server.New(so)
		srv.Serve(lns[i])
		rn := &rnode{addr: c.addrs[i], root: root, srv: srv, node: node, rep: rep, obs: reg}
		c.nodes = append(c.nodes, rn)
		t.Cleanup(func() {
			rn.srv.Abort()
			rn.srv.Wait()
			rn.node.Close()
			rn.rep.Close() // wiped victims error here; that is fine
		})
	}
	return c
}

// kill is the machine-death stand-in: server aborted, replica node closed,
// and — the part the shared-dir suite could never do — the entire disk
// root wiped. Nothing of this node survives.
func (c *rcluster) kill(t *testing.T, i int) {
	t.Helper()
	n := c.nodes[i]
	n.srv.Abort()
	n.srv.Wait()
	n.node.Close()
	if err := os.RemoveAll(n.root); err != nil {
		t.Fatalf("wiping node %d: %v", i, err)
	}
}

// syncAll runs store anti-entropy between every ordered pair of surviving
// nodes (dead indexes listed in skip), pulling over the real APRR port.
func (c *rcluster) syncAll(t *testing.T, skip map[int]bool) {
	t.Helper()
	for i, dst := range c.nodes {
		if skip[i] {
			continue
		}
		for j, src := range c.nodes {
			if i == j || skip[j] {
				continue
			}
			peer := backend.NewPeer(src.addr, backend.PeerOptions{})
			if _, err := dst.rep.Sync(peer); err != nil {
				t.Fatalf("sync node %d <- node %d: %v", i, j, err)
			}
			peer.Close()
		}
	}
}

// sessionBatches counts the batches one clean upload spans under the test
// batch geometry — the sweep range for kill-at-every-batch.
func sessionBatches(t *testing.T, enc []byte) int {
	t.Helper()
	var maxBatch atomic.Int64
	s := server.New(server.Options{
		Config:          core.DefaultConfig(),
		BatchSize:       16,
		CheckpointEvery: 4,
		Logf:            t.Logf,
		OnSessionBatch: func(id string, batch int, delivered uint64) {
			for {
				cur := maxBatch.Load()
				if int64(batch) <= cur || maxBatch.CompareAndSwap(cur, int64(batch)) {
					return
				}
			}
		},
	})
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer func() { s.Abort(); s.Wait() }()
	if _, err := client.Run(context.Background(), client.Options{
		Addr: s.Addr(), SessionID: "count", Open: opener(enc),
	}); err != nil {
		t.Fatal(err)
	}
	if maxBatch.Load() == 0 {
		t.Fatal("clean pass saw no batches")
	}
	return int(maxBatch.Load())
}

// TestReplicaKillAtEveryBatchNoSharedDir is the tentpole proof. Three
// nodes, nothing shared. The node serving the session is hard-killed at
// batch index k and its disk wiped — for every k the session has. The
// client must fail over, resume from the replica set's checkpoint (for
// any kill past the first boundary), and finish byte-identical to the
// offline pipeline. Afterwards store anti-entropy must spread the profile
// to every survivor, whose repositories must pass a full integrity check.
func TestReplicaKillAtEveryBatchNoSharedDir(t *testing.T) {
	enc := testTrace(t, 50, 480)
	want := offlineProfile(t, enc)
	batches := sessionBatches(t, enc)
	const ckptEvery = 4
	t.Logf("session spans %d batches; killing+wiping at every index", batches)
	before := runtime.NumGoroutine()

	for killAt := 1; killAt <= batches; killAt++ {
		killAt := killAt
		t.Run(fmt.Sprintf("killAt=%d", killAt), func(t *testing.T) {
			var killed atomic.Bool
			var victimIdx atomic.Int64
			victimIdx.Store(-1)
			var wipeOnce sync.Once

			var c *rcluster
			c = startReplicaCluster(t, 3, func(i int, so *server.Options, ro *replica.Options) {
				so.OnSessionBatch = func(id string, batch int, delivered uint64) {
					if batch == killAt && killed.CompareAndSwap(false, true) {
						victimIdx.Store(int64(i))
						c.nodes[i].srv.Abort()
					}
				}
			})

			cd, err := client.NewClusterDialer(client.ClusterOptions{
				Nodes:     c.addrs,
				SessionID: "victim",
				DialNode: func(ctx context.Context, addr string) (net.Conn, error) {
					// Before any redial, finish the kill: wait the victim out,
					// then wipe its entire disk root. Whatever the failover
					// node resumes from, it cannot have come from the victim's
					// machine.
					if v := victimIdx.Load(); v >= 0 {
						wipeOnce.Do(func() { c.kill(t, int(v)) })
					}
					var d net.Dialer
					return d.DialContext(ctx, "tcp", addr)
				},
				Logf: t.Logf,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := client.Run(context.Background(), client.Options{
				SessionID:   "victim",
				Open:        opener(enc),
				Dialer:      cd,
				MaxAttempts: 10,
				Backoff:     2 * time.Millisecond,
			})
			if err != nil {
				t.Fatalf("upload across kill+wipe failed: %v (result %+v)", err, res)
			}
			if !killed.Load() {
				t.Fatal("kill hook never fired")
			}
			if res.Reconnects == 0 {
				t.Fatalf("node kill did not force a reconnect: %+v", res)
			}
			// Before the first checkpoint boundary nothing has been acked or
			// replicated, so a fresh start is the correct (and only) outcome;
			// past it, the replica set must produce a resume.
			if killAt >= ckptEvery && res.ResumedFrom == 0 {
				t.Fatalf("failover restarted from scratch instead of resuming from the replica set: %+v", res)
			}

			dead := int(victimIdx.Load())
			skip := map[int]bool{dead: true}
			var got []byte
			for i, n := range c.nodes {
				if skip[i] {
					continue
				}
				if r, ok := n.srv.Result("victim"); ok && r != nil {
					got = r.Profile
				}
			}
			if got == nil {
				t.Fatal("no surviving node holds the session result")
			}
			if !bytes.Equal(got, want) {
				t.Fatal("profile after kill+wipe failover differs from offline pipeline")
			}

			// Anti-entropy: every survivor's private store must converge on
			// the profile and pass a full integrity check.
			c.syncAll(t, skip)
			for i, n := range c.nodes {
				if skip[i] {
					continue
				}
				data, err := n.rep.GetSession("victim")
				if err != nil {
					t.Fatalf("node %d store after sync: %v", i, err)
				}
				if !bytes.Equal(data, want) {
					t.Fatalf("node %d synced store serves different bytes", i)
				}
				if rep := n.rep.Check(); !rep.OK() {
					t.Fatalf("node %d store check failed after sync: %v", i, rep.Errors)
				}
			}
		})
	}
	waitNoLeak(t, before)
}

// TestReplicaTornPushSweep fragments and mid-frame-resets every
// replication link (client links stay clean). Torn pushes must be
// CRC-rejected and retried, never stored, and the session must still
// complete byte-identical — replication chaos can cost time, not truth.
func TestReplicaTornPushSweep(t *testing.T) {
	enc := testTrace(t, 51, 480)
	want := offlineProfile(t, enc)

	for seed := int64(0); seed < 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			c := startReplicaCluster(t, 3, func(i int, so *server.Options, ro *replica.Options) {
				ro.Dial = faultio.WrapDial(func(addr string) (net.Conn, error) {
					return net.DialTimeout("tcp", addr, 2*time.Second)
				}, faultio.ConnConfig{
					Seed:            seed*1000 + int64(i),
					MaxWriteChunk:   128,
					ResetAfterBytes: 48 << 10,
				})
			})

			cd, err := client.NewClusterDialer(client.ClusterOptions{
				Nodes:     c.addrs,
				SessionID: "torn",
				Logf:      t.Logf,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := client.Run(context.Background(), client.Options{
				SessionID:   "torn",
				Open:        opener(enc),
				Dialer:      cd,
				MaxAttempts: 12,
				Backoff:     2 * time.Millisecond,
			})
			if err != nil {
				t.Fatalf("upload with torn replication links failed: %v (result %+v)", err, res)
			}

			var got []byte
			var redials, pushed uint64
			for _, n := range c.nodes {
				if r, ok := n.srv.Result("torn"); ok && r != nil {
					got = r.Profile
				}
				snap := n.obs.Snapshot().Scope(replica.ObsScopeReplica)
				redials += snap.Counter("peer_redials")
				pushed += snap.Counter("checkpoints_pushed")
			}
			if got == nil || !bytes.Equal(got, want) {
				t.Fatal("profile under torn replication links differs from offline pipeline")
			}
			if pushed == 0 {
				t.Fatal("no checkpoint was ever replicated — the chaos path was not exercised")
			}
			if redials == 0 {
				t.Logf("seed %d: no replication conn tore (budget unspent); pushes=%d", seed, pushed)
			}
		})
	}
}

// TestReplicaSyncPartitionRecovery interrupts a store sync mid-pull with
// an injected partition. The partial sync must leave the destination
// repository fully intact (check-clean), the re-sync must converge, and a
// third sync must be a pure no-op — anti-entropy is idempotent.
func TestReplicaSyncPartitionRecovery(t *testing.T) {
	// Source repository with enough sessions that a pull spans several
	// pack transfers.
	beA, err := backend.OpenLocal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	repA, err := repo.OpenOrInit(beA, repo.Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer repA.Close()
	var profiles [][]byte
	for i := 0; i < 6; i++ {
		p := offlineProfile(t, testTrace(t, 60+int64(i), 200+40*i))
		profiles = append(profiles, p)
		if err := repA.SaveProfile(fmt.Sprintf("sess-%d", i), p); err != nil {
			t.Fatal(err)
		}
	}

	// Serve it over APRR.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	node, err := replica.NewNode(replica.Options{
		Self:     ln.Addr().String(),
		Peers:    []string{ln.Addr().String()},
		Replicas: 1,
		Backend:  beA,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conn.Close()
				node.ServeConn(conn, bufio.NewReader(conn))
			}()
		}
	}()
	defer func() { ln.Close(); node.Close(); wg.Wait() }()

	beB, err := backend.OpenLocal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	repB, err := repo.OpenOrInit(beB, repo.Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer repB.Close()

	// Partitioned first pass: the link dies a few KB in, over and over.
	torn := backend.NewPeer(ln.Addr().String(), backend.PeerOptions{
		Dial: faultio.WrapDial(func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 2*time.Second)
		}, faultio.ConnConfig{Seed: 7, MaxWriteChunk: 64, ResetAfterBytes: 4 << 10}),
	})
	if _, err := repB.Sync(torn); err != nil {
		t.Logf("partitioned sync returned error (acceptable): %v", err)
	}
	torn.Close()
	if rep := repB.Check(); !rep.OK() {
		t.Fatalf("destination repo damaged by partitioned sync: %v", rep.Errors)
	}

	// Healed second pass must converge fully.
	peer := backend.NewPeer(ln.Addr().String(), backend.PeerOptions{})
	defer peer.Close()
	stats, err := repB.Sync(peer)
	if err != nil {
		t.Fatalf("healed sync: %v", err)
	}
	t.Logf("healed sync: %s", stats.String())
	for i, want := range profiles {
		got, err := repB.GetSession(fmt.Sprintf("sess-%d", i))
		if err != nil {
			t.Fatalf("sess-%d after sync: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("sess-%d bytes differ after sync", i)
		}
	}
	if rep := repB.Check(); !rep.OK() {
		t.Fatalf("destination repo check after healed sync: %v", rep.Errors)
	}

	// Converged third pass is a no-op: nothing pulled, no root written.
	again, err := repB.Sync(peer)
	if err != nil {
		t.Fatalf("idempotent sync: %v", err)
	}
	if again.PacksPulled != 0 || again.RootWritten {
		t.Fatalf("sync of a converged pair did work: %s", again.String())
	}
}

// TestReplicaLeakAudit drives every replication path that touches the
// network — pushes to dead peers, recovery against dead peers, handler
// churn, partitioned syncs — and requires goroutine and FD counts to
// settle back to baseline.
func TestReplicaLeakAudit(t *testing.T) {
	audit(t, func(t *testing.T) {
		// Push and recover against a cluster whose peers are all dead.
		dead := make([]string, 2)
		for i := range dead {
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			dead[i] = l.Addr().String()
			l.Close()
		}
		n, err := replica.NewNode(replica.Options{
			Self:  dead[0],
			Peers: dead,
			Logf:  t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Replicate("leak", 1, []byte("x")); err == nil {
			t.Fatal("push to dead peers confirmed")
		}
		if _, _, err := n.Recover("leak"); err == nil {
			t.Fatal("recover from dead peers succeeded")
		}
		n.Drop("leak")
		n.Close()
	})

	audit(t, func(t *testing.T) {
		// Handler churn: a served node hit by many short-lived peers, some
		// of which cut the conn mid-request.
		c := startReplicaCluster(t, 2, nil)
		for i := 0; i < 20; i++ {
			conn, err := net.Dial("tcp", c.addrs[0])
			if err != nil {
				t.Fatal(err)
			}
			if i%2 == 0 {
				// Half-written handshake, then gone.
				conn.Write([]byte("APR"))
			}
			conn.Close()
		}
		// A real exchange still works afterwards.
		if err := c.nodes[1].node.Replicate("after-churn", 3, []byte("ok")); err != nil {
			t.Fatalf("push after churn: %v", err)
		}
		for _, n := range c.nodes {
			n.srv.Abort()
			n.srv.Wait()
			n.node.Close()
		}
	})

	audit(t, func(t *testing.T) {
		// Partitioned sync against a dead address: dial fails, nothing
		// sticks around.
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := l.Addr().String()
		l.Close()
		be, err := backend.OpenLocal(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		r, err := repo.OpenOrInit(be, repo.Options{})
		if err != nil {
			t.Fatal(err)
		}
		peer := backend.NewPeer(addr, backend.PeerOptions{DialTimeout: 100 * time.Millisecond})
		if _, err := r.Sync(peer); err == nil {
			t.Fatal("sync against a dead peer succeeded")
		}
		peer.Close()
		r.Close()
	})
}

// waitNoLeak polls until the goroutine count returns to its baseline.
func waitNoLeak(t *testing.T, before int) {
	t.Helper()
	for i := 0; ; i++ {
		if after := runtime.NumGoroutine(); after <= before {
			return
		} else if i >= 250 {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// fdCount counts this process's open file descriptors via /proc.
func fdCount(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("no /proc/self/fd on this platform: %v", err)
	}
	return len(ents)
}

// audit runs fn between baseline captures and polls both counts back down.
func audit(t *testing.T, fn func(t *testing.T)) {
	t.Helper()
	goroutines := runtime.NumGoroutine()
	fds := fdCount(t)

	fn(t)

	deadline := time.Now().Add(2 * time.Second)
	for {
		g, f := runtime.NumGoroutine(), fdCount(t)
		if g <= goroutines && f <= fds {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("leak: goroutines %d -> %d, fds %d -> %d", goroutines, g, fds, f)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
