// Package replica removes the aprofd cluster's shared-disk assumption:
// instead of every node reading every session's APCK checkpoint from one
// shared directory (and the profile store living on one node's disk),
// checkpoints are pushed peer-to-peer to ring successors over the APRR
// wire protocol, failover nodes recover them from any replica, and the
// content-addressed store syncs between peers by pulling only missing
// blobs. Any R−1 node losses — SIGKILL plus a full data-directory wipe —
// are survivable with zero shared infrastructure.
//
// A Node plays both sides of the protocol: it serves APRR connections
// (multiplexed onto the node's existing ingest listener by a 4-byte magic
// peek) and it pushes this node's session checkpoints to their replica
// set. The replica set of a session is deterministic: the first Replicas
// members of the consistent-hash ring sequence for the session id — the
// same order every node computes, and the same order client failover
// walks, so the node a client fails over to is exactly a node that holds
// (or can cheaply reach) the checkpoint.
package replica

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"aprof/internal/cluster"
	"aprof/internal/obs"
	"aprof/internal/replica/wire"
	"aprof/internal/repo/backend"
	"aprof/internal/server"
)

// ObsScopeReplica is the metric scope of the replication layer.
const ObsScopeReplica = "replica"

// Defaults for Options fields left zero.
const (
	DefaultReplicas    = 2
	DefaultDialTimeout = 2 * time.Second
	DefaultIOTimeout   = 10 * time.Second
)

// ErrNoReplica is returned by Recover when no peer (and not this node)
// holds a checkpoint for the session. It aliases the server package's
// sentinel so the daemon can tell "nothing replicated" (normal for a
// fresh session) from a transport failure through the ReplicaService
// interface.
var ErrNoReplica = server.ErrNoReplicaCheckpoint

// Options configures a Node.
type Options struct {
	// Self is this node's own ring address. It is skipped when choosing
	// push targets (this node's copy is the checkpoint file itself) but
	// still counts as one of the session's Replicas copies.
	Self string
	// Peers is the full cluster membership — every node's ingest address,
	// including Self. All members must agree on this list: the replica set
	// of a session is a pure function of it.
	Peers []string
	// Replicas is the total number of checkpoint copies per session,
	// including the primary's own file (default DefaultReplicas = 2).
	Replicas int
	// MinConfirms is how many peer confirmations a Replicate call needs
	// before it succeeds — and therefore before the server acks the batch.
	// Default Replicas−1: with R=2, one confirmed peer copy plus the local
	// file survive any single node loss.
	MinConfirms int
	// VirtualNodes tunes the ring (default cluster.DefaultVirtualNodes).
	VirtualNodes int
	// Dir, when set, persists received checkpoint replicas to disk so they
	// survive a restart of this node (atomically; a torn write is detected
	// and discarded on reload). Empty keeps replicas in memory only.
	Dir string
	// Backend, when set, is served read-only to peers over APRR (load and
	// list of packs, snapshots, index caches) for store anti-entropy sync.
	// Nil rejects backend requests.
	Backend backend.Backend
	// DialTimeout / IOTimeout bound each peer dial and each request
	// round-trip, so a partitioned peer costs a bounded wait, not a hang.
	DialTimeout time.Duration
	IOTimeout   time.Duration
	// Dial overrides the peer dial function (tests inject chaos links).
	Dial func(addr string) (net.Conn, error)
	// Obs receives replication metrics under scope "replica" (nil disables).
	Obs *obs.Registry
	// Logf logs replication events (nil discards).
	Logf func(format string, args ...any)
}

type replicaMetrics struct {
	pushes        *obs.Counter
	pushFailed    *obs.Counter
	pushStale     *obs.Counter
	received      *obs.Counter
	staleRejected *obs.Counter
	recovered     *obs.Counter
	recoverMissed *obs.Counter
	drops         *obs.Counter
	servedLoads   *obs.Counter
	servedLists   *obs.Counter
	redials       *obs.Counter
}

func newReplicaMetrics(reg *obs.Registry) replicaMetrics {
	s := reg.Scope(ObsScopeReplica)
	return replicaMetrics{
		pushes:        s.Counter("checkpoints_pushed"),
		pushFailed:    s.Counter("pushes_failed"),
		pushStale:     s.Counter("pushes_stale"),
		received:      s.Counter("checkpoints_received"),
		staleRejected: s.Counter("stale_puts_rejected"),
		recovered:     s.Counter("checkpoints_recovered"),
		recoverMissed: s.Counter("recoveries_empty"),
		drops:         s.Counter("checkpoints_dropped"),
		servedLoads:   s.Counter("backend_loads_served"),
		servedLists:   s.Counter("backend_lists_served"),
		redials:       s.Counter("peer_redials"),
	}
}

// Node is one cluster member's replication endpoint: the APRR server for
// its peers and the replicator for its own sessions.
type Node struct {
	opts  Options
	ring  *cluster.Ring
	m     replicaMetrics
	store *ckptStore

	mu     sync.Mutex
	conns  map[string]*peerConn
	closed bool
}

// peerConn is one cached connection to a peer; requests on it are
// serialized (APRR exchanges are strictly in order).
type peerConn struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
}

// NewNode validates the membership and returns a ready Node. It fails
// fast on the misconfigurations that would otherwise surface as silent
// non-replication: an empty peer list, a Self not in it, or a replica
// count the membership cannot satisfy.
func NewNode(o Options) (*Node, error) {
	if o.Replicas <= 0 {
		o.Replicas = DefaultReplicas
	}
	if o.MinConfirms <= 0 {
		o.MinConfirms = o.Replicas - 1
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = DefaultDialTimeout
	}
	if o.IOTimeout <= 0 {
		o.IOTimeout = DefaultIOTimeout
	}
	if o.Dial == nil {
		timeout := o.DialTimeout
		o.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	if o.Self == "" {
		return nil, errors.New("replica: Options.Self (this node's ring address) is required")
	}
	ring, err := cluster.NewRing(o.Peers, o.VirtualNodes)
	if err != nil {
		return nil, fmt.Errorf("replica: membership: %w", err)
	}
	selfKnown := false
	for _, p := range o.Peers {
		if p == o.Self {
			selfKnown = true
			break
		}
	}
	if !selfKnown {
		return nil, fmt.Errorf("replica: self %q is not in the peer list %v", o.Self, o.Peers)
	}
	if o.Replicas > len(o.Peers) {
		return nil, fmt.Errorf("replica: %d replicas need at least %d members, have %d",
			o.Replicas, o.Replicas, len(o.Peers))
	}
	if o.MinConfirms > o.Replicas-1 {
		return nil, fmt.Errorf("replica: MinConfirms %d exceeds the %d non-primary replicas",
			o.MinConfirms, o.Replicas-1)
	}
	store, err := openCkptStore(o.Dir)
	if err != nil {
		return nil, err
	}
	return &Node{
		opts:  o,
		ring:  ring,
		m:     newReplicaMetrics(o.Obs),
		store: store,
		conns: make(map[string]*peerConn),
	}, nil
}

func (n *Node) logf(format string, args ...any) {
	if n.opts.Logf != nil {
		n.opts.Logf(format, args...)
	}
}

// ReplicaSet returns the deterministic replica set of a session id: the
// first Replicas ring members in failover order.
func (n *Node) ReplicaSet(session string) []string {
	seq := n.ring.Sequence(session)
	if len(seq) > n.opts.Replicas {
		seq = seq[:n.opts.Replicas]
	}
	return seq
}

// Replicate pushes a checkpoint (seq = its delivered-event count) to the
// session's replica set, walking the ring past it if a member is down,
// until MinConfirms peers have confirmed. It returns an error — and the
// caller must not ack the batch — when fewer confirmations are reachable:
// an ack must never promise durability the cluster doesn't have.
func (n *Node) Replicate(session string, seq uint64, data []byte) error {
	confirms := 0
	var lastErr error
	for _, peer := range n.ring.Sequence(session) {
		if peer == n.opts.Self {
			continue
		}
		resp, err := n.roundTrip(peer, wire.Request{
			Kind: wire.KindPut, Seq: seq, Session: session, Data: data,
		})
		switch {
		case err != nil:
			lastErr = fmt.Errorf("peer %s: %w", peer, err)
			n.logf("replica: push %s seq %d to %s: %v", session, seq, peer, err)
			continue
		case resp.Status == wire.StatusOK:
			confirms++
		case resp.Status == wire.StatusStale:
			// The peer holds a newer copy — a resumed-elsewhere session's
			// leftover push. Counts as confirmed: the cluster durably holds
			// at least seq.
			n.m.pushStale.Inc()
			confirms++
		default:
			lastErr = fmt.Errorf("peer %s: %s", peer, respErr(resp))
			n.logf("replica: push %s seq %d to %s: %s", session, seq, peer, respErr(resp))
			continue
		}
		if confirms >= n.opts.MinConfirms {
			n.m.pushes.Inc()
			return nil
		}
	}
	n.m.pushFailed.Inc()
	if lastErr == nil {
		lastErr = errors.New("no eligible peers")
	}
	return fmt.Errorf("replica: checkpoint %s seq %d: %d/%d confirms: %w",
		session, seq, confirms, n.opts.MinConfirms, lastErr)
}

// Recover fetches the freshest checkpoint replica for a session: this
// node's own replica store plus every peer, highest sequence wins. Peers
// that are down are skipped — that is the point. ErrNoReplica means no
// reachable member holds one (a genuinely fresh session looks the same).
func (n *Node) Recover(session string) (uint64, []byte, error) {
	bestSeq, bestData := uint64(0), []byte(nil)
	if seq, data, ok := n.store.get(session); ok {
		bestSeq, bestData = seq, data
	}
	for _, peer := range n.opts.Peers {
		if peer == n.opts.Self {
			continue
		}
		resp, err := n.roundTrip(peer, wire.Request{Kind: wire.KindGet, Session: session})
		if err != nil {
			n.logf("replica: recover %s from %s: %v", session, peer, err)
			continue
		}
		if resp.Status == wire.StatusOK && (bestData == nil || resp.Seq > bestSeq) {
			bestSeq, bestData = resp.Seq, resp.Data
		}
	}
	if bestData == nil {
		n.m.recoverMissed.Inc()
		return 0, nil, ErrNoReplica
	}
	n.m.recovered.Inc()
	return bestSeq, bestData, nil
}

// Drop removes a completed session's replicas, locally and on every peer,
// best-effort: a leftover replica is rejected at resume time by its stale
// sequence, so a missed drop costs bytes, not correctness.
func (n *Node) Drop(session string) {
	n.m.drops.Inc()
	n.store.drop(session)
	for _, peer := range n.opts.Peers {
		if peer == n.opts.Self {
			continue
		}
		if _, err := n.roundTrip(peer, wire.Request{Kind: wire.KindDrop, Session: session}); err != nil {
			n.logf("replica: drop %s on %s: %v", session, peer, err)
		}
	}
}

// Close tears down all cached peer connections. The Node stops pushing;
// in-flight round-trips fail.
func (n *Node) Close() error {
	n.mu.Lock()
	n.closed = true
	conns := n.conns
	n.conns = make(map[string]*peerConn)
	n.mu.Unlock()
	for _, pc := range conns {
		if pc.conn != nil {
			pc.conn.Close()
		}
	}
	return nil
}

// roundTrip performs one request/response exchange with a peer over its
// cached connection, redialing once when the cached connection has gone
// bad (a peer restart, an idle-timeout cut, a chaos reset).
func (n *Node) roundTrip(peer string, req Request) (wire.Response, error) {
	pc, err := n.peer(peer)
	if err != nil {
		return wire.Response{}, err
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	for attempt := 0; ; attempt++ {
		if pc.conn == nil {
			conn, err := n.opts.Dial(peer)
			if err != nil {
				return wire.Response{}, err
			}
			if err := n.prologue(conn); err != nil {
				conn.Close()
				return wire.Response{}, err
			}
			pc.conn, pc.br = conn, bufio.NewReader(conn)
			if attempt > 0 {
				n.m.redials.Inc()
			}
		}
		resp, err := n.exchange(pc, req)
		if err == nil {
			return resp, nil
		}
		pc.conn.Close()
		pc.conn, pc.br = nil, nil
		if attempt > 0 {
			return wire.Response{}, err
		}
	}
}

type Request = wire.Request

func (n *Node) prologue(conn net.Conn) error {
	conn.SetWriteDeadline(time.Now().Add(n.opts.IOTimeout))
	defer conn.SetWriteDeadline(time.Time{})
	_, err := conn.Write(wire.AppendHandshake(nil))
	return err
}

func (n *Node) exchange(pc *peerConn, req wire.Request) (wire.Response, error) {
	deadline := time.Now().Add(n.opts.IOTimeout)
	pc.conn.SetDeadline(deadline)
	defer pc.conn.SetDeadline(time.Time{})
	if _, err := pc.conn.Write(wire.AppendRequest(nil, req)); err != nil {
		return wire.Response{}, err
	}
	return wire.ReadResponse(pc.br)
}

func (n *Node) peer(addr string) (*peerConn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, errors.New("replica: node closed")
	}
	pc, ok := n.conns[addr]
	if !ok {
		pc = &peerConn{}
		n.conns[addr] = pc
	}
	return pc, nil
}

func respErr(resp wire.Response) string {
	if resp.Status == wire.StatusErr {
		return resp.Msg
	}
	return fmt.Sprintf("unexpected status %q", resp.Status)
}
