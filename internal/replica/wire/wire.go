// Package wire defines APRR, the aprofd replication wire protocol: the
// peer-to-peer byte format used to push session checkpoints to ring
// successors, recover them after a node loss, and serve read-only
// backend objects (packs, snapshots, index caches) for store-to-store
// anti-entropy sync.
//
// APRR is multiplexed onto the same TCP listener as the APRD ingest
// protocol: the first four bytes of a connection select the protocol, so
// a cluster needs exactly one port per node and the ring addresses double
// as replication addresses.
//
// A connection speaks:
//
//	handshake:  magic "APRR", version byte, flags byte (reserved, 0)
//	then any number of request/response exchanges, strictly in order:
//
//	request:    kind byte, then kind-specific fields
//	  'P' put checkpoint:   uvarint seq, str session, blob data
//	  'G' get checkpoint:   str session
//	  'D' drop checkpoint:  uvarint seq, str session
//	  'L' load object:      str type, str name
//	  'I' list objects:     str type
//
//	response:   status byte, then status-specific fields
//	  'K' ok:        uvarint seq, uvarint count, count× str name, blob data
//	  'S' stale:     uvarint seq   — the peer already holds a newer copy
//	  'N' not found
//	  'E' error:     str message
//
// where `str` is a uvarint length followed by that many bytes, and `blob`
// is a uvarint length, the bytes, and their IEEE CRC-32 (little-endian).
// Every payload is CRC-guarded end to end: a torn or bit-flipped
// replication write is detected at the receiver and rejected, never
// silently stored. Requests carry explicit sequence numbers (the
// checkpoint's delivered-event count) so a delayed or replayed push from
// a stale primary can never overwrite a newer replica.
//
// The package is a leaf: it imports only the standard library, so both
// the server (which peeks the magic to demultiplex) and the repository
// backend (backend.Peer) can depend on it without cycles.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	// Magic starts every APRR connection. Same length as the APRD ingest
	// magic, so a server can decide the protocol from a 4-byte peek.
	Magic   = "APRR"
	Version = 1
)

// Request kinds.
const (
	KindPut  byte = 'P' // push a checkpoint replica
	KindGet  byte = 'G' // fetch a checkpoint replica
	KindDrop byte = 'D' // drop a completed session's replica
	KindLoad byte = 'L' // load one backend object (read-only)
	KindList byte = 'I' // list backend objects of one type (read-only)
)

// Response statuses.
const (
	StatusOK       byte = 'K'
	StatusStale    byte = 'S' // put rejected: peer holds seq >= ours
	StatusNotFound byte = 'N'
	StatusErr      byte = 'E'
)

// Wire limits: a corrupt length can never balloon a read. MaxBlob bounds
// checkpoint and pack payloads (packs are flushed well below this).
const (
	maxStrLen = 256
	MaxBlob   = 1 << 30
)

// Request is one decoded APRR request.
type Request struct {
	Kind    byte
	Seq     uint64 // Put/Drop: checkpoint delivered-event count
	Session string // Put/Get/Drop
	Type    string // Load/List: backend handle type
	Name    string // Load: backend handle name
	Data    []byte // Put: checkpoint bytes
}

// Response is one decoded APRR response.
type Response struct {
	Status byte
	Seq    uint64   // OK (get): replica seq; Stale: the peer's newer seq
	Names  []string // OK (list)
	Data   []byte   // OK (get/load)
	Msg    string   // Err
}

// AppendHandshake encodes the connection prologue.
func AppendHandshake(dst []byte) []byte {
	dst = append(dst, Magic...)
	return append(dst, Version, 0)
}

// ReadHandshake consumes and validates the prologue. The caller has
// typically already peeked (not consumed) the magic to demultiplex.
func ReadHandshake(br *bufio.Reader) error {
	head := make([]byte, len(Magic)+2)
	if _, err := io.ReadFull(br, head); err != nil {
		return fmt.Errorf("replica: reading handshake: %w", err)
	}
	if string(head[:len(Magic)]) != Magic {
		return fmt.Errorf("replica: bad handshake magic %q", head[:len(Magic)])
	}
	if head[len(Magic)] != Version {
		return fmt.Errorf("replica: unsupported protocol version %d (want %d)", head[len(Magic)], Version)
	}
	return nil
}

// AppendRequest encodes req.
func AppendRequest(dst []byte, req Request) []byte {
	dst = append(dst, req.Kind)
	switch req.Kind {
	case KindPut:
		dst = binary.AppendUvarint(dst, req.Seq)
		dst = appendStr(dst, req.Session)
		dst = appendBlob(dst, req.Data)
	case KindGet:
		dst = appendStr(dst, req.Session)
	case KindDrop:
		dst = binary.AppendUvarint(dst, req.Seq)
		dst = appendStr(dst, req.Session)
	case KindLoad:
		dst = appendStr(dst, req.Type)
		dst = appendStr(dst, req.Name)
	case KindList:
		dst = appendStr(dst, req.Type)
	}
	return dst
}

// ReadRequest decodes the next request from br. io.EOF before the kind
// byte means the peer hung up cleanly between requests.
func ReadRequest(br *bufio.Reader) (Request, error) {
	var none Request
	kind, err := br.ReadByte()
	if err != nil {
		return none, err // io.EOF passes through: clean close
	}
	req := Request{Kind: kind}
	switch kind {
	case KindPut:
		if req.Seq, err = binary.ReadUvarint(br); err != nil {
			return none, fmt.Errorf("replica: reading put seq: %w", err)
		}
		if req.Session, err = readStr(br); err != nil {
			return none, err
		}
		if req.Data, err = readBlob(br); err != nil {
			return none, err
		}
	case KindGet:
		if req.Session, err = readStr(br); err != nil {
			return none, err
		}
	case KindDrop:
		if req.Seq, err = binary.ReadUvarint(br); err != nil {
			return none, fmt.Errorf("replica: reading drop seq: %w", err)
		}
		if req.Session, err = readStr(br); err != nil {
			return none, err
		}
	case KindLoad:
		if req.Type, err = readStr(br); err != nil {
			return none, err
		}
		if req.Name, err = readStr(br); err != nil {
			return none, err
		}
	case KindList:
		if req.Type, err = readStr(br); err != nil {
			return none, err
		}
	default:
		return none, fmt.Errorf("replica: unknown request kind %q", kind)
	}
	return req, nil
}

// AppendResponse encodes resp.
func AppendResponse(dst []byte, resp Response) []byte {
	dst = append(dst, resp.Status)
	switch resp.Status {
	case StatusOK:
		dst = binary.AppendUvarint(dst, resp.Seq)
		dst = binary.AppendUvarint(dst, uint64(len(resp.Names)))
		for _, n := range resp.Names {
			dst = appendStr(dst, n)
		}
		dst = appendBlob(dst, resp.Data)
	case StatusStale:
		dst = binary.AppendUvarint(dst, resp.Seq)
	case StatusNotFound:
	case StatusErr:
		dst = appendStr(dst, resp.Msg)
	}
	return dst
}

// ReadResponse decodes the next response from br.
func ReadResponse(br *bufio.Reader) (Response, error) {
	var none Response
	status, err := br.ReadByte()
	if err != nil {
		return none, fmt.Errorf("replica: reading response status: %w", err)
	}
	resp := Response{Status: status}
	switch status {
	case StatusOK:
		if resp.Seq, err = binary.ReadUvarint(br); err != nil {
			return none, fmt.Errorf("replica: reading response seq: %w", err)
		}
		count, err := binary.ReadUvarint(br)
		if err != nil {
			return none, fmt.Errorf("replica: reading name count: %w", err)
		}
		if count > MaxBlob/2 {
			return none, fmt.Errorf("replica: name count %d out of range", count)
		}
		for i := uint64(0); i < count; i++ {
			n, err := readStr(br)
			if err != nil {
				return none, err
			}
			resp.Names = append(resp.Names, n)
		}
		if resp.Data, err = readBlob(br); err != nil {
			return none, err
		}
	case StatusStale:
		if resp.Seq, err = binary.ReadUvarint(br); err != nil {
			return none, fmt.Errorf("replica: reading stale seq: %w", err)
		}
	case StatusNotFound:
	case StatusErr:
		if resp.Msg, err = readStr(br); err != nil {
			return none, err
		}
	default:
		return none, fmt.Errorf("replica: unknown response status %q", status)
	}
	return resp, nil
}

func appendStr(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func readStr(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", fmt.Errorf("replica: reading string length: %w", err)
	}
	if n > maxStrLen {
		return "", fmt.Errorf("replica: string length %d exceeds limit %d", n, maxStrLen)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(br, b); err != nil {
		return "", fmt.Errorf("replica: reading string: %w", err)
	}
	return string(b), nil
}

// appendBlob writes a CRC-guarded payload: uvarint length, bytes, CRC-32.
func appendBlob(dst []byte, data []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(data)))
	dst = append(dst, data...)
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(data))
}

func readBlob(br *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("replica: reading blob length: %w", err)
	}
	if n > MaxBlob {
		return nil, fmt.Errorf("replica: blob length %d exceeds limit %d", n, MaxBlob)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(br, data); err != nil {
		return nil, fmt.Errorf("replica: reading blob: %w", err)
	}
	var crc [4]byte
	if _, err := io.ReadFull(br, crc[:]); err != nil {
		return nil, fmt.Errorf("replica: reading blob crc: %w", err)
	}
	if got, want := crc32.ChecksumIEEE(data), binary.LittleEndian.Uint32(crc[:]); got != want {
		return nil, fmt.Errorf("replica: blob crc mismatch: got %08x want %08x", got, want)
	}
	return data, nil
}
