package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"
)

func reader(data []byte) *bufio.Reader {
	return bufio.NewReader(bytes.NewReader(data))
}

func TestHandshakeRoundTrip(t *testing.T) {
	data := AppendHandshake(nil)
	if err := ReadHandshake(reader(data)); err != nil {
		t.Fatalf("ReadHandshake: %v", err)
	}
}

func TestHandshakeRejectsBadMagicAndVersion(t *testing.T) {
	if err := ReadHandshake(reader([]byte("APRD\x01\x00"))); err == nil {
		t.Fatal("wrong magic accepted")
	}
	if err := ReadHandshake(reader([]byte(Magic + "\x02\x00"))); err == nil {
		t.Fatal("future version accepted")
	}
	if err := ReadHandshake(reader([]byte("APR"))); err == nil {
		t.Fatal("truncated handshake accepted")
	}
}

func TestRequestRoundTrip(t *testing.T) {
	cases := []Request{
		{Kind: KindPut, Seq: 12345, Session: "build-42", Data: []byte("checkpoint bytes")},
		{Kind: KindPut, Seq: 0, Session: "s", Data: nil},
		{Kind: KindGet, Session: "build-42"},
		{Kind: KindDrop, Seq: 99, Session: "done"},
		{Kind: KindLoad, Type: "packs", Name: "deadbeef"},
		{Kind: KindList, Type: "snapshots"},
	}
	for _, want := range cases {
		data := AppendRequest(nil, want)
		got, err := ReadRequest(reader(data))
		if err != nil {
			t.Fatalf("kind %q: ReadRequest: %v", want.Kind, err)
		}
		if got.Kind != want.Kind || got.Seq != want.Seq || got.Session != want.Session ||
			got.Type != want.Type || got.Name != want.Name || !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("kind %q: round trip mismatch: got %+v want %+v", want.Kind, got, want)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []Response{
		{Status: StatusOK, Seq: 7, Names: []string{"a", "b"}, Data: []byte("payload")},
		{Status: StatusOK},
		{Status: StatusStale, Seq: 100},
		{Status: StatusNotFound},
		{Status: StatusErr, Msg: "backend exploded"},
	}
	for _, want := range cases {
		data := AppendResponse(nil, want)
		got, err := ReadResponse(reader(data))
		if err != nil {
			t.Fatalf("status %q: ReadResponse: %v", want.Status, err)
		}
		if got.Status != want.Status || got.Seq != want.Seq || got.Msg != want.Msg ||
			len(got.Names) != len(want.Names) || !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("status %q: round trip mismatch: got %+v want %+v", want.Status, got, want)
		}
		for i := range want.Names {
			if got.Names[i] != want.Names[i] {
				t.Fatalf("status %q: name %d: got %q want %q", want.Status, i, got.Names[i], want.Names[i])
			}
		}
	}
}

// Every single-bit corruption of a put's payload must be rejected by the
// CRC — a torn or flipped replication write is never silently stored.
func TestPutBlobCorruptionDetected(t *testing.T) {
	req := Request{Kind: KindPut, Seq: 5, Session: "sess", Data: []byte("APCK-checkpoint-payload")}
	data := AppendRequest(nil, req)
	// Locate the blob bytes: kind(1) + uvarint seq(1) + strlen(1) + session.
	blobStart := 1 + 1 + 1 + len(req.Session) + 1 // + uvarint blob len
	for i := blobStart; i < blobStart+len(req.Data); i++ {
		corrupt := append([]byte(nil), data...)
		corrupt[i] ^= 0x40
		if _, err := ReadRequest(reader(corrupt)); err == nil {
			t.Fatalf("flip at byte %d went undetected", i)
		}
	}
}

func TestCleanCloseIsEOF(t *testing.T) {
	if _, err := ReadRequest(reader(nil)); !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream: got %v, want io.EOF", err)
	}
}

func TestTruncatedBlobRejected(t *testing.T) {
	data := AppendRequest(nil, Request{Kind: KindPut, Seq: 1, Session: "s", Data: []byte("0123456789")})
	for cut := 1; cut < len(data); cut++ {
		if _, err := ReadRequest(reader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestBoundedLengths(t *testing.T) {
	// A string length beyond the cap must be refused before any read.
	big := []byte{KindGet, 0xFF, 0xFF, 0x7F} // uvarint ~2M
	if _, err := ReadRequest(reader(big)); err == nil {
		t.Fatal("oversized string length accepted")
	}
	if _, err := ReadRequest(reader([]byte{'Z'})); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := ReadResponse(reader([]byte{'Z'})); err == nil {
		t.Fatal("unknown status accepted")
	}
}

func TestPipelinedRequests(t *testing.T) {
	var buf []byte
	buf = AppendRequest(buf, Request{Kind: KindPut, Seq: 1, Session: "a", Data: []byte("one")})
	buf = AppendRequest(buf, Request{Kind: KindGet, Session: "a"})
	buf = AppendRequest(buf, Request{Kind: KindDrop, Seq: 1, Session: "a"})
	br := reader(buf)
	for i, wantKind := range []byte{KindPut, KindGet, KindDrop} {
		req, err := ReadRequest(br)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if req.Kind != wantKind {
			t.Fatalf("request %d: kind %q want %q", i, req.Kind, wantKind)
		}
	}
	if _, err := ReadRequest(br); !errors.Is(err, io.EOF) {
		t.Fatalf("after stream: got %v, want io.EOF", err)
	}
}
