package replica

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"aprof/internal/repo/backend"
)

// ckptStore holds the checkpoint replicas this node stores on behalf of
// its peers, keyed by session id with a monotonic sequence number (the
// checkpoint's delivered-event count). Puts with a sequence at or below
// the stored one are rejected as stale: a delayed push from a primary
// that has since failed over can never roll a replica backwards.
//
// With a directory configured, every accepted replica is persisted
// atomically (temp + fsync + rename, via backend.WriteAtomic) in a small
// CRC-guarded envelope, and reloaded on open — so a restarted node still
// serves the replicas it had confirmed. A torn or corrupt file fails its
// CRC and is discarded on reload, exactly like a torn checkpoint file.
type ckptStore struct {
	dir string

	mu   sync.Mutex
	byID map[string]ckptEntry
}

type ckptEntry struct {
	seq  uint64
	data []byte
}

// Replica-file envelope: magic, uvarint seq, uvarint len, data, CRC-32 of
// everything before the CRC.
const ckptFileMagic = "RCK1"

func openCkptStore(dir string) (*ckptStore, error) {
	s := &ckptStore{dir: dir, byID: make(map[string]ckptEntry)}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("replica: checkpoint store: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("replica: checkpoint store: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".rck") || strings.HasPrefix(name, ".") {
			continue
		}
		path := filepath.Join(dir, name)
		raw, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		session := strings.TrimSuffix(name, ".rck")
		seq, data, derr := decodeCkptFile(raw)
		if derr != nil {
			// Torn by a crash mid-rename-window or bit-rotted: discard. The
			// session's primary (or another replica) still holds it.
			os.Remove(path)
			continue
		}
		s.byID[session] = ckptEntry{seq: seq, data: data}
	}
	return s, nil
}

// put stores a replica if seq is newer than what is held. It returns the
// held sequence and whether the put was accepted.
func (s *ckptStore) put(session string, seq uint64, data []byte) (uint64, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if have, ok := s.byID[session]; ok && have.seq >= seq {
		return have.seq, false, nil
	}
	if s.dir != "" {
		if err := backend.WriteAtomic(s.path(session), encodeCkptFile(seq, data), 0o644); err != nil {
			return 0, false, fmt.Errorf("replica: persisting checkpoint: %w", err)
		}
	}
	s.byID[session] = ckptEntry{seq: seq, data: append([]byte(nil), data...)}
	return seq, true, nil
}

func (s *ckptStore) get(session string) (uint64, []byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.byID[session]
	if !ok {
		return 0, nil, false
	}
	return e.seq, append([]byte(nil), e.data...), true
}

func (s *ckptStore) drop(session string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.byID, session)
	if s.dir != "" {
		os.Remove(s.path(session))
	}
}

// sessions lists the held session ids (tests and leak audits).
func (s *ckptStore) sessions() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.byID))
	for id := range s.byID {
		ids = append(ids, id)
	}
	return ids
}

func (s *ckptStore) path(session string) string {
	return filepath.Join(s.dir, session+".rck")
}

func encodeCkptFile(seq uint64, data []byte) []byte {
	buf := append([]byte(nil), ckptFileMagic...)
	buf = binary.AppendUvarint(buf, seq)
	buf = binary.AppendUvarint(buf, uint64(len(data)))
	buf = append(buf, data...)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

func decodeCkptFile(raw []byte) (uint64, []byte, error) {
	if len(raw) < len(ckptFileMagic)+4 || string(raw[:len(ckptFileMagic)]) != ckptFileMagic {
		return 0, nil, fmt.Errorf("replica: bad replica file header")
	}
	body, crc := raw[:len(raw)-4], binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if crc32.ChecksumIEEE(body) != crc {
		return 0, nil, fmt.Errorf("replica: replica file crc mismatch")
	}
	rest := body[len(ckptFileMagic):]
	seq, n := binary.Uvarint(rest)
	if n <= 0 {
		return 0, nil, fmt.Errorf("replica: bad replica file seq")
	}
	rest = rest[n:]
	size, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest[n:])) != size {
		return 0, nil, fmt.Errorf("replica: bad replica file length")
	}
	return seq, append([]byte(nil), rest[n:]...), nil
}
