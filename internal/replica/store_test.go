package replica

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestCkptStoreStaleRejection(t *testing.T) {
	s, err := openCkptStore("")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.put("a", 10, []byte("ten")); !ok {
		t.Fatal("first put rejected")
	}
	// Same seq and older seq are both stale: a delayed push from a failed
	// primary must never roll the replica backwards.
	if held, ok, _ := s.put("a", 10, []byte("ten-again")); ok || held != 10 {
		t.Fatalf("equal-seq put accepted (held=%d ok=%v)", held, ok)
	}
	if held, ok, _ := s.put("a", 5, []byte("five")); ok || held != 10 {
		t.Fatalf("older put accepted (held=%d ok=%v)", held, ok)
	}
	if _, ok, _ := s.put("a", 11, []byte("eleven")); !ok {
		t.Fatal("newer put rejected")
	}
	seq, data, ok := s.get("a")
	if !ok || seq != 11 || string(data) != "eleven" {
		t.Fatalf("get: seq=%d data=%q ok=%v", seq, data, ok)
	}
}

func TestCkptStorePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := openCkptStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("APCK checkpoint payload")
	if _, ok, err := s.put("build-42", 4096, want); err != nil || !ok {
		t.Fatalf("put: ok=%v err=%v", ok, err)
	}

	// A "restarted" node (fresh store over the same dir) still serves the
	// replica it confirmed.
	s2, err := openCkptStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	seq, data, ok := s2.get("build-42")
	if !ok || seq != 4096 || !bytes.Equal(data, want) {
		t.Fatalf("reloaded: seq=%d ok=%v data match=%v", seq, ok, bytes.Equal(data, want))
	}

	s2.drop("build-42")
	if _, _, ok := s2.get("build-42"); ok {
		t.Fatal("dropped session still served")
	}
	s3, err := openCkptStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s3.get("build-42"); ok {
		t.Fatal("dropped session resurrected after reopen")
	}
}

func TestCkptStoreDiscardsTornFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := openCkptStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.put("good", 7, []byte("intact")); err != nil || !ok {
		t.Fatalf("put: ok=%v err=%v", ok, err)
	}

	// Every torn prefix of a valid file, plus a bit-flipped whole, must be
	// discarded on reload — never served as a confirmed replica.
	whole := encodeCkptFile(9, []byte("payload"))
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"torn.rck", whole[:len(whole)/2]},
		{"empty.rck", nil},
		{"flipped.rck", flipByte(whole, len(whole)/2)},
		{"notmagic.rck", []byte("XXXXjunk")},
	} {
		if err := os.WriteFile(filepath.Join(dir, tc.name), tc.data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s2, err := openCkptStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ids := s2.sessions()
	if len(ids) != 1 || ids[0] != "good" {
		t.Fatalf("reload kept %v, want only [good]", ids)
	}
	// The wreckage is cleaned off disk too.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if e.Name() != "good.rck" {
			t.Fatalf("torn file %s survived reload", e.Name())
		}
	}
}

func flipByte(data []byte, i int) []byte {
	out := append([]byte(nil), data...)
	out[i] ^= 0x01
	return out
}
