package replica

import (
	"bufio"
	"bytes"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"

	"aprof/internal/repo"
	"aprof/internal/repo/backend"
)

// testCluster is a minimal APRR-only cluster: each node gets a real TCP
// listener whose accept loop feeds ServeConn directly (the full
// APRD-multiplexed path is exercised by the chaos harness).
type testCluster struct {
	t     *testing.T
	addrs []string
	nodes map[string]*Node
	lns   map[string]net.Listener
	wg    sync.WaitGroup

	mu    sync.Mutex
	conns map[string][]net.Conn // accepted conns, by serving address
}

func newTestCluster(t *testing.T, n int, configure func(i int, o *Options)) *testCluster {
	t.Helper()
	c := &testCluster{
		t:     t,
		nodes: make(map[string]*Node),
		lns:   make(map[string]net.Listener),
		conns: make(map[string][]net.Conn),
	}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		c.addrs = append(c.addrs, ln.Addr().String())
		c.lns[ln.Addr().String()] = ln
	}
	for i, addr := range c.addrs {
		o := Options{
			Self:  addr,
			Peers: append([]string(nil), c.addrs...),
			Dir:   t.TempDir(),
			Logf:  t.Logf,
		}
		if configure != nil {
			configure(i, &o)
		}
		node, err := NewNode(o)
		if err != nil {
			t.Fatal(err)
		}
		c.nodes[addr] = node
		c.serve(addr)
	}
	t.Cleanup(c.close)
	return c
}

func (c *testCluster) serve(addr string) {
	ln, node := c.lns[addr], c.nodes[addr]
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			c.mu.Lock()
			c.conns[addr] = append(c.conns[addr], conn)
			c.mu.Unlock()
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				defer conn.Close()
				node.ServeConn(conn, bufio.NewReader(conn))
			}()
		}
	}()
}

// dropConns severs every connection a node has accepted so far.
func (c *testCluster) dropConns(addr string) {
	c.mu.Lock()
	for _, conn := range c.conns[addr] {
		conn.Close()
	}
	c.conns[addr] = nil
	c.mu.Unlock()
}

func (c *testCluster) close() {
	for addr, ln := range c.lns {
		ln.Close()
		c.dropConns(addr)
	}
	for _, n := range c.nodes {
		n.Close()
	}
	c.wg.Wait()
}

// kill makes one node unreachable: listener and accepted conns closed,
// node closed.
func (c *testCluster) kill(addr string) {
	c.lns[addr].Close()
	c.dropConns(addr)
	c.nodes[addr].Close()
}

func TestReplicaSetDeterministic(t *testing.T) {
	c := newTestCluster(t, 3, nil)
	for _, sid := range []string{"alpha", "beta", "gamma", "delta"} {
		want := c.nodes[c.addrs[0]].ReplicaSet(sid)
		if len(want) != DefaultReplicas {
			t.Fatalf("replica set size %d, want %d", len(want), DefaultReplicas)
		}
		for _, addr := range c.addrs[1:] {
			got := c.nodes[addr].ReplicaSet(sid)
			if strings.Join(got, ",") != strings.Join(want, ",") {
				t.Fatalf("node %s disagrees on replica set of %q: %v vs %v", addr, sid, got, want)
			}
		}
	}
}

func TestReplicateRecoverDrop(t *testing.T) {
	c := newTestCluster(t, 3, nil)
	origin := c.nodes[c.addrs[0]]
	ckpt := []byte("APCK pretend checkpoint, seq 100")

	if err := origin.Replicate("sess-1", 100, ckpt); err != nil {
		t.Fatalf("Replicate: %v", err)
	}

	// Every OTHER node can recover it — that is what failover does.
	for _, addr := range c.addrs[1:] {
		seq, data, err := c.nodes[addr].Recover("sess-1")
		if err != nil {
			t.Fatalf("node %s Recover: %v", addr, err)
		}
		if seq != 100 || !bytes.Equal(data, ckpt) {
			t.Fatalf("node %s recovered seq=%d (want 100), bytes match=%v", addr, seq, bytes.Equal(data, ckpt))
		}
	}

	// A stale re-push (a delayed primary) is rejected by replicas but
	// still counts as confirmed — the cluster holds at least that seq.
	if err := origin.Replicate("sess-1", 50, []byte("stale")); err != nil {
		t.Fatalf("stale Replicate should confirm, got %v", err)
	}
	seq, data, err := c.nodes[c.addrs[1]].Recover("sess-1")
	if err != nil || seq != 100 || !bytes.Equal(data, ckpt) {
		t.Fatalf("stale push overwrote replica: seq=%d err=%v", seq, err)
	}

	// Newer checkpoints supersede.
	ckpt2 := []byte("APCK pretend checkpoint, seq 200")
	if err := origin.Replicate("sess-1", 200, ckpt2); err != nil {
		t.Fatalf("Replicate v2: %v", err)
	}
	if seq, data, err = c.nodes[c.addrs[2]].Recover("sess-1"); err != nil || seq != 200 || !bytes.Equal(data, ckpt2) {
		t.Fatalf("recover after update: seq=%d err=%v", seq, err)
	}

	// Drop retires the session everywhere.
	origin.Drop("sess-1")
	for _, addr := range c.addrs {
		if _, _, err := c.nodes[addr].Recover("sess-1"); !errors.Is(err, ErrNoReplica) {
			t.Fatalf("node %s: recover after drop: %v, want ErrNoReplica", addr, err)
		}
	}
}

func TestReplicateWalksRingPastDeadMember(t *testing.T) {
	c := newTestCluster(t, 3, nil)
	origin := c.nodes[c.addrs[0]]

	// Kill one of the two non-origin members; replication must confirm on
	// the surviving one by walking the ring past the corpse.
	c.kill(c.addrs[1])
	if err := origin.Replicate("walk", 10, []byte("data")); err != nil {
		t.Fatalf("Replicate with one dead peer: %v", err)
	}
	if seq, _, err := c.nodes[c.addrs[2]].Recover("walk"); err != nil && seq != 10 {
		t.Fatalf("survivor recover: seq=%d err=%v", seq, err)
	}
}

func TestReplicateFailsWithoutQuorum(t *testing.T) {
	c := newTestCluster(t, 2, nil)
	origin := c.nodes[c.addrs[0]]
	c.kill(c.addrs[1])

	err := origin.Replicate("doomed", 5, []byte("data"))
	if err == nil {
		t.Fatal("Replicate confirmed with every peer dead")
	}
	if !strings.Contains(err.Error(), "0/1 confirms") {
		t.Fatalf("error should name the confirm shortfall, got: %v", err)
	}
}

// Recovery sweeps its own store AND every peer, keeping the highest seq —
// a node that missed the last push must not win with an older copy.
func TestRecoverPrefersNewestAcrossPeers(t *testing.T) {
	c := newTestCluster(t, 3, nil)
	if _, ok, err := c.nodes[c.addrs[0]].store.put("skew", 5, []byte("old")); err != nil || !ok {
		t.Fatalf("seed old copy: ok=%v err=%v", ok, err)
	}
	if _, ok, err := c.nodes[c.addrs[2]].store.put("skew", 9, []byte("new")); err != nil || !ok {
		t.Fatalf("seed new copy: ok=%v err=%v", ok, err)
	}
	for _, addr := range c.addrs {
		seq, data, err := c.nodes[addr].Recover("skew")
		if err != nil {
			t.Fatalf("node %s Recover: %v", addr, err)
		}
		if seq != 9 || string(data) != "new" {
			t.Fatalf("node %s recovered seq=%d data=%q, want the newest copy", addr, seq, data)
		}
	}
}

func TestNewNodeValidation(t *testing.T) {
	if _, err := NewNode(Options{Peers: []string{"a:1"}}); err == nil {
		t.Fatal("missing Self accepted")
	}
	if _, err := NewNode(Options{Self: "b:1", Peers: []string{"a:1"}}); err == nil {
		t.Fatal("Self outside membership accepted")
	}
	if _, err := NewNode(Options{Self: "a:1", Peers: []string{"a:1"}, Replicas: 2}); err == nil {
		t.Fatal("replica count beyond membership accepted")
	}
	if _, err := NewNode(Options{Self: "a:1", Peers: []string{"a:1", "b:1"}, Replicas: 2, MinConfirms: 2}); err == nil {
		t.Fatal("MinConfirms beyond non-primary replicas accepted")
	}
}

// The APRR handler serves a node's store backend read-only — the transport
// beneath backend.Peer and store anti-entropy.
func TestPeerBackendServesRemoteStore(t *testing.T) {
	dir := t.TempDir()
	be, err := backend.OpenLocal(dir)
	if err != nil {
		t.Fatal(err)
	}
	r, err := repo.OpenOrInit(be, repo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SaveProfile("served", bytes.Repeat([]byte("profile body "), 1000)); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	c := newTestCluster(t, 2, func(i int, o *Options) {
		if i == 0 {
			o.Backend = be
		}
	})

	peer := backend.NewPeer(c.addrs[0], backend.PeerOptions{})
	defer peer.Close()

	// List + Load every object type the sync path reads, and verify the
	// bytes arrive intact.
	for _, typ := range []backend.Type{backend.PackType, backend.SnapshotType, backend.IndexType} {
		names, err := peer.List(typ)
		if err != nil {
			t.Fatalf("List(%s): %v", typ, err)
		}
		local, err := be.List(typ)
		if err != nil {
			t.Fatal(err)
		}
		if len(names) != len(local) {
			t.Fatalf("List(%s): %d names, local has %d", typ, len(names), len(local))
		}
		for _, name := range names {
			remote, err := peer.Load(backend.Handle{Type: typ, Name: name})
			if err != nil {
				t.Fatalf("Load(%s/%s): %v", typ, name, err)
			}
			want, err := be.Load(backend.Handle{Type: typ, Name: name})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(remote, want) {
				t.Fatalf("Load(%s/%s): remote bytes differ", typ, name)
			}
		}
	}

	// Misses and writes.
	if _, err := peer.Load(backend.Handle{Type: backend.PackType, Name: "nope"}); !errors.Is(err, backend.ErrNotFound) {
		t.Fatalf("missing object: %v, want ErrNotFound", err)
	}
	if err := peer.Save(backend.Handle{Type: backend.PackType, Name: "x"}, []byte("y")); !errors.Is(err, backend.ErrPeerReadOnly) {
		t.Fatalf("Save: %v, want ErrPeerReadOnly", err)
	}
	if err := peer.Remove(backend.Handle{Type: backend.PackType, Name: "x"}); !errors.Is(err, backend.ErrPeerReadOnly) {
		t.Fatalf("Remove: %v, want ErrPeerReadOnly", err)
	}

	// A node with no backend refuses, explicitly.
	peer2 := backend.NewPeer(c.addrs[1], backend.PeerOptions{})
	defer peer2.Close()
	if _, err := peer2.List(backend.PackType); err == nil {
		t.Fatal("backend-less node served a list")
	}
}

// A peer connection survives the peer restarting: the cached conn goes
// bad, roundTrip redials once, the exchange succeeds.
func TestRoundTripRedialsAfterPeerRestart(t *testing.T) {
	c := newTestCluster(t, 2, nil)
	origin := c.nodes[c.addrs[0]]

	if err := origin.Replicate("redial", 1, []byte("one")); err != nil {
		t.Fatalf("first push: %v", err)
	}

	// Bounce the peer's listener on the same address: existing conns die.
	addr := c.addrs[1]
	c.lns[addr].Close()
	c.dropConns(addr)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	c.lns[addr] = ln
	c.serve(addr)

	if err := origin.Replicate("redial", 2, []byte("two")); err != nil {
		t.Fatalf("push after peer restart: %v", err)
	}
}
