package replica

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"aprof/internal/replica/wire"
	"aprof/internal/repo/backend"
)

// ServeConn serves APRR requests on one connection until the peer hangs
// up, a read times out, or a request is malformed. The server hands the
// connection over after peeking (not consuming) the APRR magic, so the
// prologue is still unread; br wraps conn and must be used for all reads.
//
// The request loop is the receiving half of every replication path:
// checkpoint puts (seq-guarded — a stale push can never overwrite a newer
// replica), recovery gets, completion drops, and the read-only backend
// loads/lists that anti-entropy sync and backend.Peer pull from. Backend
// requests are strictly read-only by design: every node mutates only its
// own store, which is what keeps sync idempotent and crash-safe.
func (n *Node) ServeConn(conn net.Conn, br *bufio.Reader) {
	if err := wire.ReadHandshake(br); err != nil {
		n.respond(conn, wire.Response{Status: wire.StatusErr, Msg: err.Error()})
		return
	}
	for {
		req, err := wire.ReadRequest(br)
		if err != nil {
			if !errors.Is(err, io.EOF) && !isTimeout(err) && !errors.Is(err, net.ErrClosed) {
				n.logf("replica: serve: %v", err)
				n.respond(conn, wire.Response{Status: wire.StatusErr, Msg: err.Error()})
			}
			return
		}
		if err := n.respond(conn, n.handle(req)); err != nil {
			return
		}
	}
}

func (n *Node) handle(req wire.Request) wire.Response {
	switch req.Kind {
	case wire.KindPut:
		if req.Session == "" {
			return wire.Response{Status: wire.StatusErr, Msg: "replica: empty session id"}
		}
		haveSeq, ok, err := n.store.put(req.Session, req.Seq, req.Data)
		switch {
		case err != nil:
			return wire.Response{Status: wire.StatusErr, Msg: err.Error()}
		case !ok:
			n.m.staleRejected.Inc()
			return wire.Response{Status: wire.StatusStale, Seq: haveSeq}
		default:
			n.m.received.Inc()
			return wire.Response{Status: wire.StatusOK}
		}
	case wire.KindGet:
		seq, data, ok := n.store.get(req.Session)
		if !ok {
			return wire.Response{Status: wire.StatusNotFound}
		}
		return wire.Response{Status: wire.StatusOK, Seq: seq, Data: data}
	case wire.KindDrop:
		n.store.drop(req.Session)
		return wire.Response{Status: wire.StatusOK}
	case wire.KindLoad:
		h, resp := n.backendHandle(req)
		if resp != nil {
			return *resp
		}
		data, err := n.opts.Backend.Load(h)
		switch {
		case errors.Is(err, backend.ErrNotFound):
			return wire.Response{Status: wire.StatusNotFound}
		case err != nil:
			return wire.Response{Status: wire.StatusErr, Msg: err.Error()}
		}
		n.m.servedLoads.Inc()
		return wire.Response{Status: wire.StatusOK, Data: data}
	case wire.KindList:
		h, resp := n.backendHandle(req)
		if resp != nil {
			return *resp
		}
		names, err := n.opts.Backend.List(h.Type)
		if err != nil {
			return wire.Response{Status: wire.StatusErr, Msg: err.Error()}
		}
		n.m.servedLists.Inc()
		return wire.Response{Status: wire.StatusOK, Names: names}
	default:
		return wire.Response{Status: wire.StatusErr, Msg: fmt.Sprintf("replica: unknown request kind %q", req.Kind)}
	}
}

// backendHandle validates a backend request against the served backend.
func (n *Node) backendHandle(req wire.Request) (backend.Handle, *wire.Response) {
	if n.opts.Backend == nil {
		return backend.Handle{}, &wire.Response{
			Status: wire.StatusErr, Msg: "replica: this node serves no store backend",
		}
	}
	for _, t := range backend.Types {
		if string(t) == req.Type {
			return backend.Handle{Type: t, Name: req.Name}, nil
		}
	}
	return backend.Handle{}, &wire.Response{
		Status: wire.StatusErr, Msg: fmt.Sprintf("replica: unknown backend type %q", req.Type),
	}
}

func (n *Node) respond(conn net.Conn, resp wire.Response) error {
	conn.SetWriteDeadline(time.Now().Add(n.opts.IOTimeout))
	defer conn.SetWriteDeadline(time.Time{})
	_, err := conn.Write(wire.AppendResponse(nil, resp))
	return err
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
