package core

// Concurrent run orchestration. One trace must be profiled serially (the
// algorithm consumes a totally ordered trace), but independent traces — the
// multi-run mode of the paper's introduction — have no shared state at all:
// each run gets its own Profiler, and the per-run Profiles merge by routine
// name afterwards. RunConcurrent exploits that with a worker pool over the
// runs and a tree-reduction merge, making multi-run profiling scale with
// cores while keeping every per-trace result identical to Run.

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"aprof/internal/trace"
)

// Job produces one trace to profile. Jobs run concurrently under
// RunConcurrent; a job should honor ctx cancellation when its work is
// long-running (building a workload, executing a VM program, decoding a
// file).
type Job func(ctx context.Context) (*trace.Trace, error)

// RunConcurrent profiles the traces produced by jobs with a pool of workers
// and merges the per-run profiles with a parallel tree reduction
// (MergeRunsParallel). workers <= 0 uses GOMAXPROCS.
//
// Determinism: each trace is profiled by the exact sequential algorithm
// (Run), so per-trace results never depend on scheduling; the merged result
// is MergeRuns of the per-run profiles in job order. The first error — from
// the lowest-indexed failing job — cancels outstanding work and is
// returned.
//
// cfg.OnActivation, when set, is invoked from multiple worker goroutines
// concurrently; the callback must be safe for concurrent use.
func RunConcurrent(ctx context.Context, jobs []Job, cfg Config, workers int) (*Profiles, error) {
	if len(jobs) == 0 {
		return MergeRuns(), nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	runs := make([]*Profiles, len(jobs))
	errs := make([]error, len(jobs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				tr, err := jobs[i](ctx)
				if err == nil {
					runs[i], err = Run(tr, cfg)
				}
				if err != nil {
					errs[i] = err
					cancel()
				}
			}
		}()
	}
	wg.Wait()

	// First-error propagation: prefer the lowest-indexed real failure over
	// the cancellations it caused in later jobs.
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return MergeRunsParallel(workers, runs...), nil
}

// MergeRunsParallel combines the profiles of several runs like MergeRuns,
// but pairs runs level by level (a tree reduction of O(log n) depth instead
// of the left fold's O(n)) with up to workers merges in flight per level.
// Profile merging is associative — sums, min/max statistics and the
// name-keyed reconciliation are all order-insensitive — so the result is
// semantically identical to MergeRuns and, for profiles without point-count
// caps, byte-identical under profio.Write's canonical ordering. (With
// Config.MaxPointsPerProfile set, intermediate bucketing decisions may
// quantize plot points at marginally different boundaries; the aggregate
// counters still agree exactly.)
func MergeRunsParallel(workers int, runs ...*Profiles) *Profiles {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if len(runs) < 2 || workers == 1 {
		return MergeRuns(runs...)
	}
	cur := runs
	sem := make(chan struct{}, workers)
	for len(cur) > 1 {
		pairs := len(cur) / 2
		next := make([]*Profiles, (len(cur)+1)/2)
		if len(cur)%2 == 1 {
			// The odd run passes through to the next level untouched;
			// with len(cur) >= 2 the final level always merges a pair, so
			// the returned Profiles is always freshly allocated.
			next[pairs] = cur[len(cur)-1]
		}
		var wg sync.WaitGroup
		for j := 0; j < pairs; j++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(j int) {
				defer wg.Done()
				next[j] = MergeRuns(cur[2*j], cur[2*j+1])
				<-sem
			}(j)
		}
		wg.Wait()
		cur = next
	}
	return cur[0]
}

// sortedKeys returns run's profile keys ordered by (routine name, thread),
// making MergeRuns deterministic: symbol interning and profile folding
// follow a canonical order instead of map iteration order.
func sortedKeys(run *Profiles) []Key {
	keys := make([]Key, 0, len(run.ByKey))
	for key := range run.ByKey {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		ni, nj := run.Symbols.Name(keys[i].Routine), run.Symbols.Name(keys[j].Routine)
		if ni != nj {
			return ni < nj
		}
		return keys[i].Thread < keys[j].Thread
	})
	return keys
}
