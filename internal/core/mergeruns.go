package core

import (
	"sort"

	"aprof/internal/trace"
)

// MergeRuns combines the profiles of several profiling runs into one, the
// multi-run mode the paper's introduction describes (input-sensitive
// profilers "collect data from multiple or even single program runs"):
// running the application on several workloads and merging widens the range
// of observed input sizes, which is exactly what the cost-plot fits need.
//
// Runs may come from different processes, so routine ids are reconciled by
// name through a fresh symbol table. Thread-sensitive profiles merge by
// (routine name, thread id); calling-context profiles merge by (context
// path, thread id) when every input run is context-sensitive, and are
// dropped otherwise (a path-keyed merge of partial data would be
// misleading). Run-level counters accumulate.
func MergeRuns(runs ...*Profiles) *Profiles {
	out := &Profiles{
		Symbols: trace.NewSymbolTable(),
		ByKey:   make(map[Key]*Profile),
	}
	if len(runs) == 0 {
		return out
	}

	for _, run := range runs {
		out.Events += run.Events
		out.Renumberings += run.Renumberings
		out.Drops.Merge(&run.Drops)
		out.Corruption.Merge(run.Corruption)
		// Fold profiles in canonical (name, thread) order so interned
		// routine ids — and with them the in-memory result — are
		// deterministic rather than following map iteration order.
		for _, key := range sortedKeys(run) {
			p := run.ByKey[key]
			id := out.Symbols.Intern(run.Symbols.Name(key.Routine))
			newKey := Key{Routine: id, Thread: key.Thread}
			dst := out.ByKey[newKey]
			if dst == nil {
				dst = newProfile(id, key.Thread)
				out.ByKey[newKey] = dst
			}
			dst.merge(p)
			dst.Routine = id
		}
	}

	// Context-sensitive merge, only when every run carries contexts.
	allCtx := true
	for _, run := range runs {
		if run.ByContext == nil {
			allCtx = false
			break
		}
	}
	if !allCtx {
		return out
	}
	// Rebuild a shared context tree keyed by routine-name paths.
	table := newContextTable()
	out.ByContext = make(map[ContextKey]*Profile)
	for _, run := range runs {
		// Map each of the run's context ids to a node in the shared tree by
		// walking its path.
		mapped := make(map[ContextID]*contextNode, len(run.Contexts))
		var resolve func(id ContextID) *contextNode
		resolve = func(id ContextID) *contextNode {
			if id == RootContext {
				return table.root
			}
			if n, ok := mapped[id]; ok {
				return n
			}
			meta := run.Contexts[id]
			parent := resolve(meta.Parent)
			name := run.Symbols.Name(meta.Routine)
			n := table.child(parent, out.Symbols.Intern(name))
			mapped[id] = n
			return n
		}
		ckeys := make([]ContextKey, 0, len(run.ByContext))
		for key := range run.ByContext {
			ckeys = append(ckeys, key)
		}
		// Context ids are assigned deterministically by the serial
		// profiler, so ordering by (context, thread) is canonical.
		sort.Slice(ckeys, func(i, j int) bool {
			if ckeys[i].Context != ckeys[j].Context {
				return ckeys[i].Context < ckeys[j].Context
			}
			return ckeys[i].Thread < ckeys[j].Thread
		})
		for _, key := range ckeys {
			p := run.ByContext[key]
			node := resolve(key.Context)
			newKey := ContextKey{Context: node.id, Thread: key.Thread}
			dst := out.ByContext[newKey]
			if dst == nil {
				dst = newProfile(node.rtn, key.Thread)
				out.ByContext[newKey] = dst
			}
			dst.merge(p)
			dst.Routine = node.rtn
		}
	}
	out.Contexts = table.metas()
	return out
}
