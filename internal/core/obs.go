package core

// Observability instrumentation of the profiling hot path (Figs. 8/9).
//
// Two reporting models keep the per-event cost at one predictable branch
// plus at most one uncontended atomic add:
//
//   - Flow metrics (events by kind) update a pre-resolved obs.Counter
//     directly from HandleEvent.
//   - State-derived metrics (shadow-stack depth high-water mark, tuple-table
//     size, shadow-memory chunk counts, hint hit rate, drop counters) are
//     maintained as the plain fields the algorithm already keeps and
//     published into the registry at batch boundaries (profio calls
//     PublishObs after every batch) and at Finish. Monotonic quantities are
//     published as deltas into counters so concurrent profilers sharing one
//     registry (RunConcurrent) sum instead of clobbering.
//
// Nothing here is ever read back by the algorithm: enabling a registry
// cannot change profile output (proved byte-for-byte by the metamorphic
// tests in internal/profio).

import (
	"aprof/internal/obs"
	"aprof/internal/trace"
)

// Obs scope names used by the profiler's instrumentation.
const (
	// ObsScopeCore carries the event-loop metrics: events_<kind> counters,
	// drops_<category> counters, the stack_depth_hwm gauge, the
	// tuple_points gauge, and the checkpoint_{write,resume}_us histograms.
	ObsScopeCore = "core"
	// ObsScopeShadow carries the shadow-memory metrics: leaf_chunks,
	// hint_hits and hint_lookups counters (summed over the global write
	// shadow and every thread's read shadow).
	ObsScopeShadow = "shadow"
)

// profilerObs holds the pre-resolved metric handles of one profiler plus
// the last-published values of the delta-reported quantities.
type profilerObs struct {
	// Per-event flow counters, indexed by trace.Kind.
	events        [trace.NumKinds]*obs.Counter
	invalidEvents *obs.Counter

	depthHWM    *obs.Gauge
	tuplePoints *obs.Gauge

	ckptWrite  *obs.Histogram
	ckptResume *obs.Histogram

	// Delta-published monotonic quantities.
	drops       [7]*obs.Counter
	lastDrops   DropStats
	leafChunks  *obs.Counter
	lastChunks  int
	hintHits    *obs.Counter
	hintLookups *obs.Counter
	lastHits    uint64
	lastLookups uint64
}

// dropCounters maps DropStats categories to metric names, in the fixed
// order used by profilerObs.drops and dropValues.
var dropCounterNames = [7]string{
	"drops_return_without_call",
	"drops_unknown_routine",
	"drops_bad_thread",
	"drops_after_finish",
	"drops_invalid_kind",
	"drops_depth_overflow",
	"drops_sampled_out",
}

func dropValues(d DropStats) [7]uint64 {
	return [7]uint64{
		d.ReturnWithoutCall, d.UnknownRoutine, d.BadThread,
		d.AfterFinish, d.InvalidKind, d.DepthOverflow, d.SampledOut,
	}
}

// newProfilerObs resolves every handle the profiler reports into. A nil
// registry yields a nil *profilerObs, and the single `p.obs != nil` branch
// at each instrumentation site compiles the layer down to a no-op.
func newProfilerObs(reg *obs.Registry) *profilerObs {
	if reg == nil {
		return nil
	}
	core := reg.Scope(ObsScopeCore)
	shadow := reg.Scope(ObsScopeShadow)
	o := &profilerObs{
		invalidEvents: core.Counter("events_invalid"),
		depthHWM:      core.Gauge("stack_depth_hwm"),
		tuplePoints:   core.Gauge("tuple_points"),
		ckptWrite:     core.Histogram("checkpoint_write_us"),
		ckptResume:    core.Histogram("checkpoint_resume_us"),
		leafChunks:    shadow.Counter("leaf_chunks"),
		hintHits:      shadow.Counter("hint_hits"),
		hintLookups:   shadow.Counter("hint_lookups"),
	}
	for k := 0; k < trace.NumKinds; k++ {
		o.events[k] = core.Counter("events_" + trace.Kind(k).String())
	}
	for i, name := range dropCounterNames {
		o.drops[i] = core.Counter(name)
	}
	return o
}

// countEvent is the per-event hot-path hook: one bounds check and one
// atomic add.
func (o *profilerObs) countEvent(k trace.Kind) {
	if int(k) < len(o.events) {
		o.events[k].Inc()
	} else {
		o.invalidEvents.Inc()
	}
}

// PublishObs refreshes the state-derived metrics from the profiler's
// current data structures: the shadow-stack depth high-water mark, the
// tuple-table size (cost-plot points across all profiles, the analogue of
// aprof's tuple count), shadow-memory chunk and hint accounting, and the
// per-category drop counters. profio calls it after every profiled batch;
// Finish calls it once more so non-streaming runs report too. It is a no-op
// without a registry and never feeds back into the algorithm.
//
// Cost: O(threads + profiles), amortized over a batch of thousands of
// events — never per event.
func (p *Profiler) PublishObs() {
	o := p.obs
	if o == nil {
		return
	}
	o.depthHWM.SetMax(int64(p.depthHWM))

	points := 0
	for _, prof := range p.out.ByKey {
		points += len(prof.DRMSPoints) + len(prof.RMSPoints)
	}
	o.tuplePoints.Set(int64(points))

	chunks := 0
	var hits, lookups uint64
	observe := func(c int, h, l uint64) {
		chunks += c
		hits += h
		lookups += l
	}
	if p.wts != nil {
		h, l := p.wts.HintStats()
		observe(p.wts.LeafChunks(), h, l)
		h, l = p.wkind.HintStats()
		observe(p.wkind.LeafChunks(), h, l)
	}
	for _, t := range p.threads {
		h, l := t.ts.HintStats()
		observe(t.ts.LeafChunks(), h, l)
	}
	// All three quantities are monotonic per profiler (chunks are never
	// freed, hint counters only grow), so the deltas are non-negative and
	// sum correctly across profilers sharing the registry.
	o.leafChunks.Add(uint64(chunks - o.lastChunks))
	o.lastChunks = chunks
	o.hintHits.Add(hits - o.lastHits)
	o.lastHits = hits
	o.hintLookups.Add(lookups - o.lastLookups)
	o.lastLookups = lookups

	cur := dropValues(p.out.Drops)
	last := dropValues(o.lastDrops)
	for i := range cur {
		o.drops[i].Add(cur[i] - last[i])
	}
	o.lastDrops = p.out.Drops
}
