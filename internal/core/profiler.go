package core

import (
	"fmt"
	"sort"

	"aprof/internal/obs"
	"aprof/internal/shadow"
	"aprof/internal/trace"
)

// Config controls a profiling run.
type Config struct {
	// ThreadInput enables recognizing induced first-reads caused by writes
	// of other threads. Disabling it reproduces the "external input only"
	// variant of Fig. 6b.
	ThreadInput bool
	// ExternalInput enables recognizing induced first-reads caused by
	// kernelToUser events (data from disk, network, ...).
	ExternalInput bool
	// CounterLimit, when non-zero, caps the global timestamp counter: when
	// count reaches the limit the profiler renumbers all live timestamps to
	// a dense range preserving their order (§3.2, counter overflows). A
	// zero limit uses a practically unreachable default.
	CounterLimit uint64
	// ContextSensitive additionally keys collected activations by calling
	// context, populating Profiles.ByContext and Profiles.Contexts. Direct
	// recursion is collapsed.
	ContextSensitive bool
	// MaxPointsPerProfile caps the number of distinct input-size points each
	// profile retains (0 = unlimited). When a profile exceeds the cap its
	// input sizes are progressively quantized (low-order bits dropped),
	// bounding the profiler's memory on long-running workloads while
	// preserving the cost-plot shape.
	MaxPointsPerProfile int
	// OnActivation, when non-nil, is invoked for every collected activation
	// in completion order, before aggregation. It supports streaming
	// consumers and the differential tests.
	OnActivation func(ActivationRecord)
	// FaultPolicy selects how semantically malformed events are handled
	// (see fault.go). The zero value is FaultStrict: fail on the first one.
	FaultPolicy FaultPolicy
	// Limits bounds the profiler's resource usage; zero values are
	// unlimited (see fault.go).
	Limits Limits
	// Obs, when non-nil, receives the profiler's observability metrics
	// (events by kind, drops, shadow-memory and stack high-water marks,
	// checkpoint latencies — see obs.go for the catalogue). The registry is
	// write-only for the profiler: enabling it never changes profile output.
	// Nil (the default) compiles the instrumentation down to one predictable
	// branch per event. A single registry may be shared by concurrent
	// profilers (RunConcurrent); counters then aggregate across them.
	Obs *obs.Registry
}

// ActivationRecord reports one completed routine activation.
type ActivationRecord struct {
	Routine trace.RoutineID
	Thread  trace.ThreadID
	// RMS and DRMS are the input-size estimates of the activation; DRMS >=
	// RMS always holds (Inequality 1 of the paper).
	RMS  uint64
	DRMS uint64
	// Cost is the inclusive cost (basic blocks between call and return).
	Cost uint64
	// FirstReads + InducedThread + InducedExternal = DRMS.
	FirstReads      uint64
	InducedThread   uint64
	InducedExternal uint64
}

func (a activation) record(rtn trace.RoutineID, thr trace.ThreadID) ActivationRecord {
	return ActivationRecord{
		Routine:         rtn,
		Thread:          thr,
		RMS:             a.rms,
		DRMS:            a.drms(),
		Cost:            a.cost,
		FirstReads:      a.first,
		InducedThread:   a.indThread,
		InducedExternal: a.indExternal,
	}
}

// DefaultConfig enables both dynamic input sources — the full drms metric.
func DefaultConfig() Config {
	return Config{ThreadInput: true, ExternalInput: true}
}

// RMSOnlyConfig disables both dynamic input sources; the drms then
// degenerates to the rms and no global write-timestamp shadow memory is
// maintained, mirroring plain aprof [5].
func RMSOnlyConfig() Config {
	return Config{}
}

// writer kinds stored in the wkind shadow alongside wts.
const (
	writerNone   uint8 = 0
	writerThread uint8 = 1
	writerKernel uint8 = 2
)

// practicalInfinity is the default counter limit: far beyond any trace this
// implementation can process, yet small enough that limit+1 cannot overflow.
const practicalInfinity = 1<<63 - 1

// activation carries the values collected when an activation completes.
type activation struct {
	first       uint64
	indThread   uint64
	indExternal uint64
	rms         uint64
	cost        uint64
}

func (a activation) drms() uint64 { return a.first + a.indThread + a.indExternal }

// frame is one entry of a thread's shadow run-time stack. The counter fields
// hold *partial* values maintained under Invariant 2: the true metric of the
// i-th pending activation is the sum of the partial values from i to the top
// of the stack.
type frame struct {
	rtn       trace.RoutineID
	ts        uint64
	entryCost uint64
	ctx       *contextNode
	// Partial metric counters. int64: the ancestor decrement of the
	// first-read branch makes individual partial values transiently
	// negative in legal executions only in the presence of bugs; keeping
	// them signed lets the differential tests detect that instead of
	// silently wrapping.
	first       int64
	indThread   int64
	indExternal int64
	rms         int64
}

// threadState holds the thread-specific structures of the algorithm: the
// shadow memory ts_t of latest accesses and the shadow run-time stack S_t.
type threadState struct {
	id    trace.ThreadID
	ts    *shadow.Table[uint64]
	stack []frame
	cost  uint64 // last observed cumulative cost
	// overflow counts calls dropped because the stack hit Limits.MaxDepth;
	// matching returns decrement it instead of popping, so profiling resumes
	// exactly when the overflowing subtree unwinds.
	overflow int
}

// Profiler implements the read/write timestamping algorithm of Figs. 8 and 9
// over a merged trace, computing rms and drms side by side.
type Profiler struct {
	cfg  Config
	syms *trace.SymbolTable

	// count is the global counter of thread switches, routine activations
	// and kernelToUser events.
	count uint64
	limit uint64

	// wts is the global shadow memory of latest-write timestamps; wkind
	// records whether the latest writer was an application thread or the
	// kernel, for the thread/external attribution of induced first-reads.
	// Both stay nil when neither dynamic input source is enabled (rms-only
	// mode), mirroring aprof's lack of a global shadow memory.
	wts   *shadow.Table[uint64]
	wkind *shadow.Table[uint8]
	// resolve, when non-nil, replaces the wts/wkind lookup of the induced
	// first-read test: it must return the timestamp and writer kind of the
	// latest global write to the cell (0, writerNone when never written).
	// The sharded engine sets it on its per-shard profilers, whose own
	// wts/wkind stay nil: cross-shard writes are resolved against a merged
	// write-history index instead of live shadow tables (see shard.go).
	resolve func(trace.Addr) (uint64, uint8)

	threads map[trace.ThreadID]*threadState
	ctx     *contextTable
	out     *Profiles
	err     error

	// finished is set by Finish; later events are AfterFinish faults.
	finished bool
	// Memory-event sampling state for the Limits degradation: memory events
	// are numbered by memSeq and processed only when memSeq is a multiple of
	// memStride (1 = no sampling). nextEventCheck is the event count at
	// which MaxEvents next doubles the stride. All three are part of the
	// checkpointed state, keeping degraded runs deterministic across resume.
	memSeq         uint64
	memStride      uint64
	nextEventCheck uint64

	// depthHWM is the deepest shadow stack observed across all threads —
	// maintained unconditionally (one compare per call event) and published
	// through obs. Not checkpointed: a resumed run restarts the high-water
	// mark from its restored stacks.
	depthHWM int
	// obs holds the pre-resolved metric handles, nil when Config.Obs is nil.
	obs *profilerObs
}

// NewProfiler returns a profiler for traces built against syms.
func NewProfiler(syms *trace.SymbolTable, cfg Config) *Profiler {
	limit := cfg.CounterLimit
	if limit == 0 {
		limit = practicalInfinity
	}
	p := &Profiler{
		cfg: cfg,
		// count starts at 1, not 0: timestamp 0 is the "never accessed"
		// sentinel (Fig. 8, line 6), so operations of the very first
		// scheduling quantum — before any call or thread switch has bumped
		// the counter — must not stamp 0 into the shadow memories, or a
		// write there would be invisible to the induced first-read test.
		count:   1,
		syms:    syms,
		limit:   limit,
		threads: make(map[trace.ThreadID]*threadState),
		out: &Profiles{
			Symbols: syms,
			ByKey:   make(map[Key]*Profile),
		},
	}
	p.obs = newProfilerObs(cfg.Obs)
	p.memStride = 1
	if cfg.Limits.MaxEvents > 0 {
		p.nextEventCheck = uint64(cfg.Limits.MaxEvents)
	}
	if cfg.ThreadInput || cfg.ExternalInput {
		p.wts = shadow.New[uint64]()
		p.wkind = shadow.New[uint8]()
	}
	if cfg.ContextSensitive {
		p.ctx = newContextTable()
		p.out.ByContext = make(map[ContextKey]*Profile)
	}
	return p
}

// Run profiles a merged trace with the given configuration.
func Run(tr *trace.Trace, cfg Config) (*Profiles, error) {
	p := NewProfiler(tr.Symbols, cfg)
	if err := p.Feed(tr); err != nil {
		return nil, err
	}
	return p.Finish()
}

// Feed processes all events of tr in order.
func (p *Profiler) Feed(tr *trace.Trace) error {
	for i := range tr.Events {
		if err := p.HandleEvent(&tr.Events[i]); err != nil {
			return fmt.Errorf("core: event %d (%s): %w", i, tr.Events[i].String(), err)
		}
	}
	return nil
}

// HandleEvent processes one event. Malformed events are handled per the
// configured FaultPolicy; Limits degradation (depth capping, memory-event
// sampling) applies under every policy.
func (p *Profiler) HandleEvent(ev *trace.Event) error {
	if p.err != nil {
		return p.err
	}
	if p.finished {
		return p.fault(&p.out.Drops.AfterFinish, "event %s fed after Finish", ev.Kind)
	}
	p.out.Events++
	if p.obs != nil {
		p.obs.countEvent(ev.Kind)
	}
	p.checkLimits()
	if ev.Thread < 0 {
		return p.fault(&p.out.Drops.BadThread, "negative thread id %d on %s event", ev.Thread, ev.Kind)
	}
	switch ev.Kind {
	case trace.KindCall:
		return p.onCall(ev)
	case trace.KindReturn:
		return p.onReturn(ev)
	case trace.KindSwitchThread:
		return p.tick()
	case trace.KindRead:
		t := p.thread(ev.Thread)
		t.cost = ev.Cost
		if p.sampledOut() {
			return nil
		}
		ev.Cells(func(a trace.Addr) { p.onRead(t, a) })
		return nil
	case trace.KindWrite:
		t := p.thread(ev.Thread)
		t.cost = ev.Cost
		if p.sampledOut() {
			return nil
		}
		ev.Cells(func(a trace.Addr) { p.onWrite(t, a) })
		return nil
	case trace.KindUserToKernel:
		// Read memory accesses by the operating system are regarded as read
		// operations implicitly performed by the thread, as if the system
		// call were a normal subroutine (Fig. 9).
		t := p.thread(ev.Thread)
		t.cost = ev.Cost
		if p.sampledOut() {
			return nil
		}
		ev.Cells(func(a trace.Addr) { p.onRead(t, a) })
		return nil
	case trace.KindKernelToUser:
		return p.onKernelToUser(ev)
	case trace.KindAcquire, trace.KindRelease:
		// Synchronization events are instrumentation for the race-detection
		// comparators; the profiler ignores them (the paper's simplifying
		// assumption of not considering memory accesses due to semaphore
		// operations).
		p.thread(ev.Thread).cost = ev.Cost
		return nil
	default:
		return p.fault(&p.out.Drops.InvalidKind, "unhandled event kind %v", ev.Kind)
	}
}

// checkLimits updates the sampling degradation state from the MaxEvents and
// MaxMemoryBytes limits. Both triggers depend only on the event count and on
// deterministic size estimates, so a resumed run degrades at exactly the
// same events as an uninterrupted one.
func (p *Profiler) checkLimits() {
	if p.nextEventCheck > 0 && uint64(p.out.Events) > p.nextEventCheck && p.memStride < maxMemStride {
		p.memStride *= 2
		p.nextEventCheck *= 2
	}
	if p.cfg.Limits.MaxMemoryBytes > 0 && p.out.Events%memCheckInterval == 0 &&
		p.memStride < maxMemStride && p.liveBytesEstimate() > p.cfg.Limits.MaxMemoryBytes {
		p.memStride *= 2
	}
}

// sampledOut numbers the memory event and reports whether the sampling
// degradation sheds it. Shed events still updated their thread's cost (the
// caller does that first), so costs stay exact; only metric values degrade.
func (p *Profiler) sampledOut() bool {
	p.memSeq++
	if p.memStride > 1 && p.memSeq%p.memStride != 0 {
		p.out.Drops.SampledOut++
		return true
	}
	return false
}

// liveBytesEstimate is the deterministic variant of SpaceBytes used by the
// MaxMemoryBytes limit: it sizes stacks by length instead of capacity, so a
// checkpoint-resumed run (whose slice capacities differ) makes identical
// sampling decisions.
func (p *Profiler) liveBytesEstimate() int64 {
	var total int64
	if p.wts != nil {
		total += p.wts.SizeBytes(8)
		total += p.wkind.SizeBytes(1)
	}
	const frameSize = 8 * 8
	for _, t := range p.threads {
		total += t.ts.SizeBytes(8)
		total += int64(len(t.stack)) * frameSize
	}
	const statsSize = 5 * 8
	for _, prof := range p.out.ByKey {
		total += int64(len(prof.DRMSPoints)+len(prof.RMSPoints)) * (statsSize + 16)
	}
	return total
}

// Finish completes the run: any still-pending activations are collected as
// if they returned at their thread's last observed cost, and the profiles
// are returned. The profiler must not be fed further events afterwards.
func (p *Profiler) Finish() (*Profiles, error) {
	if p.err != nil {
		return nil, p.err
	}
	ids := make([]trace.ThreadID, 0, len(p.threads))
	for id := range p.threads {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		t := p.threads[id]
		for len(t.stack) > 0 {
			p.popFrame(t, t.cost)
		}
	}
	if p.err != nil {
		return nil, p.err
	}
	if p.ctx != nil {
		p.out.Contexts = p.ctx.metas()
	}
	p.finished = true
	p.PublishObs()
	return p.out, nil
}

func (p *Profiler) thread(id trace.ThreadID) *threadState {
	t, ok := p.threads[id]
	if !ok {
		t = &threadState{id: id, ts: shadow.New[uint64]()}
		p.threads[id] = t
	}
	return t
}

// tick increments the global counter, renumbering timestamps if the counter
// limit is reached.
func (p *Profiler) tick() error {
	if p.count+1 >= p.limit {
		if err := p.renumber(); err != nil {
			p.err = err
			return err
		}
	}
	p.count++
	return nil
}

func (p *Profiler) onCall(ev *trace.Event) error {
	if ev.Routine >= trace.RoutineID(p.syms.Len()) {
		return p.fault(&p.out.Drops.UnknownRoutine, "call of unknown routine id %d (symbol table has %d)", ev.Routine, p.syms.Len())
	}
	if err := p.tick(); err != nil {
		return err
	}
	p.pushCall(ev)
	return nil
}

// pushCall pushes the activation frame of a call event at the current
// counter value (the caller has already ticked — or, on the sharded path,
// assigned — the counter). Depth-limit overflow accounting included.
func (p *Profiler) pushCall(ev *trace.Event) {
	t := p.thread(ev.Thread)
	t.cost = ev.Cost
	if max := p.cfg.Limits.MaxDepth; max > 0 && (t.overflow > 0 || len(t.stack) >= max) {
		// Depth limit hit: the frame is not pushed. The overflow counter
		// pairs the dropped call with its future return.
		t.overflow++
		p.out.Drops.DepthOverflow++
		return
	}
	f := frame{
		rtn:       ev.Routine,
		ts:        p.count,
		entryCost: ev.Cost,
	}
	if p.ctx != nil {
		parent := p.ctx.root
		if len(t.stack) > 0 {
			parent = t.stack[len(t.stack)-1].ctx
		}
		f.ctx = p.ctx.child(parent, ev.Routine)
	}
	t.stack = append(t.stack, f)
	if len(t.stack) > p.depthHWM {
		p.depthHWM = len(t.stack)
	}
}

func (p *Profiler) onReturn(ev *trace.Event) error {
	t := p.thread(ev.Thread)
	t.cost = ev.Cost
	if t.overflow > 0 {
		// Return of a call dropped by the depth limit.
		t.overflow--
		return nil
	}
	if len(t.stack) == 0 {
		return p.fault(&p.out.Drops.ReturnWithoutCall, "return on thread %d with empty shadow stack", ev.Thread)
	}
	p.popFrame(t, ev.Cost)
	return p.err
}

// popFrame collects the topmost activation of t at return cost retCost and
// folds its partial counters into its parent, preserving Invariant 2.
func (p *Profiler) popFrame(t *threadState, retCost uint64) {
	top := len(t.stack) - 1
	f := &t.stack[top]
	if f.first < 0 || f.indThread < 0 || f.indExternal < 0 || f.rms < 0 {
		p.err = fmt.Errorf("core: negative partial metric at return of %s on thread %d (first=%d indThread=%d indExternal=%d rms=%d): invariant violated",
			p.syms.Name(f.rtn), t.id, f.first, f.indThread, f.indExternal, f.rms)
		return
	}
	key := Key{Routine: f.rtn, Thread: t.id}
	prof := p.out.ByKey[key]
	if prof == nil {
		prof = newProfile(f.rtn, t.id)
		prof.maxPoints = p.cfg.MaxPointsPerProfile
		p.out.ByKey[key] = prof
	}
	cost := uint64(0)
	if retCost > f.entryCost {
		cost = retCost - f.entryCost
	}
	a := activation{
		first:       uint64(f.first),
		indThread:   uint64(f.indThread),
		indExternal: uint64(f.indExternal),
		rms:         uint64(f.rms),
		cost:        cost,
	}
	prof.collect(a)
	if p.ctx != nil {
		ckey := ContextKey{Context: f.ctx.id, Thread: t.id}
		cprof := p.out.ByContext[ckey]
		if cprof == nil {
			cprof = newProfile(f.rtn, t.id)
			cprof.maxPoints = p.cfg.MaxPointsPerProfile
			p.out.ByContext[ckey] = cprof
		}
		cprof.collect(a)
	}
	if p.cfg.OnActivation != nil {
		p.cfg.OnActivation(a.record(f.rtn, t.id))
	}
	if top > 0 {
		parent := &t.stack[top-1]
		parent.first += f.first
		parent.indThread += f.indThread
		parent.indExternal += f.indExternal
		parent.rms += f.rms
	}
	t.stack = t.stack[:top]
}

// onRead implements the read(ℓ,t) handler of Fig. 8, extended to classify
// the source of induced first-reads and to maintain the rms in parallel.
func (p *Profiler) onRead(t *threadState, a trace.Addr) {
	tsSlot := t.ts.Slot(a)
	old := *tsSlot
	*tsSlot = p.count

	if len(t.stack) == 0 {
		return
	}
	top := &t.stack[len(t.stack)-1]
	firstAccess := old < top.ts

	induced := false
	if p.wts != nil {
		if w := p.wts.Load(a); old < w {
			// The location was written, by some thread different from t or
			// by the kernel, since t's latest access (a write by t itself
			// would have set ts_t[ℓ] = wts[ℓ]).
			switch p.wkind.Load(a) {
			case writerThread:
				if p.cfg.ThreadInput {
					induced = true
					top.indThread++
				}
			case writerKernel:
				if p.cfg.ExternalInput {
					induced = true
					top.indExternal++
				}
			}
		}
	} else if p.resolve != nil {
		// Sharded path: the latest global write comes from the merged
		// cross-shard write-history index instead of live shadow tables.
		// The index reconstructs wts/wkind exactly (latest write strictly
		// before the current event in trace order), so the test below is
		// the same test as above.
		if w, kind := p.resolve(a); old < w {
			switch kind {
			case writerThread:
				if p.cfg.ThreadInput {
					induced = true
					top.indThread++
				}
			case writerKernel:
				if p.cfg.ExternalInput {
					induced = true
					top.indExternal++
				}
			}
		}
	}
	if !induced && firstAccess {
		// First read for the topmost activation; charge it and discharge
		// the deepest ancestor that had already accessed ℓ (Fig. 8, lines
		// 4-10).
		top.first++
		if old != 0 {
			if i, ok := deepestAncestor(t.stack, old); ok {
				t.stack[i].first--
			}
		}
	}
	if firstAccess {
		// rms bookkeeping (aprof [5]): a first access that is a read.
		top.rms++
		if old != 0 {
			if i, ok := deepestAncestor(t.stack, old); ok {
				t.stack[i].rms--
			}
		}
	}
}

// onWrite implements the write(ℓ,t) handler of Fig. 8. Writes mark the cell
// as produced by the thread: they update the local timestamp (so later local
// reads are not first accesses) and the global write timestamp (so reads by
// *other* threads become induced first-reads).
func (p *Profiler) onWrite(t *threadState, a trace.Addr) {
	t.ts.Store(a, p.count)
	if p.wts != nil {
		p.wts.Store(a, p.count)
		p.wkind.Store(a, writerThread)
	}
}

// onKernelToUser implements the kernelToUser handler of Fig. 9: the counter
// is incremented once and every buffer cell receives a global write
// timestamp larger than any thread-specific timestamp, forcing the induced
// first-read test to succeed on subsequent reads.
func (p *Profiler) onKernelToUser(ev *trace.Event) error {
	if err := p.tick(); err != nil {
		return err
	}
	p.kernelFill(ev)
	return nil
}

// kernelFill is the post-tick body of the kernelToUser handler, shared with
// the sharded path (which assigns the counter instead of ticking).
func (p *Profiler) kernelFill(ev *trace.Event) {
	t := p.thread(ev.Thread)
	t.cost = ev.Cost
	if p.wts == nil {
		return
	}
	// The counter tick is kept even when the event is sampled out: the
	// global count mirrors the event structure, not the metric state.
	if p.sampledOut() {
		return
	}
	ev.Cells(func(a trace.Addr) {
		p.wts.Store(a, p.count)
		p.wkind.Store(a, writerKernel)
	})
}

// deepestAncestor returns the maximum index i such that stack[i].ts <= ts.
// Stack timestamps are strictly increasing, so this is a binary search —
// the O(log d_t) step of the algorithm.
func deepestAncestor(stack []frame, ts uint64) (int, bool) {
	// sort.Search finds the first index with stack[i].ts > ts.
	i := sort.Search(len(stack), func(i int) bool { return stack[i].ts > ts })
	if i == 0 {
		return 0, false
	}
	return i - 1, true
}

// SpaceBytes estimates the live memory of the profiler's data structures:
// shadow memories, shadow stacks, and collected profiles. Used by the
// comparator harness for the space-overhead experiments.
func (p *Profiler) SpaceBytes() int64 {
	var total int64
	if p.wts != nil {
		total += p.wts.SizeBytes(8)
		total += p.wkind.SizeBytes(1)
	}
	const frameSize = 8 * 8
	for _, t := range p.threads {
		total += t.ts.SizeBytes(8)
		total += int64(cap(t.stack)) * frameSize
	}
	const statsSize = 5 * 8
	const profileBase = 16 * 8
	for _, prof := range p.out.ByKey {
		total += profileBase
		total += int64(len(prof.DRMSPoints)+len(prof.RMSPoints)) * (statsSize + 16)
	}
	return total
}

// Count exposes the current global counter value (for tests).
func (p *Profiler) Count() uint64 { return p.count }

// Symbols returns the symbol table the profiler was built against.
func (p *Profiler) Symbols() *trace.SymbolTable { return p.syms }
