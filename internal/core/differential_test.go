package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"aprof/internal/trace"
)

// randomTrace generates a random multi-threaded trace with kernel I/O,
// nested calls and shared addresses — the adversarial input for the
// differential tests.
func randomTrace(rng *rand.Rand, events int) *trace.Trace {
	b := trace.NewBuilder()
	numThreads := 1 + rng.Intn(4)
	type tstate struct {
		tb    *trace.ThreadBuilder
		depth int
	}
	threads := make([]*tstate, numThreads)
	for i := range threads {
		threads[i] = &tstate{tb: b.Thread(trace.ThreadID(i + 1))}
	}
	routines := []string{"main", "f", "g", "h", "leaf", "worker"}
	const addrSpace = 24
	for i := 0; i < events; i++ {
		t := threads[rng.Intn(numThreads)]
		addr := trace.Addr(rng.Intn(addrSpace))
		size := uint32(1 + rng.Intn(3))
		switch op := rng.Intn(10); {
		case op < 2: // call
			if t.depth < 6 {
				t.tb.Call(routines[rng.Intn(len(routines))])
				t.depth++
			}
		case op < 3: // return
			if t.depth > 0 {
				t.tb.Ret()
				t.depth--
			}
		case op < 6: // read
			t.tb.Read(addr, size)
		case op < 8: // write
			t.tb.Write(addr, size)
		case op < 9: // kernel fills buffer
			t.tb.SysRead(addr, size)
		default: // kernel drains buffer
			t.tb.SysWrite(addr, size)
		}
		if rng.Intn(20) == 0 {
			t.tb.Work(uint64(rng.Intn(50)))
		}
	}
	return b.Trace()
}

// profileSummary flattens a Profiles value for comparison.
type profileSummary struct {
	Key             Key
	Calls           uint64
	SumRMS          uint64
	SumDRMS         uint64
	FirstReads      uint64
	InducedThread   uint64
	InducedExternal uint64
	DRMSPoints      string
	RMSPoints       string
}

func summarize(ps *Profiles) []profileSummary {
	out := make([]profileSummary, 0, len(ps.ByKey))
	for k, p := range ps.ByKey {
		out = append(out, profileSummary{
			Key:             k,
			Calls:           p.Calls,
			SumRMS:          p.SumRMS,
			SumDRMS:         p.SumDRMS,
			FirstReads:      p.FirstReads,
			InducedThread:   p.InducedThread,
			InducedExternal: p.InducedExternal,
			DRMSPoints:      pointsString(p.DRMSPoints),
			RMSPoints:       pointsString(p.RMSPoints),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Routine != out[j].Key.Routine {
			return out[i].Key.Routine < out[j].Key.Routine
		}
		return out[i].Key.Thread < out[j].Key.Thread
	})
	return out
}

func pointsString(points map[uint64]*CostStats) string {
	type kv struct {
		n  uint64
		st CostStats
	}
	flat := make([]kv, 0, len(points))
	for n, st := range points {
		flat = append(flat, kv{n, *st})
	}
	sort.Slice(flat, func(i, j int) bool { return flat[i].n < flat[j].n })
	s := ""
	for _, e := range flat {
		s += fmt.Sprintf("(%d:n=%d max=%d min=%d sum=%d)", e.n, e.st.Count, e.st.Max, e.st.Min, e.st.Sum)
	}
	return s
}

var allConfigs = []struct {
	name string
	cfg  Config
}{
	{"full", Config{ThreadInput: true, ExternalInput: true}},
	{"thread-only", Config{ThreadInput: true}},
	{"external-only", Config{ExternalInput: true}},
	{"rms-only", Config{}},
}

// TestDifferentialAgainstNaive cross-checks the timestamping algorithm
// against the set-based oracle on random traces, for every input-source
// configuration.
func TestDifferentialAgainstNaive(t *testing.T) {
	for _, tc := range allConfigs {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(0); seed < 40; seed++ {
				rng := rand.New(rand.NewSource(seed))
				tr := randomTrace(rng, 200+rng.Intn(600))
				if err := tr.Validate(); err != nil {
					t.Fatalf("seed %d: invalid generated trace: %v", seed, err)
				}
				fast, err := Run(tr, tc.cfg)
				if err != nil {
					t.Fatalf("seed %d: Run: %v", seed, err)
				}
				slow, err := RunNaive(tr, tc.cfg)
				if err != nil {
					t.Fatalf("seed %d: RunNaive: %v", seed, err)
				}
				fs, ss := summarize(fast), summarize(slow)
				if !reflect.DeepEqual(fs, ss) {
					t.Fatalf("seed %d: profiles diverge\nfast: %+v\nnaive: %+v", seed, fs, ss)
				}
			}
		})
	}
}

// TestDifferentialWithRenumbering repeats the differential test with a tiny
// counter limit so that the run performs many renumberings; results must be
// identical to the oracle (which has no counter at all).
func TestDifferentialWithRenumbering(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		tr := randomTrace(rng, 2000)
		cfg := DefaultConfig()
		// Large enough for the live timestamps of the random traces (a few
		// threads over a 24-cell address space), small enough that each run
		// renumbers several times.
		cfg.CounterLimit = 300
		fast, err := Run(tr, cfg)
		if err != nil {
			t.Fatalf("seed %d: Run: %v", seed, err)
		}
		if fast.Renumberings == 0 {
			t.Fatalf("seed %d: expected renumberings with limit 64", seed)
		}
		slow, err := RunNaive(tr, DefaultConfig())
		if err != nil {
			t.Fatalf("seed %d: RunNaive: %v", seed, err)
		}
		fs, ss := summarize(fast), summarize(slow)
		if !reflect.DeepEqual(fs, ss) {
			t.Fatalf("seed %d: renumbered run diverges from oracle\nfast: %+v\nnaive: %+v", seed, fs, ss)
		}
	}
}

// TestRenumberingLimitTooSmall verifies that an impossible counter limit is
// reported as an error instead of corrupting timestamps.
func TestRenumberingLimitTooSmall(t *testing.T) {
	b := trace.NewBuilder()
	tb := b.Thread(1)
	// 10 nested pending activations hold 10 live stack timestamps; a limit
	// of 4 cannot accommodate them.
	for i := 0; i < 10; i++ {
		tb.Call("f")
		tb.Write1(trace.Addr(uint64(i)))
		tb.Read1(trace.Addr(uint64(i)))
	}
	tr := b.Trace()
	// Drop the dangling returns so the stack stays deep during the run.
	var kept []trace.Event
	for _, ev := range tr.Events {
		if ev.Kind == trace.KindReturn {
			continue
		}
		kept = append(kept, ev)
	}
	tr.Events = kept

	cfg := DefaultConfig()
	cfg.CounterLimit = 4
	if _, err := Run(tr, cfg); err == nil {
		t.Fatal("expected an error for counter limit smaller than live timestamps")
	}
}

// TestPerActivationParity compares the exact sequence of collected
// activations between the two implementations.
func TestPerActivationParity(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(7000 + seed))
		tr := randomTrace(rng, 500)

		var fastRecs, slowRecs []ActivationRecord
		cfgFast := DefaultConfig()
		cfgFast.OnActivation = func(r ActivationRecord) { fastRecs = append(fastRecs, r) }
		if _, err := Run(tr, cfgFast); err != nil {
			t.Fatal(err)
		}
		cfgSlow := DefaultConfig()
		cfgSlow.OnActivation = func(r ActivationRecord) { slowRecs = append(slowRecs, r) }
		if _, err := RunNaive(tr, cfgSlow); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fastRecs, slowRecs) {
			t.Fatalf("seed %d: activation streams diverge (%d vs %d records)", seed, len(fastRecs), len(slowRecs))
		}
		for _, r := range fastRecs {
			if r.DRMS < r.RMS {
				t.Errorf("seed %d: drms %d < rms %d", seed, r.DRMS, r.RMS)
			}
		}
	}
}

// TestMonotoneConfigs checks that enabling more input sources never
// decreases any activation's drms (config monotonicity).
func TestMonotoneConfigs(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(9000 + seed))
		tr := randomTrace(rng, 400)
		drmsOf := func(cfg Config) []uint64 {
			var out []uint64
			cfg.OnActivation = func(r ActivationRecord) { out = append(out, r.DRMS) }
			if _, err := Run(tr, cfg); err != nil {
				t.Fatal(err)
			}
			return out
		}
		full := drmsOf(Config{ThreadInput: true, ExternalInput: true})
		threadOnly := drmsOf(Config{ThreadInput: true})
		extOnly := drmsOf(Config{ExternalInput: true})
		none := drmsOf(Config{})
		if len(full) != len(none) || len(threadOnly) != len(extOnly) {
			t.Fatalf("seed %d: activation count mismatch across configs", seed)
		}
		for i := range full {
			if threadOnly[i] > full[i] || extOnly[i] > full[i] || none[i] > threadOnly[i] || none[i] > extOnly[i] {
				t.Errorf("seed %d: activation %d: non-monotone drms: none=%d thread=%d ext=%d full=%d",
					seed, i, none[i], threadOnly[i], extOnly[i], full[i])
			}
		}
	}
}
