package core

import (
	"fmt"
	"sort"

	"aprof/internal/trace"
)

// renumber performs the periodical global renumbering of timestamps (§3.2).
// Counter overflows alter the partial ordering between memory timestamps and
// yield wrong input sizes, so when the counter reaches its limit every live
// timestamp — ts_t[ℓ] for every thread t and location ℓ, wts[ℓ] for every
// location ℓ, and S_t[i].ts for every pending activation — is remapped to a
// dense range 1..k preserving the full order, *including equalities*:
// ts_t[ℓ] == wts[ℓ] distinguishes a thread's own latest write from a foreign
// one, so the same rank function must be applied to every table.
func (p *Profiler) renumber() error {
	vals := make([]uint64, 0, 1024)
	collect := func(v uint64) {
		if v != 0 {
			vals = append(vals, v)
		}
	}
	for _, t := range p.threads {
		for i := range t.stack {
			collect(t.stack[i].ts)
		}
		t.ts.ForEach(func(v uint64) bool { return v == 0 }, func(_ trace.Addr, v uint64) { collect(v) })
	}
	if p.wts != nil {
		p.wts.ForEach(func(v uint64) bool { return v == 0 }, func(_ trace.Addr, v uint64) { collect(v) })
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	vals = dedupeSorted(vals)

	rank := func(v uint64) uint64 {
		if v == 0 {
			return 0
		}
		i := sort.Search(len(vals), func(i int) bool { return vals[i] >= v })
		// v was collected, so it is present.
		return uint64(i) + 1
	}
	for _, t := range p.threads {
		for i := range t.stack {
			t.stack[i].ts = rank(t.stack[i].ts)
		}
		t.ts.UpdateAll(rank)
	}
	if p.wts != nil {
		p.wts.UpdateAll(rank)
	}
	// Ranks are 1..len(vals); the counter resumes past them (and never below
	// 1, which would let fresh timestamps collide with the zero sentinel).
	p.count = uint64(len(vals)) + 1
	p.out.Renumberings++
	if p.count+1 >= p.limit {
		return fmt.Errorf("core: counter limit %d too small: %d timestamps live after renumbering", p.limit, p.count)
	}
	return nil
}

func dedupeSorted(vals []uint64) []uint64 {
	out := vals[:0]
	for i, v := range vals {
		if i == 0 || v != vals[i-1] {
			out = append(out, v)
		}
	}
	return out
}
