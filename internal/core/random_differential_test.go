package core

import (
	"reflect"
	"testing"

	"aprof/internal/trace"
)

// TestDifferentialRenumberingRandom cross-checks the optimized profiler
// against the set-based oracle on randomized traces under aggressive
// counter limits, forcing the §3.2 renumbering machinery to fire constantly
// (down to a limit barely above the deepest possible live-timestamp set).
// The oracle has no counter at all, so agreement shows renumbering is
// invisible to the computed metrics.
func TestDifferentialRenumberingRandom(t *testing.T) {
	// The lowest limit sits just above the largest live-timestamp set a
	// 4-thread/16-cell trace can hold (per-thread shadow cells + global
	// write timestamps + stack frames), so renumbering fires continuously.
	limits := []uint64{192, 257, 1 << 12}
	for _, limit := range limits {
		for seed := int64(0); seed < 12; seed++ {
			tr := trace.Random(trace.RandomConfig{Seed: seed, Ops: 800, Threads: 4, Cells: 16})
			cfg := DefaultConfig()
			cfg.CounterLimit = limit
			fast, err := Run(tr, cfg)
			if err != nil {
				t.Fatalf("limit=%d seed=%d: Run: %v", limit, seed, err)
			}
			if limit <= 257 && fast.Renumberings == 0 {
				t.Fatalf("limit=%d seed=%d: expected renumberings, got none", limit, seed)
			}
			slow, err := RunNaive(tr, cfg)
			if err != nil {
				t.Fatalf("limit=%d seed=%d: RunNaive: %v", limit, seed, err)
			}
			if !reflect.DeepEqual(summarize(fast), summarize(slow)) {
				t.Errorf("limit=%d seed=%d: renumbering profiler diverges from oracle", limit, seed)
			}
		}
	}
}

// TestPipelineDifferentialRenumbering drives the randomized traces through
// Run under renumbering pressure for every input-source configuration.
func TestPipelineDifferentialRenumbering(t *testing.T) {
	for _, tc := range allConfigs {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.CounterLimit = 128
			for seed := int64(20); seed < 26; seed++ {
				tr := trace.Random(trace.RandomConfig{Seed: seed, Ops: 600})
				fast, err := Run(tr, cfg)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				slow, err := RunNaive(tr, cfg)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if !reflect.DeepEqual(summarize(fast), summarize(slow)) {
					t.Errorf("seed %d: divergence under CounterLimit=128", seed)
				}
			}
		})
	}
}
