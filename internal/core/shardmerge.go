package core

// The deterministic merge layer of the sharded engine: profile union,
// calling-context renumbering, and checkpointing. Everything here exists to
// uphold one invariant — for every shard count, the merged output and every
// checkpoint are byte-identical to the sequential profiler's.

import (
	"fmt"
	"io"
	"sort"
	"time"

	"aprof/internal/trace"
)

// Finish completes the sharded run and returns the merged profiles.
//
// Per-shard profiles need no arithmetic merging: profiles are keyed by
// (routine, thread) and threads are partitioned across shards, so the union
// of the shard maps is exactly the sequential map — each *Profile was built
// by the sequential collect path from the same activation sequence. The only
// state that needs real merging is the calling-context tree (mergeContexts),
// whose node ids are assigned per shard and must be renumbered into the
// sequential creation order.
func (sp *ShardedProfiler) Finish() (*Profiles, error) {
	if sp.err != nil {
		return nil, sp.err
	}
	if sp.finished {
		return nil, fmt.Errorf("core: Finish called twice on sharded profiler")
	}
	// Per-shard Finish pops each shard's pending activations at their
	// threads' final costs. The pop order across threads never affects
	// output — every profile is thread-keyed, so it observes only its own
	// thread's completion order, which is the sequential one.
	minis := make([]*Profiles, len(sp.shards))
	for i, w := range sp.shards {
		out, err := w.p.Finish()
		if err != nil {
			sp.err = err
			return nil, err
		}
		minis[i] = out
	}
	sp.finished = true

	out := &Profiles{
		Symbols:      sp.syms,
		ByKey:        make(map[Key]*Profile),
		Events:       sp.events,
		Renumberings: sp.renumberings,
		Drops:        sp.drops,
	}
	for _, m := range minis {
		for k, prof := range m.ByKey {
			out.ByKey[k] = prof
		}
		out.Drops.Merge(&m.Drops)
	}
	if sp.cfg.ContextSensitive {
		sp.mergeContexts(out, minis)
	}
	sp.obs.publishFinish(sp)
	return out, nil
}

// ctxBirth records the creation of one shard-local calling-context node, at
// the global trace position of the call event that created it.
type ctxBirth struct {
	pos   int64
	shard int
	node  *contextNode
}

// mergeContexts renumbers the shard-local calling-context trees into one
// global tree with sequential node ids, and rekeys the ByContext profiles.
//
// Why replaying births in position order reproduces the sequential ids: the
// sequential table assigns ids in order of first creation, and a context
// path is created at the first call event reaching it (recursion-collapsed).
// That event is owned by exactly one shard, which created its local node at
// the same position; every other shard that reaches the same path does so
// only at later positions. Replaying all local births sorted by position
// through one fresh table therefore creates each distinct path at its
// sequential creation rank — child() deduplicates the later births — and
// ids are creation ranks in both engines.
func (sp *ShardedProfiler) mergeContexts(out *Profiles, minis []*Profiles) {
	var births []ctxBirth
	remap := make([]map[*contextNode]*contextNode, len(sp.shards))
	global := newContextTable()
	for i, w := range sp.shards {
		// w.ctxBirths[k] is the birth position of local node id k+1: pass B
		// appends one entry per call event that grew the local table, and
		// the table appends nodes in creation order after the root.
		remap[i] = map[*contextNode]*contextNode{w.p.ctx.root: global.root}
		for k, pos := range w.ctxBirths {
			births = append(births, ctxBirth{pos: pos, shard: i, node: w.p.ctx.nodes[k+1]})
		}
	}
	sort.Slice(births, func(i, j int) bool { return births[i].pos < births[j].pos })
	for _, b := range births {
		// The local parent was created strictly earlier in the same shard
		// (or is the root), so it is already mapped.
		gp := remap[b.shard][b.node.parent]
		remap[b.shard][b.node] = global.child(gp, b.node.rtn)
	}
	out.ByContext = make(map[ContextKey]*Profile)
	for i, m := range minis {
		local := sp.shards[i].p.ctx
		for key, prof := range m.ByContext {
			g := remap[i][local.nodes[key.Context]]
			out.ByContext[ContextKey{Context: g.id, Thread: key.Thread}] = prof
		}
	}
	out.Contexts = global.metas()
}

// WriteCheckpoint serializes the sharded engine's state in the sequential
// APCK format. The engine's state at a window boundary is definitionally the
// sequential profiler's state at the same event offset, so the document —
// and the file bytes — are identical to the sequential WriteCheckpoint at
// that offset, making checkpoints freely interchangeable between the two
// paths (sharded runs resume sequentially and vice versa).
func (sp *ShardedProfiler) WriteCheckpoint(w io.Writer, stream StreamState) error {
	start := time.Now()
	if sp.err != nil {
		return fmt.Errorf("core: cannot checkpoint a failed profiler: %w", sp.err)
	}
	if sp.finished {
		return fmt.Errorf("core: cannot checkpoint after Finish")
	}
	if sp.cfg.ContextSensitive {
		return fmt.Errorf("%w: context-sensitive profiling", ErrCheckpointUnsupported)
	}
	drops := sp.drops
	threads := make(map[trace.ThreadID]*threadState)
	byKey := make(map[Key]*Profile)
	for _, sw := range sp.shards {
		d := sw.p.out.Drops
		drops.Merge(&d)
		for id, t := range sw.p.threads {
			threads[id] = t
		}
		for k, prof := range sw.p.out.ByKey {
			byKey[k] = prof
		}
	}
	data := checkpointData{
		Cfg:          fingerprint(sp.cfg),
		Count:        sp.count,
		Symbols:      sp.syms.Names(),
		Threads:      dumpThreadsCkpt(threads),
		Profiles:     dumpProfilesCkpt(byKey),
		Events:       sp.events,
		Renumberings: sp.renumberings,
		Drops:        drops,
		MemSeq:       sp.memSeq,
		// CanShard excludes the event/memory limits, so the sampling
		// machinery is pinned at its initial state — the values the
		// sequential profiler would hold.
		MemStride:      1,
		NextEventCheck: 0,
		Stream:         stream,
	}
	if sp.hasWts {
		data.WTS, data.WKind = sp.dumpBaseWrites()
	}
	if err := encodeCheckpoint(w, &data); err != nil {
		return err
	}
	sp.obs.observeCkptWrite(time.Since(start))
	return nil
}

// dumpBaseWrites flattens the write mirror into the checkpoint cell dumps,
// sorted by address like the sequential table dumps. The mirror holds
// exactly the non-zero cells of the sequential wts/wkind tables at the
// window boundary: every recorded write carries a non-zero count (the
// counter starts at 1) and a non-none kind.
func (sp *ShardedProfiler) dumpBaseWrites() ([]ckptCell, []ckptCell8) {
	n := 0
	for _, m := range sp.baseWrites {
		n += len(m)
	}
	wts := make([]ckptCell, 0, n)
	wkind := make([]ckptCell8, 0, n)
	for _, m := range sp.baseWrites {
		for a, rec := range m {
			wts = append(wts, ckptCell{Addr: uint64(a), Val: rec.count})
			wkind = append(wkind, ckptCell8{Addr: uint64(a), Val: rec.kind})
		}
	}
	sort.Slice(wts, func(i, j int) bool { return wts[i].Addr < wts[j].Addr })
	sort.Slice(wkind, func(i, j int) bool { return wkind[i].Addr < wkind[j].Addr })
	return wts, wkind
}

// Events returns the number of events processed so far (for stream
// accounting, mirroring the sequential out.Events).
func (sp *ShardedProfiler) Events() int { return sp.events }

// Count exposes the current global counter value (for tests).
func (sp *ShardedProfiler) Count() uint64 { return sp.count }

// Shards returns the number of shards (for tests and logging).
func (sp *ShardedProfiler) Shards() int { return len(sp.shards) }

// PublishObs refreshes the state-derived metrics of every shard's profiler.
// The profio pipeline calls it at window boundaries, mirroring the
// per-batch PublishObs of the sequential path.
func (sp *ShardedProfiler) PublishObs() {
	for _, w := range sp.shards {
		w.p.PublishObs()
	}
}
