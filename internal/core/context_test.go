package core

import (
	"strings"
	"testing"

	"aprof/internal/trace"
)

func contextConfig() Config {
	cfg := DefaultConfig()
	cfg.ContextSensitive = true
	return cfg
}

// TestContextSeparatesCallers checks the core motivation: one routine called
// from two different parents gets two contexts with independent cost plots,
// while the routine-level profile aggregates both.
func TestContextSeparatesCallers(t *testing.T) {
	b := trace.NewBuilder()
	tb := b.Thread(1)
	tb.Call("main")

	// From "query": scan reads large inputs.
	for i := 0; i < 4; i++ {
		tb.Call("query")
		tb.Call("scan")
		tb.Read(1000, uint32(100*(i+1)))
		tb.Work(uint64(200 * (i + 1)))
		tb.Ret()
		tb.Ret()
	}
	// From "update": scan reads small inputs.
	for i := 0; i < 3; i++ {
		tb.Call("update")
		tb.Call("scan")
		tb.Read(5000, uint32(i+1))
		tb.Work(uint64(2 * (i + 1)))
		tb.Ret()
		tb.Ret()
	}
	tb.Ret()

	ps, err := Run(b.Trace(), contextConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.Contexts) == 0 {
		t.Fatal("no contexts recorded")
	}

	viaQuery := ps.Context("main > query > scan")
	viaUpdate := ps.Context("main > update > scan")
	if viaQuery == nil || viaUpdate == nil {
		var paths []string
		for key := range ps.ByContext {
			paths = append(paths, ps.ContextPath(key.Context))
		}
		t.Fatalf("missing scan contexts; have %v", paths)
	}
	if viaQuery.Calls != 4 || viaUpdate.Calls != 3 {
		t.Errorf("calls = (%d, %d), want (4, 3)", viaQuery.Calls, viaUpdate.Calls)
	}
	if len(viaQuery.DRMSPoints) != 4 || len(viaUpdate.DRMSPoints) != 3 {
		t.Errorf("points = (%d, %d), want (4, 3)", len(viaQuery.DRMSPoints), len(viaUpdate.DRMSPoints))
	}
	// The routine-level profile aggregates both contexts.
	scan := ps.Routine("scan")
	if scan.Calls != 7 {
		t.Errorf("routine-level calls = %d, want 7", scan.Calls)
	}
	if viaQuery.SumDRMS+viaUpdate.SumDRMS != scan.SumDRMS {
		t.Errorf("context drms sums %d+%d != routine sum %d",
			viaQuery.SumDRMS, viaUpdate.SumDRMS, scan.SumDRMS)
	}
}

func TestContextPathsAndHotContexts(t *testing.T) {
	b := trace.NewBuilder()
	tb := b.Thread(1)
	tb.Call("main")
	tb.Call("a")
	tb.Call("b")
	tb.Work(500)
	tb.Ret()
	tb.Ret()
	tb.Call("b")
	tb.Work(10)
	tb.Ret()
	tb.Ret()

	ps, err := Run(b.Trace(), contextConfig())
	if err != nil {
		t.Fatal(err)
	}
	hot := ps.HotContexts(0)
	if len(hot) != 4 { // main, main>a, main>a>b, main>b
		t.Fatalf("got %d contexts: %+v", len(hot), hot)
	}
	if hot[0].Path != "main" {
		t.Errorf("hottest context = %q, want main (inclusive cost)", hot[0].Path)
	}
	// Top-2 limiting.
	if got := ps.HotContexts(2); len(got) != 2 {
		t.Errorf("HotContexts(2) returned %d entries", len(got))
	}
	for _, cp := range hot {
		if strings.Contains(cp.Path, ">") && !strings.HasPrefix(cp.Path, "main") {
			t.Errorf("path %q does not start at the thread root", cp.Path)
		}
	}
}

// TestContextRecursionCollapsed checks that direct recursion re-uses the
// parent context instead of materializing one node per depth.
func TestContextRecursionCollapsed(t *testing.T) {
	b := trace.NewBuilder()
	tb := b.Thread(1)
	tb.Call("main")
	tb.Call("rec")
	for d := 0; d < 50; d++ {
		tb.Call("rec")
	}
	for d := 0; d < 51; d++ {
		tb.Ret()
	}
	tb.Ret()

	ps, err := Run(b.Trace(), contextConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Contexts: root, main, main>rec — recursion collapsed.
	if len(ps.Contexts) != 3 {
		t.Fatalf("got %d contexts, want 3 (recursion must collapse)", len(ps.Contexts))
	}
	rec := ps.Context("main > rec")
	if rec == nil || rec.Calls != 51 {
		t.Errorf("collapsed recursive context = %+v, want 51 calls", rec)
	}
}

// TestContextDisabledByDefault ensures plain runs carry no context data.
func TestContextDisabledByDefault(t *testing.T) {
	b := trace.NewBuilder()
	tb := b.Thread(1)
	tb.Call("f")
	tb.Ret()
	ps, err := Run(b.Trace(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ps.ByContext != nil || ps.Contexts != nil {
		t.Error("context data present without ContextSensitive")
	}
	if ps.HotContexts(5) != nil {
		t.Error("HotContexts non-nil for a routine-level run")
	}
}

// TestContextMetricsMatchRoutineTotals checks, on a multithreaded trace with
// dynamic input, that per-context metric sums reconstruct every routine
// total exactly.
func TestContextMetricsMatchRoutineTotals(t *testing.T) {
	tr := func() *trace.Trace {
		b := trace.NewBuilder()
		t1 := b.Thread(1)
		t2 := b.Thread(2)
		t1.Call("main")
		t2.Call("peer")
		for i := 0; i < 10; i++ {
			t1.Call("work")
			t2.Write1(3)
			t1.Read1(3)
			t1.SysRead(9, 2)
			t1.Read(9, 2)
			t1.Ret()
		}
		t1.Ret()
		t2.Ret()
		return b.Trace()
	}()
	ps, err := Run(tr, contextConfig())
	if err != nil {
		t.Fatal(err)
	}
	routineTotals := make(map[trace.RoutineID]uint64)
	for key, p := range ps.ByContext {
		routineTotals[ps.Contexts[key.Context].Routine] += p.SumDRMS
	}
	for id, p := range ps.MergeThreads() {
		if routineTotals[id] != p.SumDRMS {
			t.Errorf("routine %s: context sum %d != routine sum %d",
				ps.Symbols.Name(id), routineTotals[id], p.SumDRMS)
		}
	}
}
