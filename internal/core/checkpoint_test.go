package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"aprof/internal/trace"
)

// runSplit profiles tr feeding the first n events, checkpointing, resuming
// into a fresh profiler, and feeding the rest; it returns the resumed run's
// output.
func runSplit(t *testing.T, tr *trace.Trace, cfg Config, n int) *Profiles {
	t.Helper()
	p := NewProfiler(tr.Symbols, cfg)
	for i := 0; i < n; i++ {
		if err := p.HandleEvent(&tr.Events[i]); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
	}
	var buf bytes.Buffer
	if err := p.WriteCheckpoint(&buf, StreamState{EventsDelivered: uint64(n)}); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	q, state, err := ResumeProfiler(&buf, cfg)
	if err != nil {
		t.Fatalf("ResumeProfiler: %v", err)
	}
	if state.EventsDelivered != uint64(n) {
		t.Fatalf("StreamState.EventsDelivered = %d, want %d", state.EventsDelivered, n)
	}
	for i := n; i < len(tr.Events); i++ {
		if err := q.HandleEvent(&tr.Events[i]); err != nil {
			t.Fatalf("resumed event %d: %v", i, err)
		}
	}
	ps, err := q.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

// profilesEquivalent compares two Profiles structurally (same package, so
// unexported bucketing state is included via DeepEqual).
func profilesEquivalent(a, b *Profiles) bool {
	if !reflect.DeepEqual(a.Symbols.Names(), b.Symbols.Names()) {
		return false
	}
	if len(a.ByKey) != len(b.ByKey) {
		return false
	}
	for k, pa := range a.ByKey {
		pb := b.ByKey[k]
		if pb == nil || !reflect.DeepEqual(pa, pb) {
			return false
		}
	}
	return a.Events == b.Events && a.Renumberings == b.Renumberings && a.Drops == b.Drops
}

// TestCheckpointRoundTrip checks that checkpointing at several cut points —
// including mid-activation, with frames live on multiple stacks — and
// resuming reproduces the uninterrupted run exactly, across configurations
// covering renumbering, point capping, fault counting, and limits.
func TestCheckpointRoundTrip(t *testing.T) {
	configs := map[string]Config{
		"default":  DefaultConfig(),
		"rms-only": RMSOnlyConfig(),
		"renumber": {ThreadInput: true, ExternalInput: true, CounterLimit: 200},
		"capped":   {ThreadInput: true, ExternalInput: true, MaxPointsPerProfile: 4},
		"faulty":   {ThreadInput: true, ExternalInput: true, FaultPolicy: FaultCount},
		"limited": {ThreadInput: true, ExternalInput: true, FaultPolicy: FaultCount,
			Limits: Limits{MaxDepth: 6, MaxEvents: 100}},
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			tr := trace.Random(RandomTraceConfig(name))
			base := cfg
			want, err := Run(tr, base)
			if err != nil {
				t.Fatal(err)
			}
			if name == "renumber" && want.Renumberings == 0 {
				t.Fatal("renumber config never triggered a renumbering: test is vacuous")
			}
			if name == "limited" && want.Drops.Total() == 0 {
				t.Fatal("limited config never dropped: test is vacuous")
			}
			for _, frac := range []int{1, 3, 7} {
				n := len(tr.Events) * frac / 8
				got := runSplit(t, tr, cfg, n)
				if !profilesEquivalent(want, got) {
					t.Errorf("cut at %d/%d events: resumed profiles differ", n, len(tr.Events))
				}
			}
		})
	}
}

// RandomTraceConfig derives a deterministic per-config trace seed.
func RandomTraceConfig(name string) trace.RandomConfig {
	var seed int64
	for _, c := range name {
		seed = seed*31 + int64(c)
	}
	return trace.RandomConfig{Seed: seed, Ops: 600, Threads: 3}
}

// TestCheckpointRefusesContextSensitive pins the documented limitation.
func TestCheckpointRefusesContextSensitive(t *testing.T) {
	cfg := Config{ContextSensitive: true}
	p := NewProfiler(trace.NewSymbolTable(), cfg)
	err := p.WriteCheckpoint(&bytes.Buffer{}, StreamState{})
	if err == nil || !strings.Contains(err.Error(), "context-sensitive") {
		t.Errorf("WriteCheckpoint = %v, want context-sensitive refusal", err)
	}
}

// TestCheckpointDetectsCorruption flips one payload byte: the CRC must
// reject the file.
func TestCheckpointDetectsCorruption(t *testing.T) {
	tr := trace.Random(trace.RandomConfig{Seed: 3, Ops: 100})
	p := NewProfiler(tr.Symbols, DefaultConfig())
	for i := range tr.Events {
		if err := p.HandleEvent(&tr.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := p.WriteCheckpoint(&buf, StreamState{}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)-5] ^= 0x01
	if _, _, err := ResumeProfiler(bytes.NewReader(data), DefaultConfig()); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("ResumeProfiler on corrupt file = %v, want checksum error", err)
	}
}

// TestCheckpointConfigMismatch checks that resuming under different
// semantics is refused rather than silently accepted.
func TestCheckpointConfigMismatch(t *testing.T) {
	p := NewProfiler(trace.NewSymbolTable(), DefaultConfig())
	var buf bytes.Buffer
	if err := p.WriteCheckpoint(&buf, StreamState{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ResumeProfiler(&buf, RMSOnlyConfig()); err == nil || !strings.Contains(err.Error(), "different configuration") {
		t.Errorf("ResumeProfiler with mismatched config = %v, want refusal", err)
	}
}
