package core

import (
	"math/rand"
	"reflect"
	"testing"

	"aprof/internal/trace"
)

// TestDebugDivergence shrinks a diverging random trace and prints it. It is
// skipped unless it finds a divergence (development aid).
func TestDebugDivergence(t *testing.T) {
	cfg := Config{ThreadInput: true, ExternalInput: true}
	diverges := func(tr *trace.Trace) bool {
		fast, err := Run(tr, cfg)
		if err != nil {
			return false
		}
		slow, err := RunNaive(tr, cfg)
		if err != nil {
			return false
		}
		return !reflect.DeepEqual(summarize(fast), summarize(slow))
	}
	var tr *trace.Trace
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cand := randomTrace(rng, 200+rng.Intn(600))
		if diverges(cand) {
			tr = cand
			break
		}
	}
	if tr == nil {
		t.Skip("no divergence on these seeds")
	}
	// Shrink: repeatedly try dropping each event (non-structural kinds only,
	// to keep the trace valid).
	events := tr.Events
	changed := true
	for changed {
		changed = false
		for i := 0; i < len(events); i++ {
			k := events[i].Kind
			if k == trace.KindCall || k == trace.KindReturn || k == trace.KindSwitchThread {
				continue
			}
			cand := &trace.Trace{Symbols: tr.Symbols}
			cand.Events = append(cand.Events, events[:i]...)
			cand.Events = append(cand.Events, events[i+1:]...)
			if diverges(cand) {
				events = cand.Events
				changed = true
				i--
			}
		}
	}
	min := &trace.Trace{Symbols: tr.Symbols, Events: events}
	for _, ev := range min.Events {
		t.Logf("%s", ev.String())
	}
	fast, _ := Run(min, cfg)
	slow, _ := RunNaive(min, cfg)
	fs, ss := summarize(fast), summarize(slow)
	for i := range fs {
		if i < len(ss) && !reflect.DeepEqual(fs[i], ss[i]) {
			t.Logf("DIFF fast:  %+v", fs[i])
			t.Logf("DIFF naive: %+v", ss[i])
		}
	}
	t.Fatal("divergence (see minimized trace above)")
}
