package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"aprof/internal/trace"
)

func randomRuns(t *testing.T, n int, cfg Config) []*Profiles {
	t.Helper()
	runs := make([]*Profiles, n)
	for i := range runs {
		tr := trace.Random(trace.RandomConfig{Seed: int64(i + 1), Ops: 400})
		ps, err := Run(tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		runs[i] = ps
	}
	return runs
}

// TestMergeRunsParallelMatchesFold checks the tree reduction against the
// left fold for run counts hitting every tree shape (powers of two, odd
// tails, single run).
func TestMergeRunsParallelMatchesFold(t *testing.T) {
	runs := randomRuns(t, 9, DefaultConfig())
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9} {
		for _, workers := range []int{1, 2, 4} {
			fold := MergeRuns(runs[:n]...)
			tree := MergeRunsParallel(workers, runs[:n]...)
			if !reflect.DeepEqual(summarize(fold), summarize(tree)) {
				t.Errorf("n=%d workers=%d: tree reduction differs from left fold", n, workers)
			}
			if fold.Events != tree.Events || fold.Renumberings != tree.Renumberings {
				t.Errorf("n=%d workers=%d: run counters differ", n, workers)
			}
		}
	}
}

// TestMergeRunsParallelContexts checks the context-sensitive merge survives
// the tree reduction: per-context-path profiles must agree with the fold.
func TestMergeRunsParallelContexts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ContextSensitive = true
	runs := randomRuns(t, 5, cfg)
	fold := MergeRuns(runs...)
	tree := MergeRunsParallel(4, runs...)
	if fold.ByContext == nil || tree.ByContext == nil {
		t.Fatal("context-sensitive merge dropped ByContext")
	}
	// Compare per-path aggregates (context ids are representation detail).
	flatten := func(ps *Profiles) map[string]uint64 {
		out := make(map[string]uint64)
		for key, p := range ps.ByContext {
			path := ""
			for id := key.Context; id != RootContext; id = ps.Contexts[id].Parent {
				path = "/" + ps.Symbols.Name(ps.Contexts[id].Routine) + path
			}
			out[fmt.Sprintf("%s@%d", path, key.Thread)] += p.SumDRMS + p.Calls<<32
		}
		return out
	}
	if !reflect.DeepEqual(flatten(fold), flatten(tree)) {
		t.Error("context profiles differ between fold and tree reduction")
	}
}

// TestRunConcurrentMatchesSequential checks the worker-pool orchestration
// end to end: profiling N traces concurrently must equal profiling them
// sequentially and merging.
func TestRunConcurrentMatchesSequential(t *testing.T) {
	const n = 8
	traces := make([]*trace.Trace, n)
	jobs := make([]Job, n)
	for i := range traces {
		tr := trace.Random(trace.RandomConfig{Seed: int64(100 + i), Ops: 600})
		traces[i] = tr
		jobs[i] = func(context.Context) (*trace.Trace, error) { return tr, nil }
	}
	cfg := DefaultConfig()
	var runs []*Profiles
	for _, tr := range traces {
		ps, err := Run(tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, ps)
	}
	want := MergeRuns(runs...)
	for _, workers := range []int{0, 1, 3, 8} {
		got, err := RunConcurrent(context.Background(), jobs, cfg, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(summarize(want), summarize(got)) {
			t.Errorf("workers=%d: concurrent result differs from sequential", workers)
		}
	}
}

// TestRunConcurrentFirstError checks that the lowest-indexed failure is
// reported, not the cancellations it causes downstream.
func TestRunConcurrentFirstError(t *testing.T) {
	boom := errors.New("job 2 failed")
	var jobs []Job
	for i := 0; i < 16; i++ {
		i := i
		jobs = append(jobs, func(ctx context.Context) (*trace.Trace, error) {
			if i == 2 {
				return nil, boom
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return trace.Random(trace.RandomConfig{Seed: int64(i), Ops: 200}), nil
		})
	}
	_, err := RunConcurrent(context.Background(), jobs, DefaultConfig(), 4)
	if !errors.Is(err, boom) {
		t.Errorf("got %v, want %v", err, boom)
	}
}

// TestRunConcurrentCancellation checks a pre-cancelled context aborts.
func TestRunConcurrentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := []Job{func(ctx context.Context) (*trace.Trace, error) {
		return nil, ctx.Err()
	}}
	_, err := RunConcurrent(ctx, jobs, DefaultConfig(), 2)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("got %v, want context.Canceled", err)
	}
}

// TestRunConcurrentEmpty checks the degenerate case.
func TestRunConcurrentEmpty(t *testing.T) {
	ps, err := RunConcurrent(context.Background(), nil, DefaultConfig(), 4)
	if err != nil || ps == nil || len(ps.ByKey) != 0 {
		t.Errorf("empty jobs: ps=%v err=%v", ps, err)
	}
}
