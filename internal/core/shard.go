package core

// Sharded multi-core profiling (ROADMAP item 1).
//
// The timestamping algorithm of Figs. 8/9 looks inherently serial — it
// consumes one totally ordered trace — but almost all of its state is
// per-thread: the shadow memory ts_t, the shadow run-time stack S_t and the
// (routine, thread)-keyed profiles of a thread are touched only by that
// thread's events. The only cross-thread coupling is (a) the global counter,
// whose tick sequence is a pure function of the event kinds and so can be
// replayed independently by every shard, and (b) the global write shadow
// wts/wkind, which reads consult but never mutate and which only write and
// kernelToUser events update. "Multithreaded Input-Sensitive Profiling"
// (PAPERS.md) exploits the same decomposition.
//
// The sharded engine therefore splits a trace window by thread across
// nShards workers and processes it in two parallel passes with one barrier:
//
//	pass A   each shard scans the window and extracts its threads' global
//	         writes into a per-cell history of (position, count, kind)
//	         entries, partitioned by cell hash;
//	merge    the per-shard histories are folded into one per-cell index
//	         (parallel across partitions) — this index *is* the
//	         happens-before structure of the trace restricted to writes:
//	         program order within a thread plus the total trace order
//	         across threads, the same order trace.ReinterleaveSync
//	         preserves for properly synchronized traces;
//	pass B   each shard runs the full per-thread analysis over its own
//	         events, replaying the counter with advanceCount and resolving
//	         every induced-first-read test against the merged index (the
//	         latest write strictly before the reading event's position
//	         reconstructs wts/wkind exactly — see Profiler.resolve).
//
// Each shard's analysis state is a private sequential *Profiler (wts/wkind
// nil, resolve set), so per-thread behavior is the sequential code path by
// construction. A deterministic merge layer (shardmerge.go) unions the
// disjoint per-shard profiles and renumbers calling contexts into the
// sequential creation order, making the output byte-identical to the
// sequential engine for every shard count — the invariant the differential
// shard-equivalence suite pins.
//
// Unsupported configurations (see CanShard) fall back to the sequential
// engine; the fallback is trivially byte-identical.

import (
	"fmt"
	"sort"
	"sync"

	"aprof/internal/trace"
)

// writeRec is one entry of the cross-shard write-history index: a global
// write (by a thread or by the kernel) to one cell.
type writeRec struct {
	// pos is the event's global trace position. Positions disambiguate
	// writes that share a counter value (the counter only ticks on calls,
	// switches and kernel fills, so consecutive writes tie on count).
	pos int64
	// count is the global counter value at the write — the value wts would
	// hold after it.
	count uint64
	// kind is writerThread or writerKernel — the value wkind would hold.
	kind uint8
}

// shardWorker is one shard: a private sequential profiler owning a subset
// of the trace's threads, plus the per-window write-extraction state.
type shardWorker struct {
	id int
	// p is the shard's analysis state: a sequential Profiler whose global
	// shadow tables stay nil and whose induced-read test resolves against
	// the engine's merged write-history index. Everything per-thread —
	// shadow memories, stacks, profiles, drop accounting, the local
	// calling-context table — is the unmodified sequential machinery.
	p *Profiler
	// parts[h] holds the writes extracted by pass A for cells hashing to
	// partition h, per cell in position order.
	parts []map[trace.Addr][]writeRec
	// curPos is the global position of the event being profiled by pass B;
	// the resolve closure reads it (single goroutine per shard).
	curPos int64
	// ctxBirths[i] is the global position at which local context node id
	// i+1 was created, for the deterministic context renumbering of the
	// merge layer.
	ctxBirths []int64
	// lookups/resolved count the induced-read index consultations of the
	// current window (plain fields; folded into obs serially).
	lookups  uint64
	resolved uint64
	// faultErr/faultPos record the shard's first failure in the current
	// window (a strict-policy fault or an invariant violation).
	faultErr error
	faultPos int64
}

// ShardedProfiler profiles one totally ordered trace on several cores. It
// consumes the trace in windows (FeedWindow); between windows its canonical
// state — counter, event/memSeq accounting, the write mirror, and the
// per-shard thread states — is exactly the state the sequential profiler
// would hold at the same boundary, which is what makes its checkpoints
// interoperable with the sequential path in both directions.
type ShardedProfiler struct {
	cfg    Config
	syms   *trace.SymbolTable
	shards []*shardWorker
	parts  int
	hasWts bool

	// Canonical cross-shard state at the current window boundary.
	count        uint64
	events       int
	memSeq       uint64
	basePos      int64
	drops        DropStats // unowned-event drops (negative thread ids)
	renumberings int

	// baseWrites mirrors wts/wkind at the current window boundary,
	// partitioned by cell hash. It is the only form of the global write
	// shadow the shards read: shadow.Table lookups mutate hint state and
	// are single-goroutine by contract, so the engine keeps this plain
	// mirror instead, written only by the serial fold between windows.
	baseWrites []map[trace.Addr]writeRec
	// hist is the merged per-window write-history index, read-only during
	// pass B.
	hist []map[trace.Addr][]writeRec

	// Per-window scratch, owned by shard 0 during pass A and read by the
	// serial driver after the barrier.
	windowMemSeq   uint64
	windowEndCount uint64
	planFaultErr   error
	planFaultPos   int64

	err      error
	finished bool
	obs      *shardObs
}

// CanShard reports whether cfg is supported by the sharded engine. Counter
// renumbering (CounterLimit), the global sampling degradations
// (Limits.MaxEvents, Limits.MaxMemoryBytes) and the OnActivation stream all
// depend on a single global processing order that per-shard replay cannot
// reproduce cheaply; those configurations use the sequential engine.
// MaxDepth, fault policies, context sensitivity, point capping and obs are
// fully supported.
func CanShard(cfg Config) bool {
	return cfg.CounterLimit == 0 &&
		cfg.Limits.MaxEvents == 0 &&
		cfg.Limits.MaxMemoryBytes == 0 &&
		cfg.OnActivation == nil
}

// NewShardedProfiler returns a sharded profiler with nShards workers for
// traces built against syms. It fails when nShards < 2 or when cfg requires
// the sequential engine (see CanShard).
func NewShardedProfiler(syms *trace.SymbolTable, cfg Config, nShards int) (*ShardedProfiler, error) {
	if nShards < 2 {
		return nil, fmt.Errorf("core: sharded profiling needs at least 2 shards (got %d)", nShards)
	}
	if !CanShard(cfg) {
		return nil, fmt.Errorf("core: configuration requires the sequential engine (counter limit, event/memory limits and OnActivation cannot be sharded)")
	}
	sp := &ShardedProfiler{
		cfg:    cfg,
		syms:   syms,
		parts:  nShards,
		hasWts: cfg.ThreadInput || cfg.ExternalInput,
		// The counter starts at 1 for the same reason the sequential
		// profiler's does: 0 is the "never accessed" sentinel.
		count:      1,
		baseWrites: make([]map[trace.Addr]writeRec, nShards),
		hist:       make([]map[trace.Addr][]writeRec, nShards),
		obs:        newShardObs(cfg.Obs, nShards),
	}
	for i := range sp.baseWrites {
		sp.baseWrites[i] = make(map[trace.Addr]writeRec)
	}
	for i := 0; i < nShards; i++ {
		sp.shards = append(sp.shards, sp.newWorker(i))
	}
	return sp, nil
}

// NewShardedFromProfiler adopts the state of a (typically checkpoint-
// resumed) sequential profiler into a sharded engine: thread states and
// their profiles move to their owning shards, the global write shadow is
// mirrored, and the central accounting carries over. The profiler must be
// healthy and must not be used afterwards.
func NewShardedFromProfiler(p *Profiler, nShards int) (*ShardedProfiler, error) {
	if p.err != nil {
		return nil, fmt.Errorf("core: cannot shard a failed profiler: %w", p.err)
	}
	if p.finished {
		return nil, fmt.Errorf("core: cannot shard a finished profiler")
	}
	if p.cfg.ContextSensitive && len(p.ctx.nodes) > 1 {
		return nil, fmt.Errorf("core: cannot adopt a context-sensitive profiler with live contexts")
	}
	sp, err := NewShardedProfiler(p.syms, p.cfg, nShards)
	if err != nil {
		return nil, err
	}
	sp.count = p.count
	sp.events = p.out.Events
	sp.memSeq = p.memSeq
	sp.drops = p.out.Drops
	sp.renumberings = p.out.Renumberings
	if p.wts != nil {
		p.wts.ForEach(func(v uint64) bool { return v == 0 }, func(a trace.Addr, v uint64) {
			rec := writeRec{pos: -1, count: v, kind: p.wkind.Load(a)}
			sp.baseWrites[sp.part(a)][a] = rec
		})
	}
	for id, t := range p.threads {
		w := sp.shards[sp.owner(id)]
		w.p.threads[id] = t
		if len(t.stack) > w.p.depthHWM {
			w.p.depthHWM = len(t.stack)
		}
	}
	for k, prof := range p.out.ByKey {
		sp.shards[sp.owner(k.Thread)].p.out.ByKey[k] = prof
	}
	return sp, nil
}

// newWorker builds one shard: a sequential profiler with the global shadow
// tables replaced by the engine's merged write-history index.
func (sp *ShardedProfiler) newWorker(id int) *shardWorker {
	p := NewProfiler(sp.syms, sp.cfg)
	p.wts, p.wkind = nil, nil
	w := &shardWorker{id: id, p: p, parts: make([]map[trace.Addr][]writeRec, sp.parts)}
	p.resolve = func(a trace.Addr) (uint64, uint8) { return sp.resolveWrite(a, w) }
	return w
}

// owner maps a (non-negative) thread id to its shard. Any deterministic
// assignment yields identical output — the equivalence proof never uses the
// assignment — so a plain modulo keeps resume independent of the original
// run's shard count.
func (sp *ShardedProfiler) owner(id trace.ThreadID) int {
	return int(uint32(id) % uint32(len(sp.shards)))
}

// part maps a cell to its write-history partition.
func (sp *ShardedProfiler) part(a trace.Addr) int {
	return int(uint64(a) % uint64(sp.parts))
}

// resolveWrite reconstructs what wts/wkind would hold for cell a at the
// shard's current event: the latest global write strictly before that
// position — first in the current window's merged index, then in the
// window-boundary mirror. Writes by the reading thread itself are included
// on purpose: the sequential tables contain them too, and the subsequent
// old < w test discards them exactly as it does sequentially.
func (sp *ShardedProfiler) resolveWrite(a trace.Addr, w *shardWorker) (uint64, uint8) {
	w.lookups++
	if recs := sp.hist[sp.part(a)][a]; len(recs) > 0 {
		i := sort.Search(len(recs), func(i int) bool { return recs[i].pos >= w.curPos })
		if i > 0 {
			w.resolved++
			return recs[i-1].count, recs[i-1].kind
		}
	}
	if rec, ok := sp.baseWrites[sp.part(a)][a]; ok {
		w.resolved++
		return rec.count, rec.kind
	}
	return 0, writerNone
}

// advanceCount replays the sequential profiler's tick sequence: the counter
// in effect *after* ev is the value returned. Only calls of known routines,
// thread switches and kernelToUser events tick, and only with a
// non-negative thread id — faults are detected before the tick and
// unknown-routine calls fault without ticking.
func advanceCount(count uint64, ev *trace.Event, symsLen int) uint64 {
	if ev.Thread < 0 {
		return count
	}
	switch ev.Kind {
	case trace.KindSwitchThread, trace.KindKernelToUser:
		return count + 1
	case trace.KindCall:
		if int(ev.Routine) < symsLen {
			return count + 1
		}
	}
	return count
}

// FeedWindow processes one window of trace events (in trace order) across
// all shards. The engine's state after a successful window equals the
// sequential profiler's state after the same events. On error (a strict
// fault, or an invariant violation) the engine becomes unusable, exactly
// like the sequential profiler.
func (sp *ShardedProfiler) FeedWindow(events []trace.Event) error {
	if sp.err != nil {
		return sp.err
	}
	if sp.finished {
		return fmt.Errorf("core: window fed after Finish")
	}
	if len(events) == 0 {
		return nil
	}
	sp.windowMemSeq = 0
	sp.windowEndCount = sp.count
	sp.planFaultErr = nil
	for _, w := range sp.shards {
		w.faultErr = nil
		w.lookups, w.resolved = 0, 0
	}

	obsTimer := sp.obs.windowStart(len(events))

	// Pass A: parallel per-shard write extraction (plus, on shard 0, the
	// central structural accounting the serial driver folds afterwards).
	var wg sync.WaitGroup
	for _, w := range sp.shards {
		wg.Add(1)
		go func(w *shardWorker) {
			defer wg.Done()
			sp.passA(w, events)
		}(w)
	}
	wg.Wait()
	obsTimer.passADone()

	// Barrier: fold the per-shard extractions into the per-cell index,
	// parallel across partitions.
	sp.mergeHistories()
	obsTimer.mergeDone()

	// Pass B: parallel per-shard analysis against the merged index.
	for _, w := range sp.shards {
		wg.Add(1)
		go func(w *shardWorker) {
			defer wg.Done()
			sp.passB(w, events)
		}(w)
	}
	wg.Wait()
	obsTimer.passBDone()

	// The earliest failure across the plan scan and every shard is the
	// fault the sequential profiler would have stopped at: shards may have
	// processed events past it, but their state is discarded with the run.
	faultPos, faultErr := sp.planFaultPos, sp.planFaultErr
	for _, w := range sp.shards {
		if w.faultErr != nil && (faultErr == nil || w.faultPos < faultPos) {
			faultPos, faultErr = w.faultPos, w.faultErr
		}
	}
	if faultErr != nil {
		rel := faultPos - sp.basePos
		sp.err = fmt.Errorf("core: event %d (%s): %w", faultPos, events[rel].String(), faultErr)
		return sp.err
	}

	sp.foldWindow(len(events))
	obsTimer.done(sp)
	return nil
}

// passA extracts the shard's global writes from the window and, on shard 0
// only, maintains the central structural accounting: the end-of-window
// counter, the memory-event sequence (for checkpoint parity), and the
// handling of unowned events (negative thread ids, which no shard owns).
func (sp *ShardedProfiler) passA(w *shardWorker, events []trace.Event) {
	symsLen := sp.syms.Len()
	count := sp.count
	central := w.id == 0
	for i := range w.parts {
		w.parts[i] = nil
	}
	for i := range events {
		ev := &events[i]
		count = advanceCount(count, ev, symsLen)
		if ev.Thread < 0 {
			if central {
				sp.noteUnowned(ev, sp.basePos+int64(i))
			}
			continue
		}
		if central {
			// sampledOut() calls a sequential run would make: memory and
			// kernel-read events always reach it; kernelToUser only when a
			// global write shadow exists.
			switch ev.Kind {
			case trace.KindRead, trace.KindWrite, trace.KindUserToKernel:
				sp.windowMemSeq++
			case trace.KindKernelToUser:
				if sp.hasWts {
					sp.windowMemSeq++
				}
			}
		}
		if !sp.hasWts || sp.owner(ev.Thread) != w.id {
			continue
		}
		switch ev.Kind {
		case trace.KindWrite:
			pos := sp.basePos + int64(i)
			ev.Cells(func(a trace.Addr) { w.appendWrite(a, pos, count, writerThread) })
		case trace.KindKernelToUser:
			// count already includes this event's tick, matching the store
			// the sequential kernelFill performs after ticking.
			pos := sp.basePos + int64(i)
			ev.Cells(func(a trace.Addr) { w.appendWrite(a, pos, count, writerKernel) })
		}
	}
	if central {
		sp.windowEndCount = count
	}
}

// appendWrite records one write into the shard's partitioned extraction,
// deduplicating consecutive entries whose (count, kind) agree — a binary
// search for "latest entry before pos" returns the same answer either way.
func (w *shardWorker) appendWrite(a trace.Addr, pos int64, count uint64, kind uint8) {
	part := int(uint64(a) % uint64(len(w.parts)))
	m := w.parts[part]
	if m == nil {
		m = make(map[trace.Addr][]writeRec)
		w.parts[part] = m
	}
	recs := m[a]
	if n := len(recs); n > 0 && recs[n-1].count == count && recs[n-1].kind == kind {
		return
	}
	m[a] = append(recs, writeRec{pos: pos, count: count, kind: kind})
}

// noteUnowned handles an event no shard owns (negative thread id) exactly
// as the sequential profiler's pre-dispatch check would. Shard 0 calls it
// during pass A, so the accounting is deterministic and counted once.
func (sp *ShardedProfiler) noteUnowned(ev *trace.Event, pos int64) {
	switch sp.cfg.FaultPolicy {
	case FaultSkip:
	case FaultCount:
		sp.drops.BadThread++
	default:
		if sp.planFaultErr == nil {
			sp.planFaultPos = pos
			sp.planFaultErr = fmt.Errorf("negative thread id %d on %s event", ev.Thread, ev.Kind)
		}
	}
}

// mergeHistories folds the per-shard pass-A extractions into the merged
// per-cell index, parallel across partitions. Within a shard a cell's
// entries are already position-sorted; cells written by several shards are
// re-sorted after concatenation.
func (sp *ShardedProfiler) mergeHistories() {
	if !sp.hasWts {
		return
	}
	var wg sync.WaitGroup
	for part := 0; part < sp.parts; part++ {
		wg.Add(1)
		go func(part int) {
			defer wg.Done()
			var m map[trace.Addr][]writeRec
			for _, w := range sp.shards {
				src := w.parts[part]
				if src == nil {
					continue
				}
				if m == nil {
					m = make(map[trace.Addr][]writeRec, len(src))
				}
				for a, recs := range src {
					m[a] = append(m[a], recs...)
				}
			}
			for a, recs := range m {
				if !sort.SliceIsSorted(recs, func(i, j int) bool { return recs[i].pos < recs[j].pos }) {
					sort.Slice(recs, func(i, j int) bool { return recs[i].pos < recs[j].pos })
				}
				m[a] = recs
			}
			sp.hist[part] = m
		}(part)
	}
	wg.Wait()
}

// passB runs the shard's full per-thread analysis over the window.
func (sp *ShardedProfiler) passB(w *shardWorker, events []trace.Event) {
	symsLen := sp.syms.Len()
	count := sp.count
	trackCtx := sp.cfg.ContextSensitive
	for i := range events {
		ev := &events[i]
		count = advanceCount(count, ev, symsLen)
		if ev.Thread < 0 || ev.Kind == trace.KindSwitchThread || sp.owner(ev.Thread) != w.id {
			continue
		}
		w.curPos = sp.basePos + int64(i)
		var nodesBefore int
		if trackCtx && ev.Kind == trace.KindCall {
			nodesBefore = len(w.p.ctx.nodes)
		}
		if err := w.p.handleShardEvent(ev, count); err != nil {
			w.faultErr = err
			w.faultPos = w.curPos
			return
		}
		if trackCtx && ev.Kind == trace.KindCall && len(w.p.ctx.nodes) > nodesBefore {
			w.ctxBirths = append(w.ctxBirths, w.curPos)
		}
	}
}

// handleShardEvent is HandleEvent for the sharded path: the same dispatch
// and handler bodies, with the counter assigned from the precomputed replay
// instead of ticked, and without the gated machinery (limits sampling never
// degrades here — CanShard excludes it). count is the counter value in
// effect after this event (advanceCount's result).
func (p *Profiler) handleShardEvent(ev *trace.Event, count uint64) error {
	if p.err != nil {
		return p.err
	}
	p.out.Events++
	if p.obs != nil {
		p.obs.countEvent(ev.Kind)
	}
	switch ev.Kind {
	case trace.KindCall:
		if ev.Routine >= trace.RoutineID(p.syms.Len()) {
			return p.fault(&p.out.Drops.UnknownRoutine, "call of unknown routine id %d (symbol table has %d)", ev.Routine, p.syms.Len())
		}
		p.count = count
		p.pushCall(ev)
		return nil
	case trace.KindReturn:
		return p.onReturn(ev)
	case trace.KindRead, trace.KindUserToKernel:
		p.count = count
		t := p.thread(ev.Thread)
		t.cost = ev.Cost
		if p.sampledOut() {
			return nil
		}
		ev.Cells(func(a trace.Addr) { p.onRead(t, a) })
		return nil
	case trace.KindWrite:
		p.count = count
		t := p.thread(ev.Thread)
		t.cost = ev.Cost
		if p.sampledOut() {
			return nil
		}
		ev.Cells(func(a trace.Addr) { p.onWrite(t, a) })
		return nil
	case trace.KindKernelToUser:
		p.count = count
		p.kernelFill(ev)
		return nil
	case trace.KindAcquire, trace.KindRelease:
		p.thread(ev.Thread).cost = ev.Cost
		return nil
	default:
		return p.fault(&p.out.Drops.InvalidKind, "unhandled event kind %v", ev.Kind)
	}
}

// foldWindow commits a successfully profiled window: the canonical counter,
// event and memory-sequence accounting advance, and the window's write
// history collapses into the boundary mirror (parallel per partition; the
// shard goroutines have quiesced).
func (sp *ShardedProfiler) foldWindow(windowLen int) {
	sp.count = sp.windowEndCount
	sp.events += windowLen
	sp.memSeq += sp.windowMemSeq
	sp.basePos += int64(windowLen)
	if !sp.hasWts {
		return
	}
	var wg sync.WaitGroup
	for part := 0; part < sp.parts; part++ {
		if sp.hist[part] == nil {
			continue
		}
		wg.Add(1)
		go func(part int) {
			defer wg.Done()
			base := sp.baseWrites[part]
			for a, recs := range sp.hist[part] {
				base[a] = recs[len(recs)-1]
			}
			sp.hist[part] = nil
		}(part)
	}
	wg.Wait()
}

// ProfileSharded profiles a merged trace across nShards cores, producing
// output byte-identical to Run for every shard count. Configurations the
// sharded engine does not support, and shard counts below 2, run
// sequentially (trivially identical).
func ProfileSharded(tr *trace.Trace, cfg Config, nShards int) (*Profiles, error) {
	if nShards < 2 || !CanShard(cfg) {
		return Run(tr, cfg)
	}
	sp, err := NewShardedProfiler(tr.Symbols, cfg, nShards)
	if err != nil {
		return Run(tr, cfg)
	}
	if err := sp.FeedWindow(tr.Events); err != nil {
		return nil, err
	}
	return sp.Finish()
}
