package core

import (
	"testing"

	"aprof/internal/trace"
)

// runOn profiles a scan workload at the given sizes, optionally
// context-sensitively. Each run has its own symbol table, with an extra
// routine to force different id assignments across runs.
func runOn(t *testing.T, sizes []int, ctx bool, extraFirst string) *Profiles {
	t.Helper()
	b := trace.NewBuilder()
	tb := b.Thread(1)
	if extraFirst != "" {
		tb.Call(extraFirst)
		tb.Work(3)
		tb.Ret()
	}
	tb.Call("main")
	for _, n := range sizes {
		tb.Call("scan")
		tb.Read(5000, uint32(n))
		tb.Work(uint64(2 * n))
		tb.Ret()
	}
	tb.Ret()
	cfg := DefaultConfig()
	cfg.ContextSensitive = ctx
	ps, err := Run(b.Trace(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

func TestMergeRunsWidensPlots(t *testing.T) {
	run1 := runOn(t, []int{10, 20, 30}, false, "setup_a")
	run2 := runOn(t, []int{100, 200}, false, "")
	merged := MergeRuns(run1, run2)

	scan := merged.Routine("scan")
	if scan == nil {
		t.Fatal("no merged scan profile")
	}
	if scan.Calls != 5 {
		t.Errorf("merged calls = %d, want 5", scan.Calls)
	}
	if len(scan.DRMSPoints) != 5 {
		t.Errorf("merged points = %d, want 5", len(scan.DRMSPoints))
	}
	plot := scan.WorstCasePlot(MetricDRMS)
	if plot[0].N != 10 || plot[len(plot)-1].N != 200 {
		t.Errorf("merged plot range [%d, %d], want [10, 200]", plot[0].N, plot[len(plot)-1].N)
	}
	// The run-specific extra routine survives under its name.
	if merged.Routine("setup_a") == nil {
		t.Error("routine present in only one run was lost")
	}
	if merged.Events != run1.Events+run2.Events {
		t.Error("event counters not accumulated")
	}
}

func TestMergeRunsReconcilesIDs(t *testing.T) {
	// In run2, "scan" has a different RoutineID than in run1 (extra routine
	// interned first); the merge must still combine them.
	run1 := runOn(t, []int{5}, false, "")
	run2 := runOn(t, []int{7}, false, "zzz_first")
	id1, _ := run1.Symbols.Lookup("scan")
	id2, _ := run2.Symbols.Lookup("scan")
	if id1 == id2 {
		t.Fatal("test setup: ids should differ across runs")
	}
	merged := MergeRuns(run1, run2)
	if got := merged.Routine("scan").Calls; got != 2 {
		t.Errorf("merged scan calls = %d, want 2", got)
	}
}

func TestMergeRunsContexts(t *testing.T) {
	run1 := runOn(t, []int{10, 20}, true, "setup_a")
	run2 := runOn(t, []int{40}, true, "")
	merged := MergeRuns(run1, run2)
	if merged.ByContext == nil {
		t.Fatal("context data lost")
	}
	scanCtx := merged.Context("main > scan")
	if scanCtx == nil {
		t.Fatal("merged context main > scan missing")
	}
	if scanCtx.Calls != 3 {
		t.Errorf("context calls = %d, want 3", scanCtx.Calls)
	}
	if len(scanCtx.DRMSPoints) != 3 {
		t.Errorf("context points = %d, want 3", len(scanCtx.DRMSPoints))
	}
}

func TestMergeRunsMixedContextsDropsThem(t *testing.T) {
	run1 := runOn(t, []int{10}, true, "")
	run2 := runOn(t, []int{20}, false, "")
	merged := MergeRuns(run1, run2)
	if merged.ByContext != nil {
		t.Error("partial context data should be dropped")
	}
	if merged.Routine("scan").Calls != 2 {
		t.Error("routine-level merge incomplete")
	}
}

func TestMergeRunsEmpty(t *testing.T) {
	merged := MergeRuns()
	if merged == nil || len(merged.ByKey) != 0 {
		t.Error("empty merge should produce an empty Profiles")
	}
	single := runOn(t, []int{5}, false, "")
	again := MergeRuns(single)
	if again.Routine("scan").Calls != 1 {
		t.Error("single-run merge lost data")
	}
}
