package core

import (
	"sort"
	"strings"

	"aprof/internal/trace"
)

// Calling-context-sensitive profiling: with Config.ContextSensitive the
// profiler additionally keys collected activations by their calling context
// (the path of routines from the thread root), building a calling-context
// tree per run. The paper's profiles are routine-level ("performance
// metrics to software locations such as routines, basic blocks, or calling
// contexts" — §1); context sensitivity is the natural refinement its related
// work ([1], [24]) profiles at, and it lets the cost plots separate
// activations of one routine that play different roles in different callers.
//
// Direct recursion is collapsed (a recursive call re-uses its parent's
// context node), so recursive algorithms do not materialize unbounded
// context chains.

// ContextID identifies a calling-context node. The zero value is the
// synthetic root (no pending activation).
type ContextID uint32

// RootContext is the synthetic root of the calling-context tree.
const RootContext ContextID = 0

// ContextMeta describes one calling-context node.
type ContextMeta struct {
	// Routine is the node's routine.
	Routine trace.RoutineID
	// Parent is the caller's context (RootContext for thread roots).
	Parent ContextID
	// Depth is the path length from the root (root children have depth 1).
	Depth int
}

// contextNode is the mutable tree node used during profiling.
type contextNode struct {
	id       ContextID
	rtn      trace.RoutineID
	parent   *contextNode
	children map[trace.RoutineID]*contextNode
	depth    int
}

// contextTable interns calling contexts.
type contextTable struct {
	root  *contextNode
	nodes []*contextNode // index = ContextID
}

func newContextTable() *contextTable {
	root := &contextNode{id: RootContext}
	return &contextTable{root: root, nodes: []*contextNode{root}}
}

// child returns parent's context node for rtn, creating it on first use and
// collapsing direct recursion.
func (ct *contextTable) child(parent *contextNode, rtn trace.RoutineID) *contextNode {
	if parent.id != RootContext && parent.rtn == rtn {
		return parent // collapse direct recursion
	}
	if c, ok := parent.children[rtn]; ok {
		return c
	}
	c := &contextNode{
		id:     ContextID(len(ct.nodes)),
		rtn:    rtn,
		parent: parent,
		depth:  parent.depth + 1,
	}
	if parent.children == nil {
		parent.children = make(map[trace.RoutineID]*contextNode)
	}
	parent.children[rtn] = c
	ct.nodes = append(ct.nodes, c)
	return c
}

// metas freezes the table into the exported form.
func (ct *contextTable) metas() []ContextMeta {
	out := make([]ContextMeta, len(ct.nodes))
	for i, n := range ct.nodes {
		meta := ContextMeta{Routine: n.rtn, Depth: n.depth}
		if n.parent != nil {
			meta.Parent = n.parent.id
		}
		out[i] = meta
	}
	return out
}

// ContextKey identifies a thread-sensitive context profile.
type ContextKey struct {
	Context ContextID
	Thread  trace.ThreadID
}

// ContextPath renders a context as the routine path from the root, e.g.
// "main > query > scan".
func (ps *Profiles) ContextPath(id ContextID) string {
	if int(id) >= len(ps.Contexts) || id == RootContext {
		return ""
	}
	var parts []string
	for cur := id; cur != RootContext; cur = ps.Contexts[cur].Parent {
		parts = append(parts, ps.Symbols.Name(ps.Contexts[cur].Routine))
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, " > ")
}

// Context returns the merged (cross-thread) profile of the context with the
// given path (routine names joined by " > "), or nil.
func (ps *Profiles) Context(path string) *Profile {
	var merged *Profile
	for key, p := range ps.ByContext {
		if ps.ContextPath(key.Context) != path {
			continue
		}
		if merged == nil {
			merged = newProfile(p.Routine, -1)
		}
		merged.merge(p)
	}
	return merged
}

// ContextProfile pairs a context path with its merged profile, for reports.
type ContextProfile struct {
	Context ContextID
	Path    string
	Profile *Profile
}

// HotContexts returns the merged context profiles sorted by decreasing total
// cost (all of them when topN <= 0). It returns nil unless the run was
// context-sensitive.
func (ps *Profiles) HotContexts(topN int) []ContextProfile {
	if len(ps.ByContext) == 0 {
		return nil
	}
	byCtx := make(map[ContextID]*Profile)
	for key, p := range ps.ByContext {
		dst := byCtx[key.Context]
		if dst == nil {
			dst = newProfile(p.Routine, -1)
			byCtx[key.Context] = dst
		}
		dst.merge(p)
	}
	out := make([]ContextProfile, 0, len(byCtx))
	for id, p := range byCtx {
		out = append(out, ContextProfile{Context: id, Path: ps.ContextPath(id), Profile: p})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Profile.TotalCost != out[j].Profile.TotalCost {
			return out[i].Profile.TotalCost > out[j].Profile.TotalCost
		}
		return out[i].Path < out[j].Path
	})
	if topN > 0 && len(out) > topN {
		out = out[:topN]
	}
	return out
}
