package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"aprof/internal/trace"
	"aprof/internal/workloads"
)

// shardCounts is the sweep every equivalence test runs: small counts with
// distinct divisibility behavior, a count larger than any generated thread
// population (so some shards are empty), and the machine's own parallelism.
func shardCounts() []int {
	counts := []int{2, 3, 4, 7, 16}
	if n := runtime.NumCPU(); n > 1 && n != 16 {
		counts = append(counts, n)
	}
	return counts
}

// shardConfigs extends the differential-test configurations with the
// features the sharded engine explicitly supports: context sensitivity,
// point-capped profiles, depth limits, and the non-strict fault policies.
var shardConfigs = []struct {
	name string
	cfg  Config
}{
	{"full", Config{ThreadInput: true, ExternalInput: true}},
	{"thread-only", Config{ThreadInput: true}},
	{"external-only", Config{ExternalInput: true}},
	{"rms-only", Config{}},
	{"contexts", Config{ThreadInput: true, ExternalInput: true, ContextSensitive: true}},
	{"capped-points", Config{ThreadInput: true, ExternalInput: true, MaxPointsPerProfile: 4}},
	{"max-depth", Config{ThreadInput: true, ExternalInput: true, Limits: Limits{MaxDepth: 3}}},
	{"fault-skip", Config{ThreadInput: true, ExternalInput: true, FaultPolicy: FaultSkip}},
	{"fault-count", Config{ThreadInput: true, ExternalInput: true, FaultPolicy: FaultCount}},
}

// requireShardEqual profiles tr sequentially and with every shard count and
// fails unless every run agrees exactly — same profiles on success, same
// error on failure.
func requireShardEqual(t *testing.T, label string, tr *trace.Trace, cfg Config) {
	t.Helper()
	want, wantErr := Run(tr, cfg)
	for _, n := range shardCounts() {
		got, gotErr := ProfileSharded(tr, cfg, n)
		if (wantErr != nil) != (gotErr != nil) {
			t.Fatalf("%s shards=%d: sequential err %v, sharded err %v", label, n, wantErr, gotErr)
		}
		if wantErr != nil {
			if wantErr.Error() != gotErr.Error() {
				t.Fatalf("%s shards=%d: fault diverges\nsequential: %v\nsharded:    %v", label, n, wantErr, gotErr)
			}
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s shards=%d: profiles diverge\nsequential: %+v\nsharded:    %+v",
				label, n, summarize(want), summarize(got))
		}
	}
}

// TestShardEquivalenceRandom is the core differential suite: seeded random
// traces (both generators) across every supported configuration must profile
// byte-for-byte identically on every shard count.
func TestShardEquivalenceRandom(t *testing.T) {
	for _, tc := range shardConfigs {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(0); seed < 12; seed++ {
				rng := rand.New(rand.NewSource(seed))
				tr := randomTrace(rng, 200+rng.Intn(600))
				requireShardEqual(t, fmt.Sprintf("builder seed %d", seed), tr, tc.cfg)

				tr = trace.Random(trace.RandomConfig{Seed: seed, Threads: 1 + int(seed%5), Ops: 400})
				requireShardEqual(t, fmt.Sprintf("random seed %d", seed), tr, tc.cfg)
			}
		})
	}
}

// TestShardEquivalenceWorkloads runs the paper's benchmark suites — the
// traces with the heaviest cross-thread communication in the repo — through
// the sweep, context-sensitively too.
func TestShardEquivalenceWorkloads(t *testing.T) {
	suites := append(append(workloads.SuiteOMP(), workloads.SuitePARSEC()...), workloads.SuiteMySQL()...)
	for _, cfgName := range []string{"full", "contexts"} {
		cfg := DefaultConfig()
		if cfgName == "contexts" {
			cfg.ContextSensitive = true
		}
		t.Run(cfgName, func(t *testing.T) {
			for _, b := range suites {
				requireShardEqual(t, b.Suite+"/"+b.Name, b.Build(), cfg)
			}
		})
	}
}

// corpusTraces decodes every decodable trace from the committed fuzz
// corpora (the trace codec's seeds plus this package's shard seeds), so the
// equivalence sweep also covers real serialized inputs — v2 framing,
// truncated and corrupt variants included (those that fail strict decode
// are skipped; the lenient path is covered in profio).
func corpusTraces(t *testing.T) map[string]*trace.Trace {
	t.Helper()
	out := make(map[string]*trace.Trace)
	for _, dir := range []string{
		filepath.Join("..", "trace", "testdata", "fuzz", "FuzzReadTrace"),
		filepath.Join("testdata", "fuzz", "FuzzProfileSharded"),
	} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			// Corpus format: "go test fuzz v1" then one []byte("...") line
			// per argument; the trace bytes are always the first.
			lines := strings.Split(string(data), "\n")
			if len(lines) < 2 || !strings.HasPrefix(lines[1], "[]byte(") {
				t.Fatalf("%s: unexpected corpus format", e.Name())
			}
			quoted := strings.TrimSuffix(strings.TrimPrefix(lines[1], "[]byte("), ")")
			raw, err := strconv.Unquote(quoted)
			if err != nil {
				t.Fatalf("%s: %v", e.Name(), err)
			}
			tr, err := trace.ReadBinary(bytes.NewReader([]byte(raw)))
			if err != nil {
				continue // corrupt/truncated seed; strict decode rejects it
			}
			out[e.Name()] = tr
		}
	}
	if len(out) < 8 {
		t.Fatalf("only %d corpus traces decoded; corpus missing?", len(out))
	}
	return out
}

// TestShardEquivalenceCorpus runs the committed fuzz-corpus traces through
// the shard-count sweep under the default and context-sensitive configs.
func TestShardEquivalenceCorpus(t *testing.T) {
	ctxCfg := DefaultConfig()
	ctxCfg.ContextSensitive = true
	for name, tr := range corpusTraces(t) {
		requireShardEqual(t, name, tr, DefaultConfig())
		requireShardEqual(t, name+"/contexts", tr, ctxCfg)
	}
}

// runWindowed drives a ShardedProfiler through tr in windows of the given
// size, mimicking the streaming pipeline's checkpoint-window granularity.
func runWindowed(tr *trace.Trace, cfg Config, nShards, window int) (*Profiles, error) {
	sp, err := NewShardedProfiler(tr.Symbols, cfg, nShards)
	if err != nil {
		return nil, err
	}
	evs := tr.Events
	for len(evs) > 0 {
		k := window
		if k > len(evs) {
			k = len(evs)
		}
		if err := sp.FeedWindow(evs[:k]); err != nil {
			return nil, err
		}
		evs = evs[k:]
	}
	return sp.Finish()
}

// TestShardEquivalenceWindowed checks that window placement is irrelevant:
// single-event windows, odd sizes that land boundaries mid-activation and
// mid-communication, and one whole-trace window all agree with the
// sequential profiler.
func TestShardEquivalenceWindowed(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		tr := randomTrace(rng, 500)
		for _, tc := range shardConfigs {
			want, err := Run(tr, tc.cfg)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, tc.name, err)
			}
			for _, window := range []int{1, 3, 17, 64, len(tr.Events)} {
				for _, n := range []int{2, 3, 7} {
					got, err := runWindowed(tr, tc.cfg, n, window)
					if err != nil {
						t.Fatalf("seed %d %s window=%d shards=%d: %v", seed, tc.name, window, n, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("seed %d %s window=%d shards=%d: diverges\nsequential: %+v\nsharded:    %+v",
							seed, tc.name, window, n, summarize(want), summarize(got))
					}
				}
			}
		}
	}
}

// crossShardHandoff builds the smallest trace whose profile depends on
// cross-shard write resolution: thread 1 writes a cell, thread 2 first-reads
// it. With index as split point, every window boundary — including one
// exactly between the write and the read — is exercised by the windowed
// sweep below.
func crossShardHandoff() *trace.Trace {
	b := trace.NewBuilder()
	t1, t2 := b.Thread(1), b.Thread(2)
	t1.Call("writer")
	t2.Call("reader")
	t1.Write1(7)     // cross-shard communication target
	t2.Read1(7)      // induced first-read from thread 1's write
	t1.SysRead(9, 2) // kernel fill ...
	t1.Write1(9)     // ... immediately overwritten by the same thread
	t2.Read(9, 2)    // cell 9: thread-induced; cell 10: kernel-induced
	t2.Write1(7)     // write back the other way
	t1.Read1(7)      // induced first-read from thread 2
	t1.Ret()
	t2.Ret()
	return b.Trace()
}

// sameCountWrites builds a trace where a kernel write and a thread write to
// the same cell occur under the same global counter value (no counter tick
// between them): resolution must pick the later one by trace position, not
// by timestamp.
func sameCountWrites() *trace.Trace {
	b := trace.NewBuilder()
	t1, t2 := b.Thread(1), b.Thread(2)
	t1.Call("producer")
	t2.Call("consumer")
	t1.SysRead(5, 1) // kernel writes cell 5
	t1.Write1(5)     // thread overwrites it; counter unchanged in between
	t2.Read1(5)      // must be thread-induced, not kernel-induced
	t1.Ret()
	t2.Ret()
	return b.Trace()
}

// deepStacks builds per-thread stacks around the MaxDepth limit so that
// depth capping (silent degradation) engages on both sides of any window
// boundary.
func deepStacks() *trace.Trace {
	b := trace.NewBuilder()
	for id := trace.ThreadID(1); id <= 3; id++ {
		tb := b.Thread(id)
		for d := 0; d < 6; d++ {
			tb.Call("f")
			tb.Write1(trace.Addr(id))
		}
		for d := 0; d < 6; d++ {
			tb.Read1(trace.Addr(id%3 + 1))
			tb.Ret()
		}
	}
	return b.Trace()
}

// TestShardBoundaryAdversarial sweeps every window split position over the
// crafted boundary traces: a first read whose writer is in another shard, a
// same-counter kernel/thread write pair, and stacks crossing the depth
// limit. Every split of every trace must reproduce the sequential profile.
func TestShardBoundaryAdversarial(t *testing.T) {
	cases := []struct {
		name string
		tr   *trace.Trace
		cfg  Config
	}{
		{"cross-shard-handoff", crossShardHandoff(), DefaultConfig()},
		{"same-count-writes", sameCountWrites(), DefaultConfig()},
		{"deep-stacks", deepStacks(), Config{ThreadInput: true, ExternalInput: true, Limits: Limits{MaxDepth: 3}}},
		{"handoff-contexts", crossShardHandoff(), Config{ThreadInput: true, ExternalInput: true, ContextSensitive: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := Run(tc.tr, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range []int{2, 3, 4} {
				for split := 1; split < len(tc.tr.Events); split++ {
					sp, err := NewShardedProfiler(tc.tr.Symbols, tc.cfg, n)
					if err != nil {
						t.Fatal(err)
					}
					if err := sp.FeedWindow(tc.tr.Events[:split]); err != nil {
						t.Fatalf("shards=%d split=%d: %v", n, split, err)
					}
					if err := sp.FeedWindow(tc.tr.Events[split:]); err != nil {
						t.Fatalf("shards=%d split=%d: %v", n, split, err)
					}
					got, err := sp.Finish()
					if err != nil {
						t.Fatalf("shards=%d split=%d: %v", n, split, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("shards=%d split=%d: diverges\nsequential: %+v\nsharded:    %+v",
							n, split, summarize(want), summarize(got))
					}
				}
			}
		})
	}
}

// TestShardEquivalenceReinterleave reuses the happens-before machinery the
// boundary resolution is built on: for every legal reinterleaving of a trace
// (arbitrary and synchronization-preserving), the sharded engine must agree
// with the sequential profiler on that same interleaving — and for
// synchronization-preserving reschedules of a fully synchronized workload,
// with the original schedule's profile too (§4.2 stability).
func TestShardEquivalenceReinterleave(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := randomTrace(rng, 600)
	for seed := int64(0); seed < 6; seed++ {
		requireShardEqual(t, fmt.Sprintf("reinterleave seed %d", seed),
			trace.Reinterleave(tr, seed), DefaultConfig())
		requireShardEqual(t, fmt.Sprintf("reinterleave-window seed %d", seed),
			trace.ReinterleaveWindow(tr, seed, 9), DefaultConfig())
	}

	sync := syncedPipeline(40)
	base, err := Run(sync, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := metricSummary(base)
	for seed := int64(0); seed < 6; seed++ {
		re := trace.ReinterleaveSync(sync, seed, 6)
		requireShardEqual(t, fmt.Sprintf("sync seed %d", seed), re, DefaultConfig())
		ps, err := ProfileSharded(re, DefaultConfig(), 3)
		if err != nil {
			t.Fatal(err)
		}
		got := metricSummary(ps)
		for name, vals := range want {
			if got[name] != vals {
				t.Errorf("sync seed %d: %s = %v, want %v (schedule invariance lost)", seed, name, got[name], vals)
			}
		}
	}
}

// faultyTraces builds traces that trip each fault class the profiler
// recognizes, including ones the Builder refuses to construct (unknown
// routine ids, negative thread ids on non-switch events).
func faultyTraces() map[string]*trace.Trace {
	out := make(map[string]*trace.Trace)

	b := trace.NewBuilder()
	tb := b.Thread(1)
	tb.Call("f")
	tb.Write1(1)
	tr := b.Trace()
	tr.Events = append(tr.Events, trace.Event{Kind: trace.KindReturn, Thread: 2})
	out["return-without-call"] = tr

	b = trace.NewBuilder()
	tb = b.Thread(1)
	tb.Call("f")
	tr = b.Trace()
	tr.Events = append(tr.Events, trace.Event{Kind: trace.KindCall, Thread: 1, Routine: 999})
	out["unknown-routine"] = tr

	b = trace.NewBuilder()
	tb = b.Thread(1)
	tb.Call("f")
	tb.Read1(3)
	tr = b.Trace()
	tr.Events = append(tr.Events, trace.Event{Kind: trace.KindWrite, Thread: -7, Addr: 3, Size: 1})
	out["negative-thread"] = tr

	b = trace.NewBuilder()
	tb = b.Thread(1)
	tb.Call("f")
	tr = b.Trace()
	tr.Events = append(tr.Events, trace.Event{Kind: trace.Kind(200), Thread: 1})
	out["invalid-kind"] = tr

	return out
}

// TestShardFaultParity: under the strict policy the sharded engine must
// report the same fault at the same event with the same message as the
// sequential profiler; under skip and count it must produce identical
// profiles and identical drop accounting.
func TestShardFaultParity(t *testing.T) {
	for name, tr := range faultyTraces() {
		t.Run(name, func(t *testing.T) {
			for _, policy := range []FaultPolicy{FaultStrict, FaultSkip, FaultCount} {
				cfg := DefaultConfig()
				cfg.FaultPolicy = policy
				requireShardEqual(t, fmt.Sprintf("%s policy=%v", name, policy), tr, cfg)
			}
		})
	}
	// Faults must also be position-exact when they race with valid events in
	// other shards inside the same window: pad each faulty trace with
	// unrelated work on higher threads.
	for name, tr := range faultyTraces() {
		b := trace.NewBuilder()
		for id := trace.ThreadID(5); id <= 8; id++ {
			tb := b.Thread(id)
			tb.Call("pad")
			tb.Write1(trace.Addr(id))
			tb.Read1(trace.Addr(id))
			tb.Ret()
		}
		pad := b.Trace()
		// Interleave: copy the padding trace's symbol table and append the
		// faulty events after remapping their routine ids.
		remap := make(map[trace.RoutineID]trace.RoutineID)
		for i := range tr.Events {
			ev := tr.Events[i]
			if ev.Kind == trace.KindCall && int(ev.Routine) < tr.Symbols.Len() {
				if _, ok := remap[ev.Routine]; !ok {
					remap[ev.Routine] = pad.Symbols.Intern(tr.Symbols.Name(ev.Routine))
				}
				ev.Routine = remap[ev.Routine]
			}
			pad.Events = append(pad.Events, ev)
		}
		cfg := DefaultConfig()
		requireShardEqual(t, "padded "+name, pad, cfg)
	}
}

// TestShardAdoption covers resume: a sequential profiler that has consumed a
// prefix is adopted by NewShardedFromProfiler, the suffix is fed in windows,
// and the result must equal profiling the whole trace sequentially.
func TestShardAdoption(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(300 + seed))
		tr := randomTrace(rng, 600)
		want, err := Run(tr, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		for _, prefix := range []int{0, 1, 97, len(tr.Events) / 2, len(tr.Events)} {
			for _, n := range []int{2, 4, 7} {
				p := NewProfiler(tr.Symbols, DefaultConfig())
				for i := 0; i < prefix; i++ {
					if err := p.HandleEvent(&tr.Events[i]); err != nil {
						t.Fatalf("seed %d prefix %d: %v", seed, prefix, err)
					}
				}
				sp, err := NewShardedFromProfiler(p, n)
				if err != nil {
					t.Fatalf("seed %d prefix %d shards %d: %v", seed, prefix, n, err)
				}
				for lo := prefix; lo < len(tr.Events); lo += 64 {
					hi := lo + 64
					if hi > len(tr.Events) {
						hi = len(tr.Events)
					}
					if err := sp.FeedWindow(tr.Events[lo:hi]); err != nil {
						t.Fatalf("seed %d prefix %d shards %d: %v", seed, prefix, n, err)
					}
				}
				got, err := sp.Finish()
				if err != nil {
					t.Fatalf("seed %d prefix %d shards %d: %v", seed, prefix, n, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d prefix %d shards %d: adoption diverges\nsequential: %+v\nsharded:    %+v",
						seed, prefix, n, summarize(want), summarize(got))
				}
			}
		}
	}
}

// TestShardGates pins down the support boundary: configurations the engine
// cannot shard are refused by the constructor and silently fall back to the
// sequential path in ProfileSharded.
func TestShardGates(t *testing.T) {
	unshardable := []struct {
		name string
		cfg  Config
	}{
		{"counter-limit", Config{ThreadInput: true, CounterLimit: 100}},
		{"max-events", Config{ThreadInput: true, Limits: Limits{MaxEvents: 10}}},
		{"max-memory", Config{ThreadInput: true, Limits: Limits{MaxMemoryBytes: 1024}}},
		{"on-activation", Config{ThreadInput: true, OnActivation: func(ActivationRecord) {}}},
	}
	rng := rand.New(rand.NewSource(7))
	tr := randomTrace(rng, 300)
	for _, tc := range unshardable {
		if CanShard(tc.cfg) {
			t.Errorf("%s: CanShard = true, want false", tc.name)
		}
		if _, err := NewShardedProfiler(tr.Symbols, tc.cfg, 4); err == nil {
			t.Errorf("%s: NewShardedProfiler accepted an unshardable config", tc.name)
		}
		// The fallback still profiles correctly (OnActivation results are not
		// comparable via DeepEqual on the callback, so compare summaries).
		want, err1 := Run(tr, tc.cfg)
		got, err2 := ProfileSharded(tr, tc.cfg, 4)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: fallback errs: %v / %v", tc.name, err1, err2)
		}
		if !reflect.DeepEqual(summarize(got), summarize(want)) {
			t.Errorf("%s: fallback profile diverges", tc.name)
		}
	}
	if _, err := NewShardedProfiler(tr.Symbols, DefaultConfig(), 1); err == nil {
		t.Error("NewShardedProfiler accepted nShards=1")
	}
	if _, err := NewShardedProfiler(tr.Symbols, DefaultConfig(), 0); err == nil {
		t.Error("NewShardedProfiler accepted nShards=0")
	}
}
