package core

import (
	"math/rand"
	"sort"
	"testing"

	"aprof/internal/trace"
)

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// O(log d) binary search for the deepest ancestor (vs the linear scan a
// naive implementation would use), and the profiler with/without the global
// write-timestamp machinery (the paper's "recognizing induced first-reads
// causes an average overhead of 29%").

// linearDeepestAncestor is the O(d) alternative to deepestAncestor.
func linearDeepestAncestor(stack []frame, ts uint64) (int, bool) {
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].ts <= ts {
			return i, true
		}
	}
	return 0, false
}

func ancestorFixture(depth int) ([]frame, []uint64) {
	stack := make([]frame, depth)
	for i := range stack {
		stack[i].ts = uint64(i*7 + 1)
	}
	rng := rand.New(rand.NewSource(3))
	queries := make([]uint64, 4096)
	for i := range queries {
		queries[i] = uint64(rng.Intn(depth*7 + 2))
	}
	return stack, queries
}

func TestLinearAncestorMatchesBinary(t *testing.T) {
	for _, depth := range []int{1, 2, 5, 64, 300} {
		stack, queries := ancestorFixture(depth)
		for _, q := range queries {
			bi, bok := deepestAncestor(stack, q)
			li, lok := linearDeepestAncestor(stack, q)
			if bok != lok || (bok && bi != li) {
				t.Fatalf("depth %d query %d: binary (%d,%v) vs linear (%d,%v)", depth, q, bi, bok, li, lok)
			}
		}
	}
}

func benchAncestor(b *testing.B, depth int, search func([]frame, uint64) (int, bool)) {
	stack, queries := ancestorFixture(depth)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		idx, _ := search(stack, queries[i%len(queries)])
		sink += idx
	}
	_ = sink
}

func BenchmarkDeepestAncestorBinaryD16(b *testing.B)  { benchAncestor(b, 16, deepestAncestor) }
func BenchmarkDeepestAncestorLinearD16(b *testing.B)  { benchAncestor(b, 16, linearDeepestAncestor) }
func BenchmarkDeepestAncestorBinaryD256(b *testing.B) { benchAncestor(b, 256, deepestAncestor) }
func BenchmarkDeepestAncestorLinearD256(b *testing.B) {
	benchAncestor(b, 256, linearDeepestAncestor)
}

// deepRecursionTrace produces a trace whose call stacks are deep and whose
// reads hit ancestors uniformly — the workload where the ancestor search
// dominates.
func deepRecursionTrace(depth, reads int) *trace.Trace {
	b := trace.NewBuilder()
	tb := b.Thread(1)
	rng := rand.New(rand.NewSource(11))
	for d := 0; d < depth; d++ {
		tb.Call("recurse")
		tb.Read1(trace.Addr(uint64(d)))
	}
	for i := 0; i < reads; i++ {
		tb.Read1(trace.Addr(uint64(rng.Intn(depth))))
	}
	for d := 0; d < depth; d++ {
		tb.Ret()
	}
	return b.Trace()
}

func BenchmarkProfilerDeepStacks(b *testing.B) {
	tr := deepRecursionTrace(512, 20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(tr, DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDeepStacksCorrect sanity-checks the deep-stack fixture: every read of
// an ancestor's cell discharges the right frame, so the root's drms equals
// the number of distinct cells.
func TestDeepStacksCorrect(t *testing.T) {
	const depth = 64
	tr := deepRecursionTrace(depth, 5000)
	ps, err := Run(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := ps.Routine("recurse")
	if rec == nil {
		t.Fatal("no recurse profile")
	}
	// The outermost activation sees every distinct cell exactly once.
	plot := rec.WorstCasePlot(MetricDRMS)
	maxDRMS := plot[len(plot)-1].N
	if maxDRMS != depth {
		t.Errorf("outermost drms = %d, want %d", maxDRMS, depth)
	}
	// Cross-check with the oracle.
	slow, err := RunNaive(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(plot, func(i, j int) bool { return plot[i].N < plot[j].N })
	slowPlot := slow.Routine("recurse").WorstCasePlot(MetricDRMS)
	if len(plot) != len(slowPlot) {
		t.Fatalf("plot sizes diverge: %d vs %d", len(plot), len(slowPlot))
	}
	for i := range plot {
		if plot[i] != slowPlot[i] {
			t.Fatalf("plots diverge at %d: %+v vs %+v", i, plot[i], slowPlot[i])
		}
	}
}
