package core

import (
	"math/rand"
	"testing"

	"aprof/internal/trace"
)

// syncedPipeline builds a fully semaphore-synchronized producer-consumer
// trace (the Fig. 2 protocol).
func syncedPipeline(n int) *trace.Trace {
	b := trace.NewBuilder()
	prod := b.Thread(1)
	cons := b.Thread(2)
	const semEmpty, semFull = trace.Addr(1), trace.Addr(2)
	prod.Call("producer")
	cons.Call("consumer")
	for i := 0; i < n; i++ {
		prod.Acquire(semEmpty)
		prod.Write1(100)
		prod.Release(semFull)
		cons.Acquire(semFull)
		cons.Read1(100)
		cons.Release(semEmpty)
	}
	prod.Ret()
	cons.Ret()
	tr := b.Trace()
	// Make the first producer acquire grantable: seed a release.
	// (The builder emitted Acquire(semEmpty) first; pre-simulation treats
	// its token as implicit-initial, which ReinterleaveSync honors.)
	return tr
}

// metricSummary flattens per-routine metric sums.
func metricSummary(ps *Profiles) map[string][2]uint64 {
	out := make(map[string][2]uint64)
	for id, p := range ps.MergeThreads() {
		out[ps.Symbols.Name(id)] = [2]uint64{p.SumRMS, p.SumDRMS}
	}
	return out
}

// TestProfilesScheduleInvariantWhenSynchronized is the §4.2 stability
// property at test granularity: for a fully synchronized workload, every
// legal reinterleaving yields identical rms and drms for every routine.
func TestProfilesScheduleInvariantWhenSynchronized(t *testing.T) {
	tr := syncedPipeline(50)
	base, err := Run(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := metricSummary(base)
	if want["consumer"][1] != 50 {
		t.Fatalf("consumer drms = %d, want 50", want["consumer"][1])
	}
	for seed := int64(0); seed < 8; seed++ {
		re := trace.ReinterleaveSync(tr, seed, 6)
		ps, err := Run(re, DefaultConfig())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got := metricSummary(ps)
		for name, vals := range want {
			if got[name] != vals {
				t.Errorf("seed %d: %s = %v, want %v", seed, name, got[name], vals)
			}
		}
	}
}

// TestSingleThreadProfilesInterleavingInvariant: a single-threaded trace has
// only one interleaving; the reinterleaver must be an observational no-op.
func TestSingleThreadProfilesInterleavingInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	b := trace.NewBuilder()
	tb := b.Thread(1)
	tb.Call("main")
	depth := 1
	for i := 0; i < 400; i++ {
		switch rng.Intn(6) {
		case 0:
			if depth < 6 {
				tb.Call("f")
				depth++
			}
		case 1:
			if depth > 1 {
				tb.Ret()
				depth--
			}
		case 2, 3:
			tb.Read(trace.Addr(rng.Intn(32)), uint32(1+rng.Intn(4)))
		case 4:
			tb.Write(trace.Addr(rng.Intn(32)), uint32(1+rng.Intn(4)))
		default:
			tb.SysRead(trace.Addr(rng.Intn(32)), uint32(1+rng.Intn(4)))
		}
	}
	tr := b.Trace()
	base, err := Run(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	re, err := Run(trace.ReinterleaveSync(tr, 5, 16), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	wantS, gotS := metricSummary(base), metricSummary(re)
	for name, vals := range wantS {
		if gotS[name] != vals {
			t.Errorf("%s: %v != %v", name, gotS[name], vals)
		}
	}
}

// TestRacyTraceCanChangeUnderReschedule documents the converse: with an
// unsynchronized handoff the drms may legitimately differ across schedules
// (this is the paper's fluctuation). The test asserts only that some seed
// changes the consumer's drms, proving the invariance above is not vacuous.
func TestRacyTraceCanChangeUnderReschedule(t *testing.T) {
	b := trace.NewBuilder()
	prod := b.Thread(1)
	cons := b.Thread(2)
	prod.Call("producer")
	cons.Call("consumer")
	for i := 0; i < 40; i++ {
		prod.Write1(100)
		cons.Read1(100)
	}
	prod.Ret()
	cons.Ret()
	tr := b.Trace()

	base, err := Run(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := base.Routine("consumer").SumDRMS
	changed := false
	for seed := int64(0); seed < 10 && !changed; seed++ {
		ps, err := Run(trace.ReinterleaveSync(tr, seed, 8), DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if ps.Routine("consumer").SumDRMS != want {
			changed = true
		}
	}
	if !changed {
		t.Error("no seed changed the racy consumer's drms; reinterleaver may be inert")
	}
}
