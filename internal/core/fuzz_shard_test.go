package core

import (
	"bytes"
	"reflect"
	"testing"

	"aprof/internal/trace"
)

// fuzzShardConfig maps the fuzzer's config selector byte onto the supported
// configuration space. Every config here satisfies CanShard, so the engine
// never falls back and the oracle comparison is always meaningful.
func fuzzShardConfig(sel byte) Config {
	cfgs := []Config{
		{ThreadInput: true, ExternalInput: true},
		{ThreadInput: true},
		{ExternalInput: true},
		{},
		{ThreadInput: true, ExternalInput: true, ContextSensitive: true},
		{ThreadInput: true, ExternalInput: true, MaxPointsPerProfile: 3},
		{ThreadInput: true, ExternalInput: true, Limits: Limits{MaxDepth: 2}},
		{ThreadInput: true, ExternalInput: true, FaultPolicy: FaultSkip},
		{ThreadInput: true, ExternalInput: true, FaultPolicy: FaultCount},
	}
	return cfgs[int(sel)%len(cfgs)]
}

// fuzzShardSeeds returns encoded traces that exercise the interesting
// machinery: cross-shard induced reads, same-counter write pairs, deep
// stacks, kernel I/O, and the v2 framing (small frames force resyncs on
// mutation). The same traces back the committed corpus under
// testdata/fuzz/FuzzProfileSharded.
func fuzzShardSeeds(tb testing.TB) [][]byte {
	encode := func(tr *trace.Trace, v2 bool) []byte {
		var buf bytes.Buffer
		var err error
		if v2 {
			err = trace.WriteBinary2Opts(&buf, tr, trace.V2Options{EventsPerFrame: 4})
		} else {
			err = trace.WriteBinary(&buf, tr)
		}
		if err != nil {
			tb.Fatal(err)
		}
		return buf.Bytes()
	}
	var seeds [][]byte
	for _, tr := range []*trace.Trace{
		crossShardHandoff(),
		sameCountWrites(),
		deepStacks(),
		trace.Random(trace.RandomConfig{Seed: 11, Threads: 4, Ops: 120, Cells: 8}),
	} {
		seeds = append(seeds, encode(tr, false), encode(tr, true))
	}
	return seeds
}

// FuzzProfileSharded mutates raw trace bytes, the shard count, and the
// configuration, using the sequential profiler as the oracle: for every
// decodable input the sharded engine must either produce a deeply equal
// Profiles value or fail with the identical error.
func FuzzProfileSharded(f *testing.F) {
	for i, data := range fuzzShardSeeds(f) {
		f.Add(data, byte(i), byte(i))
		f.Add(data, byte(7), byte(4)) // prime shard count, context-sensitive
	}
	f.Fuzz(func(t *testing.T, data []byte, shardSel, cfgSel byte) {
		tr, err := trace.ReadBinary(bytes.NewReader(data))
		if err != nil {
			t.Skip() // undecodable mutants are the codec fuzzer's domain
		}
		if len(tr.Events) > 1<<16 {
			t.Skip() // keep per-input cost bounded
		}
		cfg := fuzzShardConfig(cfgSel)
		nShards := 2 + int(shardSel)%15
		want, wantErr := Run(tr, cfg)
		got, gotErr := ProfileSharded(tr, cfg, nShards)
		if (wantErr != nil) != (gotErr != nil) {
			t.Fatalf("shards=%d cfg=%d: sequential err %v, sharded err %v", nShards, cfgSel, wantErr, gotErr)
		}
		if wantErr != nil {
			if wantErr.Error() != gotErr.Error() {
				t.Fatalf("shards=%d cfg=%d: fault diverges\nsequential: %v\nsharded:    %v", nShards, cfgSel, wantErr, gotErr)
			}
			return
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d cfg=%d: profiles diverge\nsequential: %+v\nsharded:    %+v",
				nShards, cfgSel, summarize(want), summarize(got))
		}
	})
}
