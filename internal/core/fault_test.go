package core

import (
	"strings"
	"testing"

	"aprof/internal/trace"
)

// feedEvents drives a profiler over raw events, returning (profiles, error).
func feedEvents(cfg Config, syms *trace.SymbolTable, events []trace.Event) (*Profiles, error) {
	p := NewProfiler(syms, cfg)
	for i := range events {
		if err := p.HandleEvent(&events[i]); err != nil {
			return nil, err
		}
	}
	return p.Finish()
}

func symsWith(names ...string) *trace.SymbolTable {
	s := trace.NewSymbolTable()
	for _, n := range names {
		s.Intern(n)
	}
	return s
}

// TestFaultReturnWithoutCall covers the three policies on a return with an
// empty shadow stack.
func TestFaultReturnWithoutCall(t *testing.T) {
	syms := symsWith("f")
	events := []trace.Event{
		{Kind: trace.KindReturn, Thread: 1, Cost: 5},
		{Kind: trace.KindCall, Thread: 1, Routine: 0, Cost: 6},
		{Kind: trace.KindReturn, Thread: 1, Cost: 9},
	}

	if _, err := feedEvents(Config{}, syms, events); err == nil {
		t.Error("strict: no error on return-without-call")
	} else if !strings.Contains(err.Error(), "empty shadow stack") {
		t.Errorf("strict: unexpected error %v", err)
	}

	ps, err := feedEvents(Config{FaultPolicy: FaultSkip}, syms, events)
	if err != nil {
		t.Fatalf("skip: %v", err)
	}
	if ps.Drops.Total() != 0 {
		t.Errorf("skip: drops counted: %+v", ps.Drops)
	}
	if got := ps.Get("f", 1); got == nil || got.Calls != 1 {
		t.Errorf("skip: profile for f missing or wrong calls: %+v", got)
	}

	ps, err = feedEvents(Config{FaultPolicy: FaultCount}, syms, events)
	if err != nil {
		t.Fatalf("count: %v", err)
	}
	if ps.Drops.ReturnWithoutCall != 1 || ps.Drops.Total() != 1 {
		t.Errorf("count: drops = %+v, want ReturnWithoutCall=1 only", ps.Drops)
	}
}

// TestFaultUnknownRoutine covers calls naming a routine id outside the
// symbol table.
func TestFaultUnknownRoutine(t *testing.T) {
	syms := symsWith("f")
	events := []trace.Event{
		{Kind: trace.KindCall, Thread: 1, Routine: 42, Cost: 1},
		{Kind: trace.KindCall, Thread: 1, Routine: 0, Cost: 2},
		{Kind: trace.KindReturn, Thread: 1, Cost: 8},
	}
	if _, err := feedEvents(Config{}, syms, events); err == nil {
		t.Error("strict: no error on unknown routine")
	}
	ps, err := feedEvents(Config{FaultPolicy: FaultCount}, syms, events)
	if err != nil {
		t.Fatalf("count: %v", err)
	}
	if ps.Drops.UnknownRoutine != 1 {
		t.Errorf("count: drops = %+v, want UnknownRoutine=1", ps.Drops)
	}
	// The dropped call pushed no frame: the return matches the good call.
	if got := ps.Get("f", 1); got == nil || got.Calls != 1 || got.TotalCost != 6 {
		t.Errorf("count: profile for f = %+v, want 1 call of cost 6", got)
	}
}

// TestFaultBadThread covers events with a negative thread id.
func TestFaultBadThread(t *testing.T) {
	syms := symsWith("f")
	events := []trace.Event{
		{Kind: trace.KindCall, Thread: -3, Routine: 0, Cost: 1},
		{Kind: trace.KindCall, Thread: 1, Routine: 0, Cost: 1},
		{Kind: trace.KindReturn, Thread: 1, Cost: 2},
	}
	if _, err := feedEvents(Config{}, syms, events); err == nil {
		t.Error("strict: no error on negative thread id")
	}
	ps, err := feedEvents(Config{FaultPolicy: FaultCount}, syms, events)
	if err != nil {
		t.Fatalf("count: %v", err)
	}
	if ps.Drops.BadThread != 1 {
		t.Errorf("count: drops = %+v, want BadThread=1", ps.Drops)
	}
}

// TestFaultAfterFinish covers events fed after Finish.
func TestFaultAfterFinish(t *testing.T) {
	for _, policy := range []FaultPolicy{FaultStrict, FaultSkip, FaultCount} {
		p := NewProfiler(symsWith("f"), Config{FaultPolicy: policy})
		if _, err := p.Finish(); err != nil {
			t.Fatal(err)
		}
		ev := trace.Event{Kind: trace.KindCall, Thread: 1, Routine: 0, Cost: 1}
		err := p.HandleEvent(&ev)
		if policy == FaultStrict {
			if err == nil {
				t.Error("strict: no error on event after Finish")
			}
		} else if err != nil {
			t.Errorf("%v: %v", policy, err)
		}
	}
}

// TestFaultInvalidKind covers events with an out-of-range kind byte.
func TestFaultInvalidKind(t *testing.T) {
	syms := symsWith("f")
	events := []trace.Event{{Kind: trace.Kind(99), Thread: 1}}
	if _, err := feedEvents(Config{}, syms, events); err == nil {
		t.Error("strict: no error on invalid kind")
	}
	ps, err := feedEvents(Config{FaultPolicy: FaultCount}, syms, events)
	if err != nil {
		t.Fatalf("count: %v", err)
	}
	if ps.Drops.InvalidKind != 1 {
		t.Errorf("count: drops = %+v, want InvalidKind=1", ps.Drops)
	}
}

// TestAdversarialTolerated pins down event orders that are legal in this
// trace model and must NOT fault under any policy: a switchThread to the
// thread that is already current, a kernelToUser with no prior userToKernel
// (system calls like read(2) produce standalone kernelToUser events), and
// memory events on a thread whose stack has emptied (they update shadow
// state but charge no activation).
func TestAdversarialTolerated(t *testing.T) {
	syms := symsWith("f")
	events := []trace.Event{
		{Kind: trace.KindSwitchThread, Thread: 1},
		{Kind: trace.KindSwitchThread, Thread: 1}, // duplicate switch
		{Kind: trace.KindKernelToUser, Thread: 1, Addr: 0x10, Size: 4, Cost: 1},
		{Kind: trace.KindCall, Thread: 1, Routine: 0, Cost: 2},
		{Kind: trace.KindRead, Thread: 1, Addr: 0x10, Size: 4, Cost: 3},
		{Kind: trace.KindReturn, Thread: 1, Cost: 4},
		// Stack now empty: memory events must still be absorbed cleanly.
		{Kind: trace.KindRead, Thread: 1, Addr: 0x20, Size: 1, Cost: 5},
		{Kind: trace.KindWrite, Thread: 1, Addr: 0x20, Size: 1, Cost: 6},
	}
	for _, policy := range []FaultPolicy{FaultStrict, FaultSkip, FaultCount} {
		ps, err := feedEvents(Config{ThreadInput: true, ExternalInput: true, FaultPolicy: policy}, syms, events)
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if ps.Drops.Total() != 0 {
			t.Errorf("%v: spurious drops %+v", policy, ps.Drops)
		}
		prof := ps.Get("f", 1)
		if prof == nil || prof.Calls != 1 {
			t.Fatalf("%v: profile missing", policy)
		}
		// The 4 cells were kernel-produced before the call: induced
		// first-reads attributed to the external source.
		if prof.InducedExternal != 4 {
			t.Errorf("%v: InducedExternal = %d, want 4", policy, prof.InducedExternal)
		}
	}
}

// TestLimitsMaxDepth checks the depth cap: deep calls are shed and counted,
// shallow profiling resumes after the overflowing subtree unwinds, and the
// results are identical under every policy.
func TestLimitsMaxDepth(t *testing.T) {
	syms := symsWith("r")
	var events []trace.Event
	const depth = 10
	for i := 0; i < depth; i++ {
		events = append(events, trace.Event{Kind: trace.KindCall, Thread: 1, Routine: 0, Cost: uint64(i)})
	}
	for i := depth; i > 0; i-- {
		events = append(events, trace.Event{Kind: trace.KindReturn, Thread: 1, Cost: uint64(2*depth - i)})
	}
	// A second, shallow activation after the deep tower.
	events = append(events,
		trace.Event{Kind: trace.KindCall, Thread: 1, Routine: 0, Cost: 100},
		trace.Event{Kind: trace.KindReturn, Thread: 1, Cost: 101},
	)
	cfg := Config{Limits: Limits{MaxDepth: 4}}
	ps, err := feedEvents(cfg, syms, events)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Drops.DepthOverflow != depth-4 {
		t.Errorf("DepthOverflow = %d, want %d", ps.Drops.DepthOverflow, depth-4)
	}
	prof := ps.Get("r", 1)
	if prof == nil || prof.Calls != 4+1 {
		t.Fatalf("profile = %+v, want 5 collected activations", prof)
	}
}

// TestLimitsMaxEventsSampling checks that passing MaxEvents degrades to
// sampling: some memory events are shed and counted, and the run completes.
func TestLimitsMaxEventsSampling(t *testing.T) {
	syms := symsWith("r")
	var events []trace.Event
	events = append(events, trace.Event{Kind: trace.KindCall, Thread: 1, Routine: 0, Cost: 0})
	for i := 0; i < 1000; i++ {
		events = append(events, trace.Event{
			Kind: trace.KindRead, Thread: 1, Addr: trace.Addr(i), Size: 1, Cost: uint64(i),
		})
	}
	events = append(events, trace.Event{Kind: trace.KindReturn, Thread: 1, Cost: 1001})

	cfg := Config{Limits: Limits{MaxEvents: 100}}
	ps, err := feedEvents(cfg, syms, events)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Drops.SampledOut == 0 {
		t.Error("no events sampled out past MaxEvents")
	}
	prof := ps.Get("r", 1)
	if prof == nil || prof.Calls != 1 {
		t.Fatal("activation lost")
	}
	// Costs stay exact even when metrics degrade.
	if prof.TotalCost != 1001 {
		t.Errorf("TotalCost = %d, want 1001 (costs must stay exact)", prof.TotalCost)
	}
	// Metrics degrade but remain bounded by the true value.
	if prof.SumRMS >= 1000 {
		t.Errorf("SumRMS = %d: sampling did not reduce the metric", prof.SumRMS)
	}
	// An unlimited run over the same events must not drop anything.
	ps2, err := feedEvents(Config{}, syms, events)
	if err != nil {
		t.Fatal(err)
	}
	if ps2.Drops.Total() != 0 {
		t.Errorf("unlimited run dropped events: %+v", ps2.Drops)
	}
}

// TestLimitsMaxMemorySampling checks that a tight memory bound triggers the
// sampling degradation instead of unbounded shadow growth.
func TestLimitsMaxMemorySampling(t *testing.T) {
	syms := symsWith("r")
	var events []trace.Event
	events = append(events, trace.Event{Kind: trace.KindCall, Thread: 1, Routine: 0, Cost: 0})
	// Touch many distinct pages so the shadow memory actually grows; enough
	// events to cross several memCheckInterval boundaries.
	for i := 0; i < 3*memCheckInterval; i++ {
		events = append(events, trace.Event{
			Kind: trace.KindRead, Thread: 1, Addr: trace.Addr(i * 4096), Size: 1, Cost: uint64(i),
		})
	}
	events = append(events, trace.Event{Kind: trace.KindReturn, Thread: 1, Cost: 99999})

	cfg := Config{Limits: Limits{MaxMemoryBytes: 64 << 10}}
	ps, err := feedEvents(cfg, syms, events)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Drops.SampledOut == 0 {
		t.Error("memory bound never triggered sampling")
	}
}

// TestParseFaultPolicy covers the flag parser.
func TestParseFaultPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FaultPolicy
		ok   bool
	}{
		{"strict", FaultStrict, true},
		{"", FaultStrict, true},
		{"skip", FaultSkip, true},
		{"count", FaultCount, true},
		{"bogus", FaultStrict, false},
	} {
		got, err := ParseFaultPolicy(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseFaultPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if tc.ok && tc.in != "" && got.String() != tc.in {
			t.Errorf("String() = %q, want %q", got.String(), tc.in)
		}
	}
}
