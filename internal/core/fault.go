package core

import "fmt"

// FaultPolicy selects how the profiler reacts to semantically malformed
// events: a return with no pending call, a call naming an unknown routine, a
// negative thread id, an event arriving after Finish, or an event of an
// invalid kind. Such events occur in practice when ingesting traces from
// partially corrupt or truncated sources (the lenient trace reader
// guarantees frame integrity, not cross-frame semantic consistency).
type FaultPolicy int

const (
	// FaultStrict aborts the run on the first malformed event. The zero
	// value: existing callers keep the fail-fast behavior.
	FaultStrict FaultPolicy = iota
	// FaultSkip drops malformed events silently.
	FaultSkip
	// FaultCount drops malformed events and counts them per category in
	// Profiles.Drops.
	FaultCount
)

// String returns the policy name as accepted by ParseFaultPolicy.
func (p FaultPolicy) String() string {
	switch p {
	case FaultSkip:
		return "skip"
	case FaultCount:
		return "count"
	default:
		return "strict"
	}
}

// ParseFaultPolicy parses a policy name (strict, skip, count).
func ParseFaultPolicy(s string) (FaultPolicy, error) {
	switch s {
	case "strict", "":
		return FaultStrict, nil
	case "skip":
		return FaultSkip, nil
	case "count":
		return FaultCount, nil
	}
	return FaultStrict, fmt.Errorf("core: unknown fault policy %q (want strict, skip, or count)", s)
}

// DropStats counts events dropped by a non-strict FaultPolicy or by the
// Limits degradation machinery, per category.
type DropStats struct {
	// ReturnWithoutCall counts return events on a thread whose shadow stack
	// was empty.
	ReturnWithoutCall uint64 `json:"returnWithoutCall,omitempty"`
	// UnknownRoutine counts call events naming a routine id not present in
	// the symbol table.
	UnknownRoutine uint64 `json:"unknownRoutine,omitempty"`
	// BadThread counts events carrying a negative thread id.
	BadThread uint64 `json:"badThread,omitempty"`
	// AfterFinish counts events fed after Finish.
	AfterFinish uint64 `json:"afterFinish,omitempty"`
	// InvalidKind counts events of a kind the profiler does not know.
	InvalidKind uint64 `json:"invalidKind,omitempty"`
	// DepthOverflow counts call events beyond Limits.MaxDepth, whose frames
	// were not pushed (their matching returns are absorbed silently).
	DepthOverflow uint64 `json:"depthOverflow,omitempty"`
	// SampledOut counts memory events skipped by the sampling degradation
	// triggered by Limits.MaxEvents or Limits.MaxMemoryBytes.
	SampledOut uint64 `json:"sampledOut,omitempty"`
}

// Total returns the total number of dropped events.
func (d *DropStats) Total() uint64 {
	return d.ReturnWithoutCall + d.UnknownRoutine + d.BadThread +
		d.AfterFinish + d.InvalidKind + d.DepthOverflow + d.SampledOut
}

// IsZero reports whether nothing was dropped.
func (d *DropStats) IsZero() bool { return d.Total() == 0 }

// Merge folds other into d (used when aggregating multi-run profiles).
func (d *DropStats) Merge(other *DropStats) {
	d.ReturnWithoutCall += other.ReturnWithoutCall
	d.UnknownRoutine += other.UnknownRoutine
	d.BadThread += other.BadThread
	d.AfterFinish += other.AfterFinish
	d.InvalidKind += other.InvalidKind
	d.DepthOverflow += other.DepthOverflow
	d.SampledOut += other.SampledOut
}

// Limits bounds the profiler's resource usage on hostile or runaway inputs.
// Hitting a limit is not an error: the profiler degrades (dropping deep
// frames, sampling memory events) and accounts for every shed event in
// Profiles.Drops, instead of growing without bound.
type Limits struct {
	// MaxDepth caps each thread's shadow stack depth. Calls beyond the cap
	// are counted in Drops.DepthOverflow and not profiled; their returns are
	// matched against the overflow counter, so profiling resumes cleanly
	// once the stack shrinks below the cap. 0 = unlimited.
	MaxDepth int
	// MaxEvents, when non-zero, starts sampling memory events (read, write,
	// userToKernel, kernelToUser) once the run has processed this many
	// events, doubling the sampling stride each time the event count doubles
	// again. Metric values of routines active past the threshold become
	// estimates; costs stay exact.
	MaxEvents int
	// MaxMemoryBytes, when non-zero, bounds the profiler's estimated live
	// memory: every memCheckInterval events the deterministic size estimate
	// is compared against the bound, and the memory-event sampling stride is
	// doubled while the estimate exceeds it. 0 = unlimited.
	MaxMemoryBytes int64
}

// memCheckInterval is how often (in events) the MaxMemoryBytes estimate is
// refreshed. A power of two so the check stays aligned across resume.
const memCheckInterval = 4096

// maxMemStride caps the sampling degradation: past 1 in 2^20 memory events
// the profiler is effectively blind and doubling further only loses data.
const maxMemStride = 1 << 20

// fault handles one malformed event according to the configured policy:
// FaultStrict stores and returns an error built from format+args, the other
// policies bump *counter (FaultCount) or drop silently (FaultSkip).
func (p *Profiler) fault(counter *uint64, format string, args ...interface{}) error {
	switch p.cfg.FaultPolicy {
	case FaultSkip:
		return nil
	case FaultCount:
		*counter++
		return nil
	default:
		p.err = fmt.Errorf(format, args...)
		return p.err
	}
}
