package core

import (
	"fmt"
	"sort"

	"aprof/internal/trace"
)

// NaiveProfiler is a simple-minded profiler in the spirit of Fig. 7,
// implemented directly from Definitions 2 and 3 and used as a
// differential-testing oracle for the timestamping algorithm. It maintains
// explicit sets instead of timestamps:
//
//   - per pending activation r of thread t, the set acc(r,t) of locations
//     accessed by r or by any of its (completed) descendants — a read of
//     ℓ ∉ acc(r,t) is a *first-read* for r;
//   - per memory location ℓ, the identity of the latest writer (an
//     application thread, or the kernel) together with the set of threads
//     that accessed ℓ since that write — a read by t is an *induced
//     first-read* when the latest writer exists, differs from t, and t has
//     not accessed ℓ since.
//
// A read operation contributes to drms(r,t) if it is a first-read or an
// induced first-read for r; induced first-reads hold for every pending
// activation at once (the inducing condition is thread-level), while plain
// first-reads hold exactly for the activations whose acc set misses ℓ. The
// rms counts first accesses that are reads, using the same acc sets.
//
// As the paper observes for the naive approach, the space is proportional
// to the memory size times the stack depth times the number of threads, and
// every event updates many sets — this profiler exists for correctness
// checking, not for use.
type NaiveProfiler struct {
	cfg     Config
	syms    *trace.SymbolTable
	threads map[trace.ThreadID]*naiveThread
	cells   map[trace.Addr]*naiveCell
	out     *Profiles
}

const kernelWriter trace.ThreadID = -1 << 30

type naiveCell struct {
	// writer is the latest writer of the cell: a thread id, kernelWriter,
	// or absent (cell never written) when the cell is missing from the map.
	writer trace.ThreadID
	// accessedSince holds the threads that accessed the cell since the
	// latest write.
	accessedSince map[trace.ThreadID]bool
}

type naiveThread struct {
	id    trace.ThreadID
	stack []*naiveFrame
	cost  uint64
}

type naiveFrame struct {
	rtn       trace.RoutineID
	entryCost uint64
	acc       map[trace.Addr]bool
	a         activation
}

// NewNaiveProfiler returns the oracle profiler.
func NewNaiveProfiler(syms *trace.SymbolTable, cfg Config) *NaiveProfiler {
	return &NaiveProfiler{
		cfg:     cfg,
		syms:    syms,
		threads: make(map[trace.ThreadID]*naiveThread),
		cells:   make(map[trace.Addr]*naiveCell),
		out: &Profiles{
			Symbols: syms,
			ByKey:   make(map[Key]*Profile),
		},
	}
}

// RunNaive runs the oracle over a merged trace.
func RunNaive(tr *trace.Trace, cfg Config) (*Profiles, error) {
	p := NewNaiveProfiler(tr.Symbols, cfg)
	for i := range tr.Events {
		if err := p.HandleEvent(&tr.Events[i]); err != nil {
			return nil, fmt.Errorf("core: naive: event %d (%s): %w", i, tr.Events[i].String(), err)
		}
	}
	return p.Finish()
}

func (p *NaiveProfiler) thread(id trace.ThreadID) *naiveThread {
	t, ok := p.threads[id]
	if !ok {
		t = &naiveThread{id: id}
		p.threads[id] = t
	}
	return t
}

// HandleEvent processes one event.
func (p *NaiveProfiler) HandleEvent(ev *trace.Event) error {
	p.out.Events++
	switch ev.Kind {
	case trace.KindCall:
		t := p.thread(ev.Thread)
		t.cost = ev.Cost
		t.stack = append(t.stack, &naiveFrame{
			rtn:       ev.Routine,
			entryCost: ev.Cost,
			acc:       make(map[trace.Addr]bool),
		})
	case trace.KindReturn:
		t := p.thread(ev.Thread)
		t.cost = ev.Cost
		if len(t.stack) == 0 {
			return fmt.Errorf("return on thread %d with empty stack", ev.Thread)
		}
		p.pop(t, ev.Cost)
	case trace.KindRead, trace.KindUserToKernel:
		t := p.thread(ev.Thread)
		t.cost = ev.Cost
		ev.Cells(func(a trace.Addr) { p.read(t, a) })
	case trace.KindWrite:
		t := p.thread(ev.Thread)
		t.cost = ev.Cost
		ev.Cells(func(a trace.Addr) { p.write(t, a) })
	case trace.KindKernelToUser:
		t := p.thread(ev.Thread)
		t.cost = ev.Cost
		ev.Cells(func(a trace.Addr) {
			p.cells[a] = &naiveCell{
				writer:        kernelWriter,
				accessedSince: make(map[trace.ThreadID]bool),
			}
		})
	case trace.KindSwitchThread:
		// No counter to maintain in the naive model.
	case trace.KindAcquire, trace.KindRelease:
		p.thread(ev.Thread).cost = ev.Cost
	default:
		return fmt.Errorf("unhandled event kind %v", ev.Kind)
	}
	return nil
}

func (p *NaiveProfiler) read(t *naiveThread, a trace.Addr) {
	cell := p.cells[a]

	inducedBy := writerNone
	if cell != nil && cell.writer != t.id && !cell.accessedSince[t.id] {
		if cell.writer == kernelWriter {
			if p.cfg.ExternalInput {
				inducedBy = writerKernel
			}
		} else if p.cfg.ThreadInput {
			inducedBy = writerThread
		}
	}
	if cell != nil {
		cell.accessedSince[t.id] = true
	}

	if len(t.stack) == 0 {
		return
	}
	if inducedBy != writerNone {
		// Induced first-read: the inducing condition is thread-level, so it
		// counts for every pending activation, under the same attribution
		// (the efficient algorithm reaches the same totals by incrementing
		// only the topmost partial counter, which rolls up at returns).
		for _, f := range t.stack {
			switch inducedBy {
			case writerThread:
				f.a.indThread++
			case writerKernel:
				f.a.indExternal++
			}
		}
	} else {
		for _, f := range t.stack {
			if !f.acc[a] {
				f.a.first++
			}
		}
	}
	// rms: a first access that is a read, per activation.
	for _, f := range t.stack {
		if !f.acc[a] {
			f.a.rms++
			f.acc[a] = true
		}
	}
}

func (p *NaiveProfiler) write(t *naiveThread, a trace.Addr) {
	cell := p.cells[a]
	if cell == nil {
		cell = &naiveCell{accessedSince: make(map[trace.ThreadID]bool)}
		p.cells[a] = cell
	}
	cell.writer = t.id
	clear(cell.accessedSince)
	cell.accessedSince[t.id] = true
	for _, f := range t.stack {
		f.acc[a] = true
	}
}

// Finish collects pending activations and returns the profiles.
func (p *NaiveProfiler) Finish() (*Profiles, error) {
	ids := make([]trace.ThreadID, 0, len(p.threads))
	for id := range p.threads {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		t := p.threads[id]
		for len(t.stack) > 0 {
			p.pop(t, t.cost)
		}
	}
	return p.out, nil
}

func (p *NaiveProfiler) pop(t *naiveThread, retCost uint64) {
	top := len(t.stack) - 1
	f := t.stack[top]
	t.stack = t.stack[:top]
	key := Key{Routine: f.rtn, Thread: t.id}
	prof := p.out.ByKey[key]
	if prof == nil {
		prof = newProfile(f.rtn, t.id)
		p.out.ByKey[key] = prof
	}
	cost := uint64(0)
	if retCost > f.entryCost {
		cost = retCost - f.entryCost
	}
	a := f.a
	a.cost = cost
	prof.collect(a)
	if p.cfg.OnActivation != nil {
		p.cfg.OnActivation(a.record(f.rtn, t.id))
	}
}
