package core

// Point bucketing bounds the memory of long-running profiles. Each distinct
// input size is a point in a routine's cost plot; a server processing
// millions of distinct workload sizes would otherwise accumulate millions of
// map entries per routine (the original aprof faces the same concern with
// its per-rms hash tables). With Config.MaxPointsPerProfile set, a profile
// whose point count exceeds the limit is re-bucketed: input sizes are
// progressively quantized by dropping low-order bits (shift doubling each
// round), halving the point count while preserving the plot's shape — the
// quantization error is at most a factor (1 + 2^shift/n) on the x-axis,
// which vanishes for the large n where bucketing matters.

// bucketKey quantizes an input size under the given shift.
func bucketKey(n uint64, shift uint8) uint64 {
	return n >> shift << shift
}

// rebucket coarsens points in place until len(points) <= limit, returning
// the resulting shift.
func rebucket(points map[uint64]*CostStats, shift uint8, limit int) uint8 {
	for len(points) > limit && shift < 63 {
		shift++
		coarser := make(map[uint64]*CostStats, len(points)/2+1)
		for n, st := range points {
			key := bucketKey(n, shift)
			dst := coarser[key]
			if dst == nil {
				coarser[key] = st
				continue
			}
			dst.merge(st)
		}
		// Replace the contents of the original map (callers hold the map
		// value inside Profile, so mutate in place).
		for k := range points {
			delete(points, k)
		}
		for k, v := range coarser {
			points[k] = v
		}
	}
	return shift
}

// requantize rewrites every key of points under the given shift, merging
// buckets that collide.
func requantize(points map[uint64]*CostStats, shift uint8) {
	coarser := make(map[uint64]*CostStats, len(points))
	for n, st := range points {
		key := bucketKey(n, shift)
		if dst := coarser[key]; dst != nil {
			dst.merge(st)
		} else {
			coarser[key] = st
		}
	}
	for k := range points {
		delete(points, k)
	}
	for k, v := range coarser {
		points[k] = v
	}
}

// addPoint inserts one activation's (input size, cost) observation under the
// profile's current bucketing, re-bucketing if the limit is exceeded.
func (p *Profile) addPoint(points map[uint64]*CostStats, shift *uint8, n, cost uint64, limit int) {
	key := bucketKey(n, *shift)
	st := points[key]
	if st == nil {
		st = &CostStats{}
		points[key] = st
	}
	st.add(cost)
	if limit > 0 && len(points) > limit {
		*shift = rebucket(points, *shift, limit)
	}
}
