package core

import (
	"testing"

	"aprof/internal/trace"
)

// profileBoth runs both the efficient and the naive profiler and fails the
// test if any disagreement arises later via compareProfiles.
func runFull(t *testing.T, tr *trace.Trace) *Profiles {
	t.Helper()
	ps, err := Run(tr, DefaultConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return ps
}

func mustProfile(t *testing.T, ps *Profiles, routine string, thread trace.ThreadID) *Profile {
	t.Helper()
	p := ps.Get(routine, thread)
	if p == nil {
		t.Fatalf("no profile for %s on thread %d", routine, thread)
	}
	return p
}

// TestFigure1a reproduces Fig. 1a: routine f in thread T1 reads x twice, and
// routine g in thread T2 overwrites x between the two reads. The second read
// gets a value not produced by f, so it is new input: rms(f)=1, drms(f)=2.
func TestFigure1a(t *testing.T) {
	const x = trace.Addr(100)
	b := trace.NewBuilder()
	t1 := b.Thread(1)
	t2 := b.Thread(2)

	t1.Call("f")
	t1.Read1(x)

	t2.Call("g")
	t2.Write1(x)
	t2.Ret()

	t1.Read1(x)
	t1.Ret()

	ps := runFull(t, b.Trace())
	f := mustProfile(t, ps, "f", 1)
	if f.SumRMS != 1 {
		t.Errorf("rms(f,T1) = %d, want 1", f.SumRMS)
	}
	if f.SumDRMS != 2 {
		t.Errorf("drms(f,T1) = %d, want 2", f.SumDRMS)
	}
	if f.InducedThread != 1 || f.InducedExternal != 0 {
		t.Errorf("induced(f) = (thread=%d, external=%d), want (1, 0)", f.InducedThread, f.InducedExternal)
	}
}

// TestFigure1b reproduces Fig. 1b: f reads x, T2 overwrites x, f's
// subroutine h reads x (an induced first-read, also counted for f), then f
// reads x a third time — not induced, because f already re-accessed x
// through h after T2's write. rms(h)=1, rms(f)=1, drms(h)=1, drms(f)=2.
func TestFigure1b(t *testing.T) {
	const x = trace.Addr(100)
	b := trace.NewBuilder()
	t1 := b.Thread(1)
	t2 := b.Thread(2)

	t1.Call("f")
	t1.Read1(x)

	t2.Call("g")
	t2.Write1(x)
	t2.Ret()

	t1.Call("h")
	t1.Read1(x)
	t1.Ret()
	t1.Read1(x)
	t1.Ret()

	ps := runFull(t, b.Trace())
	f := mustProfile(t, ps, "f", 1)
	h := mustProfile(t, ps, "h", 1)
	if h.SumRMS != 1 || h.SumDRMS != 1 {
		t.Errorf("h: rms=%d drms=%d, want 1 and 1", h.SumRMS, h.SumDRMS)
	}
	if f.SumRMS != 1 {
		t.Errorf("rms(f,T1) = %d, want 1", f.SumRMS)
	}
	if f.SumDRMS != 2 {
		t.Errorf("drms(f,T1) = %d, want 2", f.SumDRMS)
	}
}

// TestFigure2ProducerConsumer reproduces the producer-consumer pattern of
// Fig. 2: the consumer repeatedly reads the same location x, which the
// producer overwrites before every read. After n iterations
// rms(consumer)=1 while drms(consumer)=n.
func TestFigure2ProducerConsumer(t *testing.T) {
	const (
		x = trace.Addr(500)
		n = 40
	)
	b := trace.NewBuilder()
	prod := b.Thread(1)
	cons := b.Thread(2)

	prod.Call("producer")
	cons.Call("consumer")
	for i := 0; i < n; i++ {
		// Semaphore handshakes; the paper disregards the semaphore cells
		// themselves, and so does the consumer's metric because acquire and
		// release events touch no traced memory.
		prod.Acquire(1) // wait(empty)
		prod.Call("produceData")
		prod.Write1(x)
		prod.Ret()
		prod.Release(2) // signal(full)

		cons.Acquire(2) // wait(full)
		cons.Call("consumeData")
		cons.Read1(x)
		cons.Ret()
		cons.Release(1) // signal(empty)
	}
	prod.Ret()
	cons.Ret()

	ps := runFull(t, b.Trace())
	consumer := mustProfile(t, ps, "consumer", 2)
	if consumer.SumRMS != 1 {
		t.Errorf("rms(consumer) = %d, want 1", consumer.SumRMS)
	}
	if consumer.SumDRMS != n {
		t.Errorf("drms(consumer) = %d, want %d", consumer.SumDRMS, n)
	}
	// Every read is preceded by a producer write, so all n reads are
	// thread-induced.
	if consumer.InducedThread != n {
		t.Errorf("inducedThread(consumer) = %d, want %d", consumer.InducedThread, n)
	}
}

// TestFigure3Streaming reproduces the data-streaming pattern of Fig. 3: the
// OS fills a 2-cell buffer n times; only b[0] is consumed each iteration.
// rms(streamReader)=1 but drms(streamReader)=n thanks to n induced
// first-reads from external input.
func TestFigure3Streaming(t *testing.T) {
	const (
		buf = trace.Addr(800)
		n   = 25
	)
	b := trace.NewBuilder()
	tr := b.Thread(1)
	tr.Call("streamReader")
	for i := 0; i < n; i++ {
		tr.SysRead(buf, 2) // fill b with external data
		tr.Call("consumeData")
		tr.Read1(buf) // read and process b[0]
		tr.Ret()
	}
	tr.Ret()

	ps := runFull(t, b.Trace())
	sr := mustProfile(t, ps, "streamReader", 1)
	if sr.SumRMS != 1 {
		t.Errorf("rms(streamReader) = %d, want 1", sr.SumRMS)
	}
	if sr.SumDRMS != n {
		t.Errorf("drms(streamReader) = %d, want %d", sr.SumDRMS, n)
	}
	if sr.InducedExternal != n {
		t.Errorf("inducedExternal(streamReader) = %d, want %d", sr.InducedExternal, n)
	}
	if sr.InducedThread != 0 {
		t.Errorf("inducedThread(streamReader) = %d, want 0", sr.InducedThread)
	}
}

// TestExternalOnlyConfig checks the Fig. 6b configuration: thread-induced
// reads are not counted when ThreadInput is disabled, while external ones
// still are.
func TestExternalOnlyConfig(t *testing.T) {
	const x = trace.Addr(10)
	build := func() *trace.Trace {
		b := trace.NewBuilder()
		t1 := b.Thread(1)
		t2 := b.Thread(2)
		t1.Call("f")
		t1.Read1(x) // first-read
		t2.Call("g")
		t2.Write1(x)
		t2.Ret()
		t1.Read1(x)      // thread-induced
		t1.SysRead(x, 1) // kernel refills x
		t1.Read1(x)      // external-induced
		t1.Ret()
		return b.Trace()
	}

	full, err := Run(build(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	extOnly, err := Run(build(), Config{ExternalInput: true})
	if err != nil {
		t.Fatal(err)
	}
	rmsOnly, err := Run(build(), RMSOnlyConfig())
	if err != nil {
		t.Fatal(err)
	}

	if got := full.Get("f", 1).SumDRMS; got != 3 {
		t.Errorf("full drms(f) = %d, want 3", got)
	}
	if got := extOnly.Get("f", 1).SumDRMS; got != 2 {
		t.Errorf("external-only drms(f) = %d, want 2", got)
	}
	if got := rmsOnly.Get("f", 1).SumDRMS; got != 1 {
		t.Errorf("rms-only drms(f) = %d, want 1", got)
	}
	for _, ps := range []*Profiles{full, extOnly, rmsOnly} {
		if got := ps.Get("f", 1).SumRMS; got != 1 {
			t.Errorf("rms(f) = %d, want 1", got)
		}
	}
}

// TestUserToKernelCountsAsRead checks Fig. 9: an OS write to an external
// device reads the thread's memory, and counts exactly like a read performed
// by the thread.
func TestUserToKernelCountsAsRead(t *testing.T) {
	const buf = trace.Addr(50)
	b := trace.NewBuilder()
	t1 := b.Thread(1)
	t1.Call("sender")
	t1.Write(buf, 4)    // thread produces the buffer itself
	t1.SysWrite(buf, 4) // kernel reads it: not input (first accessed by write)
	t1.Ret()

	t1.Call("forwarder")
	t1.SysWrite(buf, 4) // kernel reads it: 4 first-reads for forwarder
	t1.Ret()

	ps := runFull(t, b.Trace())
	if got := mustProfile(t, ps, "sender", 1).SumDRMS; got != 0 {
		t.Errorf("drms(sender) = %d, want 0", got)
	}
	if got := mustProfile(t, ps, "forwarder", 1).SumDRMS; got != 4 {
		t.Errorf("drms(forwarder) = %d, want 4", got)
	}
}

// TestInequality1 checks drms >= rms per activation on a small nested
// workload (Inequality 1).
func TestInequality1(t *testing.T) {
	var records []ActivationRecord
	cfg := DefaultConfig()
	cfg.OnActivation = func(r ActivationRecord) { records = append(records, r) }

	b := trace.NewBuilder()
	t1 := b.Thread(1)
	t2 := b.Thread(2)
	t1.Call("a")
	for i := 0; i < 10; i++ {
		t1.Call("b")
		t1.Read(trace.Addr(uint64(i)), 3)
		t1.Write(trace.Addr(uint64(i+1)), 2)
		t2.Call("w")
		t2.Write(trace.Addr(uint64(i)), 4)
		t2.Ret()
		t1.Read(trace.Addr(uint64(i)), 4)
		t1.Ret()
	}
	t1.Ret()

	if _, err := Run(b.Trace(), cfg); err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 {
		t.Fatal("no activations collected")
	}
	for _, r := range records {
		if r.DRMS < r.RMS {
			t.Errorf("activation of routine %d: drms %d < rms %d", r.Routine, r.DRMS, r.RMS)
		}
		if r.FirstReads+r.InducedThread+r.InducedExternal != r.DRMS {
			t.Errorf("activation of routine %d: breakdown %d+%d+%d != drms %d",
				r.Routine, r.FirstReads, r.InducedThread, r.InducedExternal, r.DRMS)
		}
	}
}
