// Package core implements the paper's profiling algorithms: the read/write
// timestamping algorithm computing the dynamic read memory size (drms) of
// every routine activation (Figs. 8 and 9), the rms metric of aprof [5]
// computed side by side, the naive set-based algorithm of Fig. 7 (used as a
// testing oracle), periodic global timestamp renumbering for counter
// overflow (§3.2), and the collector that turns activations into performance
// points relating cost to observed input sizes.
package core

import (
	"sort"

	"aprof/internal/trace"
)

// CostStats aggregates the costs of all activations observed at one input
// size: the worst-case cost plot uses Max, but Min/Sum/Count support other
// plot flavors and variance analysis.
type CostStats struct {
	Count uint64
	Max   uint64
	Min   uint64
	Sum   uint64
	SumSq float64
}

func (s *CostStats) add(cost uint64) {
	if s.Count == 0 || cost > s.Max {
		s.Max = cost
	}
	if s.Count == 0 || cost < s.Min {
		s.Min = cost
	}
	s.Count++
	s.Sum += cost
	s.SumSq += float64(cost) * float64(cost)
}

// Mean returns the average cost at this input size.
func (s *CostStats) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Variance returns the population variance of the costs at this input size.
func (s *CostStats) Variance() float64 {
	if s.Count == 0 {
		return 0
	}
	m := s.Mean()
	return s.SumSq/float64(s.Count) - m*m
}

// merge folds other into s.
func (s *CostStats) merge(other *CostStats) {
	if other.Count == 0 {
		return
	}
	if s.Count == 0 || other.Max > s.Max {
		s.Max = other.Max
	}
	if s.Count == 0 || other.Min < s.Min {
		s.Min = other.Min
	}
	s.Count += other.Count
	s.Sum += other.Sum
	s.SumSq += other.SumSq
}

// Key identifies a thread-sensitive routine profile (§3: profiles generated
// by activations made by different threads are kept distinct).
type Key struct {
	Routine trace.RoutineID
	Thread  trace.ThreadID
}

// Profile aggregates all activations of one routine by one thread (or, after
// MergeThreads, by all threads).
type Profile struct {
	Routine trace.RoutineID
	Thread  trace.ThreadID
	// Calls counts collected activations.
	Calls uint64
	// DRMSPoints maps each observed drms value to the cost statistics of the
	// activations that exhibited it. Each entry is one point of the
	// routine's drms cost plot.
	DRMSPoints map[uint64]*CostStats
	// RMSPoints is the rms counterpart, computed in the same run.
	RMSPoints map[uint64]*CostStats
	// SumRMS and SumDRMS accumulate the per-activation metric values; their
	// ratio across all routines yields the dynamic input volume metric.
	SumRMS  uint64
	SumDRMS uint64
	// FirstReads counts plain first-reads; InducedThread and InducedExternal
	// count induced first-reads attributed to peer-thread writes and to
	// kernel (external) writes, attributed to the routine performing the
	// read operation.
	FirstReads      uint64
	InducedThread   uint64
	InducedExternal uint64
	// TotalCost sums the inclusive cost of collected activations.
	TotalCost uint64
	// maxPoints caps the point maps (0 = unlimited); drmsShift and rmsShift
	// are the current bucketing granularities (see bucket.go).
	maxPoints int
	drmsShift uint8
	rmsShift  uint8
}

func newProfile(rtn trace.RoutineID, thr trace.ThreadID) *Profile {
	return &Profile{
		Routine:    rtn,
		Thread:     thr,
		DRMSPoints: make(map[uint64]*CostStats),
		RMSPoints:  make(map[uint64]*CostStats),
	}
}

// collect records one completed activation.
func (p *Profile) collect(a activation) {
	p.Calls++
	p.SumRMS += a.rms
	p.SumDRMS += a.drms()
	p.FirstReads += a.first
	p.InducedThread += a.indThread
	p.InducedExternal += a.indExternal
	p.TotalCost += a.cost

	p.addPoint(p.DRMSPoints, &p.drmsShift, a.drms(), a.cost, p.maxPoints)
	p.addPoint(p.RMSPoints, &p.rmsShift, a.rms, a.cost, p.maxPoints)
}

// merge folds other (same routine) into p. Profiles bucketed at different
// granularities are merged at the coarser one.
func (p *Profile) merge(other *Profile) {
	p.Calls += other.Calls
	p.SumRMS += other.SumRMS
	p.SumDRMS += other.SumDRMS
	p.FirstReads += other.FirstReads
	p.InducedThread += other.InducedThread
	p.InducedExternal += other.InducedExternal
	p.TotalCost += other.TotalCost
	if other.maxPoints > 0 && (p.maxPoints == 0 || other.maxPoints < p.maxPoints) {
		p.maxPoints = other.maxPoints
	}
	// Adopt the coarser granularity, re-quantizing p's own points to it
	// before folding other's in.
	if other.drmsShift > p.drmsShift {
		p.drmsShift = other.drmsShift
		requantize(p.DRMSPoints, p.drmsShift)
	}
	if other.rmsShift > p.rmsShift {
		p.rmsShift = other.rmsShift
		requantize(p.RMSPoints, p.rmsShift)
	}
	for v, st := range other.DRMSPoints {
		key := bucketKey(v, p.drmsShift)
		dst := p.DRMSPoints[key]
		if dst == nil {
			dst = &CostStats{}
			p.DRMSPoints[key] = dst
		}
		dst.merge(st)
	}
	for v, st := range other.RMSPoints {
		key := bucketKey(v, p.rmsShift)
		dst := p.RMSPoints[key]
		if dst == nil {
			dst = &CostStats{}
			p.RMSPoints[key] = dst
		}
		dst.merge(st)
	}
	if p.maxPoints > 0 {
		if len(p.DRMSPoints) > p.maxPoints {
			p.drmsShift = rebucket(p.DRMSPoints, p.drmsShift, p.maxPoints)
		}
		if len(p.RMSPoints) > p.maxPoints {
			p.rmsShift = rebucket(p.RMSPoints, p.rmsShift, p.maxPoints)
		}
	}
}

// InducedReads returns the total induced first-reads attributed to the
// routine.
func (p *Profile) InducedReads() uint64 { return p.InducedThread + p.InducedExternal }

// ReadOps returns first-reads plus induced first-reads — the denominator of
// the paper's per-routine input characterization (Fig. 14).
func (p *Profile) ReadOps() uint64 { return p.FirstReads + p.InducedReads() }

// PlotPoint is one (input size, cost) point of a cost plot.
type PlotPoint struct {
	N     uint64
	Cost  uint64
	Calls uint64
}

// WorstCasePlot returns the worst-case cost plot (max cost per distinct
// input size) for the chosen metric, sorted by input size.
func (p *Profile) WorstCasePlot(metric Metric) []PlotPoint {
	src := p.DRMSPoints
	if metric == MetricRMS {
		src = p.RMSPoints
	}
	out := make([]PlotPoint, 0, len(src))
	for n, st := range src {
		out = append(out, PlotPoint{N: n, Cost: st.Max, Calls: st.Count})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].N < out[j].N })
	return out
}

// Metric selects which input-size estimate a query refers to.
type Metric int

const (
	// MetricDRMS is the dynamic read memory size of this paper. It is the
	// zero value: drms is the default metric everywhere.
	MetricDRMS Metric = iota
	// MetricRMS is the read memory size of aprof [5].
	MetricRMS
)

// String returns the lower-case metric name.
func (m Metric) String() string {
	if m == MetricRMS {
		return "rms"
	}
	return "drms"
}

// Profiles is the output of a profiling run: thread-sensitive routine
// profiles plus run-level bookkeeping.
type Profiles struct {
	Symbols *trace.SymbolTable
	// ByKey holds the thread-sensitive profiles.
	ByKey map[Key]*Profile
	// ByContext holds calling-context-sensitive profiles; nil unless the
	// run had Config.ContextSensitive set.
	ByContext map[ContextKey]*Profile
	// Contexts describes the calling-context tree, indexed by ContextID;
	// nil unless the run was context-sensitive.
	Contexts []ContextMeta
	// Renumberings counts how many global timestamp renumberings the run
	// performed (§3.2, counter overflows).
	Renumberings int
	// Events counts processed trace events.
	Events int
	// Drops counts events shed by a non-strict FaultPolicy or by the Limits
	// degradation machinery, per category (all zero on a clean strict run).
	Drops DropStats
	// Corruption summarizes decode-layer loss when the profiles came from a
	// lenient stream reader (zero on clean input or non-streaming runs).
	Corruption trace.CorruptionStats
}

// Get returns the profile for (routine, thread), or nil.
func (ps *Profiles) Get(routine string, thread trace.ThreadID) *Profile {
	id, ok := ps.Symbols.Lookup(routine)
	if !ok {
		return nil
	}
	return ps.ByKey[Key{Routine: id, Thread: thread}]
}

// MergeThreads merges the per-thread profiles of each routine (the paper's
// "if necessary, they can be merged in a subsequent step"), returning
// per-routine profiles keyed by routine id. Merged profiles report Thread
// -1.
func (ps *Profiles) MergeThreads() map[trace.RoutineID]*Profile {
	out := make(map[trace.RoutineID]*Profile)
	for k, p := range ps.ByKey {
		dst := out[k.Routine]
		if dst == nil {
			dst = newProfile(k.Routine, -1)
			out[k.Routine] = dst
		}
		dst.merge(p)
	}
	return out
}

// Routine returns the merged (cross-thread) profile of the named routine, or
// nil if the routine never ran.
func (ps *Profiles) Routine(name string) *Profile {
	id, ok := ps.Symbols.Lookup(name)
	if !ok {
		return nil
	}
	var merged *Profile
	for k, p := range ps.ByKey {
		if k.Routine != id {
			continue
		}
		if merged == nil {
			merged = newProfile(id, -1)
		}
		merged.merge(p)
	}
	return merged
}

// Routines returns the ids of all profiled routines, sorted by name.
func (ps *Profiles) Routines() []trace.RoutineID {
	seen := make(map[trace.RoutineID]bool)
	var ids []trace.RoutineID
	for k := range ps.ByKey {
		if !seen[k.Routine] {
			seen[k.Routine] = true
			ids = append(ids, k.Routine)
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		return ps.Symbols.Name(ids[i]) < ps.Symbols.Name(ids[j])
	})
	return ids
}
