package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"time"

	"aprof/internal/shadow"
	"aprof/internal/trace"
)

// Checkpointing serializes the complete state of a running Profiler — global
// counter, shadow memories, per-thread shadow stacks, collected profiles,
// drop counters, and the degradation machinery — so a crashed streaming run
// can resume from the last checkpoint and produce output byte-identical to
// an uninterrupted run.
//
// The shadow tables are stored as their non-zero cells only. This is exact,
// not approximate: the global counter starts at 1 and renumbering maps
// non-zero timestamps to non-zero ranks, so every cell ever stored holds a
// non-zero value and every materialized chunk contains at least one; the
// rebuilt tables therefore have identical contents *and* identical chunk
// counts, keeping the MaxMemoryBytes size estimate — and with it every
// future sampling decision — unchanged across resume.
//
// File layout: "APCK" magic, version byte, uint32 little-endian payload
// length, uint32 little-endian CRC-32 (IEEE) of the payload, gob-encoded
// checkpointData. The checksum makes a torn checkpoint write (the crash the
// mechanism exists for) detectable instead of silently resumable.

const checkpointMagic = "APCK"
const checkpointVersion = 1

// StreamState is the trace-reader position stored alongside the profiler
// state, letting ResumeStream re-synchronize the input.
type StreamState struct {
	// EventsDelivered counts events actually fed to the profiler (corrupt
	// frames skipped by a lenient reader are not included). Resuming skips
	// exactly this many events.
	EventsDelivered uint64
	// Corruption is the reader's cumulative corruption accounting for the
	// delivered prefix. A resumed run continues the counts from here.
	Corruption trace.CorruptionStats
}

// ErrCheckpointUnsupported is wrapped by WriteCheckpoint when the profiler
// configuration cannot be checkpointed.
var ErrCheckpointUnsupported = fmt.Errorf("core: configuration does not support checkpointing")

// ErrCheckpointCorrupt is wrapped by ResumeProfiler (and ReadCheckpointState)
// when the checkpoint bytes themselves are damaged — torn header, bad magic,
// truncated payload, CRC mismatch, or an undecodable gob. Callers that keep a
// service available (the aprofd daemon) test for it to distinguish "this file
// can never be resumed, fall back to a fresh run" from environmental errors
// like a missing file or a configuration mismatch.
var ErrCheckpointCorrupt = fmt.Errorf("core: corrupt checkpoint")

type ckptCell struct {
	Addr uint64
	Val  uint64
}

type ckptCell8 struct {
	Addr uint64
	Val  uint8
}

type ckptFrame struct {
	Rtn         uint32
	TS          uint64
	EntryCost   uint64
	First       int64
	IndThread   int64
	IndExternal int64
	RMS         int64
}

type ckptThread struct {
	ID       int32
	Cost     uint64
	Overflow int
	TS       []ckptCell
	Stack    []ckptFrame
}

type ckptPoint struct {
	N     uint64
	Count uint64
	Max   uint64
	Min   uint64
	Sum   uint64
	SumSq float64
}

type ckptProfile struct {
	Routine         uint32
	Thread          int32
	Calls           uint64
	SumRMS          uint64
	SumDRMS         uint64
	FirstReads      uint64
	InducedThread   uint64
	InducedExternal uint64
	TotalCost       uint64
	MaxPoints       int
	DRMSShift       uint8
	RMSShift        uint8
	DRMS            []ckptPoint
	RMS             []ckptPoint
}

// ckptConfig fingerprints the semantically relevant configuration. Resume
// validates it against the caller-provided Config: resuming under different
// settings would silently change the algorithm mid-run.
type ckptConfig struct {
	ThreadInput         bool
	ExternalInput       bool
	CounterLimit        uint64
	MaxPointsPerProfile int
	FaultPolicy         int
	MaxDepth            int
	MaxEvents           int
	MaxMemoryBytes      int64
}

func fingerprint(cfg Config) ckptConfig {
	return ckptConfig{
		ThreadInput:         cfg.ThreadInput,
		ExternalInput:       cfg.ExternalInput,
		CounterLimit:        cfg.CounterLimit,
		MaxPointsPerProfile: cfg.MaxPointsPerProfile,
		FaultPolicy:         int(cfg.FaultPolicy),
		MaxDepth:            cfg.Limits.MaxDepth,
		MaxEvents:           cfg.Limits.MaxEvents,
		MaxMemoryBytes:      cfg.Limits.MaxMemoryBytes,
	}
}

type checkpointData struct {
	Cfg            ckptConfig
	Count          uint64
	Symbols        []string
	WTS            []ckptCell
	WKind          []ckptCell8
	Threads        []ckptThread
	Profiles       []ckptProfile
	Events         int
	Renumberings   int
	Drops          DropStats
	MemSeq         uint64
	MemStride      uint64
	NextEventCheck uint64
	Stream         StreamState
}

func dumpTable64(t *shadow.Table[uint64]) []ckptCell {
	var out []ckptCell
	t.ForEach(func(v uint64) bool { return v == 0 }, func(a trace.Addr, v uint64) {
		out = append(out, ckptCell{Addr: uint64(a), Val: v})
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

func dumpTable8(t *shadow.Table[uint8]) []ckptCell8 {
	var out []ckptCell8
	t.ForEach(func(v uint8) bool { return v == 0 }, func(a trace.Addr, v uint8) {
		out = append(out, ckptCell8{Addr: uint64(a), Val: v})
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

func dumpPoints(points map[uint64]*CostStats) []ckptPoint {
	out := make([]ckptPoint, 0, len(points))
	for n, st := range points {
		out = append(out, ckptPoint{
			N: n, Count: st.Count, Max: st.Max, Min: st.Min, Sum: st.Sum, SumSq: st.SumSq,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].N < out[j].N })
	return out
}

func loadPoints(points []ckptPoint) map[uint64]*CostStats {
	out := make(map[uint64]*CostStats, len(points))
	for _, p := range points {
		out[p.N] = &CostStats{Count: p.Count, Max: p.Max, Min: p.Min, Sum: p.Sum, SumSq: p.SumSq}
	}
	return out
}

// WriteCheckpoint serializes the profiler's complete state plus the stream
// position to w. The profiler must be healthy (no pending error, not
// finished). Context-sensitive runs are refused: the calling-context tree is
// pointer-linked and not yet serializable.
func (p *Profiler) WriteCheckpoint(w io.Writer, stream StreamState) error {
	if p.obs != nil {
		start := time.Now()
		defer func() {
			p.obs.ckptWrite.Observe(uint64(time.Since(start).Microseconds()))
		}()
	}
	if p.err != nil {
		return fmt.Errorf("core: cannot checkpoint a failed profiler: %w", p.err)
	}
	if p.finished {
		return fmt.Errorf("core: cannot checkpoint after Finish")
	}
	if p.cfg.ContextSensitive {
		return fmt.Errorf("%w: context-sensitive profiling", ErrCheckpointUnsupported)
	}
	data := checkpointData{
		Cfg:            fingerprint(p.cfg),
		Count:          p.count,
		Symbols:        p.syms.Names(),
		Threads:        dumpThreadsCkpt(p.threads),
		Profiles:       dumpProfilesCkpt(p.out.ByKey),
		Events:         p.out.Events,
		Renumberings:   p.out.Renumberings,
		Drops:          p.out.Drops,
		MemSeq:         p.memSeq,
		MemStride:      p.memStride,
		NextEventCheck: p.nextEventCheck,
		Stream:         stream,
	}
	if p.wts != nil {
		data.WTS = dumpTable64(p.wts)
		data.WKind = dumpTable8(p.wkind)
	}
	return encodeCheckpoint(w, &data)
}

// dumpThreadsCkpt serializes thread states sorted by thread id. Shared by
// the sequential and sharded checkpoint writers (the sharded engine passes
// the union of its per-shard thread maps).
func dumpThreadsCkpt(threads map[trace.ThreadID]*threadState) []ckptThread {
	tids := make([]trace.ThreadID, 0, len(threads))
	for id := range threads {
		tids = append(tids, id)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	out := make([]ckptThread, 0, len(tids))
	for _, id := range tids {
		t := threads[id]
		ct := ckptThread{
			ID:       int32(id),
			Cost:     t.cost,
			Overflow: t.overflow,
			TS:       dumpTable64(t.ts),
		}
		for i := range t.stack {
			f := &t.stack[i]
			ct.Stack = append(ct.Stack, ckptFrame{
				Rtn: uint32(f.rtn), TS: f.ts, EntryCost: f.entryCost,
				First: f.first, IndThread: f.indThread, IndExternal: f.indExternal, RMS: f.rms,
			})
		}
		out = append(out, ct)
	}
	return out
}

// dumpProfilesCkpt serializes profiles sorted by (routine, thread). Shared
// by the sequential and sharded checkpoint writers.
func dumpProfilesCkpt(byKey map[Key]*Profile) []ckptProfile {
	keys := make([]Key, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Routine != keys[j].Routine {
			return keys[i].Routine < keys[j].Routine
		}
		return keys[i].Thread < keys[j].Thread
	})
	out := make([]ckptProfile, 0, len(keys))
	for _, k := range keys {
		prof := byKey[k]
		out = append(out, ckptProfile{
			Routine: uint32(k.Routine), Thread: int32(k.Thread),
			Calls: prof.Calls, SumRMS: prof.SumRMS, SumDRMS: prof.SumDRMS,
			FirstReads: prof.FirstReads, InducedThread: prof.InducedThread,
			InducedExternal: prof.InducedExternal, TotalCost: prof.TotalCost,
			MaxPoints: prof.maxPoints, DRMSShift: prof.drmsShift, RMSShift: prof.rmsShift,
			DRMS: dumpPoints(prof.DRMSPoints), RMS: dumpPoints(prof.RMSPoints),
		})
	}
	return out
}

// encodeCheckpoint gob-encodes data and writes the framed APCK document.
func encodeCheckpoint(w io.Writer, data *checkpointData) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(data); err != nil {
		return fmt.Errorf("core: encoding checkpoint: %w", err)
	}
	hdr := make([]byte, 0, len(checkpointMagic)+1+8)
	hdr = append(hdr, checkpointMagic...)
	hdr = append(hdr, checkpointVersion)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(payload.Len()))
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.ChecksumIEEE(payload.Bytes()))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("core: writing checkpoint: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("core: writing checkpoint: %w", err)
	}
	return nil
}

// readCheckpointData reads and integrity-checks one checkpoint document.
// Every failure mode that means "the bytes are damaged" — a short or torn
// header, wrong magic, truncated payload, checksum mismatch, undecodable
// gob — wraps ErrCheckpointCorrupt, so a torn write detected at resume time
// is diagnosable as such rather than a grab-bag of io errors.
func readCheckpointData(r io.Reader) (*checkpointData, error) {
	hdr := make([]byte, len(checkpointMagic)+1+8)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", ErrCheckpointCorrupt, err)
	}
	if string(hdr[:4]) != checkpointMagic {
		return nil, fmt.Errorf("%w: not a checkpoint file (bad magic %q)", ErrCheckpointCorrupt, hdr[:4])
	}
	if hdr[4] != checkpointVersion {
		return nil, fmt.Errorf("%w: unsupported checkpoint version %d", ErrCheckpointCorrupt, hdr[4])
	}
	length := binary.LittleEndian.Uint32(hdr[5:9])
	sum := binary.LittleEndian.Uint32(hdr[9:13])
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: reading payload (%d bytes declared): %v", ErrCheckpointCorrupt, length, err)
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, fmt.Errorf("%w: checksum mismatch (file %08x, computed %08x): torn or corrupt write", ErrCheckpointCorrupt, sum, got)
	}
	var data checkpointData
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&data); err != nil {
		return nil, fmt.Errorf("%w: decoding payload: %v", ErrCheckpointCorrupt, err)
	}
	return &data, nil
}

// ReadCheckpointState reads just the stream position from a checkpoint,
// validating integrity and that cfg matches the checkpointed configuration.
// The aprofd daemon uses it to learn a session's resume offset — and to
// reject an unusable checkpoint — before committing to a resumed run.
func ReadCheckpointState(r io.Reader, cfg Config) (StreamState, error) {
	var none StreamState
	data, err := readCheckpointData(r)
	if err != nil {
		return none, err
	}
	if got, want := fingerprint(cfg), data.Cfg; got != want {
		return none, fmt.Errorf("core: checkpoint was taken under a different configuration (checkpoint %+v, resume %+v)", want, got)
	}
	return data.Stream, nil
}

// ResumeProfiler rebuilds a profiler from a checkpoint written by
// WriteCheckpoint. cfg must match the checkpointed configuration in every
// semantically relevant field (callbacks like OnActivation are exempt and
// are taken from cfg). The returned StreamState tells the caller where to
// reposition the trace stream.
func ResumeProfiler(r io.Reader, cfg Config) (*Profiler, StreamState, error) {
	start := time.Now()
	var none StreamState
	dataPtr, err := readCheckpointData(r)
	if err != nil {
		return nil, none, err
	}
	data := *dataPtr
	if cfg.ContextSensitive {
		return nil, none, fmt.Errorf("%w: context-sensitive profiling", ErrCheckpointUnsupported)
	}
	if got, want := fingerprint(cfg), data.Cfg; got != want {
		return nil, none, fmt.Errorf("core: checkpoint was taken under a different configuration (checkpoint %+v, resume %+v)", want, got)
	}

	syms := trace.NewSymbolTable()
	for _, n := range data.Symbols {
		syms.Intern(n)
	}
	p := NewProfiler(syms, cfg)
	p.count = data.Count
	p.out.Events = data.Events
	p.out.Renumberings = data.Renumberings
	p.out.Drops = data.Drops
	p.memSeq = data.MemSeq
	p.memStride = data.MemStride
	p.nextEventCheck = data.NextEventCheck
	if p.wts != nil {
		for _, c := range data.WTS {
			p.wts.Store(trace.Addr(c.Addr), c.Val)
		}
		for _, c := range data.WKind {
			p.wkind.Store(trace.Addr(c.Addr), c.Val)
		}
	}
	for _, ct := range data.Threads {
		t := p.thread(trace.ThreadID(ct.ID))
		t.cost = ct.Cost
		t.overflow = ct.Overflow
		for _, c := range ct.TS {
			t.ts.Store(trace.Addr(c.Addr), c.Val)
		}
		for _, cf := range ct.Stack {
			t.stack = append(t.stack, frame{
				rtn: trace.RoutineID(cf.Rtn), ts: cf.TS, entryCost: cf.EntryCost,
				first: cf.First, indThread: cf.IndThread, indExternal: cf.IndExternal, rms: cf.RMS,
			})
		}
	}
	for _, cp := range data.Profiles {
		key := Key{Routine: trace.RoutineID(cp.Routine), Thread: trace.ThreadID(cp.Thread)}
		prof := newProfile(key.Routine, key.Thread)
		prof.Calls = cp.Calls
		prof.SumRMS = cp.SumRMS
		prof.SumDRMS = cp.SumDRMS
		prof.FirstReads = cp.FirstReads
		prof.InducedThread = cp.InducedThread
		prof.InducedExternal = cp.InducedExternal
		prof.TotalCost = cp.TotalCost
		prof.maxPoints = cp.MaxPoints
		prof.drmsShift = cp.DRMSShift
		prof.rmsShift = cp.RMSShift
		prof.DRMSPoints = loadPoints(cp.DRMS)
		prof.RMSPoints = loadPoints(cp.RMS)
		p.out.ByKey[key] = prof
	}
	// Restart the depth high-water mark from the restored stacks, and record
	// how long the rebuild took.
	for _, t := range p.threads {
		if len(t.stack) > p.depthHWM {
			p.depthHWM = len(t.stack)
		}
	}
	if p.obs != nil {
		p.obs.ckptResume.Observe(uint64(time.Since(start).Microseconds()))
	}
	return p, data.Stream, nil
}
