package core

import (
	"fmt"
	"testing"

	"aprof/internal/trace"
)

// shardBenchTrace is an 8-thread trace with heavy cross-thread
// communication — the workload class the sharded engine targets. It is
// large enough that per-window coordination amortizes.
func shardBenchTrace() *trace.Trace {
	return trace.Random(trace.RandomConfig{Seed: 77, Threads: 8, Routines: 16, Ops: 60000, Cells: 64})
}

// benchProfileSharded measures ProfileSharded end to end at a given shard
// count; nShards=1 is the sequential baseline (the fallback path). On a
// single-core container the sharded counts measure coordination overhead
// rather than speedup — the differential suite guarantees the output is
// identical either way, so the baseline documents the worst case.
func benchProfileSharded(b *testing.B, nShards int) {
	tr := shardBenchTrace()
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ProfileSharded(tr, cfg, nShards); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Len()), "events/op")
}

func BenchmarkProfileSharded1(b *testing.B) { benchProfileSharded(b, 1) }
func BenchmarkProfileSharded2(b *testing.B) { benchProfileSharded(b, 2) }
func BenchmarkProfileSharded4(b *testing.B) { benchProfileSharded(b, 4) }
func BenchmarkProfileSharded8(b *testing.B) { benchProfileSharded(b, 8) }

// BenchmarkShardWindowFeed isolates the per-window cost (pass A, merge,
// pass B) from trace construction and Finish, at the window size the
// streaming pipeline uses by default.
func BenchmarkShardWindowFeed(b *testing.B) {
	for _, nShards := range []int{2, 4} {
		b.Run(fmt.Sprintf("shards%d", nShards), func(b *testing.B) {
			tr := shardBenchTrace()
			const window = 16 * 1024
			cfg := DefaultConfig()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sp, err := NewShardedProfiler(tr.Symbols, cfg, nShards)
				if err != nil {
					b.Fatal(err)
				}
				evs := tr.Events
				for len(evs) > 0 {
					k := window
					if k > len(evs) {
						k = len(evs)
					}
					if err := sp.FeedWindow(evs[:k]); err != nil {
						b.Fatal(err)
					}
					evs = evs[k:]
				}
				if _, err := sp.Finish(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
