package core

// Observability of the sharded engine, under its own scope. The per-shard
// profilers keep reporting into the existing "core" and "shadow" scopes
// (they are sequential profilers sharing the registry, the RunConcurrent
// aggregation model); the "shard" scope adds what only the sharded engine
// knows — window cadence, per-phase latencies, and the boundary-resolution
// traffic of the merged write-history index.

import (
	"time"

	"aprof/internal/obs"
)

// ObsScopeShard carries the sharded engine's metrics: the windows and
// window_events counters, the pass_a_us/merge_us/pass_b_us phase
// histograms, the boundary_lookups/boundary_resolved counters of the
// cross-shard write index, the shards gauge, and the checkpoint_write_us
// histogram of the sharded checkpoint path.
const ObsScopeShard = "shard"

// shardObs holds the pre-resolved handles of one sharded engine; nil when
// no registry is attached (every method is nil-receiver safe).
type shardObs struct {
	windows      *obs.Counter
	windowEvents *obs.Counter
	passA        *obs.Histogram
	merge        *obs.Histogram
	passB        *obs.Histogram
	lookups      *obs.Counter
	resolved     *obs.Counter
	ckptWrite    *obs.Histogram
	// Central drops (events owned by no shard) publish into the same core-
	// scope counters the sequential profiler uses, at Finish.
	drops [7]*obs.Counter
}

func newShardObs(reg *obs.Registry, nShards int) *shardObs {
	if reg == nil {
		return nil
	}
	s := reg.Scope(ObsScopeShard)
	o := &shardObs{
		windows:      s.Counter("windows"),
		windowEvents: s.Counter("window_events"),
		passA:        s.Histogram("pass_a_us"),
		merge:        s.Histogram("merge_us"),
		passB:        s.Histogram("pass_b_us"),
		lookups:      s.Counter("boundary_lookups"),
		resolved:     s.Counter("boundary_resolved"),
		ckptWrite:    s.Histogram("checkpoint_write_us"),
	}
	s.Gauge("shards").Set(int64(nShards))
	core := reg.Scope(ObsScopeCore)
	for i, name := range dropCounterNames {
		o.drops[i] = core.Counter(name)
	}
	return o
}

// shardWindowTimer tracks one window's phase boundaries. A nil timer (no
// registry) makes every phase hook a no-op.
type shardWindowTimer struct {
	o          *shardObs
	start      time.Time
	afterPassA time.Time
	afterMerge time.Time
}

func (o *shardObs) windowStart(events int) *shardWindowTimer {
	if o == nil {
		return nil
	}
	o.windows.Inc()
	o.windowEvents.Add(uint64(events))
	return &shardWindowTimer{o: o, start: time.Now()}
}

func (t *shardWindowTimer) passADone() {
	if t == nil {
		return
	}
	t.afterPassA = time.Now()
	t.o.passA.Observe(uint64(t.afterPassA.Sub(t.start).Microseconds()))
}

func (t *shardWindowTimer) mergeDone() {
	if t == nil {
		return
	}
	t.afterMerge = time.Now()
	t.o.merge.Observe(uint64(t.afterMerge.Sub(t.afterPassA).Microseconds()))
}

func (t *shardWindowTimer) passBDone() {
	if t == nil {
		return
	}
	t.o.passB.Observe(uint64(time.Since(t.afterMerge).Microseconds()))
}

// done folds the per-shard boundary-resolution counters of a successfully
// committed window into the registry (the shard goroutines have quiesced).
func (t *shardWindowTimer) done(sp *ShardedProfiler) {
	if t == nil {
		return
	}
	var lookups, resolved uint64
	for _, w := range sp.shards {
		lookups += w.lookups
		resolved += w.resolved
	}
	t.o.lookups.Add(lookups)
	t.o.resolved.Add(resolved)
}

func (o *shardObs) observeCkptWrite(d time.Duration) {
	if o == nil {
		return
	}
	o.ckptWrite.Observe(uint64(d.Microseconds()))
}

// publishFinish reports the engine-level drop counters (events no shard
// owned, plus any adopted checkpoint state). The per-shard profilers have
// already published their own drops through their Finish.
func (o *shardObs) publishFinish(sp *ShardedProfiler) {
	if o == nil {
		return
	}
	vals := dropValues(sp.drops)
	for i, c := range o.drops {
		c.Add(vals[i])
	}
}
