package core

import (
	"testing"
	"testing/quick"

	"aprof/internal/trace"
)

// sweepTrace produces one activation of "scan" per size 1..n, each reading
// `size` fresh cells and costing 3*size.
func sweepTrace(n int) *trace.Trace {
	b := trace.NewBuilder()
	tb := b.Thread(1)
	tb.Call("main")
	for size := 1; size <= n; size++ {
		tb.Call("scan")
		tb.Read(trace.Addr(1<<20), uint32(size))
		tb.Work(uint64(3 * size))
		tb.Ret()
	}
	tb.Ret()
	return b.Trace()
}

func TestBucketingCapsPoints(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPointsPerProfile = 16
	ps, err := Run(sweepTrace(500), cfg)
	if err != nil {
		t.Fatal(err)
	}
	scan := ps.Get("scan", 1)
	if len(scan.DRMSPoints) > 16 {
		t.Errorf("drms points = %d, want <= 16", len(scan.DRMSPoints))
	}
	if len(scan.RMSPoints) > 16 {
		t.Errorf("rms points = %d, want <= 16", len(scan.RMSPoints))
	}
	// Aggregates must be unaffected by bucketing.
	unbucketed, err := Run(sweepTrace(500), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ref := unbucketed.Get("scan", 1)
	if scan.Calls != ref.Calls || scan.SumRMS != ref.SumRMS || scan.SumDRMS != ref.SumDRMS || scan.TotalCost != ref.TotalCost {
		t.Error("bucketing changed aggregate statistics")
	}
	// Total activation count across points is preserved.
	var total uint64
	for _, st := range scan.DRMSPoints {
		total += st.Count
	}
	if total != scan.Calls {
		t.Errorf("points cover %d activations, want %d", total, scan.Calls)
	}
	// The worst-case plot keeps its monotone linear shape.
	plot := scan.WorstCasePlot(MetricDRMS)
	for i := 1; i < len(plot); i++ {
		if plot[i].Cost < plot[i-1].Cost {
			t.Errorf("bucketed worst-case plot no longer monotone at %d", i)
		}
	}
}

func TestBucketingDisabledByDefault(t *testing.T) {
	ps, err := Run(sweepTrace(300), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	scan := ps.Get("scan", 1)
	if len(scan.DRMSPoints) != 300 {
		t.Errorf("got %d points without a cap, want 300", len(scan.DRMSPoints))
	}
}

func TestBucketingQuantizationError(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPointsPerProfile = 32
	ps, err := Run(sweepTrace(1000), cfg)
	if err != nil {
		t.Fatal(err)
	}
	plot := ps.Get("scan", 1).WorstCasePlot(MetricDRMS)
	// Every bucketed x must still be a valid quantization: the max cost at
	// bucket key k covers sizes in [k, k + 2^shift), and cost = 3*size + 2,
	// so max cost per bucket is bounded by 3*(nextKey) + 2.
	for i := 0; i < len(plot)-1; i++ {
		next := plot[i+1].N
		if plot[i].Cost > 3*next+8 {
			t.Errorf("bucket %d (n=%d): max cost %d exceeds bound for bucket end %d",
				i, plot[i].N, plot[i].Cost, next)
		}
	}
}

func TestMergeWithDifferentShifts(t *testing.T) {
	// Thread 1 has many points (bucketed deep); thread 2 few (unshifted).
	b := trace.NewBuilder()
	t1 := b.Thread(1)
	t2 := b.Thread(2)
	t1.Call("main")
	t2.Call("main")
	for size := 1; size <= 300; size++ {
		t1.Call("scan")
		t1.Read(trace.Addr(1<<20), uint32(size))
		t1.Ret()
	}
	for size := 1; size <= 3; size++ {
		t2.Call("scan")
		t2.Read(trace.Addr(1<<24), uint32(size))
		t2.Ret()
	}
	t1.Ret()
	t2.Ret()
	cfg := DefaultConfig()
	cfg.MaxPointsPerProfile = 8
	ps, err := Run(b.Trace(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	merged := ps.Routine("scan")
	if merged.Calls != 303 {
		t.Fatalf("merged calls = %d, want 303", merged.Calls)
	}
	if len(merged.DRMSPoints) > 16 {
		t.Errorf("merged points = %d, want bounded", len(merged.DRMSPoints))
	}
	var total uint64
	for _, st := range merged.DRMSPoints {
		total += st.Count
	}
	if total != 303 {
		t.Errorf("merged points cover %d activations, want 303", total)
	}
}

// TestBucketKeyQuick checks quantization basics: keys are idempotent, never
// exceed the input, and differ from it by less than 2^shift.
func TestBucketKeyQuick(t *testing.T) {
	f := func(n uint64, shiftRaw uint8) bool {
		shift := shiftRaw % 48
		k := bucketKey(n, shift)
		if k > n {
			return false
		}
		if n-k >= 1<<shift {
			return false
		}
		return bucketKey(k, shift) == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
