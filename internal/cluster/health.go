package cluster

// Health-checked liveness over a static member list. One prober goroutine
// per node dials a periodic APRD status probe; ejection is fail-fast (one
// failed probe marks the node down by default) and rejoin is automatic
// (one successful probe marks it back up). The dialer feeds connect
// failures straight into the same view via ReportFailure, so a node that
// dies between probes is ejected the moment a client trips over it, not an
// interval later.

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"aprof/internal/obs"
	"aprof/internal/server"
)

// Defaults for HealthOptions fields left zero.
const (
	DefaultProbeInterval = 500 * time.Millisecond
	DefaultProbeTimeout  = 2 * time.Second
)

// ObsScopeCluster is the metric scope of the cluster layer: probe results
// and the down-node gauge.
const ObsScopeCluster = "cluster"

// ProbeFunc checks one node's liveness; a nil error means the node is
// accepting sessions.
type ProbeFunc func(ctx context.Context, addr string) error

// Probe is the default ProbeFunc: dial addr, send an APRD status probe,
// and require a StatusOK answer. A draining node answers busy and is
// reported down — it sheds every new session, so routing must skip it.
func Probe(ctx context.Context, addr string, timeout time.Duration) error {
	d := net.Dialer{Timeout: timeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if _, err := conn.Write(server.AppendProbe(nil)); err != nil {
		return fmt.Errorf("cluster: probe write: %w", err)
	}
	resp, err := server.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		return fmt.Errorf("cluster: probe response: %w", err)
	}
	if resp.Status != server.StatusOK {
		return fmt.Errorf("cluster: node %s not accepting sessions (status %q: %s)", addr, resp.Status, resp.Msg)
	}
	return nil
}

// HealthOptions configures a Health tracker. The zero value probes with
// the defaults above.
type HealthOptions struct {
	// Interval between probes per node (default DefaultProbeInterval).
	Interval time.Duration
	// Timeout bounds one probe end to end (default DefaultProbeTimeout).
	Timeout time.Duration
	// FailAfter is the count of consecutive failures — probe or reported —
	// that ejects a node (default 1: fail fast; a healthy node answers a
	// probe in microseconds, so a single refusal is already a strong
	// signal, and a false ejection costs only one probe interval).
	FailAfter int
	// Probe replaces the APRD status probe (tests inject failures here).
	Probe ProbeFunc
	// Obs receives probe metrics under scope "cluster" (nil disables).
	Obs *obs.Registry
	// Logf logs liveness transitions (nil discards).
	Logf func(format string, args ...any)
}

// nodeState is one member's liveness accounting.
type nodeState struct {
	down     bool
	failures int // consecutive failures since the last success
}

// Health tracks which members of a static list are currently alive. All
// methods are safe for concurrent use; Start/Stop manage the probers.
type Health struct {
	opts  HealthOptions
	nodes []string

	probesOK   *obs.Counter
	probesFail *obs.Counter
	nodesDown  *obs.Gauge

	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu    sync.Mutex
	state map[string]*nodeState
}

// NewHealth builds a tracker over nodes; every node starts alive (the
// optimistic default: a wrongly-presumed-up node costs one failed dial,
// a wrongly-presumed-down node would silently halve the cluster).
func NewHealth(nodes []string, opts HealthOptions) *Health {
	if opts.Interval <= 0 {
		opts.Interval = DefaultProbeInterval
	}
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultProbeTimeout
	}
	if opts.FailAfter <= 0 {
		opts.FailAfter = 1
	}
	if opts.Probe == nil {
		timeout := opts.Timeout
		opts.Probe = func(ctx context.Context, addr string) error {
			return Probe(ctx, addr, timeout)
		}
	}
	h := &Health{
		opts:  opts,
		nodes: append([]string(nil), nodes...),
		state: make(map[string]*nodeState, len(nodes)),
	}
	if opts.Obs != nil {
		s := opts.Obs.Scope(ObsScopeCluster)
		h.probesOK = s.Counter("probes_ok")
		h.probesFail = s.Counter("probes_failed")
		h.nodesDown = s.Gauge("nodes_down")
	}
	for _, n := range h.nodes {
		h.state[n] = &nodeState{}
	}
	return h
}

// Start launches one prober per node. Stop (or cancelling ctx) ends them.
func (h *Health) Start(ctx context.Context) {
	ctx, h.cancel = context.WithCancel(ctx)
	for _, node := range h.nodes {
		node := node
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			t := time.NewTicker(h.opts.Interval)
			defer t.Stop()
			for {
				pctx, cancel := context.WithTimeout(ctx, h.opts.Timeout)
				err := h.opts.Probe(pctx, node)
				cancel()
				if ctx.Err() != nil {
					return
				}
				if err != nil {
					h.probesFail.Inc()
					h.ReportFailure(node)
				} else {
					h.probesOK.Inc()
					h.ReportSuccess(node)
				}
				select {
				case <-t.C:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
}

// Stop ends the probers and waits for them. Safe to call without Start.
func (h *Health) Stop() {
	if h.cancel != nil {
		h.cancel()
	}
	h.wg.Wait()
}

// Alive reports whether addr is currently presumed up. Unknown nodes are
// presumed up: the health view restricts routing, it never expands it.
func (h *Health) Alive(addr string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.state[addr]
	return !ok || !st.down
}

// Down returns the currently-ejected nodes in sorted order.
func (h *Health) Down() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	var down []string
	for n, st := range h.state {
		if st.down {
			down = append(down, n)
		}
	}
	sort.Strings(down)
	return down
}

// ReportFailure records one failed interaction with addr — a probe, a
// connect error, a handshake that never answered. FailAfter consecutive
// reports eject the node.
func (h *Health) ReportFailure(addr string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.state[addr]
	if !ok {
		return
	}
	st.failures++
	if !st.down && st.failures >= h.opts.FailAfter {
		st.down = true
		h.nodesDown.Add(1)
		h.logf("cluster: node %s down (%d consecutive failures)", addr, st.failures)
	}
}

// ReportSuccess records one successful interaction with addr, rejoining
// an ejected node immediately.
func (h *Health) ReportSuccess(addr string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.state[addr]
	if !ok {
		return
	}
	st.failures = 0
	if st.down {
		st.down = false
		h.nodesDown.Add(-1)
		h.logf("cluster: node %s rejoined", addr)
	}
}

func (h *Health) logf(format string, args ...any) {
	if h.opts.Logf != nil {
		h.opts.Logf(format, args...)
	}
}
