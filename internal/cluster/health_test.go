package cluster

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"aprof/internal/obs"
)

// scriptedProbe is a ProbeFunc whose verdict per node can be flipped at
// runtime.
type scriptedProbe struct {
	mu   sync.Mutex
	fail map[string]bool
}

func (p *scriptedProbe) set(node string, fail bool) {
	p.mu.Lock()
	p.fail[node] = fail
	p.mu.Unlock()
}

func (p *scriptedProbe) probe(ctx context.Context, addr string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fail[addr] {
		return errors.New("scripted probe failure")
	}
	return nil
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for i := 0; i < 500; i++ {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestHealthEjectsAndRejoins: a failing probe ejects the node fail-fast;
// a succeeding probe rejoins it. The obs gauge tracks the down count.
func TestHealthEjectsAndRejoins(t *testing.T) {
	sp := &scriptedProbe{fail: map[string]bool{}}
	reg := obs.NewRegistry()
	h := NewHealth([]string{"n1", "n2"}, HealthOptions{
		Interval: 2 * time.Millisecond,
		Probe:    sp.probe,
		Obs:      reg,
		Logf:     t.Logf,
	})
	h.Start(context.Background())
	defer h.Stop()

	if !h.Alive("n1") || !h.Alive("n2") {
		t.Fatal("nodes must start presumed alive")
	}

	sp.set("n1", true)
	waitFor(t, "n1 ejection", func() bool { return !h.Alive("n1") })
	if !h.Alive("n2") {
		t.Fatal("n2 ejected though only n1's probe fails")
	}
	if down := h.Down(); len(down) != 1 || down[0] != "n1" {
		t.Fatalf("Down() = %v, want [n1]", down)
	}
	if g := reg.Scope(ObsScopeCluster).Gauge("nodes_down").Load(); g != 1 {
		t.Fatalf("nodes_down = %d, want 1", g)
	}

	sp.set("n1", false)
	waitFor(t, "n1 rejoin", func() bool { return h.Alive("n1") })
	if g := reg.Scope(ObsScopeCluster).Gauge("nodes_down").Load(); g != 0 {
		t.Fatalf("nodes_down after rejoin = %d, want 0", g)
	}
}

// TestHealthFailAfterThreshold: with FailAfter=3, two failures keep the
// node up and the third ejects it; one success resets the streak.
func TestHealthFailAfterThreshold(t *testing.T) {
	h := NewHealth([]string{"n"}, HealthOptions{FailAfter: 3})
	h.ReportFailure("n")
	h.ReportFailure("n")
	if !h.Alive("n") {
		t.Fatal("node ejected before the failure threshold")
	}
	h.ReportSuccess("n")
	h.ReportFailure("n")
	h.ReportFailure("n")
	if !h.Alive("n") {
		t.Fatal("success did not reset the failure streak")
	}
	h.ReportFailure("n")
	if h.Alive("n") {
		t.Fatal("node still alive past the failure threshold")
	}
}

// TestHealthUnknownNodePresumedAlive: reports about strangers are ignored
// and lookups for them answer alive — health restricts routing among
// configured members only.
func TestHealthUnknownNodePresumedAlive(t *testing.T) {
	h := NewHealth([]string{"n"}, HealthOptions{})
	h.ReportFailure("stranger")
	if !h.Alive("stranger") {
		t.Fatal("unknown node not presumed alive")
	}
}

// TestHealthStopJoinsProbers: Stop must join every prober goroutine — the
// obs leak-audit pattern.
func TestHealthStopJoinsProbers(t *testing.T) {
	before := runtime.NumGoroutine()
	sp := &scriptedProbe{fail: map[string]bool{}}
	h := NewHealth([]string{"a", "b", "c"}, HealthOptions{
		Interval: time.Millisecond,
		Probe:    sp.probe,
	})
	h.Start(context.Background())
	time.Sleep(10 * time.Millisecond)
	h.Stop()
	for i := 0; ; i++ {
		if after := runtime.NumGoroutine(); after <= before {
			return
		} else if i >= 250 {
			t.Fatalf("prober goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(2 * time.Millisecond)
	}
}
