package cluster

// Cluster-wide profile queries. Sessions are routed by the ring, so any
// one node holds only its share of the completed profiles; the fan-out
// handler presents the union. The index merges the local result list with
// every peer's /profiles/ index, and a by-id lookup answers from the local
// store when it can and otherwise asks each peer in turn. Peers that do
// not answer inside the timeout degrade the index to a partial view (and
// say so) instead of failing it: during a node outage the surviving
// profiles must stay queryable.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"aprof/internal/server"
)

// DefaultFanoutTimeout bounds one peer query.
const DefaultFanoutTimeout = 2 * time.Second

// fanoutHeader marks a peer-to-peer query. In a full mesh every node's
// /profiles/ is itself a fan-out; without this marker an index query
// would recurse (A asks B, whose handler asks A and C, ...) into an
// exponential request storm that times out and degrades every view to
// partial. A request carrying the header is answered from the local
// store only.
const fanoutHeader = "X-Aprof-Cluster-Local"

// maxPeerProfileBytes caps one peer profile response (64 MiB): a confused
// or hostile peer must not balloon this node's memory.
const maxPeerProfileBytes = 64 << 20

// ProfileStore is the local node's completed-session view; *server.Server
// implements it.
type ProfileStore interface {
	ResultIDs() []string
	Result(id string) (*server.SessionResult, bool)
}

// Fanout serves the cluster-wide /profiles/ endpoint over a local store
// plus a static list of peer HTTP (debug-server) addresses.
type Fanout struct {
	local   ProfileStore
	peers   []string // "host:port" of each peer's debug server
	client  *http.Client
	timeout time.Duration
}

// NewFanout builds the fan-out view. peers lists the other nodes' debug
// HTTP addresses; with no peers the handler is exactly the local view.
func NewFanout(local ProfileStore, peers []string, timeout time.Duration) *Fanout {
	if timeout <= 0 {
		timeout = DefaultFanoutTimeout
	}
	return &Fanout{
		local:   local,
		peers:   append([]string(nil), peers...),
		client:  &http.Client{Timeout: timeout},
		timeout: timeout,
	}
}

// clusterIndex is the merged /profiles/ index document. It is a superset
// of the single-node shape ({"sessions": [...]}), adding partial only when
// a peer could not be reached.
type clusterIndex struct {
	Sessions []string `json:"sessions"`
	Partial  bool     `json:"partial,omitempty"`
}

// Handler serves the merged index at the mount point and per-session
// profiles beneath it. Mount at "/profiles/" like the single-node handler.
func (f *Fanout) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := strings.Trim(strings.TrimPrefix(r.URL.Path, "/profiles/"), "/")
		localOnly := r.Header.Get(fanoutHeader) != ""
		w.Header().Set("Content-Type", "application/json")
		if id == "" {
			if localOnly {
				idx := clusterIndex{Sessions: f.local.ResultIDs()}
				if idx.Sessions == nil {
					idx.Sessions = []string{}
				}
				sort.Strings(idx.Sessions)
				json.NewEncoder(w).Encode(idx)
				return
			}
			json.NewEncoder(w).Encode(f.index())
			return
		}
		if res, ok := f.local.Result(id); ok {
			w.Write(res.Profile)
			return
		}
		if !localOnly {
			if body, ok := f.fromPeers(id); ok {
				w.Write(body)
				return
			}
		}
		http.Error(w, fmt.Sprintf(`{"error": "no profile for session %q"}`, id), http.StatusNotFound)
	})
}

// index merges the local session list with every peer's, in parallel.
func (f *Fanout) index() clusterIndex {
	type peerIndex struct {
		sessions []string
		err      error
	}
	results := make([]peerIndex, len(f.peers))
	var wg sync.WaitGroup
	for i, peer := range f.peers {
		i, peer := i, peer
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i].sessions, results[i].err = f.peerSessions(peer)
		}()
	}
	wg.Wait()

	seen := make(map[string]struct{})
	for _, id := range f.local.ResultIDs() {
		seen[id] = struct{}{}
	}
	idx := clusterIndex{}
	for _, r := range results {
		if r.err != nil {
			idx.Partial = true
			continue
		}
		for _, id := range r.sessions {
			seen[id] = struct{}{}
		}
	}
	idx.Sessions = make([]string, 0, len(seen))
	for id := range seen {
		idx.Sessions = append(idx.Sessions, id)
	}
	sort.Strings(idx.Sessions)
	return idx
}

// peerSessions fetches one peer's local session index.
func (f *Fanout) peerSessions(peer string) ([]string, error) {
	resp, err := f.peerGet(peer, "")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: peer %s index: status %d", peer, resp.StatusCode)
	}
	var idx clusterIndex
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxPeerProfileBytes)).Decode(&idx); err != nil {
		return nil, fmt.Errorf("cluster: peer %s index: %w", peer, err)
	}
	return idx.Sessions, nil
}

// fromPeers asks each peer for the session's profile, returning the first
// hit. Sequential is fine: the ring sends a session to one node, so at
// most one peer answers, and the common case (local hit) never gets here.
func (f *Fanout) fromPeers(id string) ([]byte, bool) {
	if !server.ValidSessionID(id) {
		return nil, false
	}
	for _, peer := range f.peers {
		resp, err := f.peerGet(peer, id)
		if err != nil {
			continue
		}
		body, rerr := io.ReadAll(io.LimitReader(resp.Body, maxPeerProfileBytes))
		resp.Body.Close()
		if rerr != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		return body, true
	}
	return nil, false
}

// peerGet issues a local-only query to a peer's /profiles/ endpoint.
func (f *Fanout) peerGet(peer, id string) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodGet, "http://"+peer+"/profiles/"+id, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(fanoutHeader, "1")
	return f.client.Do(req)
}
