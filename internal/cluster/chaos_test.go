package cluster_test

// The cluster chaos suite: a multi-node aprofd deployment against hard
// node kills, mid-stream link chaos, half-open links, busy-shed overload,
// and health-based routing. The invariant everywhere is the single-node
// one lifted to the cluster: wherever a session ends up after however
// many migrations, its profile is byte-identical to the offline
// sequential pipeline, and the fan-out view can serve it cluster-wide.
//
// Node kills are in-process Aborts (the SIGKILL stand-in the single-node
// suite established): the listener and every conn die instantly with no
// goodbye. Nodes here share one checkpoint directory — the test stand-in
// for the shared volume a deployment without replication must mount —
// which is what turns a migration into a resume instead of a restart.
// The replicated counterpart of this suite lives in internal/replica:
// same kill sweep, NO shared directory, the victim's entire data dir
// wiped, and recovery drawn solely from the APRR replica set.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aprof/internal/cluster"
	"aprof/internal/core"
	"aprof/internal/faultio"
	"aprof/internal/profio"
	"aprof/internal/server"
	"aprof/internal/server/client"
	"aprof/internal/trace"
)

// testTrace encodes a random trace to APT2 bytes.
func testTrace(t *testing.T, seed int64, ops int) []byte {
	t.Helper()
	tr := trace.Random(trace.RandomConfig{Seed: seed, Ops: ops, Threads: 3})
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// offlineProfile runs the plain offline pipeline over enc — the reference
// every cluster outcome must match byte for byte.
func offlineProfile(t *testing.T, enc []byte) []byte {
	t.Helper()
	ps, err := profio.ProfileStream(context.Background(), bytes.NewReader(enc), core.DefaultConfig(), profio.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := profio.Write(&buf, ps); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// opener adapts trace bytes to the client's restartable source.
func opener(enc []byte) func() (io.ReadCloser, error) {
	return func() (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(enc)), nil
	}
}

// startNode fills test defaults and starts one cluster node.
func startNode(t *testing.T, opts server.Options) *server.Server {
	t.Helper()
	if opts.Config.CounterLimit == 0 {
		opts.Config = core.DefaultConfig()
	}
	if opts.BatchSize == 0 {
		opts.BatchSize = 16
	}
	if opts.CheckpointEvery == 0 {
		opts.CheckpointEvery = 4
	}
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	s := server.New(opts)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Abort()
		s.Wait()
	})
	return s
}

// clusterResult finds the node holding a completed session's result.
func clusterResult(nodes []*server.Server, id string) *server.SessionResult {
	for _, n := range nodes {
		if r, ok := n.Result(id); ok && r != nil {
			return r
		}
	}
	return nil
}

// waitNoLeak polls until the goroutine count returns to its baseline.
func waitNoLeak(t *testing.T, before int) {
	t.Helper()
	for i := 0; ; i++ {
		if after := runtime.NumGoroutine(); after <= before {
			return
		} else if i >= 250 {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// sessionBatches runs one clean upload and reports how many batches the
// session spans — the sweep range for kill-at-every-batch.
func sessionBatches(t *testing.T, enc []byte) int {
	t.Helper()
	var maxBatch atomic.Int64
	s := startNode(t, server.Options{
		OnSessionBatch: func(id string, batch int, delivered uint64) {
			for {
				cur := maxBatch.Load()
				if int64(batch) <= cur || maxBatch.CompareAndSwap(cur, int64(batch)) {
					return
				}
			}
		},
	})
	if _, err := client.Run(context.Background(), client.Options{
		Addr: s.Addr(), SessionID: "count", Open: opener(enc),
	}); err != nil {
		t.Fatal(err)
	}
	s.Abort()
	s.Wait()
	if maxBatch.Load() == 0 {
		t.Fatal("clean pass saw no batches")
	}
	return int(maxBatch.Load())
}

// TestClusterKillAtEveryBatch is the tentpole proof: a three-node cluster
// over a shared checkpoint directory, with the node serving the session
// hard-killed at batch index k — for every k the session has. The
// cluster-routed client must fail over to the ring successor, resume from
// the killed node's last checkpoint, and finish byte-identical to the
// offline pipeline.
func TestClusterKillAtEveryBatch(t *testing.T) {
	enc := testTrace(t, 40, 600)
	want := offlineProfile(t, enc)
	batches := sessionBatches(t, enc)
	t.Logf("session spans %d batches; killing at every index", batches)
	before := runtime.NumGoroutine()

	for killAt := 1; killAt <= batches; killAt++ {
		killAt := killAt
		t.Run(fmt.Sprintf("killAt=%d", killAt), func(t *testing.T) {
			dir := t.TempDir()
			var killed atomic.Bool
			var victim atomic.Pointer[server.Server]

			nodes := make([]*server.Server, 3)
			addrs := make([]string, 3)
			for i := range nodes {
				self := &atomic.Pointer[server.Server]{}
				s := startNode(t, server.Options{
					CheckpointDir: dir,
					OnSessionBatch: func(id string, batch int, delivered uint64) {
						// Only the node actually serving the session sees its
						// batches; the CAS makes the kill happen exactly once,
						// on whichever node that is.
						if batch == killAt && killed.CompareAndSwap(false, true) {
							victim.Store(self.Load())
							self.Load().Abort()
						}
					},
				})
				self.Store(s)
				nodes[i], addrs[i] = s, s.Addr()
			}

			cd, err := client.NewClusterDialer(client.ClusterOptions{
				Nodes:     addrs,
				SessionID: "victim",
				DialNode: func(ctx context.Context, addr string) (net.Conn, error) {
					// Deterministic resume offsets: let the killed node finish
					// flushing its final checkpoint before any redial, the way
					// real failover (seconds) always outlasts a local fsync
					// (microseconds).
					if v := victim.Load(); v != nil {
						v.Wait()
					}
					var d net.Dialer
					return d.DialContext(ctx, "tcp", addr)
				},
				Logf: t.Logf,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := client.Run(context.Background(), client.Options{
				SessionID:   "victim",
				Open:        opener(enc),
				Dialer:      cd,
				MaxAttempts: 10,
				Backoff:     2 * time.Millisecond,
			})
			if err != nil {
				t.Fatalf("upload across node kill failed: %v (result %+v)", err, res)
			}
			if !killed.Load() {
				t.Fatal("kill hook never fired")
			}
			if res.Reconnects == 0 {
				t.Fatalf("node kill did not force a reconnect: %+v", res)
			}
			if res.ResumedFrom == 0 {
				t.Fatalf("failover restarted from scratch instead of resuming: %+v", res)
			}
			got := clusterResult(nodes, "victim")
			if got == nil {
				t.Fatal("no surviving node holds the session result")
			}
			if !bytes.Equal(got.Profile, want) {
				t.Fatal("profile after node-kill failover differs from offline pipeline")
			}
		})
	}
	waitNoLeak(t, before)
}

// TestClusterLinkChaosFailoverSweep: every connection is fragmented and
// mid-frame reset (budget growing with the attempt), and FailoverAfter=1
// makes each reset hop the session to the ring successor — the session
// migrates across nodes repeatedly and must still land byte-identical.
func TestClusterLinkChaosFailoverSweep(t *testing.T) {
	enc := testTrace(t, 41, 900)
	want := offlineProfile(t, enc)
	before := runtime.NumGoroutine()

	for seed := int64(0); seed < 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			nodes := make([]*server.Server, 3)
			addrs := make([]string, 3)
			for i := range nodes {
				nodes[i] = startNode(t, server.Options{CheckpointDir: dir})
				addrs[i] = nodes[i].Addr()
			}

			var attempts atomic.Int64
			var mu sync.Mutex
			dialed := map[string]int{}
			id := fmt.Sprintf("link-%d", seed)
			cd, err := client.NewClusterDialer(client.ClusterOptions{
				Nodes:         addrs,
				SessionID:     id,
				FailoverAfter: 1,
				DialNode: func(ctx context.Context, addr string) (net.Conn, error) {
					n := attempts.Add(1)
					mu.Lock()
					dialed[addr]++
					mu.Unlock()
					var d net.Dialer
					conn, derr := d.DialContext(ctx, "tcp", addr)
					if derr != nil {
						return nil, derr
					}
					return faultio.WrapConn(conn, faultio.ConnConfig{
						Seed:            seed*100 + n,
						MaxWriteChunk:   512,
						ResetAfterBytes: int64(len(enc)) / 5 * n,
					}), nil
				},
				Logf: t.Logf,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := client.Run(context.Background(), client.Options{
				SessionID:   id,
				Open:        opener(enc),
				Dialer:      cd,
				MaxAttempts: 12,
				Backoff:     time.Millisecond,
				Jitter:      0.5,
				Seed:        seed,
			})
			if err != nil {
				t.Fatalf("upload under link chaos failed: %v (result %+v)", err, res)
			}
			if res.Reconnects == 0 {
				t.Fatalf("chaos schedule never tore a connection: %+v", res)
			}
			mu.Lock()
			distinct := len(dialed)
			mu.Unlock()
			if distinct < 2 {
				t.Fatalf("session never migrated: dial distribution %v", dialed)
			}
			got := clusterResult(nodes, id)
			if got == nil || !bytes.Equal(got.Profile, want) {
				t.Fatal("profile after chaotic migrations differs from offline pipeline")
			}
		})
	}
	waitNoLeak(t, before)
}

// TestClusterHalfOpenLinkFailsOver: the first connection goes half-open
// mid-upload — writes vanish without erroring — so only the serving
// node's idle timeout can break the stall. The client must then treat it
// as any transient, fail over, and finish byte-identical.
func TestClusterHalfOpenLinkFailsOver(t *testing.T) {
	enc := testTrace(t, 42, 700)
	want := offlineProfile(t, enc)

	for seed := int64(0); seed < 2; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			nodes := make([]*server.Server, 2)
			addrs := make([]string, 2)
			for i := range nodes {
				nodes[i] = startNode(t, server.Options{
					CheckpointDir: dir,
					IdleTimeout:   50 * time.Millisecond,
				})
				addrs[i] = nodes[i].Addr()
			}

			var attempts atomic.Int64
			id := fmt.Sprintf("halfopen-%d", seed)
			cd, err := client.NewClusterDialer(client.ClusterOptions{
				Nodes:         addrs,
				SessionID:     id,
				FailoverAfter: 1,
				DialNode: func(ctx context.Context, addr string) (net.Conn, error) {
					var d net.Dialer
					conn, derr := d.DialContext(ctx, "tcp", addr)
					if derr != nil {
						return nil, derr
					}
					if attempts.Add(1) == 1 {
						// Half-open only the first connection, partway in.
						return faultio.WrapConn(conn, faultio.ConnConfig{
							Seed:                 seed,
							MaxWriteChunk:        512,
							BlackholeWritesAfter: int64(len(enc)) / 3,
						}), nil
					}
					return conn, nil
				},
				Logf: t.Logf,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := client.Run(context.Background(), client.Options{
				SessionID:   id,
				Open:        opener(enc),
				Dialer:      cd,
				MaxAttempts: 6,
				Backoff:     2 * time.Millisecond,
			})
			if err != nil {
				t.Fatalf("upload across half-open link failed: %v (result %+v)", err, res)
			}
			if res.Reconnects == 0 {
				t.Fatalf("half-open link never forced a reconnect: %+v", res)
			}
			got := clusterResult(nodes, id)
			if got == nil || !bytes.Equal(got.Profile, want) {
				t.Fatal("profile after half-open failover differs from offline pipeline")
			}
		})
	}
}

// TestClusterBusyShedFailsOver: the session's ring owner is at capacity,
// so its handshake sheds — and the cluster dialer must take the hint and
// complete the session on the ring successor, first try, no backing off
// against a full node.
func TestClusterBusyShedFailsOver(t *testing.T) {
	enc := testTrace(t, 43, 600)
	want := offlineProfile(t, enc)

	dir := t.TempDir()
	gate := make(chan struct{})
	defer close(gate)
	var once sync.Once

	nodes := make([]*server.Server, 3)
	addrs := make([]string, 3)
	for i := range nodes {
		nodes[i] = startNode(t, server.Options{
			CheckpointDir: dir,
			MaxSessions:   1,
			OnSessionBatch: func(id string, batch int, delivered uint64) {
				if id == "holder" {
					once.Do(func() { <-gate })
				}
			},
		})
		addrs[i] = nodes[i].Addr()
	}

	// Find the ring owner for the session and occupy its only slot.
	ring, err := cluster.NewRing(addrs, 0)
	if err != nil {
		t.Fatal(err)
	}
	seq := ring.Sequence("shed-me")
	holderDone := make(chan error, 1)
	go func() {
		_, herr := client.Run(context.Background(), client.Options{
			Addr: seq[0], SessionID: "holder", Open: opener(enc),
		})
		holderDone <- herr
	}()
	waitActive(t, nodes, seq[0])

	cd, err := client.NewClusterDialer(client.ClusterOptions{
		Nodes:     addrs,
		SessionID: "shed-me",
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := client.Run(context.Background(), client.Options{
		SessionID: "shed-me",
		Open:      opener(enc),
		Dialer:    cd,
		Backoff:   time.Millisecond,
	})
	if err != nil {
		t.Fatalf("upload with a full owner failed: %v (result %+v)", err, res)
	}
	if res.Reconnects != 1 {
		t.Fatalf("reconnects = %d, want exactly 1 (one shed, one success)", res.Reconnects)
	}
	if got := cd.Node(); got != seq[1] {
		t.Fatalf("session landed on %s, want ring successor %s", got, seq[1])
	}
	byOwner, _ := nodeFor(nodes, seq[1]).Result("shed-me")
	if byOwner == nil || !bytes.Equal(byOwner.Profile, want) {
		t.Fatal("profile after busy-shed failover differs from offline pipeline")
	}

	gate <- struct{}{}
	if err := <-holderDone; err != nil {
		t.Fatalf("holder session failed: %v", err)
	}
}

// waitActive polls until the node at addr has an active session.
func waitActive(t *testing.T, nodes []*server.Server, addr string) {
	t.Helper()
	n := nodeFor(nodes, addr)
	for i := 0; ; i++ {
		if len(n.ResultIDs()) > 0 || n.ActiveSessions() > 0 {
			return
		}
		if i > 1000 {
			t.Fatalf("no session ever became active on %s", addr)
		}
		time.Sleep(time.Millisecond)
	}
}

// nodeFor maps an address back to its server.
func nodeFor(nodes []*server.Server, addr string) *server.Server {
	for _, n := range nodes {
		if n.Addr() == addr {
			return n
		}
	}
	return nil
}

// TestClusterHealthRoutesAroundDeadNode: once the probers eject a killed
// owner, a new session's dialer must skip it without paying a connect
// attempt — the health view saves the dial, not just the session.
func TestClusterHealthRoutesAroundDeadNode(t *testing.T) {
	enc := testTrace(t, 44, 500)
	want := offlineProfile(t, enc)

	dir := t.TempDir()
	nodes := make([]*server.Server, 3)
	addrs := make([]string, 3)
	for i := range nodes {
		nodes[i] = startNode(t, server.Options{CheckpointDir: dir})
		addrs[i] = nodes[i].Addr()
	}

	health := cluster.NewHealth(addrs, cluster.HealthOptions{
		Interval: 10 * time.Millisecond,
		Timeout:  time.Second,
		Logf:     t.Logf,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	health.Start(ctx)
	defer health.Stop()

	// Kill the owner of the upcoming session and wait for ejection.
	ring, err := cluster.NewRing(addrs, 0)
	if err != nil {
		t.Fatal(err)
	}
	seq := ring.Sequence("routed")
	owner := nodeFor(nodes, seq[0])
	owner.Abort()
	owner.Wait()
	for i := 0; ; i++ {
		if !health.Alive(seq[0]) {
			break
		}
		if i > 500 {
			t.Fatalf("probers never ejected the killed owner; down=%v", health.Down())
		}
		time.Sleep(2 * time.Millisecond)
	}

	var mu sync.Mutex
	dialed := map[string]int{}
	cd, err := client.NewClusterDialer(client.ClusterOptions{
		Nodes:     addrs,
		SessionID: "routed",
		Health:    health,
		DialNode: func(ctx context.Context, addr string) (net.Conn, error) {
			mu.Lock()
			dialed[addr]++
			mu.Unlock()
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := client.Run(context.Background(), client.Options{
		SessionID: "routed",
		Open:      opener(enc),
		Dialer:    cd,
		Backoff:   time.Millisecond,
	})
	if err != nil {
		t.Fatalf("upload around dead owner failed: %v (result %+v)", err, res)
	}
	mu.Lock()
	deadDials := dialed[seq[0]]
	mu.Unlock()
	if deadDials != 0 {
		t.Fatalf("dialer paid %d connect attempts to the ejected owner", deadDials)
	}
	got := clusterResult(nodes, "routed")
	if got == nil || !bytes.Equal(got.Profile, want) {
		t.Fatal("profile after health-based routing differs from offline pipeline")
	}
}

// TestClusterFanoutServesMigratedSession: after a kill-driven migration,
// the fan-out view on any surviving node must serve the session's profile
// and flag the dead peer's absence as a partial index, never an error.
func TestClusterFanoutServesMigratedSession(t *testing.T) {
	enc := testTrace(t, 45, 600)
	want := offlineProfile(t, enc)

	dir := t.TempDir()
	var killed atomic.Bool
	var victim atomic.Pointer[server.Server]
	nodes := make([]*server.Server, 3)
	addrs := make([]string, 3)
	for i := range nodes {
		self := &atomic.Pointer[server.Server]{}
		s := startNode(t, server.Options{
			CheckpointDir: dir,
			OnSessionBatch: func(id string, batch int, delivered uint64) {
				if batch == 2 && killed.CompareAndSwap(false, true) {
					victim.Store(self.Load())
					self.Load().Abort()
				}
			},
		})
		self.Store(s)
		nodes[i], addrs[i] = s, s.Addr()
	}

	cd, err := client.NewClusterDialer(client.ClusterOptions{
		Nodes:     addrs,
		SessionID: "migrated",
		DialNode: func(ctx context.Context, addr string) (net.Conn, error) {
			if v := victim.Load(); v != nil {
				v.Wait()
			}
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Run(context.Background(), client.Options{
		SessionID: "migrated", Open: opener(enc), Dialer: cd,
		MaxAttempts: 10, Backoff: 2 * time.Millisecond,
	}); err != nil {
		t.Fatalf("upload across kill failed: %v", err)
	}

	// Stand up the debug HTTP side of every node: each survivor's fan-out
	// peers at the others (including the dead one — its HTTP side is a
	// plain unreachable address, exactly like a crashed machine). Two
	// passes: first bind listeners so every peer address exists, then
	// build fan-outs with the full peer lists.
	httpAddrs := make([]string, 3)
	srvs := make([]*httptest.Server, 3)
	muxes := make([]*http.ServeMux, 3)
	for i := range nodes {
		muxes[i] = http.NewServeMux()
		srvs[i] = httptest.NewServer(muxes[i])
		defer srvs[i].Close()
		httpAddrs[i] = srvs[i].Listener.Addr().String()
	}
	for i := range nodes {
		peers := make([]string, 0, 2)
		for j := range nodes {
			if j != i {
				peers = append(peers, httpAddrs[j])
			}
		}
		muxes[i].Handle("/profiles/", cluster.NewFanout(nodes[i], peers, 500*time.Millisecond).Handler())
	}
	// The dead node's HTTP side goes away with the machine.
	for i, n := range nodes {
		if n == victim.Load() {
			srvs[i].Close()
		}
	}

	for i, n := range nodes {
		if n == victim.Load() {
			continue
		}
		resp, err := http.Get("http://" + httpAddrs[i] + "/profiles/migrated")
		if err != nil {
			t.Fatalf("node %d fan-out query: %v", i, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("node %d fan-out status %d: %s", i, resp.StatusCode, body)
		}
		if !bytes.Equal(body, want) {
			t.Fatalf("node %d fan-out profile differs from offline pipeline", i)
		}
	}
}
