package cluster_test

// Multi-node ingest throughput: concurrent sessions routed by the ring
// across 1 vs 3 loopback nodes. On a multi-core host the 3-node cluster
// decodes and profiles sessions on distinct cores and should approach a
// linear win; on a 1-core container the nodes time-slice one CPU, so the
// numbers measure routing + connection overhead, not scaling (the same
// caveat as every concurrency baseline in BENCH_pipeline.json).

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"testing"

	"aprof/internal/core"
	"aprof/internal/server"
	"aprof/internal/server/client"
	"aprof/internal/trace"
)

func BenchmarkClusterIngest(b *testing.B) {
	tr := trace.Random(trace.RandomConfig{Seed: 50, Ops: 2000, Threads: 3})
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, tr); err != nil {
		b.Fatal(err)
	}
	enc := buf.Bytes()
	const sessions = 4

	for _, nNodes := range []int{1, 3} {
		b.Run(fmt.Sprintf("nodes=%d", nNodes), func(b *testing.B) {
			addrs := make([]string, nNodes)
			for i := range addrs {
				s := server.New(server.Options{
					Config:      core.DefaultConfig(),
					MaxSessions: sessions,
					Logf:        func(string, ...any) {},
				})
				if err := s.Start("127.0.0.1:0"); err != nil {
					b.Fatal(err)
				}
				defer func() {
					s.Abort()
					s.Wait()
				}()
				addrs[i] = s.Addr()
			}

			b.ReportAllocs()
			b.SetBytes(int64(len(enc)) * sessions)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				errs := make(chan error, sessions)
				for sess := 0; sess < sessions; sess++ {
					id := fmt.Sprintf("ingest-%d-%d", i, sess)
					go func() {
						cd, err := client.NewClusterDialer(client.ClusterOptions{
							Nodes: addrs, SessionID: id,
						})
						if err != nil {
							errs <- err
							return
						}
						_, err = client.Run(context.Background(), client.Options{
							SessionID: id,
							Open: func() (io.ReadCloser, error) {
								return io.NopCloser(bytes.NewReader(enc)), nil
							},
							Dialer: cd,
						})
						errs <- err
					}()
				}
				for sess := 0; sess < sessions; sess++ {
					if err := <-errs; err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
