package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"testing"
	"time"

	"aprof/internal/server"
)

// fakeStore is an in-memory ProfileStore.
type fakeStore map[string][]byte

func (f fakeStore) ResultIDs() []string {
	ids := make([]string, 0, len(f))
	for id := range f {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func (f fakeStore) Result(id string) (*server.SessionResult, bool) {
	p, ok := f[id]
	if !ok {
		return nil, false
	}
	return &server.SessionResult{ID: id, Profile: p}, true
}

// peerServer serves a single-node /profiles/ view over a fakeStore, the
// same shape a real aprofd debug server exposes.
func peerServer(t *testing.T, store fakeStore) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(NewFanout(store, nil, time.Second).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// hostOf strips the scheme from an httptest server URL.
func hostOf(ts *httptest.Server) string {
	return ts.Listener.Addr().String()
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil && resp.StatusCode == http.StatusOK {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestFanoutMergesIndexes: the cluster index is the sorted union of the
// local and every peer's sessions.
func TestFanoutMergesIndexes(t *testing.T) {
	p1 := peerServer(t, fakeStore{"s-b": []byte(`{"b":1}`), "s-shared": []byte(`{"x":1}`)})
	p2 := peerServer(t, fakeStore{"s-c": []byte(`{"c":1}`)})
	local := fakeStore{"s-a": []byte(`{"a":1}`), "s-shared": []byte(`{"x":1}`)}

	ts := httptest.NewServer(NewFanout(local, []string{hostOf(p1), hostOf(p2)}, time.Second).Handler())
	defer ts.Close()

	var idx struct {
		Sessions []string `json:"sessions"`
		Partial  bool     `json:"partial"`
	}
	if code := getJSON(t, ts.URL+"/profiles/", &idx); code != http.StatusOK {
		t.Fatalf("index status %d", code)
	}
	want := []string{"s-a", "s-b", "s-c", "s-shared"}
	if !reflect.DeepEqual(idx.Sessions, want) {
		t.Fatalf("merged index = %v, want %v", idx.Sessions, want)
	}
	if idx.Partial {
		t.Fatal("index marked partial with every peer reachable")
	}
}

// TestFanoutByIDPrefersLocalThenPeers: a local hit never queries peers; a
// remote-only session is fetched from its peer; a missing one is 404.
func TestFanoutByIDPrefersLocalThenPeers(t *testing.T) {
	peer := peerServer(t, fakeStore{"remote": []byte(`{"remote":true}`)})
	local := fakeStore{"local": []byte(`{"local":true}`)}
	ts := httptest.NewServer(NewFanout(local, []string{hostOf(peer)}, time.Second).Handler())
	defer ts.Close()

	get := func(id string) (int, []byte) {
		resp, err := http.Get(ts.URL + "/profiles/" + id)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}
	if code, body := get("local"); code != http.StatusOK || string(body) != `{"local":true}` {
		t.Fatalf("local profile: %d %q", code, body)
	}
	if code, body := get("remote"); code != http.StatusOK || string(body) != `{"remote":true}` {
		t.Fatalf("remote profile: %d %q", code, body)
	}
	if code, _ := get("nowhere"); code != http.StatusNotFound {
		t.Fatalf("missing profile: %d, want 404", code)
	}
}

// TestFanoutToleratesDeadPeer: an unreachable peer degrades the index to
// partial — and by-id lookups still answer from the live members.
func TestFanoutToleratesDeadPeer(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadAddr := hostOf(dead)
	dead.Close() // now unreachable

	live := peerServer(t, fakeStore{"alive": []byte(`{"ok":1}`)})
	local := fakeStore{}
	ts := httptest.NewServer(NewFanout(local, []string{deadAddr, hostOf(live)}, 200*time.Millisecond).Handler())
	defer ts.Close()

	var idx struct {
		Sessions []string `json:"sessions"`
		Partial  bool     `json:"partial"`
	}
	if code := getJSON(t, ts.URL+"/profiles/", &idx); code != http.StatusOK {
		t.Fatalf("index status %d", code)
	}
	if !idx.Partial {
		t.Fatal("index not marked partial with a dead peer")
	}
	if !reflect.DeepEqual(idx.Sessions, []string{"alive"}) {
		t.Fatalf("index = %v, want [alive]", idx.Sessions)
	}
	if code := getJSON(t, ts.URL+"/profiles/alive", nil); code != http.StatusOK {
		t.Fatalf("live-peer profile status %d", code)
	}
}

// TestFanoutFullMeshDoesNotRecurse: in a real deployment every node's
// /profiles/ is itself a fan-out (full peer mesh). Peer-to-peer queries
// must be answered from the peer's local store only — otherwise an index
// query recurses (A asks B, whose fan-out asks A and C, ...) into an
// exponential request storm where every view times out to empty/partial.
// Three fan-outs in a full mesh must each serve the complete, non-partial
// union, and any node must serve any session by id, quickly.
func TestFanoutFullMeshDoesNotRecurse(t *testing.T) {
	stores := []fakeStore{
		{"s-a": []byte(`{"a":1}`)},
		{"s-b": []byte(`{"b":1}`)},
		{"s-c": []byte(`{"c":1}`)},
	}
	// Two-pass setup: bind listeners first to learn every address, then
	// mount each node's fan-out with the full peer list.
	servers := make([]*httptest.Server, len(stores))
	muxes := make([]*http.ServeMux, len(stores))
	for i := range stores {
		muxes[i] = http.NewServeMux()
		servers[i] = httptest.NewServer(muxes[i])
		defer servers[i].Close()
	}
	for i := range stores {
		var peers []string
		for j := range servers {
			if j != i {
				peers = append(peers, hostOf(servers[j]))
			}
		}
		muxes[i].Handle("/profiles/", NewFanout(stores[i], peers, time.Second).Handler())
	}

	want := []string{"s-a", "s-b", "s-c"}
	start := time.Now()
	for i, ts := range servers {
		var idx struct {
			Sessions []string `json:"sessions"`
			Partial  bool     `json:"partial"`
		}
		if code := getJSON(t, ts.URL+"/profiles/", &idx); code != http.StatusOK {
			t.Fatalf("node %d index status %d", i, code)
		}
		if idx.Partial {
			t.Fatalf("node %d index partial in a fully-live mesh", i)
		}
		if !reflect.DeepEqual(idx.Sessions, want) {
			t.Fatalf("node %d index = %v, want %v", i, idx.Sessions, want)
		}
		for _, id := range want {
			if code := getJSON(t, ts.URL+"/profiles/"+id, nil); code != http.StatusOK {
				t.Fatalf("node %d session %s status %d", i, id, code)
			}
		}
	}
	// A recursion storm would burn the full per-hop timeout at every
	// level; the whole mesh sweep must finish in a fraction of one.
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("mesh sweep took %v — peer queries are recursing", elapsed)
	}
}

// TestFanoutRejectsInvalidIDs: a path that is not a valid session id must
// not be forwarded to peers (it could not name a profile anywhere).
func TestFanoutRejectsInvalidIDs(t *testing.T) {
	ts := httptest.NewServer(NewFanout(fakeStore{}, []string{"127.0.0.1:1"}, 100*time.Millisecond).Handler())
	defer ts.Close()
	if code := getJSON(t, ts.URL+"/profiles/%2e%2e%2fetc", nil); code != http.StatusNotFound {
		t.Fatalf("invalid id status %d, want 404", code)
	}
}
