package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

// TestRingDeterministicPlacement: placement must be a pure function of the
// member list and the key — independent of input order, stable across
// constructions.
func TestRingDeterministicPlacement(t *testing.T) {
	nodes := []string{"c:1", "a:1", "b:1"}
	r1, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing([]string{"b:1", "c:1", "a:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("session-%d", i)
		if r1.Owner(key) != r2.Owner(key) {
			t.Fatalf("key %q: owner differs across member orderings", key)
		}
		if !reflect.DeepEqual(r1.Sequence(key), r2.Sequence(key)) {
			t.Fatalf("key %q: failover sequence differs across member orderings", key)
		}
	}
}

// TestRingSequenceCoversAllNodes: the failover sequence is a permutation
// of the member list starting at the owner.
func TestRingSequenceCoversAllNodes(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4", "n5"}
	r, err := NewRing(nodes, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%d", i)
		seq := r.Sequence(key)
		if len(seq) != len(nodes) {
			t.Fatalf("key %q: sequence has %d nodes, want %d", key, len(seq), len(nodes))
		}
		if seq[0] != r.Owner(key) {
			t.Fatalf("key %q: sequence starts at %q, owner is %q", key, seq[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, n := range seq {
			if seen[n] {
				t.Fatalf("key %q: node %q repeated in sequence %v", key, n, seq)
			}
			seen[n] = true
		}
	}
}

// TestRingBalance: with virtual nodes the keyspace share per member must
// be roughly even — no member owns more than ~2x its fair share over a
// large key sample.
func TestRingBalance(t *testing.T) {
	nodes := []string{"a", "b", "c", "d"}
	r, err := NewRing(nodes, DefaultVirtualNodes)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const keys = 10000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("session-%d", i))]++
	}
	fair := keys / len(nodes)
	for n, c := range counts {
		if c == 0 {
			t.Fatalf("node %q owns no keys", n)
		}
		if c > 2*fair || c < fair/2 {
			t.Errorf("node %q owns %d of %d keys (fair share %d): imbalance too large", n, c, keys, fair)
		}
	}
}

// TestRingStabilityUnderMemberLoss: when one member is removed, keys not
// owned by it must keep their owner — the consistent-hashing property the
// ring exists for.
func TestRingStabilityUnderMemberLoss(t *testing.T) {
	all := []string{"a", "b", "c", "d"}
	rAll, err := NewRing(all, 0)
	if err != nil {
		t.Fatal(err)
	}
	rLoss, err := NewRing([]string{"a", "b", "d"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	const keys = 2000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("s%d", i)
		before := rAll.Owner(key)
		after := rLoss.Owner(key)
		if before != "c" && before != after {
			t.Fatalf("key %q moved %q -> %q though its owner survived", key, before, after)
		}
		if before == "c" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no keys were owned by the removed member; test is vacuous")
	}
}

// TestRingRejectsBadMembership: configuration errors fail construction
// loudly instead of skewing the keyspace silently.
func TestRingRejectsBadMembership(t *testing.T) {
	for _, nodes := range [][]string{nil, {}, {""}, {"a", "a"}} {
		if _, err := NewRing(nodes, 0); err == nil {
			t.Errorf("NewRing(%q) accepted invalid membership", nodes)
		}
	}
}
