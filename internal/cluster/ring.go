// Package cluster scales the aprofd daemon horizontally: a static member
// list is arranged on a consistent-hash ring that deterministically places
// every session id on one node, a health prober keeps a live view of which
// members currently answer APRD status probes, and a fan-out handler merges
// every node's /profiles/ view into one cluster-wide query endpoint.
//
// The design is deliberately gossip-free: membership is configuration, not
// consensus. What the ring buys over static assignment is a deterministic
// failover order — every client computes the same owner and the same
// successor sequence for a session id, so when the owner dies mid-stream
// the session migrates to the node every other participant would also pick,
// and (with a shared checkpoint directory) resumes from the server-acked
// offset via the APCK resend protocol. Profile output is byte-identical
// across migrations because resume-by-resend replays the exact event
// prefix the checkpoint accounts for.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the per-member virtual node count. 64 points per
// member keeps the expected load imbalance across a handful of nodes under
// a few percent while the ring stays tiny (hundreds of points).
const DefaultVirtualNodes = 64

// ringPoint is one virtual node: a hash position owned by a member.
type ringPoint struct {
	hash uint64
	node string
}

// Ring is an immutable consistent-hash ring over a static member list.
// Construct it once; it is safe for concurrent use.
type Ring struct {
	points []ringPoint // sorted by hash
	nodes  []string    // distinct members, sorted
}

// NewRing builds a ring of vnodes virtual nodes per member (default
// DefaultVirtualNodes when vnodes <= 0). Members must be non-empty and
// distinct: routing is configuration, and a duplicated address would
// silently double that node's keyspace share.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]struct{}, len(nodes))
	sorted := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node address")
		}
		if _, dup := seen[n]; dup {
			return nil, fmt.Errorf("cluster: duplicate node address %q", n)
		}
		seen[n] = struct{}{}
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	r := &Ring{nodes: sorted, points: make([]ringPoint, 0, len(sorted)*vnodes)}
	for _, n := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(n + "#" + strconv.Itoa(v)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A full 64-bit hash collision between virtual nodes is vanishingly
		// rare; break it by name so the ring order stays deterministic
		// regardless of input order.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// ringHash is the placement hash: FNV-1a 64 through a splitmix64-style
// finalizer. Plain FNV leaves short, similar keys ("session-1",
// "session-2", "node#0".."node#63") correlated in the high bits, which
// skews ring ownership badly; the mix restores avalanche. It only has to
// be deterministic and well-spread; it is not an integrity check.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Nodes returns the member list in sorted order (a copy).
func (r *Ring) Nodes() []string {
	return append([]string(nil), r.nodes...)
}

// Owner returns the node a key is placed on: the owner of the first
// virtual node at or clockwise from the key's hash.
func (r *Ring) Owner(key string) string {
	return r.points[r.search(key)].node
}

// Sequence returns every member exactly once, in failover order for key:
// the owner first, then each distinct node encountered walking the ring
// clockwise. Every participant computes the same sequence, so the
// "successor" a client fails over to is the node the rest of the cluster
// expects to adopt the session.
func (r *Ring) Sequence(key string) []string {
	seq := make([]string, 0, len(r.nodes))
	seen := make(map[string]struct{}, len(r.nodes))
	for i, start := 0, r.search(key); len(seq) < len(r.nodes); i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, ok := seen[p.node]; !ok {
			seen[p.node] = struct{}{}
			seq = append(seq, p.node)
		}
	}
	return seq
}

// search returns the index of the first ring point at or after key's hash,
// wrapping to 0 past the last point.
func (r *Ring) search(key string) int {
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}
