package fit

import (
	"math"
	"sort"
)

// RobustPowerLaw estimates the power-law exponent of cost ≈ c·nᵏ with the
// Theil–Sen estimator in log-log space: the slope is the median of the
// slopes of all point pairs. Unlike the least-squares PowerLaw it is
// insensitive to a minority of outliers — exactly the contamination
// wall-clock cost measurements suffer from (Fig. 10's noisy timing plot):
// up to ~29% of points can be arbitrary garbage without moving the median
// slope.
//
// Points with non-positive coordinates are skipped (log undefined).
func RobustPowerLaw(pts []Point) (exponent float64, err error) {
	var xs, ys []float64
	for _, p := range pts {
		if p.N > 0 && p.Cost > 0 {
			xs = append(xs, math.Log(p.N))
			ys = append(ys, math.Log(p.Cost))
		}
	}
	if len(xs) < 2 {
		return 0, ErrTooFewPoints
	}
	slopes := make([]float64, 0, len(xs)*(len(xs)-1)/2)
	for i := 0; i < len(xs); i++ {
		for j := i + 1; j < len(xs); j++ {
			if xs[i] == xs[j] {
				continue
			}
			slopes = append(slopes, (ys[j]-ys[i])/(xs[j]-xs[i]))
		}
	}
	if len(slopes) == 0 {
		return 0, ErrTooFewPoints
	}
	sort.Float64s(slopes)
	return median(slopes), nil
}

func median(sorted []float64) float64 {
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// MedianCostPlot reduces repeated measurements at each input size to their
// median, the robust alternative to the worst-case (max) plot for
// noise-contaminated cost meters.
func MedianCostPlot(pts []Point) []Point {
	byN := make(map[float64][]float64)
	for _, p := range pts {
		byN[p.N] = append(byN[p.N], p.Cost)
	}
	out := make([]Point, 0, len(byN))
	for n, costs := range byN {
		sort.Float64s(costs)
		out = append(out, Point{N: n, Cost: median(costs)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].N < out[j].N })
	return out
}
