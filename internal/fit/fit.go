// Package fit estimates empirical cost functions from the performance
// points produced by the profiler. Given the (input size, worst-case cost)
// points of a routine, it fits the classical asymptotic models by linear
// least squares on a transformed axis and reports goodness of fit, plus a
// log-log power-law regression that exposes the apparent growth exponent —
// the quantity that distinguishes the paper's Fig. 4 plots (rms suggests a
// false superlinear trend for mysql_select, drms a linear one).
package fit

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Point is one performance point: a routine was observed to cost Cost on
// input size N.
type Point struct {
	N    float64
	Cost float64
}

// Model is a one-basis cost model: cost(n) ≈ A + B·g(n).
type Model struct {
	// Name is the conventional asymptotic name, e.g. "n log n".
	Name string
	g    func(float64) float64
}

// Eval returns g(n) for the model's basis function.
func (m Model) Eval(n float64) float64 { return m.g(n) }

// The model catalogue, ordered by growth rate. Simpler (slower-growing)
// models win ties in BestFit.
var (
	Constant  = Model{"1", func(n float64) float64 { return 1 }}
	LogN      = Model{"log n", func(n float64) float64 { return math.Log2(max(n, 1)) }}
	SqrtN     = Model{"sqrt n", func(n float64) float64 { return math.Sqrt(n) }}
	Linear    = Model{"n", func(n float64) float64 { return n }}
	NLogN     = Model{"n log n", func(n float64) float64 { return n * math.Log2(max(n, 2)) }}
	Quadratic = Model{"n^2", func(n float64) float64 { return n * n }}
	Cubic     = Model{"n^3", func(n float64) float64 { return n * n * n }}
)

// Models lists the catalogue in growth order.
var Models = []Model{Constant, LogN, SqrtN, Linear, NLogN, Quadratic, Cubic}

// Fit is a fitted model with its quality measures.
type Fit struct {
	Model Model
	// A and B are the intercept and slope of cost ≈ A + B·g(n).
	A, B float64
	// R2 is the coefficient of determination in the transformed space.
	R2 float64
	// RMSE is the root-mean-square error of the fit.
	RMSE float64
	// Points is the number of points fitted.
	Points int
}

// String renders the fit as a formula with quality, e.g.
// "cost ≈ 3.1 + 2.0·n (R²=0.999)".
func (f Fit) String() string {
	return fmt.Sprintf("cost ~ %.4g + %.4g*(%s) (R2=%.4f, %d points)", f.A, f.B, f.Model.Name, f.R2, f.Points)
}

// ErrTooFewPoints is returned when fewer than two distinct points are
// available.
var ErrTooFewPoints = errors.New("fit: need at least two distinct points")

// FitModel fits one model to the points by ordinary least squares on the
// transformed axis x = g(n).
func FitModel(pts []Point, m Model) (Fit, error) {
	if len(pts) < 2 {
		return Fit{}, ErrTooFewPoints
	}
	var sx, sy, sxx, sxy float64
	for _, p := range pts {
		x := m.g(p.N)
		sx += x
		sy += p.Cost
		sxx += x * x
		sxy += x * p.Cost
	}
	n := float64(len(pts))
	denom := n*sxx - sx*sx
	var a, b float64
	if math.Abs(denom) < 1e-12 {
		// Degenerate transformed axis (e.g. the constant model): fall back
		// to the mean.
		a = sy / n
		b = 0
	} else {
		b = (n*sxy - sx*sy) / denom
		a = (sy - b*sx) / n
	}
	var ssRes, ssTot float64
	meanY := sy / n
	for _, p := range pts {
		pred := a + b*m.g(p.N)
		ssRes += (p.Cost - pred) * (p.Cost - pred)
		ssTot += (p.Cost - meanY) * (p.Cost - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	} else if ssRes > 0 {
		r2 = 0
	}
	return Fit{
		Model:  m,
		A:      a,
		B:      b,
		R2:     r2,
		RMSE:   math.Sqrt(ssRes / n),
		Points: len(pts),
	}, nil
}

// BestFit fits every model in the catalogue and returns the best one. The
// slowest-growing model whose unexplained variance (1−R²) is within a
// constant factor of the best model's wins: a faster-growing basis always
// absorbs slightly more variance (n² fits any n·log n curve almost
// perfectly), so comparing residual ratios rather than absolute R²
// differences is what separates genuinely better models from overfitting.
// Models with a negative slope on a non-constant basis are rejected (cost
// functions do not decrease with input size).
func BestFit(pts []Point) (Fit, error) {
	const residualSlack = 2.0
	fits, err := FitAll(pts)
	if err != nil {
		return Fit{}, err
	}
	minBad := math.Inf(1)
	for _, f := range fits {
		if bad := 1 - f.R2; bad < minBad {
			minBad = bad
		}
	}
	for _, f := range fits {
		if 1-f.R2 <= residualSlack*minBad+1e-12 {
			return f, nil
		}
	}
	return fits[len(fits)-1], nil
}

// FitAll fits every model in the catalogue, in growth order, skipping
// decreasing fits for non-constant models.
func FitAll(pts []Point) ([]Fit, error) {
	if len(pts) < 2 {
		return nil, ErrTooFewPoints
	}
	var out []Fit
	for _, m := range Models {
		f, err := FitModel(pts, m)
		if err != nil {
			continue
		}
		if m.Name != Constant.Name && f.B < 0 {
			continue
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		return nil, ErrTooFewPoints
	}
	return out, nil
}

// PowerLaw fits cost ≈ c·n^k by linear regression in log-log space,
// returning the exponent k and the R² of the log-space fit. Points with
// non-positive coordinates are skipped (log undefined).
func PowerLaw(pts []Point) (exponent, r2 float64, err error) {
	var xs, ys []float64
	for _, p := range pts {
		if p.N > 0 && p.Cost > 0 {
			xs = append(xs, math.Log(p.N))
			ys = append(ys, math.Log(p.Cost))
		}
	}
	if len(xs) < 2 {
		return 0, 0, ErrTooFewPoints
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	n := float64(len(xs))
	denom := n*sxx - sx*sx
	if math.Abs(denom) < 1e-12 {
		return 0, 0, errors.New("fit: all input sizes equal in log space")
	}
	b := (n*sxy - sx*sy) / denom
	a := (sy - b*sx) / n
	var ssRes, ssTot float64
	meanY := sy / n
	for i := range xs {
		pred := a + b*xs[i]
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	r2 = 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return b, r2, nil
}

// Dedupe sorts the points by N and keeps, for duplicated N values, the
// maximum cost — the worst-case plot convention.
func Dedupe(pts []Point) []Point {
	if len(pts) == 0 {
		return nil
	}
	sorted := make([]Point, len(pts))
	copy(sorted, pts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].N < sorted[j].N })
	out := sorted[:1]
	for _, p := range sorted[1:] {
		last := &out[len(out)-1]
		if p.N == last.N {
			if p.Cost > last.Cost {
				last.Cost = p.Cost
			}
			continue
		}
		out = append(out, p)
	}
	return out
}
