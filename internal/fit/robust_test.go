package fit

import (
	"math"
	"math/rand"
	"testing"
)

func TestRobustPowerLawExact(t *testing.T) {
	cases := []struct {
		name string
		f    func(x float64) float64
		want float64
	}{
		{"linear", func(x float64) float64 { return 7 * x }, 1},
		{"quadratic", func(x float64) float64 { return 0.1 * x * x }, 2},
		{"cubic", func(x float64) float64 { return x * x * x }, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var pts []Point
			for i := 1; i <= 30; i++ {
				x := float64(i * 20)
				pts = append(pts, Point{N: x, Cost: tc.f(x)})
			}
			k, err := RobustPowerLaw(pts)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(k-tc.want) > 0.01 {
				t.Errorf("exponent = %.4f, want %.2f", k, tc.want)
			}
		})
	}
}

// TestRobustPowerLawSurvivesOutliers is the motivating case: a quarter of
// the points are wildly wrong (GC pauses, scheduler noise in wall-clock
// measurements), yet the Theil-Sen exponent holds while least squares drifts.
func TestRobustPowerLawSurvivesOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var pts []Point
	for i := 1; i <= 40; i++ {
		x := float64(i * 25)
		y := 3 * x // true exponent 1
		if i%4 == 0 {
			y *= 20 + 100*rng.Float64() // gross outlier
		}
		pts = append(pts, Point{N: x, Cost: y})
	}
	robust, err := RobustPowerLaw(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(robust-1) > 0.1 {
		t.Errorf("robust exponent = %.3f, want ~1 despite outliers", robust)
	}
	ls, _, err := PowerLaw(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ls-1) < math.Abs(robust-1) {
		t.Errorf("least squares (%.3f) unexpectedly closer than Theil-Sen (%.3f)", ls, robust)
	}
}

func TestRobustPowerLawErrors(t *testing.T) {
	if _, err := RobustPowerLaw(nil); err == nil {
		t.Error("accepted empty input")
	}
	if _, err := RobustPowerLaw([]Point{{1, 1}}); err == nil {
		t.Error("accepted a single point")
	}
	// All-equal x: no usable pair.
	if _, err := RobustPowerLaw([]Point{{5, 1}, {5, 9}, {5, 3}}); err == nil {
		t.Error("accepted degenerate x values")
	}
	// Non-positive values are skipped, remainder still fits.
	k, err := RobustPowerLaw([]Point{{0, 5}, {-3, 2}, {10, 10}, {100, 100}, {1000, 1000}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(k-1) > 0.01 {
		t.Errorf("exponent = %.3f, want 1", k)
	}
}

func TestMedianCostPlot(t *testing.T) {
	pts := []Point{
		{10, 100}, {10, 120}, {10, 9999}, // median 120
		{20, 200}, {20, 240}, // median 220
		{5, 50},
	}
	got := MedianCostPlot(pts)
	want := []Point{{5, 50}, {10, 120}, {20, 220}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
