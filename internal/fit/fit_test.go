package fit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func synth(n int, f func(float64) float64, noise float64, rng *rand.Rand) []Point {
	pts := make([]Point, 0, n)
	for i := 1; i <= n; i++ {
		x := float64(i * 10)
		y := f(x)
		if noise > 0 {
			y *= 1 + noise*(rng.Float64()*2-1)
		}
		pts = append(pts, Point{N: x, Cost: y})
	}
	return pts
}

func TestBestFitRecoversModels(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cases := []struct {
		name string
		f    func(float64) float64
		want string
	}{
		{"constant", func(x float64) float64 { return 42 }, "1"},
		{"logarithmic", func(x float64) float64 { return 7 * math.Log2(x) }, "log n"},
		{"linear", func(x float64) float64 { return 3*x + 5 }, "n"},
		{"nlogn", func(x float64) float64 { return 2 * x * math.Log2(x) }, "n log n"},
		{"quadratic", func(x float64) float64 { return 0.5 * x * x }, "n^2"},
		{"cubic", func(x float64) float64 { return 0.1 * x * x * x }, "n^3"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pts := synth(60, tc.f, 0.01, rng)
			best, err := BestFit(pts)
			if err != nil {
				t.Fatalf("BestFit: %v", err)
			}
			if best.Model.Name != tc.want {
				t.Errorf("BestFit picked %q (R2=%.4f), want %q", best.Model.Name, best.R2, tc.want)
			}
			// R² is not meaningful for the constant model (there is no
			// variance to explain); check it only for growing models.
			if tc.want != "1" && best.R2 < 0.98 {
				t.Errorf("R2 = %.4f, want >= 0.98", best.R2)
			}
		})
	}
}

func TestPowerLawExponent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := []struct {
		name string
		f    func(float64) float64
		want float64
	}{
		{"linear", func(x float64) float64 { return 4 * x }, 1},
		{"quadratic", func(x float64) float64 { return 0.5 * x * x }, 2},
		{"sqrt", math.Sqrt, 0.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pts := synth(50, tc.f, 0.02, rng)
			k, r2, err := PowerLaw(pts)
			if err != nil {
				t.Fatalf("PowerLaw: %v", err)
			}
			if math.Abs(k-tc.want) > 0.05 {
				t.Errorf("exponent = %.3f, want %.3f", k, tc.want)
			}
			if r2 < 0.99 {
				t.Errorf("R2 = %.4f, want >= 0.99", r2)
			}
		})
	}
}

func TestPowerLawSkipsNonPositive(t *testing.T) {
	pts := []Point{{0, 0}, {0, 5}, {10, 10}, {20, 20}, {40, 40}}
	k, _, err := PowerLaw(pts)
	if err != nil {
		t.Fatalf("PowerLaw: %v", err)
	}
	if math.Abs(k-1) > 0.01 {
		t.Errorf("exponent = %.3f, want 1", k)
	}
}

func TestTooFewPoints(t *testing.T) {
	if _, err := BestFit([]Point{{1, 1}}); err == nil {
		t.Error("BestFit accepted a single point")
	}
	if _, _, err := PowerLaw([]Point{{1, 1}}); err == nil {
		t.Error("PowerLaw accepted a single point")
	}
	if _, err := FitModel(nil, Linear); err == nil {
		t.Error("FitModel accepted no points")
	}
}

func TestBestFitPrefersSimplerOnTies(t *testing.T) {
	// Perfectly constant data is fitted exactly by every model (B=0); the
	// constant model must win.
	pts := []Point{{1, 5}, {2, 5}, {3, 5}, {4, 5}}
	best, err := BestFit(pts)
	if err != nil {
		t.Fatal(err)
	}
	if best.Model.Name != "1" {
		t.Errorf("BestFit picked %q for constant data", best.Model.Name)
	}
}

func TestDedupe(t *testing.T) {
	pts := []Point{{3, 10}, {1, 2}, {3, 50}, {2, 4}, {1, 1}}
	got := Dedupe(pts)
	want := []Point{{1, 2}, {2, 4}, {3, 50}}
	if len(got) != len(want) {
		t.Fatalf("Dedupe = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Dedupe = %v, want %v", got, want)
		}
	}
	if Dedupe(nil) != nil {
		t.Error("Dedupe(nil) != nil")
	}
}

// TestFitQuickExactLinear is a property test: noiseless data from y = a+b·n
// with b >= 0 is recovered with R² = 1 by the linear model.
func TestFitQuickExactLinear(t *testing.T) {
	f := func(a int16, bRaw uint16, seed int64) bool {
		b := float64(bRaw%500) / 10
		rng := rand.New(rand.NewSource(seed))
		var pts []Point
		for i := 0; i < 20; i++ {
			x := float64(1 + rng.Intn(10000))
			pts = append(pts, Point{N: x, Cost: float64(a) + b*x})
		}
		pts = Dedupe(pts)
		if len(pts) < 2 {
			return true
		}
		fit, err := FitModel(pts, Linear)
		if err != nil {
			return false
		}
		return fit.R2 > 0.999999 &&
			math.Abs(fit.B-b) < 1e-6*(1+b) &&
			math.Abs(fit.A-float64(a)) < 1e-3*(1+math.Abs(float64(a)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFitStringIncludesModel(t *testing.T) {
	fit, err := FitModel([]Point{{1, 1}, {2, 2}, {3, 3}}, Linear)
	if err != nil {
		t.Fatal(err)
	}
	s := fit.String()
	if s == "" || !containsAll(s, "n", "R2") {
		t.Errorf("String() = %q", s)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
