package vm

import (
	"strings"
	"testing"
)

func TestParseProgramShape(t *testing.T) {
	prog, err := Parse(`
global counter = 5;
global buf[100];

fn helper(a, b) {
	return a + b;
}

fn main() {
	var x = helper(1, 2);
	if (x > 2) {
		x = x - 1;
	} else if (x == 0) {
		x = 99;
	} else {
		x = 0;
	}
	while (x > 0) {
		x = x - 1;
	}
	for (var i = 0; i < 10; i = i + 1) {
		buf[i] = i;
	}
	spawn helper(1, 2);
	return x;
}
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(prog.Globals) != 2 {
		t.Fatalf("got %d globals, want 2", len(prog.Globals))
	}
	if prog.Globals[0].Name != "counter" || prog.Globals[0].IsArray || prog.Globals[0].Init != 5 {
		t.Errorf("counter = %+v", prog.Globals[0])
	}
	if prog.Globals[1].Name != "buf" || !prog.Globals[1].IsArray || prog.Globals[1].Size != 100 {
		t.Errorf("buf = %+v", prog.Globals[1])
	}
	if len(prog.Funcs) != 2 {
		t.Fatalf("got %d funcs, want 2", len(prog.Funcs))
	}
	if prog.Funcs[0].Name != "helper" || len(prog.Funcs[0].Params) != 2 {
		t.Errorf("helper = %+v", prog.Funcs[0])
	}
	main := prog.Funcs[1]
	if len(main.Body.Stmts) != 6 {
		t.Errorf("main has %d statements, want 6", len(main.Body.Stmts))
	}
	if _, ok := main.Body.Stmts[1].(*IfStmt); !ok {
		t.Errorf("stmt 1 is %T, want *IfStmt", main.Body.Stmts[1])
	}
	if _, ok := main.Body.Stmts[4].(*SpawnStmt); !ok {
		t.Errorf("stmt 4 is %T, want *SpawnStmt", main.Body.Stmts[4])
	}
}

func TestParsePrecedence(t *testing.T) {
	prog, err := Parse(`fn main() { var x = 1 + 2 * 3 == 7 && 1 < 2 || 0; }`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	init := prog.Funcs[0].Body.Stmts[0].(*VarStmt).Init
	// Top must be ||.
	or, ok := init.(*BinaryExpr)
	if !ok || or.Op != TokOrOr {
		t.Fatalf("top = %#v, want ||", init)
	}
	and, ok := or.X.(*BinaryExpr)
	if !ok || and.Op != TokAndAnd {
		t.Fatalf("or.X = %#v, want &&", or.X)
	}
	eq, ok := and.X.(*BinaryExpr)
	if !ok || eq.Op != TokEq {
		t.Fatalf("and.X = %#v, want ==", and.X)
	}
	add, ok := eq.X.(*BinaryExpr)
	if !ok || add.Op != TokPlus {
		t.Fatalf("eq.X = %#v, want +", eq.X)
	}
	mul, ok := add.Y.(*BinaryExpr)
	if !ok || mul.Op != TokStar {
		t.Fatalf("add.Y = %#v, want *", add.Y)
	}
}

func TestParseIndexChains(t *testing.T) {
	prog, err := Parse(`fn main() { var x = a[b[1]][2]; }`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	init := prog.Funcs[0].Body.Stmts[0].(*VarStmt).Init
	outer, ok := init.(*IndexExpr)
	if !ok {
		t.Fatalf("init = %#v, want IndexExpr", init)
	}
	inner, ok := outer.Base.(*IndexExpr)
	if !ok {
		t.Fatalf("outer.Base = %#v, want IndexExpr", outer.Base)
	}
	if _, ok := inner.Index.(*IndexExpr); !ok {
		t.Fatalf("inner.Index = %#v, want IndexExpr", inner.Index)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"top-level junk", `var x = 1;`, "expected 'fn' or 'global'"},
		{"missing paren", `fn main( { }`, "expected"},
		{"missing semicolon", `fn main() { var x = 1 }`, "expected ';'"},
		{"bad assignment target", `fn main() { 1 + 2 = 3; }`, "invalid assignment target"},
		{"unterminated block", `fn main() { var x = 1;`, "unterminated block"},
		{"zero array", `global a[0];`, "must be positive"},
		{"missing expr", `fn main() { var x = ; }`, "expected an expression"},
		{"spawn non-call", `fn main() { spawn 42; }`, "expected"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatal("Parse succeeded, want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestParseNegativeGlobalInit(t *testing.T) {
	prog, err := Parse(`global g = -7; fn main() {}`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if prog.Globals[0].Init != -7 {
		t.Errorf("Init = %d, want -7", prog.Globals[0].Init)
	}
}
