package vm

import "testing"

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`fn main() { var x = 42; x = x + 1; }`)
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	want := []TokenKind{
		TokFn, TokIdent, TokLParen, TokRParen, TokLBrace,
		TokVar, TokIdent, TokAssign, TokNumber, TokSemicolon,
		TokIdent, TokAssign, TokIdent, TokPlus, TokNumber, TokSemicolon,
		TokRBrace, TokEOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := Lex(`== != < <= > >= && || ! = + - * / %`)
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	want := []TokenKind{
		TokEq, TokNe, TokLt, TokLe, TokGt, TokGe, TokAndAnd, TokOrOr,
		TokBang, TokAssign, TokPlus, TokMinus, TokStar, TokSlash, TokPercent, TokEOF,
	}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex(`
// line comment
fn /* block
   comment */ main() {}
`)
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	if toks[0].Kind != TokFn || toks[1].Kind != TokIdent || toks[1].Text != "main" {
		t.Errorf("comments not skipped: %v", toks)
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := Lex(`0 7 123456789 0x1f`)
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	want := []int64{0, 7, 123456789, 31}
	for i, w := range want {
		if toks[i].Kind != TokNumber || toks[i].Value != w {
			t.Errorf("token %d = %+v, want number %d", i, toks[i], w)
		}
	}
}

func TestLexStrings(t *testing.T) {
	toks, err := Lex(`"hello" "a\nb" "q\"q"`)
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	want := []string{"hello", "a\nb", `q"q`}
	for i, w := range want {
		if toks[i].Kind != TokString || toks[i].Text != w {
			t.Errorf("token %d = %+v, want string %q", i, toks[i], w)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("fn\n  main")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("fn at %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("main at %v, want 2:3", toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	cases := []string{
		`@`,
		`"unterminated`,
		`"bad \q escape"`,
		`/* unterminated`,
		`&`,
		`|`,
		`12abc`, // malformed number (identifier chars in numeric literal)
	}
	for _, src := range cases {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) succeeded, want error", src)
		}
	}
}
