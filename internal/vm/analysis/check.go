package analysis

import "aprof/internal/vm"

// Check runs the full static-analysis pipeline over MiniLang source:
// parse → lint → compile → verify → optimize → verify (the differential
// step: bytecode that verified before optimization must verify after it).
//
// The returned diagnostics are advisory lint findings; the error is a hard
// failure (syntax error, compile error, or a verifier rejection — the
// latter meaning a compiler or optimizer bug, since source programs cannot
// express invalid bytecode). Fuzz harnesses use a nil error as an oracle: a
// checked program must never panic the interpreter.
func Check(src string) ([]Diagnostic, error) {
	prog, err := vm.Parse(src)
	if err != nil {
		return nil, err
	}
	diags := Lint(prog)
	cp, err := vm.CompileProgram(prog)
	if err != nil {
		return diags, err
	}
	if err := VerifyProgram(cp); err != nil {
		return diags, err
	}
	if _, err := cp.Optimize(); err != nil {
		return diags, err
	}
	if err := VerifyProgram(cp); err != nil {
		return diags, err
	}
	return diags, nil
}
