package analysis

import "aprof/internal/vm"

// Check runs the full static-analysis pipeline over MiniLang source:
// parse → lint → compile → verify → optimize → verify (the differential
// step: bytecode that verified before optimization must verify after it)
// → effect analysis (which contributes V007 dead-store findings).
//
// The returned diagnostics are advisory lint findings; the error is a hard
// failure (syntax error, compile error, or a verifier rejection — the
// latter meaning a compiler or optimizer bug, since source programs cannot
// express invalid bytecode). Fuzz harnesses use a nil error as an oracle: a
// checked program must never panic the interpreter.
func Check(src string) ([]Diagnostic, error) {
	_, diags, err := pipeline(src)
	return diags, err
}

// Effects runs the same pipeline and additionally returns the effect
// analysis itself, for the `minivm effects` report. Lint findings never
// gate the analysis: a program with warnings still gets a full effect
// report (the diagnostics ride along for the caller to print).
func Effects(src string) (*ProgramEffects, []Diagnostic, error) {
	return pipeline(src)
}

func pipeline(src string) (*ProgramEffects, []Diagnostic, error) {
	prog, err := vm.Parse(src)
	if err != nil {
		return nil, nil, err
	}
	diags := Lint(prog)
	cp, err := vm.CompileProgram(prog)
	if err != nil {
		return nil, diags, err
	}
	if err := VerifyProgram(cp); err != nil {
		return nil, diags, err
	}
	if _, err := cp.Optimize(); err != nil {
		return nil, diags, err
	}
	// The effect pass analyzes the optimized bytecode — the code that
	// actually runs — and re-verifies it, covering the differential
	// verify-after-optimize step.
	pe, err := AnalyzeProgram(cp)
	if err != nil {
		return nil, diags, err
	}
	diags = append(diags, pe.DeadStores()...)
	sortDiagnostics(diags)
	return pe, diags, nil
}
