package analysis

import (
	"strings"
	"testing"

	"aprof/internal/vm"
)

func compileFn(t *testing.T, src, name string) (*vm.CompiledProgram, *vm.Func) {
	t.Helper()
	cp, err := vm.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	idx, ok := cp.FuncByName[name]
	if !ok {
		t.Fatalf("no function %q", name)
	}
	return cp, cp.Funcs[idx]
}

func TestCFGStraightLine(t *testing.T) {
	_, fn := compileFn(t, `fn main() { var x = 1; print(x); }`, "main")
	g, err := BuildCFG(fn)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Blocks) != 1 {
		t.Fatalf("straight-line code has %d blocks, want 1\n%s", len(g.Blocks), g)
	}
	b := g.Blocks[0]
	if b.Start != 0 || b.End != len(fn.Code) || len(b.Succs) != 0 || len(b.Preds) != 0 {
		t.Errorf("entry block malformed: %+v", b)
	}
}

func TestCFGBranchAndJoin(t *testing.T) {
	_, fn := compileFn(t, `fn main() { var x = 1; if (x) { x = 2; } else { x = 3; } print(x); }`, "main")
	g, err := BuildCFG(fn)
	if err != nil {
		t.Fatal(err)
	}
	entry := g.Blocks[0]
	if len(entry.Succs) != 2 {
		t.Fatalf("branch block has %d successors, want 2\n%s", len(entry.Succs), g)
	}
	// Both arms must reconverge on a single join block.
	a, b := g.Blocks[entry.Succs[0]], g.Blocks[entry.Succs[1]]
	join := func(bb *BasicBlock) int {
		if len(bb.Succs) != 1 {
			t.Fatalf("arm b%d has %d successors\n%s", bb.Index, len(bb.Succs), g)
		}
		return bb.Succs[0]
	}
	ja, jb := join(a), join(b)
	// One arm may reach the join through the jump-over-else block.
	for ja != jb {
		if len(g.Blocks[ja].Succs) != 1 {
			t.Fatalf("arms do not reconverge: b%d vs b%d\n%s", ja, jb, g)
		}
		ja = g.Blocks[ja].Succs[0]
	}
	if got := len(g.Blocks[ja].Preds); got < 2 {
		t.Errorf("join block b%d has %d predecessors, want >= 2\n%s", ja, got, g)
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	_, fn := compileFn(t, `fn main() { var i = 0; while (i < 3) { i = i + 1; } print(i); }`, "main")
	g, err := BuildCFG(fn)
	if err != nil {
		t.Fatal(err)
	}
	// A while loop has a back edge: some block's successor list contains a
	// block with a smaller start pc.
	back := false
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if g.Blocks[s].Start <= b.Start {
				back = true
			}
		}
	}
	if !back {
		t.Errorf("no back edge found in loop CFG\n%s", g)
	}
	for i, r := range g.Reachable() {
		if !r {
			t.Errorf("block b%d unexpectedly unreachable\n%s", i, g)
		}
	}
}

func TestCFGUnreachableBlock(t *testing.T) {
	// The explicit return makes the compiler's implicit trailing return
	// unreachable (it is only removed by the optimizer).
	_, fn := compileFn(t, `fn main() { return 7; }`, "main")
	g, err := BuildCFG(fn)
	if err != nil {
		t.Fatal(err)
	}
	reach := g.Reachable()
	unreachable := 0
	for _, r := range reach {
		if !r {
			unreachable++
		}
	}
	if unreachable == 0 {
		t.Errorf("expected an unreachable implicit-return block\n%s", g)
	}
	if !reach[0] {
		t.Error("entry block must always be reachable")
	}
	if !strings.Contains(g.String(), "x b") {
		t.Errorf("String() does not mark unreachable blocks:\n%s", g)
	}
}

func TestCFGBlockAt(t *testing.T) {
	_, fn := compileFn(t, `fn main() { var i = 0; while (i < 3) { i = i + 1; } }`, "main")
	g, err := BuildCFG(fn)
	if err != nil {
		t.Fatal(err)
	}
	for pc := range fn.Code {
		b := g.BlockAt(pc)
		if pc < b.Start || pc >= b.End {
			t.Fatalf("BlockAt(%d) = [%d,%d)", pc, b.Start, b.End)
		}
	}
}

func TestCFGRejectsWildJump(t *testing.T) {
	fn := &vm.Func{Name: "bad", Code: []vm.Instr{ins(vm.OpJump, 42, 0)}}
	if _, err := BuildCFG(fn); err == nil {
		t.Fatal("BuildCFG accepted an out-of-range jump")
	}
}
