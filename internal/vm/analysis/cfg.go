// Package analysis provides static analysis over MiniLang programs and
// their compiled bytecode: a control-flow-graph builder over function
// bytecode, a bytecode verifier that proves stack balance, operand validity
// and guaranteed termination-by-return along every path, and a vet-style
// AST lint pass with positioned diagnostics.
//
// Importing this package installs the verifier into the vm package (see
// vm.SetVerifier), so every vm.Compile and Optimize in the same binary is
// independently re-checked — the profiler's observation substrate never
// runs unverified bytecode.
package analysis

import (
	"fmt"
	"strings"

	"aprof/internal/vm"
)

// BasicBlock is a maximal straight-line bytecode sequence: instructions
// [Start, End) execute in order, and only the last one may transfer
// control. Succs and Preds are block indices.
type BasicBlock struct {
	Index      int
	Start, End int
	Succs      []int
	Preds      []int
}

// CFG is the control-flow graph of one compiled function. Blocks[0] is the
// entry block (it starts at pc 0).
type CFG struct {
	Fn      *vm.Func
	Blocks  []*BasicBlock
	blockAt []int // pc → index of the block containing it
}

// BuildCFG discovers the basic blocks of fn and links successor and
// predecessor edges. It fails when a jump targets a pc outside the function
// or when a block can fall off the end of the code, both of which the
// interpreter would turn into an index-out-of-range panic.
func BuildCFG(fn *vm.Func) (*CFG, error) {
	code := fn.Code
	if len(code) == 0 {
		return nil, &VerifyError{Func: fn.Name, PC: -1, Msg: "empty function body"}
	}
	// Leaders: the entry point, every jump target, and every instruction
	// after a control transfer.
	leader := make([]bool, len(code))
	leader[0] = true
	for pc, ins := range code {
		switch ins.Op {
		case vm.OpJump, vm.OpJumpIfZero, vm.OpJumpIfNonZero:
			if ins.A < 0 || int(ins.A) >= len(code) {
				return nil, &VerifyError{Func: fn.Name, PC: pc, Msg: fmt.Sprintf("%s target %d out of range [0, %d)", ins.Op, ins.A, len(code))}
			}
			leader[ins.A] = true
			if pc+1 < len(code) {
				leader[pc+1] = true
			}
		case vm.OpReturn:
			if pc+1 < len(code) {
				leader[pc+1] = true
			}
		}
	}

	g := &CFG{Fn: fn, blockAt: make([]int, len(code))}
	for pc := 0; pc < len(code); pc++ {
		if leader[pc] {
			g.Blocks = append(g.Blocks, &BasicBlock{Index: len(g.Blocks), Start: pc})
		}
		b := g.Blocks[len(g.Blocks)-1]
		b.End = pc + 1
		g.blockAt[pc] = b.Index
	}

	for _, b := range g.Blocks {
		last := code[b.End-1]
		switch last.Op {
		case vm.OpJump:
			g.addEdge(b.Index, g.blockAt[last.A])
		case vm.OpJumpIfZero, vm.OpJumpIfNonZero:
			if b.End == len(code) {
				return nil, &VerifyError{Func: fn.Name, PC: b.End - 1, Msg: fmt.Sprintf("conditional %s can fall off the end of the function", last.Op)}
			}
			g.addEdge(b.Index, g.blockAt[last.A])
			g.addEdge(b.Index, g.blockAt[b.End])
		case vm.OpReturn:
			// No successors.
		default:
			if b.End == len(code) {
				return nil, &VerifyError{Func: fn.Name, PC: b.End - 1, Msg: fmt.Sprintf("execution falls off the end of the function after %s (missing return)", last.Op)}
			}
			g.addEdge(b.Index, g.blockAt[b.End])
		}
	}
	return g, nil
}

func (g *CFG) addEdge(from, to int) {
	g.Blocks[from].Succs = append(g.Blocks[from].Succs, to)
	g.Blocks[to].Preds = append(g.Blocks[to].Preds, from)
}

// BlockAt returns the basic block containing pc.
func (g *CFG) BlockAt(pc int) *BasicBlock { return g.Blocks[g.blockAt[pc]] }

// Reachable reports, per block, whether any control path from the entry
// block reaches it.
func (g *CFG) Reachable() []bool {
	seen := make([]bool, len(g.Blocks))
	work := []int{0}
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[i] {
			continue
		}
		seen[i] = true
		work = append(work, g.Blocks[i].Succs...)
	}
	return seen
}

// String renders the graph for debugging and tests.
func (g *CFG) String() string {
	var sb strings.Builder
	reach := g.Reachable()
	fmt.Fprintf(&sb, "cfg %s: %d blocks\n", g.Fn.Name, len(g.Blocks))
	for _, b := range g.Blocks {
		mark := " "
		if !reach[b.Index] {
			mark = "x"
		}
		fmt.Fprintf(&sb, "%s b%d [%d,%d) -> %v\n", mark, b.Index, b.Start, b.End, b.Succs)
	}
	return sb.String()
}
