package analysis

import (
	"fmt"

	"aprof/internal/vm"
)

// VerifyError reports a bytecode invariant violation. PC is -1 for
// program- or function-level violations with no single offending
// instruction.
type VerifyError struct {
	Func string
	PC   int
	Msg  string
}

// Error implements the error interface.
func (e *VerifyError) Error() string {
	if e.Func == "" {
		return fmt.Sprintf("minilang: verify: %s", e.Msg)
	}
	if e.PC < 0 {
		return fmt.Sprintf("minilang: verify %s: %s", e.Func, e.Msg)
	}
	return fmt.Sprintf("minilang: verify %s: pc %d: %s", e.Func, e.PC, e.Msg)
}

func init() {
	// Every vm.Compile/Optimize in a binary that links this package is
	// re-checked automatically; see the hook's doc in internal/vm.
	vm.SetVerifier(VerifyProgram)
}

// VerifyProgram checks program-level tables and then verifies every
// function's bytecode. A nil error proves that interpreting the program
// cannot underflow an evaluation stack, access an out-of-range constant,
// local, string, or function slot, jump outside its code, or run off the
// end of a function — i.e. none of the interpreter's slice accesses that
// depend on compiler output can panic.
func VerifyProgram(cp *vm.CompiledProgram) error {
	if len(cp.Funcs) != len(cp.FuncByName) {
		return &VerifyError{PC: -1, Msg: fmt.Sprintf("%d functions but %d FuncByName entries", len(cp.Funcs), len(cp.FuncByName))}
	}
	for name, idx := range cp.FuncByName {
		if idx < 0 || idx >= len(cp.Funcs) {
			return &VerifyError{PC: -1, Msg: fmt.Sprintf("FuncByName[%q] = %d out of range", name, idx)}
		}
		if cp.Funcs[idx].Name != name {
			return &VerifyError{PC: -1, Msg: fmt.Sprintf("FuncByName[%q] = %d names %q", name, idx, cp.Funcs[idx].Name)}
		}
	}
	mainIdx, ok := cp.FuncByName["main"]
	if !ok {
		return &VerifyError{PC: -1, Msg: "program has no 'main' function"}
	}
	if cp.Funcs[mainIdx].NumParams != 0 {
		return &VerifyError{Func: "main", PC: -1, Msg: fmt.Sprintf("'main' takes %d parameters, want 0", cp.Funcs[mainIdx].NumParams)}
	}
	// Address 0 is the reserved null cell; globals live in [1, GlobalEnd).
	if cp.GlobalEnd < 1 {
		return &VerifyError{PC: -1, Msg: fmt.Sprintf("GlobalEnd %d below the heap base", cp.GlobalEnd)}
	}
	for _, init := range cp.GlobalInit {
		if init[0] < 1 || init[0] >= cp.GlobalEnd {
			return &VerifyError{PC: -1, Msg: fmt.Sprintf("global initializer targets address %d outside [1, %d)", init[0], cp.GlobalEnd)}
		}
	}
	for _, fn := range cp.Funcs {
		if err := VerifyFunc(cp, fn); err != nil {
			return err
		}
	}
	return nil
}

// stackEffect returns how many values ins pops and pushes. The table is an
// independent model of the interpreter's stack discipline — the whole point
// of the verifier is that it does not share code with interp.step.
func stackEffect(ins vm.Instr) (pops, pushes int, ok bool) {
	switch ins.Op {
	case vm.OpConst, vm.OpLoadLocal:
		return 0, 1, true
	case vm.OpStoreLocal, vm.OpPop, vm.OpJumpIfZero, vm.OpJumpIfNonZero, vm.OpReturn:
		return 1, 0, true
	case vm.OpLoadMem, vm.OpNeg, vm.OpNot, vm.OpAlloc, vm.OpSemNew,
		vm.OpSemWait, vm.OpSemSignal, vm.OpAssert, vm.OpRand:
		return 1, 1, true
	case vm.OpStoreMem:
		return 2, 0, true
	case vm.OpAdd, vm.OpSub, vm.OpMul, vm.OpDiv, vm.OpMod,
		vm.OpEq, vm.OpNe, vm.OpLt, vm.OpLe, vm.OpGt, vm.OpGe:
		return 2, 1, true
	case vm.OpSysRead, vm.OpSysWrite:
		return 2, 1, true
	case vm.OpJump:
		return 0, 0, true
	case vm.OpCall:
		return int(ins.B), 1, true
	case vm.OpSpawn:
		return int(ins.B), 0, true
	case vm.OpPrint:
		return int(ins.A), 1, true
	}
	return 0, 0, false
}

// VerifyFunc verifies one function: operand validity for every instruction,
// then — along every reachable control path — stack-height balance, no
// underflow, a consistent height at every join point, exactly one value on
// the stack at each return, and no way to fall off the end of the code.
func VerifyFunc(cp *vm.CompiledProgram, fn *vm.Func) error {
	errAt := func(pc int, format string, args ...any) error {
		return &VerifyError{Func: fn.Name, PC: pc, Msg: fmt.Sprintf(format, args...)}
	}
	if len(fn.Code) == 0 {
		return errAt(-1, "empty function body")
	}
	if len(fn.BlockStart) != len(fn.Code) {
		return errAt(-1, "BlockStart has %d entries for %d instructions", len(fn.BlockStart), len(fn.Code))
	}
	if fn.NumParams < 0 || fn.NumLocals < fn.NumParams {
		return errAt(-1, "%d locals cannot hold %d parameters", fn.NumLocals, fn.NumParams)
	}

	// Operand checks cover every instruction, reachable or not: the
	// interpreter never executes unreachable code, but dead instructions
	// with wild operands are still evidence of a broken rewrite.
	for pc, ins := range fn.Code {
		switch ins.Op {
		case vm.OpConst:
			if ins.A < 0 || int(ins.A) >= len(cp.Constants) {
				return errAt(pc, "constant index %d out of range [0, %d)", ins.A, len(cp.Constants))
			}
		case vm.OpLoadLocal, vm.OpStoreLocal:
			if ins.A < 0 || int(ins.A) >= fn.NumLocals {
				return errAt(pc, "%s slot %d out of range [0, %d)", ins.Op, ins.A, fn.NumLocals)
			}
		case vm.OpCall, vm.OpSpawn:
			if ins.A < 0 || int(ins.A) >= len(cp.Funcs) {
				return errAt(pc, "%s of function index %d out of range [0, %d)", ins.Op, ins.A, len(cp.Funcs))
			}
			if callee := cp.Funcs[ins.A]; int(ins.B) != callee.NumParams {
				return errAt(pc, "%s %s with %d arguments, want %d", ins.Op, callee.Name, ins.B, callee.NumParams)
			}
		case vm.OpPrint:
			if ins.A < 0 {
				return errAt(pc, "print with negative argument count %d", ins.A)
			}
			if ins.B < -1 || int(ins.B) >= len(cp.Strings) {
				return errAt(pc, "print format index %d out of range [-1, %d)", ins.B, len(cp.Strings))
			}
		default:
			if ins.Op > vm.OpRand {
				return errAt(pc, "unknown opcode %s", ins.Op)
			}
		}
	}

	// BuildCFG additionally rejects out-of-range jump targets and blocks
	// that can fall off the end of the code.
	g, err := BuildCFG(fn)
	if err != nil {
		return err
	}

	// Abstract interpretation of stack heights over the CFG: propagate the
	// entry height of each block through its instructions and require every
	// join point to agree.
	const unvisited = -1
	entryH := make([]int, len(g.Blocks))
	for i := range entryH {
		entryH[i] = unvisited
	}
	entryH[0] = 0
	work := []int{0}
	for len(work) > 0 {
		bi := work[len(work)-1]
		work = work[:len(work)-1]
		b := g.Blocks[bi]
		h := entryH[bi]
		for pc := b.Start; pc < b.End; pc++ {
			ins := fn.Code[pc]
			pops, pushes, ok := stackEffect(ins)
			if !ok {
				return errAt(pc, "unknown opcode %s", ins.Op)
			}
			if h < pops {
				return errAt(pc, "stack underflow: %s needs %d operands, stack has %d", ins.Op, pops, h)
			}
			h += pushes - pops
			if ins.Op == vm.OpReturn && h != 0 {
				return errAt(pc, "return leaves %d extra values on the stack", h)
			}
		}
		for _, si := range b.Succs {
			if entryH[si] == unvisited {
				entryH[si] = h
				work = append(work, si)
			} else if entryH[si] != h {
				return errAt(g.Blocks[si].Start, "inconsistent stack height at join: %d from block %d vs %d", h, bi, entryH[si])
			}
		}
	}
	return nil
}
