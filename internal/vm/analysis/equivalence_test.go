package analysis_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"aprof"
	"aprof/internal/core"
	"aprof/internal/profio"
	"aprof/internal/trace"
	"aprof/internal/vm"
	_ "aprof/internal/vm/analysis" // installs the effect planner
	"aprof/internal/workloads"
)

// The suppression differential harness: for every corpus program, VM
// configuration and profiler configuration, a suppressed-mode run must be
// observationally identical to a full-instrumentation run — same program
// output, and byte-identical profiler results (reports, JSON, checkpoints)
// over the two traces. The only permitted difference is Profiles.Events,
// which counts the events fed to the profiler and genuinely shrinks under
// suppression; every comparison normalizes it first.
//
// Known exclusion: configurations with Limits.MaxEvents or MaxMemoryBytes
// start *sampling* memory events past a threshold measured in events
// processed — a quantity suppression changes by design — so sampled runs
// may diverge and are not part of the equivalence contract (see DESIGN.md).

// equivalenceSources gathers the corpus: the characterization workloads,
// the committed testdata programs, and the effects corpus.
func equivalenceSources(t testing.TB) map[string]string {
	srcs := make(map[string]string)
	for _, p := range workloads.VMPrograms() {
		srcs["workload/"+p.Name] = p.Source
	}
	for _, dir := range []string{filepath.Join("..", "testdata"), filepath.Join("..", "testdata", "effects")} {
		files, err := filepath.Glob(filepath.Join(dir, "*.ml"))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range files {
			b, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			srcs[filepath.Base(f)] = string(b)
		}
	}
	if len(srcs) < 10 {
		t.Fatalf("equivalence corpus unexpectedly small: %d programs", len(srcs))
	}
	return srcs
}

// runPair executes src with and without suppression under otherwise
// identical options, asserting identical program-visible behavior. Both
// traces are nil when the program faults (identically) in both modes.
func runPair(t *testing.T, src string, opts vm.Options) (full, sup *trace.Trace) {
	t.Helper()
	fopts := opts
	fopts.Suppress = false
	sopts := opts
	sopts.Suppress = true
	fres, ferr := vm.RunSource(src, fopts)
	sres, serr := vm.RunSource(src, sopts)
	if (ferr == nil) != (serr == nil) {
		t.Fatalf("error divergence: full=%v suppressed=%v", ferr, serr)
	}
	if ferr != nil {
		return nil, nil
	}
	if !reflect.DeepEqual(fres.Output, sres.Output) {
		t.Fatalf("program output diverged:\nfull: %q\nsup:  %q", fres.Output, sres.Output)
	}
	if fres.Steps != sres.Steps || fres.BasicBlocks != sres.BasicBlocks || fres.Threads != sres.Threads {
		t.Fatalf("execution counters diverged: full={steps %d bb %d thr %d} sup={steps %d bb %d thr %d}",
			fres.Steps, fres.BasicBlocks, fres.Threads, sres.Steps, sres.BasicBlocks, sres.Threads)
	}
	if len(sres.Trace.Events) > len(fres.Trace.Events) {
		t.Fatalf("suppressed trace is larger: %d > %d events", len(sres.Trace.Events), len(fres.Trace.Events))
	}
	return fres.Trace, sres.Trace
}

// assertProfilerEquivalent profiles both traces under cfg and asserts the
// profiler output is identical: deep-equal Profiles (modulo Events), and
// byte-identical rendered report and JSON serialization.
func assertProfilerEquivalent(t *testing.T, full, sup *trace.Trace, cfg core.Config) {
	t.Helper()
	pf, err := core.Run(full, cfg)
	if err != nil {
		t.Fatalf("profile full trace: %v", err)
	}
	ps, err := core.Run(sup, cfg)
	if err != nil {
		t.Fatalf("profile suppressed trace: %v", err)
	}
	if ps.Events > pf.Events {
		t.Fatalf("suppressed run fed more events: %d > %d", ps.Events, pf.Events)
	}
	pf.Events = 0
	ps.Events = 0
	if !reflect.DeepEqual(pf, ps) {
		t.Fatalf("profiles diverged (modulo Events):\nfull: %+v\nsup:  %+v", pf, ps)
	}
	ropts := aprof.ReportOptions{Fit: true, Plots: true, Contexts: 3}
	if rf, rs := aprof.Report(pf, ropts), aprof.Report(ps, ropts); rf != rs {
		t.Fatalf("rendered reports diverged:\n--- full ---\n%s--- suppressed ---\n%s", rf, rs)
	}
	var bf, bs bytes.Buffer
	if err := profio.Write(&bf, pf); err != nil {
		t.Fatal(err)
	}
	if err := profio.Write(&bs, ps); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bf.Bytes(), bs.Bytes()) {
		t.Fatal("JSON profile serialization diverged")
	}
}

// eqConfigs is the profiler-configuration sweep: every supported analysis
// mode whose output is defined independently of the event count.
func eqConfigs() []struct {
	name string
	cfg  core.Config
} {
	withDefault := func(mut func(*core.Config)) core.Config {
		c := core.DefaultConfig()
		mut(&c)
		return c
	}
	return []struct {
		name string
		cfg  core.Config
	}{
		{"default", core.DefaultConfig()},
		{"rms-only", core.RMSOnlyConfig()},
		{"external-only", aprof.ExternalOnlyConfig()},
		{"context-sensitive", withDefault(func(c *core.Config) { c.ContextSensitive = true })},
		{"counter-limit", withDefault(func(c *core.Config) { c.CounterLimit = 4096 })},
		{"max-depth", withDefault(func(c *core.Config) { c.Limits.MaxDepth = 2 })},
		{"max-points", withDefault(func(c *core.Config) { c.MaxPointsPerProfile = 4 })},
	}
}

// TestSuppressEquivalenceCorpus sweeps the committed corpus across VM
// scheduling/optimization variants (default config) and across the full
// profiler-configuration sweep (default VM options).
func TestSuppressEquivalenceCorpus(t *testing.T) {
	for name, src := range equivalenceSources(t) {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			vmSweep := []struct {
				name string
				opts vm.Options
			}{
				{"default", vm.Options{}},
				{"quantum1", vm.Options{Quantum: 1}},
				{"quantum3", vm.Options{Quantum: 3}},
				{"optimized", vm.Options{Optimize: true}},
				{"optimized-quantum1", vm.Options{Optimize: true, Quantum: 1}},
			}
			for _, v := range vmSweep {
				full, sup := runPair(t, src, v.opts)
				if full == nil {
					continue
				}
				assertProfilerEquivalent(t, full, sup, core.DefaultConfig())
			}
			full, sup := runPair(t, src, vm.Options{})
			if full == nil {
				return
			}
			for _, c := range eqConfigs() {
				t.Run(c.name, func(t *testing.T) {
					assertProfilerEquivalent(t, full, sup, c.cfg)
				})
			}
		})
	}
}

// TestSuppressEquivalenceRandom drives the differential harness with
// seeded random programs: straight-line redundancy, bounded loops, helper
// calls, branches and sys transfers, all with wrapped-safe indexing.
func TestSuppressEquivalenceRandom(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			src := genProgram(rand.New(rand.NewSource(seed)))
			full, sup := runPair(t, src, vm.Options{MaxSteps: 2_000_000})
			if full == nil {
				t.Fatalf("random program faulted:\n%s", src)
			}
			assertProfilerEquivalent(t, full, sup, core.DefaultConfig())
			assertProfilerEquivalent(t, full, sup, core.RMSOnlyConfig())
			fullQ, supQ := runPair(t, src, vm.Options{MaxSteps: 2_000_000, Quantum: 1})
			if fullQ != nil {
				assertProfilerEquivalent(t, fullQ, supQ, core.DefaultConfig())
			}
		})
	}
}

// TestSuppressStreamDeterminism covers the streaming pipeline: a
// suppressed trace round-tripped through the binary codec and the
// checkpointing stream profiler must reproduce the in-memory result, and
// two identical streaming runs must write byte-identical checkpoints.
func TestSuppressStreamDeterminism(t *testing.T) {
	src := workloads.VMPrograms()[0].Source
	full, sup := runPair(t, src, vm.Options{})
	if full == nil {
		t.Fatal("workload faulted")
	}
	cfg := core.DefaultConfig()

	var enc bytes.Buffer
	if err := trace.WriteBinary(&enc, sup); err != nil {
		t.Fatal(err)
	}
	streamOnce := func(dir string) (*core.Profiles, []byte) {
		ckpt := filepath.Join(dir, "ckpt")
		ps, err := profio.ProfileStream(context.Background(), bytes.NewReader(enc.Bytes()), cfg,
			profio.StreamOptions{CheckpointPath: ckpt, CheckpointEvery: 1, FinalCheckpoint: true})
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(ckpt)
		if err != nil {
			t.Fatal(err)
		}
		return ps, b
	}
	ps1, ck1 := streamOnce(t.TempDir())
	ps2, ck2 := streamOnce(t.TempDir())
	if !bytes.Equal(ck1, ck2) {
		t.Fatal("checkpoints of identical suppressed streaming runs differ")
	}
	if !reflect.DeepEqual(ps1, ps2) {
		t.Fatal("profiles of identical suppressed streaming runs differ")
	}
	direct, err := core.Run(sup, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ps1.Events = 0
	direct.Events = 0
	if !reflect.DeepEqual(ps1, direct) {
		t.Fatal("streamed suppressed profile differs from direct run")
	}
	assertProfilerEquivalent(t, full, sup, cfg)
}

// ---------------------------------------------------------------------------
// Seeded random program generator.

type progGen struct {
	r     *rand.Rand
	b     strings.Builder
	depth int
	loops int
}

// genProgram emits a deterministic random MiniLang program. All indexing
// wraps into the 16-cell array, loops have constant bounds and helpers are
// non-recursive, so generated programs always terminate cleanly.
func genProgram(r *rand.Rand) string {
	g := &progGen{r: r}
	g.b.WriteString("fn bump(p, j) {\n\tp[j] = p[j] + 1;\n\treturn p[j];\n}\n")
	g.b.WriteString("fn main() {\n")
	g.b.WriteString("\tvar a = alloc(16);\n\tvar x = 1;\n\tvar y = 2;\n")
	g.stmts(4 + r.Intn(8))
	g.b.WriteString("\tprint(x + y + a[0] + a[15]);\n}\n")
	return g.b.String()
}

func (g *progGen) idx() string {
	switch g.r.Intn(3) {
	case 0:
		return fmt.Sprint(g.r.Intn(16))
	case 1:
		return "((x % 16) + 16) % 16"
	default:
		return "((y % 16) + 16) % 16"
	}
}

func (g *progGen) expr() string {
	switch g.r.Intn(6) {
	case 0:
		return fmt.Sprint(g.r.Intn(64))
	case 1:
		return "x + y"
	case 2:
		return fmt.Sprintf("x * %d", 1+g.r.Intn(4))
	case 3:
		return fmt.Sprintf("y - %d", g.r.Intn(8))
	case 4:
		return fmt.Sprintf("a[%s]", g.idx())
	default:
		return fmt.Sprintf("rand(%d)", 1+g.r.Intn(16))
	}
}

func (g *progGen) stmts(n int) {
	for i := 0; i < n; i++ {
		g.stmt()
	}
}

func (g *progGen) stmt() {
	ind := strings.Repeat("\t", 1+g.depth)
	switch k := g.r.Intn(10); {
	case k < 3:
		fmt.Fprintf(&g.b, "%sa[%s] = %s;\n", ind, g.idx(), g.expr())
	case k < 5:
		v := "x"
		if g.r.Intn(2) == 0 {
			v = "y"
		}
		fmt.Fprintf(&g.b, "%s%s = %s;\n", ind, v, g.expr())
	case k < 6:
		fmt.Fprintf(&g.b, "%sx = bump(a, %s);\n", ind, g.idx())
	case k < 7 && g.depth < 2:
		fmt.Fprintf(&g.b, "%sif (%s) {\n", ind, g.expr())
		g.depth++
		g.stmts(1 + g.r.Intn(3))
		g.depth--
		fmt.Fprintf(&g.b, "%s} else {\n", ind)
		g.depth++
		g.stmts(1 + g.r.Intn(2))
		g.depth--
		fmt.Fprintf(&g.b, "%s}\n", ind)
	case k < 8 && g.depth < 2 && g.loops < 3:
		g.loops++
		v := fmt.Sprintf("i%d", g.loops)
		fmt.Fprintf(&g.b, "%sfor (var %s = 0; %s < %d; %s = %s + 1) {\n", ind, v, v, 2+g.r.Intn(6), v, v)
		g.depth++
		fmt.Fprintf(&g.b, "%sa[%s %% 16] = a[%s %% 16] + x;\n", strings.Repeat("\t", 1+g.depth), v, v)
		g.stmts(g.r.Intn(2))
		g.depth--
		fmt.Fprintf(&g.b, "%s}\n", ind)
	case k < 9:
		fmt.Fprintf(&g.b, "%ssysread(a, %d);\n", ind, 1+g.r.Intn(8))
	default:
		fmt.Fprintf(&g.b, "%ssyswrite(a, %d);\n", ind, 1+g.r.Intn(8))
	}
}
