package analysis

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"aprof/internal/trace"
	"aprof/internal/vm"
)

// opSnippets maps every opcode to a MiniLang program whose compiled
// (unoptimized) bytecode contains it and which runs to completion. The
// programs double as the dynamic leg of the drift check: the interpreter
// must execute each opcode and produce the expected output.
var opSnippets = map[vm.Op]struct {
	src  string
	want string
}{
	vm.OpConst:         {`fn main() { print(7); }`, "7\n"},
	vm.OpLoadLocal:     {`fn main() { var x = 3; print(x); }`, "3\n"},
	vm.OpStoreLocal:    {`fn main() { var x = 3; x = 4; print(x); }`, "4\n"},
	vm.OpLoadMem:       {`fn main() { var a = alloc(1); print(a[0]); }`, "0\n"},
	vm.OpStoreMem:      {`fn main() { var a = alloc(1); a[0] = 9; print(a[0]); }`, "9\n"},
	vm.OpAdd:           {`fn main() { var x = 1; print(x + 2); }`, "3\n"},
	vm.OpSub:           {`fn main() { var x = 5; print(x - 2); }`, "3\n"},
	vm.OpMul:           {`fn main() { var x = 5; print(x * 2); }`, "10\n"},
	vm.OpDiv:           {`fn main() { var x = 9; print(x / 2); }`, "4\n"},
	vm.OpMod:           {`fn main() { var x = 9; print(x % 2); }`, "1\n"},
	vm.OpNeg:           {`fn main() { var x = 5; print(-x); }`, "-5\n"},
	vm.OpNot:           {`fn main() { var x = 5; print(!x); }`, "0\n"},
	vm.OpEq:            {`fn main() { var x = 5; print(x == 5); }`, "1\n"},
	vm.OpNe:            {`fn main() { var x = 5; print(x != 5); }`, "0\n"},
	vm.OpLt:            {`fn main() { var x = 5; print(x < 6); }`, "1\n"},
	vm.OpLe:            {`fn main() { var x = 5; print(x <= 5); }`, "1\n"},
	vm.OpGt:            {`fn main() { var x = 5; print(x > 5); }`, "0\n"},
	vm.OpGe:            {`fn main() { var x = 5; print(x >= 5); }`, "1\n"},
	vm.OpJump:          {`fn main() { var s = 0; for (var i = 0; i < 2; i = i + 1) { s = s + i; } print(s); }`, "1\n"},
	vm.OpJumpIfZero:    {`fn main() { var x = 0; if (x) { print(1); } else { print(2); } }`, "2\n"},
	vm.OpJumpIfNonZero: {`fn main() { var x = 1; print(x || 0); }`, "1\n"},
	vm.OpCall:          {`fn id(x) { return x; } fn main() { print(id(8)); }`, "8\n"},
	vm.OpSpawn:         {`fn child(s) { wait(s); print(6); return 0; } fn main() { var s = sem(0); spawn child(s); signal(s); }`, "6\n"},
	vm.OpReturn:        {`fn id(x) { return x; } fn main() { print(id(8)); }`, "8\n"},
	vm.OpPop:           {`fn id(x) { return x; } fn main() { id(1); print(2); }`, "2\n"},
	vm.OpAlloc:         {`fn main() { var a = alloc(2); print(a[1]); }`, "0\n"},
	vm.OpSemNew:        {`fn main() { var s = sem(1); wait(s); signal(s); print(0); }`, "0\n"},
	vm.OpSemWait:       {`fn main() { var s = sem(1); wait(s); signal(s); print(0); }`, "0\n"},
	vm.OpSemSignal:     {`fn main() { var s = sem(1); wait(s); signal(s); print(0); }`, "0\n"},
	vm.OpSysRead:       {`fn main() { var a = alloc(4); sysread(a, 4); print(1); }`, "1\n"},
	vm.OpSysWrite:      {`fn main() { var a = alloc(4); syswrite(a, 4); print(1); }`, "1\n"},
	vm.OpPrint:         {`fn main() { print(7); }`, "7\n"},
	vm.OpAssert:        {`fn main() { var x = 1; assert(x); print(3); }`, "3\n"},
	vm.OpRand:          {`fn main() { var x = 8; var r = rand(x); print(r < 8); }`, "1\n"},
}

// TestOpTablesAgree cross-checks the three independently maintained
// per-opcode models — the verifier's stackEffect table, the effect
// analysis' OpEffect table, and the interpreter switch itself — for every
// defined opcode. Adding an opcode to the VM without extending every table
// (and this test's snippet map) fails here, not in production.
func TestOpTablesAgree(t *testing.T) {
	if len(opSnippets) != vm.NumOps() {
		t.Fatalf("snippet map covers %d opcodes, VM defines %d — extend opSnippets", len(opSnippets), vm.NumOps())
	}
	for raw := 0; raw < vm.NumOps(); raw++ {
		op := vm.Op(raw)
		if !op.Valid() {
			t.Fatalf("op %d inside [0, NumOps()) is not Valid()", raw)
		}
		// Operand-dependent effects: exercise a few argument counts.
		for _, n := range []int32{0, 1, 3} {
			ins := vm.Instr{Op: op, A: n, B: n}
			vPops, vPushes, vOK := stackEffect(ins)
			info, eOK := OpEffect(ins)
			if vOK != eOK {
				t.Fatalf("%s: verifier ok=%v, effect table ok=%v", op, vOK, eOK)
			}
			if !vOK {
				t.Fatalf("%s: defined opcode missing from the tables", op)
			}
			if vPops != info.Pops || vPushes != info.Pushes {
				t.Errorf("%s (A=B=%d): verifier says %d→%d, effect table says %d→%d",
					op, n, vPops, vPushes, info.Pops, info.Pushes)
			}
		}
	}
	// Undefined opcodes must be rejected by both tables.
	bad := vm.Instr{Op: vm.Op(vm.NumOps())}
	if _, _, ok := stackEffect(bad); ok {
		t.Error("verifier accepts an undefined opcode")
	}
	if _, ok := OpEffect(bad); ok {
		t.Error("effect table accepts an undefined opcode")
	}
}

// TestOpTableEndsBlock cross-checks OpInfo.EndsBlock against the VM's own
// basic-block marking: an opcode ends a block exactly when markBlocks makes
// the next pc a leader.
func TestOpTableEndsBlock(t *testing.T) {
	for raw := 0; raw < vm.NumOps(); raw++ {
		op := vm.Op(raw)
		ins := vm.Instr{Op: op} // A=0: a valid jump target for the control ops
		fn := &vm.Func{Name: "t", Code: []vm.Instr{ins, {Op: vm.OpReturn}}}
		fn.MarkBlocks()
		info, ok := OpEffect(ins)
		if !ok {
			t.Fatalf("%s: missing from effect table", op)
		}
		if fn.BlockStart[1] != info.EndsBlock {
			t.Errorf("%s: markBlocks leader after = %v, OpInfo.EndsBlock = %v",
				op, fn.BlockStart[1], info.EndsBlock)
		}
		if info.EndsBlock && !info.Barrier {
			t.Errorf("%s: ends a block but is not a barrier", op)
		}
	}
}

// TestOpSnippetsExecute runs every opcode's snippet under the interpreter
// (unoptimized, so compiled output is predictable), asserting that the
// opcode actually appears in the compiled bytecode, that the run produces
// the expected output, and that the trace events the opcode emits match the
// effect table's memory classification.
func TestOpSnippetsExecute(t *testing.T) {
	for raw := 0; raw < vm.NumOps(); raw++ {
		op := vm.Op(raw)
		snip := opSnippets[op]
		t.Run(op.String(), func(t *testing.T) {
			cp, err := vm.Compile(snip.src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			found := false
			for _, fn := range cp.Funcs {
				for _, ins := range fn.Code {
					if ins.Op == op {
						found = true
					}
				}
			}
			if !found {
				t.Fatalf("snippet for %s compiles without emitting %s", op, op)
			}
			var out bytes.Buffer
			res, err := vm.RunProgram(cp, vm.Options{Stdout: &out})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if out.String() != snip.want {
				t.Fatalf("output %q, want %q", out.String(), snip.want)
			}
			assertTraceKinds(t, op, res.Trace)
		})
	}
}

// assertTraceKinds checks the dynamic leg of the memory classification:
// programs whose bytecode performs MemLoad/MemStore/MemSysLoad/MemSysStore
// accesses must emit the corresponding trace event kinds.
func assertTraceKinds(t *testing.T, op vm.Op, tr *trace.Trace) {
	t.Helper()
	info, _ := OpEffect(vm.Instr{Op: op})
	var want trace.Kind
	switch info.Mem {
	case MemLoad:
		want = trace.KindRead
	case MemStore:
		want = trace.KindWrite
	case MemSysLoad:
		want = trace.KindKernelToUser
	case MemSysStore:
		want = trace.KindUserToKernel
	default:
		return
	}
	for _, ev := range tr.Events {
		if ev.Kind == want {
			return
		}
	}
	t.Errorf("%s is classified %v but its snippet trace has no %v event", op, info.Mem, want)
}

// TestEffectTableCorpusCoverage sweeps the committed corpora (testdata
// programs and the effects corpus) and asserts the effect table resolves
// every instruction the compiler and optimizer can produce.
func TestEffectTableCorpusCoverage(t *testing.T) {
	for _, src := range corpusSources(t) {
		cp, err := vm.Compile(src)
		if err != nil {
			continue // vet corpus includes programs that do not compile
		}
		if _, err := cp.Optimize(); err != nil {
			t.Fatal(err)
		}
		for _, fn := range cp.Funcs {
			for pc, ins := range fn.Code {
				if _, ok := OpEffect(ins); !ok {
					t.Fatalf("%s pc %d: opcode %v missing from effect table", fn.Name, pc, ins.Op)
				}
			}
		}
	}
}

func corpusSources(t *testing.T) []string {
	t.Helper()
	var srcs []string
	for _, dir := range []string{"../testdata", "../testdata/effects", "../testdata/vet"} {
		files, err := filepath.Glob(dir + "/*.ml")
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range files {
			b, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			srcs = append(srcs, string(b))
		}
	}
	if len(srcs) < 10 {
		t.Fatalf("corpus sweep found only %d programs", len(srcs))
	}
	return srcs
}
