package analysis

import (
	"fmt"
	"sort"

	"aprof/internal/vm"
)

// Diagnostic is one positioned lint finding. Diagnostics are advisory: the
// program still compiles and runs (unlike verifier errors).
type Diagnostic struct {
	Pos  vm.Pos
	Code string
	Msg  string
}

// String renders "line:col: CODE: message"; callers prepend the file name.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Code, d.Msg)
}

// The lint catalog. Codes are stable: golden tests and downstream tooling
// match on them.
const (
	// CodeUseBeforeDecl: an identifier is read or assigned at a point where
	// its declaration is not (yet) in scope — use before assignment.
	CodeUseBeforeDecl = "V001"
	// CodeUnusedVar: a local variable is declared (and possibly assigned)
	// but its value is never read.
	CodeUnusedVar = "V002"
	// CodeUnusedFunc: a function other than main is never called or
	// spawned.
	CodeUnusedFunc = "V003"
	// CodeUnreachable: statements that no control path reaches.
	CodeUnreachable = "V004"
	// CodeConstCond: an if/while/for condition that always evaluates to the
	// same value.
	CodeConstCond = "V005"
	// CodeWrongArity: a call or spawn whose argument count does not match
	// the callee.
	CodeWrongArity = "V006"
	// CodeDeadStore: a traced memory write whose value is provably
	// overwritten before any possibly-aliasing read (found by the bytecode
	// effect analysis, not the AST lint).
	CodeDeadStore = "V007"
)

// Lint analyzes a parsed program and returns its diagnostics sorted by
// source position. It never fails: unparseable programs cannot reach it,
// and programs the compiler would reject (unknown names, string literals
// outside print) simply produce fewer lint findings — the compiler error is
// the authoritative report for those.
func Lint(prog *vm.Program) []Diagnostic {
	l := &linter{
		funcs:   make(map[string]*vm.FuncDecl),
		globals: make(map[string]bool),
		called:  make(map[string]bool),
	}
	for _, g := range prog.Globals {
		l.globals[g.Name] = true
	}
	for _, fn := range prog.Funcs {
		l.funcs[fn.Name] = fn
	}
	for _, fn := range prog.Funcs {
		l.checkFunc(fn)
	}
	for _, fn := range prog.Funcs {
		if fn.Name != "main" && !l.called[fn.Name] {
			l.report(fn.Pos, CodeUnusedFunc, "function %q is never called or spawned", fn.Name)
		}
	}
	sortDiagnostics(l.diags)
	return l.diags
}

// sortDiagnostics orders diagnostics by source position, then code — the
// stable order every producer (AST lint, effect analysis) emits in.
func sortDiagnostics(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		return a.Code < b.Code
	})
}

type varInfo struct {
	name string
	pos  vm.Pos
	read bool
}

type linter struct {
	diags   []Diagnostic
	funcs   map[string]*vm.FuncDecl
	globals map[string]bool
	called  map[string]bool
	// Per-function state: the scope stack and the declaration positions of
	// every local in the function (for use-before-declaration reports).
	scopes   []([]*varInfo)
	declPos  map[string]vm.Pos
	declared map[string]bool
	// declaring is the name of the var whose initializer is being walked,
	// so "var x = x + 1;" gets a self-reference diagnostic.
	declaring string
}

func (l *linter) report(pos vm.Pos, code, format string, args ...any) {
	l.diags = append(l.diags, Diagnostic{Pos: pos, Code: code, Msg: fmt.Sprintf(format, args...)})
}

func (l *linter) checkFunc(fn *vm.FuncDecl) {
	l.scopes = nil
	l.declPos = make(map[string]vm.Pos)
	l.declared = make(map[string]bool)
	collectDecls(fn.Body, l.declPos)
	l.pushScope()
	for _, p := range fn.Params {
		// Parameters are part of the signature; an unused one is not
		// flagged, so mark it read from the start.
		l.scopes[0] = append(l.scopes[0], &varInfo{name: p, pos: fn.Pos, read: true})
		l.declared[p] = true
	}
	l.checkBlock(fn.Body)
	l.popScope()
}

// collectDecls records the first declaration position of every var in the
// statement tree.
func collectDecls(s vm.Stmt, out map[string]vm.Pos) {
	switch s := s.(type) {
	case *vm.Block:
		for _, st := range s.Stmts {
			collectDecls(st, out)
		}
	case *vm.VarStmt:
		if _, seen := out[s.Name]; !seen {
			out[s.Name] = s.Pos
		}
	case *vm.IfStmt:
		collectDecls(s.Then, out)
		if s.Else != nil {
			collectDecls(s.Else, out)
		}
	case *vm.WhileStmt:
		collectDecls(s.Body, out)
	case *vm.ForStmt:
		if s.Init != nil {
			collectDecls(s.Init, out)
		}
		collectDecls(s.Body, out)
	}
}

func (l *linter) pushScope() { l.scopes = append(l.scopes, nil) }

func (l *linter) popScope() {
	top := l.scopes[len(l.scopes)-1]
	l.scopes = l.scopes[:len(l.scopes)-1]
	for _, v := range top {
		if !v.read {
			l.report(v.pos, CodeUnusedVar, "variable %q declared but never used", v.name)
		}
	}
}

func (l *linter) declare(name string, pos vm.Pos) {
	l.scopes[len(l.scopes)-1] = append(l.scopes[len(l.scopes)-1], &varInfo{name: name, pos: pos})
	l.declared[name] = true
}

func (l *linter) lookup(name string) *varInfo {
	for i := len(l.scopes) - 1; i >= 0; i-- {
		for j := len(l.scopes[i]) - 1; j >= 0; j-- {
			if l.scopes[i][j].name == name {
				return l.scopes[i][j]
			}
		}
	}
	return nil
}

// resolve handles an identifier occurrence. A name that is not in scope,
// not a global, but declared by some var statement of the function is a
// definite use-before-assignment.
func (l *linter) resolve(name string, pos vm.Pos, read bool) {
	if v := l.lookup(name); v != nil {
		if read {
			v.read = true
		}
		return
	}
	if l.globals[name] {
		return
	}
	if declPos, ok := l.declPos[name]; ok {
		if name == l.declaring {
			l.report(pos, CodeUseBeforeDecl, "variable %q used in its own initializer", name)
		} else if pos.Line < declPos.Line || (pos.Line == declPos.Line && pos.Col < declPos.Col) {
			l.report(pos, CodeUseBeforeDecl, "variable %q used before its declaration at %s", name, declPos)
		} else {
			l.report(pos, CodeUseBeforeDecl, "variable %q used outside the scope of its declaration at %s", name, declPos)
		}
		return
	}
	// Entirely undeclared: the compiler reports it as a hard error.
}

func (l *linter) checkBlock(b *vm.Block) {
	l.pushScope()
	terminated := false
	reported := false
	for _, s := range b.Stmts {
		if terminated && !reported {
			l.report(stmtPos(s), CodeUnreachable, "unreachable code")
			reported = true
		}
		l.checkStmt(s)
		if !terminated && terminates(s) {
			terminated = true
		}
	}
	l.popScope()
}

func (l *linter) checkStmt(s vm.Stmt) {
	switch s := s.(type) {
	case *vm.Block:
		l.checkBlock(s)
	case *vm.VarStmt:
		outer := l.declaring
		l.declaring = s.Name
		l.checkExpr(s.Init)
		l.declaring = outer
		l.declare(s.Name, s.Pos)
	case *vm.AssignStmt:
		l.checkExpr(s.Value)
		switch t := s.Target.(type) {
		case *vm.Ident:
			// A plain assignment writes the variable without reading it.
			l.resolve(t.Name, t.Pos, false)
		case *vm.IndexExpr:
			l.checkExpr(t.Base)
			l.checkExpr(t.Index)
		}
	case *vm.IfStmt:
		l.checkCond(s.Cond, "if")
		l.checkExpr(s.Cond)
		l.checkBlock(s.Then)
		if s.Else != nil {
			l.checkStmt(s.Else)
		}
	case *vm.WhileStmt:
		l.checkCond(s.Cond, "while")
		l.checkExpr(s.Cond)
		l.checkBlock(s.Body)
	case *vm.ForStmt:
		l.pushScope()
		if s.Init != nil {
			l.checkStmt(s.Init)
		}
		if s.Cond != nil {
			l.checkCond(s.Cond, "for")
			l.checkExpr(s.Cond)
		}
		l.checkBlock(s.Body)
		if s.Post != nil {
			l.checkStmt(s.Post)
		}
		l.popScope()
	case *vm.ReturnStmt:
		if s.Value != nil {
			l.checkExpr(s.Value)
		}
	case *vm.SpawnStmt:
		l.checkCall(s.Call, "spawn")
	case *vm.ExprStmt:
		l.checkExpr(s.X)
	}
}

func (l *linter) checkExpr(e vm.Expr) {
	switch e := e.(type) {
	case *vm.Ident:
		l.resolve(e.Name, e.Pos, true)
	case *vm.IndexExpr:
		l.checkExpr(e.Base)
		l.checkExpr(e.Index)
	case *vm.CallExpr:
		l.checkCall(e, "call")
	case *vm.UnaryExpr:
		l.checkExpr(e.X)
	case *vm.BinaryExpr:
		l.checkExpr(e.X)
		l.checkExpr(e.Y)
	}
}

func (l *linter) checkCall(e *vm.CallExpr, how string) {
	l.called[e.Name] = true
	if fd, ok := l.funcs[e.Name]; ok {
		if len(e.Args) != len(fd.Params) {
			l.report(e.Pos, CodeWrongArity, "%s of %q with %d arguments, want %d", how, e.Name, len(e.Args), len(fd.Params))
		}
	} else if want, ok := vm.BuiltinArity(e.Name); ok {
		if len(e.Args) != want {
			l.report(e.Pos, CodeWrongArity, "%s of builtin %q with %d arguments, want %d", how, e.Name, len(e.Args), want)
		}
	}
	// print is variadic; unknown names are the compiler's hard error.
	for _, arg := range e.Args {
		l.checkExpr(arg)
	}
}

func (l *linter) checkCond(cond vm.Expr, what string) {
	if v, ok := evalConst(cond); ok {
		truth := "false"
		if v != 0 {
			truth = "true"
		}
		l.report(cond.Position(), CodeConstCond, "%s condition is always %s", what, truth)
	}
}

// terminates reports whether control cannot flow past s.
func terminates(s vm.Stmt) bool {
	switch s := s.(type) {
	case *vm.ReturnStmt, *vm.BreakStmt, *vm.ContinueStmt:
		return true
	case *vm.Block:
		for _, st := range s.Stmts {
			if terminates(st) {
				return true
			}
		}
		return false
	case *vm.IfStmt:
		return s.Else != nil && terminates(s.Then) && terminates(s.Else)
	default:
		return false
	}
}

func stmtPos(s vm.Stmt) vm.Pos {
	switch s := s.(type) {
	case *vm.Block:
		return s.Pos
	case *vm.VarStmt:
		return s.Pos
	case *vm.AssignStmt:
		return s.Pos
	case *vm.IfStmt:
		return s.Pos
	case *vm.WhileStmt:
		return s.Pos
	case *vm.ForStmt:
		return s.Pos
	case *vm.ReturnStmt:
		return s.Pos
	case *vm.SpawnStmt:
		return s.Pos
	case *vm.BreakStmt:
		return s.Pos
	case *vm.ContinueStmt:
		return s.Pos
	case *vm.ExprStmt:
		return s.Pos
	}
	return vm.Pos{}
}

// evalConst evaluates a side-effect-free constant expression with the
// language's C-like semantics. Division and modulo by zero are not
// constant: the runtime error must survive. Short-circuit operators are
// constant when their outcome is decided without the unevaluated side.
func evalConst(e vm.Expr) (int64, bool) {
	switch e := e.(type) {
	case *vm.NumberLit:
		return e.Value, true
	case *vm.UnaryExpr:
		x, ok := evalConst(e.X)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case vm.TokMinus:
			return -x, true
		case vm.TokBang:
			return b2i(x == 0), true
		}
		return 0, false
	case *vm.BinaryExpr:
		x, okX := evalConst(e.X)
		// Short-circuit: "0 && anything" and "1 || anything" are decided by
		// the left side alone (the right side is never evaluated at run
		// time, so its side effects cannot matter).
		if okX && e.Op == vm.TokAndAnd && x == 0 {
			return 0, true
		}
		if okX && e.Op == vm.TokOrOr && x != 0 {
			return 1, true
		}
		y, okY := evalConst(e.Y)
		if !okX || !okY {
			return 0, false
		}
		switch e.Op {
		case vm.TokAndAnd:
			return b2i(x != 0 && y != 0), true
		case vm.TokOrOr:
			return b2i(x != 0 || y != 0), true
		case vm.TokPlus:
			return x + y, true
		case vm.TokMinus:
			return x - y, true
		case vm.TokStar:
			return x * y, true
		case vm.TokSlash:
			if y == 0 {
				return 0, false
			}
			return x / y, true
		case vm.TokPercent:
			if y == 0 {
				return 0, false
			}
			return x % y, true
		case vm.TokEq:
			return b2i(x == y), true
		case vm.TokNe:
			return b2i(x != y), true
		case vm.TokLt:
			return b2i(x < y), true
		case vm.TokLe:
			return b2i(x <= y), true
		case vm.TokGt:
			return b2i(x > y), true
		case vm.TokGe:
			return b2i(x >= y), true
		}
	}
	return 0, false
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
