package analysis

import (
	"fmt"
	"sort"
	"strings"

	"aprof/internal/vm"
)

// Effect analysis: a dataflow pass over the CFG that computes, per basic
// block, the static step cost and a summarized memory-effect set — which
// addresses are read, written, or provably redundant under the profiler's
// first-access (rms/drms) semantics — and compiles the result into a
// vm.EffectPlan the interpreter uses to suppress redundant instrumentation.
//
// The soundness frame: the scheduler switches threads only at VM
// basic-block leaders, and the profiler's global counter ticks only on
// call, thread-switch, and kernel-to-user events. Within one VM block with
// no sys op, every traced access therefore shares one counter value and one
// shadow stack top, which makes (a) a re-read of an address already
// accessed in the block and (b) a re-write of an address already written
// complete profiler no-ops, regardless of interleaved accesses to other
// addresses — no alias analysis is needed. Sys ops tick the counter
// mid-block, so they end "segments": nothing after a sys op is judged
// against anything before it, and blocks containing sys ops bail out of
// event aggregation entirely.
//
// Addresses are compared symbolically as linear forms over versioned local
// slots (const + Σ coeff·local@version). Identical forms denote identical
// runtime addresses; everything else is conservatively distinct.

func init() {
	vm.SetEffectPlanner(func(cp *vm.CompiledProgram) (*vm.EffectPlan, error) {
		pe, err := AnalyzeProgram(cp)
		if err != nil {
			return nil, err
		}
		return pe.Plan(), nil
	})
}

// ---------------------------------------------------------------------------
// Symbolic address expressions.

// term is one coeff·local component of a linear address form. ver
// distinguishes values of the same slot across OpStoreLocal: equal (slot,
// ver) pairs denote the same runtime value within one block walk.
type term struct {
	slot  int32
	ver   int32
	coeff int64
}

// addrExpr is a canonical linear form: c + Σ terms, with terms sorted by
// (slot, ver) and no zero coefficients. known=false is ⊤ (any address).
// Arithmetic wraps exactly like the VM's int64 arithmetic, so equal forms
// imply equal runtime addresses even under overflow.
type addrExpr struct {
	known bool
	c     int64
	terms []term
}

func exprConst(c int64) addrExpr { return addrExpr{known: true, c: c} }

func exprLocal(slot, ver int32) addrExpr {
	return addrExpr{known: true, terms: []term{{slot: slot, ver: ver, coeff: 1}}}
}

func (e addrExpr) equal(o addrExpr) bool {
	if !e.known || !o.known || e.c != o.c || len(e.terms) != len(o.terms) {
		return false
	}
	for i := range e.terms {
		if e.terms[i] != o.terms[i] {
			return false
		}
	}
	return true
}

// disjoint reports that e and o provably denote different addresses: same
// variable part, different constant.
func (e addrExpr) disjoint(o addrExpr) bool {
	if !e.known || !o.known || e.c == o.c || len(e.terms) != len(o.terms) {
		return false
	}
	for i := range e.terms {
		if e.terms[i] != o.terms[i] {
			return false
		}
	}
	return true
}

// addExprs returns a + sign·b (sign is +1 or -1), or ⊤ if either is ⊤.
func addExprs(a, b addrExpr, sign int64) addrExpr {
	if !a.known || !b.known {
		return addrExpr{}
	}
	out := addrExpr{known: true, c: a.c + sign*b.c}
	i, j := 0, 0
	for i < len(a.terms) || j < len(b.terms) {
		switch {
		case j == len(b.terms) || (i < len(a.terms) && lessTerm(a.terms[i], b.terms[j])):
			out.terms = append(out.terms, a.terms[i])
			i++
		case i == len(a.terms) || lessTerm(b.terms[j], a.terms[i]):
			t := b.terms[j]
			t.coeff *= sign
			out.terms = append(out.terms, t)
			j++
		default:
			t := a.terms[i]
			t.coeff += sign * b.terms[j].coeff
			if t.coeff != 0 {
				out.terms = append(out.terms, t)
			}
			i++
			j++
		}
	}
	return out
}

func lessTerm(a, b term) bool {
	if a.slot != b.slot {
		return a.slot < b.slot
	}
	return a.ver < b.ver
}

// mulExprs returns a·b when one side is a constant, ⊤ otherwise.
func mulExprs(a, b addrExpr) addrExpr {
	if !a.known || !b.known {
		return addrExpr{}
	}
	if len(a.terms) > 0 && len(b.terms) > 0 {
		return addrExpr{}
	}
	k, e := a, b
	if len(k.terms) > 0 {
		k, e = b, a
	}
	out := addrExpr{known: true, c: e.c * k.c}
	if k.c == 0 {
		return out
	}
	for _, t := range e.terms {
		t.coeff *= k.c
		out.terms = append(out.terms, t)
	}
	return out
}

func negExpr(a addrExpr) addrExpr { return addExprs(exprConst(0), a, -1) }

// ---------------------------------------------------------------------------
// Analysis results.

// Access is one traced memory access of a sub-block, in program order.
type Access struct {
	PC    int
	Write bool
	// Sys marks a sysread/syswrite range transfer (never elided; Expr is
	// the base address, N the symbolic length).
	Sys bool
	N   string
	// Expr is the rendered symbolic address ("?" when unknown).
	Expr string
	// Elided marks accesses the plan proves redundant.
	Elided bool
}

// SubBlock is one VM basic block (scheduling-atomic instruction run) inside
// a CFG block, the unit at which suppression decisions are made.
type SubBlock struct {
	Start, End int
	Class      vm.BlockClass
	Accesses   []Access
}

// BlockEffects summarizes one CFG basic block: its static step cost and the
// memory-effect sets of its VM sub-blocks.
type BlockEffects struct {
	Index      int
	Start, End int
	// Steps is the static step cost: the number of instructions the block
	// executes on any pass through it.
	Steps int
	Subs  []SubBlock
}

// FuncEffects is the per-function analysis result.
type FuncEffects struct {
	Fn     *vm.Func
	Graph  *CFG
	Blocks []BlockEffects
	// Elide and Class are the raw plan tables (indexed by pc; Class is
	// meaningful at block leaders).
	Elide []bool
	Class []vm.BlockClass

	deadStores []deadStore
}

// deadStore is a V007 candidate: the store at pc is overwritten at
// overwritePC with no possibly-aliasing read in between.
type deadStore struct {
	pc          int
	overwritePC int
	expr        string
}

// ProgramEffects is the whole-program effect analysis.
type ProgramEffects struct {
	cp      *vm.CompiledProgram
	globals []globalRange
	Funcs   []*FuncEffects
}

type globalRange struct {
	name      string
	base, end int64
}

// AnalyzeProgram runs the effect analysis. It verifies the program first:
// the symbolic walk relies on the stack discipline the verifier proves.
func AnalyzeProgram(cp *vm.CompiledProgram) (*ProgramEffects, error) {
	if err := VerifyProgram(cp); err != nil {
		return nil, err
	}
	pe := &ProgramEffects{cp: cp}
	names := make([]string, 0, len(cp.GlobalBase))
	for name := range cp.GlobalBase {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return cp.GlobalBase[names[i]] < cp.GlobalBase[names[j]] })
	for i, name := range names {
		end := cp.GlobalEnd
		if i+1 < len(names) {
			end = cp.GlobalBase[names[i+1]]
		}
		pe.globals = append(pe.globals, globalRange{name: name, base: cp.GlobalBase[name], end: end})
	}
	for _, fn := range cp.Funcs {
		fe, err := pe.analyzeFunc(fn)
		if err != nil {
			return nil, err
		}
		pe.Funcs = append(pe.Funcs, fe)
	}
	return pe, nil
}

// Plan compiles the analysis into the interpreter's suppression plan.
func (pe *ProgramEffects) Plan() *vm.EffectPlan {
	plan := &vm.EffectPlan{Funcs: make([]vm.PlanFunc, len(pe.Funcs))}
	for i, fe := range pe.Funcs {
		plan.Funcs[i] = vm.PlanFunc{Elide: fe.Elide, Class: fe.Class}
	}
	return plan
}

// DeadStores renders the V007 dead-store diagnostics of the program.
func (pe *ProgramEffects) DeadStores() []Diagnostic {
	var out []Diagnostic
	for _, fe := range pe.Funcs {
		for _, ds := range fe.deadStores {
			ins := fe.Fn.Code[ds.pc]
			over := fe.Fn.Code[ds.overwritePC]
			out = append(out, Diagnostic{
				Pos:  vm.Pos{Line: int(ins.Line), Col: int(ins.Col)},
				Code: CodeDeadStore,
				Msg:  fmt.Sprintf("dead store: value written to %s is overwritten at line %d before being read", ds.expr, over.Line),
			})
		}
	}
	sortDiagnostics(out)
	return out
}

// ---------------------------------------------------------------------------
// The per-function walk.

func (pe *ProgramEffects) analyzeFunc(fn *vm.Func) (*FuncEffects, error) {
	g, err := BuildCFG(fn)
	if err != nil {
		return nil, err
	}
	fe := &FuncEffects{
		Fn:    fn,
		Graph: g,
		Elide: make([]bool, len(fn.Code)),
		Class: make([]vm.BlockClass, len(fn.Code)),
	}
	w := &walker{pe: pe, fn: fn, fe: fe}
	for _, b := range g.Blocks {
		w.walkBlock(b)
	}
	return fe, nil
}

// segAcc is one access of the current redundancy segment.
type segAcc struct {
	pc    int
	expr  addrExpr
	write bool
}

type walker struct {
	pe *ProgramEffects
	fn *vm.Func
	fe *FuncEffects

	ver   []int32
	stack []addrExpr
	seen  []segAcc

	sub         SubBlock
	subMemOps   int // non-elided loadmem/storemem in the sub-block
	subHasSys   bool
	pendingSubs []SubBlock
}

// walkBlock symbolically executes one CFG block. The evaluation stack and
// local versions flow across VM sub-block boundaries (they are
// thread-private state no other thread can touch); the redundancy segment
// resets at every VM leader (scheduling point) and after every sys op
// (mid-block counter tick).
func (w *walker) walkBlock(b *BasicBlock) {
	w.ver = make([]int32, w.fn.NumLocals)
	w.stack = w.stack[:0]
	w.startSub(b.Start)
	for pc := b.Start; pc < b.End; pc++ {
		if pc > b.Start && w.fn.BlockStart[pc] {
			w.closeSub(pc)
			w.startSub(pc)
		}
		w.step(pc)
	}
	w.closeSub(b.End)
	w.fe.Blocks = append(w.fe.Blocks, BlockEffects{
		Index: b.Index,
		Start: b.Start,
		End:   b.End,
		Steps: b.End - b.Start,
		Subs:  w.takeSubs(),
	})
}

// takeSubs returns the sub-blocks closeSub accumulated since walkBlock
// started and resets the scratch list.
func (w *walker) takeSubs() []SubBlock {
	subs := w.pendingSubs
	w.pendingSubs = nil
	return subs
}

func (w *walker) startSub(pc int) {
	w.sub = SubBlock{Start: pc}
	w.subMemOps = 0
	w.subHasSys = false
	w.seen = w.seen[:0]
}

func (w *walker) closeSub(end int) {
	w.sub.End = end
	cls := vm.ClassDirect
	switch {
	case w.subHasSys:
		cls = vm.ClassBailSys
	case w.subMemOps >= 2:
		cls = vm.ClassAggregate
	}
	w.sub.Class = cls
	w.fe.Class[w.sub.Start] = cls
	w.pendingSubs = append(w.pendingSubs, w.sub)
	w.seen = w.seen[:0]
}

func (w *walker) push(e addrExpr) { w.stack = append(w.stack, e) }

// pop returns ⊤ for values that entered the block on the stack: the
// verifier guarantees no true underflow on executed paths.
func (w *walker) pop() addrExpr {
	if len(w.stack) == 0 {
		return addrExpr{}
	}
	e := w.stack[len(w.stack)-1]
	w.stack = w.stack[:len(w.stack)-1]
	return e
}

func (w *walker) step(pc int) {
	ins := w.fn.Code[pc]
	cp := w.pe.cp
	switch ins.Op {
	case vm.OpConst:
		w.push(exprConst(cp.Constants[ins.A]))
	case vm.OpLoadLocal:
		w.push(exprLocal(ins.A, w.ver[ins.A]))
	case vm.OpStoreLocal:
		w.pop()
		w.ver[ins.A]++
	case vm.OpAdd:
		b := w.pop()
		a := w.pop()
		w.push(addExprs(a, b, 1))
	case vm.OpSub:
		b := w.pop()
		a := w.pop()
		w.push(addExprs(a, b, -1))
	case vm.OpMul:
		b := w.pop()
		a := w.pop()
		w.push(mulExprs(a, b))
	case vm.OpNeg:
		w.push(negExpr(w.pop()))
	case vm.OpLoadMem:
		addr := w.pop()
		w.access(pc, addr, false)
		w.push(addrExpr{})
	case vm.OpStoreMem:
		w.pop() // value
		addr := w.pop()
		w.access(pc, addr, true)
	case vm.OpSysRead, vm.OpSysWrite:
		n := w.pop()
		base := w.pop()
		w.sub.Accesses = append(w.sub.Accesses, Access{
			PC:    pc,
			Write: ins.Op == vm.OpSysRead, // sysread fills memory; syswrite reads it
			Sys:   true,
			N:     w.pe.renderScalar(n),
			Expr:  w.pe.render(base),
		})
		w.subHasSys = true
		// The kernel transfer ticks the profiler counter and touches a cell
		// range: nothing downstream may be judged against anything upstream.
		w.seen = w.seen[:0]
		w.push(n)
	case vm.OpPrint, vm.OpAssert:
		info, _ := OpEffect(ins)
		for i := 0; i < info.Pops; i++ {
			w.pop()
		}
		w.push(exprConst(0))
	default:
		info, ok := OpEffect(ins)
		if !ok {
			return // verifier rejects these before analysis runs
		}
		for i := 0; i < info.Pops; i++ {
			w.pop()
		}
		for i := 0; i < info.Pushes; i++ {
			w.push(addrExpr{})
		}
	}
}

// access records a traced single-cell access, deciding redundancy (Elide)
// and dead stores (V007) against the current segment.
func (w *walker) access(pc int, e addrExpr, write bool) {
	elided := false
	if e.known {
		if write {
			for i := len(w.seen) - 1; i >= 0; i-- {
				s := w.seen[i]
				if !s.write || !s.expr.equal(e) {
					continue
				}
				// Same-address write earlier in the segment: this write is a
				// profiler no-op (same count, same stack top, same writer
				// kind — the shadow state it would set is already set).
				elided = true
				// V007: the earlier store is dead unless some possibly-
				// aliasing read happened in between.
				dead := true
				for j := i + 1; j < len(w.seen); j++ {
					r := w.seen[j]
					if !r.write && !r.expr.disjoint(e) {
						dead = false
						break
					}
				}
				if dead {
					w.fe.deadStores = append(w.fe.deadStores, deadStore{
						pc:          w.seen[i].pc,
						overwritePC: pc,
						expr:        w.pe.render(e),
					})
				}
				break
			}
		} else {
			for _, s := range w.seen {
				if s.expr.equal(e) {
					// Re-read after any access to the same address in the
					// segment: first-access tests see timestamps already at
					// the current count — a complete no-op.
					elided = true
					break
				}
			}
		}
	}
	w.fe.Elide[pc] = elided
	if !elided {
		w.subMemOps++
	}
	w.sub.Accesses = append(w.sub.Accesses, Access{
		PC:     pc,
		Write:  write,
		Expr:   w.pe.render(e),
		Elided: elided,
	})
	w.seen = append(w.seen, segAcc{pc: pc, expr: e, write: write})
}

// render formats a symbolic address, resolving constant parts to global
// names ("data+3", "buf+l2") and tagging re-assigned locals with their
// version ("l2@1"). "?" is ⊤.
func (pe *ProgramEffects) render(e addrExpr) string {
	return pe.renderExpr(e, true)
}

// renderScalar formats a non-address value (a sys transfer length):
// constants stay numeric instead of resolving to global names.
func (pe *ProgramEffects) renderScalar(e addrExpr) string {
	return pe.renderExpr(e, false)
}

func (pe *ProgramEffects) renderExpr(e addrExpr, asAddr bool) string {
	if !e.known {
		return "?"
	}
	var sb strings.Builder
	wrote := false
	if e.c != 0 || len(e.terms) == 0 {
		// Only a pure-constant form is an absolute address; with local
		// terms present the constant is a relative offset, not a global.
		if g := pe.globalAt(e.c); asAddr && g != nil && len(e.terms) == 0 {
			sb.WriteString(g.name)
			if off := e.c - g.base; off != 0 {
				fmt.Fprintf(&sb, "+%d", off)
			}
		} else {
			fmt.Fprintf(&sb, "%d", e.c)
		}
		wrote = true
	}
	for _, t := range e.terms {
		if t.coeff >= 0 && wrote {
			sb.WriteByte('+')
		}
		switch t.coeff {
		case 1:
		case -1:
			sb.WriteByte('-')
		default:
			fmt.Fprintf(&sb, "%d*", t.coeff)
		}
		fmt.Fprintf(&sb, "l%d", t.slot)
		if t.ver > 0 {
			fmt.Fprintf(&sb, "@%d", t.ver)
		}
		wrote = true
	}
	return sb.String()
}

func (pe *ProgramEffects) globalAt(addr int64) *globalRange {
	for i := range pe.globals {
		if addr >= pe.globals[i].base && addr < pe.globals[i].end {
			return &pe.globals[i]
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Report rendering.

// Report renders the per-function block/cost/effect report behind the
// `minivm effects` subcommand.
func (pe *ProgramEffects) Report() string {
	var sb strings.Builder
	for i, fe := range pe.Funcs {
		if i > 0 {
			sb.WriteByte('\n')
		}
		fe.write(&sb)
	}
	return sb.String()
}

func (fe *FuncEffects) write(sb *strings.Builder) {
	steps := 0
	var elided, agg int
	for _, e := range fe.Elide {
		if e {
			elided++
		}
	}
	for _, b := range fe.Blocks {
		steps += b.Steps
		for _, s := range b.Subs {
			if s.Class == vm.ClassAggregate {
				agg++
			}
		}
	}
	fmt.Fprintf(sb, "fn %s (blocks=%d steps=%d elide=%d aggregate=%d)\n",
		fe.Fn.Name, len(fe.Blocks), steps, elided, agg)
	for _, b := range fe.Blocks {
		fmt.Fprintf(sb, "  b%d pc[%d,%d) steps=%d\n", b.Index, b.Start, b.End, b.Steps)
		for _, s := range b.Subs {
			fmt.Fprintf(sb, "    [%d,%d) %s\n", s.Start, s.End, s.Class)
			for _, a := range s.Accesses {
				if a.Sys {
					// Tagged by opcode: sysread (SR) fills the range — a
					// memory write — and syswrite (SW) reads it.
					tag := "SW"
					if a.Write {
						tag = "SR"
					}
					fmt.Fprintf(sb, "      %-2s %s n=%s\n", tag, a.Expr, a.N)
					continue
				}
				tag := "R"
				if a.Write {
					tag = "W"
				}
				suffix := ""
				if a.Elided {
					suffix = "  [elided]"
				}
				fmt.Fprintf(sb, "      %-2s %s%s\n", tag, a.Expr, suffix)
			}
		}
	}
}
