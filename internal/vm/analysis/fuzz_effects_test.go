package analysis_test

import (
	"reflect"
	"testing"

	"aprof"
	"aprof/internal/core"
	"aprof/internal/vm"
	"aprof/internal/vm/analysis"
)

// FuzzEffects fuzzes the redundancy-suppression pipeline with the
// sequential profiler as oracle: any program the front end accepts must
// behave identically with and without suppression — same termination, same
// output, and identical profiler results (modulo the fed-event count) over
// the two traces. The effect analysis itself must never fail on a program
// the verifier accepted.
func FuzzEffects(f *testing.F) {
	for _, src := range []string{
		"fn main() { var a = alloc(4); a[0] = 1; a[0] = 2; print(a[0]); }",
		"fn main() { var a = alloc(8); var s = a[0] + a[1] + a[0]; a[2] = s; a[3] = s; print(s); }",
		"fn main() { var a = alloc(4); sysread(a, 4); print(a[0]); syswrite(a, 2); }",
		"fn f(p, i) { p[i] = p[i] + 1; return p[i]; } fn main() { var a = alloc(4); print(f(a, 2)); }",
		"global g = 0; fn main() { g = 1; g = 2; for (var i = 0; i < 3; i = i + 1) { g = g + i; } print(g); }",
		"fn w(s) { wait(s); print(1); return 0; } fn main() { var s = sem(0); spawn w(s); signal(s); }",
	} {
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			return
		}
		opts := vm.Options{MaxSteps: 100_000}
		fopts := opts
		sopts := opts
		sopts.Suppress = true
		fres, ferr := vm.RunSource(src, fopts)
		sres, serr := vm.RunSource(src, sopts)
		if (ferr == nil) != (serr == nil) {
			t.Fatalf("error divergence:\nfull: %v\nsuppressed: %v\nsource: %q", ferr, serr, src)
		}
		if ferr != nil {
			return
		}
		// A program that compiles and verifies must also analyze.
		if _, _, err := analysis.Effects(src); err != nil {
			t.Fatalf("verified program failed effect analysis: %v\nsource: %q", err, src)
		}
		if !reflect.DeepEqual(fres.Output, sres.Output) {
			t.Fatalf("output divergence:\nfull: %q\nsuppressed: %q\nsource: %q", fres.Output, sres.Output, src)
		}
		pf, err := core.Run(fres.Trace, core.DefaultConfig())
		if err != nil {
			t.Fatalf("profile full: %v", err)
		}
		ps, err := core.Run(sres.Trace, core.DefaultConfig())
		if err != nil {
			t.Fatalf("profile suppressed: %v", err)
		}
		pf.Events = 0
		ps.Events = 0
		if !reflect.DeepEqual(pf, ps) {
			t.Fatalf("profiles diverged (modulo Events)\nsource: %q", src)
		}
		ropts := aprof.ReportOptions{Fit: true, Plots: true}
		if aprof.Report(pf, ropts) != aprof.Report(ps, ropts) {
			t.Fatalf("reports diverged\nsource: %q", src)
		}
	})
}
