package analysis

import "aprof/internal/vm"

// MemOp classifies an opcode's traced memory behavior.
type MemOp uint8

const (
	// MemNone: no traced memory access.
	MemNone MemOp = iota
	// MemLoad: a traced single-cell read (loadmem).
	MemLoad
	// MemStore: a traced single-cell write (storemem).
	MemStore
	// MemSysLoad: a kernel-to-user transfer filling a cell range (sysread).
	MemSysLoad
	// MemSysStore: a user-to-kernel transfer reading a cell range (syswrite).
	MemSysStore
)

// OpInfo is the effect summary of one opcode instance: its stack effect and
// how it interacts with the trace and the profiler. It is a second
// independently maintained model of interp.step, alongside the verifier's
// stackEffect table; TestOpTablesAgree proves the three stay in sync.
type OpInfo struct {
	// Pops and Pushes are the resolved stack effect (operand-dependent for
	// call/spawn/print).
	Pops, Pushes int
	// Mem is the traced memory behavior.
	Mem MemOp
	// Barrier reports that the instruction emits a non-memory trace event,
	// may tick the profiler's global counter, or is a point where the
	// scheduler can switch threads — i.e. it ends a redundancy segment: no
	// access after it can be proven redundant against one before it.
	Barrier bool
	// EndsBlock mirrors vm.(*Func).markBlocks: the next pc is a basic-block
	// leader. Every EndsBlock op is a Barrier; sys ops are Barriers that do
	// NOT end blocks (the profiler counter ticks mid-block), which is
	// exactly why blocks containing them bail out of aggregation.
	EndsBlock bool
}

// OpEffect returns the effect summary for ins, or ok=false for an undefined
// opcode.
func OpEffect(ins vm.Instr) (info OpInfo, ok bool) {
	switch ins.Op {
	case vm.OpConst, vm.OpLoadLocal:
		return OpInfo{Pops: 0, Pushes: 1}, true
	case vm.OpStoreLocal, vm.OpPop:
		return OpInfo{Pops: 1, Pushes: 0}, true
	case vm.OpLoadMem:
		return OpInfo{Pops: 1, Pushes: 1, Mem: MemLoad}, true
	case vm.OpStoreMem:
		return OpInfo{Pops: 2, Pushes: 0, Mem: MemStore}, true
	case vm.OpAdd, vm.OpSub, vm.OpMul, vm.OpDiv, vm.OpMod,
		vm.OpEq, vm.OpNe, vm.OpLt, vm.OpLe, vm.OpGt, vm.OpGe:
		return OpInfo{Pops: 2, Pushes: 1}, true
	case vm.OpNeg, vm.OpNot, vm.OpAlloc, vm.OpSemNew, vm.OpAssert, vm.OpRand:
		return OpInfo{Pops: 1, Pushes: 1}, true
	case vm.OpJump:
		return OpInfo{Pops: 0, Pushes: 0, EndsBlock: true, Barrier: true}, true
	case vm.OpJumpIfZero, vm.OpJumpIfNonZero:
		return OpInfo{Pops: 1, Pushes: 0, EndsBlock: true, Barrier: true}, true
	case vm.OpCall:
		return OpInfo{Pops: int(ins.B), Pushes: 1, EndsBlock: true, Barrier: true}, true
	case vm.OpSpawn:
		return OpInfo{Pops: int(ins.B), Pushes: 0, EndsBlock: true, Barrier: true}, true
	case vm.OpReturn:
		return OpInfo{Pops: 1, Pushes: 0, EndsBlock: true, Barrier: true}, true
	case vm.OpSemWait, vm.OpSemSignal:
		return OpInfo{Pops: 1, Pushes: 1, EndsBlock: true, Barrier: true}, true
	case vm.OpSysRead:
		return OpInfo{Pops: 2, Pushes: 1, Mem: MemSysLoad, Barrier: true}, true
	case vm.OpSysWrite:
		return OpInfo{Pops: 2, Pushes: 1, Mem: MemSysStore, Barrier: true}, true
	case vm.OpPrint:
		return OpInfo{Pops: int(ins.A), Pushes: 1}, true
	}
	return OpInfo{}, false
}
