package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEffectsGolden compares the effect-analysis report of every program
// under internal/vm/testdata/effects against its .golden file, byte for
// byte — the same report `minivm effects` prints. Regenerate with
//
//	go test ./internal/vm/analysis -run TestEffectsGolden -update
func TestEffectsGolden(t *testing.T) {
	dir := filepath.Join("..", "testdata", "effects")
	files, err := filepath.Glob(filepath.Join(dir, "*.ml"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Fatalf("effects corpus unexpectedly small: %d programs", len(files))
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			pe, _, err := Effects(string(src))
			if err != nil {
				t.Fatalf("effects corpus programs must analyze: %v", err)
			}
			got := pe.Report()
			goldenPath := strings.TrimSuffix(file, ".ml") + ".golden"
			if *updateGolden {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("report changed.\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}
