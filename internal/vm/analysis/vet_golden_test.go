package analysis

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aprof/internal/vm"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// TestVetGolden compares the full Check diagnostics (AST lint plus the
// effect analysis' V007 dead-store findings) of every program under
// internal/vm/testdata/vet against its .golden file, byte for byte. Each
// line is "file:line:col: CODE: message". Regenerate with
//
//	go test ./internal/vm/analysis -run TestVetGolden -update
func TestVetGolden(t *testing.T) {
	dir := filepath.Join("..", "testdata", "vet")
	files, err := filepath.Glob(filepath.Join(dir, "*.ml"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 8 {
		t.Fatalf("vet corpus unexpectedly small: %d programs", len(files))
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := vm.Parse(string(src)); err != nil {
				t.Fatalf("vet corpus programs must parse: %v", err)
			}
			diags, cerr := Check(string(src))
			var sb strings.Builder
			for _, d := range diags {
				fmt.Fprintf(&sb, "%s:%s\n", filepath.Base(file), d)
			}
			if cerr != nil {
				fmt.Fprintf(&sb, "%s: error: %v\n", filepath.Base(file), cerr)
			}
			got := sb.String()
			goldenPath := strings.TrimSuffix(file, ".ml") + ".golden"
			if *updateGolden {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics changed.\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}
