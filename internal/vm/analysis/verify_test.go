package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aprof/internal/vm"
)

// mkProg wraps hand-built functions into a minimal CompiledProgram the way
// the compiler would lay one out, so invalid-bytecode cases test exactly
// one broken invariant each.
func mkProg(constants []int64, fns ...*vm.Func) *vm.CompiledProgram {
	cp := &vm.CompiledProgram{
		Constants:  constants,
		FuncByName: make(map[string]int),
		GlobalBase: map[string]int64{},
		GlobalEnd:  1,
	}
	for i, fn := range fns {
		if fn.BlockStart == nil {
			fn.BlockStart = make([]bool, len(fn.Code))
			if len(fn.Code) > 0 {
				fn.BlockStart[0] = true
			}
		}
		cp.FuncByName[fn.Name] = i
		cp.Funcs = append(cp.Funcs, fn)
	}
	return cp
}

func ins(op vm.Op, a, b int32) vm.Instr { return vm.Instr{Op: op, A: a, B: b} }

// TestVerifyRejectsInvalidBytecode is the committed corpus of
// deliberately-invalid bytecode. Each entry breaks exactly one verifier
// invariant; the verifier must reject it with a precise, located error.
func TestVerifyRejectsInvalidBytecode(t *testing.T) {
	ret0 := []vm.Instr{ins(vm.OpConst, 0, 0), ins(vm.OpReturn, 0, 0)}
	cases := []struct {
		name string
		cp   *vm.CompiledProgram
		want string // substring of the error
	}{
		{
			name: "jump target past end of code",
			cp: mkProg([]int64{0}, &vm.Func{Name: "main", Code: []vm.Instr{
				ins(vm.OpJump, 99, 0),
				ins(vm.OpConst, 0, 0),
				ins(vm.OpReturn, 0, 0),
			}}),
			want: "pc 0: jump target 99 out of range [0, 3)",
		},
		{
			name: "negative jump target",
			cp: mkProg([]int64{0}, &vm.Func{Name: "main", Code: []vm.Instr{
				ins(vm.OpJumpIfZero, -7, 0),
				ins(vm.OpConst, 0, 0),
				ins(vm.OpReturn, 0, 0),
			}}),
			want: "jz target -7 out of range",
		},
		{
			name: "stack underflow on binary op",
			cp: mkProg([]int64{0}, &vm.Func{Name: "main", Code: []vm.Instr{
				ins(vm.OpConst, 0, 0),
				ins(vm.OpAdd, 0, 0),
				ins(vm.OpReturn, 0, 0),
			}}),
			want: "pc 1: stack underflow: add needs 2 operands, stack has 1",
		},
		{
			name: "return with extra values on the stack",
			cp: mkProg([]int64{0}, &vm.Func{Name: "main", Code: []vm.Instr{
				ins(vm.OpConst, 0, 0),
				ins(vm.OpConst, 0, 0),
				ins(vm.OpReturn, 0, 0),
			}}),
			want: "pc 2: return leaves 1 extra values on the stack",
		},
		{
			name: "inconsistent stack height at join",
			cp: mkProg([]int64{0, 1}, &vm.Func{Name: "main", Code: []vm.Instr{
				ins(vm.OpConst, 0, 0),      // 0: push
				ins(vm.OpJumpIfZero, 4, 0), // 1: pop, maybe jump to 4
				ins(vm.OpConst, 1, 0),      // 2: push (height 1 on this arm)
				ins(vm.OpConst, 1, 0),      // 3: push (height 2)
				ins(vm.OpReturn, 0, 0),     // 4: join: height 0 vs 2
			}}),
			want: "inconsistent stack height at join",
		},
		{
			name: "local slot out of range",
			cp: mkProg([]int64{0}, &vm.Func{Name: "main", NumLocals: 1, Code: []vm.Instr{
				ins(vm.OpLoadLocal, 5, 0),
				ins(vm.OpReturn, 0, 0),
			}}),
			want: "loadlocal slot 5 out of range [0, 1)",
		},
		{
			name: "constant index out of range",
			cp: mkProg([]int64{7}, &vm.Func{Name: "main", Code: []vm.Instr{
				ins(vm.OpConst, 3, 0),
				ins(vm.OpReturn, 0, 0),
			}}),
			want: "constant index 3 out of range [0, 1)",
		},
		{
			name: "missing return: execution falls off the end",
			cp: mkProg([]int64{0}, &vm.Func{Name: "main", Code: []vm.Instr{
				ins(vm.OpConst, 0, 0),
				ins(vm.OpPop, 0, 0),
			}}),
			want: "falls off the end of the function after pop (missing return)",
		},
		{
			name: "conditional jump as last instruction",
			cp: mkProg([]int64{0}, &vm.Func{Name: "main", Code: []vm.Instr{
				ins(vm.OpConst, 0, 0),
				ins(vm.OpJumpIfZero, 0, 0),
			}}),
			want: "conditional jz can fall off the end",
		},
		{
			name: "call with wrong argument count",
			cp: mkProg([]int64{0},
				&vm.Func{Name: "main", Code: []vm.Instr{
					ins(vm.OpConst, 0, 0),
					ins(vm.OpCall, 1, 1), // f takes 2 params, called with 1
					ins(vm.OpReturn, 0, 0),
				}},
				&vm.Func{Name: "f", NumParams: 2, NumLocals: 2, Code: ret0}),
			want: "call f with 1 arguments, want 2",
		},
		{
			name: "call of function index out of range",
			cp: mkProg([]int64{0}, &vm.Func{Name: "main", Code: []vm.Instr{
				ins(vm.OpCall, 9, 0),
				ins(vm.OpReturn, 0, 0),
			}}),
			want: "call of function index 9 out of range [0, 1)",
		},
		{
			name: "print format string out of range",
			cp: mkProg([]int64{0}, &vm.Func{Name: "main", Code: []vm.Instr{
				ins(vm.OpPrint, 0, 4),
				ins(vm.OpReturn, 0, 0),
			}}),
			want: "print format index 4 out of range [-1, 0)",
		},
		{
			name: "unknown opcode",
			cp: mkProg([]int64{0}, &vm.Func{Name: "main", Code: []vm.Instr{
				ins(vm.Op(0xee), 0, 0),
				ins(vm.OpConst, 0, 0),
				ins(vm.OpReturn, 0, 0),
			}}),
			want: "unknown opcode",
		},
		{
			name: "empty function body",
			cp:   mkProg(nil, &vm.Func{Name: "main"}),
			want: "empty function body",
		},
		{
			name: "locals cannot hold parameters",
			cp: mkProg([]int64{0},
				&vm.Func{Name: "main", Code: ret0},
				&vm.Func{Name: "f", NumParams: 3, NumLocals: 1, Code: ret0}),
			want: "1 locals cannot hold 3 parameters",
		},
		{
			name: "BlockStart out of sync with code",
			cp:   mkProg([]int64{0}, &vm.Func{Name: "main", BlockStart: make([]bool, 1), Code: ret0}),
			want: "BlockStart has 1 entries for 2 instructions",
		},
		{
			name: "program without main",
			cp:   mkProg([]int64{0}, &vm.Func{Name: "helper", Code: ret0}),
			want: "no 'main' function",
		},
		{
			name: "global initializer outside the globals segment",
			cp: func() *vm.CompiledProgram {
				cp := mkProg([]int64{0}, &vm.Func{Name: "main", Code: ret0})
				cp.GlobalEnd = 3
				cp.GlobalInit = [][2]int64{{17, 5}}
				return cp
			}(),
			want: "global initializer targets address 17 outside [1, 3)",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := VerifyProgram(tc.cp)
			if err == nil {
				t.Fatalf("verifier accepted invalid bytecode")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestVerifyAcceptsCorpus: every program of the curated test corpus must
// verify both as compiled and after optimization (the acceptance half of
// the differential invariant).
func TestVerifyAcceptsCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "testdata", "*.ml"))
	if err != nil || len(files) == 0 {
		t.Fatalf("corpus not found: %v (%d files)", err, len(files))
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		cp, err := vm.Compile(string(src))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if err := VerifyProgram(cp); err != nil {
			t.Errorf("%s: rejected freshly compiled program: %v", f, err)
		}
		if _, err := cp.Optimize(); err != nil {
			t.Errorf("%s: %v", f, err)
		}
		if err := VerifyProgram(cp); err != nil {
			t.Errorf("%s: rejected optimized program: %v", f, err)
		}
	}
}

// TestVerifyAdversarialOptimizerPatterns pins the optimizer patterns most
// likely to break verification — jumps into folded constant pairs,
// elimination of constant-false loops, infinite loops whose implicit
// return is removed (code may legally end in a jump), and short-circuit
// conditions in loop headers. The verifier, the differential check inside
// Optimize, and behaviour must all hold. A 2M-exec fuzz session and 30k
// structured random programs flushed no violation; these reduced patterns
// keep it that way.
func TestVerifyAdversarialOptimizerPatterns(t *testing.T) {
	srcs := map[string]string{
		"jump into folded pair": `fn main() {
			var i = 0;
			while (1 == 1) { i = i + 1; if (i > 3) { break; } }
			print(i);
		}`,
		"infinite loop body removed": `fn main() {
			var n = 0;
			while (1) { n = n + 1; if (n >= 2) { break; } }
			print(n);
		}`,
		"constant false loop": `fn main() { while (0) { print(1); } print(2); }`,
		"short circuit loop header": `fn main() {
			var a = 0;
			while (a < 3 && 1) { a = a + 1; }
			for (var j = 0; j < 2 || 0; j = j + 1) { a = a + 10; }
			print(a);
		}`,
		"dead tail after returns": `fn f(x) {
			if (x > 0) { return 1; } else { return 2; }
			return 3;
		}
		fn main() { print(f(1), f(-1)); }`,
	}
	for name, src := range srcs {
		t.Run(name, func(t *testing.T) {
			plain, err := vm.RunSource(src, vm.Options{})
			if err != nil {
				t.Fatal(err)
			}
			cp, err := vm.Compile(src)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := cp.Optimize(); err != nil {
				t.Fatalf("differential: %v", err)
			}
			if err := VerifyProgram(cp); err != nil {
				t.Fatalf("optimized program rejected: %v", err)
			}
			opt, err := vm.RunProgram(cp, vm.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if len(plain.Output) != len(opt.Output) {
				t.Fatalf("output diverged: %v vs %v", plain.Output, opt.Output)
			}
			for i := range plain.Output {
				if plain.Output[i] != opt.Output[i] {
					t.Fatalf("output diverged: %v vs %v", plain.Output, opt.Output)
				}
			}
		})
	}
}
