package analysis

import (
	"strings"
	"testing"

	"aprof/internal/vm"
)

func lintSrc(t *testing.T, src string) []Diagnostic {
	t.Helper()
	prog, err := vm.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Lint(prog)
}

func codes(diags []Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.Code
	}
	return out
}

func wantCodes(t *testing.T, diags []Diagnostic, want ...string) {
	t.Helper()
	got := codes(diags)
	if len(got) != len(want) {
		t.Fatalf("diagnostics %v, want codes %v", diags, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("diagnostics %v, want codes %v", diags, want)
		}
	}
}

func TestLintUseBeforeDeclaration(t *testing.T) {
	diags := lintSrc(t, "fn main() {\n\tprint(x);\n\tvar x = 1;\n\tprint(x);\n}\n")
	wantCodes(t, diags, CodeUseBeforeDecl)
	d := diags[0]
	if d.Pos.Line != 2 {
		t.Errorf("diagnostic at %s, want line 2", d.Pos)
	}
	if !strings.Contains(d.Msg, "before its declaration at 3:") {
		t.Errorf("message %q does not point at the declaration", d.Msg)
	}
}

func TestLintSelfReferentialInitializer(t *testing.T) {
	diags := lintSrc(t, "fn main() { var x = x + 1; print(x); }")
	wantCodes(t, diags, CodeUseBeforeDecl)
}

func TestLintUseOutsideScope(t *testing.T) {
	diags := lintSrc(t, "fn main() {\n\tvar c = 1;\n\tif (c) { var x = 1; print(x); }\n\tx = 2;\n}\n")
	wantCodes(t, diags, CodeUseBeforeDecl)
	if !strings.Contains(diags[0].Msg, "outside the scope") {
		t.Errorf("message %q should mention scope", diags[0].Msg)
	}
}

func TestLintUnusedVariable(t *testing.T) {
	diags := lintSrc(t, "fn main() {\n\tvar used = 1;\n\tvar dead = 2;\n\tvar written = 3;\n\twritten = used;\n}\n")
	// dead is never touched again; written is assigned but never read.
	wantCodes(t, diags, CodeUnusedVar, CodeUnusedVar)
	if diags[0].Pos.Line != 3 || diags[1].Pos.Line != 4 {
		t.Errorf("diagnostics at %s and %s, want lines 3 and 4", diags[0].Pos, diags[1].Pos)
	}
}

func TestLintUnusedParamNotFlagged(t *testing.T) {
	diags := lintSrc(t, "fn f(unused) { return 1; }\nfn main() { print(f(1)); }\n")
	wantCodes(t, diags)
}

func TestLintUnusedFunction(t *testing.T) {
	diags := lintSrc(t, "fn main() { }\nfn orphan() { return 1; }\n")
	wantCodes(t, diags, CodeUnusedFunc)
	if !strings.Contains(diags[0].Msg, `"orphan"`) {
		t.Errorf("message %q does not name the function", diags[0].Msg)
	}
}

func TestLintSpawnCountsAsUse(t *testing.T) {
	diags := lintSrc(t, "fn worker() { return 0; }\nfn main() { spawn worker(); }\n")
	wantCodes(t, diags)
}

func TestLintUnreachable(t *testing.T) {
	diags := lintSrc(t, "fn main() {\n\treturn 0;\n\tprint(1);\n\tprint(2);\n}\n")
	// One report per block, at the first dead statement.
	wantCodes(t, diags, CodeUnreachable)
	if diags[0].Pos.Line != 3 {
		t.Errorf("diagnostic at %s, want line 3", diags[0].Pos)
	}
}

func TestLintUnreachableAfterIfElse(t *testing.T) {
	diags := lintSrc(t, `fn f(x) {
	if (x) { return 1; } else { return 2; }
	return 3;
}
fn main() { print(f(1)); }
`)
	wantCodes(t, diags, CodeUnreachable)
}

func TestLintUnreachableAfterBreak(t *testing.T) {
	diags := lintSrc(t, "fn main() {\n\tvar i = 0;\n\twhile (i < 9) {\n\t\tbreak;\n\t\ti = i + 1;\n\t}\n\tprint(i);\n}\n")
	wantCodes(t, diags, CodeUnreachable)
}

func TestLintConstCond(t *testing.T) {
	diags := lintSrc(t, "fn main() {\n\tif (1 + 1 == 2) { print(1); }\n\twhile (0) { print(2); }\n\tvar x = 3;\n\tif (x > 0) { print(x); }\n}\n")
	wantCodes(t, diags, CodeConstCond, CodeConstCond)
	if !strings.Contains(diags[0].Msg, "always true") || !strings.Contains(diags[1].Msg, "always false") {
		t.Errorf("messages %q / %q", diags[0].Msg, diags[1].Msg)
	}
}

func TestLintConstCondShortCircuit(t *testing.T) {
	// "0 && f()" is decided without evaluating f(); "x || 1" is not
	// constant (x is evaluated first and the result depends on reaching the
	// right side... the left side is unknown).
	diags := lintSrc(t, "fn f() { return 1; }\nfn main() {\n\tvar x = f();\n\tif (0 && f()) { print(1); }\n\tif (x || 1) { print(2); }\n}\n")
	wantCodes(t, diags, CodeConstCond)
	if diags[0].Pos.Line != 4 {
		t.Errorf("diagnostic at %s, want line 4", diags[0].Pos)
	}
}

func TestLintWrongArity(t *testing.T) {
	diags := lintSrc(t, "fn f(a, b) { return a + b; }\nfn main() {\n\tprint(f(1));\n\tspawn f(1, 2, 3);\n\tvar a = alloc(1, 2);\n\tprint(a);\n}\n")
	wantCodes(t, diags, CodeWrongArity, CodeWrongArity, CodeWrongArity)
	if !strings.Contains(diags[0].Msg, "with 1 arguments, want 2") {
		t.Errorf("message %q", diags[0].Msg)
	}
	if !strings.Contains(diags[2].Msg, `builtin "alloc"`) {
		t.Errorf("message %q should name the builtin", diags[2].Msg)
	}
}

func TestLintPrintVariadicNotFlagged(t *testing.T) {
	diags := lintSrc(t, `fn main() { print(); print(1); print("x", 1, 2, 3); }`)
	wantCodes(t, diags)
}

func TestLintGlobalsAreAlwaysInScope(t *testing.T) {
	diags := lintSrc(t, "global g = 1;\nglobal arr[4];\nfn main() { g = g + 1; arr[0] = g; print(arr[0]); }\n")
	wantCodes(t, diags)
}

func TestLintDiagnosticsSortedByPosition(t *testing.T) {
	diags := lintSrc(t, "fn main() {\n\tvar dead = 1;\n\tif (1) { print(2); }\n\tvar dead2 = 3;\n}\n")
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1].Pos, diags[i].Pos
		if a.Line > b.Line || (a.Line == b.Line && a.Col > b.Col) {
			t.Fatalf("diagnostics out of order: %v", diags)
		}
	}
}

func TestCheckCleanProgram(t *testing.T) {
	diags, err := Check("fn main() { var x = 1; print(x); }")
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("unexpected diagnostics: %v", diags)
	}
}

func TestCheckReportsCompileErrorWithDiagnostics(t *testing.T) {
	// The program lints (unused var) and also fails to compile (unknown
	// function): Check must return both.
	diags, err := Check("fn main() { var dead = 1; nosuch(); }")
	if err == nil {
		t.Fatal("Check accepted a program calling an unknown function")
	}
	wantCodes(t, diags, CodeUnusedVar)
}

func TestEvalConstDivByZeroNotConst(t *testing.T) {
	prog, err := vm.Parse("fn main() { if (1 / 0) { print(1); } }")
	if err != nil {
		t.Fatal(err)
	}
	if diags := Lint(prog); len(diags) != 0 {
		t.Errorf("division by zero folded by lint: %v", diags)
	}
}
