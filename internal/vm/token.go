// Package vm implements MiniLang, a small imperative language with threads,
// semaphores and system calls, together with a bytecode compiler and an
// instrumented interpreter. The interpreter is this repository's substitute
// for dynamic binary instrumentation: it executes programs under a
// deterministic round-robin scheduler (threads are serialized, as under
// Valgrind), counts executed basic blocks as the cost metric, and emits the
// exact event vocabulary the profiler consumes — call, return, read, write,
// userToKernel, kernelToUser and switchThread — for every heap access,
// function call and system call the program performs.
//
// Only heap cells (created by alloc, global declarations and global arrays)
// are traced memory; locals and parameters live in virtual registers,
// mirroring how register-allocated values escape memory tracing under real
// instrumentation.
package vm

import "fmt"

// TokenKind enumerates MiniLang token types.
type TokenKind uint8

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokString

	// Keywords.
	TokFn
	TokVar
	TokGlobal
	TokIf
	TokElse
	TokWhile
	TokFor
	TokReturn
	TokSpawn
	TokBreak
	TokContinue

	// Punctuation and operators.
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokComma
	TokSemicolon
	TokAssign
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent
	TokEq
	TokNe
	TokLt
	TokLe
	TokGt
	TokGe
	TokAndAnd
	TokOrOr
	TokBang
)

var tokenNames = map[TokenKind]string{
	TokEOF:       "end of file",
	TokIdent:     "identifier",
	TokNumber:    "number",
	TokString:    "string",
	TokFn:        "'fn'",
	TokVar:       "'var'",
	TokGlobal:    "'global'",
	TokIf:        "'if'",
	TokElse:      "'else'",
	TokWhile:     "'while'",
	TokFor:       "'for'",
	TokReturn:    "'return'",
	TokSpawn:     "'spawn'",
	TokBreak:     "'break'",
	TokContinue:  "'continue'",
	TokLParen:    "'('",
	TokRParen:    "')'",
	TokLBrace:    "'{'",
	TokRBrace:    "'}'",
	TokLBracket:  "'['",
	TokRBracket:  "']'",
	TokComma:     "','",
	TokSemicolon: "';'",
	TokAssign:    "'='",
	TokPlus:      "'+'",
	TokMinus:     "'-'",
	TokStar:      "'*'",
	TokSlash:     "'/'",
	TokPercent:   "'%'",
	TokEq:        "'=='",
	TokNe:        "'!='",
	TokLt:        "'<'",
	TokLe:        "'<='",
	TokGt:        "'>'",
	TokGe:        "'>='",
	TokAndAnd:    "'&&'",
	TokOrOr:      "'||'",
	TokBang:      "'!'",
}

// String returns a human-readable token kind name.
func (k TokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", uint8(k))
}

var keywords = map[string]TokenKind{
	"fn":       TokFn,
	"var":      TokVar,
	"global":   TokGlobal,
	"if":       TokIf,
	"else":     TokElse,
	"while":    TokWhile,
	"for":      TokFor,
	"return":   TokReturn,
	"spawn":    TokSpawn,
	"break":    TokBreak,
	"continue": TokContinue,
}

// Pos is a source position.
type Pos struct {
	Line int
	Col  int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind TokenKind
	// Text is the raw source text of identifiers, numbers and strings.
	Text string
	// Value is the parsed value of number tokens.
	Value int64
	Pos   Pos
}

// SyntaxError is a lexing or parsing error with a source position.
type SyntaxError struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("minilang: %s: %s", e.Pos, e.Msg)
}

func errAt(pos Pos, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
