package vm_test

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"aprof/internal/vm"
	"aprof/internal/vm/analysis"
)

// loadCorpus reads testdata/*.ml; each file declares its expected output in
// leading "// expect: <line>" comments.
func loadCorpus(t *testing.T) map[string]struct {
	src  string
	want []string
} {
	t.Helper()
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]struct {
		src  string
		want []string
	})
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".ml") {
			continue
		}
		data, err := os.ReadFile(filepath.Join("testdata", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		src := string(data)
		var want []string
		for _, line := range strings.Split(src, "\n") {
			if rest, ok := strings.CutPrefix(line, "// expect: "); ok {
				want = append(want, rest)
			}
		}
		if len(want) == 0 {
			t.Fatalf("%s has no // expect: header", e.Name())
		}
		out[e.Name()] = struct {
			src  string
			want []string
		}{src, want}
	}
	if len(out) < 5 {
		t.Fatalf("corpus unexpectedly small: %d programs", len(out))
	}
	return out
}

// TestCorpus runs every corpus program plain, optimized, and formatted,
// requiring identical expected output each way.
func TestCorpus(t *testing.T) {
	for name, prog := range loadCorpus(t) {
		name, prog := name, prog
		t.Run(name, func(t *testing.T) {
			variants := map[string]func() (*vm.Result, error){
				"plain": func() (*vm.Result, error) { return vm.RunSource(prog.src, vm.Options{}) },
				"optimized": func() (*vm.Result, error) {
					return vm.RunSource(prog.src, vm.Options{Optimize: true})
				},
				"formatted": func() (*vm.Result, error) {
					formatted, err := vm.Format(prog.src)
					if err != nil {
						return nil, err
					}
					return vm.RunSource(formatted, vm.Options{})
				},
				"quantum1": func() (*vm.Result, error) {
					return vm.RunSource(prog.src, vm.Options{Quantum: 1})
				},
			}
			for vname, run := range variants {
				res, err := run()
				if err != nil {
					t.Fatalf("%s: %v", vname, err)
				}
				if !reflect.DeepEqual(res.Output, prog.want) {
					t.Errorf("%s: output %q, want %q", vname, res.Output, prog.want)
				}
				if err := res.Trace.Validate(); err != nil {
					t.Errorf("%s: invalid trace: %v", vname, err)
				}
			}
		})
	}
}

// TestCorpusVerifies is the static-analysis invariant over the corpus:
// compile → verify → optimize → verify → run. Every corpus program must
// pass the bytecode verifier both before and after optimization, lint
// clean, and still run to its expected output from the explicitly
// re-verified program.
func TestCorpusVerifies(t *testing.T) {
	for name, prog := range loadCorpus(t) {
		name, prog := name, prog
		t.Run(name, func(t *testing.T) {
			cp, err := vm.Compile(prog.src)
			if err != nil {
				t.Fatal(err)
			}
			if err := analysis.VerifyProgram(cp); err != nil {
				t.Fatalf("verify after compile: %v", err)
			}
			if _, err := cp.Optimize(); err != nil {
				t.Fatalf("optimize: %v", err)
			}
			if err := analysis.VerifyProgram(cp); err != nil {
				t.Fatalf("verify after optimize: %v", err)
			}
			res, err := vm.RunProgram(cp, vm.Options{})
			if err != nil {
				t.Fatalf("run verified program: %v", err)
			}
			if !reflect.DeepEqual(res.Output, prog.want) {
				t.Errorf("output %q, want %q", res.Output, prog.want)
			}
			// The curated corpus is also expected to lint clean.
			parsed, err := vm.Parse(prog.src)
			if err != nil {
				t.Fatal(err)
			}
			if diags := analysis.Lint(parsed); len(diags) != 0 {
				t.Errorf("lint findings on curated corpus: %v", diags)
			}
		})
	}
}

// TestCorpusDisassembles ensures every corpus program has a printable
// disassembly (exercises the Disassemble path over real programs).
func TestCorpusDisassembles(t *testing.T) {
	for name, prog := range loadCorpus(t) {
		cp, err := vm.Compile(prog.src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, fn := range cp.Funcs {
			if dis := fn.Disassemble(cp); !strings.Contains(dis, "fn "+fn.Name) {
				t.Errorf("%s: disassembly of %s malformed", name, fn.Name)
			}
		}
	}
}
