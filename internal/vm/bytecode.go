package vm

import (
	"fmt"
	"strings"
)

// Op is a bytecode opcode. The VM is a stack machine: operands are popped
// from and results pushed to a per-frame evaluation stack.
type Op uint8

// Opcodes.
const (
	// OpConst pushes constants[A].
	OpConst Op = iota
	// OpLoadLocal pushes locals[A].
	OpLoadLocal
	// OpStoreLocal pops into locals[A].
	OpStoreLocal
	// OpLoadMem pops an address and pushes heap[addr] (a traced read).
	OpLoadMem
	// OpStoreMem pops value then address and stores heap[addr] = value (a
	// traced write).
	OpStoreMem
	// Arithmetic and logic: pop two (or one for OpNeg/OpNot), push one.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpNeg
	OpNot
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	// OpJump sets pc = A.
	OpJump
	// OpJumpIfZero pops; if zero, pc = A.
	OpJumpIfZero
	// OpJumpIfNonZero pops; if non-zero, pc = A. (Short-circuit ||.)
	OpJumpIfNonZero
	// OpCall calls funcs[A], popping its arguments.
	OpCall
	// OpSpawn starts a thread running funcs[A], popping its arguments.
	OpSpawn
	// OpReturn pops the return value and returns from the current frame.
	OpReturn
	// OpPop discards the top of stack.
	OpPop
	// OpAlloc pops n and pushes the base address of n freshly allocated
	// heap cells.
	OpAlloc
	// OpSemNew pops the initial value and pushes a new semaphore id.
	OpSemNew
	// OpSemWait pops a semaphore id and performs wait() (may block).
	OpSemWait
	// OpSemSignal pops a semaphore id and performs signal().
	OpSemSignal
	// OpSysRead pops n then base: the kernel fills heap[base..base+n) with
	// external data (kernelToUser event). Pushes n.
	OpSysRead
	// OpSysWrite pops n then base: the kernel reads heap[base..base+n)
	// (userToKernel event). Pushes n.
	OpSysWrite
	// OpPrint pops A values and prints them (with the string-pool format
	// prefix B, if B >= 0). Pushes 0.
	OpPrint
	// OpAssert pops a value and aborts the run with a runtime error when it
	// is zero. Pushes 0.
	OpAssert
	// OpRand pops n and pushes a deterministic pseudo-random value in
	// [0, n) drawn from the VM's seeded generator.
	OpRand
)

var opNames = [...]string{
	OpConst:         "const",
	OpLoadLocal:     "loadlocal",
	OpStoreLocal:    "storelocal",
	OpLoadMem:       "loadmem",
	OpStoreMem:      "storemem",
	OpAdd:           "add",
	OpSub:           "sub",
	OpMul:           "mul",
	OpDiv:           "div",
	OpMod:           "mod",
	OpNeg:           "neg",
	OpNot:           "not",
	OpEq:            "eq",
	OpNe:            "ne",
	OpLt:            "lt",
	OpLe:            "le",
	OpGt:            "gt",
	OpGe:            "ge",
	OpJump:          "jump",
	OpJumpIfZero:    "jz",
	OpJumpIfNonZero: "jnz",
	OpCall:          "call",
	OpSpawn:         "spawn",
	OpReturn:        "return",
	OpPop:           "pop",
	OpAlloc:         "alloc",
	OpSemNew:        "semnew",
	OpSemWait:       "wait",
	OpSemSignal:     "signal",
	OpSysRead:       "sysread",
	OpSysWrite:      "syswrite",
	OpPrint:         "print",
	OpAssert:        "assert",
	OpRand:          "rand",
}

// String returns the mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// NumOps returns the number of defined opcodes. Cross-check tests iterate
// [0, NumOps()) to prove that every independently maintained per-opcode
// table (the verifier's stack effects, the analysis effect table) covers
// exactly the opcode set the interpreter executes.
func NumOps() int { return len(opNames) }

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return int(o) < len(opNames) }

// Instr is one bytecode instruction. A and B are operand fields whose
// meaning depends on the opcode.
type Instr struct {
	Op   Op
	A    int32
	B    int32
	Line int32 // source line, for runtime errors
	Col  int32 // source column, for positioned bytecode-level diagnostics
}

// Func is a compiled function.
type Func struct {
	Name      string
	NumParams int
	NumLocals int
	Code      []Instr
	// BlockStart[pc] reports whether pc is a basic-block leader; the
	// interpreter increments the executed-basic-block counter whenever it
	// enters a leader, and the scheduler may switch threads there.
	BlockStart []bool
	// NumBlocks is the number of basic blocks in the function.
	NumBlocks int
}

// CompiledProgram is a fully compiled MiniLang program, ready to run.
type CompiledProgram struct {
	Funcs      []*Func
	FuncByName map[string]int
	Constants  []int64
	Strings    []string
	// GlobalBase maps global names to their fixed heap addresses; GlobalEnd
	// is the first free heap address after the globals.
	GlobalBase map[string]int64
	GlobalEnd  int64
	// GlobalInit holds (address, value) pairs stored before main runs.
	GlobalInit [][2]int64
}

// Disassemble renders a function's bytecode for debugging and golden tests.
func (f *Func) Disassemble(cp *CompiledProgram) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "fn %s (params=%d locals=%d blocks=%d)\n", f.Name, f.NumParams, f.NumLocals, f.NumBlocks)
	for pc, ins := range f.Code {
		marker := " "
		if f.BlockStart[pc] {
			marker = "*"
		}
		fmt.Fprintf(&sb, "%s %4d  %-10s", marker, pc, ins.Op)
		switch ins.Op {
		case OpConst:
			fmt.Fprintf(&sb, " %d", cp.Constants[ins.A])
		case OpLoadLocal, OpStoreLocal, OpJump, OpJumpIfZero, OpJumpIfNonZero:
			fmt.Fprintf(&sb, " %d", ins.A)
		case OpCall, OpSpawn:
			fmt.Fprintf(&sb, " %s", cp.Funcs[ins.A].Name)
		case OpPrint:
			fmt.Fprintf(&sb, " argc=%d", ins.A)
			if ins.B >= 0 {
				fmt.Fprintf(&sb, " fmt=%q", cp.Strings[ins.B])
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// MarkBlocks computes basic-block leaders: the entry point, every jump
// target, and every instruction following a control transfer (jumps, calls,
// spawns, returns and potentially-blocking semaphore waits — call and block
// boundaries are where the scheduler may switch threads, mirroring
// Valgrind's superblock boundaries). The compiler and optimizer call it on
// every function they produce; it is exported so cross-check tests can
// compare it against independently maintained per-opcode tables.
func (f *Func) MarkBlocks() {
	f.BlockStart = make([]bool, len(f.Code))
	if len(f.Code) == 0 {
		return
	}
	f.BlockStart[0] = true
	for pc, ins := range f.Code {
		switch ins.Op {
		case OpJump, OpJumpIfZero, OpJumpIfNonZero:
			if int(ins.A) < len(f.Code) {
				f.BlockStart[ins.A] = true
			}
			if pc+1 < len(f.Code) {
				f.BlockStart[pc+1] = true
			}
		case OpCall, OpSpawn, OpReturn, OpSemWait, OpSemSignal:
			if pc+1 < len(f.Code) {
				f.BlockStart[pc+1] = true
			}
		}
	}
	for _, b := range f.BlockStart {
		if b {
			f.NumBlocks++
		}
	}
}
