package vm

import (
	"strings"
	"testing"
)

func TestBreakExitsLoop(t *testing.T) {
	res := run(t, `
fn main() {
	var s = 0;
	for (var i = 0; i < 100; i = i + 1) {
		if (i == 5) { break; }
		s = s + i;
	}
	print(s);
	var j = 0;
	while (1) {
		j = j + 1;
		if (j >= 7) { break; }
	}
	print(j);
}`)
	wantOutput(t, res, "10", "7")
}

func TestContinueSkipsIteration(t *testing.T) {
	res := run(t, `
fn main() {
	var s = 0;
	for (var i = 0; i < 10; i = i + 1) {
		if (i % 2 == 1) { continue; }
		s = s + i;
	}
	print(s);
	var j = 0;
	var odd = 0;
	while (j < 10) {
		j = j + 1;
		if (j % 2 == 0) { continue; }
		odd = odd + j;
	}
	print(odd);
}`)
	wantOutput(t, res, "20", "25")
}

func TestNestedLoopBreakBindsInnermost(t *testing.T) {
	res := run(t, `
fn main() {
	var count = 0;
	for (var i = 0; i < 4; i = i + 1) {
		for (var j = 0; j < 100; j = j + 1) {
			if (j == 2) { break; }
			count = count + 1;
		}
	}
	print(count);
}`)
	wantOutput(t, res, "8")
}

func TestContinueInForRunsPost(t *testing.T) {
	// If continue skipped the post statement, this would loop forever (and
	// trip the step limit).
	res, err := RunSource(`
fn main() {
	var hits = 0;
	for (var i = 0; i < 5; i = i + 1) {
		if (i == 1) { continue; }
		hits = hits + 1;
	}
	print(hits);
}`, Options{MaxSteps: 100000})
	if err != nil {
		t.Fatal(err)
	}
	wantOutput(t, res, "4")
}

func TestBreakOutsideLoopRejected(t *testing.T) {
	for _, src := range []string{
		`fn main() { break; }`,
		`fn main() { continue; }`,
		`fn main() { if (1) { break; } }`,
	} {
		if _, err := Compile(src); err == nil || !strings.Contains(err.Error(), "outside a loop") {
			t.Errorf("Compile(%q) err = %v, want outside-a-loop error", src, err)
		}
	}
}

func TestBreakContinueSurviveOptimizer(t *testing.T) {
	src := `
fn main() {
	var s = 0;
	for (var i = 0; i < 50; i = i + 1) {
		if (i % 3 == 0) { continue; }
		if (i > 20) { break; }
		s = s + i;
	}
	print(s);
}`
	plain, err := RunSource(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := RunSource(src, Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Output[0] != opt.Output[0] {
		t.Errorf("optimizer changed result: %v vs %v", plain.Output, opt.Output)
	}
}

func TestAssert(t *testing.T) {
	res := run(t, `
fn main() {
	assert(1);
	assert(2 + 2 == 4);
	print("passed");
}`)
	wantOutput(t, res, "passed")

	_, err := RunSource(`fn main() { assert(1 == 2); }`, Options{})
	if err == nil || !strings.Contains(err.Error(), "assertion failed") {
		t.Errorf("err = %v, want assertion failure", err)
	}
}

func TestRandDeterministicAndBounded(t *testing.T) {
	src := `
fn main() {
	var seen_oob = 0;
	var sum = 0;
	for (var i = 0; i < 1000; i = i + 1) {
		var v = rand(10);
		if (v < 0 || v >= 10) { seen_oob = 1; }
		sum = sum + v;
	}
	print(seen_oob, sum);
}`
	a, err := RunSource(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSource(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Output[0] != b.Output[0] {
		t.Errorf("rand not deterministic: %v vs %v", a.Output, b.Output)
	}
	if !strings.HasPrefix(a.Output[0], "0 ") {
		t.Errorf("rand out of bounds: %v", a.Output)
	}
	// The sum of 1000 draws from [0,10) concentrates around 4500; a
	// degenerate generator (all zeros / all nines) would be far away.
	var sum int
	if _, err := fmtSscanf(a.Output[0], &sum); err != nil {
		t.Fatal(err)
	}
	if sum < 3500 || sum > 5500 {
		t.Errorf("rand sum = %d, not plausibly uniform", sum)
	}

	if _, err := RunSource(`fn main() { rand(0); }`, Options{}); err == nil {
		t.Error("rand(0) accepted")
	}
}

// fmtSscanf extracts the second field of "0 <sum>".
func fmtSscanf(s string, sum *int) (int, error) {
	fields := strings.Fields(s)
	if len(fields) != 2 {
		return 0, nil
	}
	n := 0
	for _, c := range fields[1] {
		n = n*10 + int(c-'0')
	}
	*sum = n
	return 1, nil
}
