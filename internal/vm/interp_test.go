package vm

import (
	"strings"
	"testing"

	"aprof/internal/trace"
)

func run(t *testing.T, src string) *Result {
	t.Helper()
	res, err := RunSource(src, Options{})
	if err != nil {
		t.Fatalf("RunSource: %v", err)
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatalf("emitted trace invalid: %v", err)
	}
	return res
}

func wantOutput(t *testing.T, res *Result, want ...string) {
	t.Helper()
	if len(res.Output) != len(want) {
		t.Fatalf("output = %q, want %q", res.Output, want)
	}
	for i := range want {
		if res.Output[i] != want[i] {
			t.Errorf("output[%d] = %q, want %q", i, res.Output[i], want[i])
		}
	}
}

func TestArithmetic(t *testing.T) {
	res := run(t, `
fn main() {
	print(1 + 2 * 3);
	print(10 / 3, 10 % 3);
	print(-(4 - 9));
	print(!0, !5);
	print(1 < 2, 2 <= 2, 3 > 4, 4 >= 4, 1 == 1, 1 != 1);
}`)
	wantOutput(t, res, "7", "3 1", "5", "1 0", "1 1 0 1 1 0")
}

func TestShortCircuit(t *testing.T) {
	// If && and || were not short-circuiting, the division by zero in the
	// right operand would abort the run.
	res := run(t, `
fn boom() { return 1 / 0; }
fn main() {
	print(0 && boom());
	print(1 || boom());
	print(1 && 2, 0 || 0);
}`)
	wantOutput(t, res, "0", "1", "1 0")
}

func TestControlFlow(t *testing.T) {
	res := run(t, `
fn main() {
	var total = 0;
	for (var i = 1; i <= 10; i = i + 1) {
		if (i % 2 == 0) {
			total = total + i;
		}
	}
	var j = 3;
	while (j > 0) {
		total = total * 2;
		j = j - 1;
	}
	print(total);
}`)
	wantOutput(t, res, "240") // (2+4+6+8+10)=30, *8
}

func TestFunctionsAndRecursion(t *testing.T) {
	res := run(t, `
fn fib(n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
fn main() { print(fib(15)); }`)
	wantOutput(t, res, "610")
}

func TestGlobalsAndArrays(t *testing.T) {
	res := run(t, `
global counter = 10;
global table[8];
fn main() {
	counter = counter + 5;
	for (var i = 0; i < 8; i = i + 1) {
		table[i] = i * i;
	}
	print(counter, table[3], table[7]);
}`)
	wantOutput(t, res, "15 9 49")
}

func TestAllocAndIndexing(t *testing.T) {
	res := run(t, `
fn sum(arr, n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) {
		s = s + arr[i];
	}
	return s;
}
fn main() {
	var a = alloc(16);
	for (var i = 0; i < 16; i = i + 1) {
		a[i] = i;
	}
	print(sum(a, 16));
}`)
	wantOutput(t, res, "120")
}

func TestPrintFormats(t *testing.T) {
	res := run(t, `
fn main() {
	print("result:", 42);
	print("no args");
	print(1, 2, 3);
}`)
	wantOutput(t, res, "result: 42", "no args", "1 2 3")
}

func TestSysReadProvidesFreshData(t *testing.T) {
	res := run(t, `
fn main() {
	var b = alloc(4);
	sysread(b, 4);
	print(b[0], b[1], b[2], b[3]);
	sysread(b, 2);
	print(b[0], b[1], b[2], b[3]);
}`)
	// The external stream is the sequence 1,2,3,...
	wantOutput(t, res, "1 2 3 4", "5 6 3 4")
}

func TestThreadsAndSemaphores(t *testing.T) {
	res := run(t, `
global cell = 0;
global done = 0;
fn worker(id, items) {
	for (var i = 0; i < items; i = i + 1) {
		wait(empty);
		cell = id * 100 + i;
		signal(full);
	}
	wait(mutex);
	done = done + 1;
	signal(mutex);
}
global empty = 0;
global full = 0;
global mutex = 0;
fn main() {
	empty = sem(1);
	full = sem(0);
	mutex = sem(1);
	spawn worker(1, 3);
	var got = 0;
	for (var i = 0; i < 3; i = i + 1) {
		wait(full);
		got = got + cell;
		signal(empty);
	}
	print(got);
}`)
	// Values 100, 101, 102 in order.
	wantOutput(t, res, "303")
	if res.Threads != 2 {
		t.Errorf("Threads = %d, want 2", res.Threads)
	}
}

func TestSpawnManyThreads(t *testing.T) {
	res := run(t, `
global acc[1];
global mutex = 0;
fn inc(n) {
	for (var i = 0; i < n; i = i + 1) {
		wait(mutex);
		acc[0] = acc[0] + 1;
		signal(mutex);
	}
}
fn main() {
	mutex = sem(1);
	spawn inc(10);
	spawn inc(10);
	spawn inc(10);
	inc(10);
	// Busy-wait until all increments have landed. The scheduler is
	// round-robin, so this terminates.
	while (acc[0] < 40) {
	}
	print(acc[0]);
}`)
	wantOutput(t, res, "40")
	if res.Threads != 4 {
		t.Errorf("Threads = %d, want 4", res.Threads)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"div zero", `fn main() { print(1 / 0); }`, "division by zero"},
		{"mod zero", `fn main() { print(1 % 0); }`, "division by zero"},
		{"oob", `fn main() { var a = alloc(2); print(a[5]); }`, "invalid memory access"},
		{"null", `fn main() { var p = 0; print(p[0]); }`, "invalid memory access"},
		{"negative alloc", `fn main() { var a = alloc(0 - 3); }`, "non-positive"},
		{"bad sem", `fn main() { wait(42); }`, "invalid semaphore"},
		{"deadlock", `fn main() { var s = sem(0); wait(s); }`, "deadlock"},
		{"depth", `fn f() { return f(); } fn main() { f(); }`, "stack overflow"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := RunSource(tc.src, Options{})
			if err == nil {
				t.Fatal("run succeeded, want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestStepLimit(t *testing.T) {
	_, err := RunSource(`fn main() { while (1) {} }`, Options{MaxSteps: 10000})
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Errorf("err = %v, want step limit error", err)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"no main", `fn f() {}`, "no 'main'"},
		{"main with params", `fn main(x) {}`, "no parameters"},
		{"dup function", `fn f() {} fn f() {} fn main() {}`, "redeclared"},
		{"dup global", `global g = 1; global g = 2; fn main() {}`, "redeclared"},
		{"builtin shadow", `fn alloc(n) {} fn main() {}`, "shadows a builtin"},
		{"undeclared var", `fn main() { x = 1; }`, "undeclared"},
		{"unknown fn", `fn main() { nope(); }`, "unknown function"},
		{"arity", `fn f(a) {} fn main() { f(); }`, "want 1"},
		{"builtin arity", `fn main() { alloc(1, 2); }`, "want 1"},
		{"spawn unknown", `fn main() { spawn nope(); }`, "unknown function"},
		{"assign array global", `global a[4]; fn main() { a = 3; }`, "cannot assign to array global"},
		{"string outside print", `fn main() { var x = "no"; }`, "only allowed"},
		{"string mid print", `fn main() { print(1, "no"); }`, "first argument"},
		{"dup local", `fn main() { var x = 1; var x = 2; }`, "redeclared"},
		{"dup param", `fn f(a, a) {} fn main() {}`, "redeclared"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile(tc.src)
			if err == nil {
				t.Fatal("Compile succeeded, want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestBlockScoping(t *testing.T) {
	res := run(t, `
fn main() {
	var x = 1;
	{
		var y = 10;
		x = x + y;
	}
	{
		var y = 100;
		x = x + y;
	}
	print(x);
}`)
	wantOutput(t, res, "111")
}

func TestTraceEventsForHeapAccesses(t *testing.T) {
	res := run(t, `
global g = 0;
fn main() {
	g = 5;        // one write
	var x = g;    // one read
	var a = alloc(3);
	a[0] = x;     // one write
	sysread(a, 3);
	syswrite(a, 2);
	print(a[0]);  // one read
}`)
	var reads, writes, k2u, u2k, calls, rets int
	for _, ev := range res.Trace.Events {
		switch ev.Kind {
		case trace.KindRead:
			reads++
		case trace.KindWrite:
			writes++
		case trace.KindKernelToUser:
			k2u++
		case trace.KindUserToKernel:
			u2k++
		case trace.KindCall:
			calls++
		case trace.KindReturn:
			rets++
		}
	}
	if reads != 2 || writes != 2 {
		t.Errorf("reads=%d writes=%d, want 2 and 2", reads, writes)
	}
	if k2u != 1 || u2k != 1 {
		t.Errorf("kernelToUser=%d userToKernel=%d, want 1 and 1", k2u, u2k)
	}
	if calls != 1 || rets != 1 {
		t.Errorf("calls=%d returns=%d, want 1 and 1 (only main)", calls, rets)
	}
}

func TestBasicBlockCounting(t *testing.T) {
	// A loop body executes once per iteration; doubling the trip count
	// should roughly double the executed basic blocks.
	src := func(n int) string {
		return `
fn main() {
	var s = 0;
	for (var i = 0; i < ` + itoa(n) + `; i = i + 1) {
		s = s + i;
	}
	print(s);
}`
	}
	small, err := RunSource(src(100), Options{})
	if err != nil {
		t.Fatal(err)
	}
	large, err := RunSource(src(200), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(large.BasicBlocks) / float64(small.BasicBlocks)
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("bb ratio = %.2f (%d vs %d), want ~2", ratio, large.BasicBlocks, small.BasicBlocks)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func TestDeterminism(t *testing.T) {
	src := `
global c = 0;
global s = 0;
fn w(n) {
	for (var i = 0; i < n; i = i + 1) {
		wait(s);
		c = c + i;
		signal(s);
	}
}
fn main() {
	s = sem(1);
	spawn w(50);
	spawn w(50);
	w(50);
	print(c);
}`
	a, err := RunSource(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSource(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Trace.Events) != len(b.Trace.Events) {
		t.Fatalf("runs differ in length: %d vs %d", len(a.Trace.Events), len(b.Trace.Events))
	}
	for i := range a.Trace.Events {
		if a.Trace.Events[i] != b.Trace.Events[i] {
			t.Fatalf("runs diverge at event %d: %v vs %v", i, a.Trace.Events[i], b.Trace.Events[i])
		}
	}
}

func TestQuantumChangesInterleavingNotResults(t *testing.T) {
	src := `
global acc[1];
global mutex = 0;
fn inc(n) {
	for (var i = 0; i < n; i = i + 1) {
		wait(mutex);
		acc[0] = acc[0] + 1;
		signal(mutex);
	}
}
fn main() {
	mutex = sem(1);
	spawn inc(20);
	inc(20);
	while (acc[0] < 40) {
	}
	print(acc[0]);
}`
	for _, q := range []int{1, 3, 10, 1000} {
		res, err := RunSource(src, Options{Quantum: q})
		if err != nil {
			t.Fatalf("quantum %d: %v", q, err)
		}
		if len(res.Output) != 1 || res.Output[0] != "40" {
			t.Errorf("quantum %d: output %v, want [40]", q, res.Output)
		}
	}
}

func TestDisassemble(t *testing.T) {
	cp, err := Compile(`fn main() { var x = 1; if (x) { print(x); } }`)
	if err != nil {
		t.Fatal(err)
	}
	dis := cp.Funcs[cp.FuncByName["main"]].Disassemble(cp)
	for _, want := range []string{"fn main", "const", "jz", "print"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}
