package vm

import (
	"strconv"
	"strings"
	"unicode"
)

// lexer tokenizes MiniLang source.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

// Lex tokenizes the whole source, returning the token stream terminated by a
// TokEOF token.
func Lex(src string) ([]Token, error) {
	lx := &lexer{src: src, line: 1, col: 1}
	var out []Token
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, tok)
		if tok.Kind == TokEOF {
			return out, nil
		}
	}
}

func (lx *lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *lexer) skipSpaceAndComments() error {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			for {
				if lx.off >= len(lx.src) {
					return errAt(start, "unterminated block comment")
				}
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					break
				}
				lx.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (lx *lexer) next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := lx.peek()
	switch {
	case isIdentStart(c):
		var sb strings.Builder
		for lx.off < len(lx.src) && isIdentPart(lx.peek()) {
			sb.WriteByte(lx.advance())
		}
		text := sb.String()
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: pos}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: pos}, nil
	case unicode.IsDigit(rune(c)):
		var sb strings.Builder
		for lx.off < len(lx.src) && (isIdentPart(lx.peek())) {
			sb.WriteByte(lx.advance())
		}
		text := sb.String()
		v, err := strconv.ParseInt(text, 0, 64)
		if err != nil {
			return Token{}, errAt(pos, "malformed number %q", text)
		}
		return Token{Kind: TokNumber, Text: text, Value: v, Pos: pos}, nil
	case c == '"':
		lx.advance()
		var sb strings.Builder
		for {
			if lx.off >= len(lx.src) {
				return Token{}, errAt(pos, "unterminated string literal")
			}
			ch := lx.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' {
				if lx.off >= len(lx.src) {
					return Token{}, errAt(pos, "unterminated escape sequence")
				}
				esc := lx.advance()
				switch esc {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case 'r':
					sb.WriteByte('\r')
				case '"':
					sb.WriteByte('"')
				case '\\':
					sb.WriteByte('\\')
				case 'x':
					// \xNN: an arbitrary byte, the escape the printer uses
					// for non-printable characters.
					if lx.off+2 > len(lx.src) {
						return Token{}, errAt(pos, "unterminated \\x escape")
					}
					hi := unhex(lx.advance())
					lo := unhex(lx.advance())
					if hi < 0 || lo < 0 {
						return Token{}, errAt(pos, "malformed \\x escape")
					}
					sb.WriteByte(byte(hi<<4 | lo))
				default:
					return Token{}, errAt(pos, "unknown escape \\%c", esc)
				}
				continue
			}
			sb.WriteByte(ch)
		}
		return Token{Kind: TokString, Text: sb.String(), Pos: pos}, nil
	}

	lx.advance()
	two := func(second byte, ifTwo, ifOne TokenKind) Token {
		if lx.peek() == second {
			lx.advance()
			return Token{Kind: ifTwo, Pos: pos}
		}
		return Token{Kind: ifOne, Pos: pos}
	}
	switch c {
	case '(':
		return Token{Kind: TokLParen, Pos: pos}, nil
	case ')':
		return Token{Kind: TokRParen, Pos: pos}, nil
	case '{':
		return Token{Kind: TokLBrace, Pos: pos}, nil
	case '}':
		return Token{Kind: TokRBrace, Pos: pos}, nil
	case '[':
		return Token{Kind: TokLBracket, Pos: pos}, nil
	case ']':
		return Token{Kind: TokRBracket, Pos: pos}, nil
	case ',':
		return Token{Kind: TokComma, Pos: pos}, nil
	case ';':
		return Token{Kind: TokSemicolon, Pos: pos}, nil
	case '+':
		return Token{Kind: TokPlus, Pos: pos}, nil
	case '-':
		return Token{Kind: TokMinus, Pos: pos}, nil
	case '*':
		return Token{Kind: TokStar, Pos: pos}, nil
	case '/':
		return Token{Kind: TokSlash, Pos: pos}, nil
	case '%':
		return Token{Kind: TokPercent, Pos: pos}, nil
	case '=':
		return two('=', TokEq, TokAssign), nil
	case '!':
		return two('=', TokNe, TokBang), nil
	case '<':
		return two('=', TokLe, TokLt), nil
	case '>':
		return two('=', TokGe, TokGt), nil
	case '&':
		if lx.peek() == '&' {
			lx.advance()
			return Token{Kind: TokAndAnd, Pos: pos}, nil
		}
		return Token{}, errAt(pos, "unexpected character '&'")
	case '|':
		if lx.peek() == '|' {
			lx.advance()
			return Token{Kind: TokOrOr, Pos: pos}, nil
		}
		return Token{}, errAt(pos, "unexpected character '|'")
	}
	return Token{}, errAt(pos, "unexpected character %q", string(c))
}

// unhex decodes one hex digit, returning -1 on a non-hex byte.
func unhex(c byte) int {
	switch {
	case '0' <= c && c <= '9':
		return int(c - '0')
	case 'a' <= c && c <= 'f':
		return int(c-'a') + 10
	case 'A' <= c && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}
