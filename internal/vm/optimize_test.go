package vm

import (
	"reflect"
	"strings"
	"testing"
)

// optimizerPrograms is a battery of programs whose observable behaviour
// (printed output and traced memory events) must be identical with and
// without optimization.
var optimizerPrograms = []struct {
	name string
	src  string
}{
	{"constants", `
fn main() {
	print(1 + 2 * 3 - 4 / 2);
	print(-(3 - 5), !0, !(2 > 1));
	print((1 + 2) * (3 + 4) % 5);
}`},
	{"const branches", `
fn main() {
	if (1) { print(10); } else { print(20); }
	if (0) { print(30); } else { print(40); }
	if (2 > 3) { print(50); }
	while (0) { print(60); }
	print(99);
}`},
	{"loops and calls", `
fn sq(x) { return x * x; }
fn main() {
	var total = 0;
	for (var i = 0; i < 10; i = i + 1) {
		total = total + sq(i) + 2 * 3;
	}
	print(total);
}`},
	{"memory and io", `
global g = 7;
fn main() {
	var a = alloc(8);
	for (var i = 0; i < 8; i = i + 1) {
		a[i] = i * (2 + 3);
	}
	sysread(a, 4);
	syswrite(a, 2);
	g = g + 1 * 1;
	print(g, a[0], a[7]);
}`},
	{"threads", `
global cell = 0;
fn worker(n, s, d) {
	for (var i = 0; i < n; i = i + 1) {
		wait(s);
		cell = cell + 1 + 0;
		signal(s);
	}
	signal(d);
}
fn main() {
	var s = sem(1);
	var d = sem(0);
	spawn worker(5, s, d);
	spawn worker(5, s, d);
	wait(d);
	wait(d);
	print(cell);
}`},
	{"short circuit", `
fn boom() { return 1 / 0; }
fn main() {
	print(0 && boom());
	print(1 || boom());
	print(1 && 1 && 0 || 1);
}`},
}

func TestOptimizePreservesSemantics(t *testing.T) {
	for _, tc := range optimizerPrograms {
		t.Run(tc.name, func(t *testing.T) {
			plain, err := RunSource(tc.src, Options{})
			if err != nil {
				t.Fatalf("unoptimized: %v", err)
			}
			opt, err := RunSource(tc.src, Options{Optimize: true})
			if err != nil {
				t.Fatalf("optimized: %v", err)
			}
			if !reflect.DeepEqual(plain.Output, opt.Output) {
				t.Errorf("output changed: %v vs %v", plain.Output, opt.Output)
			}
			// The traced memory/kernel/sync event sequences must be
			// identical (only pure register computation may be folded).
			filter := func(res *Result) []string {
				var out []string
				for _, ev := range res.Trace.Events {
					if ev.IsMemory() {
						out = append(out, ev.Kind.String()+":"+itoa(int(ev.Addr))+"+"+itoa(int(ev.Size)))
					}
				}
				return out
			}
			if !reflect.DeepEqual(filter(plain), filter(opt)) {
				t.Error("traced memory events changed under optimization")
			}
			if opt.Steps > plain.Steps {
				t.Errorf("optimization increased steps: %d -> %d", plain.Steps, opt.Steps)
			}
		})
	}
}

func TestOptimizeFoldsConstants(t *testing.T) {
	cp, err := Compile(`fn main() { print(1 + 2 * 3); }`)
	if err != nil {
		t.Fatal(err)
	}
	before := len(cp.Funcs[cp.FuncByName["main"]].Code)
	removed, err := cp.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("optimizer removed nothing")
	}
	main := cp.Funcs[cp.FuncByName["main"]]
	if len(main.Code) >= before {
		t.Errorf("code not shortened: %d -> %d", before, len(main.Code))
	}
	// The folded constant 7 must appear as a single OpConst.
	found := false
	for _, ins := range main.Code {
		if ins.Op == OpConst && cp.Constants[ins.A] == 7 {
			found = true
		}
		if ins.Op == OpAdd || ins.Op == OpMul {
			t.Errorf("arithmetic survived folding: %s", ins.Op)
		}
	}
	if !found {
		t.Error("folded constant 7 not found")
	}
}

func TestOptimizeRemovesDeadBranches(t *testing.T) {
	cp, err := Compile(`
fn main() {
	if (0) {
		print(1); print(2); print(3);
	}
	print(4);
}`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cp.Optimize(); err != nil {
		t.Fatal(err)
	}
	main := cp.Funcs[cp.FuncByName["main"]]
	prints := 0
	for _, ins := range main.Code {
		if ins.Op == OpPrint {
			prints++
		}
	}
	if prints != 1 {
		t.Errorf("dead branch survives: %d prints\n%s", prints, main.Disassemble(cp))
	}
}

func TestOptimizeKeepsDivisionByZero(t *testing.T) {
	src := `fn main() { print(1 / 0); }`
	_, err := RunSource(src, Options{Optimize: true})
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("err = %v, want division by zero at runtime", err)
	}
}

func TestOptimizeJumpThreading(t *testing.T) {
	cp, err := Compile(`
fn main() {
	var x = 1;
	if (x) {
		if (x) {
			print(x);
		}
	}
	print(2);
}`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cp.Optimize(); err != nil {
		t.Fatal(err)
	}
	main := cp.Funcs[cp.FuncByName["main"]]
	// No jump may target an unconditional jump after threading.
	for pc, ins := range main.Code {
		switch ins.Op {
		case OpJump, OpJumpIfZero, OpJumpIfNonZero:
			if int(ins.A) < len(main.Code) && main.Code[ins.A].Op == OpJump && ins.A != int32(pc) {
				t.Errorf("pc %d still jumps to a jump at %d\n%s", pc, ins.A, main.Disassemble(cp))
			}
		}
	}
}

func TestOptimizeReducesBasicBlocks(t *testing.T) {
	src := `
fn main() {
	var s = 0;
	for (var i = 0; i < 100; i = i + 1) {
		if (1) {
			s = s + 2 * 3;
		}
	}
	print(s);
}`
	plain, err := RunSource(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := RunSource(src, Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if opt.BasicBlocks >= plain.BasicBlocks {
		t.Errorf("optimization did not reduce executed blocks: %d -> %d", plain.BasicBlocks, opt.BasicBlocks)
	}
	if plain.Output[0] != opt.Output[0] {
		t.Errorf("outputs differ: %v vs %v", plain.Output, opt.Output)
	}
}

func TestOptimizeIdempotent(t *testing.T) {
	cp, err := Compile(`fn main() { if (1+1 == 2) { print(4 * 5); } }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cp.Optimize(); err != nil {
		t.Fatal(err)
	}
	snapshot := make([]Instr, len(cp.Funcs[0].Code))
	copy(snapshot, cp.Funcs[0].Code)
	if removed, err := cp.Optimize(); err != nil || removed != 0 {
		t.Errorf("second Optimize removed %d instructions (err %v)", removed, err)
	}
	if !reflect.DeepEqual(snapshot, cp.Funcs[0].Code) {
		t.Error("second Optimize changed code")
	}
}
