package vm

// The bytecode verifier lives in internal/vm/analysis, which imports this
// package for the bytecode types; a direct call from Compile/Optimize would
// therefore be an import cycle. Instead the analysis package installs its
// verifier here from an init function, so any binary that links it (the
// minivm CLI, the fuzz harnesses, the vm test binary) gets every
// CompiledProgram re-checked automatically after compilation and after
// optimization. Binaries that never import the analysis package skip
// verification and behave exactly as before.

var verifyHook func(*CompiledProgram) error

// SetVerifier installs fn as the whole-program bytecode verifier that
// CompileProgram and Optimize run automatically. Passing nil uninstalls it.
func SetVerifier(fn func(*CompiledProgram) error) { verifyHook = fn }

// runVerifier applies the installed verifier, if any.
func runVerifier(cp *CompiledProgram) error {
	if verifyHook == nil {
		return nil
	}
	return verifyHook(cp)
}

// BuiltinArity returns the parameter count of the named builtin function.
// The variadic print builtin is not included.
func BuiltinArity(name string) (int, bool) {
	n, ok := builtins[name]
	return n, ok
}
