// expect: 4950
global acc = 0;
fn add_range(lo, hi, mutex, done) {
	var local = 0;
	for (var i = lo; i < hi; i = i + 1) {
		local = local + i;
	}
	wait(mutex);
	acc = acc + local;
	signal(mutex);
	signal(done);
}
fn main() {
	var mutex = sem(1);
	var done = sem(0);
	spawn add_range(0, 25, mutex, done);
	spawn add_range(25, 50, mutex, done);
	spawn add_range(50, 75, mutex, done);
	add_range(75, 100, mutex, done);
	for (var k = 0; k < 4; k = k + 1) { wait(done); }
	print(acc);
}
