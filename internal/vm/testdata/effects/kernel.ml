// An unrolled straight-line kernel: one aggregate block with contiguous
// reads, a provably redundant re-read, and a re-written cell.
fn main() {
	var a = alloc(8);
	var s = a[0] + a[1] + a[2] + a[0];
	a[4] = s;
	a[5] = s;
	a[4] = s + 1;
	print(s);
}
