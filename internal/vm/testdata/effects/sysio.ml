// Sys ops tick the profiler counter mid-block: the whole block bails out
// of aggregation, and the read after sysread is not judged redundant
// against anything before the transfer.
fn main() {
	var buf = alloc(8);
	sysread(buf, 4);
	var x = buf[0];
	syswrite(buf, 2);
	print(x);
}
