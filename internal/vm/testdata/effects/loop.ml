// A loop over a helper: calls split VM sub-blocks inside CFG blocks, and
// the read-then-write in addto aggregates without eliding (a write after a
// read must still reach the write shadow).
fn addto(a, i, v) {
	a[i] = a[i] + v;
	return 0;
}
fn main() {
	var a = alloc(4);
	for (var i = 0; i < 4; i = i + 1) {
		addto(a, i, i);
	}
	print(a[0] + a[1] + a[2] + a[3]);
}
