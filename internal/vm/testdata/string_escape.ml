// expect: quote " and backslash \ ok: 1
fn main() {
	print("quote \" and backslash \\ ok:", 1);
}
