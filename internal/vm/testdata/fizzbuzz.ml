// expect: 1 2 3 4 5
// expect: codes: 1 0 2 30 33
fn classify(n) {
	if (n % 15 == 0) { return 3; }
	if (n % 3 == 0) { return 1; }
	if (n % 5 == 0) { return 2; }
	return 0;
}
fn main() {
	print(1, 2, 3, 4, 5);
	// encode fizz=1, buzz=2, fizzbuzz=3 over a few samples
	var a = classify(3);
	var b = classify(4);
	var c = classify(5);
	var d = classify(15) * 10 + classify(16);
	var e = classify(30) * 11 + classify(7);
	print("codes:", a, b, c, d, e);
}
