// expect: primes<=100: 25
fn main() {
	var n = 100;
	var sieve = alloc(n + 1);
	for (var i = 2; i <= n; i = i + 1) { sieve[i] = 1; }
	for (var p = 2; p * p <= n; p = p + 1) {
		if (sieve[p]) {
			for (var m = p * p; m <= n; m = m + p) {
				sieve[m] = 0;
			}
		}
	}
	var count = 0;
	for (var i = 2; i <= n; i = i + 1) {
		count = count + sieve[i];
	}
	print("primes<=100:", count);
}
