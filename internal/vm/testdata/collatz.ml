// expect: steps: 111
fn collatz(n) {
	var steps = 0;
	while (n != 1) {
		if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
		steps = steps + 1;
	}
	return steps;
}
fn main() {
	print("steps:", collatz(27));
}
