// expect: 832040
fn main() {
	var a = 0;
	var b = 1;
	for (var i = 0; i < 30; i = i + 1) {
		var t = a + b;
		a = b;
		b = t;
	}
	print(a);
}
