// A program the linter has nothing to say about.
global total = 0;
fn accumulate(n, mutex) {
	wait(mutex);
	total = total + n;
	signal(mutex);
	return total;
}
fn main() {
	var mutex = sem(1);
	for (var i = 1; i <= 4; i = i + 1) {
		accumulate(i, mutex);
	}
	print(total);
}
