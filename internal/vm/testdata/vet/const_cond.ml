// V005: conditions that always evaluate the same way.
fn main() {
	var x = 5;
	if (1 + 1 == 2) {
		print(x);
	}
	while (0) {
		x = x - 1;
	}
	if (0 && x) {
		print(99);
	}
	for (var i = 0; 2 > 1; i = i + 1) {
		if (i > x) {
			break;
		}
	}
	print(x);
}
