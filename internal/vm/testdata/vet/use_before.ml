// V001: reads and writes before or outside the declaration's scope.
fn main() {
	print(x);
	var x = 1;
	var y = y + 1;
	print(x, y);
	if (x) {
		var z = 2;
		print(z);
	}
	z = 3;
}
