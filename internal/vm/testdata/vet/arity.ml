// V006: calls and spawns whose argument counts do not match the callee.
fn add(a, b) {
	return a + b;
}
fn main() {
	print(add(1));
	print(add(1, 2, 3));
	spawn add(7);
	var m = alloc(1, 2);
	var s = sem();
	print(m, s);
}
