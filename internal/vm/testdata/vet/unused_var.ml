// V002: locals that are declared (or assigned) but never read.
fn main() {
	var used = 1;
	var dead = 2;
	var writeonly = 3;
	writeonly = used + 1;
	print(used);
}
