// Several diagnostic kinds in one program, reported in source order.
fn ghost() {
	return 0;
}
fn main() {
	var unused = 1;
	print(missing);
	var missing = 2;
	if (3 > 4) {
		print(1);
	}
	return 0;
	print(2);
}
