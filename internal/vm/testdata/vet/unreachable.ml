// V004: statements after a return, break, or continue.
fn f(x) {
	if (x > 0) {
		return 1;
	} else {
		return 2;
	}
	return 3;
}
fn main() {
	var i = 0;
	while (i < 10) {
		i = i + 1;
		break;
		i = i + 100;
	}
	print(f(i), i);
}
