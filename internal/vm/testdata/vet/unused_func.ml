// V003: functions that are never called or spawned.
fn helper(n) {
	return n * 2;
}
fn orphan() {
	return 1;
}
fn main() {
	print(helper(21));
}
