// Stores the effect analysis proves dead: each value is overwritten
// before any possibly-aliasing read (V007 — found on the optimized
// bytecode, not the AST).
fn main() {
	var buf = alloc(4);
	buf[0] = 1;
	buf[0] = 2;
	buf[1] = buf[0];
	buf[1] = 3;
	print(buf[0] + buf[1]);
}
