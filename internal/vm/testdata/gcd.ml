// expect: 6 1 12 100
fn gcd(a, b) {
	while (b != 0) {
		var t = a % b;
		a = b;
		b = t;
	}
	return a;
}
fn main() {
	print(gcd(54, 24), gcd(17, 13), gcd(36, 48), gcd(100, 0));
}
