package vm

// Instrumentation redundancy suppression: the static-analysis package
// computes an EffectPlan for a compiled program — which per-instruction
// trace events are provably redundant under the profiler's first-access
// semantics, and which basic blocks may batch their memory accesses into
// aggregated events — and the interpreter consumes it when Options.Suppress
// is set. The plan lives here (not in internal/vm/analysis) because the
// interpreter must read it without importing the analysis package; the
// analysis package installs its planner through SetEffectPlanner, mirroring
// the SetVerifier hook in verify_hook.go.

// BlockClass classifies one VM basic block (a run of instructions starting
// at a BlockStart leader) for instrumentation suppression.
type BlockClass uint8

const (
	// ClassDirect blocks are traced instruction by instruction: they have
	// fewer than two traced memory accesses, so batching cannot shrink
	// anything.
	ClassDirect BlockClass = iota
	// ClassAggregate blocks buffer their memory accesses and emit them as
	// one deduplicated, coalesced batch at the block boundary.
	ClassAggregate
	// ClassBailSys blocks contain a sysread/syswrite. Kernel transfer
	// events tick the profiler's global counter mid-block, so the block
	// conservatively bails out to full per-instruction instrumentation
	// (statically proven Elide flags still apply — they are established per
	// sys-delimited segment).
	ClassBailSys
)

// String returns a short tag used by reports and stats.
func (c BlockClass) String() string {
	switch c {
	case ClassAggregate:
		return "aggregate"
	case ClassBailSys:
		return "bail=sys"
	default:
		return "direct"
	}
}

// PlanFunc is the suppression plan of one function, parallel to its Code.
type PlanFunc struct {
	// Elide[pc] marks an OpLoadMem/OpStoreMem whose trace event is provably
	// a profiler no-op: an earlier instruction in the same straight-line
	// segment accesses the same address (re-read after any access, re-write
	// after a write), with no scheduling point, call, or kernel transfer in
	// between. The interpreter performs the heap access but emits nothing.
	Elide []bool
	// Class[pc] is meaningful where BlockStart[pc] is true and classifies
	// the block led by pc.
	Class []BlockClass
}

// EffectPlan is the whole-program suppression plan; Funcs is parallel to
// CompiledProgram.Funcs.
type EffectPlan struct {
	Funcs []PlanFunc
}

// SuppressStats counts what suppression did during one run. All counters
// are exact and deterministic (the scheduler is deterministic).
type SuppressStats struct {
	// MemOps is the number of executed traced memory accesses (loadmem +
	// storemem), before suppression.
	MemOps uint64
	// ElidedStatic counts accesses skipped by a static Elide flag.
	ElidedStatic uint64
	// ElidedDynamic counts accesses dropped by the runtime block buffer
	// (address already covered by a buffered access of the block).
	ElidedDynamic uint64
	// Coalesced counts accesses folded into the preceding buffered event
	// (contiguous ascending same-kind runs become one multi-cell event).
	Coalesced uint64
	// BlocksAggregated / BlocksDirect / BlocksBailedSys count executed
	// block entries by class.
	BlocksAggregated uint64
	BlocksDirect     uint64
	BlocksBailedSys  uint64
	// Overflows counts early buffer flushes (block had more distinct
	// accesses than the buffer holds; the remainder is traced exactly as
	// full instrumentation would — sound, just less compact).
	Overflows uint64
}

// Elided returns the total number of suppressed per-instruction events.
func (s SuppressStats) Elided() uint64 {
	return s.ElidedStatic + s.ElidedDynamic + s.Coalesced
}

var effectPlanner func(*CompiledProgram) (*EffectPlan, error)

// SetEffectPlanner installs the effect planner consulted by RunProgram when
// Options.Suppress is set. Called from an init function of the analysis
// package; later calls replace the planner (tests may stub it).
func SetEffectPlanner(fn func(*CompiledProgram) (*EffectPlan, error)) { effectPlanner = fn }

// planProgram computes and shape-checks the suppression plan for cp.
func planProgram(cp *CompiledProgram) (*EffectPlan, error) {
	if effectPlanner == nil {
		return nil, errNoPlanner
	}
	plan, err := effectPlanner(cp)
	if err != nil {
		return nil, err
	}
	if plan == nil || len(plan.Funcs) != len(cp.Funcs) {
		return nil, errBadPlan
	}
	for i, fn := range cp.Funcs {
		if len(plan.Funcs[i].Elide) != len(fn.Code) || len(plan.Funcs[i].Class) != len(fn.Code) {
			return nil, errBadPlan
		}
	}
	return plan, nil
}

type plainError string

func (e plainError) Error() string { return string(e) }

const (
	errNoPlanner plainError = "minilang: Options.Suppress requires an effect planner (import aprof/internal/vm/analysis)"
	errBadPlan   plainError = "minilang: effect planner returned a malformed plan"
)
