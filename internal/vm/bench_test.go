package vm_test

import (
	"testing"

	"aprof/internal/core"
	"aprof/internal/vm"
	_ "aprof/internal/vm/analysis" // installs the effect planner
	"aprof/internal/workloads"
)

// The BenchmarkSuppress* pairs measure what instrumentation redundancy
// suppression (vm.Options.Suppress) buys on the VM workloads: the Off/On
// trace benchmarks time source-to-trace generation (including the effect
// analysis when suppression is on) and report the resulting trace size as
// trace-events/op and trace-B/op custom metrics; the EndToEnd pair adds
// the sequential profiler downstream, where fewer events mean less work.
// stencil and vecnorm are the straight-line workloads suppression targets
// (-45% / -79% events); pipeline is the semaphore-heavy near-zero-benefit
// case, benchmarked so the analysis overhead on unsuppressable programs
// stays visible in the baseline.

func benchWorkload(b *testing.B, name string) workloads.VMProgram {
	b.Helper()
	for _, prog := range workloads.VMPrograms() {
		if prog.Name == name {
			return prog
		}
	}
	b.Fatalf("unknown workload %q", name)
	return workloads.VMProgram{}
}

func benchTrace(b *testing.B, name string, suppress bool) {
	prog := benchWorkload(b, name)
	opts := vm.Options{Suppress: suppress}
	res, err := vm.RunSource(prog.Source, opts)
	if err != nil {
		b.Fatal(err)
	}
	st := res.Trace.Stats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vm.RunSource(prog.Source, opts); err != nil {
			b.Fatal(err)
		}
	}
	// After the loop: ResetTimer clears previously reported metrics.
	b.ReportMetric(float64(st.Events), "trace-events/op")
	b.ReportMetric(float64(st.Bytes), "trace-B/op")
}

func benchEndToEnd(b *testing.B, name string, suppress bool) {
	prog := benchWorkload(b, name)
	opts := vm.Options{Suppress: suppress}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := vm.RunSource(prog.Source, opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.Run(res.Trace, core.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSuppressTraceOff(b *testing.B) {
	for _, name := range []string{"stencil", "vecnorm", "pipeline"} {
		b.Run(name, func(b *testing.B) { benchTrace(b, name, false) })
	}
}

func BenchmarkSuppressTraceOn(b *testing.B) {
	for _, name := range []string{"stencil", "vecnorm", "pipeline"} {
		b.Run(name, func(b *testing.B) { benchTrace(b, name, true) })
	}
}

func BenchmarkSuppressEndToEndOff(b *testing.B) {
	for _, name := range []string{"stencil", "vecnorm"} {
		b.Run(name, func(b *testing.B) { benchEndToEnd(b, name, false) })
	}
}

func BenchmarkSuppressEndToEndOn(b *testing.B) {
	for _, name := range []string{"stencil", "vecnorm"} {
		b.Run(name, func(b *testing.B) { benchEndToEnd(b, name, true) })
	}
}
