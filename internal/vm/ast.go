package vm

// Program is a parsed MiniLang compilation unit.
type Program struct {
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// GlobalDecl declares a memory-backed global scalar or array. Globals live
// in the traced heap: every access to them produces read/write events.
type GlobalDecl struct {
	Name string
	// Size is the number of cells (1 for scalars).
	Size int64
	// Init is the initial value of a scalar global.
	Init int64
	// IsArray distinguishes "global a[n];" from "global a = v;". Array
	// globals evaluate to their base address; scalar globals evaluate to
	// their content.
	IsArray bool
	Pos     Pos
}

// FuncDecl declares a function.
type FuncDecl struct {
	Name   string
	Params []string
	Body   *Block
	Pos    Pos
}

// Block is a brace-delimited statement list with its own scope.
type Block struct {
	Stmts []Stmt
	Pos   Pos
}

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmtNode() }

// Expr is implemented by all expression nodes.
type Expr interface {
	exprNode()
	// Position returns the source position of the expression.
	Position() Pos
}

// VarStmt declares and initializes a local (register) variable.
type VarStmt struct {
	Name string
	Init Expr
	Pos  Pos
}

// AssignStmt assigns to a local, a global scalar, or an indexed heap cell.
type AssignStmt struct {
	Target Expr // *Ident or *IndexExpr
	Value  Expr
	Pos    Pos
}

// IfStmt is a conditional with an optional else branch (which may itself be
// an IfStmt for else-if chains).
type IfStmt struct {
	Cond Expr
	Then *Block
	Else Stmt // nil, *Block, or *IfStmt
	Pos  Pos
}

// WhileStmt is a pre-test loop.
type WhileStmt struct {
	Cond Expr
	Body *Block
	Pos  Pos
}

// ForStmt is a C-style loop; Init/Cond/Post may each be nil.
type ForStmt struct {
	Init Stmt
	Cond Expr
	Post Stmt
	Body *Block
	Pos  Pos
}

// ReturnStmt returns from the enclosing function, with value 0 when Value is
// nil.
type ReturnStmt struct {
	Value Expr
	Pos   Pos
}

// SpawnStmt starts a new thread running the named function.
type SpawnStmt struct {
	Call *CallExpr
	Pos  Pos
}

// BreakStmt exits the innermost enclosing loop.
type BreakStmt struct {
	Pos Pos
}

// ContinueStmt jumps to the next iteration of the innermost enclosing loop.
type ContinueStmt struct {
	Pos Pos
}

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	X   Expr
	Pos Pos
}

func (*VarStmt) stmtNode()      {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*SpawnStmt) stmtNode()    {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ExprStmt) stmtNode()     {}
func (*Block) stmtNode()        {}

// NumberLit is an integer literal.
type NumberLit struct {
	Value int64
	Pos   Pos
}

// StringLit is a string literal; permitted only as the first argument of
// print.
type StringLit struct {
	Value string
	Pos   Pos
}

// Ident references a local, parameter, global, or (in call position) a
// function.
type Ident struct {
	Name string
	Pos  Pos
}

// IndexExpr is base[index]: a traced heap access at address base+index.
type IndexExpr struct {
	Base  Expr
	Index Expr
	Pos   Pos
}

// CallExpr calls a function or builtin.
type CallExpr struct {
	Name string
	Args []Expr
	Pos  Pos
}

// UnaryExpr is -x or !x.
type UnaryExpr struct {
	Op  TokenKind
	X   Expr
	Pos Pos
}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	Op   TokenKind
	X, Y Expr
	Pos  Pos
}

func (*NumberLit) exprNode()  {}
func (*StringLit) exprNode()  {}
func (*Ident) exprNode()      {}
func (*IndexExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}

// Position implementations.
func (e *NumberLit) Position() Pos  { return e.Pos }
func (e *StringLit) Position() Pos  { return e.Pos }
func (e *Ident) Position() Pos      { return e.Pos }
func (e *IndexExpr) Position() Pos  { return e.Pos }
func (e *CallExpr) Position() Pos   { return e.Pos }
func (e *UnaryExpr) Position() Pos  { return e.Pos }
func (e *BinaryExpr) Position() Pos { return e.Pos }
