package vm

import (
	"fmt"
	"strings"
)

// Pretty-printer: renders an AST back to canonical MiniLang source. Parsing
// the rendered source yields a program with identical semantics (the
// round-trip tests check that the recompiled bytecode matches), which makes
// the printer usable as a formatter (gofmt-style) for MiniLang programs and
// as a debugging aid for generated programs.

// Format parses src and renders it in canonical form.
func Format(src string) (string, error) {
	prog, err := Parse(src)
	if err != nil {
		return "", err
	}
	return prog.String(), nil
}

// String renders the program as canonical MiniLang source.
func (p *Program) String() string {
	var sb strings.Builder
	for _, g := range p.Globals {
		switch {
		case g.IsArray:
			fmt.Fprintf(&sb, "global %s[%d];\n", g.Name, g.Size)
		case g.Init != 0:
			fmt.Fprintf(&sb, "global %s = %d;\n", g.Name, g.Init)
		default:
			fmt.Fprintf(&sb, "global %s = 0;\n", g.Name)
		}
	}
	if len(p.Globals) > 0 {
		sb.WriteByte('\n')
	}
	for i, fn := range p.Funcs {
		if i > 0 {
			sb.WriteByte('\n')
		}
		fmt.Fprintf(&sb, "fn %s(%s) ", fn.Name, strings.Join(fn.Params, ", "))
		printBlock(&sb, fn.Body, 0)
		sb.WriteByte('\n')
	}
	return sb.String()
}

func indent(sb *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		sb.WriteByte('\t')
	}
}

func printBlock(sb *strings.Builder, b *Block, depth int) {
	sb.WriteString("{\n")
	for _, s := range b.Stmts {
		printStmt(sb, s, depth+1)
	}
	indent(sb, depth)
	sb.WriteString("}")
}

func printStmt(sb *strings.Builder, s Stmt, depth int) {
	indent(sb, depth)
	switch s := s.(type) {
	case *Block:
		printBlock(sb, s, depth)
		sb.WriteByte('\n')
	case *VarStmt:
		fmt.Fprintf(sb, "var %s = %s;\n", s.Name, exprString(s.Init))
	case *AssignStmt:
		fmt.Fprintf(sb, "%s = %s;\n", exprString(s.Target), exprString(s.Value))
	case *IfStmt:
		printIf(sb, s, depth)
		sb.WriteByte('\n')
	case *WhileStmt:
		fmt.Fprintf(sb, "while (%s) ", exprString(s.Cond))
		printBlock(sb, s.Body, depth)
		sb.WriteByte('\n')
	case *ForStmt:
		sb.WriteString("for (")
		if s.Init != nil {
			sb.WriteString(simpleStmtString(s.Init))
		}
		sb.WriteString("; ")
		if s.Cond != nil {
			sb.WriteString(exprString(s.Cond))
		}
		sb.WriteString("; ")
		if s.Post != nil {
			sb.WriteString(simpleStmtString(s.Post))
		}
		sb.WriteString(") ")
		printBlock(sb, s.Body, depth)
		sb.WriteByte('\n')
	case *ReturnStmt:
		if s.Value != nil {
			fmt.Fprintf(sb, "return %s;\n", exprString(s.Value))
		} else {
			sb.WriteString("return;\n")
		}
	case *SpawnStmt:
		fmt.Fprintf(sb, "spawn %s;\n", exprString(s.Call))
	case *BreakStmt:
		sb.WriteString("break;\n")
	case *ContinueStmt:
		sb.WriteString("continue;\n")
	case *ExprStmt:
		fmt.Fprintf(sb, "%s;\n", exprString(s.X))
	default:
		fmt.Fprintf(sb, "/* unhandled %T */\n", s)
	}
}

// printIf renders else-if chains flat.
func printIf(sb *strings.Builder, s *IfStmt, depth int) {
	fmt.Fprintf(sb, "if (%s) ", exprString(s.Cond))
	printBlock(sb, s.Then, depth)
	switch e := s.Else.(type) {
	case nil:
	case *IfStmt:
		sb.WriteString(" else ")
		printIf(sb, e, depth)
	case *Block:
		sb.WriteString(" else ")
		printBlock(sb, e, depth)
	}
}

// simpleStmtString renders a statement without the trailing semicolon and
// newline (for-loop headers).
func simpleStmtString(s Stmt) string {
	switch s := s.(type) {
	case *VarStmt:
		return fmt.Sprintf("var %s = %s", s.Name, exprString(s.Init))
	case *AssignStmt:
		return fmt.Sprintf("%s = %s", exprString(s.Target), exprString(s.Value))
	case *ExprStmt:
		return exprString(s.X)
	default:
		return fmt.Sprintf("/* unhandled %T */", s)
	}
}

// operator precedence levels, mirroring the parser: higher binds tighter.
func precedence(op TokenKind) int {
	switch op {
	case TokOrOr:
		return 1
	case TokAndAnd:
		return 2
	case TokEq, TokNe, TokLt, TokLe, TokGt, TokGe:
		return 3
	case TokPlus, TokMinus:
		return 4
	case TokStar, TokSlash, TokPercent:
		return 5
	default:
		return 6
	}
}

func opString(op TokenKind) string {
	switch op {
	case TokOrOr:
		return "||"
	case TokAndAnd:
		return "&&"
	case TokEq:
		return "=="
	case TokNe:
		return "!="
	case TokLt:
		return "<"
	case TokLe:
		return "<="
	case TokGt:
		return ">"
	case TokGe:
		return ">="
	case TokPlus:
		return "+"
	case TokMinus:
		return "-"
	case TokStar:
		return "*"
	case TokSlash:
		return "/"
	case TokPercent:
		return "%"
	case TokBang:
		return "!"
	default:
		return "?"
	}
}

// exprString renders an expression with minimal parentheses.
func exprString(e Expr) string {
	return exprPrec(e, 0)
}

// exprPrec renders e, parenthesizing when its top-level operator binds
// looser than the context.
func exprPrec(e Expr, ctx int) string {
	switch e := e.(type) {
	case *NumberLit:
		return fmt.Sprint(e.Value)
	case *StringLit:
		return quoteString(e.Value)
	case *Ident:
		return e.Name
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", exprPrec(e.Base, 6), exprString(e.Index))
	case *CallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = exprString(a)
		}
		return fmt.Sprintf("%s(%s)", e.Name, strings.Join(args, ", "))
	case *UnaryExpr:
		inner := exprPrec(e.X, 6)
		if e.Op == TokMinus {
			return "-" + inner
		}
		return "!" + inner
	case *BinaryExpr:
		prec := precedence(e.Op)
		// Operators are left-associative: the right operand needs parens at
		// equal precedence.
		out := fmt.Sprintf("%s %s %s",
			exprPrec(e.X, prec), opString(e.Op), exprPrec(e.Y, prec+1))
		if prec < ctx {
			return "(" + out + ")"
		}
		return out
	default:
		return fmt.Sprintf("/* unhandled %T */", e)
	}
}

// quoteString renders a string literal using exactly the escape vocabulary
// the lexer accepts (\n \t \r \" \\ \xNN), so printed programs always
// re-parse to the same string byte for byte. Go's %q is unsuitable: it
// emits \u and \a-style escapes MiniLang does not define.
func quoteString(s string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			sb.WriteString(`\"`)
		case c == '\\':
			sb.WriteString(`\\`)
		case c == '\n':
			sb.WriteString(`\n`)
		case c == '\t':
			sb.WriteString(`\t`)
		case c == '\r':
			sb.WriteString(`\r`)
		case c < 0x20 || c >= 0x7f:
			fmt.Fprintf(&sb, `\x%02x`, c)
		default:
			sb.WriteByte(c)
		}
	}
	sb.WriteByte('"')
	return sb.String()
}
