package vm

import "fmt"

// heapBase is the first heap address handed out; address 0 is reserved so
// that it can serve as a null value.
const heapBase = 1

// builtins maps builtin names to their fixed argument counts.
var builtins = map[string]int{
	"alloc":    1,
	"sem":      1,
	"wait":     1,
	"signal":   1,
	"sysread":  2,
	"syswrite": 2,
	"assert":   1,
	"rand":     1,
	// print is variadic and handled specially.
}

// Compile parses and compiles MiniLang source into an executable program.
func Compile(src string) (*CompiledProgram, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return CompileProgram(prog)
}

// CompileProgram compiles a parsed program.
func CompileProgram(prog *Program) (*CompiledProgram, error) {
	cp := &CompiledProgram{
		FuncByName: make(map[string]int),
		GlobalBase: make(map[string]int64),
	}

	// Lay out globals at fixed heap addresses.
	addr := int64(heapBase)
	globals := make(map[string]*GlobalDecl)
	for _, g := range prog.Globals {
		if _, dup := globals[g.Name]; dup {
			return nil, errAt(g.Pos, "global %q redeclared", g.Name)
		}
		globals[g.Name] = g
		cp.GlobalBase[g.Name] = addr
		if !g.IsArray && g.Init != 0 {
			cp.GlobalInit = append(cp.GlobalInit, [2]int64{addr, g.Init})
		}
		addr += g.Size
	}
	cp.GlobalEnd = addr

	// Register functions first so calls can be resolved in any order.
	for _, fn := range prog.Funcs {
		if _, dup := cp.FuncByName[fn.Name]; dup {
			return nil, errAt(fn.Pos, "function %q redeclared", fn.Name)
		}
		if _, isBuiltin := builtins[fn.Name]; isBuiltin || fn.Name == "print" {
			return nil, errAt(fn.Pos, "function %q shadows a builtin", fn.Name)
		}
		cp.FuncByName[fn.Name] = len(cp.Funcs)
		cp.Funcs = append(cp.Funcs, &Func{Name: fn.Name, NumParams: len(fn.Params)})
	}
	if _, ok := cp.FuncByName["main"]; !ok {
		return nil, fmt.Errorf("minilang: program has no 'main' function")
	}
	if cp.Funcs[cp.FuncByName["main"]].NumParams != 0 {
		return nil, errAt(prog.Funcs[cp.FuncByName["main"]].Pos, "'main' must take no parameters")
	}

	for i, fn := range prog.Funcs {
		fc := &funcCompiler{cp: cp, prog: prog, globals: globals, out: cp.Funcs[i]}
		if err := fc.compile(fn); err != nil {
			return nil, err
		}
	}
	// Independent correctness check of the emitted bytecode (stack balance,
	// jump targets, slot indices, guaranteed returns) when the analysis
	// package is linked in.
	if err := runVerifier(cp); err != nil {
		return nil, err
	}
	return cp, nil
}

// funcCompiler compiles one function body.
type funcCompiler struct {
	cp      *CompiledProgram
	prog    *Program
	globals map[string]*GlobalDecl
	out     *Func
	// scopes is a stack of name → local-slot maps.
	scopes    []map[string]int
	numLocals int
	maxLocals int
	// loops is the stack of enclosing loops, holding the jump sites that
	// break and continue statements leave to be patched.
	loops []*loopCtx
}

// loopCtx records the pending branch targets of one loop under compilation.
type loopCtx struct {
	breakJumps    []int
	continueJumps []int
}

func (fc *funcCompiler) compile(fn *FuncDecl) error {
	fc.pushScope()
	for _, param := range fn.Params {
		if _, err := fc.declareLocal(param, fn.Pos); err != nil {
			return err
		}
	}
	if err := fc.block(fn.Body); err != nil {
		return err
	}
	fc.popScope()
	// Implicit "return 0" for functions that fall off the end.
	fc.emit(OpConst, fc.constIdx(0), 0, fn.Pos)
	fc.emit(OpReturn, 0, 0, fn.Pos)
	fc.out.NumLocals = fc.maxLocals
	fc.out.MarkBlocks()
	return nil
}

func (fc *funcCompiler) pushScope() {
	fc.scopes = append(fc.scopes, make(map[string]int))
}

func (fc *funcCompiler) popScope() {
	top := fc.scopes[len(fc.scopes)-1]
	fc.numLocals -= len(top)
	fc.scopes = fc.scopes[:len(fc.scopes)-1]
}

func (fc *funcCompiler) declareLocal(name string, pos Pos) (int, error) {
	top := fc.scopes[len(fc.scopes)-1]
	if _, dup := top[name]; dup {
		return 0, errAt(pos, "variable %q redeclared in this scope", name)
	}
	slot := fc.numLocals
	top[name] = slot
	fc.numLocals++
	if fc.numLocals > fc.maxLocals {
		fc.maxLocals = fc.numLocals
	}
	return slot, nil
}

func (fc *funcCompiler) lookupLocal(name string) (int, bool) {
	for i := len(fc.scopes) - 1; i >= 0; i-- {
		if slot, ok := fc.scopes[i][name]; ok {
			return slot, true
		}
	}
	return 0, false
}

func (fc *funcCompiler) emit(op Op, a, b int32, pos Pos) int {
	fc.out.Code = append(fc.out.Code, Instr{Op: op, A: a, B: b, Line: int32(pos.Line), Col: int32(pos.Col)})
	return len(fc.out.Code) - 1
}

func (fc *funcCompiler) constIdx(v int64) int32 {
	for i, c := range fc.cp.Constants {
		if c == v {
			return int32(i)
		}
	}
	fc.cp.Constants = append(fc.cp.Constants, v)
	return int32(len(fc.cp.Constants) - 1)
}

func (fc *funcCompiler) stringIdx(s string) int32 {
	for i, c := range fc.cp.Strings {
		if c == s {
			return int32(i)
		}
	}
	fc.cp.Strings = append(fc.cp.Strings, s)
	return int32(len(fc.cp.Strings) - 1)
}

// patch sets the jump target of the instruction at idx to the current end of
// the code.
func (fc *funcCompiler) patch(idx int) {
	fc.out.Code[idx].A = int32(len(fc.out.Code))
}

func (fc *funcCompiler) block(b *Block) error {
	fc.pushScope()
	defer fc.popScope()
	for _, s := range b.Stmts {
		if err := fc.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (fc *funcCompiler) stmt(s Stmt) error {
	switch s := s.(type) {
	case *Block:
		return fc.block(s)
	case *VarStmt:
		if err := fc.expr(s.Init); err != nil {
			return err
		}
		slot, err := fc.declareLocal(s.Name, s.Pos)
		if err != nil {
			return err
		}
		fc.emit(OpStoreLocal, int32(slot), 0, s.Pos)
		return nil
	case *AssignStmt:
		return fc.assign(s)
	case *IfStmt:
		return fc.ifStmt(s)
	case *WhileStmt:
		top := len(fc.out.Code)
		if err := fc.expr(s.Cond); err != nil {
			return err
		}
		exit := fc.emit(OpJumpIfZero, 0, 0, s.Pos)
		loop := &loopCtx{}
		fc.loops = append(fc.loops, loop)
		if err := fc.block(s.Body); err != nil {
			return err
		}
		fc.loops = fc.loops[:len(fc.loops)-1]
		// continue re-tests the condition; break exits.
		for _, idx := range loop.continueJumps {
			fc.out.Code[idx].A = int32(top)
		}
		fc.emit(OpJump, int32(top), 0, s.Pos)
		fc.patch(exit)
		for _, idx := range loop.breakJumps {
			fc.patch(idx)
		}
		return nil
	case *ForStmt:
		fc.pushScope()
		defer fc.popScope()
		if s.Init != nil {
			if err := fc.stmt(s.Init); err != nil {
				return err
			}
		}
		top := len(fc.out.Code)
		exit := -1
		if s.Cond != nil {
			if err := fc.expr(s.Cond); err != nil {
				return err
			}
			exit = fc.emit(OpJumpIfZero, 0, 0, s.Pos)
		}
		loop := &loopCtx{}
		fc.loops = append(fc.loops, loop)
		if err := fc.block(s.Body); err != nil {
			return err
		}
		fc.loops = fc.loops[:len(fc.loops)-1]
		// continue lands on the post statement (or the condition re-test
		// when there is none).
		postPC := len(fc.out.Code)
		if s.Post != nil {
			if err := fc.stmt(s.Post); err != nil {
				return err
			}
		}
		for _, idx := range loop.continueJumps {
			fc.out.Code[idx].A = int32(postPC)
		}
		fc.emit(OpJump, int32(top), 0, s.Pos)
		if exit >= 0 {
			fc.patch(exit)
		}
		for _, idx := range loop.breakJumps {
			fc.patch(idx)
		}
		return nil
	case *ReturnStmt:
		if s.Value != nil {
			if err := fc.expr(s.Value); err != nil {
				return err
			}
		} else {
			fc.emit(OpConst, fc.constIdx(0), 0, s.Pos)
		}
		fc.emit(OpReturn, 0, 0, s.Pos)
		return nil
	case *SpawnStmt:
		idx, ok := fc.cp.FuncByName[s.Call.Name]
		if !ok {
			return errAt(s.Pos, "spawn of unknown function %q", s.Call.Name)
		}
		fn := fc.cp.Funcs[idx]
		if len(s.Call.Args) != fn.NumParams {
			return errAt(s.Pos, "spawn %s: got %d arguments, want %d", s.Call.Name, len(s.Call.Args), fn.NumParams)
		}
		for _, arg := range s.Call.Args {
			if err := fc.expr(arg); err != nil {
				return err
			}
		}
		fc.emit(OpSpawn, int32(idx), int32(len(s.Call.Args)), s.Pos)
		return nil
	case *BreakStmt:
		if len(fc.loops) == 0 {
			return errAt(s.Pos, "break outside a loop")
		}
		loop := fc.loops[len(fc.loops)-1]
		loop.breakJumps = append(loop.breakJumps, fc.emit(OpJump, 0, 0, s.Pos))
		return nil
	case *ContinueStmt:
		if len(fc.loops) == 0 {
			return errAt(s.Pos, "continue outside a loop")
		}
		loop := fc.loops[len(fc.loops)-1]
		loop.continueJumps = append(loop.continueJumps, fc.emit(OpJump, 0, 0, s.Pos))
		return nil
	case *ExprStmt:
		if err := fc.expr(s.X); err != nil {
			return err
		}
		fc.emit(OpPop, 0, 0, s.Pos)
		return nil
	default:
		return fmt.Errorf("minilang: unhandled statement %T", s)
	}
}

func (fc *funcCompiler) assign(s *AssignStmt) error {
	switch target := s.Target.(type) {
	case *Ident:
		if slot, ok := fc.lookupLocal(target.Name); ok {
			if err := fc.expr(s.Value); err != nil {
				return err
			}
			fc.emit(OpStoreLocal, int32(slot), 0, s.Pos)
			return nil
		}
		if g, ok := fc.globals[target.Name]; ok {
			if g.IsArray {
				return errAt(s.Pos, "cannot assign to array global %q (assign to its elements)", target.Name)
			}
			fc.emit(OpConst, fc.constIdx(fc.cp.GlobalBase[target.Name]), 0, s.Pos)
			if err := fc.expr(s.Value); err != nil {
				return err
			}
			fc.emit(OpStoreMem, 0, 0, s.Pos)
			return nil
		}
		return errAt(s.Pos, "assignment to undeclared variable %q", target.Name)
	case *IndexExpr:
		// Compute the cell address, then the value, then store.
		if err := fc.expr(target.Base); err != nil {
			return err
		}
		if err := fc.expr(target.Index); err != nil {
			return err
		}
		fc.emit(OpAdd, 0, 0, s.Pos)
		if err := fc.expr(s.Value); err != nil {
			return err
		}
		fc.emit(OpStoreMem, 0, 0, s.Pos)
		return nil
	default:
		return errAt(s.Pos, "invalid assignment target")
	}
}

func (fc *funcCompiler) ifStmt(s *IfStmt) error {
	if err := fc.expr(s.Cond); err != nil {
		return err
	}
	elseJump := fc.emit(OpJumpIfZero, 0, 0, s.Pos)
	if err := fc.block(s.Then); err != nil {
		return err
	}
	if s.Else == nil {
		fc.patch(elseJump)
		return nil
	}
	endJump := fc.emit(OpJump, 0, 0, s.Pos)
	fc.patch(elseJump)
	if err := fc.stmt(s.Else); err != nil {
		return err
	}
	fc.patch(endJump)
	return nil
}

func (fc *funcCompiler) expr(e Expr) error {
	switch e := e.(type) {
	case *NumberLit:
		fc.emit(OpConst, fc.constIdx(e.Value), 0, e.Pos)
		return nil
	case *StringLit:
		return errAt(e.Pos, "string literals are only allowed as the first argument of print")
	case *Ident:
		if slot, ok := fc.lookupLocal(e.Name); ok {
			fc.emit(OpLoadLocal, int32(slot), 0, e.Pos)
			return nil
		}
		if g, ok := fc.globals[e.Name]; ok {
			base := fc.cp.GlobalBase[e.Name]
			if g.IsArray {
				// An array global evaluates to its base address.
				fc.emit(OpConst, fc.constIdx(base), 0, e.Pos)
				return nil
			}
			fc.emit(OpConst, fc.constIdx(base), 0, e.Pos)
			fc.emit(OpLoadMem, 0, 0, e.Pos)
			return nil
		}
		return errAt(e.Pos, "undeclared variable %q", e.Name)
	case *IndexExpr:
		if err := fc.expr(e.Base); err != nil {
			return err
		}
		if err := fc.expr(e.Index); err != nil {
			return err
		}
		fc.emit(OpAdd, 0, 0, e.Pos)
		fc.emit(OpLoadMem, 0, 0, e.Pos)
		return nil
	case *CallExpr:
		return fc.call(e)
	case *UnaryExpr:
		if err := fc.expr(e.X); err != nil {
			return err
		}
		switch e.Op {
		case TokMinus:
			fc.emit(OpNeg, 0, 0, e.Pos)
		case TokBang:
			fc.emit(OpNot, 0, 0, e.Pos)
		default:
			return errAt(e.Pos, "unhandled unary operator %s", e.Op)
		}
		return nil
	case *BinaryExpr:
		return fc.binary(e)
	default:
		return fmt.Errorf("minilang: unhandled expression %T", e)
	}
}

func (fc *funcCompiler) binary(e *BinaryExpr) error {
	// Short-circuit forms compile to jumps so that && and || have C
	// semantics and produce 0/1.
	switch e.Op {
	case TokAndAnd:
		if err := fc.expr(e.X); err != nil {
			return err
		}
		fail := fc.emit(OpJumpIfZero, 0, 0, e.Pos)
		if err := fc.expr(e.Y); err != nil {
			return err
		}
		fail2 := fc.emit(OpJumpIfZero, 0, 0, e.Pos)
		fc.emit(OpConst, fc.constIdx(1), 0, e.Pos)
		end := fc.emit(OpJump, 0, 0, e.Pos)
		fc.patch(fail)
		fc.patch(fail2)
		fc.emit(OpConst, fc.constIdx(0), 0, e.Pos)
		fc.patch(end)
		return nil
	case TokOrOr:
		if err := fc.expr(e.X); err != nil {
			return err
		}
		ok1 := fc.emit(OpJumpIfNonZero, 0, 0, e.Pos)
		if err := fc.expr(e.Y); err != nil {
			return err
		}
		ok2 := fc.emit(OpJumpIfNonZero, 0, 0, e.Pos)
		fc.emit(OpConst, fc.constIdx(0), 0, e.Pos)
		end := fc.emit(OpJump, 0, 0, e.Pos)
		fc.patch(ok1)
		fc.patch(ok2)
		fc.emit(OpConst, fc.constIdx(1), 0, e.Pos)
		fc.patch(end)
		return nil
	}
	if err := fc.expr(e.X); err != nil {
		return err
	}
	if err := fc.expr(e.Y); err != nil {
		return err
	}
	var op Op
	switch e.Op {
	case TokPlus:
		op = OpAdd
	case TokMinus:
		op = OpSub
	case TokStar:
		op = OpMul
	case TokSlash:
		op = OpDiv
	case TokPercent:
		op = OpMod
	case TokEq:
		op = OpEq
	case TokNe:
		op = OpNe
	case TokLt:
		op = OpLt
	case TokLe:
		op = OpLe
	case TokGt:
		op = OpGt
	case TokGe:
		op = OpGe
	default:
		return errAt(e.Pos, "unhandled binary operator %s", e.Op)
	}
	fc.emit(op, 0, 0, e.Pos)
	return nil
}

func (fc *funcCompiler) call(e *CallExpr) error {
	if e.Name == "print" {
		return fc.printCall(e)
	}
	if wantArgs, isBuiltin := builtins[e.Name]; isBuiltin {
		if len(e.Args) != wantArgs {
			return errAt(e.Pos, "%s: got %d arguments, want %d", e.Name, len(e.Args), wantArgs)
		}
		for _, arg := range e.Args {
			if err := fc.expr(arg); err != nil {
				return err
			}
		}
		var op Op
		switch e.Name {
		case "alloc":
			op = OpAlloc
		case "sem":
			op = OpSemNew
		case "wait":
			op = OpSemWait
		case "signal":
			op = OpSemSignal
		case "sysread":
			op = OpSysRead
		case "syswrite":
			op = OpSysWrite
		case "assert":
			op = OpAssert
		case "rand":
			op = OpRand
		}
		fc.emit(op, 0, 0, e.Pos)
		return nil
	}
	idx, ok := fc.cp.FuncByName[e.Name]
	if !ok {
		return errAt(e.Pos, "call to unknown function %q", e.Name)
	}
	fn := fc.cp.Funcs[idx]
	if len(e.Args) != fn.NumParams {
		return errAt(e.Pos, "%s: got %d arguments, want %d", e.Name, len(e.Args), fn.NumParams)
	}
	for _, arg := range e.Args {
		if err := fc.expr(arg); err != nil {
			return err
		}
	}
	fc.emit(OpCall, int32(idx), int32(len(e.Args)), e.Pos)
	return nil
}

func (fc *funcCompiler) printCall(e *CallExpr) error {
	args := e.Args
	fmtIdx := int32(-1)
	if len(args) > 0 {
		if s, ok := args[0].(*StringLit); ok {
			fmtIdx = fc.stringIdx(s.Value)
			args = args[1:]
		}
	}
	for _, arg := range args {
		if _, isStr := arg.(*StringLit); isStr {
			return errAt(arg.Position(), "only the first argument of print may be a string")
		}
		if err := fc.expr(arg); err != nil {
			return err
		}
	}
	fc.emit(OpPrint, int32(len(args)), fmtIdx, e.Pos)
	return nil
}
