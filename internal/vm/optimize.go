package vm

import "fmt"

// Optimizer: classical bytecode cleanups applied per function, to a
// fixpoint:
//
//   - constant folding of unary and binary operations on OpConst operands;
//   - folding of conditional jumps whose condition is a constant;
//   - jump threading (a jump to an unconditional jump retargets to the
//     final destination);
//   - unreachable-code elimination.
//
// Division and modulo by a constant zero are never folded: the runtime
// error (with its source line) must survive.
//
// Optimization changes the basic-block structure, and therefore the
// basic-block cost metric of profiled programs — the same effect compiler
// optimization levels have on real instrumented binaries. The instrumented
// events (heap reads/writes, calls, system calls) are never added, removed
// or reordered: only pure register computation is folded, so rms/drms
// values are unaffected.

// opNop marks an instruction for removal by compact. It never survives
// Optimize.
const opNop = Op(0xff)

// Optimize rewrites every function of the program. It returns the total
// number of instructions removed.
//
// When a bytecode verifier is installed (see SetVerifier), Optimize checks
// the differential invariant that optimization preserves verifiability:
// bytecode that verified before the passes ran must still verify after
// them. A violation is an optimizer bug and is returned as a non-nil error;
// input that already failed verification is rewritten best-effort with no
// claim about the result.
func (cp *CompiledProgram) Optimize() (int, error) {
	verifiedIn := runVerifier(cp) == nil
	removed := 0
	for _, fn := range cp.Funcs {
		removed += cp.optimizeFunc(fn)
	}
	if verifiedIn {
		if err := runVerifier(cp); err != nil {
			return removed, fmt.Errorf("minilang: optimizer produced invalid bytecode: %w", err)
		}
	}
	return removed, nil
}

func (cp *CompiledProgram) optimizeFunc(fn *Func) int {
	before := len(fn.Code)
	for {
		changed := false
		if cp.foldConstants(fn) {
			changed = true
		}
		if threadJumps(fn) {
			changed = true
		}
		if eliminateUnreachable(fn) {
			changed = true
		}
		if !changed {
			break
		}
	}
	fn.NumBlocks = 0
	fn.MarkBlocks()
	return before - len(fn.Code)
}

// jumpTargets returns the set of instruction indices that are jump targets.
func jumpTargets(fn *Func) map[int32]bool {
	targets := make(map[int32]bool)
	for _, ins := range fn.Code {
		switch ins.Op {
		case OpJump, OpJumpIfZero, OpJumpIfNonZero:
			targets[ins.A] = true
		}
	}
	return targets
}

// foldConstants performs one peephole pass; it reports whether anything
// changed. Folded instructions become opNop and are compacted away.
func (cp *CompiledProgram) foldConstants(fn *Func) bool {
	targets := jumpTargets(fn)
	changed := false
	code := fn.Code
	for i := 0; i < len(code); i++ {
		// Unary fold: Const a; Neg/Not.
		if i+1 < len(code) && code[i].Op == OpConst && !targets[int32(i+1)] {
			a := cp.Constants[code[i].A]
			switch code[i+1].Op {
			case OpNeg:
				code[i] = Instr{Op: OpConst, A: cp.constIdxOpt(-a), Line: code[i].Line, Col: code[i].Col}
				code[i+1].Op = opNop
				changed = true
				continue
			case OpNot:
				code[i] = Instr{Op: OpConst, A: cp.constIdxOpt(boolVal(a == 0)), Line: code[i].Line, Col: code[i].Col}
				code[i+1].Op = opNop
				changed = true
				continue
			case OpJumpIfZero, OpJumpIfNonZero:
				// Constant condition: the jump either always or never
				// fires.
				takes := (a == 0) == (code[i+1].Op == OpJumpIfZero)
				if takes {
					code[i] = Instr{Op: OpJump, A: code[i+1].A, Line: code[i].Line, Col: code[i].Col}
				} else {
					code[i].Op = opNop
				}
				code[i+1].Op = opNop
				changed = true
				continue
			}
		}
		// Binary fold: Const a; Const b; binop.
		if i+2 < len(code) && code[i].Op == OpConst && code[i+1].Op == OpConst &&
			!targets[int32(i+1)] && !targets[int32(i+2)] {
			a := cp.Constants[code[i].A]
			b := cp.Constants[code[i+1].A]
			v, ok := foldBinary(code[i+2].Op, a, b)
			if ok {
				code[i] = Instr{Op: OpConst, A: cp.constIdxOpt(v), Line: code[i].Line, Col: code[i].Col}
				code[i+1].Op = opNop
				code[i+2].Op = opNop
				changed = true
			}
		}
	}
	if changed {
		compact(fn)
	}
	return changed
}

// foldBinary evaluates a binary opcode on constants, refusing the cases
// that must fail (or do anything) at run time.
func foldBinary(op Op, a, b int64) (int64, bool) {
	switch op {
	case OpAdd:
		return a + b, true
	case OpSub:
		return a - b, true
	case OpMul:
		return a * b, true
	case OpDiv:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case OpMod:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case OpEq:
		return boolVal(a == b), true
	case OpNe:
		return boolVal(a != b), true
	case OpLt:
		return boolVal(a < b), true
	case OpLe:
		return boolVal(a <= b), true
	case OpGt:
		return boolVal(a > b), true
	case OpGe:
		return boolVal(a >= b), true
	default:
		return 0, false
	}
}

// constIdxOpt interns a constant (Optimize-time variant of the compiler's
// pool interning).
func (cp *CompiledProgram) constIdxOpt(v int64) int32 {
	for i, c := range cp.Constants {
		if c == v {
			return int32(i)
		}
	}
	cp.Constants = append(cp.Constants, v)
	return int32(len(cp.Constants) - 1)
}

// threadJumps retargets jumps that land on unconditional jumps.
func threadJumps(fn *Func) bool {
	changed := false
	for i := range fn.Code {
		ins := &fn.Code[i]
		switch ins.Op {
		case OpJump, OpJumpIfZero, OpJumpIfNonZero:
			target := ins.A
			hops := 0
			for int(target) < len(fn.Code) && fn.Code[target].Op == OpJump && hops < len(fn.Code) {
				next := fn.Code[target].A
				if next == target {
					break // self-loop: leave it alone
				}
				target = next
				hops++
			}
			if target != ins.A {
				ins.A = target
				changed = true
			}
		}
	}
	return changed
}

// eliminateUnreachable drops instructions no control path reaches.
func eliminateUnreachable(fn *Func) bool {
	if len(fn.Code) == 0 {
		return false
	}
	reachable := make([]bool, len(fn.Code))
	work := []int{0}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		if pc < 0 || pc >= len(fn.Code) || reachable[pc] {
			continue
		}
		reachable[pc] = true
		ins := fn.Code[pc]
		switch ins.Op {
		case OpJump:
			work = append(work, int(ins.A))
		case OpJumpIfZero, OpJumpIfNonZero:
			work = append(work, int(ins.A), pc+1)
		case OpReturn:
			// No successor.
		default:
			work = append(work, pc+1)
		}
	}
	changed := false
	for pc := range fn.Code {
		if !reachable[pc] && fn.Code[pc].Op != opNop {
			fn.Code[pc].Op = opNop
			changed = true
		}
	}
	if changed {
		compact(fn)
	}
	return changed
}

// compact removes opNop instructions, remapping jump targets.
func compact(fn *Func) {
	remap := make([]int32, len(fn.Code)+1)
	kept := int32(0)
	for pc := range fn.Code {
		remap[pc] = kept
		if fn.Code[pc].Op != opNop {
			kept++
		}
	}
	remap[len(fn.Code)] = kept

	out := make([]Instr, 0, kept)
	for pc := range fn.Code {
		ins := fn.Code[pc]
		if ins.Op == opNop {
			continue
		}
		switch ins.Op {
		case OpJump, OpJumpIfZero, OpJumpIfNonZero:
			if int(ins.A) <= len(fn.Code) {
				ins.A = remap[ins.A]
			}
		}
		out = append(out, ins)
	}
	fn.Code = out
}
