package vm

import (
	"reflect"
	"strings"
	"testing"
)

// formatterPrograms are sources whose formatted output must round-trip: the
// formatted source parses, formats to a fixpoint, and compiles to bytecode
// identical to the original's.
var formatterPrograms = []string{
	`
global g = 7;
global neg = -3;
global arr[16];
fn helper(a, b) { return a * (b + 2) - a / b; }
fn main() {
	var x = helper(3, 4);
	if (x > 2 && x < 100 || !(x == 5)) { x = x - 1; } else if (x == 0) { x = 9; } else { x = 0; }
	while (x > 0) { x = x - 1; if (x == 3) { break; } }
	for (var i = 0; i < 10; i = i + 1) {
		if (i % 2 == 0) { continue; }
		arr[i] = i * i;
	}
	g = arr[3] + arr[2 + 1];
	print("done:", g, x);
}`,
	`
fn rec(n) {
	if (n < 2) { return n; }
	return rec(n - 1) + rec(n - 2);
}
fn main() { print(rec(10)); }`,
	`
global cell = 0;
fn w(n, s) {
	for (var i = 0; i < n; i = i + 1) { wait(s); cell = cell + 1; signal(s); }
}
fn main() {
	var s = sem(1);
	spawn w(5, s);
	w(5, s);
	while (cell < 10) {}
	print(cell);
	var b = alloc(4);
	sysread(b, 4);
	syswrite(b, 2);
	assert(cell == 10);
	print(rand(3) >= 0);
}`,
}

// disasmAll renders every function's bytecode (ignoring line numbers, which
// legitimately shift under reformatting).
func disasmAll(cp *CompiledProgram) string {
	var sb strings.Builder
	for _, fn := range cp.Funcs {
		sb.WriteString(fn.Name)
		sb.WriteByte('\n')
		for _, ins := range fn.Code {
			ins.Line = 0
			sb.WriteString(ins.Op.String())
			if ins.A != 0 || ins.B != 0 {
				sb.WriteByte(' ')
				sb.WriteString(string(rune('0' + ins.A%10)))
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

func TestFormatRoundTrip(t *testing.T) {
	for i, src := range formatterPrograms {
		formatted, err := Format(src)
		if err != nil {
			t.Fatalf("program %d: Format: %v", i, err)
		}
		// Fixpoint: formatting the formatted source is the identity.
		again, err := Format(formatted)
		if err != nil {
			t.Fatalf("program %d: reformat failed: %v\n%s", i, err, formatted)
		}
		if formatted != again {
			t.Errorf("program %d: formatter not a fixpoint:\n--- first\n%s\n--- second\n%s", i, formatted, again)
		}
		// Semantics: identical bytecode.
		orig, err := Compile(src)
		if err != nil {
			t.Fatalf("program %d: compile original: %v", i, err)
		}
		re, err := Compile(formatted)
		if err != nil {
			t.Fatalf("program %d: compile formatted: %v\n%s", i, err, formatted)
		}
		if disasmAll(orig) != disasmAll(re) {
			t.Errorf("program %d: bytecode changed after formatting:\n%s", i, formatted)
		}
		if !reflect.DeepEqual(orig.Constants, re.Constants) {
			t.Errorf("program %d: constant pool changed", i)
		}
	}
}

func TestFormatBehaviourPreserved(t *testing.T) {
	for i, src := range formatterPrograms {
		formatted, err := Format(src)
		if err != nil {
			t.Fatal(err)
		}
		a, err := RunSource(src, Options{})
		if err != nil {
			t.Fatalf("program %d: run original: %v", i, err)
		}
		b, err := RunSource(formatted, Options{})
		if err != nil {
			t.Fatalf("program %d: run formatted: %v", i, err)
		}
		if !reflect.DeepEqual(a.Output, b.Output) {
			t.Errorf("program %d: output changed: %v vs %v", i, a.Output, b.Output)
		}
	}
}

func TestFormatParenthesization(t *testing.T) {
	cases := []struct{ src, want string }{
		{`fn main() { var x = (1 + 2) * 3; }`, "var x = (1 + 2) * 3;"},
		{`fn main() { var x = 1 + 2 * 3; }`, "var x = 1 + 2 * 3;"},
		{`fn main() { var x = 1 - (2 - 3); }`, "var x = 1 - (2 - 3);"},
		{`fn main() { var x = 1 - 2 - 3; }`, "var x = 1 - 2 - 3;"},
		{`fn main() { var x = (1 + 2) % 5; }`, "var x = (1 + 2) % 5;"},
		{`fn main() { var x = -(3 - 5); }`, "var x = -(3 - 5);"},
		{`fn main() { var x = 1 + 2 == 3 && 1 < 2; }`, "var x = 1 + 2 == 3 && 1 < 2;"},
	}
	for _, tc := range cases {
		out, err := Format(tc.src)
		if err != nil {
			t.Fatalf("Format(%q): %v", tc.src, err)
		}
		if !strings.Contains(out, tc.want) {
			t.Errorf("Format(%q) = %q, missing %q", tc.src, out, tc.want)
		}
	}
}

func TestFormatErrors(t *testing.T) {
	if _, err := Format(`fn main( {`); err == nil {
		t.Error("Format accepted malformed source")
	}
}
