package vm

import (
	"fmt"
	"io"
	"strings"

	"aprof/internal/obs"
	"aprof/internal/trace"
)

// Options configures an interpreter run.
type Options struct {
	// MaxSteps bounds the total number of executed instructions across all
	// threads (a runaway-loop backstop). 0 means the default of 200M.
	MaxSteps uint64
	// Quantum is the number of basic blocks a thread executes before the
	// scheduler switches to the next runnable thread. 0 means the default
	// of 50. Threads are serialized, as under Valgrind; the quantum only
	// controls interleaving granularity.
	Quantum int
	// HeapLimit bounds the traced heap, in cells. 0 means the default of
	// 1<<26.
	HeapLimit int64
	// Stdout, when non-nil, receives print output as it is produced (it is
	// always also collected in Result.Output).
	Stdout io.Writer
	// Optimize runs the bytecode optimizer (constant folding, jump
	// threading, dead-code elimination) before execution. It changes the
	// basic-block cost metric — like compiling the profiled application
	// with optimizations — but never the traced memory events.
	Optimize bool
	// Suppress enables instrumentation redundancy suppression: per-block
	// memory accesses proven redundant under the profiler's first-access
	// semantics are elided, and aggregable blocks emit one deduplicated
	// batch of events instead of per-instruction Read1/Write1 calls. The
	// resulting trace is smaller but produces byte-identical profiler
	// output. Requires an installed effect planner (importing
	// aprof/internal/vm/analysis installs one); RunProgram fails otherwise.
	Suppress bool
	// Obs, when non-nil and Suppress is set, receives the run's suppression
	// counters under the "vm" scope (see ObsScopeVM).
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.MaxSteps == 0 {
		o.MaxSteps = 200_000_000
	}
	if o.Quantum == 0 {
		o.Quantum = 50
	}
	if o.HeapLimit == 0 {
		o.HeapLimit = 1 << 26
	}
	return o
}

// Result is the outcome of an interpreter run.
type Result struct {
	// Trace is the merged instrumentation trace of the execution.
	Trace *trace.Trace
	// Output collects the lines printed by the program.
	Output []string
	// Steps is the total number of executed instructions.
	Steps uint64
	// BasicBlocks is the total number of executed basic blocks across all
	// threads (the cost measure).
	BasicBlocks uint64
	// Threads is the number of threads the program ran (including main).
	Threads int
	// Suppress holds the suppression counters of the run; nil unless
	// Options.Suppress was set.
	Suppress *SuppressStats
}

// RuntimeError is an execution error with source context.
type RuntimeError struct {
	Func string
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *RuntimeError) Error() string {
	return fmt.Sprintf("minilang: runtime error in %s (line %d): %s", e.Func, e.Line, e.Msg)
}

// RunSource compiles and runs MiniLang source.
func RunSource(src string, opts Options) (*Result, error) {
	cp, err := Compile(src)
	if err != nil {
		return nil, err
	}
	if opts.Optimize {
		if _, err := cp.Optimize(); err != nil {
			return nil, err
		}
	}
	return RunProgram(cp, opts)
}

// vmThread is one interpreted thread.
type vmThread struct {
	id      trace.ThreadID
	tb      *trace.ThreadBuilder
	frames  []*vmFrame
	bb      uint64
	started bool
	done    bool
	// blockedOn is the semaphore id the thread is waiting on, or -1.
	blockedOn int
	// supOn reports whether the current basic block buffers its memory
	// accesses (ClassAggregate); supBuf holds the pending accesses of the
	// block, flushed at the next block leader or barrier instruction.
	supOn  bool
	supBuf []supAccess
}

// supAccess is one buffered (possibly multi-cell) memory access.
type supAccess struct {
	addr  int64
	size  uint32
	write bool
}

// vmFrame is one activation record.
type vmFrame struct {
	fn     *Func
	pc     int
	locals []int64
	stack  []int64
	// eff is the function's suppression plan; nil when not suppressing.
	eff *PlanFunc
}

func (f *vmFrame) push(v int64) { f.stack = append(f.stack, v) }

func (f *vmFrame) pop() int64 {
	v := f.stack[len(f.stack)-1]
	f.stack = f.stack[:len(f.stack)-1]
	return v
}

// semaphore is a counting semaphore with a FIFO wait queue.
type semaphore struct {
	value   int64
	waiters []*vmThread
}

// interp holds the whole machine state.
type interp struct {
	cp      *CompiledProgram
	opts    Options
	heap    []int64
	heapEnd int64
	sems    []*semaphore
	runq    []*vmThread
	threads []*vmThread
	builder *trace.Builder
	output  []string
	steps   uint64
	extSeq  int64
	randSt  uint64
	nextID  trace.ThreadID
	// plan is the suppression plan; nil when Options.Suppress is off (the
	// default), keeping the tracing hot path untouched.
	plan  *EffectPlan
	stats SuppressStats
}

const maxCallDepth = 4096

// RunProgram executes a compiled program under instrumentation and returns
// the merged trace plus program output.
func RunProgram(cp *CompiledProgram, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	in := &interp{
		cp:      cp,
		opts:    opts,
		builder: trace.NewBuilder(),
		heapEnd: cp.GlobalEnd,
		nextID:  1,
	}
	in.builder.AutoCost(false)
	in.heap = make([]int64, cp.GlobalEnd+1024)
	for _, init := range cp.GlobalInit {
		in.heap[init[0]] = init[1]
	}
	if opts.Suppress {
		// The plan is computed here, on the final bytecode (after any
		// optimization), so Elide/Class indices always match what executes.
		plan, err := planProgram(cp)
		if err != nil {
			return nil, err
		}
		in.plan = plan
	}

	main := in.spawnThread(cp.FuncByName["main"], nil)
	_ = main
	if err := in.schedule(); err != nil {
		return nil, err
	}
	var totalBB uint64
	for _, t := range in.threads {
		totalBB += t.bb
	}
	res := &Result{
		Trace:       in.builder.Trace(),
		Output:      in.output,
		Steps:       in.steps,
		BasicBlocks: totalBB,
		Threads:     len(in.threads),
	}
	if opts.Suppress {
		stats := in.stats
		res.Suppress = &stats
		publishSuppressObs(opts.Obs, stats)
	}
	return res, nil
}

// ObsScopeVM is the obs scope carrying the interpreter's suppression
// counters: suppress_mem_ops, suppress_elided_static, suppress_elided_dynamic,
// suppress_coalesced, suppress_blocks_{aggregated,direct,bail_sys}, and
// suppress_overflows.
const ObsScopeVM = "vm"

func publishSuppressObs(reg *obs.Registry, s SuppressStats) {
	if reg == nil {
		return
	}
	sc := reg.Scope(ObsScopeVM)
	sc.Counter("suppress_mem_ops").Add(s.MemOps)
	sc.Counter("suppress_elided_static").Add(s.ElidedStatic)
	sc.Counter("suppress_elided_dynamic").Add(s.ElidedDynamic)
	sc.Counter("suppress_coalesced").Add(s.Coalesced)
	sc.Counter("suppress_blocks_aggregated").Add(s.BlocksAggregated)
	sc.Counter("suppress_blocks_direct").Add(s.BlocksDirect)
	sc.Counter("suppress_blocks_bail_sys").Add(s.BlocksBailedSys)
	sc.Counter("suppress_overflows").Add(s.Overflows)
}

// spawnThread creates a thread whose root activation runs funcs[fnIdx] with
// the given arguments.
func (in *interp) spawnThread(fnIdx int, args []int64) *vmThread {
	fn := in.cp.Funcs[fnIdx]
	fr := &vmFrame{fn: fn, locals: make([]int64, fn.NumLocals), eff: in.planFor(fnIdx)}
	copy(fr.locals, args)
	t := &vmThread{
		id:        in.nextID,
		frames:    []*vmFrame{fr},
		blockedOn: -1,
	}
	in.nextID++
	t.tb = in.builder.Thread(t.id)
	in.threads = append(in.threads, t)
	in.runq = append(in.runq, t)
	return t
}

// schedule runs the round-robin scheduler until all threads complete.
func (in *interp) schedule() error {
	for len(in.runq) > 0 {
		t := in.runq[0]
		in.runq = in.runq[1:]
		if err := in.runSlice(t); err != nil {
			return err
		}
		if !t.done && t.blockedOn < 0 {
			in.runq = append(in.runq, t)
		}
	}
	for _, t := range in.threads {
		if !t.done {
			return &RuntimeError{
				Func: t.frames[len(t.frames)-1].fn.Name,
				Line: 0,
				Msg:  fmt.Sprintf("deadlock: thread %d blocked on semaphore %d with no runnable threads", t.id, t.blockedOn),
			}
		}
	}
	return nil
}

// runSlice executes t until it crosses Quantum basic-block boundaries,
// blocks, or finishes.
func (in *interp) runSlice(t *vmThread) error {
	if !t.started {
		t.started = true
		// The root activation's call event: the thread begins executing its
		// root function.
		t.tb.SetCost(t.bb)
		t.tb.Call(t.frames[0].fn.Name)
	}
	blocks := 0
	for !t.done && t.blockedOn < 0 {
		fr := t.frames[len(t.frames)-1]
		if fr.fn.BlockStart[fr.pc] {
			if in.plan != nil {
				// Flush before the block counter advances so the buffered
				// events carry the cost of the block they happened in, and
				// before the quantum check so no buffered access can cross a
				// thread switch.
				in.supFlush(t)
			}
			if blocks >= in.opts.Quantum {
				return nil // switch threads at the block boundary
			}
			blocks++
			t.bb++
			if in.plan != nil {
				in.supEnter(t, fr)
			}
		}
		if in.steps >= in.opts.MaxSteps {
			return &RuntimeError{Func: fr.fn.Name, Line: int(fr.fn.Code[fr.pc].Line), Msg: "step limit exceeded (infinite loop?)"}
		}
		in.steps++
		if err := in.step(t, fr); err != nil {
			return err
		}
	}
	return nil
}

// planFor returns the suppression plan of funcs[idx], or nil when off.
func (in *interp) planFor(idx int) *PlanFunc {
	if in.plan == nil {
		return nil
	}
	return &in.plan.Funcs[idx]
}

// supEnter classifies the block led by fr.pc: aggregable blocks start
// buffering, everything else is traced directly. Called right after the
// block-entry bookkeeping, with the previous block's buffer already flushed.
func (in *interp) supEnter(t *vmThread, fr *vmFrame) {
	switch fr.eff.Class[fr.pc] {
	case ClassAggregate:
		t.supOn = true
		in.stats.BlocksAggregated++
	case ClassBailSys:
		t.supOn = false
		in.stats.BlocksBailedSys++
	default:
		t.supOn = false
		in.stats.BlocksDirect++
	}
}

// supBufMax bounds the per-block access buffer. A block with more distinct
// accesses flushes early and keeps buffering — emitting events a redundancy
// check might later have covered is exactly what full instrumentation does,
// so an overflow costs compactness, never correctness.
const supBufMax = 64

// supFlush emits the buffered accesses of t's current block, in first-access
// order, at the thread's current cost.
func (in *interp) supFlush(t *vmThread) {
	if len(t.supBuf) == 0 {
		return
	}
	t.tb.SetCost(t.bb)
	for _, e := range t.supBuf {
		if e.write {
			t.tb.Write(trace.Addr(e.addr), e.size)
		} else {
			t.tb.Read(trace.Addr(e.addr), e.size)
		}
	}
	t.supBuf = t.supBuf[:0]
}

// supMem traces one memory access under the suppression plan: statically
// elided accesses emit nothing; accesses in aggregable blocks are buffered,
// deduplicated against the block's earlier accesses, and coalesced with a
// directly preceding contiguous same-kind access; everything else is traced
// as usual.
//
// The dedup rules mirror the profiler's first-access semantics within one
// scheduling-atomic block (one counter value, one stack top): a re-read of
// an address already accessed in the block is a complete no-op, as is a
// re-write of an address already written; a write after only reads still
// matters (it updates the global write shadow) and is kept.
func (in *interp) supMem(t *vmThread, fr *vmFrame, pc int, addr int64, write bool) {
	in.stats.MemOps++
	if fr.eff.Elide[pc] {
		in.stats.ElidedStatic++
		return
	}
	if !t.supOn {
		t.tb.SetCost(t.bb)
		if write {
			t.tb.Write1(trace.Addr(addr))
		} else {
			t.tb.Read1(trace.Addr(addr))
		}
		return
	}
	for i := range t.supBuf {
		e := &t.supBuf[i]
		if addr >= e.addr && addr < e.addr+int64(e.size) && (e.write || !write) {
			// Covered: any earlier access elides a read; an earlier write
			// elides a write.
			in.stats.ElidedDynamic++
			return
		}
	}
	if n := len(t.supBuf); n > 0 {
		if e := &t.supBuf[n-1]; e.write == write && addr == e.addr+int64(e.size) {
			e.size++
			in.stats.Coalesced++
			return
		}
	}
	if len(t.supBuf) >= supBufMax {
		in.supFlush(t)
		in.stats.Overflows++
	}
	t.supBuf = append(t.supBuf, supAccess{addr: addr, size: 1, write: write})
}

func (in *interp) rtErr(fr *vmFrame, ins Instr, format string, args ...any) error {
	return &RuntimeError{Func: fr.fn.Name, Line: int(ins.Line), Msg: fmt.Sprintf(format, args...)}
}

// checkAddr validates a heap address for an n-cell access.
func (in *interp) checkAddr(fr *vmFrame, ins Instr, addr, n int64) error {
	if addr < heapBase || n < 0 || addr+n > in.heapEnd {
		return in.rtErr(fr, ins, "invalid memory access at address %d (%d cells; heap is [%d, %d))", addr, n, heapBase, in.heapEnd)
	}
	return nil
}

// step executes one instruction of t's topmost frame.
func (in *interp) step(t *vmThread, fr *vmFrame) error {
	ins := fr.fn.Code[fr.pc]
	fr.pc++
	switch ins.Op {
	case OpConst:
		fr.push(in.cp.Constants[ins.A])
	case OpLoadLocal:
		fr.push(fr.locals[ins.A])
	case OpStoreLocal:
		fr.locals[ins.A] = fr.pop()
	case OpLoadMem:
		addr := fr.pop()
		if err := in.checkAddr(fr, ins, addr, 1); err != nil {
			return err
		}
		if in.plan == nil {
			t.tb.SetCost(t.bb)
			t.tb.Read1(trace.Addr(addr))
		} else {
			in.supMem(t, fr, fr.pc-1, addr, false)
		}
		fr.push(in.heap[addr])
	case OpStoreMem:
		value := fr.pop()
		addr := fr.pop()
		if err := in.checkAddr(fr, ins, addr, 1); err != nil {
			return err
		}
		if in.plan == nil {
			t.tb.SetCost(t.bb)
			t.tb.Write1(trace.Addr(addr))
		} else {
			in.supMem(t, fr, fr.pc-1, addr, true)
		}
		in.heap[addr] = value
	case OpAdd:
		y := fr.pop()
		fr.push(fr.pop() + y)
	case OpSub:
		y := fr.pop()
		fr.push(fr.pop() - y)
	case OpMul:
		y := fr.pop()
		fr.push(fr.pop() * y)
	case OpDiv:
		y := fr.pop()
		if y == 0 {
			return in.rtErr(fr, ins, "division by zero")
		}
		fr.push(fr.pop() / y)
	case OpMod:
		y := fr.pop()
		if y == 0 {
			return in.rtErr(fr, ins, "division by zero")
		}
		fr.push(fr.pop() % y)
	case OpNeg:
		fr.push(-fr.pop())
	case OpNot:
		fr.push(boolVal(fr.pop() == 0))
	case OpEq:
		y := fr.pop()
		fr.push(boolVal(fr.pop() == y))
	case OpNe:
		y := fr.pop()
		fr.push(boolVal(fr.pop() != y))
	case OpLt:
		y := fr.pop()
		fr.push(boolVal(fr.pop() < y))
	case OpLe:
		y := fr.pop()
		fr.push(boolVal(fr.pop() <= y))
	case OpGt:
		y := fr.pop()
		fr.push(boolVal(fr.pop() > y))
	case OpGe:
		y := fr.pop()
		fr.push(boolVal(fr.pop() >= y))
	case OpJump:
		fr.pc = int(ins.A)
	case OpJumpIfZero:
		if fr.pop() == 0 {
			fr.pc = int(ins.A)
		}
	case OpJumpIfNonZero:
		if fr.pop() != 0 {
			fr.pc = int(ins.A)
		}
	case OpPop:
		fr.pop()
	case OpCall:
		if len(t.frames) >= maxCallDepth {
			return in.rtErr(fr, ins, "call stack overflow (depth %d)", maxCallDepth)
		}
		callee := in.cp.Funcs[ins.A]
		nargs := int(ins.B)
		nf := &vmFrame{fn: callee, locals: make([]int64, callee.NumLocals), eff: in.planFor(int(ins.A))}
		for i := nargs - 1; i >= 0; i-- {
			nf.locals[i] = fr.pop()
		}
		if in.plan != nil {
			// The call event ticks the profiler counter and pushes a shadow
			// frame: buffered accesses of this block must precede it.
			in.supFlush(t)
		}
		t.tb.SetCost(t.bb)
		t.tb.Call(callee.Name)
		t.frames = append(t.frames, nf)
	case OpSpawn:
		callee := int(ins.A)
		nargs := int(ins.B)
		args := make([]int64, nargs)
		for i := nargs - 1; i >= 0; i-- {
			args[i] = fr.pop()
		}
		in.spawnThread(callee, args)
	case OpReturn:
		ret := fr.pop()
		if in.plan != nil {
			in.supFlush(t)
		}
		t.tb.SetCost(t.bb)
		t.tb.Ret()
		t.frames = t.frames[:len(t.frames)-1]
		if len(t.frames) == 0 {
			t.done = true
			return nil
		}
		t.frames[len(t.frames)-1].push(ret)
	case OpAlloc:
		n := fr.pop()
		if n <= 0 {
			return in.rtErr(fr, ins, "alloc of non-positive size %d", n)
		}
		if in.heapEnd+n > in.opts.HeapLimit {
			return in.rtErr(fr, ins, "heap limit of %d cells exceeded", in.opts.HeapLimit)
		}
		base := in.heapEnd
		in.heapEnd += n
		for int64(len(in.heap)) < in.heapEnd {
			in.heap = append(in.heap, make([]int64, len(in.heap))...)
		}
		fr.push(base)
	case OpSemNew:
		init := fr.pop()
		if init < 0 {
			return in.rtErr(fr, ins, "semaphore initialized to negative value %d", init)
		}
		in.sems = append(in.sems, &semaphore{value: init})
		fr.push(int64(len(in.sems) - 1))
	case OpSemWait:
		id := fr.pop()
		if id < 0 || id >= int64(len(in.sems)) {
			return in.rtErr(fr, ins, "wait on invalid semaphore %d", id)
		}
		s := in.sems[id]
		if in.plan != nil {
			// Both outcomes leave this block: flush before the acquire event
			// or before other threads run while we are blocked.
			in.supFlush(t)
		}
		if s.value > 0 {
			s.value--
			t.tb.SetCost(t.bb)
			t.tb.Acquire(trace.Addr(id))
			fr.push(0)
			return nil
		}
		// Block: the wait is granted later by a signal, which also emits
		// the acquire event and completes the instruction's stack effect.
		t.blockedOn = int(id)
		s.waiters = append(s.waiters, t)
	case OpSemSignal:
		id := fr.pop()
		if id < 0 || id >= int64(len(in.sems)) {
			return in.rtErr(fr, ins, "signal on invalid semaphore %d", id)
		}
		s := in.sems[id]
		if in.plan != nil {
			in.supFlush(t)
		}
		t.tb.SetCost(t.bb)
		t.tb.Release(trace.Addr(id))
		if len(s.waiters) > 0 {
			w := s.waiters[0]
			s.waiters = s.waiters[1:]
			w.blockedOn = -1
			// Complete the waiter's pending wait: acquire event and stack
			// effect, then make it runnable again.
			w.tb.SetCost(w.bb)
			w.tb.Acquire(trace.Addr(id))
			w.frames[len(w.frames)-1].push(0)
			in.runq = append(in.runq, w)
		} else {
			s.value++
		}
		fr.push(0)
	case OpSysRead:
		n := fr.pop()
		base := fr.pop()
		if err := in.checkAddr(fr, ins, base, n); err != nil {
			return err
		}
		if n > 0 {
			if in.plan != nil {
				in.supFlush(t)
			}
			t.tb.SetCost(t.bb)
			t.tb.SysRead(trace.Addr(base), uint32(n))
			for i := int64(0); i < n; i++ {
				in.extSeq++
				in.heap[base+i] = in.extSeq
			}
		}
		fr.push(n)
	case OpSysWrite:
		n := fr.pop()
		base := fr.pop()
		if err := in.checkAddr(fr, ins, base, n); err != nil {
			return err
		}
		if n > 0 {
			if in.plan != nil {
				in.supFlush(t)
			}
			t.tb.SetCost(t.bb)
			t.tb.SysWrite(trace.Addr(base), uint32(n))
		}
		fr.push(n)
	case OpPrint:
		argc := int(ins.A)
		vals := make([]int64, argc)
		for i := argc - 1; i >= 0; i-- {
			vals[i] = fr.pop()
		}
		var sb strings.Builder
		if ins.B >= 0 {
			sb.WriteString(in.cp.Strings[ins.B])
		}
		for i, v := range vals {
			if i > 0 || ins.B >= 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%d", v)
		}
		line := sb.String()
		in.output = append(in.output, line)
		if in.opts.Stdout != nil {
			fmt.Fprintln(in.opts.Stdout, line)
		}
		fr.push(0)
	case OpAssert:
		if fr.pop() == 0 {
			return in.rtErr(fr, ins, "assertion failed")
		}
		fr.push(0)
	case OpRand:
		n := fr.pop()
		if n <= 0 {
			return in.rtErr(fr, ins, "rand of non-positive bound %d", n)
		}
		// SplitMix64: deterministic across runs (the VM is seeded, not the
		// wall clock), so profiled programs stay reproducible.
		in.randSt += 0x9e3779b97f4a7c15
		z := in.randSt
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		fr.push(int64(z % uint64(n)))
	default:
		return in.rtErr(fr, ins, "unhandled opcode %s", ins.Op)
	}
	return nil
}

func boolVal(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
