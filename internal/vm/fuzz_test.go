package vm_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"aprof/internal/vm"
	"aprof/internal/vm/analysis"
)

// FuzzParse fuzzes the MiniLang front end and the analysis pipeline:
// lexing and parsing arbitrary input must either succeed or return an
// error — never panic — and a program that parses must also print and
// re-parse (the printer emits valid MiniLang), lint without panicking, and
// compile without panicking. The bytecode verifier is the compile-time
// oracle: whatever the compiler accepts must verify, both before and after
// optimization (importing the analysis package wires verification into
// Compile and Optimize themselves), and verified programs must never panic
// the interpreter, however they terminate.
func FuzzParse(f *testing.F) {
	corpus, err := filepath.Glob(filepath.Join("testdata", "*.ml"))
	if err != nil {
		f.Fatal(err)
	}
	for _, path := range corpus {
		src, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	f.Add("fn main() { }")
	f.Add("global g = 1; fn main() { let x = g + 1; print(x); }")
	f.Add(`fn main() { let s = "a\nb"; }`)
	f.Add("fn f(a, b) { if a < b { return a; } return b; }")
	f.Add("fn main() { spawn f(); } fn f() { }")
	// Seeds exercising each lint diagnostic (V001..V006).
	f.Add("fn main() { print(x); var x = 1; }")                          // V001 use before declaration
	f.Add("fn main() { { var x = 1; print(x); } x = 2; }")               // V001 use outside scope
	f.Add("fn main() { var dead = 3; }")                                 // V002 unused variable
	f.Add("fn main() { } fn orphan() { return 1; }")                     // V003 unused function
	f.Add("fn main() { return 0; print(1); }")                           // V004 unreachable code
	f.Add("fn main() { while (2 > 1) { break; } if (0) { print(1); } }") // V005 constant condition
	f.Add("fn f(a) { return a; } fn main() { print(f(1, 2)); }")         // V006 wrong arity
	f.Add("fn main() { var a = alloc(4); a[0] = rand(9); print(a[0]); }")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := vm.Parse(src)
		if err != nil {
			return
		}
		printed := prog.String()
		if _, err := vm.Parse(printed); err != nil {
			t.Fatalf("printer emitted unparsable MiniLang: %v\nsource: %q\nprinted: %q", err, src, printed)
		}
		// The lint pass must handle any parseable program.
		_ = analysis.Lint(prog)
		// Compilation may reject the program (unknown names, arity
		// errors...) but must not panic — and must never emit bytecode the
		// verifier rejects (CompileProgram runs the verifier internally; a
		// VerifyError here is a compiler bug, not an input problem).
		cp, err := vm.CompileProgram(prog)
		if err != nil {
			var verr *analysis.VerifyError
			if errors.As(err, &verr) {
				t.Fatalf("compiler emitted unverifiable bytecode: %v\nsource: %q", err, src)
			}
			return
		}
		// Differential oracle: optimizing verified bytecode must yield
		// verified bytecode.
		if _, err := cp.Optimize(); err != nil {
			t.Fatalf("optimizer broke verification: %v\nsource: %q", err, src)
		}
		// Verified programs must never panic the interpreter; runtime
		// errors (division by zero, deadlock, step limit...) are fine.
		_, _ = vm.RunProgram(cp, vm.Options{MaxSteps: 50_000, HeapLimit: 1 << 16})
	})
}
