package vm

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParse fuzzes the MiniLang front end: lexing and parsing arbitrary
// input must either succeed or return an error — never panic — and a
// program that parses must also print and re-parse (the printer emits valid
// MiniLang), and compile without panicking.
func FuzzParse(f *testing.F) {
	corpus, err := filepath.Glob(filepath.Join("testdata", "*.ml"))
	if err != nil {
		f.Fatal(err)
	}
	for _, path := range corpus {
		src, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	f.Add("fn main() { }")
	f.Add("global g = 1; fn main() { let x = g + 1; print(x); }")
	f.Add(`fn main() { let s = "a\nb"; }`)
	f.Add("fn f(a, b) { if a < b { return a; } return b; }")
	f.Add("fn main() { spawn f(); } fn f() { }")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		printed := prog.String()
		if _, err := Parse(printed); err != nil {
			t.Fatalf("printer emitted unparsable MiniLang: %v\nsource: %q\nprinted: %q", err, src, printed)
		}
		// Compilation may reject the program (unknown names, arity
		// errors...) but must not panic.
		_, _ = CompileProgram(prog)
	})
}
