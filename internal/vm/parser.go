package vm

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []Token
	pos  int
}

// Parse lexes and parses a MiniLang program.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.at(TokEOF) {
		switch {
		case p.at(TokFn):
			fn, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, fn)
		case p.at(TokGlobal):
			g, err := p.globalDecl()
			if err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, g)
		default:
			return nil, errAt(p.cur().Pos, "expected 'fn' or 'global' at top level, got %s", p.cur().Kind)
		}
	}
	return prog, nil
}

func (p *parser) cur() Token { return p.toks[p.pos] }
func (p *parser) at(k TokenKind) bool {
	return p.cur().Kind == k
}

func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(k TokenKind) (Token, bool) {
	if p.at(k) {
		return p.advance(), true
	}
	return Token{}, false
}

func (p *parser) expect(k TokenKind) (Token, error) {
	if p.at(k) {
		return p.advance(), nil
	}
	return Token{}, errAt(p.cur().Pos, "expected %s, got %s", k, p.cur().Kind)
}

func (p *parser) globalDecl() (*GlobalDecl, error) {
	kw, _ := p.expect(TokGlobal)
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	g := &GlobalDecl{Name: name.Text, Size: 1, Pos: kw.Pos}
	switch {
	case p.at(TokAssign):
		p.advance()
		neg := false
		if _, ok := p.accept(TokMinus); ok {
			neg = true
		}
		num, err := p.expect(TokNumber)
		if err != nil {
			return nil, err
		}
		g.Init = num.Value
		if neg {
			g.Init = -g.Init
		}
	case p.at(TokLBracket):
		p.advance()
		num, err := p.expect(TokNumber)
		if err != nil {
			return nil, err
		}
		if num.Value <= 0 {
			return nil, errAt(num.Pos, "global array size must be positive, got %d", num.Value)
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		g.IsArray = true
		g.Size = num.Value
	}
	if _, err := p.expect(TokSemicolon); err != nil {
		return nil, err
	}
	return g, nil
}

func (p *parser) funcDecl() (*FuncDecl, error) {
	kw, _ := p.expect(TokFn)
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	fn := &FuncDecl{Name: name.Text, Pos: kw.Pos}
	if !p.at(TokRParen) {
		for {
			param, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			fn.Params = append(fn.Params, param.Text)
			if _, ok := p.accept(TokComma); !ok {
				break
			}
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) block() (*Block, error) {
	open, err := p.expect(TokLBrace)
	if err != nil {
		return nil, err
	}
	b := &Block{Pos: open.Pos}
	for !p.at(TokRBrace) {
		if p.at(TokEOF) {
			return nil, errAt(open.Pos, "unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.advance() // consume '}'
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	switch p.cur().Kind {
	case TokLBrace:
		return p.block()
	case TokVar:
		s, err := p.varStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemicolon); err != nil {
			return nil, err
		}
		return s, nil
	case TokIf:
		return p.ifStmt()
	case TokWhile:
		kw := p.advance()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Pos: kw.Pos}, nil
	case TokFor:
		return p.forStmt()
	case TokReturn:
		kw := p.advance()
		s := &ReturnStmt{Pos: kw.Pos}
		if !p.at(TokSemicolon) {
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.Value = v
		}
		if _, err := p.expect(TokSemicolon); err != nil {
			return nil, err
		}
		return s, nil
	case TokBreak:
		kw := p.advance()
		if _, err := p.expect(TokSemicolon); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: kw.Pos}, nil
	case TokContinue:
		kw := p.advance()
		if _, err := p.expect(TokSemicolon); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: kw.Pos}, nil
	case TokSpawn:
		kw := p.advance()
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		call, err := p.callArgs(name)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemicolon); err != nil {
			return nil, err
		}
		return &SpawnStmt{Call: call, Pos: kw.Pos}, nil
	default:
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemicolon); err != nil {
			return nil, err
		}
		return s, nil
	}
}

// varStmt parses "var name = expr" without the trailing semicolon (shared
// with for-loop headers).
func (p *parser) varStmt() (Stmt, error) {
	kw := p.advance()
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	init, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &VarStmt{Name: name.Text, Init: init, Pos: kw.Pos}, nil
}

// simpleStmt parses an assignment or expression statement without the
// trailing semicolon.
func (p *parser) simpleStmt() (Stmt, error) {
	pos := p.cur().Pos
	lhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, ok := p.accept(TokAssign); ok {
		switch lhs.(type) {
		case *Ident, *IndexExpr:
		default:
			return nil, errAt(pos, "invalid assignment target")
		}
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Target: lhs, Value: rhs, Pos: pos}, nil
	}
	return &ExprStmt{X: lhs, Pos: pos}, nil
}

func (p *parser) ifStmt() (Stmt, error) {
	kw := p.advance()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Cond: cond, Then: then, Pos: kw.Pos}
	if _, ok := p.accept(TokElse); ok {
		if p.at(TokIf) {
			elseIf, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			s.Else = elseIf
		} else {
			blk, err := p.block()
			if err != nil {
				return nil, err
			}
			s.Else = blk
		}
	}
	return s, nil
}

func (p *parser) forStmt() (Stmt, error) {
	kw := p.advance()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	s := &ForStmt{Pos: kw.Pos}
	if !p.at(TokSemicolon) {
		var init Stmt
		var err error
		if p.at(TokVar) {
			init, err = p.varStmt()
		} else {
			init, err = p.simpleStmt()
		}
		if err != nil {
			return nil, err
		}
		s.Init = init
	}
	if _, err := p.expect(TokSemicolon); err != nil {
		return nil, err
	}
	if !p.at(TokSemicolon) {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Cond = cond
	}
	if _, err := p.expect(TokSemicolon); err != nil {
		return nil, err
	}
	if !p.at(TokRParen) {
		post, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		s.Post = post
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

// Expression parsing: precedence climbing.

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	x, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.at(TokOrOr) {
		op := p.advance()
		y, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Op: TokOrOr, X: x, Y: y, Pos: op.Pos}
	}
	return x, nil
}

func (p *parser) andExpr() (Expr, error) {
	x, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.at(TokAndAnd) {
		op := p.advance()
		y, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Op: TokAndAnd, X: x, Y: y, Pos: op.Pos}
	}
	return x, nil
}

func (p *parser) cmpExpr() (Expr, error) {
	x, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case TokEq, TokNe, TokLt, TokLe, TokGt, TokGe:
			op := p.advance()
			y, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			x = &BinaryExpr{Op: op.Kind, X: x, Y: y, Pos: op.Pos}
		default:
			return x, nil
		}
	}
}

func (p *parser) addExpr() (Expr, error) {
	x, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.at(TokPlus) || p.at(TokMinus) {
		op := p.advance()
		y, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Op: op.Kind, X: x, Y: y, Pos: op.Pos}
	}
	return x, nil
}

func (p *parser) mulExpr() (Expr, error) {
	x, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.at(TokStar) || p.at(TokSlash) || p.at(TokPercent) {
		op := p.advance()
		y, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Op: op.Kind, X: x, Y: y, Pos: op.Pos}
	}
	return x, nil
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.at(TokMinus) || p.at(TokBang) {
		op := p.advance()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: op.Kind, X: x, Pos: op.Pos}, nil
	}
	return p.postfixExpr()
}

func (p *parser) postfixExpr() (Expr, error) {
	x, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for p.at(TokLBracket) {
		open := p.advance()
		idx, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		x = &IndexExpr{Base: x, Index: idx, Pos: open.Pos}
	}
	return x, nil
}

func (p *parser) primaryExpr() (Expr, error) {
	tok := p.cur()
	switch tok.Kind {
	case TokNumber:
		p.advance()
		return &NumberLit{Value: tok.Value, Pos: tok.Pos}, nil
	case TokString:
		p.advance()
		return &StringLit{Value: tok.Text, Pos: tok.Pos}, nil
	case TokIdent:
		p.advance()
		if p.at(TokLParen) {
			return p.callArgs(tok)
		}
		return &Ident{Name: tok.Text, Pos: tok.Pos}, nil
	case TokLParen:
		p.advance()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return x, nil
	default:
		return nil, errAt(tok.Pos, "expected an expression, got %s", tok.Kind)
	}
}

// callArgs parses "(" args ")" after a function name token.
func (p *parser) callArgs(name Token) (*CallExpr, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	call := &CallExpr{Name: name.Text, Pos: name.Pos}
	if !p.at(TokRParen) {
		for {
			arg, err := p.expr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, arg)
			if _, ok := p.accept(TokComma); !ok {
				break
			}
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return call, nil
}
