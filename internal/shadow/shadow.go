// Package shadow implements the sparse three-level lookup tables the paper
// uses for shadow memories (§4.1, "Implementation Details"): only chunks
// related to memory cells actually accessed need to be materialized, which
// keeps the per-thread shadow memories cheap for threads that touch little
// memory.
//
// The address space is split as
//
//	[ level-1: upper bits, hash map ][ level-2: midBits ][ level-3: lowBits ]
//
// Level 1 is a map so the full 64-bit address space is covered; levels 2 and
// 3 are dense arrays. The zero value of T is the default content of every
// cell; chunks are allocated on first Store of a non-observed region.
package shadow

import "aprof/internal/trace"

const (
	lowBits  = 12 // cells per leaf chunk: 4096
	midBits  = 10 // leaf chunks per level-2 node: 1024
	lowSize  = 1 << lowBits
	midSize  = 1 << midBits
	lowMask  = lowSize - 1
	midMask  = midSize - 1
	topShift = lowBits + midBits
)

// leaf is a level-3 chunk of cell values.
type leaf[T any] struct {
	cells [lowSize]T
}

// node is a level-2 table of leaf chunks.
type node[T any] struct {
	leaves [midSize]*leaf[T]
}

// Table is a sparse map from trace.Addr to T with zero-valued default
// content and O(1) access.
type Table[T any] struct {
	top map[uint64]*node[T]
	// leafCount tracks materialized leaf chunks for space accounting.
	leafCount int
	// hint caches the most recently touched node to exploit locality.
	hintKey  uint64
	hintNode *node[T]
	// hintHits/hintLookups count node lookups served by the hint vs total,
	// for the observability layer. Plain (non-atomic) fields: a Table is
	// single-goroutine by contract (see Slot), and keeping the hot path free
	// of atomics means the counters cost two register increments whether or
	// not a metrics registry is attached.
	hintHits    uint64
	hintLookups uint64
}

// New returns an empty table.
func New[T any]() *Table[T] {
	return &Table[T]{top: make(map[uint64]*node[T])}
}

// Load returns the value at addr, or the zero value if the cell was never
// stored to.
func (t *Table[T]) Load(addr trace.Addr) T {
	var zero T
	n := t.lookupNode(uint64(addr) >> topShift)
	if n == nil {
		return zero
	}
	lf := n.leaves[(uint64(addr)>>lowBits)&midMask]
	if lf == nil {
		return zero
	}
	return lf.cells[uint64(addr)&lowMask]
}

// Store sets the value at addr, materializing chunks as needed.
func (t *Table[T]) Store(addr trace.Addr, v T) {
	*t.slot(addr) = v
}

// Slot returns a pointer to the cell at addr, materializing chunks as
// needed. The pointer is invalidated by nothing (chunks are never freed), so
// callers may retain it across calls within a single goroutine.
func (t *Table[T]) Slot(addr trace.Addr) *T {
	return t.slot(addr)
}

func (t *Table[T]) slot(addr trace.Addr) *T {
	key := uint64(addr) >> topShift
	n := t.lookupNode(key)
	if n == nil {
		n = &node[T]{}
		t.top[key] = n
		t.hintKey, t.hintNode = key, n
	}
	li := (uint64(addr) >> lowBits) & midMask
	lf := n.leaves[li]
	if lf == nil {
		lf = &leaf[T]{}
		n.leaves[li] = lf
		t.leafCount++
	}
	return &lf.cells[uint64(addr)&lowMask]
}

func (t *Table[T]) lookupNode(key uint64) *node[T] {
	t.hintLookups++
	if t.hintNode != nil && t.hintKey == key {
		t.hintHits++
		return t.hintNode
	}
	n := t.top[key]
	if n != nil {
		t.hintKey, t.hintNode = key, n
	}
	return n
}

// LeafChunks returns the number of materialized level-3 chunks.
func (t *Table[T]) LeafChunks() int { return t.leafCount }

// HintStats returns how many node lookups were served by the locality hint
// and how many happened in total, for the observability layer's hint hit
// rate. Both counters are monotonic over the table's lifetime (Reset clears
// them with the rest of the state).
func (t *Table[T]) HintStats() (hits, lookups uint64) { return t.hintHits, t.hintLookups }

// SizeBytes estimates the memory held by the table: materialized leaves plus
// level-2 pointer arrays, with elemSize the size of T in bytes.
func (t *Table[T]) SizeBytes(elemSize int) int64 {
	const ptrSize = 8
	leafBytes := int64(t.leafCount) * int64(lowSize) * int64(elemSize)
	nodeBytes := int64(len(t.top)) * int64(midSize) * ptrSize
	return leafBytes + nodeBytes
}

// ForEach calls fn for every cell in every materialized chunk whose value is
// non-zero according to isZero. Iteration order is unspecified.
func (t *Table[T]) ForEach(isZero func(T) bool, fn func(trace.Addr, T)) {
	for key, n := range t.top {
		base := key << topShift
		for li, lf := range n.leaves {
			if lf == nil {
				continue
			}
			chunkBase := base | uint64(li)<<lowBits
			for ci := range lf.cells {
				v := lf.cells[ci]
				if isZero(v) {
					continue
				}
				fn(trace.Addr(chunkBase|uint64(ci)), v)
			}
		}
	}
}

// UpdateAll rewrites every cell of every materialized chunk through fn.
// Cells never stored to are not visited (their chunks do not exist).
func (t *Table[T]) UpdateAll(fn func(T) T) {
	for _, n := range t.top {
		for _, lf := range n.leaves {
			if lf == nil {
				continue
			}
			for ci := range lf.cells {
				lf.cells[ci] = fn(lf.cells[ci])
			}
		}
	}
}

// Reset drops all chunks, returning the table to its empty state.
func (t *Table[T]) Reset() {
	t.top = make(map[uint64]*node[T])
	t.leafCount = 0
	t.hintNode = nil
	t.hintKey = 0
	t.hintHits = 0
	t.hintLookups = 0
}
