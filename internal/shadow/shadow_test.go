package shadow

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aprof/internal/trace"
)

func TestLoadDefaultZero(t *testing.T) {
	m := New[uint64]()
	if got := m.Load(12345); got != 0 {
		t.Errorf("Load of untouched cell = %d, want 0", got)
	}
	if m.LeafChunks() != 0 {
		t.Error("Load materialized a chunk")
	}
}

func TestStoreLoad(t *testing.T) {
	m := New[uint64]()
	addrs := []trace.Addr{0, 1, lowSize - 1, lowSize, lowSize * midSize, 1 << 40, 1<<63 + 17}
	for i, a := range addrs {
		m.Store(a, uint64(i)+100)
	}
	for i, a := range addrs {
		if got := m.Load(a); got != uint64(i)+100 {
			t.Errorf("Load(%d) = %d, want %d", a, got, uint64(i)+100)
		}
	}
}

func TestSlotAliasesStore(t *testing.T) {
	m := New[uint64]()
	slot := m.Slot(77)
	*slot = 5
	if got := m.Load(77); got != 5 {
		t.Errorf("Load = %d, want 5", got)
	}
	m.Store(77, 9)
	if *slot != 9 {
		t.Errorf("slot sees %d, want 9", *slot)
	}
}

func TestAgainstMapOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := New[uint64]()
	oracle := make(map[trace.Addr]uint64)
	// Clustered addresses exercise chunk sharing; sparse ones exercise the
	// top-level map.
	for i := 0; i < 20000; i++ {
		var a trace.Addr
		if rng.Intn(2) == 0 {
			a = trace.Addr(rng.Intn(10000))
		} else {
			a = trace.Addr(rng.Uint64())
		}
		if rng.Intn(3) == 0 {
			if got, want := m.Load(a), oracle[a]; got != want {
				t.Fatalf("Load(%d) = %d, want %d", a, got, want)
			}
		} else {
			v := rng.Uint64()
			m.Store(a, v)
			oracle[a] = v
		}
	}
	for a, want := range oracle {
		if got := m.Load(a); got != want {
			t.Fatalf("final Load(%d) = %d, want %d", a, got, want)
		}
	}
}

func TestForEachVisitsExactlyNonZero(t *testing.T) {
	m := New[uint64]()
	want := map[trace.Addr]uint64{
		3:       1,
		4096:    2,
		1 << 30: 3,
		1 << 50: 4,
	}
	for a, v := range want {
		m.Store(a, v)
	}
	m.Store(99, 5)
	m.Store(99, 0) // explicitly zeroed: must not be visited
	got := make(map[trace.Addr]uint64)
	m.ForEach(func(v uint64) bool { return v == 0 }, func(a trace.Addr, v uint64) {
		got[a] = v
	})
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d cells, want %d: %v", len(got), len(want), got)
	}
	for a, v := range want {
		if got[a] != v {
			t.Errorf("ForEach got[%d] = %d, want %d", a, got[a], v)
		}
	}
}

func TestUpdateAll(t *testing.T) {
	m := New[uint64]()
	m.Store(1, 10)
	m.Store(2, 20)
	m.Store(1<<40, 30)
	m.UpdateAll(func(v uint64) uint64 {
		if v == 0 {
			return 0
		}
		return v / 10
	})
	for a, want := range map[trace.Addr]uint64{1: 1, 2: 2, 1 << 40: 3, 7: 0} {
		if got := m.Load(a); got != want {
			t.Errorf("after UpdateAll, Load(%d) = %d, want %d", a, got, want)
		}
	}
}

func TestSpaceAccounting(t *testing.T) {
	m := New[uint8]()
	if m.SizeBytes(1) != 0 {
		t.Error("empty table reports non-zero size")
	}
	m.Store(0, 1)
	one := m.SizeBytes(1)
	if one <= 0 {
		t.Error("non-empty table reports non-positive size")
	}
	m.Store(1, 1) // same chunk
	if got := m.SizeBytes(1); got != one {
		t.Errorf("same-chunk store changed size: %d -> %d", one, got)
	}
	m.Store(1<<40, 1) // new top-level region and chunk
	if got := m.SizeBytes(1); got <= one {
		t.Errorf("new chunk did not grow size: %d -> %d", one, got)
	}
	if m.LeafChunks() != 2 {
		t.Errorf("LeafChunks = %d, want 2", m.LeafChunks())
	}
}

func TestReset(t *testing.T) {
	m := New[uint64]()
	m.Store(5, 5)
	m.Reset()
	if m.Load(5) != 0 || m.LeafChunks() != 0 {
		t.Error("Reset did not clear the table")
	}
	m.Store(5, 7)
	if m.Load(5) != 7 {
		t.Error("table unusable after Reset")
	}
}

// TestQuickStoreLoad is a property test: a Store followed by a Load of the
// same address returns the stored value, and a Load of a different address
// in a fresh table returns zero.
func TestQuickStoreLoad(t *testing.T) {
	f := func(a trace.Addr, v uint64, other trace.Addr) bool {
		m := New[uint64]()
		m.Store(a, v)
		if m.Load(a) != v {
			return false
		}
		if other != a && m.Load(other) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkStoreDense(b *testing.B) {
	m := New[uint64]()
	for i := 0; i < b.N; i++ {
		m.Store(trace.Addr(i&0xffff), uint64(i))
	}
}

func BenchmarkLoadDense(b *testing.B) {
	m := New[uint64]()
	for i := 0; i < 1<<16; i++ {
		m.Store(trace.Addr(i), uint64(i))
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += m.Load(trace.Addr(i & 0xffff))
	}
	_ = sink
}

// TestHintStats checks the locality-hint accounting feeding the
// observability layer: same-node accesses hit the hint, a node switch
// misses it, and Reset clears the counters.
func TestHintStats(t *testing.T) {
	m := New[uint64]()
	if hits, lookups := m.HintStats(); hits != 0 || lookups != 0 {
		t.Fatalf("fresh table: hits=%d lookups=%d", hits, lookups)
	}
	// First access materializes the node (miss); the next two share it.
	m.Store(1, 1)
	m.Store(2, 2)
	m.Load(1)
	hits, lookups := m.HintStats()
	if lookups != 3 {
		t.Errorf("lookups = %d, want 3", lookups)
	}
	if hits != 2 {
		t.Errorf("hits = %d, want 2 (same-node accesses)", hits)
	}
	// Jumping to a distant node must miss the hint.
	far := trace.Addr(1) << 40
	m.Store(far, 9)
	if h2, l2 := m.HintStats(); l2 != 4 || h2 != 2 {
		t.Errorf("after node switch: hits=%d lookups=%d, want 2/4", h2, l2)
	}
	// Hits never exceed lookups, and Reset clears both.
	m.Reset()
	if h3, l3 := m.HintStats(); h3 != 0 || l3 != 0 {
		t.Errorf("after Reset: hits=%d lookups=%d", h3, l3)
	}
}
