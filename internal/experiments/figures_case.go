package experiments

import (
	"fmt"

	"aprof/internal/core"
	"aprof/internal/fit"
	"aprof/internal/metrics"
	"aprof/internal/trace"
	"aprof/internal/workloads"
)

// profileTrace profiles a merged trace with the full drms configuration.
func profileTrace(tr *trace.Trace) (*core.Profiles, error) {
	return core.Run(tr, core.DefaultConfig())
}

// plotSeries converts a routine's worst-case cost plot into a figure series.
func plotSeries(name string, p *core.Profile, metric core.Metric) Series {
	s := Series{Name: name}
	for _, pt := range p.WorstCasePlot(metric) {
		s.Points = append(s.Points, Point{X: float64(pt.N), Y: float64(pt.Cost)})
	}
	return s
}

// fitNote renders the best fit and power-law exponent of a cost plot.
func fitNote(label string, s Series) string {
	pts := make([]fit.Point, len(s.Points))
	for i, p := range s.Points {
		pts[i] = fit.Point{N: p.X, Cost: p.Y}
	}
	best, err := fit.BestFit(pts)
	if err != nil {
		return fmt.Sprintf("%s: %v", label, err)
	}
	exp, r2, err := fit.PowerLaw(pts)
	if err != nil {
		return fmt.Sprintf("%s: best fit %s", label, best.Model.Name)
	}
	return fmt.Sprintf("%s: best fit %s; power-law exponent %.2f (R2=%.3f)", label, best.Model.Name, exp, r2)
}

// Fig1 reproduces the two worked examples of Fig. 1, reporting the metric
// values the paper derives by hand.
func Fig1(Scale) (*Result, error) {
	table := &Table{
		ID:     "fig1",
		Title:  "drms vs rms on the Fig. 1 interleavings",
		Header: []string{"example", "routine", "rms", "drms"},
	}

	// Example (a): f reads x, g (thread T2) overwrites x, f reads x again.
	b := trace.NewBuilder()
	t1, t2 := b.Thread(1), b.Thread(2)
	t1.Call("f")
	t1.Read1(100)
	t2.Call("g")
	t2.Write1(100)
	t2.Ret()
	t1.Read1(100)
	t1.Ret()
	ps, err := profileTrace(b.Trace())
	if err != nil {
		return nil, err
	}
	f := ps.Get("f", 1)
	table.Rows = append(table.Rows, []string{"(a)", "f", fmt.Sprint(f.SumRMS), fmt.Sprint(f.SumDRMS)})

	// Example (b): f reads x, T2 overwrites x, f's child h reads x, f reads
	// x again.
	b = trace.NewBuilder()
	t1, t2 = b.Thread(1), b.Thread(2)
	t1.Call("f")
	t1.Read1(100)
	t2.Call("g")
	t2.Write1(100)
	t2.Ret()
	t1.Call("h")
	t1.Read1(100)
	t1.Ret()
	t1.Read1(100)
	t1.Ret()
	ps, err = profileTrace(b.Trace())
	if err != nil {
		return nil, err
	}
	f = ps.Get("f", 1)
	h := ps.Get("h", 1)
	table.Rows = append(table.Rows,
		[]string{"(b)", "f", fmt.Sprint(f.SumRMS), fmt.Sprint(f.SumDRMS)},
		[]string{"(b)", "h", fmt.Sprint(h.SumRMS), fmt.Sprint(h.SumDRMS)},
	)
	table.Notes = append(table.Notes,
		"paper: (a) rms(f)=1 drms(f)=2; (b) rms(f)=1 drms(f)=2, rms(h)=1 drms(h)=1")
	return &Result{Tables: []*Table{table}}, nil
}

// Fig2 reproduces the producer-consumer pattern: after n iterations the
// consumer's rms is 1 while its drms is n.
func Fig2(scale Scale) (*Result, error) {
	ns := []int{10, 100, 1000}
	if scale == Full {
		ns = append(ns, 10000, 100000)
	}
	table := &Table{
		ID:     "fig2",
		Title:  "producer-consumer (Fig. 2): consumer metrics after n iterations",
		Header: []string{"n", "rms(consumer)", "drms(consumer)"},
	}
	for _, n := range ns {
		ps, err := profileTrace(workloads.ProducerConsumer(n))
		if err != nil {
			return nil, err
		}
		c := ps.Routine("consumer")
		table.Rows = append(table.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(c.SumRMS), fmt.Sprint(c.SumDRMS),
		})
	}
	table.Notes = append(table.Notes, "paper: rms=1, drms=n for every n")
	return &Result{Tables: []*Table{table}}, nil
}

// Fig3 reproduces the buffered stream-read pattern.
func Fig3(scale Scale) (*Result, error) {
	ns := []int{10, 100, 1000}
	if scale == Full {
		ns = append(ns, 10000, 100000)
	}
	table := &Table{
		ID:     "fig3",
		Title:  "data streaming (Fig. 3): streamReader metrics after n refills",
		Header: []string{"n", "rms(streamReader)", "drms(streamReader)", "external induced"},
	}
	for _, n := range ns {
		ps, err := profileTrace(workloads.StreamReader(n, 2))
		if err != nil {
			return nil, err
		}
		sr := ps.Routine("streamReader")
		table.Rows = append(table.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(sr.SumRMS), fmt.Sprint(sr.SumDRMS), fmt.Sprint(sr.InducedExternal),
		})
	}
	table.Notes = append(table.Notes, "paper: rms=1, drms=n for every n")
	return &Result{Tables: []*Table{table}}, nil
}

// Fig4 reproduces the mysql_select cost plots: the drms plot is linear in
// the table size, the rms plot exhibits a false superlinear trend.
func Fig4(scale Scale) (*Result, error) {
	sizes := []int{512, 1024, 2048, 4096, 8192}
	if scale == Full {
		sizes = nil
		for n := 1024; n <= 131072; n *= 2 {
			sizes = append(sizes, n, n+n/2)
		}
	}
	ps, err := profileTrace(workloads.DBScan(sizes, workloads.DefaultDBScanConfig()))
	if err != nil {
		return nil, err
	}
	sel := ps.Routine("mysql_select")
	rms := plotSeries("rms", sel, core.MetricRMS)
	drms := plotSeries("drms", sel, core.MetricDRMS)
	figure := &Figure{
		ID:     "fig4",
		Title:  "mysql_select worst-case cost plots",
		XLabel: "input size estimate (cells)",
		YLabel: "cost (executed basic blocks)",
		Series: []Series{rms, drms},
		Notes: []string{
			fitNote("rms plot", rms),
			fitNote("drms plot", drms),
			"paper: the drms plot correctly characterizes the linear cost trend; the rms plot suggests a false superlinear trend",
		},
	}
	return &Result{Figures: []*Figure{figure}}, nil
}

// Fig5 reproduces the im_generate cost plots of the vips pipeline.
func Fig5(scale Scale) (*Result, error) {
	tiles := []int{40, 80, 160, 320, 640}
	if scale == Full {
		tiles = nil
		for n := 40; n <= 5120; n *= 2 {
			tiles = append(tiles, n, n+n/3)
		}
	}
	ps, err := profileTrace(workloads.VipsImGenerate(tiles, workloads.DefaultVipsImGenerateConfig()))
	if err != nil {
		return nil, err
	}
	gen := ps.Routine("im_generate")
	rms := plotSeries("rms", gen, core.MetricRMS)
	drms := plotSeries("drms", gen, core.MetricDRMS)
	figure := &Figure{
		ID:     "fig5",
		Title:  "im_generate worst-case cost plots (vips)",
		XLabel: "input size estimate (cells)",
		YLabel: "cost (executed basic blocks)",
		Series: []Series{rms, drms},
		Notes: []string{
			fitNote("rms plot", rms),
			fitNote("drms plot", drms),
			"paper: induced first-reads come from thread interaction via shared memory; drms restores the linear trend",
		},
	}
	return &Result{Figures: []*Figure{figure}}, nil
}

// Fig6 reproduces the wbuffer_write_thread point-count progression: 110
// calls collapse onto 2 rms points, expand under drms with external input
// only, and become 110 distinct points under the full drms.
func Fig6(Scale) (*Result, error) {
	cfg := workloads.DefaultVipsWbufferConfig()

	variants := []struct {
		name string
		pcfg core.Config
		met  core.Metric
	}{
		{"(a) rms", core.DefaultConfig(), core.MetricRMS},
		{"(b) drms, external input only", core.Config{ExternalInput: true}, core.MetricDRMS},
		{"(c) drms, external and thread input", core.DefaultConfig(), core.MetricDRMS},
	}
	figure := &Figure{
		ID:     "fig6",
		Title:  "wbuffer_write_thread worst-case cost plots (vips)",
		XLabel: "input size estimate (cells)",
		YLabel: "cost (executed basic blocks)",
	}
	table := &Table{
		ID:     "fig6-points",
		Title:  "distinct plot points per metric variant",
		Header: []string{"variant", "distinct points", "calls"},
	}
	for _, v := range variants {
		ps, err := core.Run(workloads.VipsWbuffer(cfg), v.pcfg)
		if err != nil {
			return nil, err
		}
		p := ps.Routine("wbuffer_write_thread")
		s := plotSeries(v.name, p, v.met)
		figure.Series = append(figure.Series, s)
		table.Rows = append(table.Rows, []string{v.name, fmt.Sprint(len(s.Points)), fmt.Sprint(p.Calls)})
		if v.name == "(c) drms, external and thread input" {
			figure.Notes = append(figure.Notes, fmt.Sprintf(
				"cost-variance indicator: %.3f under rms vs %.3f under full drms — the high rms variance is the paper's clue that input is going unmeasured",
				metrics.VarianceIndicator(p, core.MetricRMS),
				metrics.VarianceIndicator(p, core.MetricDRMS)))
		}
	}
	table.Notes = append(table.Notes,
		"paper: 110 calls; (a) 2 points (65 calls at rms 67, 45 at rms 69); (b) more points from disk activity; (c) all 110 calls distinct")
	return &Result{Tables: []*Table{table}, Figures: []*Figure{figure}}, nil
}

// Fig10 contrasts basic-block counting with wall-clock timing on selection
// sort: both expose the quadratic trend, but the basic-block plot is far
// less noisy.
func Fig10(scale Scale) (*Result, error) {
	var sizes []int
	step, count, repeats := 40, 8, 3
	if scale == Full {
		step, count, repeats = 50, 20, 5
	}
	for i := 1; i <= count; i++ {
		sizes = append(sizes, i*step)
	}

	tr, err := workloads.SelectionSortVM(sizes)
	if err != nil {
		return nil, err
	}
	ps, err := profileTrace(tr)
	if err != nil {
		return nil, err
	}
	sortProfile := ps.Routine("selection_sort")
	bb := plotSeries("executed basic blocks", sortProfile, core.MetricRMS)

	timed := workloads.SelectionSortTimed(sizes, repeats)
	ns := Series{Name: "wall time (ns)"}
	var nsPts []fit.Point
	for _, p := range timed {
		ns.Points = append(ns.Points, Point{X: float64(p.N), Y: float64(p.NS)})
		nsPts = append(nsPts, fit.Point{N: float64(p.N), Cost: float64(p.NS)})
	}

	figure := &Figure{
		ID:     "fig10",
		Title:  "selection sort: counting basic blocks vs measuring running time",
		XLabel: "read memory size (array cells)",
		YLabel: "cost",
		Series: []Series{bb, ns},
		Notes: []string{
			fitNote("basic blocks", bb),
			"paper: basic-block counting yields the same trend as timing with much lower variance",
		},
	}
	if robust, err := fit.RobustPowerLaw(nsPts); err == nil {
		lsq, _, _ := fit.PowerLaw(nsPts)
		figure.Notes = append(figure.Notes, fmt.Sprintf(
			"wall time: Theil-Sen exponent %.2f (least squares %.2f) — the quadratic trend survives timing noise", robust, lsq))
	}
	return &Result{Figures: []*Figure{figure}}, nil
}
