package experiments

import (
	"fmt"

	"aprof/internal/core"
	"aprof/internal/fit"
	"aprof/internal/metrics"
	"aprof/internal/workloads"
)

// VMSuite profiles the interpreted MiniLang applications and the classic
// algorithm collection: the end-to-end validation of the DBI substitute. For
// each multithreaded application it reports the dynamic-workload
// characterization (the analogue of Fig. 15 for real interpreted programs);
// for each algorithm it reports the fitted empirical cost function, which
// must recover the algorithm's textbook complexity.
func VMSuite(scale Scale) (*Result, error) {
	apps := &Table{
		ID:     "vmsuite-apps",
		Title:  "interpreted multithreaded applications: dynamic workload characterization",
		Header: []string{"program", "routine", "rms", "drms", "drms/rms", "thread %", "external %"},
	}
	// Each program is an independent VM execution and profiling run: fan
	// out over the pool, collecting rows at their program's index so the
	// table matches the sequential order.
	progs := workloads.VMPrograms()
	appRows := make([][]string, len(progs))
	err := forEach(len(progs), 0, func(i int) error {
		prog := progs[i]
		tr, err := prog.BuildTrace()
		if err != nil {
			return err
		}
		ps, err := core.Run(tr, core.DefaultConfig())
		if err != nil {
			return err
		}
		s := metrics.Summarize(ps)
		hot := ps.Routine(prog.HotRoutine)
		ratio := 0.0
		if hot.SumRMS > 0 {
			ratio = float64(hot.SumDRMS) / float64(hot.SumRMS)
		}
		appRows[i] = []string{
			prog.Name,
			prog.HotRoutine,
			fmt.Sprint(hot.SumRMS),
			fmt.Sprint(hot.SumDRMS),
			fmt.Sprintf("%.1fx", ratio),
			fmt.Sprintf("%.1f", s.ThreadInputPct),
			fmt.Sprintf("%.1f", s.ExternalInputPct),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	apps.Rows = appRows
	apps.Notes = append(apps.Notes,
		"pipeline/mapreduce take their dynamic input from peer threads; the server from the network — the application classes of §2's patterns, run as real interpreted programs")

	algs := &Table{
		ID:     "vmsuite-algorithms",
		Title:  "algorithmic profiling validation (cost fits of interpreted algorithms)",
		Header: []string{"algorithm", "sizes", "fit vs n", "expected", "exponent vs rms", "expected"},
	}
	algorithms := workloads.Algorithms()
	if scale == Quick {
		// Trim the largest sweep entries to keep the quick run fast.
		for i := range algorithms {
			if len(algorithms[i].Sizes) > 6 {
				algorithms[i].Sizes = algorithms[i].Sizes[:6]
			}
		}
	}
	for _, alg := range algorithms {
		tr, err := alg.BuildTrace()
		if err != nil {
			return nil, err
		}
		ps, err := core.Run(tr, core.DefaultConfig())
		if err != nil {
			return nil, err
		}
		plot := ps.Routine(alg.Name).WorstCasePlot(core.MetricRMS)
		var vsN, vsRMS []fit.Point
		for i, pp := range plot {
			if i < len(alg.Sizes) {
				vsN = append(vsN, fit.Point{N: float64(alg.Sizes[i]), Cost: float64(pp.Cost)})
			}
			vsRMS = append(vsRMS, fit.Point{N: float64(pp.N), Cost: float64(pp.Cost)})
		}
		best, err := fit.BestFit(vsN)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", alg.Name, err)
		}
		exp, _, err := fit.PowerLaw(vsRMS)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", alg.Name, err)
		}
		algs.Rows = append(algs.Rows, []string{
			alg.Name,
			fmt.Sprintf("%d..%d", alg.Sizes[0], alg.Sizes[len(alg.Sizes)-1]),
			best.Model.Name,
			alg.ComplexityVsN,
			fmt.Sprintf("%.2f", exp),
			fmt.Sprintf("%.2f", alg.ExponentVsRMS),
		})
	}
	algs.Notes = append(algs.Notes,
		"binary search: logarithmic in n but linear in its rms — the rms of an activation is the input it actually reads, which for binary search is the log n probed cells")
	return &Result{Tables: []*Table{apps, algs}}, nil
}
