package experiments

// Worker-pool plumbing for the experiment suite: the drivers themselves are
// independent (each regenerates one table or figure), and inside several
// drivers the per-benchmark profiling runs are independent too — the same
// embarrassing parallelism RunConcurrent exploits in the core. forEach is
// the shared pool primitive; RunDrivers runs whole experiments in parallel
// for cmd/experiments.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"aprof/internal/obs"
)

// ObsScopeExperiments carries the experiment-suite metrics: the run_ms
// histogram of per-driver wall time, the runs counter, and one
// wall_ms_<name> gauge per driver.
const ObsScopeExperiments = "experiments"

// forEach invokes fn(i) for i in [0, n) with up to workers goroutines
// (workers <= 0 uses GOMAXPROCS), returning the lowest-indexed error. On
// error the remaining indices are skipped (fn is never called for them),
// mirroring a sequential loop's early return.
func forEach(n, workers int, fn func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if n == 0 {
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunDrivers runs the named experiments concurrently with a pool of workers
// and returns their results in input order. Driver results are independent,
// so parallel execution never changes any table or figure; it only overlaps
// the workload generation and profiling wall-clock. Unknown names and
// driver errors abort the run; ctx cancellation is checked between
// driver starts.
func RunDrivers(ctx context.Context, names []string, scale Scale, workers int) ([]*Result, error) {
	return RunDriversObs(ctx, names, scale, workers, nil)
}

// RunDriversObs is RunDrivers with optional observability: when reg is
// non-nil, every driver's wall time is recorded under the "experiments"
// scope — into the run_ms histogram and a per-driver wall_ms_<name> gauge —
// and the runs counter tracks completed drivers. Timing is reported only
// for drivers that complete (successfully or not) and never alters any
// result. A nil registry makes it identical to RunDrivers.
func RunDriversObs(ctx context.Context, names []string, scale Scale, workers int, reg *obs.Registry) ([]*Result, error) {
	drivers := make([]Driver, len(names))
	for i, name := range names {
		d, ok := DriverByName(name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown experiment %q", name)
		}
		drivers[i] = d
	}
	scope := reg.Scope(ObsScopeExperiments)
	results := make([]*Result, len(drivers))
	err := forEach(len(drivers), workers, func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		start := time.Now()
		res, err := drivers[i].Run(scale)
		if reg != nil {
			ms := time.Since(start).Milliseconds()
			scope.Histogram("run_ms").Observe(uint64(ms))
			scope.Gauge("wall_ms_" + drivers[i].Name).Set(ms)
			scope.Counter("runs").Inc()
		}
		if err != nil {
			return fmt.Errorf("%s: %w", drivers[i].Name, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}
