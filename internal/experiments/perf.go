package experiments

import (
	"fmt"

	"aprof/internal/tools"
	"aprof/internal/workloads"
)

// perfSelection returns the benchmarks used for the performance comparison,
// grouped by suite.
func perfSelection(scale Scale) map[string][]workloads.Benchmark {
	out := map[string][]workloads.Benchmark{}
	for _, b := range suiteSelection(scale) {
		if scale == Quick && (b.Seed%2 == 0) && b.Suite != "MySQL" {
			// Halve the benchmark count at quick scale.
			continue
		}
		out[b.Suite] = append(out[b.Suite], b)
	}
	return out
}

func repeats(scale Scale) int {
	if scale == Full {
		return 5
	}
	return 2
}

// Table1 reproduces the tool comparison: geometric-mean slowdown and space
// overhead of every tool on the OMP-like and PARSEC-like suites.
func Table1(scale Scale) (*Result, error) {
	bySuite := perfSelection(scale)
	suiteNames := []string{"SPEC OMP2012", "PARSEC 2.1"}

	slow := &Table{
		ID:     "table1-slowdown",
		Title:  "slowdown vs native replay (geometric mean)",
		Header: []string{"suite"},
	}
	space := &Table{
		ID:     "table1-space",
		Title:  "space overhead vs program footprint (geometric mean)",
		Header: []string{"suite"},
	}
	for _, f := range tools.All() {
		slow.Header = append(slow.Header, f.Name)
		space.Header = append(space.Header, f.Name)
	}

	for _, suite := range suiteNames {
		benches := bySuite[suite]
		slowdowns := make(map[string][]float64)
		spaces := make(map[string][]float64)
		for _, b := range benches {
			tr := b.Build()
			overheads, err := tools.Compare(tr, tools.CompareConfig{Repeats: repeats(scale)})
			if err != nil {
				return nil, err
			}
			for _, o := range overheads {
				slowdowns[o.Tool] = append(slowdowns[o.Tool], o.Slowdown)
				spaces[o.Tool] = append(spaces[o.Tool], o.SpaceOverhead)
			}
		}
		slowRow := []string{suite}
		spaceRow := []string{suite}
		for _, f := range tools.All() {
			slowRow = append(slowRow, fmt.Sprintf("%.1fx", tools.GeoMean(slowdowns[f.Name])))
			spaceRow = append(spaceRow, fmt.Sprintf("%.1fx", tools.GeoMean(spaces[f.Name])))
		}
		slow.Rows = append(slow.Rows, slowRow)
		space.Rows = append(space.Rows, spaceRow)
	}
	notes := []string{
		"paper (slowdown, SPEC OMP / PARSEC): nulgrind 23.6/12.2, memcheck 94.1/51.8, callgrind 64.8/51.4, helgrind 179.4/153.3, aprof 101.5/57.1, aprof-drms 140.8/68.2",
		"paper (space): nulgrind 1.4/1.8, memcheck 2.0/2.9, callgrind 1.5/2.1, helgrind 4.5/8.4, aprof 2.8/4.6, aprof-drms 3.3/6.1",
		"absolute values differ (the native baseline here is an uninstrumented trace replay, not native x86 execution); the ordering is the comparison target: nulgrind cheapest, helgrind slowest, aprof-drms between aprof and helgrind, recognizing induced first-reads costs ~29% over aprof",
	}
	slow.Notes = notes[:1]
	space.Notes = notes[1:]
	return &Result{Tables: []*Table{slow, space}}, nil
}

// Fig16 reproduces the scaling experiment: slowdown and space overhead as a
// function of the number of threads on the OMP-like suite. The native
// baseline replays threads in parallel (the real program exploits the
// cores), while every tool serializes them, so tool slowdowns grow with the
// thread count exactly as under Valgrind.
func Fig16(scale Scale) (*Result, error) {
	threadCounts := []int{1, 2, 4}
	if scale == Full {
		threadCounts = append(threadCounts, 8)
	}
	benches := perfSelection(scale)["SPEC OMP2012"]
	if len(benches) > 3 && scale == Quick {
		benches = benches[:3]
	}
	// The parallel native baseline must amortize goroutine startup, so the
	// Fig. 16 traces carry substantially more work than the Table 1 ones.
	workScale := 10
	if scale == Full {
		workScale = 30
	}
	for i := range benches {
		benches[i] = benches[i].Scaled(workScale)
	}

	slowFig := &Figure{
		ID:     "fig16-time",
		Title:  "slowdown as a function of the number of threads (SPEC OMP-like)",
		XLabel: "number of threads",
		YLabel: "slowdown vs parallel native",
	}
	spaceFig := &Figure{
		ID:     "fig16-space",
		Title:  "space overhead as a function of the number of threads (SPEC OMP-like)",
		XLabel: "number of threads",
		YLabel: "space overhead",
	}
	series := map[string]*Series{}
	spaceSeries := map[string]*Series{}
	for _, f := range tools.All() {
		series[f.Name] = &Series{Name: f.Name}
		spaceSeries[f.Name] = &Series{Name: f.Name}
	}

	for _, threads := range threadCounts {
		slowdowns := make(map[string][]float64)
		spaces := make(map[string][]float64)
		for _, b := range benches {
			tr := b.WithThreads(threads).Build()
			overheads, err := tools.Compare(tr, tools.CompareConfig{
				Repeats:        repeats(scale),
				ParallelNative: true,
			})
			if err != nil {
				return nil, err
			}
			for _, o := range overheads {
				slowdowns[o.Tool] = append(slowdowns[o.Tool], o.Slowdown)
				spaces[o.Tool] = append(spaces[o.Tool], o.SpaceOverhead)
			}
		}
		for _, f := range tools.All() {
			series[f.Name].Points = append(series[f.Name].Points,
				Point{X: float64(threads), Y: tools.GeoMean(slowdowns[f.Name])})
			spaceSeries[f.Name].Points = append(spaceSeries[f.Name].Points,
				Point{X: float64(threads), Y: tools.GeoMean(spaces[f.Name])})
		}
	}
	for _, f := range tools.All() {
		slowFig.Series = append(slowFig.Series, *series[f.Name])
		spaceFig.Series = append(spaceFig.Series, *spaceSeries[f.Name])
	}
	slowFig.Notes = append(slowFig.Notes,
		"paper: tool slowdown grows with the thread count because Valgrind serializes threads while the native run exploits the cores; space overhead grows modestly, with aprof-drms below helgrind")
	return &Result{Figures: []*Figure{slowFig, spaceFig}}, nil
}
