// Package experiments regenerates every table and figure of the paper's
// evaluation: each driver runs the corresponding workload through the
// profiler (or the tool-comparison harness) and renders the same rows or
// series the paper reports. cmd/experiments exposes the drivers on the
// command line; bench_test.go exercises one per table/figure.
package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Scale selects experiment sizing: Quick keeps runs small enough for tests
// and CI; Full mirrors the scale of the paper's plots.
type Scale int

// Scales.
const (
	Quick Scale = iota
	Full
)

// Point is one (x, y) sample of a figure series.
type Point struct {
	X float64
	Y float64
}

// Series is one labelled curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Figure is a renderable plot: the series hold exactly the data a plotting
// tool needs to redraw the paper's figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Table is a renderable table.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Result is the output of one experiment driver.
type Result struct {
	Tables  []*Table
	Figures []*Figure
}

// JSON renders the result as a machine-readable document for external
// plotting pipelines: {"tables": [...], "figures": [...]} with the same
// field names the Go structs use.
func (r *Result) JSON() ([]byte, error) {
	doc := struct {
		Tables  []*Table  `json:"tables"`
		Figures []*Figure `json:"figures"`
	}{r.Tables, r.Figures}
	return json.MarshalIndent(doc, "", "  ")
}

// String renders all tables and figures as text.
func (r *Result) String() string {
	var sb strings.Builder
	for _, t := range r.Tables {
		sb.WriteString(t.String())
		sb.WriteByte('\n')
	}
	for _, f := range r.Figures {
		sb.WriteString(f.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// String renders the figure as labelled series blocks.
func (f *Figure) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", f.ID, f.Title)
	fmt.Fprintf(&sb, "x: %s   y: %s\n", f.XLabel, f.YLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&sb, "-- series %s (%d points)\n", s.Name, len(s.Points))
		for _, p := range s.Points {
			fmt.Fprintf(&sb, "%g\t%g\n", p.X, p.Y)
		}
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Driver runs one experiment at the given scale.
type Driver struct {
	Name        string
	Description string
	Run         func(Scale) (*Result, error)
}

// Drivers returns every experiment driver keyed and ordered by figure/table
// id.
func Drivers() []Driver {
	return []Driver{
		{"fig1", "drms vs rms on the Fig. 1 interleavings", Fig1},
		{"fig2", "producer-consumer pattern (rms=1, drms=n)", Fig2},
		{"fig3", "buffered data streaming (rms=1, drms=n)", Fig3},
		{"fig4", "mysql_select cost plots, rms vs drms", Fig4},
		{"fig5", "vips im_generate cost plots, rms vs drms", Fig5},
		{"fig6", "vips wbuffer_write_thread point counts", Fig6},
		{"fig10", "selection sort: basic blocks vs wall time", Fig10},
		{"fig11", "routine profile richness curves", Fig11},
		{"fig12", "dynamic input volume curves", Fig12},
		{"fig13", "per-routine thread/external input (MySQL, vips)", Fig13},
		{"fig14", "thread and external input tail curves", Fig14},
		{"fig15", "induced first-read characterization per benchmark", Fig15},
		{"fig16", "time and space overhead vs thread count", Fig16},
		{"table1", "tool slowdown and space overhead comparison", Table1},
		{"interleaving", "drms sensitivity to thread interleaving (§4.2)", Interleaving},
		{"vmsuite", "interpreted VM applications and algorithm fits", VMSuite},
	}
}

// DriverByName looks up a driver.
func DriverByName(name string) (Driver, bool) {
	for _, d := range Drivers() {
		if d.Name == name {
			return d, true
		}
	}
	return Driver{}, false
}
