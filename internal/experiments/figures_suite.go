package experiments

import (
	"fmt"
	"sort"

	"aprof/internal/metrics"
	"aprof/internal/workloads"
)

// suiteSelection returns the benchmarks the aggregate figures run on. Quick
// scale trims rounds to keep test runs fast while preserving every
// benchmark's input mix.
func suiteSelection(scale Scale) []workloads.Benchmark {
	benches := workloads.FullSuite()
	if scale == Quick {
		for i := range benches {
			benches[i].Rounds = benches[i].Rounds / 2
			if benches[i].Rounds == 0 {
				benches[i].Rounds = 1
			}
		}
	}
	return benches
}

// suiteMetrics profiles every benchmark and computes its per-routine
// metrics.
type benchMetrics struct {
	bench    workloads.Benchmark
	routines []metrics.Routine
	summary  metrics.Summary
}

func runSuite(scale Scale) ([]benchMetrics, error) {
	// Each benchmark is an independent build-trace-then-profile run, so the
	// suite fans out over the worker pool; results land at their benchmark's
	// index, keeping the output order (and thus every figure) identical to
	// the sequential loop.
	benches := suiteSelection(scale)
	out := make([]benchMetrics, len(benches))
	err := forEach(len(benches), 0, func(i int) error {
		b := benches[i]
		ps, err := profileTrace(b.Build())
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", b.Name, err)
		}
		out[i] = benchMetrics{
			bench:    b,
			routines: metrics.Compute(ps),
			summary:  metrics.Summarize(ps),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// figure11Names matches the representative benchmark split of the paper's
// Fig. 11/12 panels.
var figureBenchNames = []string{
	"fluidanimate", "mysqlslap", "smithwa", "dedup", "nab",
	"bodytrack", "swaptions", "vips", "x264",
}

func selectBenches(all []benchMetrics, names []string) []benchMetrics {
	var out []benchMetrics
	for _, name := range names {
		for i := range all {
			if all[i].bench.Name == name {
				out = append(out, all[i])
			}
		}
	}
	return out
}

// Fig11 builds the routine profile richness tail curves: a point (x, y)
// means x% of routines have profile richness at least y.
func Fig11(scale Scale) (*Result, error) {
	suite, err := runSuite(scale)
	if err != nil {
		return nil, err
	}
	figure := &Figure{
		ID:     "fig11",
		Title:  "routine profile richness of drms w.r.t. rms",
		XLabel: "percentage of routines",
		YLabel: "profile richness (|drms|-|rms|)/|rms|",
	}
	for _, bm := range selectBenches(suite, figureBenchNames) {
		curve := metrics.TailCurve(metrics.RichnessValues(bm.routines))
		s := Series{Name: bm.bench.Name}
		for _, p := range curve {
			s.Points = append(s.Points, Point{X: p.X, Y: p.Y})
		}
		figure.Series = append(figure.Series, s)
	}
	figure.Notes = append(figure.Notes,
		"paper: only a small percentage of routines has high richness (I/O and thread communication are encapsulated in few components), with factors up to ~10^6 for dedup; negative richness is statistically intangible")
	return &Result{Figures: []*Figure{figure}}, nil
}

// Fig12 builds the dynamic input volume tail curves.
func Fig12(scale Scale) (*Result, error) {
	suite, err := runSuite(scale)
	if err != nil {
		return nil, err
	}
	figure := &Figure{
		ID:     "fig12",
		Title:  "dynamic input volume of drms w.r.t. rms",
		XLabel: "percentage of routines",
		YLabel: "input volume x 100",
	}
	for _, bm := range selectBenches(suite, figureBenchNames) {
		values := metrics.InputVolumeValues(bm.routines)
		for i := range values {
			values[i] *= 100
		}
		curve := metrics.TailCurve(values)
		s := Series{Name: bm.bench.Name}
		for _, p := range curve {
			s.Points = append(s.Points, Point{X: p.X, Y: p.Y})
		}
		figure.Series = append(figure.Series, s)
	}
	figure.Notes = append(figure.Notes,
		"paper: curves decrease steeply from 100 to 0, reaching the minimum around x = 8%: few routines are responsible for thread intercommunication and streamed I/O")
	return &Result{Figures: []*Figure{figure}}, nil
}

// Fig13 builds the routine-by-routine induced first-read histograms for the
// MySQL-like and vips-like applications: for each routine, the percentage of
// its counted reads that are thread- and external-induced, sorted by
// decreasing total induced percentage.
func Fig13(scale Scale) (*Result, error) {
	suite, err := runSuite(scale)
	if err != nil {
		return nil, err
	}
	var figures []*Figure
	for _, name := range []string{"mysqlslap", "vips"} {
		bms := selectBenches(suite, []string{name})
		if len(bms) == 0 {
			return nil, fmt.Errorf("experiments: benchmark %s missing", name)
		}
		rs := bms[0].routines
		sort.Slice(rs, func(i, j int) bool { return rs[i].InducedPct() > rs[j].InducedPct() })
		thread := Series{Name: "thread input"}
		external := Series{Name: "external input"}
		for i, r := range rs {
			thread.Points = append(thread.Points, Point{X: float64(i + 1), Y: r.ThreadInputPct})
			external.Points = append(external.Points, Point{X: float64(i + 1), Y: r.ExternalInputPct})
		}
		figures = append(figures, &Figure{
			ID:     "fig13-" + name,
			Title:  fmt.Sprintf("routine-by-routine thread and external input (%s)", name),
			XLabel: "routine (sorted by decreasing induced first-reads)",
			YLabel: "% induced first-reads",
			Series: []Series{thread, external},
			Notes: []string{
				"paper: induced first-reads of most MySQL routines are due to external input; thread input is predominant in vips",
			},
		})
	}
	return &Result{Figures: figures}, nil
}

// Fig14 builds the thread/external input tail curves: a point (x, y) means
// x% of routines take at least y% of their counted reads from the given
// dynamic source.
func Fig14(scale Scale) (*Result, error) {
	suite, err := runSuite(scale)
	if err != nil {
		return nil, err
	}
	names := []string{"swaptions", "bodytrack", "smithwa", "kdtree", "dedup", "x264"}
	threadFig := &Figure{
		ID:     "fig14-thread",
		Title:  "thread input on a routine basis",
		XLabel: "percentage of routines",
		YLabel: "percentage thread input",
	}
	externalFig := &Figure{
		ID:     "fig14-external",
		Title:  "external input on a routine basis",
		XLabel: "percentage of routines",
		YLabel: "percentage external input",
	}
	for _, bm := range selectBenches(suite, names) {
		tCurve := metrics.TailCurve(metrics.ThreadInputValues(bm.routines))
		eCurve := metrics.TailCurve(metrics.ExternalInputValues(bm.routines))
		ts := Series{Name: bm.bench.Name}
		for _, p := range tCurve {
			ts.Points = append(ts.Points, Point{X: p.X, Y: p.Y})
		}
		es := Series{Name: bm.bench.Name}
		for _, p := range eCurve {
			es.Points = append(es.Points, Point{X: p.X, Y: p.Y})
		}
		threadFig.Series = append(threadFig.Series, ts)
		externalFig.Series = append(externalFig.Series, es)
	}
	return &Result{Figures: []*Figure{threadFig, externalFig}}, nil
}

// Fig15 builds the per-benchmark induced first-read characterization: each
// benchmark's induced reads split between thread and external input (bars
// summing to 100%), sorted by decreasing thread input.
func Fig15(scale Scale) (*Result, error) {
	suite, err := runSuite(scale)
	if err != nil {
		return nil, err
	}
	sort.Slice(suite, func(i, j int) bool {
		return suite[i].summary.ThreadInputPct > suite[j].summary.ThreadInputPct
	})
	table := &Table{
		ID:     "fig15",
		Title:  "characterization of induced first-reads (sorted by thread input)",
		Header: []string{"benchmark", "suite", "thread input %", "external input %", "dyn. input volume"},
	}
	ompMinThread := 100.0
	for _, bm := range suite {
		s := bm.summary
		table.Rows = append(table.Rows, []string{
			bm.bench.Name,
			bm.bench.Suite,
			fmt.Sprintf("%.1f", s.ThreadInputPct),
			fmt.Sprintf("%.1f", s.ExternalInputPct),
			fmt.Sprintf("%.3f", s.DynamicInputVolume),
		})
		if bm.bench.Suite == "SPEC OMP2012" && s.ThreadInputPct < ompMinThread {
			ompMinThread = s.ThreadInputPct
		}
	}
	table.Notes = append(table.Notes,
		fmt.Sprintf("paper: the SPEC OMP2012 benchmarks cluster at the top with thread input >= 69%% (measured minimum here: %.1f%%); mysqlslap is dominated by external input", ompMinThread))
	return &Result{Tables: []*Table{table}}, nil
}
