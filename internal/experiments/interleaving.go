package experiments

import (
	"fmt"
	"math"

	"aprof/internal/metrics"
	"aprof/internal/trace"
	"aprof/internal/workloads"
)

// Interleaving reproduces the scheduler-sensitivity study of §4.2: the same
// application is profiled under several thread interleavings (the paper used
// multiple Valgrind scheduling configurations; here each seed re-draws the
// cross-thread event order while preserving every per-thread stream). The
// paper observes that external input remains stable across runs while
// thread input fluctuates — by less than 2% on average — without
// qualitatively affecting the routine cost plots.
func Interleaving(scale Scale) (*Result, error) {
	seeds := []int64{1, 2, 3, 4}
	if scale == Full {
		seeds = append(seeds, 5, 6, 7, 8, 9, 10)
	}
	names := []string{"fluidanimate", "dedup", "x264", "vips", "smithwa", "mysqlslap"}

	table := &Table{
		ID:     "interleaving",
		Title:  "drms sensitivity to thread interleaving (§4.2)",
		Header: []string{"benchmark", "metric", "mean reads", "min", "max", "fluctuation %"},
	}

	byName := map[string]workloads.Benchmark{}
	for _, b := range suiteSelection(scale) {
		byName[b.Name] = b
	}
	for _, name := range names {
		b, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("experiments: benchmark %s missing", name)
		}
		base := b.Build()
		// Absolute induced-read counts per source: the paper's claim is that
		// the external input itself is schedule-invariant (kernel deliveries
		// do not move relative to their thread), while the thread input
		// fluctuates with the interleaving.
		var threadReads, externalReads []float64
		collect := func(tr *trace.Trace) error {
			ps, err := profileTrace(tr)
			if err != nil {
				return err
			}
			s := metrics.Summarize(ps)
			induced := float64(s.InducedReads)
			threadReads = append(threadReads, induced*s.ThreadInputPct/100)
			externalReads = append(externalReads, induced*s.ExternalInputPct/100)
			return nil
		}
		if err := collect(base); err != nil {
			return nil, err
		}
		for _, seed := range seeds {
			if err := collect(trace.ReinterleaveSync(base, seed, 8)); err != nil {
				return nil, err
			}
		}
		for metricName, shares := range map[string][]float64{
			"thread input":   threadReads,
			"external input": externalReads,
		} {
			mean, lo, hi := summarizeShares(shares)
			fluct := 0.0
			if mean > 0 {
				fluct = 100 * (hi - lo) / mean
			}
			table.Rows = append(table.Rows, []string{
				name, metricName,
				fmt.Sprintf("%.0f", mean),
				fmt.Sprintf("%.0f", lo),
				fmt.Sprintf("%.0f", hi),
				fmt.Sprintf("%.2f", fluct),
			})
		}
	}
	sortRows(table)
	table.Notes = append(table.Notes,
		"paper: external input remains stable across scheduling configurations; thread input shows a mean fluctuation below 2% (with peaks for a few benchmarks), without qualitatively affecting the cost plots")
	return &Result{Tables: []*Table{table}}, nil
}

func summarizeShares(xs []float64) (mean, lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0, 0
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		mean += x
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return mean / float64(len(xs)), lo, hi
}

// sortRows orders rows by benchmark then metric for stable output.
func sortRows(t *Table) {
	rows := t.Rows
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rowLess(rows[j], rows[j-1]); j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
}

func rowLess(a, b []string) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}
