package experiments

import (
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

// jsonUnmarshal is a thin alias so the test reads naturally.
func jsonUnmarshal(data []byte, v any) error { return json.Unmarshal(data, v) }

// TestAllDriversRunQuick runs every experiment driver at quick scale and
// checks it produces renderable output.
func TestAllDriversRunQuick(t *testing.T) {
	for _, d := range Drivers() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			res, err := d.Run(Quick)
			if err != nil {
				t.Fatalf("%s: %v", d.Name, err)
			}
			if len(res.Tables) == 0 && len(res.Figures) == 0 {
				t.Fatalf("%s produced no output", d.Name)
			}
			text := res.String()
			if !strings.Contains(text, "==") {
				t.Errorf("%s rendering missing headers:\n%s", d.Name, text)
			}
		})
	}
}

func TestDriverByName(t *testing.T) {
	if _, ok := DriverByName("fig4"); !ok {
		t.Error("fig4 driver missing")
	}
	if _, ok := DriverByName("fig99"); ok {
		t.Error("nonexistent driver found")
	}
}

// TestFig1Values checks the exact paper-reported metric values.
func TestFig1Values(t *testing.T) {
	res, err := Fig1(Quick)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	want := [][]string{
		{"(a)", "f", "1", "2"},
		{"(b)", "f", "1", "2"},
		{"(b)", "h", "1", "1"},
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(rows), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if rows[i][j] != want[i][j] {
				t.Errorf("row %d col %d = %q, want %q", i, j, rows[i][j], want[i][j])
			}
		}
	}
}

// TestFig2And3Identities checks rms=1, drms=n for every reported n.
func TestFig2And3Identities(t *testing.T) {
	for _, name := range []string{"fig2", "fig3"} {
		d, _ := DriverByName(name)
		res, err := d.Run(Quick)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range res.Tables[0].Rows {
			if row[1] != "1" {
				t.Errorf("%s: n=%s: rms = %s, want 1", name, row[0], row[1])
			}
			if row[2] != row[0] {
				t.Errorf("%s: n=%s: drms = %s, want %s", name, row[0], row[2], row[0])
			}
		}
	}
}

// TestFig4Shape checks the headline result: the drms plot is fitted by the
// linear model while the rms plot exhibits a superlinear apparent exponent.
func TestFig4Shape(t *testing.T) {
	res, err := Fig4(Quick)
	if err != nil {
		t.Fatal(err)
	}
	fig := res.Figures[0]
	notes := strings.Join(fig.Notes, "\n")
	if !strings.Contains(notes, "drms plot: best fit n;") {
		t.Errorf("drms not fitted linear:\n%s", notes)
	}
	// The rms series has far fewer x-spread than drms.
	var rms, drms Series
	for _, s := range fig.Series {
		switch s.Name {
		case "rms":
			rms = s
		case "drms":
			drms = s
		}
	}
	if len(rms.Points) == 0 || len(drms.Points) == 0 {
		t.Fatal("missing series")
	}
	rmsSpread := rms.Points[len(rms.Points)-1].X / rms.Points[0].X
	drmsSpread := drms.Points[len(drms.Points)-1].X / drms.Points[0].X
	if rmsSpread*3 > drmsSpread {
		t.Errorf("rms spread %.2f not much smaller than drms spread %.2f", rmsSpread, drmsSpread)
	}
}

// TestFig6PointCounts checks the 2 / in-between / 110 point progression.
func TestFig6PointCounts(t *testing.T) {
	res, err := Fig6(Quick)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	pts := make([]int, 3)
	for i, row := range rows {
		n, err := strconv.Atoi(row[1])
		if err != nil {
			t.Fatal(err)
		}
		pts[i] = n
	}
	if pts[0] != 2 {
		t.Errorf("rms points = %d, want 2", pts[0])
	}
	if pts[1] <= pts[0] || pts[1] >= pts[2] {
		t.Errorf("external-only points = %d, want between %d and %d", pts[1], pts[0], pts[2])
	}
	if pts[2] != 110 {
		t.Errorf("full drms points = %d, want 110", pts[2])
	}
}

// TestFig15OMPCluster checks that the OMP-like benchmarks cluster at the top
// of the thread-input ordering.
func TestFig15OMPCluster(t *testing.T) {
	res, err := Fig15(Quick)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	if len(rows) < 10 {
		t.Fatalf("only %d rows", len(rows))
	}
	// All OMP rows must report >= 69% thread input; the last row should be
	// the external-dominated MySQL load.
	for _, row := range rows {
		if row[1] != "SPEC OMP2012" {
			continue
		}
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v < 69 {
			t.Errorf("%s: thread input %.1f < 69", row[0], v)
		}
	}
	last := rows[len(rows)-1]
	if last[0] != "mysqlslap" {
		t.Errorf("last row is %s, want mysqlslap (most external input)", last[0])
	}
}

// TestTable1Ordering checks the qualitative Table 1 shape at quick scale:
// nulgrind is the cheapest tool on every suite.
func TestTable1Ordering(t *testing.T) {
	res, err := Table1(Quick)
	if err != nil {
		t.Fatal(err)
	}
	slow := res.Tables[0]
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
		if err != nil {
			t.Fatalf("bad cell %q", s)
		}
		return v
	}
	col := map[string]int{}
	for i, h := range slow.Header {
		col[h] = i
	}
	for _, row := range slow.Rows {
		nul := parse(row[col["nulgrind"]])
		for _, tool := range []string{"memcheck", "helgrind", "aprof", "aprof-drms"} {
			if parse(row[col[tool]]) < nul {
				t.Errorf("%s: %s (%s) faster than nulgrind (%.2f)", row[0], tool, row[col[tool]], nul)
			}
		}
	}
}

// TestTableRendering checks column alignment basics.
func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:     "t",
		Title:  "demo",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"xxxxxx", "1"}},
		Notes:  []string{"a note"},
	}
	out := tab.String()
	for _, want := range []string{"== t: demo ==", "long-header", "xxxxxx", "note: a note", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestFigureRendering(t *testing.T) {
	fig := &Figure{
		ID: "f", Title: "demo", XLabel: "x", YLabel: "y",
		Series: []Series{{Name: "s", Points: []Point{{1, 2}}}},
	}
	out := fig.String()
	for _, want := range []string{"== f: demo ==", "series s", "1\t2"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

// TestResultJSON checks the machine-readable rendering round-trips through
// encoding/json.
func TestResultJSON(t *testing.T) {
	res, err := Fig1(Quick)
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Tables []struct {
			ID   string
			Rows [][]string
		}
	}
	if err := jsonUnmarshal(data, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc.Tables) != 1 || doc.Tables[0].ID != "fig1" || len(doc.Tables[0].Rows) != 3 {
		t.Errorf("unexpected JSON structure: %s", data)
	}
}

// TestInterleavingExternalStability asserts the §4.2 headline at quick
// scale: external-induced reads never fluctuate across schedules.
func TestInterleavingExternalStability(t *testing.T) {
	res, err := Interleaving(Quick)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	racy := map[string]bool{"dedup": true, "x264": true}
	for _, row := range rows {
		if row[1] == "external input" && row[5] != "0.00" {
			t.Errorf("%s: external input fluctuated: %s%%", row[0], row[5])
		}
		if row[1] == "thread input" && !racy[row[0]] && row[5] != "0.00" {
			t.Errorf("%s: synchronized benchmark's thread input fluctuated: %s%%", row[0], row[5])
		}
	}
}
