package metrics

import (
	"math"

	"aprof/internal/core"
)

// Cost-variance indicator (§2.1): when a profiler collapses activations with
// genuinely different workloads onto one input-size value, their costs
// spread widely at that value. The paper uses exactly this signal on
// wbuffer_write_thread — "we observed a high cost variance for these rms
// values: this is a good indicator that some kind of information might not
// be captured correctly". A high indicator under the rms that drops under
// the drms means the drms recovered the missing input.

// VarianceIndicator returns the weighted mean coefficient of variation
// (stddev/mean) of the activation costs across the points of the routine's
// cost plot under the chosen metric. Points with a single activation
// contribute zero; weights are activation counts. The result is 0 for a
// perfectly input-determined cost and grows as activations with unlike costs
// share input-size values.
func VarianceIndicator(p *core.Profile, metric core.Metric) float64 {
	points := p.DRMSPoints
	if metric == core.MetricRMS {
		points = p.RMSPoints
	}
	var weighted float64
	var total uint64
	for _, st := range points {
		total += st.Count
		if st.Count < 2 {
			continue
		}
		mean := st.Mean()
		if mean <= 0 {
			continue
		}
		cv := math.Sqrt(math.Max(st.Variance(), 0)) / mean
		weighted += cv * float64(st.Count)
	}
	if total == 0 {
		return 0
	}
	return weighted / float64(total)
}

// VarianceDrop compares the indicator under rms and drms:
// a value near 1 means the drms eliminated nearly all the unexplained cost
// variance; near 0 means the two metrics explain costs equally well.
func VarianceDrop(p *core.Profile) float64 {
	rms := VarianceIndicator(p, core.MetricRMS)
	if rms == 0 {
		return 0
	}
	drms := VarianceIndicator(p, core.MetricDRMS)
	return (rms - drms) / rms
}
