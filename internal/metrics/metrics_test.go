package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"aprof/internal/core"
	"aprof/internal/trace"
)

// buildStreamingRun profiles a streaming workload where rms collapses to one
// value while drms grows, giving known metric values.
func buildStreamingRun(t *testing.T, calls int) *core.Profiles {
	t.Helper()
	b := trace.NewBuilder()
	tb := b.Thread(1)
	tb.Call("main")
	for i := 0; i < calls; i++ {
		tb.Call("reader")
		tb.SysRead(100, 1)
		for j := 0; j <= i; j++ {
			tb.Read1(100)
		}
		tb.Ret()
	}
	tb.Ret()
	ps, err := core.Run(b.Trace(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

func findRoutine(t *testing.T, rs []Routine, name string) *Routine {
	t.Helper()
	for i := range rs {
		if rs[i].Name == name {
			return &rs[i]
		}
	}
	t.Fatalf("routine %q not in metrics", name)
	return nil
}

func TestComputeRichness(t *testing.T) {
	// Each reader call has drms = 1 (one induced first-read per call: the
	// kernel refill is read i+1 times but only the first read after the
	// refill is induced; subsequent ones are repeat accesses).
	ps := buildStreamingRun(t, 5)
	rs := Compute(ps)
	reader := findRoutine(t, rs, "reader")
	if reader.Calls != 5 {
		t.Fatalf("reader.Calls = %d, want 5", reader.Calls)
	}
	// rms of each call is 1 (cell first accessed by read); drms is 1 as
	// well per call here, so richness is 0 for reader.
	if reader.DistinctRMS != 1 {
		t.Errorf("DistinctRMS = %d, want 1", reader.DistinctRMS)
	}
	// main sees growing drms via roll-up? No: main's own points are a
	// single activation. Richness is about distinct values per routine.
	main := findRoutine(t, rs, "main")
	if main.DistinctDRMS != 1 || main.DistinctRMS != 1 {
		t.Errorf("main distinct = (%d,%d), want (1,1)", main.DistinctRMS, main.DistinctDRMS)
	}
	if main.SumDRMS <= main.SumRMS {
		t.Errorf("main sums: drms %d should exceed rms %d", main.SumDRMS, main.SumRMS)
	}
	if main.InputVolume <= 0 || main.InputVolume >= 1 {
		t.Errorf("main.InputVolume = %f, want in (0,1)", main.InputVolume)
	}
}

func TestRichnessGrowsWithDistinctDRMS(t *testing.T) {
	// A routine whose rms is constant but whose drms differs per call:
	// consumer reads a cell overwritten a growing number of times.
	b := trace.NewBuilder()
	t1 := b.Thread(1)
	t2 := b.Thread(2)
	t2.Call("writer")
	const calls = 8
	t1.Call("main")
	for i := 0; i < calls; i++ {
		t1.Call("consumer")
		for j := 0; j <= i; j++ {
			t2.Write1(7)
			t1.Read1(7)
		}
		t1.Ret()
	}
	t1.Ret()
	t2.Ret()
	ps, err := core.Run(b.Trace(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rs := Compute(ps)
	consumer := findRoutine(t, rs, "consumer")
	if consumer.DistinctRMS != 1 {
		t.Errorf("DistinctRMS = %d, want 1 (always the same single cell)", consumer.DistinctRMS)
	}
	if consumer.DistinctDRMS != calls {
		t.Errorf("DistinctDRMS = %d, want %d (1,2,...,%d induced reads)", consumer.DistinctDRMS, calls, calls)
	}
	wantRichness := float64(calls-1) / 1
	if math.Abs(consumer.Richness-wantRichness) > 1e-9 {
		t.Errorf("Richness = %f, want %f", consumer.Richness, wantRichness)
	}
	if consumer.ThreadInputPct != 100 {
		t.Errorf("ThreadInputPct = %f, want 100", consumer.ThreadInputPct)
	}
	if consumer.ExternalInputPct != 0 {
		t.Errorf("ExternalInputPct = %f, want 0", consumer.ExternalInputPct)
	}
}

func TestSummarizeSplitsInducedReads(t *testing.T) {
	b := trace.NewBuilder()
	t1 := b.Thread(1)
	t2 := b.Thread(2)
	t1.Call("main")
	t2.Call("peer")
	// 3 thread-induced reads.
	for i := 0; i < 3; i++ {
		t2.Write1(1)
		t1.Read1(1)
	}
	// 1 external-induced read.
	t1.SysRead(2, 1)
	t1.Read1(2)
	t1.Ret()
	t2.Ret()
	ps, err := core.Run(b.Trace(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(ps)
	if s.InducedReads != 4 {
		t.Fatalf("InducedReads = %d, want 4", s.InducedReads)
	}
	if math.Abs(s.ThreadInputPct-75) > 1e-9 || math.Abs(s.ExternalInputPct-25) > 1e-9 {
		t.Errorf("split = (%f, %f), want (75, 25)", s.ThreadInputPct, s.ExternalInputPct)
	}
	if math.Abs(s.ThreadInputPct+s.ExternalInputPct-100) > 1e-9 {
		t.Errorf("split does not sum to 100")
	}
	if s.DynamicInputVolume <= 0 || s.DynamicInputVolume >= 1 {
		t.Errorf("DynamicInputVolume = %f, want in (0,1)", s.DynamicInputVolume)
	}
}

func TestSummarizeNoInduced(t *testing.T) {
	b := trace.NewBuilder()
	tb := b.Thread(1)
	tb.Call("f")
	tb.Write1(1)
	tb.Read1(1)
	tb.Ret()
	ps, err := core.Run(b.Trace(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(ps)
	if s.DynamicInputVolume != 0 {
		t.Errorf("DynamicInputVolume = %f, want 0 (drms == rms)", s.DynamicInputVolume)
	}
	if s.ThreadInputPct != 0 || s.ExternalInputPct != 0 {
		t.Errorf("induced split should be zero, got (%f, %f)", s.ThreadInputPct, s.ExternalInputPct)
	}
}

func TestTailCurve(t *testing.T) {
	values := []float64{1, 5, 3, 2}
	curve := TailCurve(values)
	if len(curve) != 4 {
		t.Fatalf("curve has %d points, want 4", len(curve))
	}
	// Descending y, ascending x.
	for i := 1; i < len(curve); i++ {
		if curve[i].Y > curve[i-1].Y {
			t.Errorf("curve y not descending at %d", i)
		}
		if curve[i].X <= curve[i-1].X {
			t.Errorf("curve x not ascending at %d", i)
		}
	}
	if curve[0].X != 25 || curve[0].Y != 5 {
		t.Errorf("first point = %+v, want (25, 5)", curve[0])
	}
	if curve[3].X != 100 || curve[3].Y != 1 {
		t.Errorf("last point = %+v, want (100, 1)", curve[3])
	}
	if TailCurve(nil) != nil {
		t.Error("TailCurve(nil) != nil")
	}
}

func TestAtLeast(t *testing.T) {
	values := []float64{10, 20, 30, 40}
	if got := AtLeast(values, 25); got != 50 {
		t.Errorf("AtLeast(25) = %f, want 50", got)
	}
	if got := AtLeast(values, 100); got != 0 {
		t.Errorf("AtLeast(100) = %f, want 0", got)
	}
	if got := AtLeast(nil, 1); got != 0 {
		t.Errorf("AtLeast(nil) = %f, want 0", got)
	}
}

// TestTailCurveQuick checks the curve properties on random inputs: the
// x-coordinates are a permutation-invariant grid and the curve at x=100
// equals the minimum value.
func TestTailCurveQuick(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return TailCurve(raw) == nil
		}
		curve := TailCurve(raw)
		if len(curve) != len(raw) {
			return false
		}
		minV := raw[0]
		for _, v := range raw {
			minV = math.Min(minV, v)
		}
		last := curve[len(curve)-1]
		if last.X != 100 || last.Y != minV {
			return false
		}
		ys := make([]float64, len(curve))
		for i, p := range curve {
			ys[i] = p.Y
		}
		return sort.IsSorted(sort.Reverse(sort.Float64Slice(ys)))
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// coreTraceBuilder is a tiny indirection so variance tests can build traces
// without importing the trace package twice.
func coreTraceBuilder() *trace.Builder { return trace.NewBuilder() }
