// Package metrics implements the evaluation metrics of §4.1 of the paper:
// routine profile richness, dynamic input volume, thread input and external
// input, plus the cumulative "x% of routines have metric ≥ y" curves used by
// Figs. 11, 12 and 14 and the per-benchmark induced first-read
// characterization of Fig. 15.
package metrics

import (
	"sort"

	"aprof/internal/core"
	"aprof/internal/trace"
)

// Routine aggregates the evaluation metrics of one routine across all
// threads, as the paper does (|rms_r| and |drms_r| count distinct input
// sizes collected by all threads).
type Routine struct {
	ID   trace.RoutineID
	Name string
	// Calls counts collected activations across threads.
	Calls uint64
	// DistinctRMS and DistinctDRMS are |rms_r| and |drms_r|: the numbers of
	// distinct input sizes collected for the routine, i.e. the numbers of
	// points in its two cost plots.
	DistinctRMS  int
	DistinctDRMS int
	// Richness is (|drms_r| − |rms_r|) / |rms_r|; it may be negative when
	// distinct rms values collapse onto fewer drms values.
	Richness float64
	// SumRMS and SumDRMS accumulate per-activation metric values.
	SumRMS  uint64
	SumDRMS uint64
	// InputVolume is 1 − Σrms/Σdrms restricted to this routine's
	// activations, in [0, 1).
	InputVolume float64
	// FirstReads, InducedThread and InducedExternal partition the routine's
	// counted read operations.
	FirstReads      uint64
	InducedThread   uint64
	InducedExternal uint64
	// ThreadInputPct and ExternalInputPct are the percentages of the
	// routine's counted reads (first + induced) that are thread-induced and
	// external-induced, respectively (Figs. 13 and 14).
	ThreadInputPct   float64
	ExternalInputPct float64
}

// InducedPct returns the percentage of the routine's counted reads that are
// induced (thread or external).
func (r *Routine) InducedPct() float64 { return r.ThreadInputPct + r.ExternalInputPct }

// Compute derives per-routine metrics from a profiling run, sorted by
// routine name.
func Compute(ps *core.Profiles) []Routine {
	merged := ps.MergeThreads()
	out := make([]Routine, 0, len(merged))
	for id, p := range merged {
		r := Routine{
			ID:              id,
			Name:            ps.Symbols.Name(id),
			Calls:           p.Calls,
			DistinctRMS:     len(p.RMSPoints),
			DistinctDRMS:    len(p.DRMSPoints),
			SumRMS:          p.SumRMS,
			SumDRMS:         p.SumDRMS,
			FirstReads:      p.FirstReads,
			InducedThread:   p.InducedThread,
			InducedExternal: p.InducedExternal,
		}
		if r.DistinctRMS > 0 {
			r.Richness = float64(r.DistinctDRMS-r.DistinctRMS) / float64(r.DistinctRMS)
		}
		if r.SumDRMS > 0 {
			r.InputVolume = 1 - float64(r.SumRMS)/float64(r.SumDRMS)
		}
		if reads := p.ReadOps(); reads > 0 {
			r.ThreadInputPct = 100 * float64(p.InducedThread) / float64(reads)
			r.ExternalInputPct = 100 * float64(p.InducedExternal) / float64(reads)
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Summary holds the run-level metrics of one benchmark.
type Summary struct {
	// Routines is the number of profiled routines.
	Routines int
	// DynamicInputVolume is 1 − Σrms/Σdrms over all routine activations
	// (§4.1, metric 2), in [0, 1).
	DynamicInputVolume float64
	// ThreadInputPct and ExternalInputPct partition the induced first-reads
	// of the whole run between thread intercommunication and external input
	// (§4.1, metrics 3 and 4); they sum to 100 when any induced first-read
	// exists (Fig. 15).
	ThreadInputPct   float64
	ExternalInputPct float64
	// InducedReads is the total number of induced first-reads.
	InducedReads uint64
	// TotalReads is the total number of counted read operations.
	TotalReads uint64
}

// Summarize derives the run-level metrics.
func Summarize(ps *core.Profiles) Summary {
	var s Summary
	var sumRMS, sumDRMS, first, indThread, indExternal uint64
	routines := make(map[trace.RoutineID]bool)
	for k, p := range ps.ByKey {
		routines[k.Routine] = true
		sumRMS += p.SumRMS
		sumDRMS += p.SumDRMS
		first += p.FirstReads
		indThread += p.InducedThread
		indExternal += p.InducedExternal
	}
	s.Routines = len(routines)
	if sumDRMS > 0 {
		s.DynamicInputVolume = 1 - float64(sumRMS)/float64(sumDRMS)
	}
	s.InducedReads = indThread + indExternal
	s.TotalReads = first + s.InducedReads
	if s.InducedReads > 0 {
		s.ThreadInputPct = 100 * float64(indThread) / float64(s.InducedReads)
		s.ExternalInputPct = 100 * float64(indExternal) / float64(s.InducedReads)
	}
	return s
}

// CurvePoint is one point of a cumulative tail curve: x% of routines have
// metric value at least Y.
type CurvePoint struct {
	X float64 // percentage of routines
	Y float64 // metric value
}

// TailCurve builds the cumulative curve the paper plots in Figs. 11, 12 and
// 14: values are sorted in decreasing order and the i-th value (1-based) is
// emitted at x = 100·i/n, so a point (x, y) means "x% of routines have
// metric ≥ y".
func TailCurve(values []float64) []CurvePoint {
	if len(values) == 0 {
		return nil
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	out := make([]CurvePoint, len(sorted))
	for i, v := range sorted {
		out[i] = CurvePoint{
			X: 100 * float64(i+1) / float64(len(sorted)),
			Y: v,
		}
	}
	return out
}

// AtLeast returns the fraction (in percent) of values that are >= threshold,
// i.e. the x-coordinate at which a tail curve crosses y = threshold.
func AtLeast(values []float64, threshold float64) float64 {
	if len(values) == 0 {
		return 0
	}
	n := 0
	for _, v := range values {
		if v >= threshold {
			n++
		}
	}
	return 100 * float64(n) / float64(len(values))
}

// RichnessValues, InputVolumeValues, ThreadInputValues and
// ExternalInputValues extract per-routine metric vectors for curve
// building.
func RichnessValues(rs []Routine) []float64 {
	out := make([]float64, len(rs))
	for i := range rs {
		out[i] = rs[i].Richness
	}
	return out
}

// InputVolumeValues extracts the per-routine dynamic input volume.
func InputVolumeValues(rs []Routine) []float64 {
	out := make([]float64, len(rs))
	for i := range rs {
		out[i] = rs[i].InputVolume
	}
	return out
}

// ThreadInputValues extracts the per-routine thread-input percentage.
func ThreadInputValues(rs []Routine) []float64 {
	out := make([]float64, len(rs))
	for i := range rs {
		out[i] = rs[i].ThreadInputPct
	}
	return out
}

// ExternalInputValues extracts the per-routine external-input percentage.
func ExternalInputValues(rs []Routine) []float64 {
	out := make([]float64, len(rs))
	for i := range rs {
		out[i] = rs[i].ExternalInputPct
	}
	return out
}
