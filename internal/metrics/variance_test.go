package metrics

import (
	"testing"

	"aprof/internal/core"
	"aprof/internal/workloads"
)

// TestVarianceIndicatorOnWbuffer reproduces the paper's §2.1 diagnostic on
// the wbuffer workload: under the rms, 110 calls with very different costs
// collapse onto 2 points (high cost variance); under the drms every call has
// its own point (zero variance). The indicator must capture that.
func TestVarianceIndicatorOnWbuffer(t *testing.T) {
	tr := workloads.VipsWbuffer(workloads.DefaultVipsWbufferConfig())
	ps, err := core.Run(tr, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := ps.Routine("wbuffer_write_thread")
	rmsCV := VarianceIndicator(p, core.MetricRMS)
	drmsCV := VarianceIndicator(p, core.MetricDRMS)
	if rmsCV <= 0.05 {
		t.Errorf("rms variance indicator = %.4f, want clearly positive", rmsCV)
	}
	if drmsCV != 0 {
		t.Errorf("drms variance indicator = %.4f, want 0 (all 110 points distinct)", drmsCV)
	}
	if drop := VarianceDrop(p); drop < 0.95 {
		t.Errorf("variance drop = %.3f, want ~1 (drms explains the costs)", drop)
	}
}

// TestVarianceIndicatorInputDetermined checks the baseline: a routine whose
// cost is a function of its input size has indicator 0 under both metrics.
func TestVarianceIndicatorInputDetermined(t *testing.T) {
	b := coreTraceBuilder()
	tb := b.Thread(1)
	tb.Call("main")
	for rep := 0; rep < 3; rep++ {
		for n := 10; n <= 50; n += 10 {
			tb.Call("scan")
			tb.Read(1000, uint32(n))
			tb.Work(uint64(2 * n))
			tb.Ret()
		}
	}
	tb.Ret()
	ps, err := core.Run(b.Trace(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := ps.Routine("scan")
	if got := VarianceIndicator(p, core.MetricRMS); got != 0 {
		t.Errorf("input-determined routine has rms indicator %.4f, want 0", got)
	}
	if got := VarianceDrop(p); got != 0 {
		t.Errorf("VarianceDrop = %.4f, want 0", got)
	}
}

func TestVarianceIndicatorEmpty(t *testing.T) {
	b := coreTraceBuilder()
	tb := b.Thread(1)
	tb.Call("f")
	tb.Ret()
	ps, err := core.Run(b.Trace(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := VarianceIndicator(ps.Routine("f"), core.MetricDRMS); got != 0 {
		t.Errorf("indicator of a no-read routine = %.4f, want 0", got)
	}
}
