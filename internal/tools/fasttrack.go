package tools

import (
	"fmt"

	"aprof/internal/shadow"
	"aprof/internal/trace"
)

// FastTrack is the epoch-optimized happens-before race detector of Flanagan
// and Freund: most cells carry only the (thread, clock) epoch of their last
// write and last read in flat shadow tables, with vector-clock work reserved
// for synchronization operations and read-shared cells. It is not one of
// the paper's comparison tools (the paper predates a Valgrind FastTrack);
// it is included as an ablation partner for Helgrind, demonstrating how
// much of helgrind's Table 1 cost is the unoptimized vector-clock handling.
type FastTrack struct {
	threads map[trace.ThreadID]*hgThread
	syncs   map[trace.Addr]vectorClock
	// lastWrite and lastRead hold packed epochs per cell; readShared holds
	// full read vector clocks for the (rare) cells read concurrently by
	// multiple threads.
	lastWrite  *shadow.Table[uint64]
	lastRead   *shadow.Table[uint64]
	readShared map[trace.Addr]vectorClock
	// Races counts detected conflicting access pairs.
	Races int64
}

// epoch packing: 16 bits thread index, 48 bits clock.
func packEpoch(tid uint32, clock uint64) uint64 {
	return uint64(tid)<<48 | (clock & (1<<48 - 1))
}

func unpackEpoch(e uint64) (tid uint32, clock uint64) {
	return uint32(e >> 48), e & (1<<48 - 1)
}

// NewFastTrack returns a fresh epoch-optimized race detector.
func NewFastTrack() *FastTrack {
	return &FastTrack{
		threads:    make(map[trace.ThreadID]*hgThread),
		syncs:      make(map[trace.Addr]vectorClock),
		lastWrite:  shadow.New[uint64](),
		lastRead:   shadow.New[uint64](),
		readShared: make(map[trace.Addr]vectorClock),
	}
}

// Name implements Tool.
func (h *FastTrack) Name() string { return "fasttrack" }

func (h *FastTrack) thread(id trace.ThreadID) *hgThread {
	t := h.threads[id]
	if t == nil {
		t = &hgThread{id: id, index: uint32(len(h.threads) + 1), vc: make(vectorClock)}
		t.vc[t.index] = 1
		h.threads[id] = t
	}
	return t
}

// epochOrdered reports whether the access with packed epoch e is ordered
// before thread t's current state.
func (h *FastTrack) epochOrdered(e uint64, t *hgThread) bool {
	if e == 0 {
		return true
	}
	tid, clock := unpackEpoch(e)
	return clock <= t.vc[tid]
}

// HandleEvent implements Tool.
func (h *FastTrack) HandleEvent(ev *trace.Event) error {
	switch ev.Kind {
	case trace.KindSwitchThread, trace.KindCall, trace.KindReturn:
		return nil
	case trace.KindAcquire:
		t := h.thread(ev.Thread)
		if vc, ok := h.syncs[ev.Addr]; ok {
			t.vc.join(vc)
		}
		return nil
	case trace.KindRelease:
		t := h.thread(ev.Thread)
		vc, ok := h.syncs[ev.Addr]
		if !ok {
			vc = make(vectorClock)
			h.syncs[ev.Addr] = vc
		}
		vc.join(t.vc)
		t.vc[t.index]++
		return nil
	case trace.KindRead, trace.KindUserToKernel:
		t := h.thread(ev.Thread)
		epoch := packEpoch(t.index, t.vc[t.index])
		ev.Cells(func(a trace.Addr) {
			if !h.epochOrdered(h.lastWrite.Load(a), t) {
				h.Races++
			}
			// Same-epoch fast path; escalate to a read vector clock when a
			// second thread reads concurrently.
			slot := h.lastRead.Slot(a)
			if vc, shared := h.readShared[a]; shared {
				vc[t.index] = t.vc[t.index]
				return
			}
			old := *slot
			if old == 0 || h.epochOrdered(old, t) {
				*slot = epoch
				return
			}
			tid, clock := unpackEpoch(old)
			vc := vectorClock{tid: clock, t.index: t.vc[t.index]}
			h.readShared[a] = vc
		})
		return nil
	case trace.KindWrite, trace.KindKernelToUser:
		t := h.thread(ev.Thread)
		epoch := packEpoch(t.index, t.vc[t.index])
		ev.Cells(func(a trace.Addr) {
			if !h.epochOrdered(h.lastWrite.Load(a), t) {
				h.Races++
			}
			if vc, shared := h.readShared[a]; shared {
				for idx, clock := range vc {
					if idx != t.index && clock > t.vc[idx] {
						h.Races++
					}
				}
				delete(h.readShared, a)
				h.lastRead.Store(a, 0)
			} else if !h.epochOrdered(h.lastRead.Load(a), t) {
				h.Races++
			}
			h.lastWrite.Store(a, epoch)
		})
		return nil
	default:
		return fmt.Errorf("fasttrack: unhandled event kind %v", ev.Kind)
	}
}

// Finish implements Tool.
func (h *FastTrack) Finish() error { return nil }

// SpaceBytes implements Tool.
func (h *FastTrack) SpaceBytes() int64 {
	const vcEntry = 16
	const mapEntryOverhead = 48
	total := h.lastWrite.SizeBytes(8) + h.lastRead.SizeBytes(8)
	for _, vc := range h.readShared {
		total += mapEntryOverhead + int64(len(vc))*vcEntry
	}
	for _, t := range h.threads {
		total += int64(len(t.vc)) * vcEntry
	}
	for _, vc := range h.syncs {
		total += int64(len(vc)) * vcEntry
	}
	return total
}
