package tools

import (
	"fmt"
	"sort"
	"strings"

	"aprof/internal/trace"
)

// Callgrind is a call-graph profiler in the style of Valgrind's callgrind:
// it builds the dynamic call graph with call counts per edge and attributes
// exclusive and inclusive basic-block costs and memory-access counts to
// routines.
type Callgrind struct {
	syms    *trace.SymbolTable
	nodes   map[trace.RoutineID]*CallNode
	edges   map[callEdge]int64
	threads map[trace.ThreadID]*cgThread
}

// CallNode aggregates one routine of the call graph.
type CallNode struct {
	Routine   trace.RoutineID
	Calls     int64
	Exclusive uint64
	Inclusive uint64
	Reads     int64
	Writes    int64
}

type callEdge struct {
	caller trace.RoutineID
	callee trace.RoutineID
}

type cgFrame struct {
	rtn       trace.RoutineID
	entryCost uint64
	childCost uint64
}

type cgThread struct {
	stack []cgFrame
	cost  uint64
}

// NewCallgrind returns a call-graph profiler for traces built against syms.
func NewCallgrind(syms *trace.SymbolTable) *Callgrind {
	return &Callgrind{
		syms:    syms,
		nodes:   make(map[trace.RoutineID]*CallNode),
		edges:   make(map[callEdge]int64),
		threads: make(map[trace.ThreadID]*cgThread),
	}
}

// Name implements Tool.
func (c *Callgrind) Name() string { return "callgrind" }

func (c *Callgrind) node(r trace.RoutineID) *CallNode {
	n := c.nodes[r]
	if n == nil {
		n = &CallNode{Routine: r}
		c.nodes[r] = n
	}
	return n
}

func (c *Callgrind) thread(id trace.ThreadID) *cgThread {
	t := c.threads[id]
	if t == nil {
		t = &cgThread{}
		c.threads[id] = t
	}
	return t
}

// HandleEvent implements Tool.
func (c *Callgrind) HandleEvent(ev *trace.Event) error {
	if ev.Kind == trace.KindSwitchThread {
		return nil
	}
	t := c.thread(ev.Thread)
	t.cost = ev.Cost
	switch ev.Kind {
	case trace.KindCall:
		c.node(ev.Routine).Calls++
		if len(t.stack) > 0 {
			c.edges[callEdge{caller: t.stack[len(t.stack)-1].rtn, callee: ev.Routine}]++
		}
		t.stack = append(t.stack, cgFrame{rtn: ev.Routine, entryCost: ev.Cost})
	case trace.KindReturn:
		if len(t.stack) == 0 {
			return fmt.Errorf("callgrind: return on thread %d with empty stack", ev.Thread)
		}
		top := t.stack[len(t.stack)-1]
		t.stack = t.stack[:len(t.stack)-1]
		inclusive := uint64(0)
		if ev.Cost > top.entryCost {
			inclusive = ev.Cost - top.entryCost
		}
		n := c.node(top.rtn)
		n.Inclusive += inclusive
		if inclusive >= top.childCost {
			n.Exclusive += inclusive - top.childCost
		}
		if len(t.stack) > 0 {
			t.stack[len(t.stack)-1].childCost += inclusive
		}
	case trace.KindRead, trace.KindKernelToUser:
		if len(t.stack) > 0 {
			c.node(t.stack[len(t.stack)-1].rtn).Reads += int64(ev.Size)
		}
	case trace.KindWrite, trace.KindUserToKernel:
		if len(t.stack) > 0 {
			c.node(t.stack[len(t.stack)-1].rtn).Writes += int64(ev.Size)
		}
	}
	return nil
}

// Finish implements Tool: pending activations are closed at their thread's
// final cost.
func (c *Callgrind) Finish() error {
	for _, t := range c.threads {
		for len(t.stack) > 0 {
			top := t.stack[len(t.stack)-1]
			t.stack = t.stack[:len(t.stack)-1]
			inclusive := uint64(0)
			if t.cost > top.entryCost {
				inclusive = t.cost - top.entryCost
			}
			n := c.node(top.rtn)
			n.Inclusive += inclusive
			if inclusive >= top.childCost {
				n.Exclusive += inclusive - top.childCost
			}
			if len(t.stack) > 0 {
				t.stack[len(t.stack)-1].childCost += inclusive
			}
		}
	}
	return nil
}

// SpaceBytes implements Tool.
func (c *Callgrind) SpaceBytes() int64 {
	const nodeSize = 6 * 8
	const edgeSize = 3 * 8
	var stackBytes int64
	for _, t := range c.threads {
		stackBytes += int64(cap(t.stack)) * 3 * 8
	}
	return int64(len(c.nodes))*nodeSize + int64(len(c.edges))*edgeSize + stackBytes
}

// Node returns the call-graph node for the named routine, or nil.
func (c *Callgrind) Node(name string) *CallNode {
	id, ok := c.syms.Lookup(name)
	if !ok {
		return nil
	}
	return c.nodes[id]
}

// EdgeCount returns the number of calls along caller→callee.
func (c *Callgrind) EdgeCount(caller, callee string) int64 {
	callerID, ok1 := c.syms.Lookup(caller)
	calleeID, ok2 := c.syms.Lookup(callee)
	if !ok1 || !ok2 {
		return 0
	}
	return c.edges[callEdge{caller: callerID, callee: calleeID}]
}

// Report renders the call graph as a table sorted by inclusive cost.
func (c *Callgrind) Report() string {
	nodes := make([]*CallNode, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Inclusive > nodes[j].Inclusive })
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-28s %10s %12s %12s %10s %10s\n", "routine", "calls", "inclusive", "exclusive", "reads", "writes")
	for _, n := range nodes {
		fmt.Fprintf(&sb, "%-28s %10d %12d %12d %10d %10d\n",
			c.syms.Name(n.Routine), n.Calls, n.Inclusive, n.Exclusive, n.Reads, n.Writes)
	}
	return sb.String()
}
