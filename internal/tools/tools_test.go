package tools

import (
	"math"
	"testing"

	"aprof/internal/trace"
)

// racyTrace builds a two-thread trace with unsynchronized conflicting
// accesses to cell 1 and properly synchronized accesses to cell 2.
func racyTrace() *trace.Trace {
	b := trace.NewBuilder()
	t1 := b.Thread(1)
	t2 := b.Thread(2)
	t1.Call("a")
	t2.Call("b")

	// Race: both write cell 1 with no synchronization.
	t1.Write1(1)
	t2.Write1(1)

	// No race: t1 writes cell 2, releases, t2 acquires, reads.
	t1.Write1(2)
	t1.Release(9)
	t2.Acquire(9)
	t2.Read1(2)

	t1.Ret()
	t2.Ret()
	return b.Trace()
}

type raceDetector interface {
	Tool
	raceCount() int64
}

func (h *Helgrind) raceCount() int64  { return h.Races }
func (h *FastTrack) raceCount() int64 { return h.Races }

func raceDetectors() []func() raceDetector {
	return []func() raceDetector{
		func() raceDetector { return NewHelgrind() },
		func() raceDetector { return NewFastTrack() },
	}
}

func TestHelgrindDetectsRaces(t *testing.T) {
	for _, mk := range raceDetectors() {
		h := mk()
		if err := Run(h, racyTrace()); err != nil {
			t.Fatal(err)
		}
		if h.raceCount() == 0 {
			t.Errorf("%s: no race detected on unsynchronized writes", h.Name())
		}
	}
	h := NewHelgrind()
	if err := Run(h, racyTrace()); err != nil {
		t.Fatal(err)
	}
	// The synchronized pair alone must be race-free.
	b := trace.NewBuilder()
	t1 := b.Thread(1)
	t2 := b.Thread(2)
	t1.Call("a")
	t2.Call("b")
	t1.Write1(2)
	t1.Release(9)
	t2.Acquire(9)
	t2.Read1(2)
	t2.Write1(2)
	t1.Ret()
	t2.Ret()
	syncedTrace := b.Trace()
	for _, mk := range raceDetectors() {
		clean := mk()
		if err := Run(clean, syncedTrace); err != nil {
			t.Fatal(err)
		}
		if clean.raceCount() != 0 {
			t.Errorf("%s: synchronized accesses reported %d races", clean.Name(), clean.raceCount())
		}
	}
}

func TestHelgrindSameThreadNoRace(t *testing.T) {
	b := trace.NewBuilder()
	t1 := b.Thread(1)
	t1.Call("main")
	for i := 0; i < 10; i++ {
		t1.Write1(5)
		t1.Read1(5)
	}
	t1.Ret()
	singleTrace := b.Trace()
	for _, mk := range raceDetectors() {
		h := mk()
		if err := Run(h, singleTrace); err != nil {
			t.Fatal(err)
		}
		if h.raceCount() != 0 {
			t.Errorf("%s: single-thread accesses reported %d races", h.Name(), h.raceCount())
		}
	}
}

func TestMemcheckFlagsUndefinedReads(t *testing.T) {
	b := trace.NewBuilder()
	t1 := b.Thread(1)
	t1.Call("main")
	t1.Read1(100)       // undefined
	t1.Write1(100)      //
	t1.Read1(100)       // defined now
	t1.SysRead(200, 4)  // kernel defines 200..203
	t1.Read(200, 4)     // defined
	t1.Read1(204)       // undefined
	t1.SysWrite(300, 2) // kernel reads undefined cells: 2 hits
	t1.Ret()
	m := NewMemcheck()
	if err := Run(m, b.Trace()); err != nil {
		t.Fatal(err)
	}
	if m.UndefinedReads != 4 {
		t.Errorf("UndefinedReads = %d, want 4", m.UndefinedReads)
	}
	if m.DefinedCells != 5 {
		t.Errorf("DefinedCells = %d, want 5", m.DefinedCells)
	}
}

func TestCallgrindGraph(t *testing.T) {
	b := trace.NewBuilder()
	t1 := b.Thread(1)
	t1.Call("main")
	t1.Work(10)
	for i := 0; i < 3; i++ {
		t1.Call("child")
		t1.Work(100)
		t1.Read(10, 5)
		t1.Write(20, 2)
		t1.Ret()
	}
	t1.Call("other")
	t1.Work(7)
	t1.Ret()
	t1.Ret()

	c := NewCallgrind(b.Symbols())
	tr := b.Trace()
	if err := Run(c, tr); err != nil {
		t.Fatal(err)
	}
	child := c.Node("child")
	if child == nil || child.Calls != 3 {
		t.Fatalf("child node = %+v, want 3 calls", child)
	}
	if child.Reads != 15 || child.Writes != 6 {
		t.Errorf("child accesses = (%d, %d), want (15, 6)", child.Reads, child.Writes)
	}
	if got := c.EdgeCount("main", "child"); got != 3 {
		t.Errorf("edge main->child = %d, want 3", got)
	}
	if got := c.EdgeCount("main", "other"); got != 1 {
		t.Errorf("edge main->other = %d, want 1", got)
	}
	main := c.Node("main")
	if main.Inclusive <= child.Inclusive {
		t.Errorf("main inclusive %d should exceed child inclusive %d", main.Inclusive, child.Inclusive)
	}
	// Exclusive costs sum to the total inclusive cost of main.
	total := main.Exclusive + child.Exclusive + c.Node("other").Exclusive
	if total != main.Inclusive {
		t.Errorf("exclusive sum %d != main inclusive %d", total, main.Inclusive)
	}
	if rep := c.Report(); len(rep) == 0 {
		t.Error("empty report")
	}
}

func TestAprofToolsProduceProfiles(t *testing.T) {
	tr := racyTrace()
	for _, mk := range []func(*trace.SymbolTable) *Aprof{NewAprof, NewAprofDRMS} {
		a := mk(tr.Symbols)
		if err := Run(a, tr); err != nil {
			t.Fatal(err)
		}
		if a.Profiles() == nil || len(a.Profiles().ByKey) == 0 {
			t.Errorf("%s produced no profiles", a.Name())
		}
		if a.SpaceBytes() <= 0 {
			t.Errorf("%s reports non-positive space", a.Name())
		}
	}
}

func TestAllToolsRunOnSharedTrace(t *testing.T) {
	tr := racyTrace()
	for _, f := range All() {
		tool := f.New(tr.Symbols)
		if tool.Name() != f.Name {
			t.Errorf("factory %q built tool named %q", f.Name, tool.Name())
		}
		if err := Run(tool, tr); err != nil {
			t.Errorf("%s: %v", f.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("helgrind"); !ok {
		t.Error("helgrind not found")
	}
	if _, ok := ByName("bogus"); ok {
		t.Error("bogus tool found")
	}
}

func TestCompareProducesOverheads(t *testing.T) {
	// A somewhat larger trace so timings are non-degenerate.
	b := trace.NewBuilder()
	t1 := b.Thread(1)
	t2 := b.Thread(2)
	t1.Call("main")
	t2.Call("worker")
	for i := 0; i < 20000; i++ {
		a := trace.Addr(i % 512)
		t1.Write1(a)
		t2.Read1(a)
	}
	t1.Ret()
	t2.Ret()
	tr := b.Trace()

	for _, parallel := range []bool{false, true} {
		overheads, err := Compare(tr, CompareConfig{Repeats: 2, ParallelNative: parallel})
		if err != nil {
			t.Fatal(err)
		}
		if len(overheads) != len(All()) {
			t.Fatalf("got %d overheads, want %d", len(overheads), len(All()))
		}
		bySlot := map[string]Overhead{}
		for _, o := range overheads {
			if o.Slowdown <= 0 || math.IsInf(o.Slowdown, 0) || math.IsNaN(o.Slowdown) {
				t.Errorf("%s: bad slowdown %f", o.Tool, o.Slowdown)
			}
			if o.SpaceOverhead < 0 {
				t.Errorf("%s: negative space overhead", o.Tool)
			}
			bySlot[o.Tool] = o
		}
		// Qualitative Table 1 shape: nulgrind is the cheapest tool.
		for _, other := range []string{"memcheck", "helgrind", "aprof", "aprof-drms"} {
			if bySlot["nulgrind"].Slowdown > bySlot[other].Slowdown {
				t.Errorf("nulgrind (%.2f) slower than %s (%.2f)", bySlot["nulgrind"].Slowdown, other, bySlot[other].Slowdown)
			}
		}
	}
}

func TestCompareToolFilter(t *testing.T) {
	b := trace.NewBuilder()
	tb := b.Thread(1)
	tb.Call("main")
	tb.Write(1, 64)
	tb.Ret()
	tr := b.Trace()
	overheads, err := Compare(tr, CompareConfig{Repeats: 1, Tools: []string{"nulgrind", "aprof"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(overheads) != 2 || overheads[0].Tool != "nulgrind" || overheads[1].Tool != "aprof" {
		t.Errorf("filter produced %+v", overheads)
	}
	if _, err := Compare(tr, CompareConfig{Tools: []string{"nope"}}); err == nil {
		t.Error("unknown tool accepted")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Errorf("GeoMean(2,8) = %f, want 4", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %f, want 0", got)
	}
	if got := GeoMean([]float64{1, 0}); got != 0 {
		t.Errorf("GeoMean with zero = %f, want 0", got)
	}
}

func TestNativeTimesPositive(t *testing.T) {
	b := trace.NewBuilder()
	t1 := b.Thread(1)
	t2 := b.Thread(2)
	t1.Call("a")
	t2.Call("b")
	for i := 0; i < 1000; i++ {
		t1.Read1(trace.Addr(i))
		t2.Read1(trace.Addr(i))
	}
	t1.Ret()
	t2.Ret()
	tr := b.Trace()
	if NativeTime(tr, 2) <= 0 {
		t.Error("serialized native time not positive")
	}
	if NativeParallelTime(tr, 2) <= 0 {
		t.Error("parallel native time not positive")
	}
}

func TestMemcheckCompression(t *testing.T) {
	m := NewMemcheck()
	b := trace.NewBuilder()
	t1 := b.Thread(1)
	t1.Call("main")
	// Define every cell of one chunk except the last, checking space, then
	// complete it and verify the bitmap is compressed away.
	t1.Write(0, 4095)
	t1.Ret()
	tr := b.Trace()
	if err := Run(m, tr); err != nil {
		t.Fatal(err)
	}
	before := m.SpaceBytes()
	if before < 512 {
		t.Fatalf("expected a live bitmap, space = %d", before)
	}
	m.define(4095)
	after := m.SpaceBytes()
	if after >= before {
		t.Errorf("chunk completion did not compress: %d -> %d", before, after)
	}
	if !m.isDefined(17) || !m.isDefined(4095) {
		t.Error("compressed chunk lost definedness")
	}
	if m.DefinedCells != 4096 {
		t.Errorf("DefinedCells = %d, want 4096", m.DefinedCells)
	}
	// Idempotent re-definition of a compressed chunk.
	m.define(17)
	if m.DefinedCells != 4096 {
		t.Errorf("re-define changed count to %d", m.DefinedCells)
	}
}
