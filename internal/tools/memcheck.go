package tools

import "aprof/internal/trace"

// Memcheck is a memory-error detector in the style of Valgrind's memcheck:
// it maintains per-cell definedness shadow state and flags reads of
// never-defined memory. Like the original, it does not track function calls
// and returns, and it compresses its shadow memory with distinguished
// secondary maps: once every cell of a chunk is defined, the chunk's bitmap
// is dropped and replaced by a single "all defined" marker. The paper
// credits exactly this compression (plus thread-count independence) for
// memcheck using less space than aprof-drms despite shadowing all of
// memory.
type Memcheck struct {
	chunks map[uint64]*mcChunk
	// allDefined marks chunks whose every cell is defined; their bitmaps
	// have been freed.
	allDefined map[uint64]struct{}
	// UndefinedReads counts reads of cells with no preceding write (the
	// analogue of memcheck's "use of uninitialised value").
	UndefinedReads int64
	// DefinedCells counts cells made defined at least once.
	DefinedCells int64
}

const (
	mcChunkBits  = 12
	mcChunkCells = 1 << mcChunkBits
	mcChunkMask  = mcChunkCells - 1
	mcChunkWords = mcChunkCells / 64
)

// mcChunk is one secondary map: a definedness bitmap plus a population
// count used to detect the all-defined state.
type mcChunk struct {
	bits    [mcChunkWords]uint64
	defined int
}

// NewMemcheck returns a fresh definedness checker.
func NewMemcheck() *Memcheck {
	return &Memcheck{
		chunks:     make(map[uint64]*mcChunk),
		allDefined: make(map[uint64]struct{}),
	}
}

// Name implements Tool.
func (m *Memcheck) Name() string { return "memcheck" }

func (m *Memcheck) define(a trace.Addr) {
	id := uint64(a) >> mcChunkBits
	if _, full := m.allDefined[id]; full {
		return
	}
	c := m.chunks[id]
	if c == nil {
		c = &mcChunk{}
		m.chunks[id] = c
	}
	word, bit := (uint64(a)&mcChunkMask)/64, uint64(a)%64
	maskBit := uint64(1) << bit
	if c.bits[word]&maskBit != 0 {
		return
	}
	c.bits[word] |= maskBit
	c.defined++
	m.DefinedCells++
	if c.defined == mcChunkCells {
		// Compress: the whole chunk is defined.
		delete(m.chunks, id)
		m.allDefined[id] = struct{}{}
	}
}

func (m *Memcheck) isDefined(a trace.Addr) bool {
	id := uint64(a) >> mcChunkBits
	if _, full := m.allDefined[id]; full {
		return true
	}
	c := m.chunks[id]
	if c == nil {
		return false
	}
	word, bit := (uint64(a)&mcChunkMask)/64, uint64(a)%64
	return c.bits[word]&(1<<bit) != 0
}

// HandleEvent implements Tool.
func (m *Memcheck) HandleEvent(ev *trace.Event) error {
	switch ev.Kind {
	case trace.KindWrite, trace.KindKernelToUser:
		// Stores and kernel fills make cells defined.
		ev.Cells(m.define)
	case trace.KindRead, trace.KindUserToKernel:
		// Loads and kernel reads of the buffer check definedness.
		ev.Cells(func(a trace.Addr) {
			if !m.isDefined(a) {
				m.UndefinedReads++
			}
		})
	}
	return nil
}

// Finish implements Tool.
func (m *Memcheck) Finish() error { return nil }

// SpaceBytes implements Tool.
func (m *Memcheck) SpaceBytes() int64 {
	const chunkBytes = mcChunkWords*8 + 8
	const markerBytes = 16
	return int64(len(m.chunks))*chunkBytes + int64(len(m.allDefined))*markerBytes + 16
}
