package tools

import (
	"aprof/internal/core"
	"aprof/internal/trace"
)

// Aprof wraps the input-sensitive profiler as a Tool. With drms disabled it
// is the rms-only aprof of [5] (no global shadow memory — the configuration
// the paper's "aprof" column measures); with drms enabled it is aprof-drms,
// the tool this repository reproduces.
type Aprof struct {
	name string
	p    *core.Profiler
	out  *core.Profiles
}

// NewAprof returns the rms-only profiler tool.
func NewAprof(syms *trace.SymbolTable) *Aprof {
	return &Aprof{name: "aprof", p: core.NewProfiler(syms, core.RMSOnlyConfig())}
}

// NewAprofDRMS returns the full dynamic-input profiler tool.
func NewAprofDRMS(syms *trace.SymbolTable) *Aprof {
	return &Aprof{name: "aprof-drms", p: core.NewProfiler(syms, core.DefaultConfig())}
}

// Name implements Tool.
func (a *Aprof) Name() string { return a.name }

// HandleEvent implements Tool.
func (a *Aprof) HandleEvent(ev *trace.Event) error { return a.p.HandleEvent(ev) }

// Finish implements Tool.
func (a *Aprof) Finish() error {
	out, err := a.p.Finish()
	if err != nil {
		return err
	}
	a.out = out
	return nil
}

// SpaceBytes implements Tool.
func (a *Aprof) SpaceBytes() int64 { return a.p.SpaceBytes() }

// Profiles returns the collected profiles (after Finish).
func (a *Aprof) Profiles() *core.Profiles { return a.out }
