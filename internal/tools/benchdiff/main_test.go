package main

import (
	"bytes"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: aprof/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkProfilerDeepStacks-1   	     100	  10000000 ns/op	 500000 B/op	    2000 allocs/op
BenchmarkStoreDense-1           	 2000000	       600 ns/op	       0 B/op	       0 allocs/op
BenchmarkStoreDense-1           	 2000000	       550 ns/op	       0 B/op	       0 allocs/op
BenchmarkStream/sub-1           	    1000	   2000000 ns/op	       9.83 MB/s	    1000 B/op	      50 allocs/op
PASS
ok  	aprof/internal/core	3.1s
`

func TestParseBench(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(results), results)
	}
	byName := make(map[string]Bench)
	for _, b := range results {
		byName[b.Name] = b
	}
	// The -1 GOMAXPROCS suffix is stripped; duplicates keep the minimum.
	if b := byName["BenchmarkStoreDense"]; b.NsPerOp != 550 {
		t.Errorf("StoreDense ns/op = %v, want 550 (min of duplicates)", b.NsPerOp)
	}
	// Sub-benchmark names survive; non-ns metrics (MB/s) are skipped.
	if b := byName["BenchmarkStream/sub"]; b.NsPerOp != 2000000 || b.AllocsPerOp != 50 {
		t.Errorf("Stream/sub = %+v", b)
	}
	if b := byName["BenchmarkProfilerDeepStacks"]; b.BPerOp != 500000 {
		t.Errorf("DeepStacks B/op = %v", b.BPerOp)
	}
}

func TestDiffVerdicts(t *testing.T) {
	base := Baseline{
		Date:         "2026-08-06",
		ThresholdPct: 15,
		Benchmarks: []Bench{
			{Name: "BenchmarkSame", NsPerOp: 1000},
			{Name: "BenchmarkSlower", NsPerOp: 1000},
			{Name: "BenchmarkFaster", NsPerOp: 1000},
			{Name: "BenchmarkGone", NsPerOp: 1000},
		},
	}
	results := []Bench{
		{Name: "BenchmarkSame", NsPerOp: 1100},   // +10%: within band
		{Name: "BenchmarkSlower", NsPerOp: 1300}, // +30%: regression
		{Name: "BenchmarkFaster", NsPerOp: 700},  // -30%: improved
		{Name: "BenchmarkNew", NsPerOp: 42},      // not in baseline
	}
	var out bytes.Buffer
	regressions := diff(&out, base, results, 15)
	if regressions != 1 {
		t.Errorf("regressions = %d, want 1\n%s", regressions, out.String())
	}
	table := out.String()
	for _, want := range []string{
		"BenchmarkSame", "ok",
		"BenchmarkSlower", "REGRESSION",
		"BenchmarkFaster", "improved",
		"BenchmarkNew", "new (no baseline)",
		"BenchmarkGone", "missing from run",
	} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func TestParseBenchEmpty(t *testing.T) {
	results, err := parseBench(strings.NewReader("PASS\nok \tpkg\t1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Errorf("parsed %d from benchless input", len(results))
	}
}
