// Command benchdiff compares `go test -bench` output against a committed
// JSON baseline and prints a regression table.
//
// Usage:
//
//	go test -run xxx -bench . -benchmem ./internal/... > bench.txt
//	go run ./internal/tools/benchdiff [-baseline BENCH_core.json] bench.txt
//	go run ./internal/tools/benchdiff -update bench.txt   # write new baseline
//
// With no file argument the bench output is read from stdin. The comparison
// is on ns/op with a ±threshold band (default 15%): benchmarks faster than
// baseline-threshold are reported as improved, slower than
// baseline+threshold as REGRESSION, everything in between as ok. B/op and
// allocs/op are carried in the baseline and table for context but do not
// trigger regressions (allocation counts are stable; timing is the noisy
// signal the band exists for).
//
// The exit code is 0 even when regressions are found, so the CI step is
// non-blocking (single-core CI runners are too noisy for a hard gate);
// -exit-code turns regressions into exit 1 for local enforcement.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Baseline is the schema of BENCH_core.json.
type Baseline struct {
	Description  string  `json:"description"`
	Date         string  `json:"date"`
	ThresholdPct float64 `json:"threshold_pct"`
	Command      string  `json:"command"`
	Benchmarks   []Bench `json:"benchmarks"`
}

// Bench is one benchmark's baseline numbers.
type Bench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_core.json", "baseline file to compare against (and to write with -update)")
		update       = flag.Bool("update", false, "write the parsed results as the new baseline instead of comparing")
		threshold    = flag.Float64("threshold", 0, "ns/op regression threshold in percent (0 = the baseline's own, default 15)")
		exitCode     = flag.Bool("exit-code", false, "exit 1 when a regression is found (default: report only)")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	} else if flag.NArg() > 1 {
		fatal(fmt.Errorf("at most one bench-output file (got %d)", flag.NArg()))
	}

	results, err := parseBench(in)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	if *update {
		pct := *threshold
		if pct == 0 {
			pct = 15
		}
		base := Baseline{
			Description:  "ns/op baseline for the core/shadow/profio/obs/vm benchmarks, checked by `make bench` via internal/tools/benchdiff (non-blocking in CI).",
			Date:         time.Now().UTC().Format("2006-01-02"),
			ThresholdPct: pct,
			Command:      "make bench-baseline",
			Benchmarks:   results,
		}
		if err := writeBaseline(*baselinePath, base); err != nil {
			fatal(err)
		}
		fmt.Printf("benchdiff: wrote %s (%d benchmarks)\n", *baselinePath, len(results))
		return
	}

	base, err := readBaseline(*baselinePath)
	if err != nil {
		fatal(fmt.Errorf("%w (run with -update to create the baseline)", err))
	}
	pct := *threshold
	if pct == 0 {
		pct = base.ThresholdPct
	}
	if pct == 0 {
		pct = 15
	}
	regressions := diff(os.Stdout, base, results, pct)
	if regressions > 0 && *exitCode {
		os.Exit(1)
	}
}

// benchLine matches one `go test -bench` result line:
//
//	BenchmarkName-8   1000   1234 ns/op   56 B/op   7 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

// gomaxprocsSuffix is the trailing -N the bench runner appends to names.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBench extracts (name, ns/op, B/op, allocs/op) from bench output.
// Other per-op metrics (MB/s, custom events/op) are ignored. Duplicate names
// (e.g. -count>1) keep the minimum ns/op, the standard noise-robust choice.
func parseBench(r io.Reader) ([]Bench, error) {
	byName := make(map[string]Bench)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(m[1], "")
		b := Bench{Name: name, NsPerOp: -1}
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchmark %s: bad value %q", name, fields[i])
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			}
		}
		if b.NsPerOp < 0 {
			continue
		}
		if prev, ok := byName[name]; !ok || b.NsPerOp < prev.NsPerOp {
			byName[name] = b
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Bench, len(names))
	for i, n := range names {
		out[i] = byName[n]
	}
	return out, nil
}

// diff prints the comparison table and returns the number of regressions.
func diff(w io.Writer, base Baseline, results []Bench, thresholdPct float64) int {
	baseline := make(map[string]Bench, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b
	}
	seen := make(map[string]bool, len(results))

	fmt.Fprintf(w, "benchdiff: ns/op vs %s (±%.0f%%)\n", base.Date, thresholdPct)
	fmt.Fprintf(w, "%-52s %14s %14s %8s  %s\n", "benchmark", "old ns/op", "new ns/op", "delta", "verdict")
	regressions := 0
	for _, r := range results {
		seen[r.Name] = true
		old, ok := baseline[r.Name]
		if !ok {
			fmt.Fprintf(w, "%-52s %14s %14.0f %8s  new (no baseline)\n", r.Name, "-", r.NsPerOp, "-")
			continue
		}
		delta := (r.NsPerOp - old.NsPerOp) / old.NsPerOp * 100
		verdict := "ok"
		switch {
		case delta > thresholdPct:
			verdict = "REGRESSION"
			regressions++
		case delta < -thresholdPct:
			verdict = "improved"
		}
		fmt.Fprintf(w, "%-52s %14.0f %14.0f %+7.1f%%  %s\n", r.Name, old.NsPerOp, r.NsPerOp, delta, verdict)
	}
	for _, b := range base.Benchmarks {
		if !seen[b.Name] {
			fmt.Fprintf(w, "%-52s %14.0f %14s %8s  missing from run\n", b.Name, b.NsPerOp, "-", "-")
		}
	}
	if regressions > 0 {
		fmt.Fprintf(w, "benchdiff: %d regression(s) beyond ±%.0f%% — rerun on an idle machine before trusting, then investigate or refresh the baseline (make bench-baseline)\n", regressions, thresholdPct)
	} else {
		fmt.Fprintf(w, "benchdiff: no ns/op regressions beyond ±%.0f%%\n", thresholdPct)
	}
	return regressions
}

func readBaseline(path string) (Baseline, error) {
	var base Baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return base, err
	}
	if err := json.Unmarshal(data, &base); err != nil {
		return base, fmt.Errorf("%s: %w", path, err)
	}
	return base, nil
}

func writeBaseline(path string, base Baseline) error {
	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
