// Package tools implements the comparator analysis tools of the paper's
// evaluation (§4.1, "Evaluated Tools") over the same trace-event
// instrumentation the profiler uses, plus the measurement harness that
// produces the slowdown and space-overhead comparisons of Table 1 and
// Fig. 16.
//
// The paper compares aprof-drms against four Valgrind tools that share the
// same instrumentation infrastructure: nulgrind (no analysis), memcheck
// (memory-error detection with definedness shadow bits), callgrind (a
// call-graph profiler) and helgrind (a happens-before data-race detector).
// Each Go analogue performs the canonical per-event work of its tool class
// over identical event streams, so relative per-event analysis costs — the
// quantity behind the paper's slowdown table — are faithfully exercised.
// Absolute slowdowns differ from the paper's by construction (our "native"
// baseline is an uninstrumented trace replay, not native x86 execution).
package tools

import (
	"aprof/internal/trace"
)

// Tool is a trace analysis that can be driven event by event.
type Tool interface {
	// Name returns the tool's name as used in Table 1.
	Name() string
	// HandleEvent processes one event of the merged trace.
	HandleEvent(ev *trace.Event) error
	// Finish completes the analysis.
	Finish() error
	// SpaceBytes estimates the live memory held by the tool's data
	// structures after the run.
	SpaceBytes() int64
}

// Factory constructs a tool for a trace built against the given symbol
// table.
type Factory struct {
	Name string
	New  func(syms *trace.SymbolTable) Tool
}

// All returns the factories of every evaluated tool, in the column order of
// Table 1.
func All() []Factory {
	return []Factory{
		{Name: "nulgrind", New: func(*trace.SymbolTable) Tool { return NewNulgrind() }},
		{Name: "memcheck", New: func(*trace.SymbolTable) Tool { return NewMemcheck() }},
		{Name: "callgrind", New: func(s *trace.SymbolTable) Tool { return NewCallgrind(s) }},
		{Name: "helgrind", New: func(*trace.SymbolTable) Tool { return NewHelgrind() }},
		{Name: "aprof", New: func(s *trace.SymbolTable) Tool { return NewAprof(s) }},
		{Name: "aprof-drms", New: func(s *trace.SymbolTable) Tool { return NewAprofDRMS(s) }},
	}
}

// Extras returns additional tools that are not part of the paper's Table 1
// comparison: the FastTrack detector is an ablation partner for helgrind,
// isolating the cost of the epoch optimization.
func Extras() []Factory {
	return []Factory{
		{Name: "fasttrack", New: func(*trace.SymbolTable) Tool { return NewFastTrack() }},
	}
}

// ByName returns the factory with the given name, searching the Table 1
// tools and the extras.
func ByName(name string) (Factory, bool) {
	for _, f := range All() {
		if f.Name == name {
			return f, true
		}
	}
	for _, f := range Extras() {
		if f.Name == name {
			return f, true
		}
	}
	return Factory{}, false
}

// Run drives a tool over an entire trace.
func Run(t Tool, tr *trace.Trace) error {
	for i := range tr.Events {
		if err := t.HandleEvent(&tr.Events[i]); err != nil {
			return err
		}
	}
	return t.Finish()
}
