package tools

import (
	"fmt"

	"aprof/internal/trace"
)

// Helgrind is a happens-before data-race detector in the style of Valgrind's
// helgrind: every memory cell carries full vector clocks for its reads and
// its last write, checked and updated on every access. This is deliberately
// the heavyweight formulation — helgrind predates FastTrack's epoch
// optimization and pays per-access vector-clock work, which is why it is the
// slowest and most space-hungry tool of the paper's Table 1 (4.5-8.4x
// space, 153-179x slowdown). The epoch-optimized variant is available as
// the separate FastTrack tool.
type Helgrind struct {
	threads map[trace.ThreadID]*hgThread
	syncs   map[trace.Addr]vectorClock
	cells   map[trace.Addr]*hgCell
	// Races counts detected conflicting access pairs.
	Races int64
}

type hgThread struct {
	id    trace.ThreadID
	index uint32
	vc    vectorClock
	// snapshot is an interned immutable copy of vc, shared by every cell
	// written since the clock last advanced (helgrind interns its vector
	// clocks the same way; without this, a full clone per written cell
	// dominates everything).
	snapshot      vectorClock
	snapshotValid bool
}

// frozen returns the thread's interned vector-clock snapshot.
func (t *hgThread) frozen() vectorClock {
	if !t.snapshotValid {
		t.snapshot = t.vc.clone()
		t.snapshotValid = true
	}
	return t.snapshot
}

// hgCell is the per-cell shadow state: the vector clock of the last write
// and the accumulated clock of reads since that write.
type hgCell struct {
	write     vectorClock
	reads     vectorClock
	lastWrite uint32 // index of the last writing thread
	hasWrite  bool
}

// vectorClock maps thread indices to logical clocks.
type vectorClock map[uint32]uint64

func (vc vectorClock) clone() vectorClock {
	out := make(vectorClock, len(vc))
	for k, v := range vc {
		out[k] = v
	}
	return out
}

func (vc vectorClock) join(other vectorClock) {
	for k, v := range other {
		if v > vc[k] {
			vc[k] = v
		}
	}
}

// happensBefore reports whether every component of vc is covered by now.
func (vc vectorClock) happensBefore(now vectorClock) bool {
	for k, v := range vc {
		if v > now[k] {
			return false
		}
	}
	return true
}

// NewHelgrind returns a fresh race detector.
func NewHelgrind() *Helgrind {
	return &Helgrind{
		threads: make(map[trace.ThreadID]*hgThread),
		syncs:   make(map[trace.Addr]vectorClock),
		cells:   make(map[trace.Addr]*hgCell),
	}
}

// Name implements Tool.
func (h *Helgrind) Name() string { return "helgrind" }

func (h *Helgrind) thread(id trace.ThreadID) *hgThread {
	t := h.threads[id]
	if t == nil {
		// Thread indices start at 1 so that index 0 can mean "none".
		t = &hgThread{id: id, index: uint32(len(h.threads) + 1), vc: make(vectorClock)}
		t.vc[t.index] = 1
		h.threads[id] = t
	}
	return t
}

func (h *Helgrind) cell(a trace.Addr) *hgCell {
	c := h.cells[a]
	if c == nil {
		c = &hgCell{}
		h.cells[a] = c
	}
	return c
}

// HandleEvent implements Tool.
func (h *Helgrind) HandleEvent(ev *trace.Event) error {
	switch ev.Kind {
	case trace.KindSwitchThread, trace.KindCall, trace.KindReturn:
		return nil
	case trace.KindAcquire:
		t := h.thread(ev.Thread)
		if vc, ok := h.syncs[ev.Addr]; ok {
			t.vc.join(vc)
			t.snapshotValid = false
		}
		return nil
	case trace.KindRelease:
		t := h.thread(ev.Thread)
		vc, ok := h.syncs[ev.Addr]
		if !ok {
			vc = make(vectorClock)
			h.syncs[ev.Addr] = vc
		}
		vc.join(t.vc)
		t.vc[t.index]++
		t.snapshotValid = false
		return nil
	case trace.KindRead, trace.KindUserToKernel:
		t := h.thread(ev.Thread)
		ev.Cells(func(a trace.Addr) {
			c := h.cell(a)
			if c.hasWrite && c.lastWrite != t.index && !c.write.happensBefore(t.vc) {
				h.Races++
			}
			if c.reads == nil {
				c.reads = make(vectorClock, 4)
			}
			c.reads[t.index] = t.vc[t.index]
		})
		return nil
	case trace.KindWrite, trace.KindKernelToUser:
		t := h.thread(ev.Thread)
		ev.Cells(func(a trace.Addr) {
			c := h.cell(a)
			if c.hasWrite && c.lastWrite != t.index && !c.write.happensBefore(t.vc) {
				h.Races++
			}
			for idx, clock := range c.reads {
				if idx != t.index && clock > t.vc[idx] {
					h.Races++
				}
			}
			c.write = t.frozen()
			c.lastWrite = t.index
			c.hasWrite = true
			clear(c.reads)
		})
		return nil
	default:
		return fmt.Errorf("helgrind: unhandled event kind %v", ev.Kind)
	}
}

// Finish implements Tool.
func (h *Helgrind) Finish() error { return nil }

// SpaceBytes implements Tool.
func (h *Helgrind) SpaceBytes() int64 {
	const vcEntry = 16
	// Go maps cost on the order of 100 bytes per entry for small maps
	// (bucket slots, overflow pointers, allocation headers); the per-cell
	// map entry plus the heap-allocated cell struct are what make helgrind
	// the most space-hungry tool, as in the paper.
	const mapEntryOverhead = 96
	const cellStruct = 40
	var total int64
	for _, c := range h.cells {
		total += mapEntryOverhead + cellStruct
		total += int64(len(c.write)+len(c.reads)) * vcEntry
		if c.reads != nil {
			total += mapEntryOverhead // the retained reads map header
		}
	}
	for _, t := range h.threads {
		total += int64(len(t.vc)) * vcEntry
	}
	for _, vc := range h.syncs {
		total += int64(len(vc)) * vcEntry
	}
	return total
}
