package tools

import (
	"fmt"
	"math"
	"time"

	"aprof/internal/trace"
)

// The measurement harness reproduces the methodology behind Table 1 and
// Fig. 16: every tool analyses the same execution trace; its wall-clock time
// is compared against a "native" baseline that replays the same events with
// no analysis attached; its live data-structure footprint is compared
// against the traced program's own memory footprint.
//
// Two native baselines exist. The serialized baseline models a sequential
// program. The parallel baseline models the program on one core per thread
// (per-thread replays combined as their maximum) — this is the Fig. 16
// scenario: the native program exploits all cores while every Valgrind tool
// serializes threads, which is exactly why tool slowdowns grow with the
// thread count in the paper.

// nativeSink prevents the replay loops from being optimized away.
var nativeSink uint64

// replayEvents consumes events with trivial work, standing in for native
// execution of the traced operations.
func replayEvents(events []trace.Event) uint64 {
	var sum uint64
	for i := range events {
		ev := &events[i]
		sum += uint64(ev.Addr) + uint64(ev.Size) + uint64(ev.Kind)
	}
	return sum
}

// NativeTime measures the serialized native baseline: the best of `repeats`
// uninstrumented replays of the merged trace.
func NativeTime(tr *trace.Trace, repeats int) time.Duration {
	best := time.Duration(math.MaxInt64)
	for r := 0; r < max(repeats, 1); r++ {
		start := time.Now()
		nativeSink += replayEvents(tr.Events)
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return maxDuration(best, time.Nanosecond)
}

// NativeParallelTime measures the parallel native baseline: the wall-clock
// time of the program on hardware with one core per thread. Each thread's
// event stream is replayed and timed separately and the streams are combined
// as their maximum — the completion time under perfect parallelism. The
// per-thread measurement (rather than actual goroutines) keeps the
// experiment meaningful on any host, including single-core machines where
// real concurrency could not speed the baseline up; the paper's testbed was
// a 32-core Opteron, so the assumption matches its hardware, not ours.
func NativeParallelTime(tr *trace.Trace, repeats int) time.Duration {
	parts := trace.Split(tr)
	var longest time.Duration
	for i := range parts {
		best := time.Duration(math.MaxInt64)
		for r := 0; r < max(repeats, 1); r++ {
			start := time.Now()
			nativeSink += replayEvents(parts[i].Events)
			if d := time.Since(start); d < best {
				best = d
			}
		}
		if best > longest {
			longest = best
		}
	}
	return maxDuration(longest, time.Nanosecond)
}

// Measurement is the raw cost of one tool on one trace.
type Measurement struct {
	Tool string
	// Duration is the best wall-clock time over the configured repeats.
	Duration time.Duration
	// SpaceBytes is the tool's data-structure footprint after the run.
	SpaceBytes int64
}

// Measure runs the tool over the trace `repeats` times and reports the best
// time and the final space.
func Measure(f Factory, tr *trace.Trace, repeats int) (Measurement, error) {
	m := Measurement{Tool: f.Name}
	best := time.Duration(math.MaxInt64)
	for r := 0; r < max(repeats, 1); r++ {
		tool := f.New(tr.Symbols)
		start := time.Now()
		if err := Run(tool, tr); err != nil {
			return m, fmt.Errorf("tools: %s: %w", f.Name, err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
		m.SpaceBytes = tool.SpaceBytes()
	}
	m.Duration = maxDuration(best, time.Nanosecond)
	return m, nil
}

// Overhead is one tool's slowdown and space overhead relative to native on
// one trace.
type Overhead struct {
	Tool string
	// Slowdown is toolTime / nativeTime.
	Slowdown float64
	// SpaceOverhead is (programFootprint + toolSpace) / programFootprint —
	// the ratio of the instrumented process's memory to the native one,
	// which is what the paper's space columns report.
	SpaceOverhead float64
}

// CompareConfig controls a comparison run.
type CompareConfig struct {
	// Repeats is the number of timed repetitions (best-of). 0 means 3.
	Repeats int
	// ParallelNative selects the parallel native baseline (Fig. 16) instead
	// of the serialized one.
	ParallelNative bool
	// Tools restricts the comparison to the named tools; empty means all.
	Tools []string
}

func (c CompareConfig) withDefaults() CompareConfig {
	if c.Repeats == 0 {
		c.Repeats = 3
	}
	return c
}

// Compare measures every tool on the trace and reports per-tool overheads.
func Compare(tr *trace.Trace, cfg CompareConfig) ([]Overhead, error) {
	cfg = cfg.withDefaults()
	var native time.Duration
	if cfg.ParallelNative {
		native = NativeParallelTime(tr, cfg.Repeats)
	} else {
		native = NativeTime(tr, cfg.Repeats)
	}
	footprint := int64(tr.MemoryFootprint()) * 8
	if footprint == 0 {
		footprint = 8
	}
	factories := All()
	if len(cfg.Tools) > 0 {
		factories = factories[:0:0]
		for _, name := range cfg.Tools {
			f, ok := ByName(name)
			if !ok {
				return nil, fmt.Errorf("tools: unknown tool %q", name)
			}
			factories = append(factories, f)
		}
	}
	out := make([]Overhead, 0, len(factories))
	for _, f := range factories {
		m, err := Measure(f, tr, cfg.Repeats)
		if err != nil {
			return nil, err
		}
		out = append(out, Overhead{
			Tool:          f.Name,
			Slowdown:      float64(m.Duration) / float64(native),
			SpaceOverhead: float64(footprint+m.SpaceBytes) / float64(footprint),
		})
	}
	return out, nil
}

// GeoMean returns the geometric mean of the values (the aggregation Table 1
// uses across a benchmark suite).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
