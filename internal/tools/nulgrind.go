package tools

import "aprof/internal/trace"

// Nulgrind is the no-analysis tool: it pays only the instrumentation
// dispatch cost, like Valgrind's nulgrind, which the paper uses to isolate
// the framework overhead from the per-tool analysis overhead.
type Nulgrind struct {
	events int64
}

// NewNulgrind returns the no-op tool.
func NewNulgrind() *Nulgrind { return &Nulgrind{} }

// Name implements Tool.
func (n *Nulgrind) Name() string { return "nulgrind" }

// HandleEvent implements Tool: it observes the event and does nothing.
func (n *Nulgrind) HandleEvent(ev *trace.Event) error {
	n.events++
	return nil
}

// Finish implements Tool.
func (n *Nulgrind) Finish() error { return nil }

// SpaceBytes implements Tool.
func (n *Nulgrind) SpaceBytes() int64 { return 8 }

// Events returns the number of observed events.
func (n *Nulgrind) Events() int64 { return n.events }
