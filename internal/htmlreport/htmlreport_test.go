package htmlreport

import (
	"bytes"
	"strings"
	"testing"

	"aprof/internal/core"
	"aprof/internal/trace"
	"aprof/internal/workloads"
)

func sampleProfiles(t *testing.T) *core.Profiles {
	t.Helper()
	ps, err := core.Run(workloads.DBScan([]int{512, 1024, 2048, 4096}, workloads.DefaultDBScanConfig()), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

func TestWriteProducesValidHTML(t *testing.T) {
	ps := sampleProfiles(t)
	var buf bytes.Buffer
	if err := Write(&buf, ps, Options{Title: "dbscan demo"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>",
		"<title>dbscan demo</title>",
		"mysql_select",
		"Dynamic input volume",
		"<svg",
		"empirical cost function (drms):",
		"O(n)",
		"</html>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Both series appear in the SVG legend.
	if !strings.Contains(out, ">rms</text>") || !strings.Contains(out, ">drms</text>") {
		t.Error("legend incomplete")
	}
}

func TestWriteEscapesRoutineNames(t *testing.T) {
	b := trace.NewBuilder()
	tb := b.Thread(1)
	tb.Call(`<script>alert("x")</script>`)
	tb.Read(1, 4)
	tb.Ret()
	ps, err := core.Run(b.Trace(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, ps, Options{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `<script>alert`) {
		t.Error("routine name not escaped")
	}
	if !strings.Contains(buf.String(), "&lt;script&gt;") {
		t.Error("escaped name missing entirely")
	}
}

func TestWriteTopN(t *testing.T) {
	ps := sampleProfiles(t)
	var full, top bytes.Buffer
	if err := Write(&full, ps, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := Write(&top, ps, Options{TopN: 1}); err != nil {
		t.Fatal(err)
	}
	if top.Len() >= full.Len() {
		t.Error("TopN=1 did not shrink the report")
	}
	if !strings.Contains(top.String(), "mysqld") {
		t.Error("most expensive routine missing from TopN report")
	}
}

func TestWriteEmptyRun(t *testing.T) {
	b := trace.NewBuilder()
	tb := b.Thread(1)
	tb.Call("noop")
	tb.Ret()
	ps, err := core.Run(b.Trace(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, ps, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "noop") {
		t.Error("single no-op routine missing")
	}
	// No plot section for a routine with one point.
	if strings.Contains(buf.String(), "<svg") {
		t.Error("plot rendered for a routine without enough points")
	}
}
