// Package htmlreport renders a profiling run as a self-contained HTML
// document: the per-routine table, run-level dynamic-workload
// characterization, fitted empirical cost functions, and inline SVG
// rms-vs-drms cost plots per routine. No external assets or scripts — the
// file can be archived next to the profile it describes.
package htmlreport

import (
	"fmt"
	"html/template"
	"io"
	"math"
	"sort"
	"strings"

	"aprof/internal/core"
	"aprof/internal/fit"
	"aprof/internal/metrics"
)

// Options controls report generation.
type Options struct {
	// Title heads the document (default "aprof-drms report").
	Title string
	// TopN limits the per-routine sections (0 = all routines).
	TopN int
	// MinPlotPoints is the minimum number of distinct input sizes a routine
	// needs before a plot and fit are rendered (default 3).
	MinPlotPoints int
}

func (o Options) withDefaults() Options {
	if o.Title == "" {
		o.Title = "aprof-drms report"
	}
	if o.MinPlotPoints == 0 {
		o.MinPlotPoints = 3
	}
	return o
}

// routineView is the per-routine template payload.
type routineView struct {
	Name            string
	Calls           uint64
	TotalCost       uint64
	SumRMS          uint64
	SumDRMS         uint64
	RMSPoints       int
	DRMSPoints      int
	ThreadPct       string
	ExternalPct     string
	VarianceRMS     string
	VarianceDRMS    string
	FitFormula      string
	FitClass        string
	Plot            template.HTML
	InducedDominant bool
}

// reportView is the top-level template payload.
type reportView struct {
	Title        string
	Routines     []routineView
	RoutineCount int
	InputVolume  string
	ThreadPct    string
	ExternalPct  string
	Induced      uint64
	Events       int
}

// Write renders the report for ps into w.
func Write(w io.Writer, ps *core.Profiles, opts Options) error {
	opts = opts.withDefaults()

	type ranked struct {
		name string
		p    *core.Profile
	}
	var rows []ranked
	for id, p := range ps.MergeThreads() {
		rows = append(rows, ranked{name: ps.Symbols.Name(id), p: p})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].p.TotalCost != rows[j].p.TotalCost {
			return rows[i].p.TotalCost > rows[j].p.TotalCost
		}
		return rows[i].name < rows[j].name
	})
	if opts.TopN > 0 && len(rows) > opts.TopN {
		rows = rows[:opts.TopN]
	}

	view := reportView{
		Title:  opts.Title,
		Events: ps.Events,
	}
	s := metrics.Summarize(ps)
	view.RoutineCount = s.Routines
	view.InputVolume = fmt.Sprintf("%.3f", s.DynamicInputVolume)
	view.ThreadPct = fmt.Sprintf("%.1f", s.ThreadInputPct)
	view.ExternalPct = fmt.Sprintf("%.1f", s.ExternalInputPct)
	view.Induced = s.InducedReads

	for _, r := range rows {
		p := r.p
		rv := routineView{
			Name:       r.name,
			Calls:      p.Calls,
			TotalCost:  p.TotalCost,
			SumRMS:     p.SumRMS,
			SumDRMS:    p.SumDRMS,
			RMSPoints:  len(p.RMSPoints),
			DRMSPoints: len(p.DRMSPoints),
		}
		if reads := p.ReadOps(); reads > 0 {
			rv.ThreadPct = fmt.Sprintf("%.1f", 100*float64(p.InducedThread)/float64(reads))
			rv.ExternalPct = fmt.Sprintf("%.1f", 100*float64(p.InducedExternal)/float64(reads))
			rv.InducedDominant = p.InducedReads()*2 > reads
		}
		rv.VarianceRMS = fmt.Sprintf("%.3f", metrics.VarianceIndicator(p, core.MetricRMS))
		rv.VarianceDRMS = fmt.Sprintf("%.3f", metrics.VarianceIndicator(p, core.MetricDRMS))
		if len(p.DRMSPoints) >= opts.MinPlotPoints {
			var pts []fit.Point
			for _, pp := range p.WorstCasePlot(core.MetricDRMS) {
				pts = append(pts, fit.Point{N: float64(pp.N), Cost: float64(pp.Cost)})
			}
			if best, err := fit.BestFit(pts); err == nil {
				rv.FitFormula = best.String()
				rv.FitClass = best.Model.Name
			}
			rv.Plot = plotSVG(p)
		}
		view.Routines = append(view.Routines, rv)
	}
	return page.Execute(w, view)
}

// plotSVG renders the routine's rms and drms worst-case plots as one inline
// SVG scatter chart.
func plotSVG(p *core.Profile) template.HTML {
	const (
		width, height   = 460, 220
		padLeft, padBot = 54, 28
		padRight, padTT = 16, 14
	)
	type series struct {
		metric core.Metric
		color  string
		label  string
	}
	all := []series{
		{core.MetricRMS, "#c0392b", "rms"},
		{core.MetricDRMS, "#2467a8", "drms"},
	}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range all {
		for _, pt := range p.WorstCasePlot(s.metric) {
			minX = math.Min(minX, float64(pt.N))
			maxX = math.Max(maxX, float64(pt.N))
			minY = math.Min(minY, float64(pt.Cost))
			maxY = math.Max(maxY, float64(pt.Cost))
		}
	}
	if math.IsInf(minX, 1) {
		return ""
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	sx := func(v float64) float64 {
		return padLeft + (v-minX)/(maxX-minX)*(width-padLeft-padRight)
	}
	sy := func(v float64) float64 {
		return height - padBot - (v-minY)/(maxY-minY)*(height-padBot-padTT)
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg viewBox="0 0 %d %d" width="%d" height="%d" role="img">`, width, height, width, height)
	// Axes.
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#555"/>`,
		padLeft, height-padBot, width-padRight, height-padBot)
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#555"/>`,
		padLeft, padTT, padLeft, height-padBot)
	// Extent labels.
	fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="10" fill="#333">%s</text>`,
		padLeft, height-8, tick(minX))
	fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="10" fill="#333" text-anchor="end">%s</text>`,
		width-padRight, height-8, tick(maxX))
	fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="10" fill="#333" text-anchor="end">%s</text>`,
		padLeft-4, height-padBot, tick(minY))
	fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="10" fill="#333" text-anchor="end">%s</text>`,
		padLeft-4, padTT+8, tick(maxY))
	// Legend.
	lx := padLeft + 8
	for _, s := range all {
		fmt.Fprintf(&sb, `<circle cx="%d" cy="%d" r="3" fill="%s"/>`, lx, padTT, s.color)
		fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="10" fill="#333">%s</text>`, lx+6, padTT+3, s.label)
		lx += 52
	}
	// Points.
	for _, s := range all {
		for _, pt := range p.WorstCasePlot(s.metric) {
			fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s" fill-opacity="0.8"/>`,
				sx(float64(pt.N)), sy(float64(pt.Cost)), s.color)
		}
	}
	sb.WriteString(`</svg>`)
	return template.HTML(sb.String())
}

func tick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case av >= 1e4:
		return fmt.Sprintf("%.0fk", v/1e3)
	case av == math.Trunc(av):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

var page = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{{.Title}}</title>
<style>
body { font: 14px/1.45 system-ui, sans-serif; margin: 2em auto; max-width: 72em; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 2em; }
table { border-collapse: collapse; width: 100%; }
th, td { text-align: right; padding: 3px 9px; border-bottom: 1px solid #ddd; }
th:first-child, td:first-child { text-align: left; }
thead th { border-bottom: 2px solid #999; }
.summary { background: #f5f7fa; padding: .8em 1.2em; border-radius: 6px; }
.dyn { color: #2467a8; font-weight: 600; }
.fit { font-family: ui-monospace, monospace; font-size: 12px; color: #444; }
.routine { margin-top: 1.6em; border-top: 1px solid #eee; padding-top: .4em; }
</style>
</head>
<body>
<h1>{{.Title}}</h1>
<p class="summary">
{{.RoutineCount}} routines, {{.Events}} trace events.
Dynamic input volume <strong>{{.InputVolume}}</strong>;
{{.Induced}} induced first-reads
(thread {{.ThreadPct}}%, external {{.ExternalPct}}%).
</p>

<h2>Routines by inclusive cost</h2>
<table>
<thead><tr>
<th>routine</th><th>calls</th><th>cost</th><th>Σrms</th><th>Σdrms</th>
<th>rms pts</th><th>drms pts</th><th>thread %</th><th>ext %</th>
<th>cv(rms)</th><th>cv(drms)</th>
</tr></thead>
<tbody>
{{range .Routines}}<tr>
<td>{{if .InducedDominant}}<span class="dyn">{{.Name}}</span>{{else}}{{.Name}}{{end}}</td>
<td>{{.Calls}}</td><td>{{.TotalCost}}</td><td>{{.SumRMS}}</td><td>{{.SumDRMS}}</td>
<td>{{.RMSPoints}}</td><td>{{.DRMSPoints}}</td><td>{{.ThreadPct}}</td><td>{{.ExternalPct}}</td>
<td>{{.VarianceRMS}}</td><td>{{.VarianceDRMS}}</td>
</tr>
{{end}}</tbody>
</table>
<p><span class="dyn">Highlighted</span> routines take most of their input dynamically.</p>

{{range .Routines}}{{if .Plot}}
<div class="routine">
<h2>{{.Name}}</h2>
{{if .FitFormula}}<p class="fit">empirical cost function (drms): {{.FitFormula}} — O({{.FitClass}})</p>{{end}}
{{.Plot}}
</div>
{{end}}{{end}}
</body>
</html>
`))
