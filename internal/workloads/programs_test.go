package workloads

import (
	"testing"

	"aprof/internal/core"
	"aprof/internal/metrics"
)

// TestVMPrograms runs each multithreaded MiniLang application end to end:
// VM execution (output check), profiling, and the expected dynamic-workload
// characterization.
func TestVMPrograms(t *testing.T) {
	for _, prog := range VMPrograms() {
		prog := prog
		t.Run(prog.Name, func(t *testing.T) {
			tr, err := prog.BuildTrace()
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("trace invalid: %v", err)
			}
			ps, err := core.Run(tr, core.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			s := metrics.Summarize(ps)
			if s.ThreadInputPct < prog.MinThreadInputPct {
				t.Errorf("thread input = %.1f%%, want >= %.1f%%", s.ThreadInputPct, prog.MinThreadInputPct)
			}
			if s.ExternalInputPct < prog.MinExternalInputPct {
				t.Errorf("external input = %.1f%%, want >= %.1f%%", s.ExternalInputPct, prog.MinExternalInputPct)
			}
			hot := ps.Routine(prog.HotRoutine)
			if hot == nil {
				t.Fatalf("no profile for %s", prog.HotRoutine)
			}
			if hot.SumRMS == 0 {
				t.Fatalf("%s has rms 0", prog.HotRoutine)
			}
			factor := float64(hot.SumDRMS) / float64(hot.SumRMS)
			if factor < prog.DynamicFactor {
				t.Errorf("%s: drms/rms = %.1f, want >= %.1f (the dynamic workload the rms misses)",
					prog.HotRoutine, factor, prog.DynamicFactor)
			}
		})
	}
}

// TestVMProgramsDeterministic ensures the interpreted applications produce
// identical traces across runs (the scheduler is deterministic).
func TestVMProgramsDeterministic(t *testing.T) {
	prog := VMPrograms()[0]
	a, err := prog.BuildTrace()
	if err != nil {
		t.Fatal(err)
	}
	b, err := prog.BuildTrace()
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("trace lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("traces diverge at event %d", i)
		}
	}
}

// TestVMProgramContextView profiles the pipeline application
// context-sensitively and checks the hot path is attributed correctly.
func TestVMProgramContextView(t *testing.T) {
	tr, err := VMPrograms()[0].BuildTrace()
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.ContextSensitive = true
	ps, err := core.Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hot := ps.HotContexts(10)
	if len(hot) == 0 {
		t.Fatal("no contexts")
	}
	found := false
	for _, cp := range hot {
		if cp.Path == "main > consume" {
			found = true
			if cp.Profile.SumDRMS < 300 {
				t.Errorf("main > consume drms = %d, want >= 300", cp.Profile.SumDRMS)
			}
		}
	}
	if !found {
		t.Errorf("main > consume not among hot contexts: %+v", hot)
	}
}
