package workloads

import (
	"fmt"
	"math/rand"

	"aprof/internal/trace"
)

// Benchmark describes one synthetic application of the evaluation suite. The
// named benchmarks stand in for the PARSEC 2.1 / SPEC OMP2012 / mysqlslap
// programs of §4.1: each has a characteristic mix of private computation,
// shared-memory communication and kernel I/O, so that the suite reproduces
// the qualitative spread of Figs. 11-15 (OMP codes dominated by thread
// input, MySQL by external input, a small fraction of routines carrying
// almost all dynamic input).
type Benchmark struct {
	Name  string
	Suite string
	// Threads is the number of application threads.
	Threads int
	// ComputeRoutines, CommRoutines and IORoutines are the numbers of
	// private-computation, thread-communication and kernel-I/O routines.
	ComputeRoutines int
	CommRoutines    int
	IORoutines      int
	// CommVolume and IOVolume scale the per-call number of thread-induced
	// and external-induced reads; their ratio steers the benchmark's
	// thread/external input split (Fig. 15).
	CommVolume int
	IOVolume   int
	// Rounds is the number of scheduling rounds; each round every thread
	// performs one task.
	Rounds int
	// RacyComm drops the semaphore protocol from the communication
	// routines: handoffs become benign races, as in loosely coupled
	// pipeline applications. Such benchmarks are the source of the large
	// thread-input fluctuations across scheduler configurations that the
	// paper reports as peaks (§4.2).
	RacyComm bool
	// Seed makes the generated trace reproducible.
	Seed int64
}

// SuiteOMP returns the SPEC OMP2012-like benchmarks: data-parallel codes
// whose induced first-reads come almost entirely from thread
// intercommunication (the paper observes >= 69% thread input for all of
// them).
func SuiteOMP() []Benchmark {
	return []Benchmark{
		{Name: "nab", Suite: "SPEC OMP2012", Threads: 4, ComputeRoutines: 24, CommRoutines: 3, IORoutines: 1, CommVolume: 600, IOVolume: 12, Rounds: 60, Seed: 101},
		{Name: "swim", Suite: "SPEC OMP2012", Threads: 4, ComputeRoutines: 14, CommRoutines: 2, IORoutines: 1, CommVolume: 500, IOVolume: 18, Rounds: 70, Seed: 102},
		{Name: "mgrid331", Suite: "SPEC OMP2012", Threads: 4, ComputeRoutines: 16, CommRoutines: 2, IORoutines: 1, CommVolume: 450, IOVolume: 25, Rounds: 60, Seed: 103},
		{Name: "applu331", Suite: "SPEC OMP2012", Threads: 4, ComputeRoutines: 18, CommRoutines: 3, IORoutines: 1, CommVolume: 420, IOVolume: 30, Rounds: 55, Seed: 104},
		{Name: "smithwa", Suite: "SPEC OMP2012", Threads: 4, ComputeRoutines: 20, CommRoutines: 3, IORoutines: 1, CommVolume: 380, IOVolume: 35, Rounds: 60, Seed: 105},
		{Name: "imagick", Suite: "SPEC OMP2012", Threads: 4, ComputeRoutines: 30, CommRoutines: 3, IORoutines: 2, CommVolume: 300, IOVolume: 60, Rounds: 50, Seed: 106},
		{Name: "kdtree", Suite: "SPEC OMP2012", Threads: 4, ComputeRoutines: 22, CommRoutines: 2, IORoutines: 1, CommVolume: 350, IOVolume: 70, Rounds: 55, Seed: 107},
		{Name: "botsalgn", Suite: "SPEC OMP2012", Threads: 4, ComputeRoutines: 18, CommRoutines: 2, IORoutines: 2, CommVolume: 260, IOVolume: 110, Rounds: 55, Seed: 108},
	}
}

// SuitePARSEC returns the PARSEC 2.1-like benchmarks: mixed thread and
// external input, with dedup and x264 showing heavy I/O alongside pipeline
// parallelism.
func SuitePARSEC() []Benchmark {
	return []Benchmark{
		{Name: "fluidanimate", Suite: "PARSEC 2.1", Threads: 4, ComputeRoutines: 20, CommRoutines: 3, IORoutines: 1, CommVolume: 420, IOVolume: 60, Rounds: 55, Seed: 201},
		{Name: "swaptions", Suite: "PARSEC 2.1", Threads: 4, ComputeRoutines: 16, CommRoutines: 2, IORoutines: 1, CommVolume: 300, IOVolume: 90, Rounds: 60, Seed: 202},
		{Name: "vips", Suite: "PARSEC 2.1", Threads: 4, ComputeRoutines: 34, CommRoutines: 4, IORoutines: 2, CommVolume: 320, IOVolume: 120, Rounds: 50, Seed: 203},
		{Name: "bodytrack", Suite: "PARSEC 2.1", Threads: 4, ComputeRoutines: 26, CommRoutines: 3, IORoutines: 2, CommVolume: 250, IOVolume: 140, Rounds: 50, Seed: 204},
		{Name: "x264", Suite: "PARSEC 2.1", Threads: 4, ComputeRoutines: 28, CommRoutines: 3, IORoutines: 3, CommVolume: 220, IOVolume: 170, Rounds: 50, Seed: 205, RacyComm: true},
		{Name: "dedup", Suite: "PARSEC 2.1", Threads: 4, ComputeRoutines: 22, CommRoutines: 4, IORoutines: 4, CommVolume: 200, IOVolume: 200, Rounds: 50, Seed: 206, RacyComm: true},
	}
}

// SuiteMySQL returns the mysqlslap-like load: a server whose induced
// first-reads are dominated by network and disk I/O.
func SuiteMySQL() []Benchmark {
	return []Benchmark{
		{Name: "mysqlslap", Suite: "MySQL", Threads: 4, ComputeRoutines: 30, CommRoutines: 2, IORoutines: 6, CommVolume: 60, IOVolume: 420, Rounds: 50, Seed: 301},
	}
}

// FullSuite returns every benchmark.
func FullSuite() []Benchmark {
	out := append(SuiteOMP(), SuitePARSEC()...)
	return append(out, SuiteMySQL()...)
}

// Scaled returns a copy of b with its rounds multiplied by k, for
// experiments that need enough work per trace to dwarf fixed overheads
// (Fig. 16's parallel native baseline).
func (b Benchmark) Scaled(k int) Benchmark {
	c := b
	if k > 1 {
		c.Rounds = b.Rounds * k
	}
	return c
}

// WithThreads returns a copy of b running with the given thread count,
// keeping total work roughly constant (rounds are divided among threads) —
// the Fig. 16 scaling configuration.
func (b Benchmark) WithThreads(threads int) Benchmark {
	c := b
	c.Rounds = b.Rounds * b.Threads / threads
	if c.Rounds == 0 {
		c.Rounds = 1
	}
	c.Threads = threads
	return c
}

// Build generates the benchmark's merged execution trace.
func (b Benchmark) Build() *trace.Trace {
	rng := rand.New(rand.NewSource(b.Seed))
	tb := trace.NewBuilder()
	threads := make([]*trace.ThreadBuilder, b.Threads)
	for i := range threads {
		threads[i] = tb.Thread(trace.ThreadID(i + 1))
		threads[i].Call("thread_main")
	}

	// Address layout: per-thread private regions, one shared region per
	// communication routine, one staging region per I/O routine.
	const (
		privateBase = trace.Addr(1 << 20)
		privateSpan = trace.Addr(1 << 16)
		sharedBase  = trace.Addr(1 << 28)
		sharedSpan  = trace.Addr(1 << 12)
		stageBase   = trace.Addr(1 << 30)
		stageSpan   = trace.Addr(1 << 12)
	)

	// Task bodies. Every routine takes a per-call size so that repeated
	// calls produce many distinct input-size values (the input-sensitive
	// behaviour aprof relies on).
	compute := func(t int, rtn int, size int) {
		th := threads[t]
		th.Call(fmt.Sprintf("compute_%02d", rtn))
		base := privateBase + trace.Addr(t)*privateSpan + trace.Addr(rtn*2048)
		th.Read(base, uint32(size))
		th.Work(uint64(3 * size))
		th.Write(base, uint32(size/2+1))
		th.Ret()
	}
	// A single benchmark-wide progress cell that producers update and
	// consumers poll without synchronization — the kind of benign race real
	// applications contain, and the source of the (small) thread-input
	// fluctuation across scheduler configurations (§4.2).
	const progressFlag = sharedBase - 1

	communicate := func(t int, rtn int, size int) {
		size = max(size, 1)
		th := threads[t]
		peer := threads[(t+1)%b.Threads]
		// Each (routine, consumer thread) pair owns a region and a
		// semaphore pair, so the handoffs themselves are properly
		// synchronized: alternative schedules cannot reorder them.
		slot := rtn*b.Threads + t
		region := sharedBase + trace.Addr(slot)*sharedSpan
		semFull := trace.Addr(2*slot + 1)
		semEmpty := trace.Addr(2*slot + 2)
		th.Call(fmt.Sprintf("comm_%02d", rtn))
		// Initialize the buffer (a write, invisible to the rms), then
		// consume peer-produced chunks through it under the full
		// two-semaphore protocol of Fig. 2 — the producer writes only on
		// request, so no schedule can reorder a production against the
		// consumer's initialization or reads.
		chunk := uint32(min(size, int(sharedSpan)))
		rounds := 1 + size/int(chunk)
		th.Write(region, chunk)
		if !b.RacyComm {
			th.Release(semEmpty) // request the first chunk
		}
		for r := 0; r < rounds; r++ {
			if !b.RacyComm {
				peer.Acquire(semEmpty)
			}
			peer.Call("produce_chunk")
			peer.Work(uint64(chunk / 4))
			peer.Write(region, chunk)
			peer.Write1(progressFlag) // racy progress update
			peer.Ret()
			if !b.RacyComm {
				peer.Release(semFull)
				th.Acquire(semFull)
			}
			// Racy double-read poll of the global progress cell: whether
			// the second read is an induced first-read depends on whether
			// some other pipeline's producer wrote the cell in between —
			// i.e., on the schedule.
			th.Read1(progressFlag)
			th.Read1(progressFlag)
			th.Read(region, chunk)
			th.Work(uint64(chunk / 2))
			if !b.RacyComm && r+1 < rounds {
				th.Release(semEmpty) // request the next chunk
			}
		}
		th.Ret()
	}
	inputOutput := func(t int, rtn int, size int) {
		size = max(size, 1)
		th := threads[t]
		// Per-thread staging buffers: kernel I/O into a buffer shared with
		// other threads would be a race, which real programs avoid.
		region := stageBase + trace.Addr(rtn*b.Threads+t)*stageSpan
		th.Call(fmt.Sprintf("io_%02d", rtn))
		chunk := uint32(min(size, int(stageSpan)))
		th.Write(region, chunk)
		rounds := 1 + size/int(chunk)
		for r := 0; r < rounds; r++ {
			th.SysRead(region, chunk)
			th.Read(region, chunk)
			th.Work(uint64(chunk / 2))
		}
		// Send a result out (kernel reads our memory).
		th.SysWrite(region, chunk/2+1)
		th.Ret()
	}

	totalTasks := b.ComputeRoutines*4 + b.CommRoutines + b.IORoutines
	for round := 0; round < b.Rounds; round++ {
		for t := 0; t < b.Threads; t++ {
			// Every thread polls the racy progress cell between tasks;
			// whether the poll observes a fresh foreign write — and thus
			// counts as an induced first-read — depends on the schedule.
			threads[t].Read1(progressFlag)
			pick := rng.Intn(totalTasks)
			switch {
			case pick < b.ComputeRoutines*4:
				rtn := pick % b.ComputeRoutines
				size := 8 + rng.Intn(120)*(1+rtn%5)
				compute(t, rtn, size)
			case pick < b.ComputeRoutines*4+b.CommRoutines:
				rtn := pick - b.ComputeRoutines*4
				// A communication task performs several activations with
				// varying per-activation volumes: the total volume follows
				// CommVolume, but every activation observes a distinct
				// drms. This per-activation variety is what gives the
				// communication and I/O routines their high profile
				// richness (Fig. 11: a few routines collect orders of
				// magnitude more drms points than rms points).
				sizeTotal := b.CommVolume/2 + rng.Intn(b.CommVolume+1)
				reps := 4 + rng.Intn(4)
				for k := 0; k < reps; k++ {
					size := sizeTotal/reps + rng.Intn(sizeTotal/reps+2)
					communicate(t, rtn, size)
				}
			default:
				rtn := pick - b.ComputeRoutines*4 - b.CommRoutines
				sizeTotal := b.IOVolume/2 + rng.Intn(b.IOVolume+1)
				reps := 4 + rng.Intn(4)
				for k := 0; k < reps; k++ {
					size := sizeTotal/reps + rng.Intn(sizeTotal/reps+2)
					inputOutput(t, rtn, size)
				}
			}
		}
	}
	for _, th := range threads {
		th.Ret()
	}
	return tb.Trace()
}
