package workloads

import (
	"fmt"
	"strings"

	"aprof/internal/trace"
	"aprof/internal/vm"
)

// Algorithm is a MiniLang implementation of a classic algorithm together
// with its expected asymptotic class. The collection validates the whole
// pipeline the way algorithmic-profiling work does (Zaparanuks & Hauswirth,
// the paper's [23]): run each algorithm on a sweep of input sizes under the
// instrumented VM, profile the trace, fit the (input size, cost) points, and
// require the fitted model to be the algorithm's true complexity.
type Algorithm struct {
	// Name is the profiled routine's name.
	Name string
	// Source is the MiniLang program; it must define a `driver(n)` function
	// that builds an input of size n and invokes the algorithm once.
	Source string
	// ComplexityVsN is the expected best-fit model of cost against the
	// *nominal* input parameter n ("log n", "n", "n log n", "n^2", "n^3").
	ComplexityVsN string
	// ExponentVsRMS is the expected power-law exponent of cost against the
	// *measured* input size (rms). For algorithms that read their whole
	// input the two views coincide (exponent ≈ model degree); for binary
	// search the rms itself is log n, so cost is linear in the rms
	// (exponent 1) even though it is logarithmic in n — the distinction
	// input-sensitive profiling is built on.
	ExponentVsRMS float64
	// Sizes is the input-size sweep.
	Sizes []int
}

// Algorithms returns the validation collection.
func Algorithms() []Algorithm {
	return []Algorithm{
		{
			Name:          "binary_search",
			ComplexityVsN: "log n",
			ExponentVsRMS: 1.0,
			Sizes:         sweep(64, 16, 2.0),
			Source: `
fn binary_search(a, n, key) {
	var lo = 0;
	var hi = n - 1;
	while (lo <= hi) {
		var mid = (lo + hi) / 2;
		var v = a[mid];
		if (v == key) { return mid; }
		if (v < key) { lo = mid + 1; } else { hi = mid - 1; }
	}
	return 0 - 1;
}
fn driver(n) {
	var a = alloc(n);
	for (var i = 0; i < n; i = i + 1) { a[i] = 2 * i; }
	var r = binary_search(a, n, 2 * n - 1); // missing key: full descent
	if (r != 0 - 1) { return 1; }
	return 0;
}`,
		},
		{
			Name:          "linear_scan",
			ComplexityVsN: "n",
			ExponentVsRMS: 1.0,
			Sizes:         sweep(64, 12, 1.7),
			Source: `
fn linear_scan(a, n) {
	var best = a[0];
	for (var i = 1; i < n; i = i + 1) {
		if (a[i] > best) { best = a[i]; }
	}
	return best;
}
fn driver(n) {
	var a = alloc(n);
	for (var i = 0; i < n; i = i + 1) { a[i] = i * 13 % 101; }
	var best = linear_scan(a, n);
	if (best < 0 || best > 100) { return 1; }
	return 0;
}`,
		},
		{
			Name:          "insertion_sort",
			ComplexityVsN: "n^2",
			ExponentVsRMS: 2.0,
			Sizes:         sweep(32, 8, 1.6),
			Source: `
fn insertion_sort(a, n) {
	for (var i = 1; i < n; i = i + 1) {
		var key = a[i];
		var j = i - 1;
		while (j >= 0 && a[j] > key) {
			a[j + 1] = a[j];
			j = j - 1;
		}
		a[j + 1] = key;
	}
	return 0;
}
fn driver(n) {
	var a = alloc(n);
	for (var i = 0; i < n; i = i + 1) { a[i] = n - i; } // reverse: worst case
	insertion_sort(a, n);
	for (var i = 1; i < n; i = i + 1) {
		if (a[i - 1] > a[i]) { print("unsorted"); return 1; }
	}
	return 0;
}`,
		},
		{
			Name:          "merge_sort",
			ComplexityVsN: "n log n",
			ExponentVsRMS: 1.1,
			Sizes:         sweep(64, 10, 1.9),
			Source: `
fn merge(a, tmp, lo, mid, hi) {
	var i = lo;
	var j = mid;
	var k = lo;
	while (k < hi) {
		if (i < mid && (j >= hi || a[i] <= a[j])) {
			tmp[k] = a[i];
			i = i + 1;
		} else {
			tmp[k] = a[j];
			j = j + 1;
		}
		k = k + 1;
	}
	for (var c = lo; c < hi; c = c + 1) {
		a[c] = tmp[c];
	}
	return 0;
}
fn msort(a, tmp, lo, hi) {
	if (hi - lo < 2) { return 0; }
	var mid = (lo + hi) / 2;
	msort(a, tmp, lo, mid);
	msort(a, tmp, mid, hi);
	merge(a, tmp, lo, mid, hi);
	return 0;
}
fn merge_sort(a, tmp, n) {
	return msort(a, tmp, 0, n);
}
fn driver(n) {
	var a = alloc(n);
	var tmp = alloc(n);
	for (var i = 0; i < n; i = i + 1) { a[i] = (i * 37 + 11) % n; }
	merge_sort(a, tmp, n);
	for (var i = 1; i < n; i = i + 1) {
		if (a[i - 1] > a[i]) { print("unsorted"); return 1; }
	}
	return 0;
}`,
		},
		{
			Name:          "matmul",
			ComplexityVsN: "n^3",
			ExponentVsRMS: 1.5,
			Sizes:         sweep(4, 7, 1.6),
			Source: `
fn matmul(a, b, c, n) {
	for (var i = 0; i < n; i = i + 1) {
		for (var j = 0; j < n; j = j + 1) {
			var sum = 0;
			for (var k = 0; k < n; k = k + 1) {
				sum = sum + a[i * n + k] * b[k * n + j];
			}
			c[i * n + j] = sum;
		}
	}
	return 0;
}
fn driver(n) {
	var a = alloc(n * n);
	var b = alloc(n * n);
	var c = alloc(n * n);
	for (var i = 0; i < n * n; i = i + 1) {
		a[i] = i % 7;
		b[i] = i % 5;
	}
	matmul(a, b, c, n);
	if (c[0] < 0) { return 1; }
	return 0;
}`,
		},
		{
			Name:          "count_bits",
			ComplexityVsN: "n log n",
			ExponentVsRMS: 1.1,
			Sizes:         sweep(64, 10, 1.8),
			Source: `
fn count_bits(a, n) {
	var total = 0;
	for (var i = 0; i < n; i = i + 1) {
		var v = a[i];
		while (v > 0) {
			total = total + v % 2;
			v = v / 2;
		}
	}
	return total;
}
fn driver(n) {
	var a = alloc(n);
	for (var i = 0; i < n; i = i + 1) { a[i] = i; }
	var total = count_bits(a, n);
	if (total <= 0) { return 1; }
	return 0;
}`,
		},
	}
}

// sweep returns a geometric size sweep: count sizes starting at base with
// the given growth factor.
func sweep(base, count int, factor float64) []int {
	sizes := make([]int, 0, count)
	x := float64(base)
	for i := 0; i < count; i++ {
		sizes = append(sizes, int(x))
		x *= factor
	}
	return sizes
}

// BuildTrace runs the algorithm's driver over its size sweep in the
// instrumented VM and returns the merged trace.
func (a Algorithm) BuildTrace() (*trace.Trace, error) {
	var calls strings.Builder
	for _, n := range a.Sizes {
		fmt.Fprintf(&calls, "\tbad = bad + driver(%d);\n", n)
	}
	src := a.Source + fmt.Sprintf(`
fn main() {
	var bad = 0;
%s	if (bad > 0) { print("FAILED", bad); } else { print("ok"); }
}
`, calls.String())
	res, err := vm.RunSource(src, vm.Options{})
	if err != nil {
		return nil, fmt.Errorf("workloads: %s: %w", a.Name, err)
	}
	if len(res.Output) != 1 || res.Output[0] != "ok" {
		return nil, fmt.Errorf("workloads: %s: self-check failed: %v", a.Name, res.Output)
	}
	return res.Trace, nil
}
