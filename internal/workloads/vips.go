package workloads

import "aprof/internal/trace"

// VipsImGenerateConfig parameterizes the im_generate case study (Fig. 5):
// the vips demand-driven image pipeline evaluates an image region per call,
// with worker threads producing tiles into a shared buffer that im_generate
// consumes. Tile buffer cells are reused across tiles, so each activation's
// rms stays near one tile while its drms counts every produced tile.
type VipsImGenerateConfig struct {
	// TileCells is the size of the shared tile buffer in cells.
	TileCells int
	// SetupFraction controls per-activation private bookkeeping reads:
	// setupCells = tiles/SetupFraction. It gives the rms its slight growth
	// (the 0-7×1000 range of Fig. 5) against a linearly growing cost.
	SetupFraction int
	// WorkPerTile is the basic-block cost of processing one tile.
	WorkPerTile int
	// Workers is the number of producer threads that fill tiles.
	Workers int
}

// DefaultVipsImGenerateConfig mirrors the shape of the paper's experiment.
func DefaultVipsImGenerateConfig() VipsImGenerateConfig {
	return VipsImGenerateConfig{
		TileCells:     64,
		SetupFraction: 10,
		WorkPerTile:   40,
		Workers:       3,
	}
}

// VipsImGenerate builds a trace with one im_generate activation per entry of
// tileCounts; the i-th activation consumes tileCounts[i] tiles produced by
// worker threads through the shared tile buffer.
func VipsImGenerate(tileCounts []int, cfg VipsImGenerateConfig) *trace.Trace {
	b := trace.NewBuilder()
	gen := b.Thread(1)
	workers := make([]*trace.ThreadBuilder, cfg.Workers)
	for i := range workers {
		workers[i] = b.Thread(trace.ThreadID(2 + i))
		workers[i].Call("vips_worker")
	}

	const tileBuf = trace.Addr(1 << 20)
	setupBase := tileBuf + trace.Addr(cfg.TileCells)

	gen.Call("vips_main")
	for _, tiles := range tileCounts {
		gen.Call("im_generate")

		// Private per-activation bookkeeping (region descriptors).
		setupCells := tiles / cfg.SetupFraction
		for c := 0; c < setupCells; c++ {
			gen.Read1(setupBase + trace.Addr(c))
		}
		gen.Work(uint64(setupCells))

		for tile := 0; tile < tiles; tile++ {
			w := workers[tile%cfg.Workers]
			w.Call("wbuffer_work_fn")
			w.Work(uint64(cfg.WorkPerTile))
			w.Write(tileBuf, uint32(cfg.TileCells))
			w.Ret()

			gen.Read(tileBuf, uint32(cfg.TileCells))
			gen.Work(uint64(cfg.WorkPerTile))
		}
		gen.Ret()
	}
	gen.Ret()
	for _, w := range workers {
		w.Ret()
	}
	return b.Trace()
}

// VipsWbufferConfig parameterizes the wbuffer_write_thread case study
// (Fig. 6): the vips output thread that flushes write buffers to disk. Each
// activation reads a small control structure (67 or 69 cells depending on
// the buffer branch — the only variation the rms sees), initializes its
// staging buffers itself, and then consumes data that arrives from disk
// (external input) and from peer threads (thread input) into those reused
// buffers.
type VipsWbufferConfig struct {
	// Calls is the number of wbuffer_write_thread activations (110 in the
	// paper).
	Calls int
	// ControlSmall and ControlLarge are the two control-structure sizes; the
	// paper observed 65 calls with rms 67 and 45 with rms 69.
	ControlSmall, ControlLarge int
	// SmallCalls is how many calls read the small control structure.
	SmallCalls int
	// ExternalUnit is the number of cells one disk refill delivers;
	// externalGroups(i) refills happen in call i.
	ExternalUnit int
	// ExternalGroupSize controls how coarsely external input varies across
	// calls: call i performs (i/ExternalGroupSize + 1) refills, so calls in
	// the same group share a drms value in external-only mode.
	ExternalGroupSize int
	// ThreadUnit is the number of peer-thread-produced cells consumed per
	// call step; call i consumes i+1 steps, all distinct across calls.
	ThreadUnit int
	// BaseWork is a fixed per-call cost floor, bounding the relative cost
	// variance within an rms group as in Fig. 6a.
	BaseWork int
}

// DefaultVipsWbufferConfig reproduces the 110-call experiment.
func DefaultVipsWbufferConfig() VipsWbufferConfig {
	return VipsWbufferConfig{
		Calls:             110,
		ControlSmall:      67,
		ControlLarge:      69,
		SmallCalls:        65,
		ExternalUnit:      500,
		ExternalGroupSize: 8,
		ThreadUnit:        900,
		BaseWork:          30000,
	}
}

// VipsWbuffer builds the wbuffer_write_thread trace. The key property is
// that both dynamic input sources flow through buffers the activation writes
// first: the rms sees only the control structure (two distinct values
// across all calls), external-only drms varies in coarse groups, and full
// drms is distinct for every call.
func VipsWbuffer(cfg VipsWbufferConfig) *trace.Trace {
	b := trace.NewBuilder()
	wb := b.Thread(1)
	peer := b.Thread(2)
	peer.Call("vips_peer")

	const (
		controlBase = trace.Addr(1 << 18)
		stageBase   = trace.Addr(1 << 19)
		shareBase   = trace.Addr(1 << 21)
	)

	wb.Call("vips_output")
	for i := 0; i < cfg.Calls; i++ {
		wb.Call("wbuffer_write_thread")
		wb.Work(uint64(cfg.BaseWork))

		// Control structure: the only first-reads of the activation.
		control := cfg.ControlLarge
		if i < cfg.SmallCalls {
			control = cfg.ControlSmall
		}
		wb.Read(controlBase, uint32(control))
		wb.Work(uint64(control))

		// External input: initialize the staging buffer (a write, so the
		// cells never count toward rms), then repeatedly let the disk
		// refill it and consume it.
		refills := i/cfg.ExternalGroupSize + 1
		wb.Write(stageBase, uint32(cfg.ExternalUnit))
		for r := 0; r < refills; r++ {
			wb.SysRead(stageBase, uint32(cfg.ExternalUnit))
			wb.Read(stageBase, uint32(cfg.ExternalUnit))
			wb.Work(uint64(cfg.ExternalUnit / 4))
		}

		// Thread input: same discipline against a peer thread, with a
		// distinct volume per call.
		steps := i + 1
		wb.Write(shareBase, uint32(cfg.ThreadUnit))
		for s := 0; s < steps; s++ {
			peer.Call("wbuffer_fill")
			peer.Write(shareBase, uint32(cfg.ThreadUnit))
			peer.Ret()
			wb.Read(shareBase, uint32(cfg.ThreadUnit))
			wb.Work(uint64(cfg.ThreadUnit / 8))
		}
		wb.Ret()
	}
	wb.Ret()
	peer.Ret()
	return b.Trace()
}
