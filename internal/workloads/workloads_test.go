package workloads

import (
	"testing"

	"aprof/internal/core"
	"aprof/internal/fit"
	"aprof/internal/metrics"
	"aprof/internal/trace"
)

func profile(t *testing.T, tr *trace.Trace) *core.Profiles {
	t.Helper()
	if err := tr.Validate(); err != nil {
		t.Fatalf("workload trace invalid: %v", err)
	}
	ps, err := core.Run(tr, core.DefaultConfig())
	if err != nil {
		t.Fatalf("profiling failed: %v", err)
	}
	return ps
}

func TestProducerConsumerMetric(t *testing.T) {
	const n = 30
	ps := profile(t, ProducerConsumer(n))
	consumer := ps.Routine("consumer")
	if consumer == nil {
		t.Fatal("no consumer profile")
	}
	if consumer.SumRMS != 1 {
		t.Errorf("rms(consumer) = %d, want 1", consumer.SumRMS)
	}
	if consumer.SumDRMS != n {
		t.Errorf("drms(consumer) = %d, want %d", consumer.SumDRMS, n)
	}
	// consumeData is called n times, each with drms 1.
	cd := ps.Routine("consumeData")
	if cd.Calls != n || cd.SumDRMS != n {
		t.Errorf("consumeData: calls=%d sumDRMS=%d, want %d and %d", cd.Calls, cd.SumDRMS, n, n)
	}
}

func TestStreamReaderMetric(t *testing.T) {
	const n = 25
	ps := profile(t, StreamReader(n, 2))
	sr := ps.Routine("streamReader")
	if sr.SumRMS != 1 {
		t.Errorf("rms(streamReader) = %d, want 1", sr.SumRMS)
	}
	if sr.SumDRMS != n {
		t.Errorf("drms(streamReader) = %d, want %d", sr.SumDRMS, n)
	}
	if sr.InducedExternal != n {
		t.Errorf("external induced = %d, want %d", sr.InducedExternal, n)
	}
}

// TestDBScanShape verifies the Fig. 4 property: across growing tables, the
// rms of mysql_select stays near the buffer size while the drms tracks the
// table size, so the drms plot is linear and the rms plot looks superlinear.
func TestDBScanShape(t *testing.T) {
	sizes := []int{512, 1024, 2048, 4096, 8192}
	cfg := DefaultDBScanConfig()
	ps := profile(t, DBScan(sizes, cfg))
	sel := ps.Routine("mysql_select")
	if sel == nil {
		t.Fatal("no mysql_select profile")
	}
	if got := int(sel.Calls); got != len(sizes) {
		t.Fatalf("calls = %d, want %d", got, len(sizes))
	}

	var rmsPts, drmsPts []fit.Point
	for _, p := range sel.WorstCasePlot(core.MetricRMS) {
		rmsPts = append(rmsPts, fit.Point{N: float64(p.N), Cost: float64(p.Cost)})
	}
	for _, p := range sel.WorstCasePlot(core.MetricDRMS) {
		drmsPts = append(drmsPts, fit.Point{N: float64(p.N), Cost: float64(p.Cost)})
	}
	if len(drmsPts) != len(sizes) {
		t.Fatalf("drms plot has %d points, want %d", len(drmsPts), len(sizes))
	}

	// The rms varies much less than the drms across the same activations.
	rmsSpread := rmsPts[len(rmsPts)-1].N / rmsPts[0].N
	drmsSpread := drmsPts[len(drmsPts)-1].N / drmsPts[0].N
	if rmsSpread > 3 {
		t.Errorf("rms spread = %.2f, want <= 3 (buffer-bounded)", rmsSpread)
	}
	if drmsSpread < 10 {
		t.Errorf("drms spread = %.2f, want >= 10 (tracks table size)", drmsSpread)
	}

	// drms cost plot: linear. rms cost plot: apparent superlinear growth.
	drmsExp, r2, err := fit.PowerLaw(drmsPts)
	if err != nil {
		t.Fatal(err)
	}
	if drmsExp < 0.9 || drmsExp > 1.15 || r2 < 0.98 {
		t.Errorf("drms power-law exponent = %.3f (R2=%.3f), want ~1", drmsExp, r2)
	}
	rmsExp, _, err := fit.PowerLaw(rmsPts)
	if err != nil {
		t.Fatal(err)
	}
	if rmsExp < 2 {
		t.Errorf("rms power-law exponent = %.3f, want >= 2 (false superlinear trend)", rmsExp)
	}
	best, err := fit.BestFit(drmsPts)
	if err != nil {
		t.Fatal(err)
	}
	if best.Model.Name != "n" {
		t.Errorf("drms best fit = %s, want n", best.Model.Name)
	}
}

// TestVipsImGenerateShape verifies the Fig. 5 analogue: thread-induced input
// makes the drms track the consumed tiles while the rms is tile-buffer
// bounded.
func TestVipsImGenerateShape(t *testing.T) {
	tiles := []int{40, 80, 160, 320, 640}
	ps := profile(t, VipsImGenerate(tiles, DefaultVipsImGenerateConfig()))
	gen := ps.Routine("im_generate")
	if gen == nil {
		t.Fatal("no im_generate profile")
	}
	var drmsPts []fit.Point
	for _, p := range gen.WorstCasePlot(core.MetricDRMS) {
		drmsPts = append(drmsPts, fit.Point{N: float64(p.N), Cost: float64(p.Cost)})
	}
	exp, r2, err := fit.PowerLaw(drmsPts)
	if err != nil {
		t.Fatal(err)
	}
	if exp < 0.9 || exp > 1.15 || r2 < 0.98 {
		t.Errorf("drms exponent = %.3f (R2=%.3f), want ~1", exp, r2)
	}
	if gen.InducedThread == 0 || gen.InducedExternal != 0 {
		t.Errorf("induced = (thread=%d, external=%d), want thread-only", gen.InducedThread, gen.InducedExternal)
	}
	// rms bounded by tile buffer + setup.
	rmsPlot := gen.WorstCasePlot(core.MetricRMS)
	maxRMS := rmsPlot[len(rmsPlot)-1].N
	if maxRMS > 200 {
		t.Errorf("max rms = %d, want small (buffer-bounded)", maxRMS)
	}
}

// TestVipsWbufferPointCounts verifies the Fig. 6 point-count progression:
// rms collapses 110 calls onto 2 plot points; drms with external input only
// yields more; full drms yields one point per call.
func TestVipsWbufferPointCounts(t *testing.T) {
	cfg := DefaultVipsWbufferConfig()
	build := func() *trace.Trace { return VipsWbuffer(cfg) }

	runWith := func(pcfg core.Config) *core.Profile {
		ps, err := core.Run(build(), pcfg)
		if err != nil {
			t.Fatal(err)
		}
		p := ps.Routine("wbuffer_write_thread")
		if p == nil {
			t.Fatal("no wbuffer_write_thread profile")
		}
		return p
	}

	rmsP := runWith(core.DefaultConfig())
	if got := len(rmsP.RMSPoints); got != 2 {
		t.Errorf("rms points = %d, want 2", got)
	}
	// The two rms values are the control-structure sizes.
	for _, want := range []uint64{uint64(cfg.ControlSmall), uint64(cfg.ControlLarge)} {
		if _, ok := rmsP.RMSPoints[want]; !ok {
			t.Errorf("rms plot missing point at %d", want)
		}
	}
	if rmsP.RMSPoints[uint64(cfg.ControlSmall)].Count != uint64(cfg.SmallCalls) {
		t.Errorf("rms %d has %d calls, want %d", cfg.ControlSmall,
			rmsP.RMSPoints[uint64(cfg.ControlSmall)].Count, cfg.SmallCalls)
	}

	extOnly := runWith(core.Config{ExternalInput: true})
	extPoints := len(extOnly.DRMSPoints)
	if extPoints <= 2 {
		t.Errorf("external-only drms points = %d, want > 2", extPoints)
	}
	if extPoints >= cfg.Calls {
		t.Errorf("external-only drms points = %d, want < %d (grouped refills)", extPoints, cfg.Calls)
	}

	full := runWith(core.DefaultConfig())
	if got := len(full.DRMSPoints); got != cfg.Calls {
		t.Errorf("full drms points = %d, want %d (every call distinct)", got, cfg.Calls)
	}
	if full.Calls != uint64(cfg.Calls) {
		t.Errorf("calls = %d, want %d", full.Calls, cfg.Calls)
	}
}

// TestSelectionSortVM verifies the Fig. 10 workload: the profiler sees one
// performance point per input size and the basic-block cost plot is cleanly
// quadratic in the rms.
func TestSelectionSortVM(t *testing.T) {
	sizes := []int{25, 50, 75, 100, 125, 150, 175, 200}
	tr, err := SelectionSortVM(sizes)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := core.Run(tr, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sort := ps.Routine("selection_sort")
	if sort == nil {
		t.Fatal("no selection_sort profile")
	}
	if int(sort.Calls) != len(sizes) {
		t.Fatalf("calls = %d, want %d", sort.Calls, len(sizes))
	}
	plot := sort.WorstCasePlot(core.MetricRMS)
	if len(plot) != len(sizes) {
		t.Fatalf("plot has %d points, want %d", len(plot), len(sizes))
	}
	// rms of a sort activation is the array size (plus O(1)).
	for i, p := range plot {
		if p.N < uint64(sizes[i]) || p.N > uint64(sizes[i])+4 {
			t.Errorf("point %d: rms = %d, want ~%d", i, p.N, sizes[i])
		}
	}
	var pts []fit.Point
	for _, p := range plot {
		pts = append(pts, fit.Point{N: float64(p.N), Cost: float64(p.Cost)})
	}
	best, err := fit.BestFit(pts)
	if err != nil {
		t.Fatal(err)
	}
	if best.Model.Name != "n^2" {
		t.Errorf("best fit = %s (R2=%.4f), want n^2", best.Model.Name, best.R2)
	}
	// No dynamic input: drms == rms for the sort.
	if sort.SumDRMS != sort.SumRMS {
		t.Errorf("drms %d != rms %d for a private-memory sort", sort.SumDRMS, sort.SumRMS)
	}
}

func TestSelectionSortTimed(t *testing.T) {
	pts := SelectionSortTimed([]int{50, 100, 200}, 3)
	if len(pts) != 9 {
		t.Fatalf("got %d points, want 9", len(pts))
	}
	for _, p := range pts {
		if p.NS <= 0 {
			t.Errorf("non-positive duration for n=%d", p.N)
		}
	}
}

// TestSuiteCharacterization verifies the Fig. 15 clustering: every OMP-like
// benchmark has thread input >= 69%, and mysqlslap is dominated by external
// input.
func TestSuiteCharacterization(t *testing.T) {
	for _, b := range SuiteOMP() {
		ps := profile(t, b.Build())
		s := metrics.Summarize(ps)
		if s.ThreadInputPct < 69 {
			t.Errorf("%s: thread input = %.1f%%, want >= 69%%", b.Name, s.ThreadInputPct)
		}
	}
	for _, b := range SuiteMySQL() {
		ps := profile(t, b.Build())
		s := metrics.Summarize(ps)
		if s.ExternalInputPct < 60 {
			t.Errorf("%s: external input = %.1f%%, want >= 60%%", b.Name, s.ExternalInputPct)
		}
	}
}

// TestSuiteDeterminism ensures benchmark traces are reproducible.
func TestSuiteDeterminism(t *testing.T) {
	b := SuitePARSEC()[0]
	b.Rounds = 5
	t1 := b.Build()
	t2 := b.Build()
	if len(t1.Events) != len(t2.Events) {
		t.Fatalf("non-deterministic trace: %d vs %d events", len(t1.Events), len(t2.Events))
	}
	for i := range t1.Events {
		if t1.Events[i] != t2.Events[i] {
			t.Fatalf("trace diverges at event %d", i)
		}
	}
}

// TestSuiteThreadScaling checks WithThreads keeps total work roughly stable.
func TestSuiteThreadScaling(t *testing.T) {
	b := SuiteOMP()[0]
	b.Rounds = 16
	base := b.Build().Len()
	for _, threads := range []int{1, 2, 8} {
		scaled := b.WithThreads(threads).Build().Len()
		ratio := float64(scaled) / float64(base)
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("threads=%d: event count ratio %.2f, want near 1", threads, ratio)
		}
	}
}

// TestSuiteRichnessSpread checks the Fig. 11/12 property on one benchmark:
// a small fraction of routines carries dynamic input (positive richness or
// input volume), most do not.
func TestSuiteRichnessSpread(t *testing.T) {
	b := SuitePARSEC()[2] // vips-like
	ps := profile(t, b.Build())
	rs := metrics.Compute(ps)
	withDynamic := 0
	for _, r := range rs {
		if r.InputVolume > 0.5 {
			withDynamic++
		}
	}
	if withDynamic == 0 {
		t.Fatal("no routine with dominant dynamic input")
	}
	frac := float64(withDynamic) / float64(len(rs))
	if frac > 0.5 {
		t.Errorf("%.0f%% of routines have dominant dynamic input, want a small fraction", frac*100)
	}
}
