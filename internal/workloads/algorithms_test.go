package workloads

import (
	"testing"

	"aprof/internal/core"
	"aprof/internal/fit"
)

// TestAlgorithmicProfiling validates the end-to-end pipeline on the classic
// algorithm collection: the fitted empirical cost function of each profiled
// routine must recover the algorithm's true complexity class. (This is the
// algorithmic-profiling validation of the paper's [23], run through our VM,
// profiler and fitting stack.)
func TestAlgorithmicProfiling(t *testing.T) {
	for _, alg := range Algorithms() {
		alg := alg
		t.Run(alg.Name, func(t *testing.T) {
			tr, err := alg.BuildTrace()
			if err != nil {
				t.Fatal(err)
			}
			ps, err := core.Run(tr, core.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			p := ps.Routine(alg.Name)
			if p == nil {
				t.Fatalf("no profile for %s", alg.Name)
			}
			if int(p.Calls) < len(alg.Sizes) {
				t.Fatalf("calls = %d, want >= %d", p.Calls, len(alg.Sizes))
			}
			plot := p.WorstCasePlot(core.MetricRMS)
			if len(plot) != len(alg.Sizes) {
				t.Fatalf("%d plot points, want %d", len(plot), len(alg.Sizes))
			}
			// Cost against the nominal input parameter: the algorithm's
			// textbook complexity. rms grows monotonically with n, so the
			// rms-sorted plot pairs with the sorted size sweep.
			var vsN, vsRMS []fit.Point
			for i, pp := range plot {
				vsN = append(vsN, fit.Point{N: float64(alg.Sizes[i]), Cost: float64(pp.Cost)})
				vsRMS = append(vsRMS, fit.Point{N: float64(pp.N), Cost: float64(pp.Cost)})
			}
			best, err := fit.BestFit(vsN)
			if err != nil {
				t.Fatal(err)
			}
			if best.Model.Name != alg.ComplexityVsN {
				t.Errorf("best fit vs n = %q (R2=%.4f), want %q\npoints: %v",
					best.Model.Name, best.R2, alg.ComplexityVsN, vsN)
			}
			// Cost against the measured input size (rms): the power-law
			// exponent input-sensitive profiling reports.
			exp, r2, err := fit.PowerLaw(vsRMS)
			if err != nil {
				t.Fatal(err)
			}
			if exp < alg.ExponentVsRMS-0.15 || exp > alg.ExponentVsRMS+0.15 {
				t.Errorf("power-law exponent vs rms = %.2f (R2=%.3f), want %.2f±0.15",
					exp, r2, alg.ExponentVsRMS)
			}
			// Private-memory algorithms: drms must equal rms.
			if p.SumDRMS != p.SumRMS {
				t.Errorf("drms %d != rms %d for a private-memory algorithm", p.SumDRMS, p.SumRMS)
			}
		})
	}
}

// TestAlgorithmRMSTracksInputSize checks the input-size estimates
// themselves: each activation's rms must be within a constant factor of the
// driver's nominal n (cells actually touched).
func TestAlgorithmRMSTracksInputSize(t *testing.T) {
	for _, alg := range Algorithms() {
		if alg.Name != "linear_scan" && alg.Name != "insertion_sort" {
			continue
		}
		tr, err := alg.BuildTrace()
		if err != nil {
			t.Fatal(err)
		}
		ps, err := core.Run(tr, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		plot := ps.Routine(alg.Name).WorstCasePlot(core.MetricRMS)
		if len(plot) != len(alg.Sizes) {
			t.Fatalf("%s: %d plot points, want %d", alg.Name, len(plot), len(alg.Sizes))
		}
		for i, pp := range plot {
			n := uint64(alg.Sizes[i])
			if pp.N < n || pp.N > n+8 {
				t.Errorf("%s: point %d: rms = %d, want ~%d", alg.Name, i, pp.N, n)
			}
		}
	}
}
