package workloads

import (
	"testing"

	"aprof/internal/vm"
	_ "aprof/internal/vm/analysis" // installs the effect planner
)

// TestSuppressReduction measures the trace-size savings of redundancy
// suppression on every VM workload and enforces the headline target: on
// the straight-line-heavy programs (stencil, vecnorm) suppression must
// elide at least 30% of trace events. The concurrency-heavy workloads have
// few multi-access blocks — their (near-zero) reductions are logged for
// the record but not gated. Equivalence of the profiler output is proven
// separately by the differential harness in internal/vm/analysis.
func TestSuppressReduction(t *testing.T) {
	wantReduction := map[string]float64{
		"stencil": 30,
		"vecnorm": 30,
	}
	for _, prog := range VMPrograms() {
		prog := prog
		t.Run(prog.Name, func(t *testing.T) {
			full, err := vm.RunSource(prog.Source, vm.Options{})
			if err != nil {
				t.Fatal(err)
			}
			sup, err := vm.RunSource(prog.Source, vm.Options{Suppress: true})
			if err != nil {
				t.Fatal(err)
			}
			fs, ss := full.Trace.Stats(), sup.Trace.Stats()
			if fs.Events == 0 {
				t.Fatal("empty full trace")
			}
			events := 100 * float64(fs.Events-ss.Events) / float64(fs.Events)
			bytes := 100 * float64(fs.Bytes-ss.Bytes) / float64(fs.Bytes)
			st := sup.Suppress
			t.Logf("events %d -> %d (-%.1f%%), bytes %d -> %d (-%.1f%%); mem ops %d, elided %d (static %d, dynamic %d, coalesced %d)",
				fs.Events, ss.Events, events, fs.Bytes, ss.Bytes, bytes,
				st.MemOps, st.Elided(), st.ElidedStatic, st.ElidedDynamic, st.Coalesced)
			if min, gated := wantReduction[prog.Name]; gated && events < min {
				t.Errorf("event reduction %.1f%%, want >= %.1f%% on this straight-line workload", events, min)
			}
			if ss.Events > fs.Events {
				t.Errorf("suppressed trace grew: %d > %d events", ss.Events, fs.Events)
			}
		})
	}
}
